#!/usr/bin/env python3
"""Bench-regression gate: diff fresh BENCH_*.json against checked-in baselines.

The simulator is deterministic, so every modeled number (result rows and the
metrics-registry snapshot) must match its baseline *exactly* — any drift means
the model changed and the baseline must be re-recorded deliberately. Host
wall-clock is the only machine-dependent field; it gets a ratio budget so the
gate still catches order-of-magnitude simulator-throughput regressions
without flaking on slower CI machines.

With --additive-metrics, metric keys that exist only in the fresh report are
allowed (listed as NEW, not fatal): a PR that adds a counter or histogram
shouldn't spuriously break the gate. Removed keys and value drift on shared
keys stay fatal either way; result rows are always compared exactly.

Metric groups under the "host." prefix (counters.host.*, histograms.host.*)
are host-time-derived telemetry — events/sec, queue depth high-water marks —
published by BenchReport alongside the modeled numbers. They are
machine-dependent by construction, so the gate treats them as informational
in both directions: never a byte-identity failure, whether they drift, appear
or disappear.

Usage:
  tools/bench_diff.py --baseline-dir bench/baselines --fresh-dir . \
      [--host-ratio 25.0] [--additive-metrics] [--write-report diff_report.txt]

Exit status: 0 when every baseline matches, 1 on any mismatch or missing
fresh report.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def flatten_metrics(metrics):
    """Metrics snapshot -> sorted list of (dotted-key, value) leaves."""
    out = []
    for name, val in sorted(metrics.get("counters", {}).items()):
        out.append((f"counters.{name}", val))
    for name, summary in sorted(metrics.get("histograms", {}).items()):
        for field, val in sorted(summary.items()):
            out.append((f"histograms.{name}.{field}", val))
    return out


def diff_rows(base_rows, fresh_rows):
    """Exact row diff -> list of (where, baseline, fresh) mismatches."""
    bad = []
    if len(base_rows) != len(fresh_rows):
        bad.append(("row count", len(base_rows), len(fresh_rows)))
    for i, (b, f) in enumerate(zip(base_rows, fresh_rows)):
        keys = sorted(set(b) | set(f))
        for k in keys:
            bv, fv = b.get(k, "<missing>"), f.get(k, "<missing>")
            if bv != fv:
                bad.append((f"row[{i}].{k}", bv, fv))
    return bad


def is_host_metric(key):
    """True for host-time-derived leaves: informational, never gated."""
    return key.startswith("counters.host.") or key.startswith("histograms.host.")


def diff_metrics(base, fresh, additive=False):
    """Returns (fatal mismatches, additive-tolerated keys, host-info keys)."""
    bad, new, host = [], [], []
    bleaves = dict(flatten_metrics(base))
    fleaves = dict(flatten_metrics(fresh))
    for k in sorted(set(bleaves) | set(fleaves)):
        if is_host_metric(k):
            host.append(k)
            continue
        if additive and k not in bleaves:
            new.append(k)
            continue
        bv = bleaves.get(k, "<missing>")
        fv = fleaves.get(k, "<missing>")
        if bv != fv:
            bad.append((f"metrics.{k}", bv, fv))
    return bad, new, host


def fmt_table(title, mismatches, limit=20):
    lines = [title]
    w = max((len(str(m[0])) for m in mismatches[:limit]), default=10)
    lines.append(f"  {'where':<{w}}  {'baseline':>16}  {'fresh':>16}")
    for where, bv, fv in mismatches[:limit]:
        lines.append(f"  {str(where):<{w}}  {str(bv):>16}  {str(fv):>16}")
    if len(mismatches) > limit:
        lines.append(f"  ... and {len(mismatches) - limit} more")
    return "\n".join(lines)


def check_bench(name, base_path, fresh_path, host_ratio, additive, report):
    base = load(base_path)
    fresh = load(fresh_path)
    mism = diff_rows(base.get("rows", []), fresh.get("rows", []))
    metric_mism, new_keys, host_keys = diff_metrics(
        base.get("metrics", {}), fresh.get("metrics", {}), additive)
    mism += metric_mism

    host_note = ""
    bh, fh = base.get("host_seconds", 0.0), fresh.get("host_seconds", 0.0)
    if bh > 0 and fh > bh * host_ratio:
        mism.append(("host_seconds", f"{bh:.3f}", f"{fh:.3f} (> {host_ratio:g}x budget)"))
    elif bh > 0:
        host_note = f" (host {fh:.2f}s vs baseline {bh:.2f}s, budget {host_ratio:g}x)"

    if mism:
        report.append(fmt_table(f"FAIL {name}: {len(mism)} mismatched value(s)", mism))
        return False
    gated = [k for k, _ in flatten_metrics(base.get("metrics", {}))
             if not is_host_metric(k)]
    report.append(f"PASS {name}: {len(base.get('rows', []))} rows exact, "
                  f"{len(gated)} metric leaves exact{host_note}")
    if host_keys:
        fleaves = dict(flatten_metrics(fresh.get("metrics", {})))
        # Engine worker count leads the line: the determinism matrix reads
        # these rows to compare events/sec across MESHMP_THREADS values.
        tkey = "counters.host.engine.threads"
        lead = [f"threads={fleaves[tkey]}"] if tkey in fleaves else []
        shown = [k for k in host_keys if k in fleaves and k != tkey]
        vals = ", ".join(
            lead + [f"{k.split('.', 1)[1]}={fleaves[k]}" for k in shown[:4]])
        report.append(f"  HOST {name}: {len(host_keys)} host metric leaf(s), "
                      f"informational only ({vals})")
    if new_keys:
        report.append(f"  NEW  {name}: {len(new_keys)} metric leaf(s) not in the "
                      "baseline (allowed by --additive-metrics; re-record to adopt):")
        for k in new_keys[:20]:
            report.append(f"       + {k}")
        if len(new_keys) > 20:
            report.append(f"       ... and {len(new_keys) - 20} more")
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--fresh-dir", default=".")
    ap.add_argument("--host-ratio", type=float, default=25.0,
                    help="fresh host_seconds may be at most this multiple of baseline")
    ap.add_argument("--additive-metrics", action="store_true",
                    help="tolerate metric keys that exist only in the fresh "
                         "report (new counters/histograms); removals and value "
                         "drift stay fatal")
    ap.add_argument("--write-report", default=None,
                    help="also write the human-readable diff report to this file")
    ap.add_argument("benches", nargs="*",
                    help="bench names (default: every BENCH_*.json in --baseline-dir)")
    args = ap.parse_args()

    if args.benches:
        names = args.benches
    else:
        names = sorted(
            f[len("BENCH_"):-len(".json")]
            for f in os.listdir(args.baseline_dir)
            if f.startswith("BENCH_") and f.endswith(".json"))
    if not names:
        print(f"bench_diff: no baselines found in {args.baseline_dir}", file=sys.stderr)
        return 1

    report = []
    ok = True
    for name in names:
        base_path = os.path.join(args.baseline_dir, f"BENCH_{name}.json")
        fresh_path = os.path.join(args.fresh_dir, f"BENCH_{name}.json")
        if not os.path.exists(base_path):
            report.append(f"FAIL {name}: missing baseline {base_path}")
            ok = False
            continue
        if not os.path.exists(fresh_path):
            report.append(f"FAIL {name}: bench did not produce {fresh_path}")
            ok = False
            continue
        ok &= check_bench(name, base_path, fresh_path, args.host_ratio,
                          args.additive_metrics, report)

    text = "\n".join(report)
    print(text)
    if args.write_report:
        with open(args.write_report, "w", encoding="utf-8") as f:
            f.write(text + "\n")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
