#!/usr/bin/env python3
"""meshmp-lint: project-invariant static analysis for the meshmp simulator.

Enforces three rule families over src/ (see DESIGN.md section 11):

Determinism
  D1  no std::unordered_{map,set,multimap,multiset}: iteration order depends
      on hash seeding and insertion history, which is a determinism bug in
      simulation-affecting code. Use chk::FlatMap / chk::FlatSet / std::map.
      Suppress: // meshmp-lint: unordered-ok(<reason>)
  D2  no wall-clock or libc randomness: std::chrono clocks, ::time,
      gettimeofday, clock_gettime, std::rand/srand, std::random_device.
      Simulated time comes from sim::Engine::now(); randomness from sim::Rng.
      Suppress: // meshmp-lint: host-time(<reason>)
  D3  no pointer-keyed associative containers: address order is not stable
      across runs, so a pointer key makes iteration order (and any "first
      match" logic) nondeterministic.
      Suppress: // meshmp-lint: ptr-key-ok(<reason>)

Copy accounting
  C1  every memcpy / std::copy must either sit in the same statement block as
      a buf::charge_copy() call (the modeled-copy pairing) or carry an
      explicit annotation:
        // meshmp-lint: host-copy(<reason>)     simulation-artifact copy
        // meshmp-lint: charged-copy(<reason>)  billed by a named caller
      An annotation (or charge) covers matches on its own line and on
      following lines of the same contiguous block: up to {WINDOW} lines with
      no blank line in between.

Concurrency readiness
  R3  a class marked // meshmp-lint: shared-state must declare a
      chk::SimLock (or MESHMP_CAPABILITY) member, and every container member
      it declares must be MESHMP_GUARDED_BY one, or carry
      // meshmp-lint: unshared(<reason>).
  R4  no raw threading primitives (std::thread, std::mutex and friends,
      std::condition_variable, std::atomic*, lock helpers, futures, or
      their headers) outside src/sim/ and src/chk/: simulation code
      synchronizes through chk::SimLock / chk::SharedCount and the engine's
      LP partition — a raw primitive elsewhere bypasses the determinism
      model and the single-threaded-until-partitioned contract.
      Suppress: // meshmp-lint: raw-threading-ok(<reason>)

Hot path
  H1  no std::function in the event-scheduling hot path: anywhere under
      src/sim/ (the engine core schedules millions of events; std::function
      heap-allocates once a capture outgrows its SSO buffer — use
      sim::InlineFn), and in any statement block that calls schedule() /
      schedule_at() / post() elsewhere under src/ (a std::function built
      just to be scheduled reintroduces the per-event allocation the
      InlineFn refactor removed). Long-lived callback sinks (link/NIC
      delivery hooks, error handlers) away from scheduling calls are fine.
      Suppress: // meshmp-lint: std-function-ok(<reason>)

Engines: with python clang bindings and a compile_commands.json the D-rules
run on the AST (macro- and comment-proof); otherwise a conservative text
engine covers everything. C1/R3 are comment-scoped by design and always run
on text. Findings print as path:line: [RULE] message; exit 1 on any finding
not covered by the allowlist (tools/meshmp_lint_allowlist.txt: lines of
"<RULE> <path> <substring-of-offending-line>", # comments allowed).

Usage:
  tools/meshmp_lint.py [--src-dir src] [--build-dir build]
                       [--engine auto|ast|text] [--allowlist FILE] [files...]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

WINDOW = 12  # max lines a charge/annotation covers within a contiguous block

SUPPRESS_RE = re.compile(
    r"meshmp-lint:\s*"
    r"(host-copy|charged-copy|unordered-ok|ptr-key-ok|host-time|unshared"
    r"|std-function-ok|raw-threading-ok)"
    r"\s*\(")
MARKER_SHARED_RE = re.compile(r"meshmp-lint:\s*shared-state\b")
COMMENT_RE = re.compile(r"//.*$")

UNORDERED_RE = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b"
                          r'|[<"]unordered_(map|set)[">]')
WALLCLOCK_RE = re.compile(
    r"\bstd::chrono::(system_clock|steady_clock|high_resolution_clock)\b"
    r"|\bstd::(rand|srand|random_device)\b"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
    r"|(?<![\w:.])time\s*\(\s*(NULL|nullptr|0)?\s*\)")
# Pointer-typed FIRST template argument of an associative container.
PTRKEY_RE = re.compile(
    r"\b(?:chk::)?(?:FlatMap|FlatSet)<\s*[^,<>]*\*\s*[,>]"
    r"|\bstd::(?:map|set|multimap|multiset)<\s*[^,<>]*\*\s*[,>]")
COPY_RE = re.compile(r"\b(?:std::)?memcpy\s*\(|\bstd::copy\s*\(")
STD_FUNCTION_RE = re.compile(r"\bstd::function\s*<")
RAW_THREADING_RE = re.compile(
    r"\bstd::(?:jthread|thread|timed_mutex|recursive_mutex"
    r"|recursive_timed_mutex|shared_timed_mutex|shared_mutex|mutex"
    r"|condition_variable_any|condition_variable|atomic\w*|memory_order\w*"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock|call_once|once_flag"
    r"|barrier|latch|counting_semaphore|binary_semaphore|stop_token"
    r"|future|shared_future|promise|packaged_task|async"
    r"|this_thread::\w+)\b")
THREADING_INCLUDE_RE = re.compile(
    r"^\s*#\s*include\s*<(?:thread|mutex|shared_mutex|condition_variable"
    r"|atomic|barrier|latch|semaphore|future|stop_token)>")
SCHEDULE_CALL_RE = re.compile(
    r"(?:\bschedule(?:_at)?|(?<![\w.])post|[.>]post)\s*\(")
CHARGE_RE = re.compile(r"\bcharge_copy\s*(?:<[^>]*>)?\(")
CONTAINER_MEMBER_RE = re.compile(
    r"\b(?:std::(?:vector|map|set|deque|array|priority_queue|queue)"
    r"|chk::FlatMap|chk::FlatSet)<")
MEMBER_NAME_RE = re.compile(r"\b[A-Za-z]\w*_\s*(?:;|=|\{|MESHMP_GUARDED_BY|$)")
LOCK_MEMBER_RE = re.compile(r"\bchk::SimLock\b|\bMESHMP_CAPABILITY\b|"
                            r"\bSimLock\s+\w+_")

BANNED_CALLS = {
    "rand": "D2", "srand": "D2", "time": "D2", "gettimeofday": "D2",
    "clock_gettime": "D2",
}
BANNED_TYPES = {
    "std::unordered_map": "D1", "std::unordered_set": "D1",
    "std::unordered_multimap": "D1", "std::unordered_multiset": "D1",
    "std::random_device": "D2",
    "std::chrono::system_clock": "D2",
    "std::chrono::steady_clock": "D2",
    "std::chrono::high_resolution_clock": "D2",
}


class Finding:
    def __init__(self, rule, path, line, message, text=""):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based
        self.message = message
        self.text = text  # offending source line, for allowlist matching

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comment(line):
    return COMMENT_RE.sub("", line)


def block_has(lines, idx, pattern, comment_ok):
    """True when `pattern` matches on line idx or an earlier line of the same
    contiguous (blank-line-free) block, at most WINDOW lines up.
    comment_ok: match inside comments too (annotations) or only in code."""
    for j in range(idx, max(-1, idx - WINDOW - 1), -1):
        if j < 0:
            return False
        if j != idx and not lines[j].strip():
            return False  # blank line ends the block
        hay = lines[j] if comment_ok else strip_comment(lines[j])
        if pattern.search(hay):
            return True
    return False


def suppressed(lines, idx, kinds):
    """True when a meshmp-lint suppression of one of `kinds` covers line idx."""
    for j in range(idx, max(-1, idx - WINDOW - 1), -1):
        if j < 0:
            return False
        if j != idx and not lines[j].strip():
            return False
        m = SUPPRESS_RE.search(lines[j])
        if m and m.group(1) in kinds:
            return True
    return False


# --------------------------------------------------------------------------
# Text engine
# --------------------------------------------------------------------------

def check_determinism_text(path, lines):
    out = []
    for i, raw in enumerate(lines):
        code = strip_comment(raw)
        if UNORDERED_RE.search(code) and not suppressed(
                lines, i, ("unordered-ok",)):
            out.append(Finding(
                "D1", path, i + 1,
                "unordered container in simulation code: iteration order is "
                "hash-layout-dependent; use chk::FlatMap/FlatSet or std::map "
                "(or annotate unordered-ok)", raw))
        if WALLCLOCK_RE.search(code) and not suppressed(
                lines, i, ("host-time",)):
            out.append(Finding(
                "D2", path, i + 1,
                "wall-clock/libc randomness in simulation code: use "
                "sim::Engine::now() / sim::Rng (or annotate host-time)", raw))
        if PTRKEY_RE.search(code) and not suppressed(
                lines, i, ("ptr-key-ok",)):
            out.append(Finding(
                "D3", path, i + 1,
                "pointer-keyed associative container: address order is not "
                "stable across runs (or annotate ptr-key-ok)", raw))
    return out


def block_has_near(lines, idx, pattern):
    """True when `pattern` matches in code within the same contiguous
    (blank-line-free) block as line idx, scanning both directions up to
    WINDOW lines: a scheduled callable can be built before the call or span
    lines inside it."""
    if block_has(lines, idx, pattern, comment_ok=False):
        return True
    for j in range(idx + 1, min(len(lines), idx + WINDOW + 1)):
        if not lines[j].strip():
            return False
        if pattern.search(strip_comment(lines[j])):
            return True
    return False


def in_sim_core(path):
    parts = os.path.normpath(path).split(os.sep)
    return "sim" in parts


def in_threading_layer(path):
    """src/sim/ and src/chk/ are the only layers allowed to touch raw
    threading primitives (the worker team and the SimLock/SharedCount
    wrappers it activates)."""
    parts = os.path.normpath(path).split(os.sep)
    return "sim" in parts or "chk" in parts


def check_raw_threading(path, lines):
    if in_threading_layer(path):
        return []
    out = []
    for i, raw in enumerate(lines):
        code = strip_comment(raw)
        if not (RAW_THREADING_RE.search(code)
                or THREADING_INCLUDE_RE.search(code)):
            continue
        if suppressed(lines, i, ("raw-threading-ok",)):
            continue
        out.append(Finding(
            "R4", path, i + 1,
            "raw threading primitive outside src/sim/ + src/chk/: "
            "synchronize through chk::SimLock / chk::SharedCount and the "
            "engine's LP partition instead (or annotate raw-threading-ok)",
            raw))
    return out


def check_hot_path(path, lines):
    out = []
    for i, raw in enumerate(lines):
        code = strip_comment(raw)
        if not STD_FUNCTION_RE.search(code):
            continue
        if suppressed(lines, i, ("std-function-ok",)):
            continue
        if in_sim_core(path):
            out.append(Finding(
                "H1", path, i + 1,
                "std::function in the engine core (src/sim/): the event hot "
                "path must use sim::InlineFn — std::function heap-allocates "
                "past its SSO buffer (or annotate std-function-ok)", raw))
        elif block_has_near(lines, i, SCHEDULE_CALL_RE):
            out.append(Finding(
                "H1", path, i + 1,
                "std::function in a schedule()/schedule_at()/post() call "
                "path: scheduled callables must be sim::InlineFn-sized — "
                "use a small struct or captureless lambda (or annotate "
                "std-function-ok)", raw))
    return out


def check_copy_accounting(path, lines):
    out = []
    for i, raw in enumerate(lines):
        code = strip_comment(raw)
        if not COPY_RE.search(code):
            continue
        if suppressed(lines, i, ("host-copy", "charged-copy")):
            continue
        if block_has(lines, i, CHARGE_RE, comment_ok=False):
            continue
        out.append(Finding(
            "C1", path, i + 1,
            "memcpy/std::copy without a charge_copy() in the same block: "
            "bill it via buf::charge_copy or annotate "
            "host-copy(<reason>) / charged-copy(<reason>)", raw))
    return out


def class_region(lines, marker_idx):
    """(class_line_idx, end_idx_exclusive) of the class following a
    shared-state marker, or None."""
    class_re = re.compile(r"^(\s*)(?:template\s*<[^>]*>\s*)?class\s+\w+")
    for i in range(marker_idx, min(marker_idx + 4, len(lines))):
        m = class_re.match(lines[i])
        if not m:
            continue
        indent = m.group(1)
        end_re = re.compile(r"^" + re.escape(indent) + r"\};")
        for j in range(i + 1, len(lines)):
            if end_re.match(lines[j]):
                return i, j
        return i, len(lines)
    return None


def check_shared_state(path, lines):
    out = []
    for i, raw in enumerate(lines):
        if not MARKER_SHARED_RE.search(raw):
            continue
        region = class_region(lines, i + 1)
        if region is None:
            out.append(Finding(
                "R3", path, i + 1,
                "shared-state marker is not followed by a class declaration",
                raw))
            continue
        start, end = region
        body = lines[start:end]
        if not any(LOCK_MEMBER_RE.search(strip_comment(l)) for l in body):
            out.append(Finding(
                "R3", path, start + 1,
                "shared-state class declares no chk::SimLock / "
                "MESHMP_CAPABILITY member", lines[start]))
        # Container member declarations must be guarded or annotated.
        depth = 0
        for k, line in enumerate(body):
            code = strip_comment(line)
            at_member_level = depth == 1
            depth += code.count("{") - code.count("}")
            if not at_member_level or depth > 1:
                continue  # inside a nested scope (method body, nested type)
            if not CONTAINER_MEMBER_RE.search(code):
                continue
            # Join the declaration statement (up to 3 lines, until ';').
            stmt = code
            for extra in range(1, 3):
                if ";" in stmt:
                    break
                if k + extra < len(body):
                    stmt += " " + strip_comment(body[k + extra])
            if not MEMBER_NAME_RE.search(stmt):
                continue  # not a member declaration (signature, using, ...)
            if "(" in stmt.split("<", 1)[0]:
                continue  # function signature returning a container
            if "MESHMP_GUARDED_BY" in stmt:
                continue
            if suppressed(body, k, ("unshared",)):
                continue
            out.append(Finding(
                "R3", path, start + k + 1,
                "container member of a shared-state class is not "
                "MESHMP_GUARDED_BY a lock (or annotated unshared)", line))
    return out


# --------------------------------------------------------------------------
# AST engine (libclang; optional)
# --------------------------------------------------------------------------

def load_cindex():
    try:
        from clang import cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def ast_findings(cindex, comp_db_dir, files):
    """D1/D2/D3 on the AST. Returns (findings, analyzed_files) or None when
    the compilation database cannot be loaded."""
    try:
        db = cindex.CompilationDatabase.fromDirectory(comp_db_dir)
    except Exception:
        return None
    index = cindex.Index.create()
    out, analyzed = [], set()
    wanted = {os.path.abspath(f) for f in files}
    for cmd in db.getAllCompileCommands() or []:
        src = os.path.abspath(os.path.join(cmd.directory, cmd.filename))
        args = [a for a in list(cmd.arguments)[1:]
                if a not in (cmd.filename, src, "-c", "-o")]
        # Drop the object-file operand of -o.
        cleaned, skip = [], False
        for a in args:
            if skip:
                skip = False
                continue
            if a == "-o":
                skip = True
                continue
            cleaned.append(a)
        try:
            tu = index.parse(src, args=cleaned)
        except Exception:
            continue
        for cur in tu.cursor.walk_preorder():
            loc = cur.location
            if loc.file is None:
                continue
            fpath = os.path.abspath(loc.file.name)
            if fpath not in wanted:
                continue
            analyzed.add(fpath)
            rel = os.path.relpath(fpath)
            try:
                lines = open(fpath, encoding="utf-8").read().splitlines()
            except OSError:
                continue
            i = loc.line - 1
            if cur.kind == cindex.CursorKind.TYPE_REF or \
                    cur.kind == cindex.CursorKind.TEMPLATE_REF:
                name = cur.spelling or ""
                for t, rule in BANNED_TYPES.items():
                    if t.endswith(name) and name:
                        kinds = ("unordered-ok",) if rule == "D1" else (
                            "host-time",)
                        if not suppressed(lines, i, kinds):
                            out.append(Finding(
                                rule, rel, loc.line,
                                f"banned type {t} (AST)", lines[i]))
            elif cur.kind == cindex.CursorKind.CALL_EXPR:
                if cur.spelling in BANNED_CALLS and not suppressed(
                        lines, i, ("host-time",)):
                    out.append(Finding(
                        "D2", rel, loc.line,
                        f"banned call {cur.spelling}() (AST)", lines[i]))
    return out, analyzed


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def collect_files(src_dir, explicit):
    if explicit:
        return sorted(explicit)
    out = []
    for root, _dirs, names in os.walk(src_dir):
        for n in sorted(names):
            if n.endswith((".hpp", ".cpp", ".h", ".cc")):
                out.append(os.path.join(root, n))
    return out


def load_allowlist(path):
    entries = []
    if not path or not os.path.exists(path):
        return entries
    for raw in open(path, encoding="utf-8"):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) == 3:
            entries.append(tuple(parts))
    return entries


def allowlisted(finding, entries):
    for rule, path, token in entries:
        if rule == finding.rule and path == finding.path and \
                token in finding.text:
            return True
    return False


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--src-dir", default="src")
    ap.add_argument("--build-dir", default="build",
                    help="directory holding compile_commands.json")
    ap.add_argument("--engine", choices=("auto", "ast", "text"),
                    default="auto")
    ap.add_argument("--allowlist",
                    default=os.path.join("tools",
                                         "meshmp_lint_allowlist.txt"))
    ap.add_argument("--quiet", action="store_true")
    ap.add_argument("files", nargs="*",
                    help="restrict to these files (default: all of src/)")
    args = ap.parse_args(argv)

    files = collect_files(args.src_dir, args.files)
    if not files:
        print(f"meshmp-lint: no sources under {args.src_dir}",
              file=sys.stderr)
        return 2

    findings = []
    cindex = None if args.engine == "text" else load_cindex()
    ast_cover = set()
    engine = "text"
    if cindex is not None:
        cc = os.path.join(args.build_dir, "compile_commands.json")
        if os.path.exists(cc):
            res = ast_findings(cindex, args.build_dir, files)
            if res is not None:
                ast_out, ast_cover = res
                findings.extend(ast_out)
                engine = "ast+text"
    if args.engine == "ast" and engine == "text":
        print("meshmp-lint: --engine ast requested but python clang "
              "bindings or compile_commands.json are unavailable",
              file=sys.stderr)
        return 2

    for path in files:
        try:
            lines = open(path, encoding="utf-8").read().splitlines()
        except OSError as e:
            print(f"meshmp-lint: cannot read {path}: {e}", file=sys.stderr)
            return 2
        rel = os.path.relpath(path)
        if os.path.abspath(path) not in ast_cover:
            findings.extend(check_determinism_text(rel, lines))
        findings.extend(check_copy_accounting(rel, lines))
        findings.extend(check_shared_state(rel, lines))
        findings.extend(check_hot_path(rel, lines))
        findings.extend(check_raw_threading(rel, lines))

    entries = load_allowlist(args.allowlist)
    kept, allowed = [], 0
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        if allowlisted(f, entries):
            allowed += 1
            continue
        kept.append(f)

    for f in kept:
        print(f)
    if not args.quiet:
        note = f", {allowed} allowlisted" if allowed else ""
        print(f"meshmp-lint [{engine}]: {len(files)} file(s), "
              f"{len(kept)} finding(s){note}", file=sys.stderr)
    return 1 if kept else 0


if __name__ == "__main__":
    sys.exit(main())
