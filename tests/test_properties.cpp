// Property-style sweeps across protocol parameters: message sizes straddling
// every protocol boundary, VIA parameter sweeps (MTU, ack cadence), scatter
// plan invariants, and a randomized MPI traffic stress test.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "cluster/gige_mesh.hpp"
#include "coll/scatter.hpp"
#include "mp/endpoint.hpp"
#include "mpi/mpi.hpp"
#include "sim/rng.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using sim::Task;

std::vector<std::byte> pattern(std::size_t n, std::uint32_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 97 + i * 131) & 0xff);
  }
  return v;
}

// --- protocol-boundary message sizes ----------------------------------------

class BoundarySizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BoundarySizes, RoundTripsBitExact) {
  const auto size = static_cast<std::size_t>(GetParam());
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  GigeMeshCluster c(cfg);
  mp::Endpoint e0(c.agent(0), mp::CoreParams{});
  mp::Endpoint e1(c.agent(1), mp::CoreParams{});
  bool ok = false;
  auto receiver = [](mp::Endpoint& ep, std::size_t n, bool& flag) -> Task<> {
    mp::Message m = co_await ep.recv(0, 1);
    flag = m.data == pattern(n, static_cast<std::uint32_t>(n));
    co_await ep.send(0, 2, std::move(m.data));
  };
  auto sender = [](mp::Endpoint& ep, std::size_t n) -> Task<> {
    co_await ep.send(1, 1, pattern(n, static_cast<std::uint32_t>(n)));
    mp::Message back = co_await ep.recv(1, 2);
    EXPECT_EQ(back.data.size(), n);
  };
  receiver(e1, size, ok).detach();
  sender(e0, size).detach();
  c.run();
  EXPECT_TRUE(ok) << "size " << size;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BoundarySizes,
    ::testing::Values(
        // around one MTU payload (1472)
        1471, 1472, 1473,
        // around the eager/rendezvous threshold (16 KiB)
        16383, 16384, 16385,
        // around fragment-count boundaries of the rendezvous path
        2 * 1472, 11 * 1472 + 1,
        // degenerate
        0, 1),
    [](const auto& info) { return "b" + std::to_string(info.param); });

// --- VIA parameter sweeps -----------------------------------------------------

class MtuSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(MtuSweep, FragmentationIsSizeAgnostic) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  cfg.via.mtu_payload = GetParam();
  GigeMeshCluster c(cfg);
  mp::Endpoint e0(c.agent(0), mp::CoreParams{});
  mp::Endpoint e1(c.agent(1), mp::CoreParams{});
  bool ok = false;
  auto receiver = [](mp::Endpoint& ep, bool& flag) -> Task<> {
    mp::Message m = co_await ep.recv(0, 1);
    flag = m.data == pattern(10'000, 3);
  };
  auto sender = [](mp::Endpoint& ep) -> Task<> {
    co_await ep.send(1, 1, pattern(10'000, 3));
  };
  receiver(e1, ok).detach();
  sender(e0).detach();
  c.run();
  EXPECT_TRUE(ok) << "mtu " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Mtus, MtuSweep,
                         ::testing::Values(256, 512, 1472, 4096, 9000),
                         [](const auto& info) {
                           return "mtu" + std::to_string(info.param);
                         });

class AckEverySweep : public ::testing::TestWithParam<int> {};

TEST_P(AckEverySweep, ReliableStreamSurvivesLoss) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  cfg.via.ack_every = GetParam();
  cfg.via.retx_timeout = 2_ms;
  cfg.link.drop_prob = 0.03;
  GigeMeshCluster c(cfg);
  mp::Endpoint e0(c.agent(0), mp::CoreParams{});
  mp::Endpoint e1(c.agent(1), mp::CoreParams{});
  int got = 0;
  auto receiver = [](mp::Endpoint& ep, int n, int& cnt) -> Task<> {
    for (int i = 0; i < n; ++i) {
      mp::Message m = co_await ep.recv(0, 1);
      EXPECT_EQ(m.data, pattern(3000, static_cast<std::uint32_t>(i)));
      ++cnt;
    }
  };
  auto sender = [](mp::Endpoint& ep, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      co_await ep.send(1, 1, pattern(3000, static_cast<std::uint32_t>(i)));
    }
  };
  receiver(e1, 25, got).detach();
  sender(e0, 25).detach();
  c.engine().run_until(10_s);
  EXPECT_EQ(got, 25) << "ack_every " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Cadence, AckEverySweep, ::testing::Values(1, 4, 16),
                         [](const auto& info) {
                           return "every" + std::to_string(info.param);
                         });

// --- scatter plan invariants ---------------------------------------------------

class PlanSweep
    : public ::testing::TestWithParam<std::pair<topo::Coord, coll::ScatterAlg>> {
};

TEST_P(PlanSweep, RoutesAreMinimalAndCountsConsistent) {
  const auto& [shape, alg] = GetParam();
  const topo::Torus t(shape);
  for (topo::Rank root : {topo::Rank{0}, t.size() / 2}) {
    const auto plan = coll::make_scatter_plan(t, root, alg);
    EXPECT_EQ(plan.emit_order.size(),
              static_cast<std::size_t>(t.size()) - 1);
    std::int64_t interior_total = 0;
    for (topo::Rank d = 0; d < t.size(); ++d) {
      if (d == root) continue;
      const auto& route = plan.routes[static_cast<std::size_t>(d)];
      // Every route is minimal and really ends at d.
      EXPECT_EQ(static_cast<int>(route.size()), t.distance(root, d));
      topo::Coord cur = t.coord(root);
      for (auto dir : route) cur = *t.neighbor(cur, dir);
      EXPECT_EQ(t.rank(cur), d);
      interior_total += static_cast<std::int64_t>(route.size()) - 1;
    }
    // Forward counts account for exactly the interior hops of all routes.
    std::int64_t count_total = 0;
    for (int cnt : plan.forward_count) count_total += cnt;
    EXPECT_EQ(count_total, interior_total);
    EXPECT_EQ(plan.forward_count[static_cast<std::size_t>(root)], 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Plans, PlanSweep,
    ::testing::Values(std::pair{topo::Coord{8, 8}, coll::ScatterAlg::kSdf},
                      std::pair{topo::Coord{8, 8}, coll::ScatterAlg::kOpt},
                      std::pair{topo::Coord{4, 8, 8},
                                coll::ScatterAlg::kOpt},
                      std::pair{topo::Coord{6, 8, 8},
                                coll::ScatterAlg::kOpt}),
    [](const auto& info) {
      std::string name;
      for (int d = 0; d < info.param.first.ndims(); ++d) {
        if (d) name += "x";
        name += std::to_string(info.param.first[d]);
      }
      return name +
             (info.param.second == coll::ScatterAlg::kSdf ? "_sdf" : "_opt");
    });

// --- randomized traffic stress --------------------------------------------------

TEST(Stress, RandomizedTrafficAllDelivered) {
  // Every rank sends a random number of random-size messages to random
  // peers, then receives exactly what it was sent. A seed-deterministic
  // manifest makes the expected traffic checkable.
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{3, 3};
  GigeMeshCluster c(cfg);
  const int n = static_cast<int>(c.size());

  // Build the global manifest deterministically.
  sim::Rng rng(2026);
  std::vector<std::vector<std::pair<int, std::uint32_t>>> outgoing(
      static_cast<std::size_t>(n));  // per src: (dst, size)
  std::vector<int> expected(static_cast<std::size_t>(n), 0);
  for (int src = 0; src < n; ++src) {
    const int count = static_cast<int>(rng.uniform(3, 10));
    for (int k = 0; k < count; ++k) {
      int dst = static_cast<int>(rng.uniform(0, n - 1));
      if (dst == src) dst = (dst + 1) % n;
      const auto size = static_cast<std::uint32_t>(rng.uniform(1, 40'000));
      outgoing[static_cast<std::size_t>(src)].emplace_back(dst, size);
      ++expected[static_cast<std::size_t>(dst)];
    }
  }

  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  for (topo::Rank r = 0; r < c.size(); ++r) {
    eps.push_back(
        std::make_unique<mp::Endpoint>(c.agent(r), mp::CoreParams{}));
  }

  int finished = 0;
  std::int64_t bytes_received = 0;
  auto node = [](mp::Endpoint& ep,
                 std::vector<std::pair<int, std::uint32_t>> sends,
                 int expect, int& done, std::int64_t& rx_bytes) -> Task<> {
    sim::TaskGroup group(ep.engine());
    for (auto [dst, size] : sends) {
      group.add(ep.send(dst, 7, pattern(size, size)));
    }
    for (int i = 0; i < expect; ++i) {
      mp::Message m = co_await ep.recv(mp::Endpoint::kAny, 7);
      // Payload must match the sender's generator for its size.
      EXPECT_EQ(m.data, pattern(m.data.size(),
                                static_cast<std::uint32_t>(m.data.size())));
      rx_bytes += static_cast<std::int64_t>(m.data.size());
    }
    co_await group.join();
    ++done;
  };
  for (int r = 0; r < n; ++r) {
    node(*eps[static_cast<std::size_t>(r)],
         outgoing[static_cast<std::size_t>(r)],
         expected[static_cast<std::size_t>(r)], finished, bytes_received)
        .detach();
  }
  c.run();
  EXPECT_EQ(finished, n);
  std::int64_t bytes_sent = 0;
  for (const auto& v : outgoing) {
    for (auto [dst, size] : v) bytes_sent += size;
  }
  EXPECT_EQ(bytes_received, bytes_sent);
}

}  // namespace
