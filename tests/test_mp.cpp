// Tests for the message-passing core: eager and rendezvous protocols, token
// flow control, matching (wildcards, masks, ordering), self-sends.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/gige_mesh.hpp"
#include "mp/endpoint.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using mp::Endpoint;
using mp::Message;
using sim::Task;

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 7 + i * 13) & 0xff);
  }
  return v;
}

struct World {
  GigeMeshCluster cluster;
  std::vector<std::unique_ptr<Endpoint>> eps;
  int finished = 0;

  explicit World(topo::Coord shape, mp::CoreParams mp_params = {})
      : cluster([&] {
          GigeMeshConfig cfg;
          cfg.shape = shape;
          return cfg;
        }()) {
    for (topo::Rank r = 0; r < cluster.size(); ++r) {
      eps.push_back(
          std::make_unique<Endpoint>(cluster.agent(r), mp_params));
    }
  }

  Endpoint& ep(int r) { return *eps.at(static_cast<std::size_t>(r)); }

  /// Spawns `prog(ep)` on every rank and runs to completion.
  template <typename F>
  void run_spmd(F prog) {
    auto wrapper = [](F p, Endpoint& e, int& count) -> Task<> {
      co_await p(e);
      ++count;
    };
    for (auto& e : eps) wrapper(prog, *e, finished).detach();
    cluster.run();
    ASSERT_EQ(finished, static_cast<int>(eps.size()))
        << "some rank deadlocked";
  }
};

TEST(MpEager, SmallMessageRoundTrip) {
  World w(topo::Coord{4});
  bool ok = false;
  auto data = pattern(200);
  auto receiver = [](Endpoint& ep, std::vector<std::byte> expect,
                     bool& flag) -> Task<> {
    Message m = co_await ep.recv(0, 5);
    flag = m.data == expect && m.src == 0 && m.tag == 5;
  };
  auto sender = [](Endpoint& ep, std::vector<std::byte> d) -> Task<> {
    co_await ep.send(1, 5, std::move(d));
  };
  receiver(w.ep(1), data, ok).detach();
  sender(w.ep(0), data).detach();
  w.cluster.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(w.ep(0).counters().get("eager_tx"), 1);
}

TEST(MpRendezvous, LargeMessageUsesRmaPath) {
  World w(topo::Coord{4});
  const std::size_t n = 100'000;  // >= 16 KiB threshold
  auto data = pattern(n, 3);
  bool ok = false;
  auto receiver = [](Endpoint& ep, std::vector<std::byte> expect,
                     bool& flag) -> Task<> {
    Message m = co_await ep.recv(0, 1);
    flag = m.data == expect;
  };
  auto sender = [](Endpoint& ep, std::vector<std::byte> d) -> Task<> {
    co_await ep.send(1, 1, std::move(d));
  };
  receiver(w.ep(1), data, ok).detach();
  sender(w.ep(0), data).detach();
  w.cluster.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(w.ep(0).counters().get("rts_tx"), 1);
  EXPECT_EQ(w.ep(0).counters().get("rndv_rma_tx"), 1);
  EXPECT_EQ(w.ep(1).counters().get("rtr_tx"), 1);
  EXPECT_EQ(w.ep(1).counters().get("rndv_rx"), 1);
  EXPECT_EQ(w.ep(0).counters().get("eager_tx"), 0);
}

TEST(MpRendezvous, UnexpectedRtsMatchedByLaterRecv) {
  World w(topo::Coord{4});
  const std::size_t n = 64'000;
  auto data = pattern(n, 5);
  bool ok = false;
  auto receiver = [](Endpoint& ep, sim::Engine& eng,
                     std::vector<std::byte> expect, bool& flag) -> Task<> {
    // Delay so the RTS arrives before any recv is posted.
    co_await sim::delay(eng, 2_ms);
    Message m = co_await ep.recv(Endpoint::kAny, Endpoint::kAny);
    flag = m.data == expect;
  };
  auto sender = [](Endpoint& ep, std::vector<std::byte> d) -> Task<> {
    co_await ep.send(1, 9, std::move(d));
  };
  receiver(w.ep(1), w.cluster.engine(), data, ok).detach();
  sender(w.ep(0), data).detach();
  w.cluster.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(w.ep(1).counters().get("unexpected_rts"), 1);
}

TEST(MpOrdering, MixedSizesDoNotOvertake) {
  // A 20 KB rendezvous message followed by tiny eager messages with the same
  // tag must be received in send order.
  World w(topo::Coord{4});
  std::vector<std::size_t> sizes_got;
  auto receiver = [](Endpoint& ep, std::vector<std::size_t>& out) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      Message m = co_await ep.recv(0, 7);
      out.push_back(m.data.size());
    }
  };
  auto sender = [](Endpoint& ep) -> Task<> {
    co_await ep.send(1, 7, pattern(20'000));
    co_await ep.send(1, 7, pattern(10));
    co_await ep.send(1, 7, pattern(20));
  };
  receiver(w.ep(1), sizes_got).detach();
  sender(w.ep(0)).detach();
  w.cluster.run();
  ASSERT_EQ(sizes_got.size(), 3u);
  EXPECT_EQ(sizes_got[0], 20'000u);
  EXPECT_EQ(sizes_got[1], 10u);
  EXPECT_EQ(sizes_got[2], 20u);
}

TEST(MpMatching, WildcardSourceAndTag) {
  World w(topo::Coord{4});
  std::vector<int> srcs;
  auto receiver = [](Endpoint& ep, std::vector<int>& out) -> Task<> {
    for (int i = 0; i < 2; ++i) {
      Message m = co_await ep.recv(Endpoint::kAny, Endpoint::kAny);
      out.push_back(m.src);
    }
  };
  auto sender = [](Endpoint& ep, int tag) -> Task<> {
    co_await ep.send(0, tag, pattern(32));
  };
  receiver(w.ep(0), srcs).detach();
  sender(w.ep(1), 11).detach();
  sender(w.ep(2), 22).detach();
  w.cluster.run();
  ASSERT_EQ(srcs.size(), 2u);
  EXPECT_TRUE((srcs[0] == 1 && srcs[1] == 2) ||
              (srcs[0] == 2 && srcs[1] == 1));
}

TEST(MpMatching, TagMaskSeparatesClasses) {
  World w(topo::Coord{4});
  constexpr int kClassBit = 1 << 23;
  std::vector<int> tags;
  auto receiver = [](Endpoint& ep, std::vector<int>& out) -> Task<> {
    // Masked wildcard: match only user-class (bit 23 clear) messages.
    Message m = co_await ep.recv(Endpoint::kAny, 0, kClassBit);
    out.push_back(m.tag);
    // Then the collective-class message.
    Message m2 = co_await ep.recv(Endpoint::kAny, kClassBit | 3);
    out.push_back(m2.tag);
  };
  auto sender = [](Endpoint& ep) -> Task<> {
    co_await ep.send(1, kClassBit | 3, pattern(8));  // collective-class first
    co_await ep.send(1, 42, pattern(8));             // user-class second
  };
  receiver(w.ep(1), tags).detach();
  sender(w.ep(0)).detach();
  w.cluster.run();
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0], 42);           // masked recv skipped the collective msg
  EXPECT_EQ(tags[1], kClassBit | 3);
}

TEST(MpSelf, SendToSelfCompletes) {
  World w(topo::Coord{4});
  bool ok = false;
  auto prog = [](Endpoint& ep, bool& flag) -> Task<> {
    auto data = pattern(500, 9);
    co_await ep.send(ep.rank(), 3, data);
    Message m = co_await ep.recv(ep.rank(), 3);
    flag = m.data == data;
  };
  prog(w.ep(2), ok).detach();
  w.cluster.run();
  EXPECT_TRUE(ok);
}

TEST(MpFlowControl, FloodDoesNotOverrunDescriptors) {
  // Blast 200 eager messages one way with a receiver that consumes slowly;
  // tokens must throttle the sender and nothing may hit rx_no_descriptor.
  mp::CoreParams params;
  params.tokens = 8;
  params.credit_return_threshold = 4;
  World w(topo::Coord{4}, params);
  const int n = 200;
  int got = 0;
  auto receiver = [](Endpoint& ep, sim::Engine& eng, int count,
                     int& cnt) -> Task<> {
    for (int i = 0; i < count; ++i) {
      (void)co_await ep.recv(0, 1);
      co_await sim::delay(eng, 30_us);  // slow consumer
      ++cnt;
    }
  };
  auto sender = [](Endpoint& ep, int count) -> Task<> {
    for (int i = 0; i < count; ++i) {
      co_await ep.send(1, 1, pattern(512, static_cast<std::uint8_t>(i)));
    }
  };
  receiver(w.ep(1), w.cluster.engine(), n, got).detach();
  sender(w.ep(0), n).detach();
  w.cluster.run();
  EXPECT_EQ(got, n);
  EXPECT_GT(w.ep(0).counters().get("token_stalls"), 0);
  // The whole point of the paper's token scheme: no message ever found the
  // receiving VI without a pre-posted descriptor (all 200 arrived).
}

TEST(MpFlowControl, CreditsComeBackBothWays) {
  mp::CoreParams params;
  params.tokens = 8;
  params.credit_return_threshold = 4;
  World w(topo::Coord{4}, params);
  // Bidirectional traffic: piggybacked credits get exercised.
  auto node = [](Endpoint& ep, int peer, int count) -> Task<> {
    for (int i = 0; i < count; ++i) {
      co_await ep.send(peer, 1, pattern(256));
      (void)co_await ep.recv(peer, 1);
    }
  };
  node(w.ep(0), 1, 40).detach();
  node(w.ep(1), 0, 40).detach();
  w.cluster.run();
  const auto pig0 = w.ep(0).counters().get("credits_piggybacked");
  const auto pig1 = w.ep(1).counters().get("credits_piggybacked");
  EXPECT_GT(pig0 + pig1, 0);
}

TEST(MpFlowControl, NoCreditStormAtMinimalThreshold) {
  // Regression: credit messages must not generate credits themselves.
  // With one-token channels and a return threshold of 1, a buggy
  // implementation ping-pongs credits forever (the simulation never ends).
  mp::CoreParams params;
  params.tokens = 2;
  params.credit_return_threshold = 1;
  World w(topo::Coord{4}, params);
  int got = 0;
  auto receiver = [](Endpoint& ep, int n, int& cnt) -> Task<> {
    for (int i = 0; i < n; ++i) {
      (void)co_await ep.recv(0, 1);
      ++cnt;
    }
  };
  auto sender = [](Endpoint& ep, int n) -> Task<> {
    for (int i = 0; i < n; ++i) co_await ep.send(1, 1, pattern(256));
  };
  receiver(w.ep(1), 30, got).detach();
  sender(w.ep(0), 30).detach();
  w.cluster.run();  // must terminate
  EXPECT_EQ(got, 30);
  // Credits returned can never exceed messages that consumed tokens.
  EXPECT_LE(w.ep(1).counters().get("credits_explicit") +
                w.ep(1).counters().get("credits_piggybacked"),
            31);
}

TEST(MpMultiPair, CrossTrafficStaysSeparated) {
  World w(topo::Coord{3, 3});
  // Every rank sends its rank id to rank 0 with tag = rank; rank 0 checks.
  int checked = 0;
  auto receiver = [](Endpoint& ep, int nranks, int& ok) -> Task<> {
    for (int r = 1; r < nranks; ++r) {
      Message m = co_await ep.recv(r, r);
      if (m.data.size() == static_cast<std::size_t>(r) * 10) ++ok;
    }
  };
  auto sender = [](Endpoint& ep) -> Task<> {
    co_await ep.send(0, ep.rank(),
                     pattern(static_cast<std::size_t>(ep.rank()) * 10));
  };
  receiver(w.ep(0), 9, checked).detach();
  for (int r = 1; r < 9; ++r) sender(w.ep(r)).detach();
  w.cluster.run();
  EXPECT_EQ(checked, 8);
}

}  // namespace
