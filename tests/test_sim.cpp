// Unit and property tests for the discrete-event engine, coroutine tasks and
// synchronization primitives.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace {

using namespace meshmp::sim;
using namespace meshmp::sim::literals;

TEST(Time, Literals) {
  EXPECT_EQ(1_us, 1000_ns);
  EXPECT_EQ(1_ms, 1000_us);
  EXPECT_EQ(1_s, 1000_ms);
  EXPECT_EQ(18.5_us, 18500);
  EXPECT_DOUBLE_EQ(to_us(18500), 18.5);
}

TEST(Time, TransferTimeRoundsUp) {
  // 1 byte at 1 GB/s is exactly 1 ns.
  EXPECT_EQ(transfer_time(1, 1e9), 1);
  // 1500 bytes at 125 MB/s (GigE line rate) = 12 us.
  EXPECT_EQ(transfer_time(1500, 125e6), 12000);
  // Zero bytes cost nothing; fractional ns round up.
  EXPECT_EQ(transfer_time(0, 125e6), 0);
  EXPECT_EQ(transfer_time(1, 3e9), 1);
}

TEST(Time, RateComputation) {
  EXPECT_DOUBLE_EQ(rate_mb_per_s(100'000'000, 1_s), 100.0);
  EXPECT_DOUBLE_EQ(rate_mb_per_s(1, 0), 0.0);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(30_ns, [&] { order.push_back(3); });
  eng.schedule(10_ns, [&] { order.push_back(1); });
  eng.schedule(20_ns, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30);
}

TEST(Engine, TiesBreakInSchedulingOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule(5_ns, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, NestedScheduling) {
  Engine eng;
  Time inner_fired = -1;
  eng.schedule(10_ns, [&] {
    eng.schedule(5_ns, [&] { inner_fired = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(inner_fired, 15);
}

TEST(Engine, RejectsPastScheduling) {
  Engine eng;
  eng.schedule(10_ns, [&] {
    EXPECT_THROW(eng.schedule_at(5_ns, [] {}), std::invalid_argument);
  });
  eng.run();
  EXPECT_THROW(eng.schedule(-1, [] {}), std::invalid_argument);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine eng;
  int fired = 0;
  eng.schedule(10_ns, [&] { ++fired; });
  eng.schedule(20_ns, [&] { ++fired; });
  eng.schedule(30_ns, [&] { ++fired; });
  EXPECT_TRUE(eng.run_until(20_ns));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), 20);
  EXPECT_FALSE(eng.run_until(100_ns));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(eng.now(), 100);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine eng;
    Rng rng(42);
    std::vector<Time> stamps;
    for (int i = 0; i < 100; ++i) {
      eng.schedule(static_cast<Duration>(rng.below(1000)),
                   [&stamps, &eng] { stamps.push_back(eng.now()); });
    }
    eng.run();
    return stamps;
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- Tasks ---------------------------------------------------------------

Task<> write_then_delay(Engine& eng, std::vector<int>& log, int id) {
  log.push_back(id);
  co_await delay(eng, 10_ns);
  log.push_back(id + 100);
}

TEST(Task, EagerStartRunsToFirstSuspension) {
  Engine eng;
  std::vector<int> log;
  auto t = write_then_delay(eng, log, 1);
  EXPECT_EQ(log, (std::vector<int>{1}));  // ran before engine.run()
  EXPECT_FALSE(t.done());
  eng.run();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(log, (std::vector<int>{1, 101}));
}

Task<int> add_later(Engine& eng, int a, int b) {
  co_await delay(eng, 5_ns);
  co_return a + b;
}

Task<int> compose(Engine& eng) {
  int x = co_await add_later(eng, 1, 2);
  int y = co_await add_later(eng, x, 10);
  co_return y;
}

TEST(Task, ValueCompositionAcrossAwaits) {
  Engine eng;
  int result = 0;
  auto outer = [](Engine& e, int& out) -> Task<> {
    out = co_await compose(e);
  }(eng, result);
  eng.run();
  EXPECT_TRUE(outer.done());
  EXPECT_EQ(result, 13);
  EXPECT_EQ(eng.now(), 10);
}

Task<> thrower(Engine& eng) {
  co_await delay(eng, 1_ns);
  throw std::runtime_error("boom");
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Engine eng;
  bool caught = false;
  auto outer = [](Engine& e, bool& flag) -> Task<> {
    try {
      co_await thrower(e);
    } catch (const std::runtime_error& ex) {
      flag = std::string(ex.what()) == "boom";
    }
  }(eng, caught);
  eng.run();
  EXPECT_TRUE(outer.done());
  EXPECT_TRUE(caught);
}

TEST(Task, DetachedTaskCompletes) {
  Engine eng;
  std::vector<int> log;
  write_then_delay(eng, log, 7).detach();
  eng.run();
  EXPECT_EQ(log, (std::vector<int>{7, 107}));
}

TEST(Task, DetachOfCompletedFailedTaskRethrows) {
  Engine eng;
  auto t = []() -> Task<> {
    throw std::runtime_error("early");
    co_return;  // unreachable; makes this a coroutine
  }();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.detach(), std::runtime_error);
}

// --- Trigger / Signal ----------------------------------------------------

TEST(Trigger, WakesAllWaiters) {
  Engine eng;
  Trigger trig(eng);
  int woke = 0;
  auto waiter = [](Trigger& t, int& n) -> Task<> {
    co_await t.wait();
    ++n;
  };
  for (int i = 0; i < 3; ++i) waiter(trig, woke).detach();
  eng.schedule(50_ns, [&] { trig.fire(); });
  eng.run();
  EXPECT_EQ(woke, 3);
  EXPECT_TRUE(trig.fired());
}

TEST(Trigger, WaitAfterFirePassesThrough) {
  Engine eng;
  Trigger trig(eng);
  trig.fire();
  bool done = false;
  [](Trigger& t, bool& flag) -> Task<> {
    co_await t.wait();
    flag = true;
  }(trig, done)
      .detach();
  EXPECT_TRUE(done);  // never suspended
}

TEST(Signal, WaitUntilPredicateLoops) {
  Engine eng;
  Signal sig(eng);
  int value = 0;
  bool finished = false;
  [](Signal& s2, int& v, bool& flag) -> Task<> {
    co_await wait_until(s2, [&v] { return v >= 3; });
    flag = true;
  }(sig, value, finished)
      .detach();
  for (int i = 1; i <= 5; ++i) {
    eng.schedule(i * 10_ns, [&, i] {
      value = i;
      sig.notify_all();
    });
  }
  eng.run_until(25_ns);
  EXPECT_FALSE(finished);
  eng.run();
  EXPECT_TRUE(finished);
}

// --- Queue ---------------------------------------------------------------

TEST(Queue, PopBlocksUntilPush) {
  Engine eng;
  Queue<int> q(eng);
  std::vector<int> got;
  [](Queue<int>& qq, std::vector<int>& out) -> Task<> {
    out.push_back(co_await qq.pop());
    out.push_back(co_await qq.pop());
  }(q, got)
      .detach();
  eng.schedule(10_ns, [&] { q.push(1); });
  eng.schedule(20_ns, [&] { q.push(2); });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Queue, BufferedValuesPopImmediately) {
  Engine eng;
  Queue<int> q(eng);
  q.push(5);
  q.push(6);
  std::vector<int> got;
  [](Queue<int>& qq, std::vector<int>& out) -> Task<> {
    out.push_back(co_await qq.pop());
    out.push_back(co_await qq.pop());
  }(q, got)
      .detach();
  EXPECT_EQ(got, (std::vector<int>{5, 6}));  // no suspension needed
  EXPECT_TRUE(q.empty());
}

TEST(Queue, MultipleConsumersEachGetOneItem) {
  Engine eng;
  Queue<int> q(eng);
  std::vector<int> got;
  auto consumer = [](Queue<int>& qq, std::vector<int>& out) -> Task<> {
    out.push_back(co_await qq.pop());
  };
  for (int i = 0; i < 4; ++i) consumer(q, got).detach();
  eng.schedule(5_ns, [&] {
    for (int v = 0; v < 4; ++v) q.push(v);
  });
  eng.run();
  // FIFO handoff: consumer i gets value i.
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Queue, TryPop) {
  Engine eng;
  Queue<int> q(eng);
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(9);
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
}

// --- Resource ------------------------------------------------------------

TEST(Resource, SerializesUnitCapacity) {
  Engine eng;
  Resource cpu(eng, 1);
  std::vector<std::pair<int, Time>> spans;
  auto job = [](Engine& e, Resource& r, std::vector<std::pair<int, Time>>& out,
                int id) -> Task<> {
    co_await r.consume(100_ns);
    out.emplace_back(id, e.now());
  };
  for (int i = 0; i < 3; ++i) job(eng, cpu, spans, i).detach();
  eng.run();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0], (std::pair<int, Time>{0, 100}));
  EXPECT_EQ(spans[1], (std::pair<int, Time>{1, 200}));
  EXPECT_EQ(spans[2], (std::pair<int, Time>{2, 300}));
  EXPECT_EQ(cpu.busy_time(), 300);
}

TEST(Resource, PriorityJumpsQueue) {
  Engine eng;
  Resource cpu(eng, 1);
  std::vector<std::string> order;
  auto worker = [](Resource& r, std::vector<std::string>& out,
                   std::string name, int prio) -> Task<> {
    co_await r.consume(100_ns, prio);
    out.push_back(std::move(name));
  };
  // "first" grabs the CPU; "user" and "irq" queue up while it holds it.
  worker(cpu, order, "first", Resource::kUserPriority).detach();
  eng.schedule(10_ns, [&] {
    worker(cpu, order, "user", Resource::kUserPriority).detach();
    worker(cpu, order, "irq", Resource::kInterruptPriority).detach();
  });
  eng.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"first", "irq", "user"}));
}

TEST(Resource, CountedCapacityAdmitsConcurrency) {
  Engine eng;
  Resource r(eng, 3);
  int concurrent = 0;
  int peak = 0;
  auto job = [](Engine& e, Resource& res, int& cur, int& pk) -> Task<> {
    co_await res.acquire();
    ++cur;
    pk = std::max(pk, cur);
    co_await delay(e, 50_ns);
    --cur;
    res.release();
  };
  for (int i = 0; i < 9; ++i) job(eng, r, concurrent, peak).detach();
  eng.run();
  EXPECT_EQ(peak, 3);
  EXPECT_EQ(eng.now(), 150);  // 9 jobs / 3 wide * 50 ns
}

TEST(Resource, NoStealWhileWaiterPending) {
  Engine eng;
  Resource r(eng, 1);
  std::vector<int> order;
  // Task 0 holds; task 1 waits; at release time task 2 tries to acquire in
  // the same timestamp. FIFO must hand to task 1.
  auto holder = [](Engine& e, Resource& res) -> Task<> {
    co_await res.acquire();
    co_await delay(e, 100_ns);
    res.release();
  };
  auto taker = [](Resource& res, std::vector<int>& out, int id) -> Task<> {
    co_await res.acquire();
    out.push_back(id);
    res.release();
  };
  holder(eng, r).detach();
  eng.schedule(1_ns, [&] { taker(r, order, 1).detach(); });
  eng.schedule(100_ns, [&] { taker(r, order, 2).detach(); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// --- Rng / Stats ---------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(7);
  Rng b = a.fork();
  int same = 0;
  Rng a2(7);
  a2.next();  // advance past the fork draw
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += r.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Stat, Moments) {
  Stat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Counters, AccumulateByKey) {
  Counters c;
  c.inc("drops");
  c.inc("drops", 2);
  c.inc("retx");
  EXPECT_EQ(c.get("drops"), 3);
  EXPECT_EQ(c.get("retx"), 1);
  EXPECT_EQ(c.get("missing"), 0);
}

}  // namespace
