// Tests for the TCP/IP baseline stack: handshake, stream semantics,
// windowing, reliability under loss, IP forwarding across the mesh, and the
// latency relationship to M-VIA that motivates the paper.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cluster/gige_mesh.hpp"
#include "cluster/tcp_mesh.hpp"
#include "sim/engine.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using cluster::TcpMeshCluster;
using cluster::TcpMeshConfig;
using sim::Task;
using tcpstack::TcpSocket;

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed + i * 37) & 0xff);
  }
  return v;
}

TcpMeshConfig ring4() {
  TcpMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  return cfg;
}

struct Pair {
  TcpSocket* a = nullptr;
  TcpSocket* b = nullptr;
};

Task<> dial(tcpstack::TcpStack& from, net::NodeId to, std::uint16_t port,
            Pair& out) {
  out.a = co_await from.connect(to, port);
}

Task<> answer(tcpstack::TcpStack& at, std::uint16_t port, Pair& out) {
  out.b = co_await at.accept(port);
}

Pair connect_pair(TcpMeshCluster& c, topo::Rank ra, topo::Rank rb,
                  std::uint16_t port = 5000) {
  Pair p;
  c.stack(rb).listen(port);
  answer(c.stack(rb), port, p).detach();
  dial(c.stack(ra), rb, port, p).detach();
  c.engine().run();
  EXPECT_NE(p.a, nullptr);
  EXPECT_NE(p.b, nullptr);
  return p;
}

TEST(TcpConnect, HandshakeWorks) {
  TcpMeshCluster c(ring4());
  Pair p = connect_pair(c, 0, 1);
  EXPECT_TRUE(p.a->connected());
  EXPECT_TRUE(p.b->connected());
  EXPECT_EQ(p.a->remote_node(), 1);
  EXPECT_EQ(p.b->remote_node(), 0);
}

TEST(TcpConnect, RefusedWithoutListener) {
  TcpMeshCluster c(ring4());
  Pair p;
  dial(c.stack(0), 1, 9999, p).detach();
  c.engine().run();
  EXPECT_EQ(p.a, nullptr);
  EXPECT_EQ(c.stack(1).counters().get("conn_refused"), 1);
}

Task<> send_all(TcpSocket& s, std::vector<std::byte> data) {
  co_await s.send(std::move(data));
}

Task<> recv_n(TcpSocket& s, std::int64_t n, std::vector<std::byte>& out,
              bool& done) {
  out = co_await s.recv_exact(n);
  done = true;
}

TEST(TcpStream, SmallTransferBitExact) {
  TcpMeshCluster c(ring4());
  Pair p = connect_pair(c, 0, 1);
  auto data = pattern(100);
  std::vector<std::byte> got;
  bool done = false;
  recv_n(*p.b, 100, got, done).detach();
  send_all(*p.a, data).detach();
  c.engine().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got, data);
}

TEST(TcpStream, LargeTransferSpansSegmentsAndWindow) {
  TcpMeshCluster c(ring4());
  Pair p = connect_pair(c, 0, 1);
  const std::size_t n = 2'000'000;  // >> 256 KiB window, ~1382 segments
  auto data = pattern(n, 3);
  std::vector<std::byte> got;
  bool done = false;
  recv_n(*p.b, static_cast<std::int64_t>(n), got, done).detach();
  send_all(*p.a, data).detach();
  c.engine().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got, data);
}

TEST(TcpStream, MultipleSendsCoalesceIntoStream) {
  TcpMeshCluster c(ring4());
  Pair p = connect_pair(c, 0, 1);
  auto sender = [](TcpSocket& s) -> Task<> {
    for (int i = 0; i < 10; ++i) {
      co_await s.send(pattern(500, static_cast<std::uint8_t>(i)));
    }
  };
  std::vector<std::byte> got;
  bool done = false;
  recv_n(*p.b, 5000, got, done).detach();
  sender(*p.a).detach();
  c.engine().run();
  ASSERT_TRUE(done);
  for (int i = 0; i < 10; ++i) {
    auto expect = pattern(500, static_cast<std::uint8_t>(i));
    EXPECT_TRUE(std::equal(expect.begin(), expect.end(),
                           got.begin() + i * 500))
        << "chunk " << i;
  }
}

TEST(TcpStream, RecoversFromLoss) {
  TcpMeshConfig cfg = ring4();
  cfg.link.drop_prob = 0.02;
  TcpMeshCluster c(cfg);
  Pair p = connect_pair(c, 0, 1);
  const std::size_t n = 300'000;
  auto data = pattern(n, 7);
  std::vector<std::byte> got;
  bool done = false;
  recv_n(*p.b, static_cast<std::int64_t>(n), got, done).detach();
  send_all(*p.a, data).detach();
  c.engine().run_until(10_s);
  ASSERT_TRUE(done);
  EXPECT_EQ(got, data);
  EXPECT_GT(p.a->counters().get("retransmits"), 0);
}

TEST(TcpForwarding, MultiHopStream) {
  TcpMeshCluster c(ring4());
  Pair p = connect_pair(c, 0, 2);  // 2 hops on the ring
  const std::size_t n = 50'000;
  auto data = pattern(n, 9);
  std::vector<std::byte> got;
  bool done = false;
  recv_n(*p.b, static_cast<std::int64_t>(n), got, done).detach();
  send_all(*p.a, data).detach();
  c.engine().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got, data);
  EXPECT_GT(c.stack(1).counters().get("fwd_frames") +
                c.stack(3).counters().get("fwd_frames"),
            0);
}

// The relationship the whole paper hinges on: TCP small-message latency is
// at least ~30% above M-VIA on identical hardware (paper sec. 4.1).
TEST(TcpVsVia, TcpLatencyAtLeast30PercentHigher) {
  // TCP ping
  double tcp_us = 0;
  {
    TcpMeshCluster c(ring4());
    Pair p = connect_pair(c, 0, 1);
    bool done = false;
    sim::Time t1 = 0;
    auto pong = [](TcpSocket& s) -> Task<> {
      auto m = co_await s.recv_exact(64);
      co_await s.send(std::move(m));
    };
    auto ping = [](TcpSocket& s, sim::Engine& eng, sim::Time& end,
                   bool& ok) -> Task<> {
      co_await s.send(pattern(64));
      (void)co_await s.recv_exact(64);
      end = eng.now();
      ok = true;
    };
    const sim::Time t0 = c.engine().now();
    pong(*p.b).detach();
    ping(*p.a, c.engine(), t1, done).detach();
    c.engine().run();
    ASSERT_TRUE(done);
    tcp_us = sim::to_us(t1 - t0) / 2.0;
  }
  // M-VIA ping
  double via_us = 0;
  {
    cluster::GigeMeshConfig cfg;
    cfg.shape = topo::Coord{4};
    cluster::GigeMeshCluster c(cfg);
    via::Vi* va = nullptr;
    via::Vi* vb = nullptr;
    auto conn_a = [](via::KernelAgent& ag, via::Vi*& out) -> Task<> {
      out = co_await ag.connect(1, 1);
    };
    auto conn_b = [](via::KernelAgent& ag, via::Vi*& out) -> Task<> {
      out = co_await ag.accept(1);
    };
    c.agent(1).listen(1);
    conn_b(c.agent(1), vb).detach();
    conn_a(c.agent(0), va).detach();
    c.engine().run();
    ASSERT_NE(va, nullptr);
    ASSERT_NE(vb, nullptr);
    va->post_recv(1024);
    vb->post_recv(1024);
    bool done = false;
    sim::Time t1 = 0;
    auto pong = [](via::Vi& vi) -> Task<> {
      auto m = co_await vi.recv_completion();
      co_await vi.send(std::move(m.data));
    };
    auto ping = [](via::Vi& vi, sim::Engine& eng, sim::Time& end,
                   bool& ok) -> Task<> {
      co_await vi.send(pattern(64));
      (void)co_await vi.recv_completion();
      end = eng.now();
      ok = true;
    };
    const sim::Time t0 = c.engine().now();
    pong(*vb).detach();
    ping(*va, c.engine(), t1, done).detach();
    c.engine().run();
    ASSERT_TRUE(done);
    via_us = sim::to_us(t1 - t0) / 2.0;
  }
  EXPECT_GE(tcp_us, via_us * 1.3)
      << "tcp=" << tcp_us << "us via=" << via_us << "us";
  // And the M-VIA number itself must sit near the paper's 18.5 us.
  EXPECT_NEAR(via_us, 18.5, 3.0);
}

}  // namespace
