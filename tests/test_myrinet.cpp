// Tests for the Myrinet switched-cluster model: GM-like transport semantics,
// fragmentation over the 4 KiB GM MTU, recursive-doubling allreduce, the
// crossbar's non-interference, latency sanity, and TaskGroup error handling.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cluster/myrinet.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using cluster::GmMessage;
using cluster::MyrinetCluster;
using cluster::MyrinetConfig;
using sim::Task;

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed + i * 17) & 0xff);
  }
  return v;
}

TEST(Myrinet, SmallMessageRoundTrip) {
  MyrinetConfig cfg;
  cfg.nodes = 4;
  MyrinetCluster c(cfg);
  bool ok = false;
  auto receiver = [](cluster::GmPort& p, bool& flag) -> Task<> {
    GmMessage m = co_await p.recv(0, 5);
    flag = m.data == pattern(300) && m.src == 0 && m.tag == 5;
  };
  auto sender = [](cluster::GmPort& p) -> Task<> {
    co_await p.send(3, 5, pattern(300));
  };
  receiver(c.port(3), ok).detach();
  sender(c.port(0)).detach();
  c.run();
  EXPECT_TRUE(ok);
}

TEST(Myrinet, LargeMessageFragmentsOverGmMtu) {
  MyrinetConfig cfg;
  cfg.nodes = 4;
  MyrinetCluster c(cfg);
  const std::size_t n = 50'000;  // 13 fragments at 4096
  bool ok = false;
  auto receiver = [](cluster::GmPort& p, std::size_t sz, bool& flag)
      -> Task<> {
    GmMessage m = co_await p.recv(-1, -1);
    flag = m.data == pattern(sz, 9);
  };
  auto sender = [](cluster::GmPort& p, std::size_t sz) -> Task<> {
    co_await p.send(1, 1, pattern(sz, 9));
  };
  receiver(c.port(1), n, ok).detach();
  sender(c.port(0), n).detach();
  c.run();
  EXPECT_TRUE(ok);
}

TEST(Myrinet, LatencyWellBelowGigE) {
  // The whole point of the comparison cluster: user-level polled transport
  // through an ideal crossbar lands in single-digit microseconds.
  MyrinetConfig cfg;
  cfg.nodes = 4;
  MyrinetCluster c(cfg);
  sim::Time t1 = 0;
  auto pong = [](cluster::GmPort& p) -> Task<> {
    GmMessage m = co_await p.recv(0, 1);
    co_await p.send(0, 1, std::move(m.data));
  };
  auto ping = [](cluster::GmPort& p, sim::Engine& eng,
                 sim::Time& end) -> Task<> {
    co_await p.send(1, 1, pattern(64));
    (void)co_await p.recv(1, 1);
    end = eng.now();
  };
  pong(c.port(1)).detach();
  ping(c.port(0), c.engine(), t1).detach();
  c.run();
  const double rtt2 = sim::to_us(t1) / 2.0;
  EXPECT_LT(rtt2, 10.0);
  EXPECT_GT(rtt2, 1.0);
}

TEST(Myrinet, AllreduceSumsAcrossPowerOfTwo) {
  MyrinetConfig cfg;
  cfg.nodes = 16;
  MyrinetCluster c(cfg);
  int oks = 0;
  auto node = [](cluster::GmPort& p, int& count) -> Task<> {
    const double s = co_await p.allreduce_sum(1.0 + p.rank());
    if (s == 16.0 + 120.0) ++count;  // n + sum(0..15)
  };
  for (int r = 0; r < 16; ++r) node(c.port(r), oks).detach();
  c.run();
  EXPECT_EQ(oks, 16);
}

TEST(Myrinet, AllreduceRejectsNonPowerOfTwo) {
  MyrinetConfig cfg;
  cfg.nodes = 6;
  MyrinetCluster c(cfg);
  bool threw = false;
  auto node = [](cluster::GmPort& p, bool& flag) -> Task<> {
    try {
      (void)co_await p.allreduce_sum(1.0);
    } catch (const std::invalid_argument&) {
      flag = true;
    }
  };
  node(c.port(0), threw).detach();
  c.run();
  EXPECT_TRUE(threw);
}

TEST(Myrinet, CrossFlowsDoNotInterfere) {
  // Two disjoint pairs stream simultaneously; the full-bisection crossbar
  // must give both the same completion time as a single pair alone.
  auto run_pairs = [](int npairs) {
    MyrinetConfig cfg;
    cfg.nodes = 8;
    MyrinetCluster c(cfg);
    sim::Time end = 0;
    int done = 0;
    auto rx = [](cluster::GmPort& p, int src, sim::Engine& eng, int total,
                 int& fin, sim::Time& out) -> Task<> {
      for (int i = 0; i < 20; ++i) (void)co_await p.recv(src, 1);
      if (++fin == total) out = eng.now();
    };
    auto tx = [](cluster::GmPort& p, int dst) -> Task<> {
      for (int i = 0; i < 20; ++i) co_await p.send(dst, 1, pattern(4000));
    };
    for (int k = 0; k < npairs; ++k) {
      rx(c.port(2 * k + 1), 2 * k, c.engine(), npairs, done, end).detach();
      tx(c.port(2 * k), 2 * k + 1).detach();
    }
    c.run();
    return end;
  };
  const sim::Time one = run_pairs(1);
  const sim::Time four = run_pairs(4);
  EXPECT_EQ(one, four);
}

// --- TaskGroup error propagation (sim utility used across the stack) --------

Task<> failing_task(sim::Engine& eng) {
  co_await sim::delay(eng, 10_ns);
  throw std::runtime_error("subtask failed");
}

Task<> fine_task(sim::Engine& eng, int& done) {
  co_await sim::delay(eng, 20_ns);
  ++done;
}

TEST(TaskGroup, JoinRethrowsFirstError) {
  sim::Engine eng;
  int done = 0;
  bool caught = false;
  auto runner = [](sim::Engine& e, int& d, bool& c) -> Task<> {
    sim::TaskGroup group(e);
    group.add(fine_task(e, d));
    group.add(failing_task(e));
    group.add(fine_task(e, d));
    try {
      co_await group.join();
    } catch (const std::runtime_error&) {
      c = true;
    }
  };
  runner(eng, done, caught).detach();
  eng.run();
  EXPECT_TRUE(caught);
  EXPECT_EQ(done, 2);  // healthy siblings still completed
}

TEST(TaskGroup, EmptyJoinIsImmediate) {
  sim::Engine eng;
  bool done = false;
  auto runner = [](sim::Engine& e, bool& d) -> Task<> {
    sim::TaskGroup group(e);
    co_await group.join();
    d = true;
  };
  runner(eng, done).detach();
  EXPECT_TRUE(done);  // no suspension necessary
}

}  // namespace
