// Tests for the pooled zero-copy data path: buf::Pool / Buffer / Slice
// semantics (refcounted aliasing, copy-on-write corruption, CRC memoization,
// free-list recycling), the charge_copy accounting seam, the "buf.pool"
// quiesce audit, and an end-to-end payload-integrity property test that
// pushes random payloads through routed forwarding, a corruption burst
// (CRC discard + retransmit) and a mid-run link flap.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "buf/copy.hpp"
#include "buf/pool.hpp"
#include "chk/audit.hpp"
#include "chk/determinism.hpp"
#include "chk/digest.hpp"
#include "cluster/gige_mesh.hpp"
#include "cluster/report.hpp"
#include "flt/fault.hpp"
#include "hw/cpu.hpp"
#include "mp/endpoint.hpp"
#include "net/frame.hpp"
#include "sim/engine.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using sim::Engine;
using sim::Task;

constexpr topo::Dir kPlusX{0, +1};

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  }
  return v;
}

// --- pool / slice semantics --------------------------------------------------

TEST(BufPool, AdoptIsZeroCopyAndReturnsOnRelease) {
  auto& pool = buf::Pool::instance();
  const auto base = pool.outstanding();
  auto v = pattern(100, 3);
  const std::byte* storage = v.data();
  {
    buf::Slice s = pool.adopt(std::move(v));
    EXPECT_EQ(s.size(), 100u);
    EXPECT_EQ(s.data(), storage);  // adopted, not copied
    EXPECT_EQ(pool.outstanding(), base + 1);
    EXPECT_EQ(s.to_vector(), pattern(100, 3));
  }
  EXPECT_EQ(pool.outstanding(), base);
}

TEST(BufPool, StageCopiesSoCallerMutationIsInvisible) {
  auto v = pattern(64, 7);
  buf::Slice s = buf::Pool::instance().stage(v);
  v[0] = std::byte{0xff};
  EXPECT_EQ(s[0], pattern(64, 7)[0]);
}

TEST(BufPool, EmptyInputsYieldNullSlices) {
  auto& pool = buf::Pool::instance();
  const auto base = pool.outstanding();
  buf::Slice a = pool.adopt({});
  buf::Slice b = pool.stage({});
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(pool.outstanding(), base);  // no storage pinned for nothing
}

TEST(BufSlice, SubsliceAliasesAndPinsStorage) {
  auto& pool = buf::Pool::instance();
  const auto base = pool.outstanding();
  buf::Slice frag;
  {
    buf::Slice whole = pool.adopt(pattern(1000, 5));
    frag = whole.subslice(200, 300);
    EXPECT_EQ(frag.data(), whole.data() + 200);  // same storage block
    EXPECT_EQ(pool.outstanding(), base + 1);     // one block, two views
  }
  // The fragment keeps the block alive after the parent died.
  EXPECT_EQ(pool.outstanding(), base + 1);
  const auto expect = pattern(1000, 5);
  ASSERT_EQ(frag.size(), 300u);
  EXPECT_EQ(frag[0], expect[200]);
  frag = {};
  EXPECT_EQ(pool.outstanding(), base);
}

TEST(BufSlice, CrcIsMemoizedAndSurvivesCopies) {
  buf::Slice s = buf::Pool::instance().adopt(pattern(512, 9));
  const auto ref = buf::crc32(s.span());
  EXPECT_EQ(s.crc(), ref);
  buf::Slice copy = s;                       // memo travels with the view
  EXPECT_EQ(copy.crc(), ref);
  EXPECT_EQ(s.subslice(0, s.size()).crc(), ref);
  EXPECT_NE(s.subslice(1, 64).crc(), s.subslice(2, 64).crc());
}

TEST(BufSlice, CorruptedDetachesAndBreaksChecksum) {
  buf::Slice orig = buf::Pool::instance().adopt(pattern(256, 2));
  const auto ref = orig.crc();
  buf::Slice bad = orig.corrupted(10, std::byte{0x10});
  // Copy-on-write: the original (e.g. a retransmit-queue entry) is intact.
  EXPECT_EQ(orig.crc(), ref);
  EXPECT_EQ(orig[10], pattern(256, 2)[10]);
  EXPECT_EQ(bad[10], pattern(256, 2)[10] ^ std::byte{0x10});
  EXPECT_NE(bad.crc(), ref);  // no stale memo on the detached copy
}

TEST(BufBuffer, ReleaseStealsStorageOutOfPoolAccounting) {
  auto& pool = buf::Pool::instance();
  const auto base = pool.outstanding();
  buf::Buffer b = pool.get(128);
  EXPECT_EQ(b.size(), 128u);
  EXPECT_EQ(b.span()[0], std::byte{0});  // zero-filled scratch
  EXPECT_EQ(pool.outstanding(), base + 1);
  std::vector<std::byte> taken = std::move(b).release();
  EXPECT_EQ(taken.size(), 128u);
  EXPECT_FALSE(b.live());
  EXPECT_EQ(pool.outstanding(), base);  // caller owns it now
}

TEST(BufPool, FreeListRecyclesStorage) {
  auto& pool = buf::Pool::instance();
  { buf::Buffer warm = pool.get(4096); }  // seed the 4 KiB class
  const auto hits = pool.stats().pool_hits;
  { buf::Buffer again = pool.get(4000); }  // smaller request, same class
  EXPECT_GT(pool.stats().pool_hits, hits);
}

// --- frame integration -------------------------------------------------------

TEST(BufFrame, ForwardedFrameReverifiesInConstantState) {
  net::Frame f;
  f.payload = buf::Pool::instance().adopt(pattern(1500, 8));
  f.stamp_checksum();
  net::Frame hop = f;  // forwarding copies the frame, aliases the payload
  EXPECT_EQ(hop.payload.data(), f.payload.data());
  EXPECT_TRUE(hop.checksum_ok());
  hop.corrupt_payload_byte(3, std::byte{0x01});
  EXPECT_FALSE(hop.checksum_ok());
  EXPECT_TRUE(f.checksum_ok());  // the original frame is untouched
}

// --- charge_copy accounting --------------------------------------------------

TEST(BufCopyStats, ChargeCopyBillsCpuAndCountsBytes) {
  Engine eng;
  hw::Cpu cpu(eng, hw::HostParams{});
  buf::reset_copy_stats();
  auto prog = [](hw::Cpu& c) -> Task<> {
    co_await buf::charge_copy(c, 1000, /*hot=*/true);
  };
  prog(cpu).detach();
  eng.run();
  EXPECT_EQ(buf::copy_stats().copies, 1u);
  EXPECT_EQ(buf::copy_stats().bytes, 1000u);
  EXPECT_EQ(cpu.busy_time(), hw::HostParams{}.copy_time(1000, true));
}

TEST(BufCopyStats, RendezvousMovesEachPayloadByteExactlyOnce) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  GigeMeshCluster c(cfg);
  mp::Endpoint a(c.agent(0), mp::CoreParams{});
  mp::Endpoint b(c.agent(1), mp::CoreParams{});

  auto receiver = [](mp::Endpoint& ep, std::vector<std::byte>& out) -> Task<> {
    mp::Message m = co_await ep.recv(0, 1);
    out = std::move(m.data);
  };
  auto sender = [](mp::Endpoint& ep, std::vector<std::byte> d) -> Task<> {
    (void)co_await ep.send(1, 1, std::move(d));
  };

  // Warm the channel (dial + eager bounce setup), then measure.
  std::vector<std::byte> got;
  receiver(b, got).detach();
  sender(a, pattern(64)).detach();
  c.engine().run();
  ASSERT_EQ(got.size(), 64u);

  // The rendezvous path charges exactly one modeled copy of the payload
  // (the receive-side ISR gather into the registered region); the old
  // host-side duplicate at FIN time is gone and nothing else double-bills.
  // The RTS/RTR control descriptors add a small constant charge, so compare
  // two sizes: the charged-bytes delta must equal the payload delta exactly.
  std::uint64_t charged[2] = {0, 0};
  const std::size_t sizes[2] = {100'000, 60'000};  // both over eager cutoff
  for (int i = 0; i < 2; ++i) {
    buf::reset_copy_stats();
    auto data = pattern(sizes[i], 13);
    receiver(b, got).detach();
    sender(a, data).detach();
    c.engine().run();
    EXPECT_EQ(got, data);
    charged[i] = buf::copy_stats().bytes;
    EXPECT_GE(charged[i], sizes[i]);
    EXPECT_LT(charged[i], sizes[i] + 128);  // constant control overhead only
  }
  EXPECT_EQ(charged[0] - charged[1], sizes[0] - sizes[1]);
}

// --- quiesce audit -----------------------------------------------------------

TEST(BufAudit, LeakedSliceIsReportedAtQuiesce) {
  auto& pool = buf::Pool::instance();
  ASSERT_EQ(pool.outstanding(), 0u) << "earlier test leaked pool storage";
  chk::ScopedCapture cap;
  {
    buf::Slice held = pool.adopt(pattern(64));
    chk::Audit::instance().quiesce();
    EXPECT_TRUE(cap.caught("buf.pool"));
  }
  chk::Audit::instance().clear_violations();
  EXPECT_EQ(chk::Audit::instance().quiesce(), 0u);
  EXPECT_FALSE(cap.caught("buf.pool"));
}

// --- end-to-end payload integrity under chaos (property test) ---------------

struct Outcome {
  std::vector<std::vector<std::byte>> got;
  cluster::ClusterReport report;
  int delivered = 0;
};

/// Random-size, random-content payloads from rank 0 to rank (1,1) on a 4x4
/// torus: every frame is forwarded through an intermediate rank, a burst
/// corrupts the first-hop cable (CRC discard + go-back-N), and mid-run the
/// same cable flaps so traffic reroutes. Every payload must arrive intact.
chk::Fingerprint integrity_scenario(Outcome& out) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  cfg.via.retx_timeout = 1_ms;
  GigeMeshCluster c(cfg);
  c.engine().enable_digest(true);

  const topo::Rank dst_rank = c.torus().rank(topo::Coord{1, 1});
  mp::Endpoint src(c.agent(0), mp::CoreParams{});
  mp::Endpoint dst(c.agent(dst_rank), mp::CoreParams{});

  flt::Schedule s;
  s.corrupt_burst(200_us, 1_ms, 0, kPlusX, 1.0);
  s.link_flap(4_ms, 0, kPlusX, 3_ms);
  flt::Injector inj(c, s);

  // Deterministic "random" sizes and contents spanning eager and rendezvous.
  sim::Rng rng(20260805);
  std::vector<std::vector<std::byte>> sent;
  for (int i = 0; i < 24; ++i) {
    const auto n = 1 + static_cast<std::size_t>(rng.below(30'000));
    sent.push_back(pattern(n, static_cast<std::uint8_t>(rng.below(256))));
  }

  out = Outcome{};
  auto receiver = [](mp::Endpoint& ep, Outcome& o, int count) -> Task<> {
    for (int i = 0; i < count; ++i) {
      mp::Message m = co_await ep.recv(0, 5);
      o.got.push_back(std::move(m.data));
      ++o.delivered;
    }
  };
  auto sender = [](mp::Endpoint& ep, int to,
                   const std::vector<std::vector<std::byte>>& msgs)
      -> Task<> {
    for (const auto& m : msgs) {
      EXPECT_EQ(co_await ep.send(to, 5, m), mp::SendStatus::kOk);
    }
  };
  receiver(dst, out, static_cast<int>(sent.size())).detach();
  sender(src, static_cast<int>(dst_rank), sent).detach();
  c.engine().run();

  EXPECT_EQ(out.delivered, static_cast<int>(sent.size()));
  EXPECT_EQ(out.got.size(), sent.size());
  for (std::size_t i = 0; i < out.got.size() && i < sent.size(); ++i) {
    EXPECT_EQ(out.got[i], sent[i]) << "payload " << i << " corrupted";
  }
  out.report = cluster::make_report(c);

  // Acceptance: nothing on the data path leaked pooled storage. The cluster
  // is still alive (rings, reassembly state all registered), so this audits
  // the steady state, not just destruction.
  chk::ScopedCapture cap;
  EXPECT_EQ(chk::Audit::instance().quiesce(), 0u);
  EXPECT_FALSE(cap.caught("buf.pool"));

  std::uint64_t h = chk::kFnvOffset;
  for (const auto& m : out.got) h = chk::fnv1a_bytes(h, m.data(), m.size());
  return {c.engine().executed(), c.engine().digest(), c.engine().now(), h};
}

TEST(BufIntegrity, RandomPayloadsSurviveForwardingCorruptionAndFlap) {
  Outcome out;
  auto r =
      chk::run_twice_and_compare([&out] { return integrity_scenario(out); });
  EXPECT_TRUE(r.identical) << r.divergence;
  // The chaos actually happened: frames were CRC-discarded and resent, and
  // the flap forced reroutes — yet every byte arrived intact.
  EXPECT_GT(out.report.corrupt_discards, 0);
  EXPECT_GT(out.report.retransmits, 0);
  EXPECT_EQ(out.report.vi_failures, 0);
}

}  // namespace
