// Tests for the LQCD kernel: SU(3) algebra identities, gamma-matrix algebra,
// Wilson dslash properties, and the cluster benchmark model (GigE vs
// Myrinet).

#include <gtest/gtest.h>

#include <complex>

#include "lqcd/app.hpp"
#include "lqcd/even_odd.hpp"
#include "lqcd/dslash.hpp"
#include "lqcd/lattice.hpp"
#include "lqcd/su3.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::lqcd;

constexpr double kEps = 1e-12;

TEST(Su3, RandomMatricesAreSpecialUnitary) {
  sim::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Su3Matrix u = random_su3(rng);
    EXPECT_LT(u.unitarity_error(), 1e-12);
    EXPECT_NEAR(std::abs(u.det() - Complex{1.0}), 0.0, 1e-12);
  }
}

TEST(Su3, AdjointInvertsUnitary) {
  sim::Rng rng(6);
  const Su3Matrix u = random_su3(rng);
  const Su3Matrix p = u * u.adjoint();
  EXPECT_LT(p.unitarity_error(), 1e-12);  // p itself must be ~identity
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const Complex expect = r == c ? Complex{1.0} : Complex{0.0};
      EXPECT_NEAR(std::abs(p.at(r, c) - expect), 0.0, 1e-12);
    }
  }
}

TEST(Su3, MatVecLinearity) {
  sim::Rng rng(7);
  const Su3Matrix u = random_su3(rng);
  ColorVector a;
  ColorVector b;
  for (int i = 0; i < 3; ++i) {
    a[i] = Complex{rng.uniform01(), rng.uniform01()};
    b[i] = Complex{rng.uniform01(), rng.uniform01()};
  }
  const Complex s{0.3, -1.7};
  const ColorVector lhs = u * (a + s * b);
  const ColorVector rhs = (u * a) + s * (u * b);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(std::abs(lhs[i] - rhs[i]), 0.0, kEps);
  }
}

TEST(Su3, UnitaryPreservesNorm) {
  sim::Rng rng(8);
  const Su3Matrix u = random_su3(rng);
  ColorVector v;
  for (int i = 0; i < 3; ++i) v[i] = Complex{rng.uniform01(), -rng.uniform01()};
  EXPECT_NEAR((u * v).norm2(), v.norm2(), 1e-10);
}

// --- gamma algebra ----------------------------------------------------------

WilsonSpinor random_spinor(sim::Rng& rng) {
  WilsonSpinor s;
  for (int sp = 0; sp < 4; ++sp) {
    for (int c = 0; c < 3; ++c) {
      s[sp][c] = Complex{rng.uniform01() * 2 - 1, rng.uniform01() * 2 - 1};
    }
  }
  return s;
}

double spinor_dist(const WilsonSpinor& a, const WilsonSpinor& b) {
  double d = 0;
  for (int sp = 0; sp < 4; ++sp) {
    for (int c = 0; c < 3; ++c) d += std::norm(a[sp][c] - b[sp][c]);
  }
  return d;
}

TEST(Gamma, SquaresToIdentity) {
  sim::Rng rng(9);
  for (int mu = 0; mu < 4; ++mu) {
    const WilsonSpinor psi = random_spinor(rng);
    const WilsonSpinor g2 = apply_gamma(mu, apply_gamma(mu, psi));
    EXPECT_LT(spinor_dist(g2, psi), kEps) << "mu=" << mu;
  }
}

TEST(Gamma, Anticommute) {
  sim::Rng rng(10);
  for (int mu = 0; mu < 4; ++mu) {
    for (int nu = mu + 1; nu < 4; ++nu) {
      const WilsonSpinor psi = random_spinor(rng);
      WilsonSpinor lhs = apply_gamma(mu, apply_gamma(nu, psi));
      const WilsonSpinor rhs = apply_gamma(nu, apply_gamma(mu, psi));
      lhs += rhs;  // {gmu, gnu} psi must vanish
      double n = 0;
      for (int sp = 0; sp < 4; ++sp) n += lhs[sp].norm2();
      EXPECT_LT(n, kEps) << "mu=" << mu << " nu=" << nu;
    }
  }
}

TEST(Gamma, Gamma5AnticommutesWithAll) {
  sim::Rng rng(11);
  for (int mu = 0; mu < 4; ++mu) {
    const WilsonSpinor psi = random_spinor(rng);
    WilsonSpinor lhs = apply_gamma5(apply_gamma(mu, psi));
    const WilsonSpinor rhs = apply_gamma(mu, apply_gamma5(psi));
    lhs += rhs;
    double n = 0;
    for (int sp = 0; sp < 4; ++sp) n += lhs[sp].norm2();
    EXPECT_LT(n, kEps) << "mu=" << mu;
  }
}

// --- lattice ----------------------------------------------------------------

TEST(Lattice, IndexRoundTripAndNeighbors) {
  const Lattice4D lat({4, 4, 4, 8});
  EXPECT_EQ(lat.volume(), 512);
  for (Lattice4D::Site s = 0; s < lat.volume(); s += 7) {
    EXPECT_EQ(lat.index(lat.coords(s)), s);
    for (int mu = 0; mu < 4; ++mu) {
      EXPECT_EQ(lat.neighbor(lat.neighbor(s, mu, +1), mu, -1), s);
    }
  }
  // Even/odd checkerboard: neighbours flip parity.
  for (Lattice4D::Site s = 0; s < lat.volume(); s += 11) {
    for (int mu = 0; mu < 4; ++mu) {
      EXPECT_NE(lat.parity(s), lat.parity(lat.neighbor(s, mu, +1)));
    }
  }
}

TEST(Lattice, FaceEnumeration) {
  const Lattice4D lat({4, 4, 4, 4});
  for (int mu = 0; mu < 4; ++mu) {
    const auto f = lat.face(mu, +1);
    EXPECT_EQ(static_cast<Lattice4D::Site>(f.size()), lat.face_sites(mu));
    EXPECT_EQ(f.size(), 64u);
    for (auto s : f) EXPECT_EQ(lat.coords(s)[static_cast<std::size_t>(mu)], 3);
  }
}

// --- dslash ------------------------------------------------------------------

TEST(Dslash, FreeFieldConstantSpinorGivesEightPsi) {
  // With U = 1 and a constant field: D psi = sum_mu [(1-g)+(1+g)] psi = 8 psi.
  const Lattice4D lat({4, 4, 4, 4});
  const GaugeField u = unit_gauge(lat);
  sim::Rng rng(12);
  const WilsonSpinor c = random_spinor(rng);
  SpinorField in(static_cast<std::size_t>(lat.volume()), c);
  const SpinorField out = dslash(lat, u, in);
  for (const auto& s : out) {
    WilsonSpinor expect;
    for (int sp = 0; sp < 4; ++sp) expect[sp] = Complex{8.0} * c[sp];
    EXPECT_LT(spinor_dist(s, expect), 1e-10);
  }
}

TEST(Dslash, LinearInTheField) {
  const Lattice4D lat({4, 4, 2, 2});
  sim::Rng rng(13);
  const GaugeField u = random_gauge(lat, rng);
  const SpinorField a = random_spinor_field(lat, rng);
  const SpinorField b = random_spinor_field(lat, rng);
  const Complex s{0.7, -0.2};
  SpinorField combo(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (int sp = 0; sp < 4; ++sp) combo[i][sp] = a[i][sp] + s * b[i][sp];
  }
  const SpinorField lhs = dslash(lat, u, combo);
  const SpinorField da = dslash(lat, u, a);
  const SpinorField db = dslash(lat, u, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    WilsonSpinor expect;
    for (int sp = 0; sp < 4; ++sp) expect[sp] = da[i][sp] + s * db[i][sp];
    EXPECT_LT(spinor_dist(lhs[i], expect), 1e-18 * 1e6);
  }
}

TEST(Dslash, DaggerIsTheAdjoint) {
  // <chi, D psi> == <D^dag chi, psi> for random fields and gauge.
  const Lattice4D lat({4, 2, 2, 4});
  sim::Rng rng(14);
  const GaugeField u = random_gauge(lat, rng);
  const SpinorField psi = random_spinor_field(lat, rng);
  const SpinorField chi = random_spinor_field(lat, rng);
  const Complex lhs = inner_product(chi, dslash(lat, u, psi));
  const Complex rhs = inner_product(dslash_dagger(lat, u, chi), psi);
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9 * std::abs(lhs));
}

TEST(Dslash, Gamma5Hermiticity) {
  // g5 D g5 == D^dag, the fundamental Wilson property.
  const Lattice4D lat({2, 4, 2, 4});
  sim::Rng rng(15);
  const GaugeField u = random_gauge(lat, rng);
  const SpinorField psi = random_spinor_field(lat, rng);
  SpinorField g5psi(psi.size());
  for (std::size_t i = 0; i < psi.size(); ++i) g5psi[i] = apply_gamma5(psi[i]);
  SpinorField lhs = dslash(lat, u, g5psi);
  for (auto& s : lhs) s = apply_gamma5(s);
  const SpinorField rhs = dslash_dagger(lat, u, psi);
  double dist = 0;
  for (std::size_t i = 0; i < psi.size(); ++i) {
    dist += spinor_dist(lhs[i], rhs[i]);
  }
  EXPECT_LT(dist, 1e-16 * static_cast<double>(psi.size()));
}

TEST(Dslash, GaugeCovariantNormUnderUnitGaugeShift) {
  // Translation invariance in the free field: shifting the input shifts the
  // output.
  const Lattice4D lat({4, 4, 2, 2});
  sim::Rng rng(16);
  const GaugeField u = unit_gauge(lat);
  const SpinorField psi = random_spinor_field(lat, rng);
  SpinorField shifted(psi.size());
  for (Lattice4D::Site s = 0; s < lat.volume(); ++s) {
    shifted[static_cast<std::size_t>(lat.neighbor(s, 0, +1))] =
        psi[static_cast<std::size_t>(s)];
  }
  const SpinorField a = dslash(lat, u, shifted);
  const SpinorField b = dslash(lat, u, psi);
  for (Lattice4D::Site s = 0; s < lat.volume(); ++s) {
    EXPECT_LT(spinor_dist(a[static_cast<std::size_t>(lat.neighbor(s, 0, +1))],
                          b[static_cast<std::size_t>(s)]),
              1e-18 * 1e6);
  }
}

// --- cluster benchmark model ---------------------------------------------------

// --- even-odd preconditioning ------------------------------------------------

TEST(EvenOdd, SplitJoinRoundTrip) {
  const Lattice4D lat({4, 4, 2, 2});
  const EvenOddLayout layout(lat);
  EXPECT_EQ(layout.half_volume(), lat.volume() / 2);
  sim::Rng rng(21);
  const SpinorField f = random_spinor_field(lat, rng);
  auto [even, odd] = layout.split(f);
  const SpinorField back = layout.join(even, odd);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_LT(spinor_dist(back[i], f[i]), 1e-30);
  }
}

TEST(EvenOdd, ParityHopsMatchFullDslash) {
  // The full dslash of a field that lives only on odd sites must equal
  // D_eo applied to its odd half (on the even sites), and vice versa.
  const Lattice4D lat({4, 2, 4, 2});
  const EvenOddLayout layout(lat);
  sim::Rng rng(22);
  const GaugeField u = random_gauge(lat, rng);
  const SpinorField f = random_spinor_field(lat, rng);
  auto [even, odd] = layout.split(f);

  SpinorField odd_only = layout.join(SpinorField(even.size()), odd);
  const SpinorField full = dslash(lat, u, odd_only);
  auto [full_even, full_odd] = layout.split(full);
  const SpinorField deo = dslash_parity(lat, layout, u, odd, 0);
  double dist = 0;
  for (std::size_t i = 0; i < deo.size(); ++i) {
    dist += spinor_dist(deo[i], full_even[i]);
  }
  EXPECT_LT(dist, 1e-20 * static_cast<double>(deo.size()));
  // The full dslash never couples odd->odd (pure hopping term).
  double odd_norm = 0;
  for (const auto& sp : full_odd) odd_norm += sp.norm2();
  EXPECT_LT(odd_norm, 1e-24);
}

TEST(EvenOdd, SchurOperatorMatchesBlockElimination) {
  const Lattice4D lat({2, 4, 2, 4});
  const EvenOddLayout layout(lat);
  sim::Rng rng(23);
  const GaugeField u = random_gauge(lat, rng);
  const SpinorField f = random_spinor_field(lat, rng);
  auto [even, odd] = layout.split(f);
  const double m = 3.7;

  // Direct: (m^2 - D_eo D_oe) even
  const SpinorField direct = schur_even(lat, layout, u, even, m);
  // Via parity hops done by hand.
  const SpinorField doe = dslash_parity(lat, layout, u, even, 1);
  const SpinorField deodoe = dslash_parity(lat, layout, u, doe, 0);
  double dist = 0;
  for (std::size_t i = 0; i < even.size(); ++i) {
    WilsonSpinor expect;
    for (int s = 0; s < 4; ++s) {
      expect[s] = Complex{m * m} * even[i][s] - deodoe[i][s];
    }
    dist += spinor_dist(direct[i], expect);
  }
  EXPECT_LT(dist, 1e-20 * static_cast<double>(even.size()));
}

TEST(LqcdApp, GigeRunProducesSaneNumbers) {
  DslashRunConfig cfg;
  cfg.local_extent = 6;
  cfg.iterations = 3;
  const auto res = lqcd::run_dslash_gige(topo::Coord{2, 4, 4}, cfg);
  EXPECT_GT(res.seconds, 0);
  EXPECT_GT(res.mflops_per_node, 50);
  EXPECT_LT(res.mflops_per_node, 1400);  // bounded by the CPU model
  EXPECT_GT(res.comm_fraction, 0.0);
  EXPECT_LT(res.comm_fraction, 1.0);
}

TEST(LqcdApp, MyrinetRunProducesSaneNumbers) {
  DslashRunConfig cfg;
  cfg.local_extent = 6;
  cfg.iterations = 3;
  const auto res = lqcd::run_dslash_myrinet(64, cfg);
  EXPECT_GT(res.seconds, 0);
  EXPECT_GT(res.mflops_per_node, 50);
  EXPECT_LT(res.mflops_per_node, 1050);
}

TEST(LqcdApp, SurfaceToVolumeTrend) {
  // Larger local lattices must raise sustained per-node Mflops on the GigE
  // mesh (paper: "gradual increase of GigE performance with respect to the
  // lattice size").
  DslashRunConfig small;
  small.local_extent = 4;
  small.iterations = 3;
  DslashRunConfig large = small;
  large.local_extent = 10;
  const auto rs = lqcd::run_dslash_gige(topo::Coord{2, 4, 4}, small);
  const auto rl = lqcd::run_dslash_gige(topo::Coord{2, 4, 4}, large);
  EXPECT_GT(rl.mflops_per_node, rs.mflops_per_node);
  EXPECT_LT(rl.comm_fraction, rs.comm_fraction);
}

TEST(LqcdApp, CostModel) {
  const hw::CostParams costs;
  EXPECT_NEAR(costs.gige_node_usd(), 1100 + 420, 1e-9);
  EXPECT_NEAR(costs.myrinet_node_usd(), 1100 + 1000, 1e-9);
  EXPECT_NEAR(lqcd::usd_per_mflops(500, 1520), 3.04, 1e-9);
}

}  // namespace
