// Calibration tests: the headline numbers of the paper must come out of the
// default-parameter simulation (within tolerance). If a model change breaks
// one of these, the reproduction of the figures is off.

#include <gtest/gtest.h>

#include "common.hpp"  // bench harnesses
#include "lqcd/app.hpp"

namespace {

using namespace benchutil;

TEST(Calibration, ViaSmallMessageLatencyIs18p5us) {
  // Paper fig. 2/4: ~18.5 us half round trip below 4 KB.
  EXPECT_NEAR(via_rtt2_us(64), 18.5, 2.0);
  EXPECT_NEAR(via_rtt2_us(4), 18.5, 2.5);
  EXPECT_LT(via_rtt2_us(1024), 30.0);
}

TEST(Calibration, TcpLatencyAtLeast30PercentAboveVia) {
  const double via = via_rtt2_us(64);
  const double tcp = tcp_rtt2_us(64);
  EXPECT_GE(tcp / via, 1.3);
  EXPECT_LE(tcp / via, 2.2);  // "at least 30%", not an order of magnitude
}

TEST(Calibration, ViaSimultaneousBandwidthNear110) {
  // Paper: "approaching 110 MB/s for not very large message sizes".
  const double bw = via_simultaneous_bw(16384, 150);
  EXPECT_GT(bw, 100.0);
  EXPECT_LT(bw, 125.0);  // cannot beat the wire
}

TEST(Calibration, ViaBeatsTcpSimultaneousByAboutAThird) {
  const double via = via_simultaneous_bw(16384, 150);
  const double tcp = tcp_simultaneous_bw(16384, 150);
  EXPECT_GE(via / tcp, 1.25);  // paper: 37% better
}

TEST(Calibration, Aggregate3dPeaksMidSizesAndExceeds2dAtPeak) {
  // Paper fig. 3: 3-D peaks ~550 MB/s mid-size, falls toward ~400 at the
  // top; 2-D flattens around its 4-link wire bound.
  const double peak3 = via_aggregate_bw(3, 16384, 60);
  EXPECT_GT(peak3, 450.0);
  EXPECT_LT(peak3, 660.0);
  const double big3 = via_aggregate_bw(3, 1048576, 12);
  EXPECT_LT(big3, peak3);
  EXPECT_GT(big3, 320.0);
  const double two_d = via_aggregate_bw(2, 16384, 60);
  EXPECT_GT(two_d, 350.0);
  EXPECT_LT(two_d, 500.0);
}

TEST(Calibration, TcpCannotScaleAcrossLinks) {
  // The motivating observation of the whole paper.
  const double tcp3 = tcp_aggregate_bw(3, 16384, 40);
  const double via3 = via_aggregate_bw(3, 16384, 40);
  EXPECT_LT(tcp3, via3 / 3.0);
}

TEST(Calibration, MpiQmpLatencyMatchesViaClosely) {
  // Paper fig. 4: "small implementation overhead of MPI/QMP".
  const double mp = mpiqmp_rtt2_us(64);
  EXPECT_NEAR(mp, 18.5, 3.5);
}

TEST(Calibration, RoutedLatencyGrowsLinearlyPerHop) {
  // Paper sec. 5.1 reports ~12.5 us per hop. Our model charges the full
  // interrupt-coalescing delay at every intermediate hop, which lands the
  // slope a few us higher (~17 us) — the linear shape and the property
  // "one hop costs less than one endpoint traversal + a hop" both hold;
  // see EXPERIMENTS.md for the documented deviation.
  const double h1 = mpiqmp_routed_rtt2_us(1, 64);
  const double h2 = mpiqmp_routed_rtt2_us(2, 64);
  const double h4 = mpiqmp_routed_rtt2_us(4, 64);
  const double slope = (h4 - h1) / 3.0;
  EXPECT_GT(slope, 10.0);
  EXPECT_LT(slope, 19.0);
  // Linearity: the 1->2 increment matches the average slope.
  EXPECT_NEAR(h2 - h1, slope, 3.0);
}

TEST(Calibration, EagerRmaJumpAt16K) {
  // The protocol switch shows up where the CPU is the bottleneck: the 3-D
  // aggregated bandwidth steps up when messages cross the 16 KiB threshold
  // because RMA eliminates both user-level copies (paper fig. 4's jump).
  const double below = mpiqmp_aggregate_bw(3, 15 * 1024, 40);
  const double above = mpiqmp_aggregate_bw(3, 18 * 1024, 40);
  EXPECT_GT(above, below * 1.03);
}

TEST(Calibration, LqcdGigeCostAdvantage) {
  // Paper table 1: GigE mesh wins $/Mflops even when Myrinet wins Gflops.
  meshmp::lqcd::DslashRunConfig cfg;
  cfg.local_extent = 8;
  cfg.iterations = 3;
  const auto gige =
      meshmp::lqcd::run_dslash_gige(meshmp::topo::Coord{2, 4, 4}, cfg);
  const auto myri = meshmp::lqcd::run_dslash_myrinet(32, cfg);
  const meshmp::hw::CostParams costs;
  const double gige_usd = meshmp::lqcd::usd_per_mflops(
      gige.mflops_per_node, costs.gige_node_usd());
  const double myri_usd = meshmp::lqcd::usd_per_mflops(
      myri.mflops_per_node, costs.myrinet_node_usd());
  EXPECT_LT(gige_usd, myri_usd);
}

}  // namespace
