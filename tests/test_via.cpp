// Tests for the modified M-VIA model: connection setup, send/receive with
// fragmentation, RMA, registered-memory protection, reliability (acks,
// retransmits, failure), descriptor flow, and kernel packet switching across
// the mesh.

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/gige_mesh.hpp"
#include "sim/engine.hpp"
#include "via/agent.hpp"
#include "via/memory.hpp"
#include "via/vi.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using sim::Task;
using via::KernelAgent;
using via::MemToken;
using via::RecvCompletion;
using via::Vi;

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  }
  return v;
}

GigeMeshConfig small_ring_config() {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  return cfg;
}

/// Establishes a VI pair between two ranks; stores the endpoints.
struct Conn {
  Vi* a = nullptr;
  Vi* b = nullptr;
};

Task<> do_connect(KernelAgent& from, net::NodeId to, std::uint32_t service,
                  Conn& out) {
  out.a = co_await from.connect(to, service);
}

Task<> do_accept(KernelAgent& at, std::uint32_t service, Conn& out) {
  out.b = co_await at.accept(service);
}

Conn connect_pair(GigeMeshCluster& c, topo::Rank ra, topo::Rank rb,
                  std::uint32_t service = 7) {
  Conn conn;
  c.agent(rb).listen(service);
  do_accept(c.agent(rb), service, conn).detach();
  do_connect(c.agent(ra), rb, service, conn).detach();
  c.engine().run();
  EXPECT_NE(conn.a, nullptr);
  EXPECT_NE(conn.b, nullptr);
  return conn;
}

TEST(ViaConnect, HandshakeEstablishesBothEnds) {
  GigeMeshCluster c(small_ring_config());
  Conn conn = connect_pair(c, 0, 1);
  EXPECT_TRUE(conn.a->connected());
  EXPECT_TRUE(conn.b->connected());
  EXPECT_EQ(conn.a->remote_node(), 1);
  EXPECT_EQ(conn.b->remote_node(), 0);
  EXPECT_EQ(conn.a->remote_vi(), conn.b->id());
  EXPECT_EQ(conn.b->remote_vi(), conn.a->id());
}

TEST(ViaConnect, ConnectToNonListeningServiceIsRefused) {
  GigeMeshCluster c(small_ring_config());
  Conn conn;
  do_connect(c.agent(0), 1, 99, conn).detach();
  c.engine().run();
  // The dial resolves with a failed VI (structured error) instead of
  // leaving the connect coroutine suspended forever.
  ASSERT_NE(conn.a, nullptr);
  EXPECT_TRUE(conn.a->failed());
  EXPECT_EQ(conn.a->error(), via::ViError::kUnreachable);
  // Every dial attempt (initial + watchdog re-sends) is refused once.
  EXPECT_GE(c.agent(1).counters().get("conn_refused"), 1);
  EXPECT_GT(c.agent(0).counters().get("vi_failures"), 0);
}

Task<> send_msg(Vi& vi, std::vector<std::byte> data, std::uint64_t imm = 0) {
  co_await vi.send(std::move(data), imm);
}

Task<> recv_msg(Vi& vi, RecvCompletion& out, bool& done) {
  out = co_await vi.recv_completion();
  done = true;
}

TEST(ViaData, SmallMessageDeliveredBitExact) {
  GigeMeshCluster c(small_ring_config());
  Conn conn = connect_pair(c, 0, 1);
  conn.b->post_recv(16 * 1024);
  auto data = pattern(333);
  RecvCompletion got;
  bool done = false;
  recv_msg(*conn.b, got, done).detach();
  send_msg(*conn.a, data, 0xdeadbeef).detach();
  c.engine().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got.data, data);
  EXPECT_EQ(got.immediate, 0xdeadbeefu);
}

TEST(ViaData, ZeroByteMessageCarriesImmediate) {
  GigeMeshCluster c(small_ring_config());
  Conn conn = connect_pair(c, 0, 1);
  conn.b->post_recv(1024);
  RecvCompletion got;
  bool done = false;
  recv_msg(*conn.b, got, done).detach();
  send_msg(*conn.a, {}, 42).detach();
  c.engine().run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(got.data.empty());
  EXPECT_EQ(got.immediate, 42u);
}

TEST(ViaData, LargeMessageFragmentsAndReassembles) {
  GigeMeshCluster c(small_ring_config());
  Conn conn = connect_pair(c, 0, 1);
  const std::size_t n = 100'000;  // 68 fragments at 1472 B
  conn.b->post_recv(static_cast<std::int64_t>(n));
  auto data = pattern(n, 9);
  RecvCompletion got;
  bool done = false;
  recv_msg(*conn.b, got, done).detach();
  send_msg(*conn.a, data).detach();
  c.engine().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got.data.size(), n);
  EXPECT_EQ(got.data, data);
}

TEST(ViaData, ManyMessagesArriveInOrder) {
  GigeMeshCluster c(small_ring_config());
  Conn conn = connect_pair(c, 0, 1);
  const int n = 50;
  for (int i = 0; i < n; ++i) conn.b->post_recv(4096);
  auto sender = [](Vi& vi, int count) -> Task<> {
    for (int i = 0; i < count; ++i) {
      co_await vi.send(pattern(100, static_cast<std::uint8_t>(i)),
                       static_cast<std::uint64_t>(i));
    }
  };
  std::vector<std::uint64_t> imms;
  auto receiver = [](Vi& vi, int count, std::vector<std::uint64_t>& out)
      -> Task<> {
    for (int i = 0; i < count; ++i) {
      auto comp = co_await vi.recv_completion();
      out.push_back(comp.immediate);
    }
  };
  receiver(*conn.b, n, imms).detach();
  sender(*conn.a, n).detach();
  c.engine().run();
  ASSERT_EQ(imms.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(imms[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(i));
  }
}

TEST(ViaData, NoDescriptorDropsMessage) {
  GigeMeshCluster c(small_ring_config());
  Conn conn = connect_pair(c, 0, 1);
  send_msg(*conn.a, pattern(64)).detach();
  c.engine().run();
  EXPECT_EQ(conn.b->counters().get("rx_no_descriptor"), 1);
  EXPECT_EQ(conn.b->counters().get("rx_messages"), 0);
  // A later send with a descriptor posted still works (stream recovers).
  conn.b->post_recv(1024);
  RecvCompletion got;
  bool done = false;
  recv_msg(*conn.b, got, done).detach();
  send_msg(*conn.a, pattern(64, 3)).detach();
  c.engine().run();
  EXPECT_TRUE(done);
}

TEST(ViaData, TooSmallDescriptorIsConsumedAndCounted) {
  GigeMeshCluster c(small_ring_config());
  Conn conn = connect_pair(c, 0, 1);
  conn.b->post_recv(10);  // too small for the 100-byte message
  send_msg(*conn.a, pattern(100)).detach();
  c.engine().run();
  EXPECT_EQ(conn.b->counters().get("rx_descriptor_too_small"), 1);
  EXPECT_EQ(conn.b->posted_recvs(), 0);
}

// --- RMA -------------------------------------------------------------------

TEST(ViaRma, WriteLandsInRegisteredRegion) {
  GigeMeshCluster c(small_ring_config());
  Conn conn = connect_pair(c, 0, 1);
  MemToken token = c.agent(1).memory().register_region(64 * 1024);
  auto data = pattern(5000, 7);
  auto writer = [](Vi& vi, std::vector<std::byte> d, MemToken t) -> Task<> {
    co_await vi.rma_write(std::move(d), t, 1000);
  };
  writer(*conn.a, data, token).detach();
  c.engine().run();
  auto region = c.agent(1).memory().region(token.handle);
  ASSERT_GE(region.size(), 6000u);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), region.begin() + 1000));
  // Bytes before the offset stay zero.
  EXPECT_EQ(region[999], std::byte{0});
}

TEST(ViaRma, BadKeyIsRejected) {
  GigeMeshCluster c(small_ring_config());
  Conn conn = connect_pair(c, 0, 1);
  MemToken token = c.agent(1).memory().register_region(4096);
  token.key ^= 0x1;  // forge
  auto writer = [](Vi& vi, MemToken t) -> Task<> {
    co_await vi.rma_write(pattern(100), t, 0);
  };
  writer(*conn.a, token).detach();
  c.engine().run();
  EXPECT_EQ(c.agent(1).memory().counters().get("rma_bad_key"), 1);
  EXPECT_EQ(conn.a->counters().get("tx_rma"), 1);
}

TEST(ViaRma, OutOfBoundsIsRejected) {
  GigeMeshCluster c(small_ring_config());
  Conn conn = connect_pair(c, 0, 1);
  MemToken token = c.agent(1).memory().register_region(1000);
  auto writer = [](Vi& vi, MemToken t) -> Task<> {
    co_await vi.rma_write(pattern(100), t, 950);  // 950+100 > 1000
  };
  writer(*conn.a, token).detach();
  c.engine().run();
  EXPECT_EQ(c.agent(1).memory().counters().get("rma_out_of_bounds"), 1);
}

TEST(ViaRma, DeregisteredRegionRejectsWrites) {
  GigeMeshCluster c(small_ring_config());
  Conn conn = connect_pair(c, 0, 1);
  MemToken token = c.agent(1).memory().register_region(4096);
  c.agent(1).memory().deregister(token.handle);
  auto writer = [](Vi& vi, MemToken t) -> Task<> {
    co_await vi.rma_write(pattern(100), t, 0);
  };
  writer(*conn.a, token).detach();
  c.engine().run();
  EXPECT_EQ(c.agent(1).memory().counters().get("rma_bad_handle"), 1);
}

// --- Reliability --------------------------------------------------------------

TEST(ViaReliable, RecoversFromLossyLinks) {
  GigeMeshConfig cfg = small_ring_config();
  cfg.link.drop_prob = 0.02;  // 2% frame loss on every cable
  GigeMeshCluster c(cfg);
  Conn conn = connect_pair(c, 0, 1);
  const std::size_t n = 200'000;  // ~136 fragments
  conn.b->post_recv(static_cast<std::int64_t>(n));
  auto data = pattern(n, 4);
  RecvCompletion got;
  bool done = false;
  recv_msg(*conn.b, got, done).detach();
  send_msg(*conn.a, data).detach();
  c.engine().run_until(5_s);
  ASSERT_TRUE(done);
  EXPECT_EQ(got.data, data);
  EXPECT_GT(conn.a->counters().get("retransmits"), 0);
}

TEST(ViaReliable, RecoversFromCorruptingLinks) {
  GigeMeshConfig cfg = small_ring_config();
  cfg.link.corrupt_prob = 0.03;  // checksum drops at the receiving NIC
  GigeMeshCluster c(cfg);
  Conn conn = connect_pair(c, 0, 1);
  const std::size_t n = 64'000;
  conn.b->post_recv(static_cast<std::int64_t>(n));
  auto data = pattern(n, 5);
  RecvCompletion got;
  bool done = false;
  recv_msg(*conn.b, got, done).detach();
  send_msg(*conn.a, data).detach();
  c.engine().run_until(5_s);
  ASSERT_TRUE(done);
  EXPECT_EQ(got.data, data);
}

Task<> send_expect_logic_error(Vi& vi, bool& threw) {
  try {
    co_await vi.send(pattern(100));
  } catch (const std::logic_error&) {
    threw = true;
  }
}

TEST(ViaReliable, SendOnFailedViReportsInsteadOfHanging) {
  GigeMeshConfig cfg = small_ring_config();
  cfg.via.max_retries = 3;
  cfg.via.retx_timeout = 200_us;
  GigeMeshCluster c(cfg);
  Conn conn = connect_pair(c, 0, 1);
  for (topo::Rank r = 0; r < c.size(); ++r) {
    for (topo::Dir d : c.torus().directions(c.torus().coord(r))) {
      c.nic(r, d).wire_params().drop_prob = 1.0;
    }
  }
  send_msg(*conn.a, pattern(100)).detach();
  c.engine().run_until(1_s);
  ASSERT_TRUE(conn.a->failed());
  bool threw = false;
  send_expect_logic_error(*conn.a, threw).detach();
  c.engine().run_until(2_s);
  EXPECT_TRUE(threw);
}

TEST(ViaConnect, SendOnUnconnectedViReportsInsteadOfHanging) {
  GigeMeshCluster c(small_ring_config());
  Vi& vi = c.agent(0).create_vi();
  ASSERT_FALSE(vi.connected());
  bool threw = false;
  send_expect_logic_error(vi, threw).detach();
  c.engine().run();
  EXPECT_TRUE(threw);
}

TEST(ViaReliable, GivesUpAfterMaxRetries) {
  // Connect over healthy cables, then turn every wire into a black hole and
  // watch reliable delivery exhaust its retry budget.
  GigeMeshConfig cfg = small_ring_config();
  cfg.via.max_retries = 3;
  cfg.via.retx_timeout = 200_us;
  GigeMeshCluster c(cfg);
  Conn conn = connect_pair(c, 0, 1);
  for (topo::Rank r = 0; r < c.size(); ++r) {
    for (topo::Dir d : c.torus().directions(c.torus().coord(r))) {
      c.nic(r, d).wire_params().drop_prob = 1.0;
    }
  }
  send_msg(*conn.a, pattern(100)).detach();
  c.engine().run_until(1_s);
  EXPECT_TRUE(conn.a->failed());
  EXPECT_GE(conn.a->counters().get("retransmits"), 3);
}

// --- Mesh forwarding ----------------------------------------------------------

TEST(ViaForwarding, NonNeighborDeliveryAcrossRing) {
  GigeMeshCluster c(small_ring_config());  // ring of 4: 0 and 2 are 2 hops
  Conn conn = connect_pair(c, 0, 2);
  conn.b->post_recv(4096);
  auto data = pattern(500, 2);
  RecvCompletion got;
  bool done = false;
  recv_msg(*conn.b, got, done).detach();
  send_msg(*conn.a, data).detach();
  c.engine().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got.data, data);
  // Exactly one intermediate node forwarded data+connection frames.
  const auto fwd1 = c.agent(1).counters().get("fwd_frames");
  const auto fwd3 = c.agent(3).counters().get("fwd_frames");
  EXPECT_GT(fwd1 + fwd3, 0);
}

TEST(ViaForwarding, MultiHopOn3dMesh) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4, 4};
  GigeMeshCluster c(cfg);
  // corner to far corner: distance 2+2+2 = 6 hops
  const topo::Rank src = 0;
  const topo::Rank dst = c.torus().rank(topo::Coord{2, 2, 2});
  EXPECT_EQ(c.torus().distance(src, dst), 6);
  Conn conn = connect_pair(c, src, dst);
  conn.b->post_recv(64 * 1024);
  auto data = pattern(20'000, 11);
  RecvCompletion got;
  bool done = false;
  recv_msg(*conn.b, got, done).detach();
  send_msg(*conn.a, data).detach();
  c.engine().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got.data, data);
}

TEST(ViaForwarding, RoutedLatencyGrowsLinearlyPerHop) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{8};
  GigeMeshCluster c(cfg);
  auto timed_recv = [](Vi& vi, sim::Engine& eng, sim::Time& at,
                       bool& done) -> Task<> {
    (void)co_await vi.recv_completion();
    at = eng.now();
    done = true;
  };
  std::vector<double> lat_us;
  for (topo::Rank dst : {1, 2, 3, 4}) {
    GigeMeshCluster cc(cfg);
    Conn conn = connect_pair(cc, 0, dst);
    conn.b->post_recv(1024);
    bool done = false;
    sim::Time t0 = cc.engine().now();
    sim::Time t1 = 0;
    timed_recv(*conn.b, cc.engine(), t1, done).detach();
    send_msg(*conn.a, pattern(16)).detach();
    cc.engine().run();
    ASSERT_TRUE(done);
    lat_us.push_back(sim::to_us(t1 - t0));
  }
  // Each extra hop must add a roughly constant increment (the paper's
  // 12.5 us/hop kernel switching), clearly smaller than the end-to-end 18.5.
  const double inc1 = lat_us[1] - lat_us[0];
  const double inc2 = lat_us[2] - lat_us[1];
  const double inc3 = lat_us[3] - lat_us[2];
  EXPECT_NEAR(inc2, inc1, 3.0);
  EXPECT_NEAR(inc3, inc2, 3.0);
  EXPECT_GT(inc1, 5.0);
  EXPECT_LT(inc1, 20.0);
}

}  // namespace
