// Tests for node-failure detection, degraded-mode operation, and rejoin
// recovery: whole-node crash/restart fault events with arm-time schedule
// validation, the heartbeat/membership control plane (ClusterLifecycle),
// degraded-mode route tables, structured unreachable errors for traffic to a
// dead rank, failure-aware scatter, and rejoin under a fresh incarnation
// epoch — all byte-identical under the run-twice determinism harness.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "chk/determinism.hpp"
#include "chk/digest.hpp"
#include "cluster/gige_mesh.hpp"
#include "cluster/lifecycle.hpp"
#include "cluster/membership.hpp"
#include "cluster/report.hpp"
#include "coll/scatter.hpp"
#include "flt/fault.hpp"
#include "mp/endpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "topo/spanning_tree.hpp"
#include "topo/torus.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using chk::Fingerprint;
using cluster::ClusterLifecycle;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using cluster::Liveness;
using cluster::MembershipView;
using sim::Task;

constexpr topo::Dir kPlusX{0, +1};

// Honour MESHMP_TRACE (tracing builds only) so CI can capture the recovery
// timeline of the crash/rejoin campaign as a Perfetto artifact.
class TraceEnv : public ::testing::Environment {
 public:
  void SetUp() override { obs::trace_init_from_env(); }
  void TearDown() override { obs::trace_flush_env(); }
};
[[maybe_unused]] const auto* const kTraceEnv =
    ::testing::AddGlobalTestEnvironment(new TraceEnv);

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  }
  return v;
}

std::uint64_t hash_bytes(std::uint64_t h, const std::vector<std::byte>& v) {
  return chk::fnv1a_bytes(h, v.data(), v.size());
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL;
  return h * 1099511628211ULL;
}

// --- schedule validation (arm time, before any event fires) -----------------

TEST(FltScheduleValidation, RejectsRankOutOfRange) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.node_crash(1_ms, 100);
  EXPECT_THROW(flt::Injector(c, s), std::invalid_argument);
}

TEST(FltScheduleValidation, RejectsRestartWithoutPriorCrash) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.node_restart(1_ms, 2);
  EXPECT_THROW(flt::Injector(c, s), std::invalid_argument);
}

TEST(FltScheduleValidation, RejectsDoubleCrash) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.node_crash(1_ms, 2).node_crash(2_ms, 2);
  EXPECT_THROW(flt::Injector(c, s), std::invalid_argument);
}

TEST(FltScheduleValidation, RejectsRestartNotAfterTheCrash) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.crash_restart(1_ms, 2, 0);  // restart coincides with the crash
  EXPECT_THROW(flt::Injector(c, s), std::invalid_argument);
}

TEST(FltScheduleValidation, RejectsNestedBurstWindows) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.loss_burst(1_ms, 5_ms, 0, kPlusX, 0.5)
      .loss_burst(2_ms, 1_ms, 0, kPlusX, 0.5);  // opens inside the first
  EXPECT_THROW(flt::Injector(c, s), std::invalid_argument);
}

TEST(FltScheduleValidation, RejectsInvertedBurstWindow) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.loss_burst(1_ms, -500_us, 0, kPlusX, 0.5);  // stop sorts before start
  EXPECT_THROW(flt::Injector(c, s), std::invalid_argument);
}

TEST(FltScheduleValidation, RejectsEventsInThePast) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  GigeMeshCluster c(cfg);
  auto tick = [](sim::Engine& e) -> Task<> { co_await sim::delay(e, 1_ms); };
  tick(c.engine()).detach();
  c.run();
  flt::Schedule s;
  s.node_crash(500_us, 2);
  EXPECT_THROW(flt::Injector(c, s), std::invalid_argument);
}

TEST(FltScheduleValidation, AcceptsWellFormedCampaign) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.crash_restart(1_ms, 5, 4_ms)
      .nic_stall(100_us, 3_ms, 1, kPlusX)
      .loss_burst(500_us, 1_ms, 1, kPlusX, 0.5)
      .corrupt_burst(1_ms, 1_ms, 2, kPlusX, 1.0)
      .link_flap(2_ms, 3, kPlusX, 1_ms)
      .node_crash(6_ms, 5);  // crash again after the restart: legal
  EXPECT_NO_THROW({
    flt::Injector inj(c, s);
    (void)inj;
  });
}

// --- membership: news ordering, severity tie-break, wire codec --------------

TEST(FltMembership, ApplyOrdersByIncarnationVersionSeverity) {
  MembershipView v(4);
  EXPECT_TRUE(v.apply({2, {Liveness::kSuspect, 0, 1}}));
  // Same (incarnation, version), lower severity: not news.
  EXPECT_FALSE(v.apply({2, {Liveness::kAlive, 0, 1}}));
  // Same (incarnation, version), higher severity: the conflict tie-break.
  EXPECT_TRUE(v.apply({2, {Liveness::kDead, 0, 1}}));
  // A fresh incarnation overrides any stale story about the previous life.
  EXPECT_TRUE(v.apply({2, {Liveness::kRejoining, 1, 1}}));
  EXPECT_FALSE(v.apply({2, {Liveness::kDead, 0, 9}}));
  EXPECT_EQ(v.at(2).state, Liveness::kRejoining);
  EXPECT_EQ(v.at(2).incarnation, 1u);
  EXPECT_EQ(v.count(Liveness::kAlive), 3);
  const auto dead = v.dead_set();
  for (bool d : dead) EXPECT_FALSE(d);
}

TEST(FltMembership, WireCodecRoundTrips) {
  std::vector<cluster::MemberRecord> recs{
      {0, {Liveness::kAlive, 0, 0}},
      {3, {Liveness::kDead, 7, 42}},
      {250, {Liveness::kRejoining, 0xFFFFFFFFu, 0x0102030405060708ull}},
  };
  const auto bytes = MembershipView::encode(recs);
  EXPECT_EQ(bytes.size(), recs.size() * MembershipView::kRecordBytes);
  const auto back = MembershipView::decode(bytes.data(), bytes.size());
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(back[i].rank, recs[i].rank);
    EXPECT_EQ(back[i].st.state, recs[i].st.state);
    EXPECT_EQ(back[i].st.incarnation, recs[i].st.incarnation);
    EXPECT_EQ(back[i].st.version, recs[i].st.version);
  }
}

// --- degraded-mode route tables and survivor spanning trees -----------------

topo::Dir dir_for_index(const topo::Torus& t, topo::Rank at, int idx) {
  for (topo::Dir d : t.directions(t.coord(at))) {
    if (d.index() == idx) return d;
  }
  ADD_FAILURE() << "no direction with index " << idx << " at rank " << at;
  return topo::Dir{};
}

TEST(FltDegradedRouting, TablesWalkAroundTheDeadRank) {
  topo::Torus t(topo::Coord{4, 4});
  std::vector<bool> dead(16, false);
  dead[5] = true;
  for (topo::Rank dst = 1; dst < t.size(); ++dst) {
    if (dst == 5) continue;
    topo::Rank cur = 0;
    for (int hops = 0; cur != dst; ++hops) {
      ASSERT_LT(hops, 16) << "walk to " << dst << " does not terminate";
      const auto table = t.route_table_avoiding(cur, dead);
      const int idx = table[static_cast<std::size_t>(dst)];
      ASSERT_GE(idx, 0) << "no route " << cur << " -> " << dst;
      cur = *t.neighbor(cur, dir_for_index(t, cur, idx));
      EXPECT_NE(cur, 5) << "route to " << dst << " hops the dead coordinate";
    }
  }
  const auto table = t.route_table_avoiding(0, dead);
  EXPECT_EQ(table[0], -1);  // self
  EXPECT_EQ(table[5], -1);  // the dead rank itself is unreachable
}

TEST(FltDegradedRouting, DisconnectedDestinationsMarkedUnreachable) {
  // Non-wrapping chain 0-1-2-3 with node 1 dead: the far side is gone.
  topo::Torus t(topo::Coord{4}, false);
  std::vector<bool> dead(4, false);
  dead[1] = true;
  const auto table = t.route_table_avoiding(0, dead);
  EXPECT_EQ(table[1], -1);
  EXPECT_EQ(table[2], -1);
  EXPECT_EQ(table[3], -1);
}

TEST(FltSurvivorTree, SpansExactlyTheSurvivors) {
  topo::Torus t(topo::Coord{4, 4});
  std::vector<bool> dead(16, false);
  dead[5] = true;
  int reached = 1;  // the root
  std::vector<topo::Rank> stack{0};
  while (!stack.empty()) {
    const topo::Rank cur = stack.back();
    stack.pop_back();
    for (topo::Rank kid : topo::survivor_children(t, 0, cur, dead)) {
      EXPECT_FALSE(dead[static_cast<std::size_t>(kid)]);
      const auto p = topo::survivor_parent(t, 0, kid, dead);
      ASSERT_TRUE(p.has_value());
      EXPECT_EQ(*p, cur);
      ++reached;
      stack.push_back(kid);
    }
  }
  EXPECT_EQ(reached, 15);  // every survivor, nobody twice
  EXPECT_FALSE(topo::survivor_parent(t, 0, 5, dead).has_value());
  EXPECT_TRUE(topo::survivor_children(t, 0, 5, dead).empty());
}

// --- overlapping fault windows on one node, run-twice identical -------------

struct PairTraffic {
  int delivered = 0;
  int ok_sends = 0;
  std::uint64_t hash = chk::kFnvOffset;
};

Task<> pair_sender(mp::Endpoint& ep, int dst, int tag, int n,
                   PairTraffic& out) {
  for (int i = 0; i < n; ++i) {
    auto st =
        co_await ep.send(dst, tag, pattern(512, static_cast<std::uint8_t>(i)));
    if (st == mp::SendStatus::kOk) ++out.ok_sends;
  }
}

Task<> pair_receiver(mp::Endpoint& ep, int src, int tag, int n,
                     PairTraffic& out) {
  for (int i = 0; i < n; ++i) {
    mp::Message m = co_await ep.recv(src, tag);
    if (!m.ok) co_return;
    ++out.delivered;
    out.hash = hash_bytes(out.hash, m.data);
  }
}

Fingerprint overlap_scenario(cluster::ClusterReport& report_out) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  cfg.via.retx_timeout = 1_ms;  // retransmit inside the fault windows
  GigeMeshCluster c(cfg);
  c.engine().enable_digest(true);

  // Three fault classes overlapping on node 1's +x port: the adapter stalls
  // for 3 ms, everything it transmits during [100 us, 4.1 ms) is lossy, and
  // the cable itself flaps for 1 ms in the middle — so the stalled backlog
  // drains into a lossy wire after carrier returns.
  flt::Schedule s;
  s.nic_stall(100_us, 3_ms, 1, kPlusX);
  s.loss_burst(100_us, 4_ms, 1, kPlusX, 0.4);
  s.link_flap(1_ms, 1, kPlusX, 1_ms);
  flt::Injector inj(c, s);

  mp::Endpoint e1(c.agent(1), mp::CoreParams{});
  mp::Endpoint e2(c.agent(2), mp::CoreParams{});
  PairTraffic fwd, bwd;
  constexpr int kN = 40;
  pair_receiver(e2, 1, 3, kN, fwd).detach();
  pair_receiver(e1, 2, 4, kN, bwd).detach();
  pair_sender(e1, 2, 3, kN, fwd).detach();
  pair_sender(e2, 1, 4, kN, bwd).detach();
  c.run();

  EXPECT_EQ(fwd.delivered, kN);
  EXPECT_EQ(bwd.delivered, kN);
  EXPECT_EQ(fwd.ok_sends, kN);
  EXPECT_EQ(bwd.ok_sends, kN);
  EXPECT_EQ(inj.counters().get("stalls"), 1);
  report_out = cluster::make_report(c);
  std::uint64_t h = mix(fwd.hash, bwd.hash);
  return {c.engine().executed(), c.engine().digest(), c.engine().now(), h};
}

TEST(FltOverlap, StallLossAndFlapOnOnePortByteIdentical) {
  cluster::ClusterReport report;
  auto r = chk::run_twice_and_compare(
      [&report] { return overlap_scenario(report); });
  EXPECT_TRUE(r.identical) << r.divergence;
  EXPECT_NE(r.first.result_hash, 0u);
  EXPECT_GT(report.retransmits, 0);  // the windows actually bit
  EXPECT_EQ(report.vi_failures, 0);  // and recovery stayed in budget
}

// --- crash / detect / degrade / rejoin acceptance campaign on 4x8x8 ---------

// Coordinates in the default 4x8x8 torus (rank = x + 4y + 32z):
constexpr topo::Rank kVictim = 110;    // (2,3,3): crashes and rejoins
constexpr topo::Rank kSender = 106;    // (2,2,3): minimal route crosses victim
constexpr topo::Rank kReceiver = 114;  // (2,4,3)
constexpr topo::Rank kNeighbor = 109;  // (1,3,3): -x neighbour of the victim

struct CampaignOutcome {
  PairTraffic traffic;
  bool warmed = false;
  bool probe_done = false;
  mp::SendStatus probe_status = mp::SendStatus::kOk;
};

Task<> paced_sender(mp::Endpoint& ep, int dst, int tag, int n,
                    PairTraffic& out) {
  for (int i = 0; i < n; ++i) {
    auto st =
        co_await ep.send(dst, tag, pattern(512, static_cast<std::uint8_t>(i)));
    if (st == mp::SendStatus::kOk) ++out.ok_sends;
    co_await sim::delay(ep.engine(), 100_us);
  }
}

Task<> warm_recv(mp::Endpoint& ep, CampaignOutcome& out) {
  mp::Message m = co_await ep.recv(kNeighbor, 7);
  out.warmed = m.ok;
}

Task<> warm_send(mp::Endpoint& ep) {
  auto st = co_await ep.send(kVictim, 7, pattern(64, 9));
  EXPECT_EQ(st, mp::SendStatus::kOk);
}

Task<> probe_dead(mp::Endpoint& ep, CampaignOutcome& out) {
  out.probe_status = co_await ep.send(kVictim, 7, pattern(64, 10));
  out.probe_done = true;
}

Fingerprint campaign_scenario(cluster::ClusterReport& report_out) {
  GigeMeshConfig cfg;  // default 4x8x8 torus, 256 nodes
  cfg.via.retx_timeout = 1_ms;
  GigeMeshCluster c(cfg);
  c.engine().enable_digest(true);
  ClusterLifecycle life(c);
  life.start();

  // Crash the victim 2 ms in, cold-start it 10 ms later.
  flt::Schedule s;
  s.crash_restart(2_ms, kVictim, 10_ms);
  flt::Injector inj(c, s);

  mp::Endpoint snd(c.agent(kSender), mp::CoreParams{});
  mp::Endpoint rcv(c.agent(kReceiver), mp::CoreParams{});
  mp::Endpoint nbr(c.agent(kNeighbor), mp::CoreParams{});
  mp::Endpoint vic(c.agent(kVictim), mp::CoreParams{});

  CampaignOutcome out;
  constexpr int kMsgs = 100;  // paced 100 us apart: spans the whole outage
  paced_sender(snd, kReceiver, 5, kMsgs, out.traffic).detach();
  pair_receiver(rcv, kSender, 5, kMsgs, out.traffic).detach();
  // Warm the neighbour->victim channel so the post-detection probe exercises
  // the fast-fail path of an established channel, not a fresh dial.
  warm_recv(vic, out).detach();
  warm_send(nbr).detach();

  // Detection: crash at 2 ms + dead_after 2 ms + detector tick + flood. By
  // 8 ms every survivor must have converged on kDead.
  c.engine().run_until(8_ms);
  EXPECT_TRUE(out.warmed);
  EXPECT_TRUE(life.survivors_agree(kVictim, Liveness::kDead))
      << "survivors did not converge on the death";

  // A send to the dead rank error-completes promptly instead of hanging.
  probe_dead(nbr, out).detach();
  c.engine().run_until(9_ms);
  EXPECT_TRUE(out.probe_done) << "send to dead rank hung";
  EXPECT_EQ(out.probe_status, mp::SendStatus::kUnreachable);

  // Restart at 12 ms; by 20 ms the flood must have healed every view, and
  // the sender/receiver pair (whose minimal route crossed the victim) must
  // have delivered everything via degraded-mode routes in the meantime.
  c.engine().run_until(20_ms);
  EXPECT_TRUE(life.all_alive()) << "rejoin did not converge";
  EXPECT_EQ(out.traffic.delivered, kMsgs);
  EXPECT_EQ(out.traffic.ok_sends, kMsgs);

  life.stop();
  c.run();
  report_out = cluster::make_report(c);

  std::uint64_t h = out.traffic.hash;
  h = mix(h, static_cast<std::uint64_t>(out.traffic.delivered));
  h = mix(h, static_cast<std::uint64_t>(out.probe_status));
  h = mix(h, life.all_alive() ? 1 : 0);
  return {c.engine().executed(), c.engine().digest(), c.engine().now(), h};
}

TEST(FltNodeCrash, DetectDegradeRejoinConvergesByteIdentical) {
  cluster::ClusterReport report;
  auto r = chk::run_twice_and_compare(
      [&report] { return campaign_scenario(report); });
  EXPECT_TRUE(r.identical) << r.divergence;
  EXPECT_NE(r.first.result_hash, 0u);
  EXPECT_EQ(report.node_crashes, 1);
  EXPECT_EQ(report.node_restarts, 1);
  // Degraded-mode tables actually carried traffic around the dead coordinate.
  EXPECT_GT(report.table_routed_frames, 0);
  // Recovery latencies landed in the observability histograms (and therefore
  // in ClusterReport.metrics).
  auto& reg = obs::Registry::instance();
  EXPECT_GT(reg.histogram("cluster.detection_latency_ns").count(), 0u);
  EXPECT_GT(reg.histogram("cluster.rejoin_latency_ns").count(), 0u);
}

// --- chaos property: node crash in the middle of a scatter ------------------

struct ScatterCell {
  bool done = false;
  coll::ScatterResult res;
};

Task<> scatter_node(mp::Endpoint& ep, topo::Rank root,
                    const std::vector<std::vector<std::byte>>* chunks, int tag,
                    coll::ScatterAlg alg,
                    std::function<bool(topo::Rank)> is_dead,
                    ScatterCell& out) {
  out.res = co_await coll::scatter_failaware(ep, root, chunks, tag, alg,
                                             std::move(is_dead));
  out.done = true;
}

Fingerprint scatter_crash_scenario(coll::ScatterAlg alg, int& failed_out) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  cfg.via.retx_timeout = 1_ms;
  GigeMeshCluster c(cfg);
  c.engine().enable_digest(true);
  ClusterLifecycle life(c);
  life.start();

  constexpr topo::Rank kRoot = 0;
  constexpr topo::Rank kDoomed = 1;  // (1,0): forwards for several routes
  const topo::Rank n = c.size();

  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  for (topo::Rank r = 0; r < n; ++r) {
    eps.push_back(
        std::make_unique<mp::Endpoint>(c.agent(r), mp::CoreParams{}));
  }
  // Wire the failure detector to the endpoints: a confirmed death cancels
  // the rank's posted receives, waking blocked scatter participants.
  for (topo::Rank r = 0; r < n; ++r) {
    life.subscribe(r, [&eps, r](topo::Rank, Liveness to) {
      if (to == Liveness::kDead) {
        eps[static_cast<std::size_t>(r)]->cancel_posted_recvs();
      }
    });
  }

  std::vector<std::vector<std::byte>> chunks;
  for (topo::Rank r = 0; r < n; ++r) {
    chunks.push_back(pattern(8192, static_cast<std::uint8_t>(r + 1)));
  }

  std::vector<ScatterCell> cells(static_cast<std::size_t>(n));
  for (topo::Rank r = 0; r < n; ++r) {
    auto is_dead = [&life, r](topo::Rank q) {
      return life.view(r).at(q).state == Liveness::kDead;
    };
    scatter_node(*eps[static_cast<std::size_t>(r)], kRoot,
                 r == kRoot ? &chunks : nullptr, (1 << 23) | 21, alg,
                 std::move(is_dead), cells[static_cast<std::size_t>(r)])
        .detach();
  }

  // Kill the forwarder mid-operation, well before anything is delivered to
  // the far ranks and long before the failure detector can have fired.
  flt::Schedule s;
  s.node_crash(250_us, kDoomed);
  flt::Injector inj(c, s);

  c.engine().run_until(10_ms);
  EXPECT_TRUE(life.survivors_agree(kDoomed, Liveness::kDead));

  std::uint64_t h = chk::kFnvOffset;
  int failed = 0;
  for (topo::Rank r = 0; r < n; ++r) {
    if (r == kDoomed) continue;
    auto& cell = cells[static_cast<std::size_t>(r)];
    EXPECT_TRUE(cell.done) << "rank " << r << " hung in the scatter";
    if (!cell.done) continue;
    if (cell.res.ok) {
      EXPECT_EQ(cell.res.data, chunks[static_cast<std::size_t>(r)])
          << "corrupt chunk at rank " << r;
    } else {
      EXPECT_TRUE(cell.res.data.empty());
      ++failed;
    }
    h = mix(h, cell.res.ok ? 1 : 2);
    h = hash_bytes(h, cell.res.data);
  }
  failed_out = failed;

  life.stop();
  c.run();
  return {c.engine().executed(), c.engine().digest(), c.engine().now(), h};
}

TEST(FltScatterCrash, SdfSurvivorsCompleteOrErrorCleanly) {
  int failed = 0;
  auto r = chk::run_twice_and_compare([&failed] {
    return scatter_crash_scenario(coll::ScatterAlg::kSdf, failed);
  });
  EXPECT_TRUE(r.identical) << r.divergence;
  EXPECT_GT(failed, 0) << "crash fired too late to doom any chunk";
}

TEST(FltScatterCrash, OptSurvivorsCompleteOrErrorCleanly) {
  int failed = 0;
  auto r = chk::run_twice_and_compare([&failed] {
    return scatter_crash_scenario(coll::ScatterAlg::kOpt, failed);
  });
  EXPECT_TRUE(r.identical) << r.divergence;
  EXPECT_GT(failed, 0) << "crash fired too late to doom any chunk";
}

}  // namespace
