#!/usr/bin/env python3
"""Self-test for tools/meshmp_lint.py, registered with ctest.

Three gates:
  1. Fixture conformance — every tests/lint_fixtures/*.cpp line tagged
     LINT-EXPECT[RULE] must produce exactly that finding, and no untagged
     line may produce any. This asserts both directions: each rule fires on
     its known-bad shape, and each suppression/legal variant stays silent.
  2. src/ stays lint-clean (exit 0, zero findings) with the checked-in
     allowlist.
  3. The allowlist mechanism filters a finding (and only that finding).
"""

import os
import re
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(ROOT, "tools", "meshmp_lint.py")
FIXTURE_DIR = os.path.join(ROOT, "tests", "lint_fixtures")

EXPECT_RE = re.compile(r"LINT-EXPECT\[([A-Z]\d)\]")
FINDING_RE = re.compile(r"^(.*?):(\d+): \[([A-Z]\d)\]")

failures = []


def check(ok, label):
    print(("ok   " if ok else "FAIL ") + label)
    if not ok:
        failures.append(label)


def run_lint(files, allowlist=os.devnull):
    cmd = [sys.executable, LINT, "--engine", "text", "--quiet",
           "--allowlist", allowlist] + files
    proc = subprocess.run(cmd, cwd=ROOT, capture_output=True, text=True)
    findings = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.add(
                (os.path.basename(m.group(1)), int(m.group(2)), m.group(3)))
    return proc.returncode, findings


def expected_findings(path):
    out = set()
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for rule in EXPECT_RE.findall(line):
                out.add((os.path.basename(path), lineno, rule))
    return out


def main():
    fixtures = sorted(
        os.path.join(FIXTURE_DIR, n)
        for n in os.listdir(FIXTURE_DIR) if n.endswith(".cpp"))
    check(len(fixtures) >= 5, f"found {len(fixtures)} fixtures (>= 5)")

    # Gate 1: each fixture yields exactly its tagged findings.
    for path in fixtures:
        name = os.path.basename(path)
        expected = expected_findings(path)
        code, actual = run_lint([path])
        missing = expected - actual
        surprise = actual - expected
        check(not missing, f"{name}: every tagged rule fires"
              + (f" (missing {sorted(missing)})" if missing else ""))
        check(not surprise, f"{name}: suppressed/legal lines stay silent"
              + (f" (unexpected {sorted(surprise)})" if surprise else ""))
        want_code = 1 if expected else 0
        check(code == want_code, f"{name}: exit code {code} == {want_code}")

    rules_covered = {r for p in fixtures for _, _, r in expected_findings(p)}
    check(rules_covered >= {"D1", "D2", "D3", "C1", "R3", "R4", "H1"},
          f"fixtures cover all rules ({sorted(rules_covered)})")

    # Gate 2: the real tree is clean under the checked-in allowlist.
    code, findings = run_lint(
        [], allowlist=os.path.join("tools", "meshmp_lint_allowlist.txt"))
    check(code == 0 and not findings,
          f"src/ is lint-clean (exit {code}, {len(findings)} findings)")

    # Gate 2b: the gray-failure fault/score path specifically is free of
    # wall-clock randomness (D2). These files hold every die roll and window
    # edge of the gray campaigns — flaky drop/dup/reorder decisions, quality
    # EWMA sampling, phi timeouts — and the run-twice / thread-matrix digest
    # guarantees are only as good as this gate. Run WITHOUT the allowlist so
    # a future allowlist entry can never quietly exempt them.
    gray_files = [
        os.path.join("src", "flt", "fault.cpp"),
        os.path.join("src", "flt", "fault.hpp"),
        os.path.join("src", "net", "quality.hpp"),
        os.path.join("src", "cluster", "lifecycle.cpp"),
    ]
    code, findings = run_lint(gray_files)
    d2 = {f for f in findings if f[2] == "D2"}
    check(code == 0 and not d2,
          f"gray flt/score code has no wall-clock randomness "
          f"(exit {code}, {len(d2)} D2 findings)")

    # Gate 3: an allowlist entry filters exactly the finding it names.
    bad_copy = os.path.join(FIXTURE_DIR, "bad_copy.cpp")
    rel = os.path.relpath(bad_copy, ROOT)
    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as f:
        f.write("# fixture allowlist for test_lint.py\n")
        f.write(f"C1 {rel} std::memcpy(dst, src, n);  // LINT-EXPECT\n")
        allow = f.name
    try:
        _, unfiltered = run_lint([bad_copy])
        code, filtered = run_lint([bad_copy], allowlist=allow)
        # Both tagged memcpy C1 lines contain the allowlisted substring; the
        # std::copy finding must survive.
        dropped = unfiltered - filtered
        check(dropped and all(r == "C1" for _, _, r in dropped),
              f"allowlist drops matching findings ({sorted(dropped)})")
        with open(bad_copy, encoding="utf-8") as f:
            lines = f.read().splitlines()
        copy_line = next(i + 1 for i, l in enumerate(lines)
                         if "std::copy(" in l and "LINT-EXPECT" in l)
        check(("bad_copy.cpp", copy_line, "C1") in filtered,
              "std::copy finding survives an unrelated allowlist entry")
    finally:
        os.unlink(allow)

    if failures:
        print(f"\n{len(failures)} failure(s)", file=sys.stderr)
        return 1
    print(f"\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
