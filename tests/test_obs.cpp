// Observability layer tests: counters (sorted flat map), log-bucketed
// histograms (percentile math), the metrics registry (group aggregation,
// retirement, interned histograms), and — when the tracer is compiled in —
// the Perfetto trace_event export schema, ring-buffer semantics, span
// coverage, and the contract that tracing does not perturb the model
// (identical determinism fingerprints tracing on vs off).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chk/determinism.hpp"
#include "chk/digest.hpp"
#include "cluster/gige_mesh.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "via/agent.hpp"
#include "via/vi.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using chk::Fingerprint;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using sim::Task;
using via::KernelAgent;
using via::Vi;

// --- Counters --------------------------------------------------------------

TEST(ObsCounters, IncGetAndDefaultZero) {
  obs::Counters c;
  EXPECT_EQ(c.get("missing"), 0);
  c.inc("drops");
  c.inc("drops", 4);
  c.inc("retransmits", 2);
  EXPECT_EQ(c.get("drops"), 5);
  EXPECT_EQ(c.get("retransmits"), 2);
  EXPECT_EQ(c.get("dro"), 0);  // prefix is not a match
}

TEST(ObsCounters, ItemsAreSortedRegardlessOfInsertionOrder) {
  obs::Counters c;
  c.inc("zeta");
  c.inc("alpha");
  c.inc("mid");
  c.inc("alpha", 9);
  const auto& items = c.items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, "alpha");
  EXPECT_EQ(items[0].second, 10);
  EXPECT_EQ(items[1].first, "mid");
  EXPECT_EQ(items[2].first, "zeta");
}

// --- Histogram -------------------------------------------------------------

TEST(ObsHistogram, EmptyHistogramIsAllZero) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(ObsHistogram, BasicMoments) {
  obs::Histogram h;
  h.add(0);
  h.add(1);
  h.add(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1001);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_NEAR(h.mean(), 1001.0 / 3.0, 1e-9);
}

TEST(ObsHistogram, SingleValueQuantilesAreExact) {
  obs::Histogram h;
  h.add(777);
  // One sample: every quantile is that sample, clamped to [min, max].
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 777.0);
  EXPECT_DOUBLE_EQ(h.p50(), 777.0);
  EXPECT_DOUBLE_EQ(h.p99(), 777.0);
}

TEST(ObsHistogram, QuantilesAreMonotoneAndClamped) {
  obs::Histogram h;
  for (std::int64_t v = 1; v <= 1000; ++v) h.add(v);
  const double p50 = h.p50();
  const double p95 = h.p95();
  const double p99 = h.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Log-bucketed: the p50 of uniform 1..1000 must land in the right
  // power-of-two bucket ([512, 1024) holds ranks 512..1000, so the median
  // rank 500 lives in [256, 512)).
  EXPECT_GE(p50, 256.0);
  EXPECT_LT(p50, 512.0);
}

TEST(ObsHistogram, WeightedAddAndMerge) {
  obs::Histogram a;
  a.add(8, 10);
  EXPECT_EQ(a.count(), 10u);
  EXPECT_EQ(a.sum(), 80);

  obs::Histogram b;
  b.add(1024, 2);
  a.merge(b);
  EXPECT_EQ(a.count(), 12u);
  EXPECT_EQ(a.sum(), 80 + 2048);
  EXPECT_EQ(a.min(), 8);
  EXPECT_EQ(a.max(), 1024);

  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.max(), 0);
}

TEST(ObsHistogram, ZerosLandInBucketZero) {
  obs::Histogram h;
  h.add(0, 5);
  h.add(1);
  EXPECT_EQ(h.buckets()[0], 5u);
  EXPECT_EQ(h.buckets()[1], 1u);
  // Quantiles stay within the observed range even with a zero pile.
  EXPECT_GE(h.quantile(0.99), 0.0);
  EXPECT_LE(h.quantile(0.99), 1.0);
}

// --- Registry --------------------------------------------------------------

TEST(ObsRegistry, SameGroupSourcesAreSummed) {
  auto& reg = obs::Registry::instance();
  obs::Counters a;
  obs::Counters b;
  a.inc("frames", 3);
  b.inc("frames", 4);
  b.inc("drops", 1);
  auto ra = reg.attach("testnic.sum", &a);
  auto rb = reg.attach("testnic.sum", &b);
  const obs::Snapshot snap = reg.snapshot_live();
  EXPECT_EQ(snap.counter("testnic.sum.frames"), 7);
  EXPECT_EQ(snap.counter("testnic.sum.drops"), 1);
  EXPECT_EQ(snap.counter("testnic.sum.absent"), 0);
}

TEST(ObsRegistry, DetachedSourcesRetireIntoFullSnapshotOnly) {
  auto& reg = obs::Registry::instance();
  reg.reset();  // drop retirements from earlier tests
  {
    obs::Counters c;
    c.inc("events", 11);
    auto r = reg.attach("testnic.retire", &c);
    EXPECT_EQ(reg.snapshot_live().counter("testnic.retire.events"), 11);
  }  // destroyed: folds into retired totals
  EXPECT_EQ(reg.snapshot_live().counter("testnic.retire.events"), 0);
  EXPECT_EQ(reg.snapshot().counter("testnic.retire.events"), 11);
  reg.reset();
  EXPECT_EQ(reg.snapshot().counter("testnic.retire.events"), 0);
}

TEST(ObsRegistry, SnapshotCountersAreSortedByName) {
  auto& reg = obs::Registry::instance();
  obs::Counters c;
  c.inc("zz", 1);
  c.inc("aa", 1);
  auto r = reg.attach("testnic.sorted", &c);
  const obs::Snapshot snap = reg.snapshot_live();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

TEST(ObsRegistry, HistogramsAreInternedByName) {
  auto& reg = obs::Registry::instance();
  obs::Histogram& h1 = reg.histogram("testnic.interned_ns");
  obs::Histogram& h2 = reg.histogram("testnic.interned_ns");
  EXPECT_EQ(&h1, &h2);
  h1.reset();
  h1.add(100);
  h2.add(300);
  const obs::Snapshot snap = reg.snapshot();
  const obs::HistogramSummary* s = snap.hist("testnic.interned_ns");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 2u);
  EXPECT_EQ(s->sum, 400);
}

TEST(ObsRegistry, SnapshotJsonHasCountersAndHistograms) {
  auto& reg = obs::Registry::instance();
  obs::Counters c;
  c.inc("ticks", 42);
  auto r = reg.attach("testnic.json", &c);
  reg.histogram("testnic.json_hist").add(5);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"testnic.json.ticks\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"testnic.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// --- sim::Counters alias ---------------------------------------------------

TEST(ObsCounters, SimCountersIsTheObsSortedMap) {
  // The ad-hoc sim::Counters plumbing is absorbed by the obs layer; the
  // alias keeps every component and test source-compatible.
  static_assert(std::is_same_v<sim::Counters, obs::Counters>);
}

// --- Tracer (compiled-in builds only) --------------------------------------

#if MESHMP_OBS_TRACING

class ObsTrace : public ::testing::Test {
 protected:
  void SetUp() override { obs::Tracer::instance().enable(1 << 12); }
  void TearDown() override { obs::Tracer::instance().disable(); }
};

TEST_F(ObsTrace, CompleteInstantAndAsyncEventsAreRecorded) {
  auto& tr = obs::Tracer::instance();
  const std::int32_t trk = tr.track(0, "unit");
  tr.complete(1000, 500, obs::Cat::kNic, 0, trk, "dma", "bytes", 64.0);
  tr.instant(1200, obs::Cat::kVia, 1, "retransmit");
  tr.async_begin(100, obs::Cat::kMp, 0, "rndv", 0xabcdef);
  tr.async_end(1900, obs::Cat::kMp, 0, "rndv", 0xabcdef);
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs[0].phase, obs::TraceEvent::Phase::kComplete);
  EXPECT_EQ(evs[0].dur, 500);
  EXPECT_EQ(evs[1].node, 1);
  EXPECT_EQ(evs[2].id, 0xabcdefu);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST_F(ObsTrace, CategoryMaskFiltersAndSimIsOffByDefault) {
  auto& tr = obs::Tracer::instance();
  EXPECT_FALSE(tr.wants(obs::Cat::kSim));  // high-volume, off by default
  EXPECT_TRUE(tr.wants(obs::Cat::kNic));
  tr.instant(0, obs::Cat::kSim, 0, "dispatch");
  EXPECT_TRUE(tr.events().empty());
  tr.set_categories(obs::cat_bit(obs::Cat::kSim));
  EXPECT_TRUE(tr.wants(obs::Cat::kSim));
  EXPECT_FALSE(tr.wants(obs::Cat::kNic));
  tr.instant(0, obs::Cat::kSim, 0, "dispatch");
  EXPECT_EQ(tr.events().size(), 1u);
  tr.set_categories(obs::kDefaultCatMask);
}

TEST_F(ObsTrace, RingOverwritesOldestAndCountsDrops) {
  auto& tr = obs::Tracer::instance();
  tr.enable(4);
  for (int i = 0; i < 10; ++i) {
    tr.instant(i * 100, obs::Cat::kNic, 0, "tick");
  }
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(tr.dropped(), 6u);
  // Oldest-first unwrap: the survivors are the last four ticks in order.
  EXPECT_EQ(evs.front().ts, 600);
  EXPECT_EQ(evs.back().ts, 900);
}

TEST_F(ObsTrace, TrackInterningSurvivesReEnable) {
  auto& tr = obs::Tracer::instance();
  const std::int32_t t1 = tr.track(3, "persistent");
  tr.enable(64);  // clears events, must not recycle track ids
  const std::int32_t t2 = tr.track(3, "persistent");
  EXPECT_EQ(t1, t2);
  EXPECT_NE(tr.track(4, "persistent"), t1);  // same name, other node
}

// Golden schema test: a tiny hand-built two-node trace must export the
// Chrome trace_event structures Perfetto actually loads.
TEST_F(ObsTrace, PerfettoJsonSchemaForTwoNodeTrace) {
  auto& tr = obs::Tracer::instance();
  const std::int32_t trk0 = tr.track(0, "nic0.dma");
  const std::int32_t trk1 = tr.track(1, "vi1");
  tr.complete(1500, 2500, obs::Cat::kNic, 0, trk0, "dma", "wire_bytes", 1538);
  tr.complete(4000, 1000, obs::Cat::kVia, 1, trk1, "vi.recv_wait");
  tr.instant(5000, obs::Cat::kVia, 1, "retransmit", "window", 3);
  tr.async_begin(2000, obs::Cat::kMp, 0, "eager_send", 0x2a);
  tr.async_end(6000, obs::Cat::kMp, 0, "eager_send", 0x2a);
  const std::string json = tr.to_json();

  // Top-level object with a traceEvents array.
  EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(json.find("], \"displayTimeUnit\": \"ns\"}"), std::string::npos);

  // Process metadata for both nodes, thread metadata for both tracks.
  EXPECT_NE(json.find("{\"name\": \"process_name\", \"ph\": \"M\", "
                      "\"pid\": 0, \"args\": {\"name\": \"node0\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"process_name\", \"ph\": \"M\", "
                      "\"pid\": 1, \"args\": {\"name\": \"node1\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"name\": \"nic0.dma\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"name\": \"vi1\"}"), std::string::npos);

  // Complete span: µs timestamps with ns precision kept as fractions.
  EXPECT_NE(json.find("{\"name\": \"dma\", \"cat\": \"nic\", \"ph\": \"X\", "
                      "\"ts\": 1.500, \"pid\": 0, \"tid\": " +
                      std::to_string(trk0) +
                      ", \"dur\": 2.500, \"args\": {\"wire_bytes\": 1538}}"),
            std::string::npos);

  // Instant event with thread scope and args.
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"window\": 3}"), std::string::npos);

  // Async pair: hex id, category scope, args object present.
  EXPECT_NE(json.find("\"ph\": \"b\", \"ts\": 2.000, \"pid\": 0, \"tid\": 0, "
                      "\"id\": \"2a\", \"scope\": \"mp\", \"args\": {}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);

  // Events are sorted by timestamp: the async begin (ts 2.0) precedes the
  // recv_wait span (ts 4.0).
  EXPECT_LT(json.find("\"ph\": \"b\""), json.find("vi.recv_wait"));
}

TEST_F(ObsTrace, SpanCoverageUnionsOverlapsAndClips) {
  std::vector<obs::TraceEvent> evs;
  auto span = [](sim::Time ts, sim::Duration dur, std::int32_t node) {
    obs::TraceEvent ev;
    ev.ts = ts;
    ev.dur = dur;
    ev.node = node;
    ev.phase = obs::TraceEvent::Phase::kComplete;
    return ev;
  };
  evs.push_back(span(0, 400, 0));
  evs.push_back(span(200, 400, 0));    // overlaps the first
  evs.push_back(span(900, 200, 0));    // clipped at t1 = 1000
  evs.push_back(span(100, 800, 1));    // other node, ignored
  EXPECT_DOUBLE_EQ(obs::span_coverage(evs, 0, 0, 1000), 0.7);
  EXPECT_DOUBLE_EQ(obs::span_coverage(evs, 1, 0, 1000), 0.8);
  EXPECT_DOUBLE_EQ(obs::span_coverage(evs, 2, 0, 1000), 0.0);
  EXPECT_DOUBLE_EQ(obs::span_coverage(evs, 0, 500, 500), 0.0);  // empty window
}

#else  // !MESHMP_OBS_TRACING

TEST(ObsTrace, SkippedWhenTracerCompiledOut) {
  GTEST_SKIP() << "tracer compiled out; configure with -DMESHMP_TRACING=ON";
}

#endif  // MESHMP_OBS_TRACING

// --- tracing must not perturb the model ------------------------------------

std::vector<std::byte> pattern(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 131) & 0xff);
  }
  return v;
}

struct Conn {
  Vi* a = nullptr;
  Vi* b = nullptr;
};

Task<> do_connect(KernelAgent& from, net::NodeId to, std::uint32_t service,
                  Conn& out) {
  out.a = co_await from.connect(to, service);
}

Task<> do_accept(KernelAgent& at, std::uint32_t service, Conn& out) {
  out.b = co_await at.accept(service);
}

Task<> pong_side(Vi& vi, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    auto c = co_await vi.recv_completion();
    co_await vi.send(std::move(c.data));
  }
}

Task<> ping_side(Vi& vi, int rounds, std::int64_t size, std::uint64_t& hash,
                 sim::Time& t0, sim::Time& t1, sim::Engine& eng) {
  t0 = eng.now();
  for (int i = 0; i < rounds; ++i) {
    co_await vi.send(pattern(static_cast<std::size_t>(size)));
    auto c = co_await vi.recv_completion();
    hash = chk::fnv1a_bytes(hash ? hash : chk::kFnvOffset, c.data.data(),
                            c.data.size());
  }
  t1 = eng.now();
}

struct PingPongRun {
  Fingerprint fp;
  sim::Time t0 = 0;
  sim::Time t1 = 0;
};

PingPongRun via_pingpong_run(int rounds, std::int64_t size) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  GigeMeshCluster c(cfg);
  c.engine().enable_digest(true);
  Conn conn;
  c.agent(1).listen(7);
  do_accept(c.agent(1), 7, conn).detach();
  do_connect(c.agent(0), 1, 7, conn).detach();
  c.engine().run();
  for (int i = 0; i < rounds + 2; ++i) {
    conn.a->post_recv(size + 64);
    conn.b->post_recv(size + 64);
  }
  PingPongRun run;
  std::uint64_t hash = 0;
  pong_side(*conn.b, rounds).detach();
  ping_side(*conn.a, rounds, size, hash, run.t0, run.t1, c.engine()).detach();
  c.engine().run();
  run.fp = {c.engine().executed(), c.engine().digest(), c.engine().now(), hash};
  return run;
}

TEST(ObsDeterminism, TracingOnAndOffProduceIdenticalFingerprints) {
  obs::Tracer::instance().disable();
  const PingPongRun off = via_pingpong_run(6, 4096);
#if MESHMP_OBS_TRACING
  obs::Tracer::instance().enable();
  const PingPongRun on = via_pingpong_run(6, 4096);
  obs::Tracer::instance().disable();
  EXPECT_FALSE(obs::Tracer::instance().events().empty());
#else
  const PingPongRun on = via_pingpong_run(6, 4096);
#endif
  EXPECT_EQ(off.fp, on.fp) << "tracing perturbed the model:\n  off: "
                           << chk::describe(off.fp)
                           << "\n  on:  " << chk::describe(on.fp);
  EXPECT_EQ(off.t0, on.t0);
  EXPECT_EQ(off.t1, on.t1);
  EXPECT_GT(off.fp.executed, 0u);
  EXPECT_NE(off.fp.result_hash, 0u);
}

#if MESHMP_OBS_TRACING

// Acceptance criterion for "the trace explains the run": on the measured
// node of a VIA ping-pong, the union of spans (sends, NIC pipeline, blocked
// recv waits) covers at least 95% of the measured interval.
TEST(ObsDeterminism, PingPongSpansCoverMeasuredInterval) {
  obs::Tracer::instance().enable();
  const PingPongRun run = via_pingpong_run(10, 16384);
  const auto evs = obs::Tracer::instance().events();
  obs::Tracer::instance().disable();
  ASSERT_GT(run.t1, run.t0);
  const double cov = obs::span_coverage(evs, 0, run.t0, run.t1);
  EXPECT_GE(cov, 0.95) << "trace spans cover only " << cov * 100
                       << "% of the measured interval on node 0";
}

#endif  // MESHMP_OBS_TRACING

}  // namespace
