// Tests for the fault-injection campaign engine (flt::Schedule / Injector)
// and the failure model it exercises: carrier flaps with route-around, wire
// corruption bursts recovered by Reliable Delivery, NIC stalls, retransmit
// backoff with a bounded retry budget, and structured "peer unreachable"
// errors surfacing through mp::Endpoint, MPI return codes, and QMP status —
// all byte-identical under the run-twice determinism harness.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chk/determinism.hpp"
#include "chk/digest.hpp"
#include "cluster/gige_mesh.hpp"
#include "cluster/report.hpp"
#include "coll/tree.hpp"
#include "flt/fault.hpp"
#include "mp/endpoint.hpp"
#include "mpi/mpi.hpp"
#include "qmp/qmp.hpp"
#include "sim/engine.hpp"
#include "via/agent.hpp"
#include "via/vi.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using chk::Fingerprint;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using sim::Task;
using via::KernelAgent;
using via::Vi;

constexpr topo::Dir kPlusX{0, +1};

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  }
  return v;
}

std::uint64_t hash_bytes(std::uint64_t h, const std::vector<std::byte>& v) {
  return chk::fnv1a_bytes(h, v.data(), v.size());
}

// --- schedule / injector basics --------------------------------------------

TEST(FltSchedule, BuilderExpandsCompoundEvents) {
  flt::Schedule s;
  s.link_flap(1_ms, 0, kPlusX, 5_ms)
      .loss_burst(2_ms, 1_ms, 1, kPlusX, 0.5)
      .corrupt_burst(3_ms, 1_ms, 2, kPlusX, 1.0)
      .nic_stall(4_ms, 1_ms, 3, kPlusX);
  ASSERT_EQ(s.events().size(), 8u);  // each helper arms a start and a stop
  EXPECT_EQ(s.events()[0].kind, flt::FaultEvent::Kind::kLinkDown);
  EXPECT_EQ(s.events()[1].kind, flt::FaultEvent::Kind::kLinkUp);
  EXPECT_EQ(s.events()[1].at, 6_ms);
  EXPECT_FALSE(s.empty());
}

TEST(FltInjector, RejectsEventsOnMissingLinks) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  GigeMeshCluster c(cfg);
  flt::Schedule bad;
  bad.link_down(0, 0, topo::Dir{2, +1});  // 1-D ring has no z links
  EXPECT_THROW(flt::Injector(c, bad), std::invalid_argument);
}

// --- corruption burst: CRC discard + Reliable Delivery recovery -------------

struct Conn {
  Vi* a = nullptr;
  Vi* b = nullptr;
};

Task<> do_connect(KernelAgent& from, net::NodeId to, std::uint32_t service,
                  Conn& out) {
  out.a = co_await from.connect(to, service);
}

Task<> do_accept(KernelAgent& at, std::uint32_t service, Conn& out) {
  out.b = co_await at.accept(service);
}

Conn connect_pair(GigeMeshCluster& c, topo::Rank ra, topo::Rank rb,
                  std::uint32_t service = 7) {
  Conn conn;
  c.agent(rb).listen(service);
  do_accept(c.agent(rb), service, conn).detach();
  do_connect(c.agent(ra), rb, service, conn).detach();
  c.engine().run();
  EXPECT_NE(conn.a, nullptr);
  EXPECT_NE(conn.b, nullptr);
  return conn;
}

Task<> send_msg(Vi& vi, std::vector<std::byte> data) {
  co_await vi.send(std::move(data), 0);
}

Task<> recv_msg(Vi& vi, std::vector<std::byte>& out, bool& done) {
  auto c = co_await vi.recv_completion();
  out = std::move(c.data);
  done = true;
}

TEST(FltCorrupt, BurstIsCrcDiscardedAndRetransmitted) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  cfg.via.retx_timeout = 2_ms;  // recover promptly after the burst
  GigeMeshCluster c(cfg);
  Conn conn = connect_pair(c, 0, 1);
  conn.b->post_recv(64 * 1024);

  // Corrupt every frame node 0 transmits towards +x for 1 ms, starting now.
  flt::Schedule s;
  s.corrupt_burst(c.engine().now(), 1_ms, 0, kPlusX, 1.0);
  flt::Injector inj(c, s);

  auto data = pattern(20'000, 9);
  std::vector<std::byte> got;
  bool done = false;
  recv_msg(*conn.b, got, done).detach();
  send_msg(*conn.a, data).detach();
  c.engine().run();

  EXPECT_TRUE(done);
  EXPECT_EQ(got, data);  // end-to-end payload integrity
  EXPECT_EQ(inj.counters().get("corrupt_bursts"), 1);
  auto report = cluster::make_report(c);
  EXPECT_GT(report.corrupt_discards, 0);  // CRC caught the mangled frames
  EXPECT_GT(report.retransmits, 0);       // and go-back-N resent them
}

// --- NIC stall: frames queue behind the stalled adapter and drain ----------

TEST(FltStall, StalledAdapterDelaysButDelivers) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  GigeMeshCluster c(cfg);
  Conn conn = connect_pair(c, 0, 1);
  conn.b->post_recv(64 * 1024);

  const sim::Time stall_end = c.engine().now() + 2_ms;
  flt::Schedule s;
  s.nic_stall(c.engine().now(), 2_ms, 0, kPlusX);
  flt::Injector inj(c, s);

  auto data = pattern(4'000, 5);
  std::vector<std::byte> got;
  bool done = false;
  recv_msg(*conn.b, got, done).detach();
  send_msg(*conn.a, data).detach();
  c.engine().run();

  EXPECT_TRUE(done);
  EXPECT_EQ(got, data);
  EXPECT_GE(c.engine().now(), stall_end);  // delivery waited out the stall
  EXPECT_EQ(inj.counters().get("stalls"), 1);
}

// --- route-around-failure ---------------------------------------------------

TEST(FltRouteAround, WrapTieReroutesAroundDeadLink) {
  // 4x4 torus, 0 -> (2,0): the x displacement of +2 ties with -2 across the
  // wraparound, so losing +x leaves a same-length minimal route via -x.
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.link_down(0, 0, kPlusX);
  flt::Injector inj(c, s);

  mp::Endpoint src(c.agent(0), mp::CoreParams{});
  mp::Endpoint dst(c.agent(2), mp::CoreParams{});
  auto data = pattern(600, 2);
  bool ok = false;
  auto receiver = [](mp::Endpoint& ep, std::vector<std::byte> expect,
                     bool& flag) -> Task<> {
    mp::Message m = co_await ep.recv(0, 3);
    flag = m.data == expect;
  };
  auto sender = [](mp::Endpoint& ep, std::vector<std::byte> d) -> Task<> {
    (void)co_await ep.send(2, 3, std::move(d));
  };
  receiver(dst, data, ok).detach();
  sender(src, data).detach();
  c.engine().run();

  EXPECT_TRUE(ok);
  EXPECT_GE(c.agent(0).counters().get("rerouted_frames"), 1);
  EXPECT_EQ(c.agent(0).failed_dirs(), topo::dir_bit(kPlusX));
}

TEST(FltRouteAround, DetourAddsTwoHopsWhenNoMinimalSurvives) {
  // 4x4 torus, 0 -> (1,0): one minimal first hop (+x) and it is dead, so the
  // agent detours through the undisplaced y dimension: (0,0) -> (0,1) ->
  // (1,1) -> (1,0).
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.link_down(0, 0, kPlusX);
  flt::Injector inj(c, s);

  mp::Endpoint src(c.agent(0), mp::CoreParams{});
  mp::Endpoint dst(c.agent(1), mp::CoreParams{});
  auto data = pattern(600, 4);
  bool ok = false;
  auto receiver = [](mp::Endpoint& ep, std::vector<std::byte> expect,
                     bool& flag) -> Task<> {
    mp::Message m = co_await ep.recv(0, 3);
    flag = m.data == expect;
  };
  auto sender = [](mp::Endpoint& ep, std::vector<std::byte> d) -> Task<> {
    (void)co_await ep.send(1, 3, std::move(d));
  };
  receiver(dst, data, ok).detach();
  sender(src, data).detach();
  c.engine().run();

  EXPECT_TRUE(ok);
  EXPECT_GE(c.agent(0).counters().get("rerouted_frames"), 1);
  // The detour passes through (0,1) = rank 4, which only forwards.
  EXPECT_GT(c.agent(4).counters().get("fwd_frames"), 0);
}

// --- retry exhaustion: bounded failure instead of a hung endpoint -----------

TEST(FltBackoff, EstablishedChannelFailsWithinRetryBudget) {
  // Non-wrapping 1-D chain: the only path 1 -> 2 is the +x cable. Once it
  // dies there is no detour, so the VI must exhaust its retries and fail the
  // channel instead of hanging the endpoint service coroutine forever.
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  cfg.wrap = false;
  cfg.via.retx_timeout = 1_ms;
  cfg.via.retx_timeout_max = 8_ms;
  cfg.via.max_retries = 5;
  GigeMeshCluster c(cfg);
  mp::Endpoint a(c.agent(1), mp::CoreParams{});
  mp::Endpoint b(c.agent(2), mp::CoreParams{});

  // Warm the channel with one successful round trip.
  bool warm = false;
  auto receiver = [](mp::Endpoint& ep, bool& flag) -> Task<> {
    (void)co_await ep.recv(1, 7);
    flag = true;
  };
  auto sender = [](mp::Endpoint& ep) -> Task<> {
    auto st = co_await ep.send(2, 7, pattern(64));
    EXPECT_EQ(st, mp::SendStatus::kOk);
  };
  receiver(b, warm).detach();
  sender(a).detach();
  c.engine().run();
  ASSERT_TRUE(warm);

  // Pull the cable for good, then keep sending until the failure surfaces.
  const sim::Time t_down = c.engine().now();
  flt::Schedule s;
  s.link_down(t_down, 1, kPlusX);
  flt::Injector inj(c, s);

  bool unreachable = false;
  auto flood = [](mp::Endpoint& ep, bool& flag) -> Task<> {
    for (int i = 0; i < 200 && !flag; ++i) {
      auto st = co_await ep.send(2, 8, pattern(64));
      if (st == mp::SendStatus::kUnreachable) flag = true;
    }
  };
  flood(a, unreachable).detach();
  c.engine().run();

  EXPECT_TRUE(unreachable);
  EXPECT_GT(a.counters().get("send_unreachable"), 0);
  EXPECT_GT(c.agent(1).counters().get("vi_failures"), 0);
  // max_retries backoffs at retx_timeout_max (plus jitter) bound the window.
  EXPECT_LT(c.engine().now() - t_down, 200_ms);
}

// --- structured unreachable errors through MPI and QMP ----------------------

TEST(FltUnreachable, MpiSendReturnsErrorCodeAcrossPartition) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  cfg.wrap = false;
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.link_down(0, 1, kPlusX);  // partition {0,1} | {2,3} from the start
  flt::Injector inj(c, s);

  mp::Endpoint e1(c.agent(1), mp::CoreParams{});
  mpi::Comm comm(e1);
  int rc = -1;
  bool done = false;
  auto prog = [](mpi::Comm& cm, int& out, bool& flag) -> Task<> {
    out = co_await cm.send(pattern(128), 2, 0);
    flag = true;
  };
  prog(comm, rc, done).detach();
  c.engine().run();  // must terminate: no hang, no abort

  EXPECT_TRUE(done);
  EXPECT_EQ(rc, mpi::kErrUnreachable);
}

TEST(FltUnreachable, QmpWaitReportsUnreachableStatus) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  cfg.wrap = false;
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.link_down(0, 1, kPlusX);
  flt::Injector inj(c, s);

  mp::Endpoint e1(c.agent(1), mp::CoreParams{});
  qmp::Machine m(e1);
  qmp::MsgMem mem(256);
  mem.buf = pattern(256, 6);
  qmp::Status st = qmp::Status::kSuccess;
  bool done = false;
  auto prog = [](qmp::Machine& qm, qmp::MsgMem& mm, qmp::Status& out,
                 bool& flag) -> Task<> {
    auto h = qm.declare_send_relative(mm, 0, +1);  // node 2, behind the cut
    out = co_await qm.start_and_wait(h);
    flag = true;
  };
  prog(m, mem, st, done).detach();
  c.engine().run();

  EXPECT_TRUE(done);
  EXPECT_EQ(st, qmp::Status::kErrUnreachable);
}

// --- chaos acceptance: full mesh, mid-collective flap, run-twice identical --

struct ChaosWorld {
  GigeMeshCluster cluster;
  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  std::vector<std::unique_ptr<qmp::Machine>> machines;
  std::uint64_t hash = chk::kFnvOffset;
  int finished = 0;

  explicit ChaosWorld(topo::Coord shape)
      : cluster([&] {
          GigeMeshConfig cfg;
          cfg.shape = shape;
          cfg.via.retx_timeout = 1_ms;  // retransmit inside the flap window
          return cfg;
        }()) {
    cluster.engine().enable_digest(true);
    for (topo::Rank r = 0; r < cluster.size(); ++r) {
      eps.push_back(
          std::make_unique<mp::Endpoint>(cluster.agent(r), mp::CoreParams{}));
      machines.push_back(std::make_unique<qmp::Machine>(*eps.back()));
    }
  }
};

/// Per-rank chaos program: broadcast from rank 0, then a dslash-style halo
/// exchange with both x-neighbours, then a global sum — with a link flap
/// scheduled mid-broadcast by the caller.
Task<> chaos_node(ChaosWorld& w, mp::Endpoint& ep, qmp::Machine& m,
                  std::vector<std::byte>& bcast_expect) {
  const int rank = ep.rank();
  std::vector<std::byte> data;
  if (rank == 0) data = bcast_expect;
  co_await coll::broadcast(ep, 0, data, (1 << 23) | 10);
  EXPECT_EQ(data, bcast_expect) << "broadcast corrupted at rank " << rank;
  w.hash = hash_bytes(w.hash, data);

  const std::size_t halo = 1024;
  qmp::MsgMem fwd_out(halo), bwd_out(halo), fwd_in(halo), bwd_in(halo);
  fwd_out.buf = pattern(halo, static_cast<std::uint8_t>(2 * rank + 1));
  bwd_out.buf = pattern(halo, static_cast<std::uint8_t>(2 * rank + 2));
  auto rf = m.declare_receive_relative(fwd_in, 0, +1);
  auto rb = m.declare_receive_relative(bwd_in, 0, -1);
  auto sf = m.declare_send_relative(fwd_out, 0, +1);
  auto sb = m.declare_send_relative(bwd_out, 0, -1);
  m.start(rf);
  m.start(rb);
  m.start(sf);
  m.start(sb);
  EXPECT_EQ(co_await m.wait(rf), qmp::Status::kSuccess);
  EXPECT_EQ(co_await m.wait(rb), qmp::Status::kSuccess);
  EXPECT_EQ(co_await m.wait(sf), qmp::Status::kSuccess);
  EXPECT_EQ(co_await m.wait(sb), qmp::Status::kSuccess);
  // Halo payloads arrive CRC-intact despite the flap.
  w.hash = hash_bytes(w.hash, fwd_in.buf);
  w.hash = hash_bytes(w.hash, bwd_in.buf);

  const double norm = co_await m.sum_double(static_cast<double>(rank) + 0.25);
  EXPECT_GT(norm, 0.0);
  ++w.finished;
}

Fingerprint chaos_scenario(cluster::ClusterReport& report_out) {
  ChaosWorld w(topo::Coord{4, 8, 8});
  // Pull the cable between ranks 1 and 2 (+x) 100 us into the collective,
  // restore it 5 ms later; simultaneously corrupt everything rank 5 puts on
  // its +x cable so the halo exchange has to retransmit through the chaos.
  flt::Schedule s;
  s.link_flap(100_us, 1, kPlusX, 5_ms);
  s.corrupt_burst(100_us, 6_ms, 5, kPlusX, 1.0);
  flt::Injector inj(w.cluster, s);

  auto bcast_data = pattern(4096, 11);
  for (topo::Rank r = 0; r < w.cluster.size(); ++r) {
    chaos_node(w, *w.eps[static_cast<std::size_t>(r)],
               *w.machines[static_cast<std::size_t>(r)], bcast_data)
        .detach();
  }
  w.cluster.run();
  EXPECT_EQ(w.finished, static_cast<int>(w.cluster.size()))
      << "a rank hung under the flap";
  report_out = cluster::make_report(w.cluster);
  return {w.cluster.engine().executed(), w.cluster.engine().digest(),
          w.cluster.engine().now(), w.hash};
}

TEST(FltChaos, MeshCollectivesSurviveLinkFlapByteIdentical) {
  cluster::ClusterReport report;
  auto r = chk::run_twice_and_compare(
      [&report] { return chaos_scenario(report); });
  EXPECT_TRUE(r.identical) << r.divergence;
  EXPECT_NE(r.first.result_hash, 0u);
  // The campaign actually bit: corrupted frames were CRC-discarded,
  // go-back-N resent them, and at least one message was steered around the
  // dead cable — yet every payload arrived intact and nothing hung.
  EXPECT_GT(report.corrupt_discards, 0);
  EXPECT_GT(report.retransmits, 0);
  EXPECT_GE(report.rerouted_frames, 1);
  EXPECT_EQ(report.vi_failures, 0);  // faults recovered within the budget
}

TEST(FltReport, StrMentionsFaultCounters) {
  cluster::ClusterReport r;
  r.retransmits = 3;
  r.rerouted_frames = 2;
  const std::string s = r.str();
  EXPECT_NE(s.find("retransmits"), std::string::npos);
  EXPECT_NE(s.find("rerouted"), std::string::npos);
  EXPECT_NE(s.find("VI failures"), std::string::npos);
}

}  // namespace
