// Tests for gray-failure tolerance: degraded / asymmetric / flaky link
// faults with named arm-time validation, the phi-accrual failure detector
// (suspicion rises and recovers without a death verdict), per-link quality
// scoring with hysteresis masks, quality-aware route avoidance among minimal
// paths, duplicate-frame hardening under go-back-N, and the 4x8x8
// plane-degrade acceptance campaign — byte-identical under run-twice and
// digest-identical at 1/2/4 engine threads.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chk/determinism.hpp"
#include "chk/digest.hpp"
#include "cluster/gige_mesh.hpp"
#include "cluster/lifecycle.hpp"
#include "cluster/report.hpp"
#include "flt/fault.hpp"
#include "mp/endpoint.hpp"
#include "net/quality.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "topo/route_cache.hpp"
#include "topo/torus.hpp"
#include "via/agent.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using chk::Fingerprint;
using cluster::ClusterLifecycle;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using cluster::Liveness;
using sim::Task;

constexpr topo::Dir kPlusX{0, +1};
constexpr topo::Dir kMinusX{0, -1};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL;
  return h * 1099511628211ULL;
}

std::string rejection(const std::function<void()>& arm) {
  try {
    arm();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "schedule was accepted";
  return {};
}

// --- arm-time validation ----------------------------------------------------

TEST(FltGrayValidation, RejectsDegradeBandwidthFractionOutOfRange) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.link_degrade(1_ms, 1_ms, 0, kPlusX, 100_us, 1.5);
  const std::string msg = rejection([&] { flt::Injector inj(c, s); });
  EXPECT_NE(msg.find("bandwidth fraction must be in (0, 1]"),
            std::string::npos)
      << msg;
}

TEST(FltGrayValidation, RejectsDegradeWindowWithNoEffect) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.link_degrade(1_ms, 1_ms, 0, kPlusX, 0, 1.0);
  const std::string msg = rejection([&] { flt::Injector inj(c, s); });
  EXPECT_NE(msg.find("degrade window with no effect"), std::string::npos)
      << msg;
}

TEST(FltGrayValidation, RejectsFlakyProbabilityOutOfRange) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.nic_flaky(1_ms, 1_ms, 0, kPlusX, 0.5, 1.5, 0);
  const std::string msg = rejection([&] { flt::Injector inj(c, s); });
  EXPECT_NE(msg.find("flaky probabilities must be in [0, 1]"),
            std::string::npos)
      << msg;
}

TEST(FltGrayValidation, RejectsUnclosedAsymWindowNesting) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  // Two asym windows on the same port where the second opens before the
  // first closes: windows on a port must never nest.
  s.link_asymmetric(1_ms, 2_ms, 0, kPlusX);
  s.link_asymmetric(2_ms, 2_ms, 0, kPlusX);
  const std::string msg = rejection([&] { flt::Injector inj(c, s); });
  EXPECT_FALSE(msg.empty());
}

// --- LinkQuality scoring unit behaviour -------------------------------------

TEST(FltGrayQuality, LossEwmaCrossesBlackAndRecovers) {
  net::QualityParams p;
  net::LinkQuality lq(p, 6);
  // Six straight overdue probes push the loss EWMA past the black
  // threshold; the EWMA itself is the debounce.
  for (int i = 0; i < 5; ++i) {
    lq.on_probe_timeout(0);
    lq.update_masks();
    EXPECT_EQ(lq.black_mask(), 0u) << "blacked too early at sample " << i;
  }
  lq.on_probe_timeout(0);
  lq.update_masks();
  EXPECT_EQ(lq.black_mask(), 1u);
  EXPECT_GT(lq.loss_ewma(0), p.black_loss);
  // Acks decay the loss EWMA; hysteresis holds the mask until the loss
  // falls below black_clear (0.82 -> 0.62 -> 0.46).
  lq.on_probe_ack(0, 50_us);
  lq.update_masks();
  EXPECT_EQ(lq.black_mask(), 1u);
  lq.on_probe_ack(0, 50_us);
  lq.update_masks();
  EXPECT_EQ(lq.black_mask(), 0u);
  EXPECT_LT(lq.loss_ewma(0), p.black_clear);
}

TEST(FltGrayQuality, DegradeMaskNeedsConsecutiveStreak) {
  net::QualityParams p;
  net::LinkQuality lq(p, 6);
  // Stretch the RTT EWMA until the score sinks below the degrade threshold.
  for (int i = 0; i < 8; ++i) lq.on_probe_ack(0, 2'000'000);
  ASSERT_LT(lq.score(0), p.degrade_below);
  // Two sub-threshold evaluations are not enough (streak = 3)...
  lq.update_masks();
  lq.update_masks();
  EXPECT_EQ(lq.degraded_mask(), 0u);
  // ...one healthy evaluation resets the streak...
  for (int i = 0; i < 12; ++i) lq.on_probe_ack(0, 50_us);
  ASSERT_GT(lq.score(0), p.degrade_below);
  lq.update_masks();
  for (int i = 0; i < 8; ++i) lq.on_probe_ack(0, 2'000'000);
  lq.update_masks();
  lq.update_masks();
  EXPECT_EQ(lq.degraded_mask(), 0u);
  // ...and the third consecutive one flips the mask.
  lq.update_masks();
  EXPECT_EQ(lq.degraded_mask(), 1u);
  // Hysteresis: recovery must exceed clear_above, not just degrade_below.
  for (int i = 0; i < 12; ++i) lq.on_probe_ack(0, 50_us);
  ASSERT_GT(lq.score(0), p.clear_above);
  lq.update_masks();
  EXPECT_EQ(lq.degraded_mask(), 0u);
}

// --- quality-aware routing among minimal paths ------------------------------

TEST(FltGrayRoute, AvoidsDegradedEgressWithoutLengtheningRoutes) {
  const topo::Torus t(topo::Coord{4, 4});
  const std::vector<bool> dead(static_cast<std::size_t>(t.size()), false);
  std::vector<topo::DirMask> degraded(static_cast<std::size_t>(t.size()), 0);
  const topo::Rank src = t.rank(topo::Coord{0, 0});
  degraded[static_cast<std::size_t>(src)] = topo::dir_bit(kPlusX);

  const auto plain = t.route_table_avoiding(src, dead);
  const auto aware = t.route_table_avoiding(src, dead, degraded);
  // Diagonal destination has two minimal first hops; the quality-aware
  // table must pick the one that is not degraded.
  const topo::Rank diag = t.rank(topo::Coord{1, 1});
  EXPECT_NE(aware[static_cast<std::size_t>(diag)],
            static_cast<std::int8_t>(kPlusX.index()));
  // Straight-across destination has only the degraded minimal hop: the
  // route must stay minimal (avoidance never lengthens a path).
  const topo::Rank straight = t.rank(topo::Coord{1, 0});
  EXPECT_EQ(aware[static_cast<std::size_t>(straight)],
            static_cast<std::int8_t>(kPlusX.index()));
  // With no degraded links the overload reproduces the plain table exactly.
  const std::vector<topo::DirMask> zeros(static_cast<std::size_t>(t.size()),
                                         0);
  EXPECT_EQ(t.route_table_avoiding(src, dead, zeros), plain);
}

TEST(FltGrayRoute, CacheKeysOnDegradedSetDigest) {
  const topo::Torus t(topo::Coord{4, 4});
  const std::vector<bool> dead(static_cast<std::size_t>(t.size()), false);
  std::vector<topo::DirMask> degA(static_cast<std::size_t>(t.size()), 0);
  std::vector<topo::DirMask> degB(static_cast<std::size_t>(t.size()), 0);
  const topo::Rank src = t.rank(topo::Coord{0, 0});
  degA[static_cast<std::size_t>(src)] = topo::dir_bit(kPlusX);
  degB[static_cast<std::size_t>(src)] = topo::dir_bit(topo::Dir{1, +1});

  topo::RouteTableCache cache;
  const auto a1 = cache.get(t, src, dead, degA);
  const auto b = cache.get(t, src, dead, degB);
  const auto a2 = cache.get(t, src, dead, degA);
  // A score change (different degraded set) must never be served the
  // other set's table; the same set must round-trip identically.
  EXPECT_NE(a1, b);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(a1, t.route_table_avoiding(src, dead, degA));
}

// --- phi boundary + asymmetric sever ---------------------------------------

// One-directional cable break: the far end suspects (phi crosses the
// suspicion threshold at exactly the first monitor tick past it) but the
// victim's port blacklists itself from probe timeouts in time for its
// detoured acks to refute the suspicion — no death verdict, ever.
TEST(FltGrayPhi, AsymSeverSuspectsButNeverKills) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  ClusterLifecycle life(c);
  life.start();
  const topo::Torus& t = c.torus();
  const topo::Rank a = t.rank(topo::Coord{1, 1});
  const topo::Rank b = *t.neighbor(a, kPlusX);

  // Track every state b ever holds for a: death must never appear.
  bool b_suspected_a = false;
  bool anyone_killed = false;
  for (topo::Rank r = 0; r < c.size(); ++r) {
    life.subscribe(r, [&, r](topo::Rank subject, Liveness to) {
      if (to == Liveness::kDead) anyone_killed = true;
      if (r == b && subject == a && to == Liveness::kSuspect) {
        b_suspected_a = true;
      }
    });
  }

  flt::Schedule s;
  s.link_asymmetric(1_ms, 3_ms, a, kPlusX);
  flt::Injector inj(c, s);

  // Before the suspicion threshold (~691 us of silence at phi 1.5) the phi
  // level is already rising but b still believes a is alive.
  c.engine().run_until(1_ms + 500_us);
  const double phi_early = life.phi(b, kMinusX);
  EXPECT_GT(phi_early, 0.5);
  EXPECT_LT(phi_early, life.params().phi_suspect);
  EXPECT_EQ(life.view(b).at(a).state, Liveness::kAlive);
  EXPECT_FALSE(b_suspected_a);

  // First monitor tick past the threshold: suspicion, not death.
  c.engine().run_until(1_ms + 900_us);
  EXPECT_TRUE(b_suspected_a);

  // a's own port self-diagnoses: pinned probes out the severed pairs stay
  // unacked, the loss EWMA crosses the black threshold, and the mask flips.
  c.engine().run_until(3_ms + 500_us);
  EXPECT_NE(life.link_quality(a).black_mask() & topo::dir_bit(kPlusX), 0u);
  EXPECT_GT(life.phi_counters().get("suspects"), 0);
  EXPECT_GT(life.phi_counters().get("refutations"), 0);

  // Sever heals at 4 ms; probes flow again, scores recover, views converge.
  c.engine().run_until(8_ms);
  EXPECT_FALSE(anyone_killed) << "asymmetric sever produced a death verdict";
  EXPECT_EQ(life.phi_counters().get("dead_declared"), 0);
  EXPECT_TRUE(life.all_alive());
  EXPECT_EQ(life.link_quality(a).black_mask(), 0u);
  EXPECT_LT(life.phi(b, kMinusX), life.params().phi_suspect);

  life.stop();
  c.run();
  // Satellite: one-directional carrier loss surfaces distinctly — the
  // severed transmit pairs ate frames while both carriers stayed up.
  cluster::ClusterReport rep = cluster::make_report(c);
  EXPECT_GT(rep.asym_carrier_drops, 0);
  EXPECT_EQ(rep.carrier_drops, 0);
  EXPECT_EQ(rep.node_crashes, 0);
}

// --- flaky NIC: duplicate/reorder hardening under go-back-N -----------------

TEST(FltGrayDedup, FlakyDupReorderDeliveredExactlyOnce) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  // The stock 50 ms go-back-N timeout never fires inside a 12 ms run, so a
  // dropped frame would wedge the stream for the whole window. A 1 ms retx
  // keeps recovery inside the flaky window and exercises the dedup path
  // with genuine retransmit overlap, not just PHY-duplicated frames.
  cfg.via.retx_timeout = 1_ms;
  GigeMeshCluster c(cfg);
  ClusterLifecycle life(c);
  life.start();

  flt::Schedule s;
  s.nic_flaky(100_us, 6_ms, 0, kPlusX, /*drop=*/0.1, /*dup=*/0.3,
              /*reorder=*/0.3);
  flt::Injector inj(c, s);

  mp::Endpoint tx(c.agent(0), mp::CoreParams{});
  mp::Endpoint rx(c.agent(1), mp::CoreParams{});

  constexpr int kMsgs = 24;
  int delivered = 0;
  bool payload_ok = true;
  auto receiver = [&]() -> Task<> {
    for (int i = 0; i < kMsgs; ++i) {
      mp::Message m = co_await rx.recv(0, 7);
      if (!m.ok) continue;
      ++delivered;
      // Payload byte i of message i — dup/reorder must not corrupt or
      // re-deliver: exactly-once, in-order per the VI sequence space.
      if (m.data.size() != 96 ||
          m.data[0] != static_cast<std::byte>(i & 0xff)) {
        payload_ok = false;
      }
    }
  };
  auto sender = [&]() -> Task<> {
    for (int i = 0; i < kMsgs; ++i) {
      // Paced so the stream spans the flaky window instead of completing
      // before it opens.
      co_await sim::delay(c.engine(), 200_us);
      std::vector<std::byte> payload(96, static_cast<std::byte>(i & 0xff));
      (void)co_await tx.send(1, 7, std::move(payload));
    }
  };
  receiver().detach();
  sender().detach();
  c.engine().run_until(12_ms);

  EXPECT_EQ(delivered, kMsgs);
  EXPECT_TRUE(payload_ok);
  EXPECT_EQ(life.phi_counters().get("dead_declared"), 0);

  life.stop();
  c.run();
  cluster::ClusterReport rep = cluster::make_report(c);
  // The wire really did duplicate/reorder: the receive path discarded the
  // echoes instead of delivering them twice.
  EXPECT_GT(rep.dup_frame_discards + rep.duplicate_discards, 0);
  EXPECT_GT(life.phi_counters().get("dup_probes_ignored") +
                rep.dup_frame_discards,
            0);
}

// --- 4x8x8 plane-degrade acceptance campaign --------------------------------

struct GrayCounters {
  std::int64_t dead_declared = 0;
  std::int64_t suspects = 0;
  std::int64_t mask_updates = 0;
  std::int64_t linkstate_applied = 0;
  std::int64_t quality_route_refreshes = 0;
  std::int64_t degraded_avoided = 0;
  std::int64_t degrade_windows = 0;
};

// Degrades every +x cable out of the x=1 plane (64 links) for 6 ms: +500 us
// of propagation at half line rate. The phi detector must suspect at most —
// never kill — while quality scores sink, the degraded masks flood, route
// tables steer crossing traffic onto clean minimal hops, and everything
// recovers once the windows close.
Fingerprint gray_campaign(unsigned threads, GrayCounters& ctr_out) {
  GigeMeshConfig cfg;  // default 4x8x8 torus, 256 nodes
  cfg.threads = threads;
  cfg.via.retx_timeout = 2_ms;  // data path must outlast the added latency
  GigeMeshCluster c(cfg);
  c.engine().enable_digest(true);
  ClusterLifecycle life(c);
  life.start();
  const topo::Torus& t = c.torus();

  flt::Schedule s;
  for (topo::Rank r = 0; r < c.size(); ++r) {
    if (t.coord(r)[0] == 1) {
      s.link_degrade(2_ms, 6_ms, r, kPlusX, 500_us, 0.5);
    }
  }
  flt::Injector inj(c, s);

  // Cross-plane pairs with a diagonal offset: every minimal route crosses
  // the degraded plane exactly once, but the first hops at the plane have
  // clean minimal alternatives (+y/+z) the quality-aware tables must use.
  struct Pair {
    std::unique_ptr<mp::Endpoint> tx, rx;
    topo::Rank dst = 0;
    int delivered = 0;
    bool ok = true;
  };
  std::vector<Pair> pairs;
  constexpr int kMsgs = 12;
  for (int y : {0, 2, 4, 6}) {
    Pair p;
    const topo::Rank src = t.rank(topo::Coord{1, y, 0});
    p.dst = t.rank(topo::Coord{2, (y + 2) % 8, 2});
    p.tx = std::make_unique<mp::Endpoint>(c.agent(src), mp::CoreParams{});
    p.rx = std::make_unique<mp::Endpoint>(c.agent(p.dst), mp::CoreParams{});
    pairs.push_back(std::move(p));
  }
  auto pump = [&](Pair& p, int tag) -> Task<> {
    for (int i = 0; i < kMsgs; ++i) {
      std::vector<std::byte> payload(128, static_cast<std::byte>(i));
      const mp::SendStatus st = co_await p.tx->send(
          static_cast<int>(p.dst), tag, std::move(payload));
      if (st != mp::SendStatus::kOk) p.ok = false;
    }
  };
  auto drain = [&](Pair& p, topo::Rank src, int tag) -> Task<> {
    for (int i = 0; i < kMsgs; ++i) {
      mp::Message m = co_await p.rx->recv(static_cast<int>(src), tag);
      if (m.ok) ++p.delivered;
    }
  };
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const topo::Rank src = t.rank(topo::Coord{1, static_cast<int>(i) * 2, 0});
    drain(pairs[i], src, 9 + static_cast<int>(i)).detach();
  }

  // Warm-up: scores settle at 1.0 before the windows open.
  c.engine().run_until(2_ms);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    pump(pairs[i], 9 + static_cast<int>(i)).detach();
  }

  // Mid-window: masks have flipped on the plane, tables went quality-aware.
  c.engine().run_until(6_ms);
  const topo::Rank probe_rank = t.rank(topo::Coord{1, 0, 0});
  EXPECT_NE(life.link_quality(probe_rank).degraded_mask() &
                topo::dir_bit(kPlusX),
            0u)
      << "degraded +x port never flagged";
  EXPECT_LT(life.link_quality(probe_rank).score(kPlusX.index()), 0.5);
  // The flood carried the plane's masks to remote observers.
  const topo::Rank far_rank = t.rank(topo::Coord{3, 4, 4});
  EXPECT_NE(life.degraded_belief(far_rank, probe_rank), 0u);

  // Windows close at 8 ms; scores and masks must fully recover.
  c.engine().run_until(14_ms);
  EXPECT_EQ(life.link_quality(probe_rank).degraded_mask(), 0u)
      << "degraded mask failed to clear after heal";
  EXPECT_GT(life.link_quality(probe_rank).score(kPlusX.index()), 0.6);
  EXPECT_TRUE(life.all_alive()) << "gray degradation killed somebody";
  for (Pair& p : pairs) {
    EXPECT_TRUE(p.ok) << "cross-plane send failed";
    EXPECT_EQ(p.delivered, kMsgs) << "cross-plane traffic lost";
  }

  ctr_out.dead_declared = life.phi_counters().get("dead_declared");
  ctr_out.suspects = life.phi_counters().get("suspects");
  ctr_out.mask_updates = life.score_counters().get("mask_updates");
  ctr_out.linkstate_applied = life.score_counters().get("linkstate_applied");
  ctr_out.quality_route_refreshes =
      life.score_counters().get("quality_route_refreshes");
  ctr_out.degrade_windows = inj.counters().get("degrades");
  std::int64_t avoided = 0;
  for (topo::Rank r = 0; r < c.size(); ++r) {
    avoided += c.agent(r).counters().get("degraded_avoided");
  }
  ctr_out.degraded_avoided = avoided;

  life.stop();
  c.run();

  std::uint64_t h = 0;
  h = mix(h, static_cast<std::uint64_t>(ctr_out.dead_declared));
  h = mix(h, static_cast<std::uint64_t>(ctr_out.suspects));
  h = mix(h, static_cast<std::uint64_t>(ctr_out.mask_updates));
  h = mix(h, static_cast<std::uint64_t>(ctr_out.linkstate_applied));
  h = mix(h, static_cast<std::uint64_t>(ctr_out.degraded_avoided));
  for (Pair& p : pairs) h = mix(h, static_cast<std::uint64_t>(p.delivered));
  return {c.engine().executed(), c.engine().digest(), c.engine().now(), h};
}

TEST(FltGrayCampaign, DegradedPlaneNoFalseDeathsRunTwiceByteIdentical) {
  GrayCounters ctr;
  auto r = chk::run_twice_and_compare(
      [&ctr] { return gray_campaign(1, ctr); });
  EXPECT_TRUE(r.identical) << r.divergence;
  EXPECT_NE(r.first.result_hash, 0u);

  // Zero false death verdicts — degradation may only raise suspicion.
  EXPECT_EQ(ctr.dead_declared, 0);
  // The scoring layer saw the plane: every degraded cable flagged (64 set
  // + 64 clear at minimum), the masks flooded, and the quality-aware
  // tables steered crossing frames off the sick ports.
  EXPECT_EQ(ctr.degrade_windows, 64);
  EXPECT_GE(ctr.mask_updates, 128);
  EXPECT_GT(ctr.linkstate_applied, 0);
  EXPECT_GT(ctr.quality_route_refreshes, 0);
  EXPECT_GT(ctr.degraded_avoided, 0);
}

TEST(FltGrayCampaign, DigestsMatchAcrossThreadCounts) {
  GrayCounters c1, c2, c4;
  const Fingerprint f1 = gray_campaign(1, c1);
  const Fingerprint f2 = gray_campaign(2, c2);
  const Fingerprint f4 = gray_campaign(4, c4);
  EXPECT_EQ(f2, f1) << "threads=2: " << chk::describe(f2) << " vs "
                    << chk::describe(f1);
  EXPECT_EQ(f4, f1) << "threads=4: " << chk::describe(f4) << " vs "
                    << chk::describe(f1);
  EXPECT_EQ(c1.dead_declared, 0);
  EXPECT_EQ(c2.dead_declared, 0);
  EXPECT_EQ(c4.dead_declared, 0);
}

}  // namespace
