// Determinism regression tests (the engine's "two runs of the same program
// produce identical event orders" contract, machine-checked): ping-pong over
// a raw VI, scatter with both SDF and OPT routing, and an LQCD-style dslash
// halo exchange all replay byte-identically under chk::run_twice_and_compare.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chk/determinism.hpp"
#include "chk/digest.hpp"
#include "cluster/gige_mesh.hpp"
#include "coll/scatter.hpp"
#include "coll/tree.hpp"
#include "mp/endpoint.hpp"
#include "qmp/qmp.hpp"
#include "sim/engine.hpp"
#include "via/agent.hpp"
#include "via/vi.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using chk::Fingerprint;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using sim::Task;
using via::KernelAgent;
using via::Vi;

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  }
  return v;
}

std::uint64_t hash_bytes(std::uint64_t h, const std::vector<std::byte>& v) {
  return chk::fnv1a_bytes(h, v.data(), v.size());
}

// --- harness unit tests ----------------------------------------------------

TEST(RunTwice, IdenticalFingerprintsPass) {
  auto scenario = [] {
    sim::Engine eng;
    eng.enable_digest(true);
    for (int i = 0; i < 4; ++i) eng.schedule(i * 1_us, [] {}, "tick");
    eng.run();
    return Fingerprint{eng.executed(), eng.digest(), eng.now(), 0};
  };
  auto r = chk::run_twice_and_compare(scenario);
  EXPECT_TRUE(r.identical);
  EXPECT_TRUE(r.divergence.empty());
  EXPECT_EQ(r.first, r.second);
}

TEST(RunTwice, ImpureScenarioIsFlaggedWithDivergence) {
  int call = 0;
  auto scenario = [&call] {
    sim::Engine eng;
    eng.enable_digest(true);
    // Deliberately impure: the second run schedules one extra event.
    for (int i = 0; i <= call; ++i) eng.schedule(1_us, [] {}, "tick");
    ++call;
    eng.run();
    return Fingerprint{eng.executed(), eng.digest(), eng.now(), 0};
  };
  auto r = chk::run_twice_and_compare(scenario);
  EXPECT_FALSE(r.identical);
  EXPECT_NE(r.divergence.find("executed"), std::string::npos);
  EXPECT_NE(r.divergence.find("digest"), std::string::npos);
}

// --- ping-pong over a raw VI -----------------------------------------------

struct Conn {
  Vi* a = nullptr;
  Vi* b = nullptr;
};

Task<> do_connect(KernelAgent& from, net::NodeId to, std::uint32_t service,
                  Conn& out) {
  out.a = co_await from.connect(to, service);
}

Task<> do_accept(KernelAgent& at, std::uint32_t service, Conn& out) {
  out.b = co_await at.accept(service);
}

Task<> pong_side(Vi& vi) {
  auto c = co_await vi.recv_completion();
  co_await vi.send(std::move(c.data), c.immediate + 1);
}

Task<> ping_side(Vi& vi, std::vector<std::byte> payload, std::uint64_t& hash) {
  co_await vi.send(std::move(payload), 7);
  auto c = co_await vi.recv_completion();
  hash = hash_bytes(chk::fnv1a_u64(chk::kFnvOffset, c.immediate), c.data);
}

Fingerprint pingpong_scenario() {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  GigeMeshCluster c(cfg);
  c.engine().enable_digest(true);
  Conn conn;
  c.agent(1).listen(7);
  do_accept(c.agent(1), 7, conn).detach();
  do_connect(c.agent(0), 1, 7, conn).detach();
  c.engine().run();
  conn.a->post_recv(64 * 1024);
  conn.b->post_recv(64 * 1024);
  std::uint64_t hash = 0;
  pong_side(*conn.b).detach();
  ping_side(*conn.a, pattern(20'000), hash).detach();
  c.engine().run();
  return {c.engine().executed(), c.engine().digest(), c.engine().now(), hash};
}

TEST(Determinism, PingPongReplaysByteIdentical) {
  auto r = chk::run_twice_and_compare(pingpong_scenario);
  EXPECT_TRUE(r.identical) << r.divergence;
  EXPECT_GT(r.first.executed, 0u);
  EXPECT_NE(r.first.digest, 0u);
  EXPECT_NE(r.first.result_hash, 0u);
}

// --- scatter (SDF and OPT) -------------------------------------------------

struct ScatterWorld {
  GigeMeshCluster cluster;
  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  std::vector<std::vector<std::byte>> received;

  explicit ScatterWorld(topo::Coord shape)
      : cluster([&] {
          GigeMeshConfig cfg;
          cfg.shape = shape;
          return cfg;
        }()) {
    cluster.engine().enable_digest(true);
    received.resize(static_cast<std::size_t>(cluster.size()));
    for (topo::Rank r = 0; r < cluster.size(); ++r) {
      eps.push_back(
          std::make_unique<mp::Endpoint>(cluster.agent(r), mp::CoreParams{}));
    }
  }
};

Task<> scatter_node(ScatterWorld& w, mp::Endpoint& ep, coll::ScatterAlg alg,
                    int nranks) {
  co_await coll::barrier(ep, (1 << 23) | 100);
  std::vector<std::byte> mine;
  if (ep.rank() == 0) {
    std::vector<std::vector<std::byte>> chunks;
    for (int d = 0; d < nranks; ++d) {
      chunks.push_back(pattern(512, static_cast<std::uint8_t>(d + 1)));
    }
    mine = co_await coll::scatter(ep, 0, &chunks, (1 << 23) | 400, alg);
  } else {
    mine = co_await coll::scatter(ep, 0, nullptr, (1 << 23) | 400, alg);
  }
  w.received[static_cast<std::size_t>(ep.rank())] = std::move(mine);
}

Fingerprint scatter_scenario(coll::ScatterAlg alg) {
  ScatterWorld w(topo::Coord{2, 2});
  const int n = static_cast<int>(w.cluster.size());
  for (auto& ep : w.eps) scatter_node(w, *ep, alg, n).detach();
  w.cluster.run();
  std::uint64_t hash = chk::kFnvOffset;
  for (const auto& chunk : w.received) hash = hash_bytes(hash, chunk);
  return {w.cluster.engine().executed(), w.cluster.engine().digest(),
          w.cluster.engine().now(), hash};
}

TEST(Determinism, ScatterSdfReplaysByteIdentical) {
  auto r = chk::run_twice_and_compare(
      [] { return scatter_scenario(coll::ScatterAlg::kSdf); });
  EXPECT_TRUE(r.identical) << r.divergence;
  EXPECT_NE(r.first.digest, 0u);
}

TEST(Determinism, ScatterOptReplaysByteIdentical) {
  auto r = chk::run_twice_and_compare(
      [] { return scatter_scenario(coll::ScatterAlg::kOpt); });
  EXPECT_TRUE(r.identical) << r.divergence;
  EXPECT_NE(r.first.digest, 0u);
}

TEST(Determinism, ScatterAlgorithmsProduceDistinctSchedules) {
  // Same data, different routing: identical results, different event streams.
  const Fingerprint sdf = scatter_scenario(coll::ScatterAlg::kSdf);
  const Fingerprint opt = scatter_scenario(coll::ScatterAlg::kOpt);
  EXPECT_EQ(sdf.result_hash, opt.result_hash);
  EXPECT_NE(sdf.digest, opt.digest);
}

// --- LQCD dslash halo exchange ---------------------------------------------

struct DslashWorld {
  GigeMeshCluster cluster;
  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  std::vector<std::unique_ptr<qmp::Machine>> machines;
  std::uint64_t hash = chk::kFnvOffset;
  double sum = 0;

  explicit DslashWorld(topo::Coord shape)
      : cluster([&] {
          GigeMeshConfig cfg;
          cfg.shape = shape;
          return cfg;
        }()) {
    cluster.engine().enable_digest(true);
    for (topo::Rank r = 0; r < cluster.size(); ++r) {
      eps.push_back(
          std::make_unique<mp::Endpoint>(cluster.agent(r), mp::CoreParams{}));
      machines.push_back(std::make_unique<qmp::Machine>(*eps.back()));
    }
  }
};

/// One dslash-style step: exchange surface spinors with both neighbours along
/// dimension 0 (start all transfers, then wait), then a global sum standing in
/// for the iteration's norm.
Task<> dslash_node(DslashWorld& w, qmp::Machine& m, std::size_t halo_bytes) {
  const int rank = m.node_number();
  qmp::MsgMem fwd_out(halo_bytes);
  qmp::MsgMem bwd_out(halo_bytes);
  qmp::MsgMem fwd_in(halo_bytes);
  qmp::MsgMem bwd_in(halo_bytes);
  fwd_out.buf = pattern(halo_bytes, static_cast<std::uint8_t>(2 * rank + 1));
  bwd_out.buf = pattern(halo_bytes, static_cast<std::uint8_t>(2 * rank + 2));

  auto rf = m.declare_receive_relative(fwd_in, 0, +1);
  auto rb = m.declare_receive_relative(bwd_in, 0, -1);
  auto sf = m.declare_send_relative(fwd_out, 0, +1);
  auto sb = m.declare_send_relative(bwd_out, 0, -1);
  m.start(rf);
  m.start(rb);
  m.start(sf);
  m.start(sb);
  co_await m.wait(rf);
  co_await m.wait(rb);
  co_await m.wait(sf);
  co_await m.wait(sb);

  const double norm = co_await m.sum_double(static_cast<double>(rank) + 0.5);
  if (rank == 0) w.sum = norm;
  w.hash = hash_bytes(w.hash, fwd_in.buf);
  w.hash = hash_bytes(w.hash, bwd_in.buf);
}

Fingerprint dslash_scenario() {
  DslashWorld w(topo::Coord{4});
  for (auto& m : w.machines) dslash_node(w, *m, 3 * 1024).detach();
  w.cluster.run();
  const std::uint64_t hash =
      chk::fnv1a_u64(w.hash, static_cast<std::uint64_t>(w.sum * 1000));
  return {w.cluster.engine().executed(), w.cluster.engine().digest(),
          w.cluster.engine().now(), hash};
}

TEST(Determinism, DslashHaloExchangeReplaysByteIdentical) {
  auto r = chk::run_twice_and_compare(dslash_scenario);
  EXPECT_TRUE(r.identical) << r.divergence;
  EXPECT_GT(r.first.executed, 0u);
  EXPECT_NE(r.first.digest, 0u);
}

TEST(Determinism, ExecutedCountAndDigestStableAcrossRuns) {
  // The satellite regression: same scenario twice, identical executed()
  // counts and identical digests, field by field.
  const Fingerprint a = pingpong_scenario();
  const Fingerprint b = pingpong_scenario();
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.result_hash, b.result_hash);
}

}  // namespace
