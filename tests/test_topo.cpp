// Unit and property tests for mesh/torus geometry, SDF routing and the OPT
// region partition.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "topo/coords.hpp"
#include "topo/partition.hpp"
#include "topo/switched.hpp"
#include "topo/torus.hpp"

namespace {

using namespace meshmp::topo;

TEST(Coord, BasicsAndEquality) {
  Coord c{1, 2, 3};
  EXPECT_EQ(c.ndims(), 3);
  EXPECT_EQ(c[0], 1);
  EXPECT_EQ(c[2], 3);
  c[1] = 7;
  EXPECT_EQ(c[1], 7);
  EXPECT_EQ(c.str(), "(1,7,3)");
  EXPECT_EQ((Coord{1, 2}), (Coord{1, 2}));
  EXPECT_NE((Coord{1, 2}), (Coord{2, 1}));
  EXPECT_NE((Coord{1, 2}), (Coord{1, 2, 0}));
}

TEST(Dir, IndexRoundTrip) {
  for (int i = 0; i < 8; ++i) {
    const Dir d = Dir::from_index(i);
    EXPECT_EQ(d.index(), i);
    EXPECT_EQ(d.opposite().opposite(), d);
    EXPECT_NE(d.opposite().index(), i);
  }
  EXPECT_EQ((Dir{0, +1}).str(), "+x");
  EXPECT_EQ((Dir{2, -1}).str(), "-z");
}

TEST(Torus, RankCoordRoundTrip) {
  const Torus t(Coord{4, 8, 8});
  EXPECT_EQ(t.size(), 256);
  EXPECT_EQ(t.ndims(), 3);
  EXPECT_EQ(t.ports(), 6);
  for (Rank r = 0; r < t.size(); ++r) {
    EXPECT_EQ(t.rank(t.coord(r)), r);
  }
  EXPECT_EQ(t.rank(Coord{0, 0, 0}), 0);
  EXPECT_EQ(t.rank(Coord{1, 0, 0}), 1);
  EXPECT_EQ(t.rank(Coord{0, 1, 0}), 4);  // dim 0 fastest
}

TEST(Torus, RejectsBadShapes) {
  EXPECT_THROW(Torus(Coord{}), std::invalid_argument);
  EXPECT_THROW(Torus(Coord{4, 0}), std::invalid_argument);
}

TEST(Torus, NeighborsWrapAround) {
  const Torus t(Coord{4, 8});
  auto n = t.neighbor(Coord{3, 0}, Dir{0, +1});
  ASSERT_TRUE(n);
  EXPECT_EQ(*n, (Coord{0, 0}));
  n = t.neighbor(Coord{0, 0}, Dir{1, -1});
  ASSERT_TRUE(n);
  EXPECT_EQ(*n, (Coord{0, 7}));
}

TEST(Torus, MeshEdgesDoNotWrap) {
  const Torus m(Coord{4, 4}, /*wrap=*/false);
  EXPECT_FALSE(m.neighbor(Coord{3, 1}, Dir{0, +1}));
  EXPECT_FALSE(m.neighbor(Coord{0, 1}, Dir{0, -1}));
  EXPECT_TRUE(m.neighbor(Coord{2, 1}, Dir{0, +1}));
  // Corner has only 2 directions, interior has 4.
  EXPECT_EQ(m.directions(Coord{0, 0}).size(), 2u);
  EXPECT_EQ(m.directions(Coord{1, 1}).size(), 4u);
}

TEST(Torus, ExtentOneDimensionHasNoLinks) {
  const Torus t(Coord{1, 4});
  EXPECT_FALSE(t.neighbor(Coord{0, 2}, Dir{0, +1}));
  EXPECT_EQ(t.ports(), 2);
}

TEST(Torus, TorusDelta) {
  const Torus t(Coord{8});
  EXPECT_EQ(t.delta(Coord{0}, Coord{3}, 0), 3);
  EXPECT_EQ(t.delta(Coord{0}, Coord{5}, 0), -3);  // shorter the other way
  EXPECT_EQ(t.delta(Coord{0}, Coord{4}, 0), 4);   // half-way tie -> positive
  EXPECT_EQ(t.delta(Coord{6}, Coord{1}, 0), 3);
  const Torus m(Coord{8}, /*wrap=*/false);
  EXPECT_EQ(m.delta(Coord{0}, Coord{5}, 0), 5);  // no wrap: plain difference
}

TEST(Torus, DistanceExamplesFromPaperGeometry) {
  const Torus t(Coord{4, 8, 8});
  // Farthest node from origin in a 4x8x8 torus: 2+4+4 = 10 hops.
  EXPECT_EQ(t.distance(Coord{0, 0, 0}, Coord{2, 4, 4}), 10);
  EXPECT_EQ(t.distance(Coord{0, 0, 0}, Coord{0, 0, 0}), 0);
  EXPECT_EQ(t.distance(Coord{0, 0, 0}, Coord{3, 7, 7}), 3);
}

TEST(Torus, SdfPicksSmallestRemainingDimension) {
  const Torus t(Coord{8, 8});
  // 1 step in x, 3 in y: SDF goes x first.
  auto d = t.sdf_next(Coord{0, 0}, Coord{1, 3});
  ASSERT_TRUE(d);
  EXPECT_EQ(*d, (Dir{0, +1}));
  // 5 steps in x (so 3 the other way), 1 in y: y first.
  d = t.sdf_next(Coord{0, 0}, Coord{5, 1});
  ASSERT_TRUE(d);
  EXPECT_EQ(*d, (Dir{1, +1}));
  EXPECT_FALSE(t.sdf_next(Coord{3, 3}, Coord{3, 3}));
}

// Property: over a sweep of shapes, every SDF route has minimal length and
// really arrives.
class TorusSweep : public ::testing::TestWithParam<Coord> {};

TEST_P(TorusSweep, RoutesAreMinimalAndArrive) {
  const Torus t(GetParam());
  for (Rank from = 0; from < t.size(); from += 7) {
    for (Rank to = 0; to < t.size(); to += 5) {
      const auto hops = t.route(t.coord(from), t.coord(to));
      EXPECT_EQ(static_cast<int>(hops.size()), t.distance(from, to));
      Coord cur = t.coord(from);
      for (Dir h : hops) {
        auto n = t.neighbor(cur, h);
        ASSERT_TRUE(n);
        cur = *n;
      }
      EXPECT_EQ(cur, t.coord(to));
    }
  }
}

TEST_P(TorusSweep, MinimalFirstHopsAreExactlyTheMinimalOnes) {
  const Torus t(GetParam());
  const Coord origin = t.coord(0);
  for (Rank to = 1; to < t.size(); to += 3) {
    const Coord dest = t.coord(to);
    const int dist = t.distance(origin, dest);
    std::set<int> claimed;
    for (Dir d : t.minimal_first_hops(origin, dest)) {
      claimed.insert(d.index());
    }
    for (Dir d : t.directions(origin)) {
      auto n = t.neighbor(origin, d);
      ASSERT_TRUE(n);
      const bool minimal = 1 + t.distance(t.rank(*n), to) == dist;
      EXPECT_EQ(claimed.count(d.index()) > 0, minimal)
          << "dir " << d.str() << " to " << dest.str();
    }
  }
}

TEST_P(TorusSweep, DeltaIsMinimalSignedDisplacement) {
  const Torus t(GetParam());
  for (Rank from = 0; from < t.size(); from += 11) {
    for (Rank to = 0; to < t.size(); to += 3) {
      const Coord a = t.coord(from);
      const Coord b = t.coord(to);
      for (int d = 0; d < t.ndims(); ++d) {
        const int dd = t.delta(a, b, d);
        const int extent = t.shape()[d];
        EXPECT_LE(std::abs(dd), extent / 2 + (extent % 2));
        // Walking dd steps along d really lands on b's coordinate.
        const int landed = ((a[d] + dd) % extent + extent) % extent;
        EXPECT_EQ(landed, b[d]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TorusSweep,
                         ::testing::Values(Coord{8}, Coord{5}, Coord{8, 8},
                                           Coord{4, 6}, Coord{4, 8, 8},
                                           Coord{3, 3, 3}, Coord{2, 4, 4, 2}),
                         [](const auto& info) {
                           std::string name;
                           for (int d = 0; d < info.param.ndims(); ++d) {
                             if (d) name += "x";
                             name += std::to_string(info.param[d]);
                           }
                           return name;
                         });

TEST(Torus, RouteViaForcesFirstHop) {
  const Torus t(Coord{8, 8});
  const Coord from{0, 0};
  const Coord to{4, 0};  // half-way: both +x and -x minimal
  for (Dir first : t.minimal_first_hops(from, to)) {
    const auto hops = t.route_via(from, to, first);
    EXPECT_EQ(hops.size(), 4u);
    EXPECT_EQ(hops.front(), first);
    Coord cur = from;
    for (Dir h : hops) cur = *t.neighbor(cur, h);
    EXPECT_EQ(cur, to);
  }
}

// --- Region partition -----------------------------------------------------

class PartitionSweep
    : public ::testing::TestWithParam<std::pair<Coord, Rank>> {};

TEST_P(PartitionSweep, CoversAllNodesDisjointly) {
  const auto& [shape, root] = GetParam();
  const Torus t(shape);
  const auto part = make_region_partition(t, root);
  EXPECT_EQ(part.num_regions(), t.ports());
  std::set<Rank> seen;
  for (const auto& region : part.members) {
    for (Rank r : region) {
      EXPECT_TRUE(seen.insert(r).second) << "rank in two regions";
    }
  }
  EXPECT_EQ(static_cast<Rank>(seen.size()), t.size() - 1);
  EXPECT_EQ(part.region_of[static_cast<std::size_t>(root)], -1);
}

TEST_P(PartitionSweep, RegionsReachableMinimallyViaTheirLink) {
  const auto& [shape, root] = GetParam();
  const Torus t(shape);
  const auto part = make_region_partition(t, root);
  const Coord root_c = t.coord(root);
  for (int i = 0; i < part.num_regions(); ++i) {
    const Dir link = part.region_dir[static_cast<std::size_t>(i)];
    for (Rank r : part.members[static_cast<std::size_t>(i)]) {
      auto first = t.neighbor(root_c, link);
      ASSERT_TRUE(first);
      EXPECT_EQ(1 + t.distance(t.rank(*first), r), t.distance(root, r))
          << "node " << t.coord(r).str() << " not minimal via " << link.str();
    }
  }
}

TEST_P(PartitionSweep, RegionsAreBalanced) {
  const auto& [shape, root] = GetParam();
  const Torus t(shape);
  const auto part = make_region_partition(t, root);
  std::size_t lo = static_cast<std::size_t>(t.size());
  std::size_t hi = 0;
  for (const auto& region : part.members) {
    lo = std::min(lo, region.size());
    hi = std::max(hi, region.size());
  }
  // Perfect balance is (p-1)/k; geometry can force some skew (e.g. the 4-deep
  // dimension of 4x8x8 owns fewer minimal routes), but the greedy pass must
  // stay within 2x of ideal.
  const double ideal =
      static_cast<double>(t.size() - 1) / part.members.size();
  EXPECT_GE(static_cast<double>(lo), ideal * 0.4);
  EXPECT_LE(static_cast<double>(hi), ideal * 2.0);
}

TEST_P(PartitionSweep, MembersAreFurthestDistanceFirst) {
  const auto& [shape, root] = GetParam();
  const Torus t(shape);
  const auto part = make_region_partition(t, root);
  for (const auto& region : part.members) {
    for (std::size_t i = 1; i < region.size(); ++i) {
      EXPECT_GE(t.distance(root, region[i - 1]), t.distance(root, region[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PartitionSweep,
    ::testing::Values(std::pair{Coord{8, 8}, Rank{0}},
                      std::pair{Coord{8, 8}, Rank{27}},
                      std::pair{Coord{4, 8, 8}, Rank{0}},
                      std::pair{Coord{4, 8, 8}, Rank{133}},
                      std::pair{Coord{6, 8, 8}, Rank{0}},
                      std::pair{Coord{5, 5}, Rank{12}}),
    [](const auto& info) {
      std::string name;
      for (int d = 0; d < info.param.first.ndims(); ++d) {
        if (d) name += "x";
        name += std::to_string(info.param.first[d]);
      }
      return name + "_root" + std::to_string(info.param.second);
    });

TEST(Switched, Distances) {
  const SwitchedTopology s{128};
  EXPECT_EQ(s.size(), 128);
  EXPECT_EQ(s.distance(3, 3), 0);
  EXPECT_EQ(s.distance(3, 99), 1);
}

}  // namespace
