// Unit and property tests for the event hot path behind sim::Engine: the
// pooled EventArena, the calendar/ladder queue, and the fixed-capacity
// InlineFn callable. The load-bearing property throughout is that the ladder
// queue's pop sequence is the strict (when, seq) order of the engine's former
// binary heap — bucket layout, reseeds and overflow handling may restructure
// freely but must never reorder.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/inline_fn.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace {

using namespace meshmp::sim;

/// Reference model: the exact comparator the engine's former
/// std::priority_queue used, applied to the same arena nodes.
using RefHeap =
    std::priority_queue<EventNode*, std::vector<EventNode*>, FiresLater>;

EventNode* make(EventArena& arena, Time when, std::uint64_t seq) {
  EventNode* n = arena.get();
  n->when = when;
  n->seq = seq;
  n->label = "test";
  return n;
}

// --- EventArena ------------------------------------------------------------

TEST(EventArena, RecyclesNodesInsteadOfGrowing) {
  EventArena arena;
  EventNode* a = arena.get();
  const std::size_t cap = arena.capacity();
  a->fn.reset();
  arena.put(a);
  // The freelist hands the recycled node back before carving new storage.
  EXPECT_EQ(arena.get(), a);
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(EventArena, GrowsInChunksAndNodesStayPut) {
  EventArena arena;
  std::vector<EventNode*> nodes;
  const std::size_t want = 3 * 256 + 1;  // forces a fourth chunk
  for (std::size_t i = 0; i < want; ++i) nodes.push_back(arena.get());
  EXPECT_GE(arena.capacity(), want);
  // All distinct, and addresses remain valid (write through every one).
  for (std::size_t i = 0; i < want; ++i) nodes[i]->seq = i;
  for (std::size_t i = 0; i < want; ++i) EXPECT_EQ(nodes[i]->seq, i);
  for (EventNode* n : nodes) arena.put(n);
}

// --- LadderQueue ordering properties ---------------------------------------

TEST(LadderQueue, EmptyQueueBehaviour) {
  LadderQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.peek(), nullptr);
  EXPECT_EQ(q.pop(), nullptr);
  // Still usable after draining "past" empty.
  EventArena arena;
  q.push(make(arena, 5, 0));
  EXPECT_EQ(q.pop()->when, 5);
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(LadderQueue, MatchesReferenceHeapUnderRandomChurn) {
  // Interleaved pushes and pops against the reference heap, with timestamps
  // drawn from a mix of near (dense) and far (sparse) ranges so buckets,
  // overflow, and reseeds all engage mid-property.
  EventArena arena;
  LadderQueue q;
  RefHeap ref;
  Rng rng(1234);
  std::uint64_t seq = 0;
  Time lo = 0;  // pop floor: pushes below this would be "in the past"
  for (int round = 0; round < 20'000; ++round) {
    const bool push = ref.empty() || rng.below(100) < 55;
    if (push) {
      Time when = lo;
      switch (rng.below(4)) {
        case 0: when += static_cast<Time>(rng.below(64)); break;        // now-ish
        case 1: when += static_cast<Time>(rng.below(10'000)); break;    // near
        case 2: when += static_cast<Time>(rng.below(5'000'000)); break; // mid
        default:
          when += static_cast<Time>(rng.below(3'000'000'000ULL));       // far
      }
      EventNode* n = make(arena, when, seq++);
      q.push(n);
      ref.push(n);
    } else {
      EventNode* got = q.pop();
      EventNode* want = ref.top();
      ref.pop();
      ASSERT_EQ(got, want) << "round " << round << ": ladder popped ("
                           << got->when << "," << got->seq << ") but heap has ("
                           << want->when << "," << want->seq << ")";
      lo = got->when;
      arena.put(got);
    }
    ASSERT_EQ(q.size(), ref.size());
  }
  while (!ref.empty()) {
    EventNode* got = q.pop();
    ASSERT_EQ(got, ref.top());
    ref.pop();
    arena.put(got);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_GT(q.layout().reseeds, 0u) << "property never exercised a reseed";
}

TEST(LadderQueue, AllEqualTimestampsPopInSeqOrder) {
  EventArena arena;
  LadderQueue q;
  for (std::uint64_t s = 0; s < 1000; ++s) q.push(make(arena, 77, s));
  for (std::uint64_t s = 0; s < 1000; ++s) {
    EventNode* n = q.pop();
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->when, 77);
    EXPECT_EQ(n->seq, s);
    arena.put(n);
  }
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(LadderQueue, TimesNearTheTimeMaximumDoNotOverflow) {
  // bucket_end() must saturate rather than wrap: events at and just below
  // the Time maximum still pop in order, including together with t=0.
  constexpr Time kMax = std::numeric_limits<Time>::max();
  EventArena arena;
  LadderQueue q;
  q.push(make(arena, kMax, 0));
  q.push(make(arena, 0, 1));
  q.push(make(arena, kMax - 1, 2));
  q.push(make(arena, kMax, 3));
  const Time want_when[] = {0, kMax - 1, kMax, kMax};
  const std::uint64_t want_seq[] = {1, 2, 0, 3};
  for (int i = 0; i < 4; ++i) {
    EventNode* n = q.pop();
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->when, want_when[i]);
    EXPECT_EQ(n->seq, want_seq[i]);
    arena.put(n);
  }
  EXPECT_TRUE(q.empty());
  const auto l = q.layout();
  EXPECT_EQ(l.horizon, kMax) << "horizon must saturate, not wrap";
}

TEST(LadderQueue, PushBelowBottomEndGoesToBottomHeap) {
  // After a bucket drains into the bottom heap, a push earlier than
  // bottom_end_ must join the heap directly (invariant 1: bottom holds
  // exactly the events with when < bottom_end_).
  EventArena arena;
  LadderQueue q;
  for (Time t = 1000; t <= 5000; t += 1000) {
    q.push(make(arena, t, static_cast<std::uint64_t>(t)));
  }
  ASSERT_EQ(q.peek()->when, 1000);  // forces a reseed + first bucket drain
  const auto before = q.layout();
  ASSERT_GT(before.bottom_end, 0);
  q.push(make(arena, q.peek()->when, 9999));  // same time, later seq
  const auto after = q.layout();
  EXPECT_EQ(after.bottom, before.bottom + 1);
  EXPECT_EQ(q.pop()->seq, 1000u);
  EXPECT_EQ(q.pop()->seq, 9999u);
}

TEST(LadderQueue, DepthHighWaterMarkTracksPeak) {
  EventArena arena;
  LadderQueue q;
  std::vector<EventNode*> popped;
  for (std::uint64_t s = 0; s < 100; ++s) q.push(make(arena, 10 + s, s));
  EXPECT_EQ(q.depth_hwm(), 100u);
  for (int i = 0; i < 50; ++i) popped.push_back(q.pop());
  EXPECT_EQ(q.depth_hwm(), 100u) << "hwm must not decay on pops";
  for (EventNode* n : popped) arena.put(n);
}

// --- Engine parity: run / run_until / step dispatch identically ------------

void schedule_parity_load(Engine& eng, int fanout) {
  // Self-expanding event tree: every event schedules a few more until a
  // budget runs out, exercising push-into-bottom, buckets, and ties.
  struct Spawn {
    Engine* eng;
    int* budget;
    int fanout;
    void operator()() const {
      for (int i = 0; i < fanout && *budget > 0; ++i) {
        --*budget;
        eng->schedule(static_cast<Duration>(1 + 37 * i * i), Spawn{*this},
                      "spawn");
      }
    }
  };
  static int budget;
  budget = 3000;
  eng.schedule(0, Spawn{&eng, &budget, fanout}, "spawn");
}

std::uint64_t digest_with_run() {
  Engine eng;
  eng.enable_digest(true);
  schedule_parity_load(eng, 3);
  eng.run();
  return eng.digest();
}

TEST(EngineParity, StepLoopMatchesRun) {
  Engine eng;
  eng.enable_digest(true);
  schedule_parity_load(eng, 3);
  while (eng.step()) {
  }
  EXPECT_EQ(eng.digest(), digest_with_run());
}

TEST(EngineParity, RunUntilSlicesMatchRun) {
  Engine eng;
  eng.enable_digest(true);
  schedule_parity_load(eng, 3);
  Time t = 0;
  while (eng.run_until(t)) t += 1000;
  EXPECT_EQ(eng.digest(), digest_with_run());
  EXPECT_EQ(eng.now(), t);  // run_until pins now() even past the last event
}

// Named to ride the chaos-soak determinism gate (ctest -R 'RunTwice').
TEST(LadderRunTwice, DigestAndCountsStableAcrossRuns) {
  auto once = [] {
    Engine eng;
    eng.enable_digest(true);
    schedule_parity_load(eng, 4);
    eng.run();
    return std::tuple(eng.digest(), eng.executed(), eng.queue_depth_hwm());
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a, b);
}

// --- InlineFn --------------------------------------------------------------

TEST(InlineFn, InvokesAndReports) {
  int hits = 0;
  InlineFn fn([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_FALSE(static_cast<bool>(InlineFn{}));
}

TEST(InlineFn, MoveTransfersTheCallable) {
  int hits = 0;
  InlineFn a([&hits] { ++hits; });
  InlineFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(hits, 1);
  InlineFn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, DestroysCaptureExactlyOnce) {
  static int live;
  live = 0;
  struct Probe {
    bool armed = true;
    Probe() { ++live; }
    Probe(Probe&& o) noexcept {
      ++live;
      o.armed = false;
    }
    ~Probe() { --live; }
    void operator()() const {}
  };
  {
    InlineFn fn{Probe{}};
    EXPECT_GE(live, 1);
    InlineFn moved{std::move(fn)};
    moved();
  }
  EXPECT_EQ(live, 0) << "capture leaked or double-destroyed";
}

TEST(InlineFn, CapacityBoundaryCaptureFits) {
  // Exactly kInlineFnCapacity bytes must fit (the static_assert contract);
  // the payload round-trips through a queue relocation.
  struct Big {
    std::byte bytes[kInlineFnCapacity];
    void operator()() const {}
  };
  static_assert(sizeof(Big) == kInlineFnCapacity);
  InlineFn fn{Big{}};
  InlineFn moved{std::move(fn)};
  moved();
}

}  // namespace
