// Tests for the chk invariant-audit layer: the registry itself, the engine /
// resource / VIA / NIC / endpoint quiesce validators (each with a seeded
// violation), the hot-path inline checks, and the FNV event digest.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chk/audit.hpp"
#include "chk/determinism.hpp"
#include "chk/digest.hpp"
#include "cluster/gige_mesh.hpp"
#include "mp/endpoint.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "via/agent.hpp"
#include "via/vi.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using chk::Audit;
using chk::ScopedCapture;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using sim::Engine;
using sim::Resource;
using sim::Task;
using via::KernelAgent;
using via::RecvCompletion;
using via::Vi;

/// Toggles the hot-path audit gate for one test.
struct ScopedEnable {
  ScopedEnable() { Audit::set_enabled(true); }
  ~ScopedEnable() { Audit::set_enabled(false); }
};

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  }
  return v;
}

GigeMeshConfig small_ring_config() {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  return cfg;
}

struct Conn {
  Vi* a = nullptr;
  Vi* b = nullptr;
};

Task<> do_connect(KernelAgent& from, net::NodeId to, std::uint32_t service,
                  Conn& out) {
  out.a = co_await from.connect(to, service);
}

Task<> do_accept(KernelAgent& at, std::uint32_t service, Conn& out) {
  out.b = co_await at.accept(service);
}

Conn connect_pair(GigeMeshCluster& c, topo::Rank ra, topo::Rank rb,
                  std::uint32_t service = 7) {
  Conn conn;
  c.agent(rb).listen(service);
  do_accept(c.agent(rb), service, conn).detach();
  do_connect(c.agent(ra), rb, service, conn).detach();
  c.engine().run();
  EXPECT_NE(conn.a, nullptr);
  EXPECT_NE(conn.b, nullptr);
  return conn;
}

Task<> send_msg(Vi& vi, std::vector<std::byte> data) {
  co_await vi.send(std::move(data));
}

Task<> recv_msg(Vi& vi, RecvCompletion& out, bool& done) {
  out = co_await vi.recv_completion();
  done = true;
}

// --- registry --------------------------------------------------------------

TEST(AuditRegistry, ValidatorRunsOnEveryQuiesceUntilReleased) {
  int runs = 0;
  {
    auto reg = Audit::instance().watch("test.counter", [&] { ++runs; });
    ScopedCapture cap;
    Audit::instance().quiesce();
    Audit::instance().quiesce();
    EXPECT_EQ(runs, 2);
  }
  // Registration destroyed: the validator must not run any more.
  ScopedCapture cap;
  Audit::instance().quiesce();
  EXPECT_EQ(runs, 2);
}

TEST(AuditRegistry, MovedFromRegistrationIsInert) {
  int runs = 0;
  auto reg = Audit::instance().watch("test.move", [&] { ++runs; });
  Audit::Registration stolen = std::move(reg);
  {
    ScopedCapture cap;
    Audit::instance().quiesce();
    EXPECT_EQ(runs, 1);  // exactly once: the moved-from handle is empty
  }
  // reg's destruction (moved-from) must not have unregistered `stolen`.
  Audit::Registration gone = std::move(stolen);
  (void)gone;
}

TEST(AuditRegistry, FailIsRecordedUnderCapture) {
  ScopedCapture cap;
  Audit::instance().fail("test.sub", "value 7 out of range");
  ASSERT_EQ(cap.violations().size(), 1u);
  EXPECT_EQ(cap.violations()[0].label, "test.sub");
  EXPECT_EQ(cap.violations()[0].message, "value 7 out of range");
  EXPECT_TRUE(cap.caught("test.sub"));
  EXPECT_TRUE(cap.caught("test."));  // prefix match
  EXPECT_FALSE(cap.caught("other."));
}

TEST(AuditRegistry, QuiesceReturnsViolationCount) {
  auto reg = Audit::instance().watch("test.double", [] {
    Audit::instance().fail("test.double", "first");
    Audit::instance().fail("test.double", "second");
  });
  ScopedCapture cap;
  EXPECT_EQ(Audit::instance().quiesce(), 2u);
}

TEST(AuditRegistry, EnabledGateIsOffByDefault) {
  EXPECT_FALSE(Audit::enabled());
}

// --- engine ----------------------------------------------------------------

TEST(AuditEngine, CleanAfterDrainedRun) {
  Engine eng;
  int fired = 0;
  eng.schedule(10_us, [&] { ++fired; });
  eng.run();
  ScopedCapture cap;
  EXPECT_EQ(Audit::instance().quiesce(), 0u);
  EXPECT_EQ(fired, 1);
}

TEST(AuditEngine, PendingEventsAtQuiesceAreAViolation) {
  Engine eng;
  eng.schedule(10_us, [] {});
  ScopedCapture cap;
  EXPECT_GE(Audit::instance().quiesce(), 1u);
  EXPECT_TRUE(cap.caught("sim.engine"));
}

TEST(AuditEngine, SchedulingInThePastThrows) {
  Engine eng;
  eng.schedule(10_us, [] {});
  eng.run();
  ASSERT_GT(eng.now(), 0);
  EXPECT_THROW(eng.schedule_at(eng.now() - 1, [] {}), std::invalid_argument);
  EXPECT_THROW(eng.schedule(-1, [] {}), std::invalid_argument);
}

// --- resource --------------------------------------------------------------

Task<> leak_hold(Resource& r) { co_await r.acquire(); }

TEST(AuditResource, LeakedHoldIsCaughtAtQuiesce) {
  Engine eng;
  Resource res(eng, 2, "leaktest");
  leak_hold(res).detach();  // acquires and returns without release
  eng.run();
  EXPECT_EQ(res.in_use(), 1);
  ScopedCapture cap;
  EXPECT_GE(Audit::instance().quiesce(), 1u);
  EXPECT_TRUE(cap.caught("sim.resource.leaktest"));
}

TEST(AuditResource, StarvedWaiterIsCaughtAtQuiesce) {
  Engine eng;
  Resource res(eng, 1, "starvetest");
  leak_hold(res).detach();  // takes the only slot, never gives it back
  leak_hold(res).detach();  // waits forever
  eng.run();
  ScopedCapture cap;
  EXPECT_GE(Audit::instance().quiesce(), 2u);  // leaked hold + starved waiter
  EXPECT_TRUE(cap.caught("sim.resource.starvetest"));
}

TEST(AuditResource, OverReleaseIsCaughtInline) {
  ScopedEnable on;
  Engine eng;
  Resource res(eng, 1, "overrelease");
  ScopedCapture cap;
  res.release(1);  // nothing is held
  EXPECT_TRUE(cap.caught("sim.resource.overrelease"));
}

// --- VIA -------------------------------------------------------------------

TEST(AuditVia, CleanAfterCompletedExchange) {
  GigeMeshCluster c(small_ring_config());
  Conn conn = connect_pair(c, 0, 1);
  conn.b->post_recv(16 * 1024);
  RecvCompletion got;
  bool done = false;
  recv_msg(*conn.b, got, done).detach();
  send_msg(*conn.a, pattern(4000)).detach();
  c.engine().run();
  ASSERT_TRUE(done);
  ScopedCapture cap;
  EXPECT_EQ(Audit::instance().quiesce(), 0u)
      << (cap.violations().empty()
              ? std::string("no violations")
              : cap.violations()[0].label + ": " + cap.violations()[0].message);
}

TEST(AuditVia, MidFlightStopIsCaughtAtQuiesce) {
  GigeMeshCluster c(small_ring_config());
  Conn conn = connect_pair(c, 0, 1);
  const std::size_t n = 200'000;  // ~136 fragments, ~1.7 ms on the wire
  conn.b->post_recv(static_cast<std::int64_t>(n));
  RecvCompletion got;
  bool done = false;
  recv_msg(*conn.b, got, done).detach();
  send_msg(*conn.a, pattern(n)).detach();
  c.engine().run_until(c.engine().now() + 120_us);  // stop mid-transfer
  ASSERT_FALSE(done);
  ScopedCapture cap;
  EXPECT_GE(Audit::instance().quiesce(), 1u);
  // The half-reassembled message and/or the unacknowledged window trips the
  // VI validator; the still-pending event queue trips the engine's.
  EXPECT_TRUE(cap.caught("via.vi"));
  EXPECT_TRUE(cap.caught("sim.engine"));
}

// --- NIC -------------------------------------------------------------------

TEST(AuditNic, StrandedTxFramesAreCaughtAtQuiesce) {
  GigeMeshCluster c(small_ring_config());
  Conn conn = connect_pair(c, 0, 1);
  const std::size_t n = 200'000;
  conn.b->post_recv(static_cast<std::int64_t>(n));
  RecvCompletion got;
  bool done = false;
  recv_msg(*conn.b, got, done).detach();
  send_msg(*conn.a, pattern(n)).detach();
  // Stop shortly after the send posts its descriptors: the bulk of the
  // message is still sitting in node 0's transmit ring / adapter FIFO.
  c.engine().run_until(c.engine().now() + 60_us);
  ASSERT_FALSE(done);
  ScopedCapture cap;
  EXPECT_GE(Audit::instance().quiesce(), 1u);
  EXPECT_TRUE(cap.caught("hw.nic"));
}

// --- endpoint --------------------------------------------------------------

Task<> ep_send(mp::Endpoint& ep, int dst, int tag, std::vector<std::byte> d) {
  co_await ep.send(dst, tag, std::move(d));
}

Task<> ep_recv(mp::Endpoint& ep, int src, int tag, mp::Message& out,
               bool& done) {
  out = co_await ep.recv(src, tag);
  done = true;
}

TEST(AuditEndpoint, CleanAfterCompletedExchange) {
  GigeMeshCluster c(small_ring_config());
  mp::Endpoint e0(c.agent(0), mp::CoreParams{});
  mp::Endpoint e1(c.agent(1), mp::CoreParams{});
  mp::Message got;
  bool done = false;
  ep_recv(e1, 0, 5, got, done).detach();
  ep_send(e0, 1, 5, pattern(512)).detach();
  c.engine().run();
  ASSERT_TRUE(done);
  ScopedCapture cap;
  EXPECT_EQ(Audit::instance().quiesce(), 0u)
      << (cap.violations().empty()
              ? std::string("no violations")
              : cap.violations()[0].label + ": " + cap.violations()[0].message);
}

TEST(AuditEndpoint, UnmatchedRendezvousIsCaughtAtQuiesce) {
  GigeMeshCluster c(small_ring_config());
  mp::CoreParams params;
  mp::Endpoint e0(c.agent(0), params);
  mp::Endpoint e1(c.agent(1), params);
  // At/above the eager threshold the sender announces via RTS and then waits
  // for a match that never comes.
  const auto big = static_cast<std::size_t>(params.eager_threshold);
  ep_send(e0, 1, 5, pattern(big)).detach();
  c.engine().run();
  ScopedCapture cap;
  EXPECT_GE(Audit::instance().quiesce(), 1u);
  EXPECT_TRUE(cap.caught("mp.endpoint"));
}

// --- digest ----------------------------------------------------------------

TEST(Digest, Fnv1aFoldsIncrementally) {
  const std::uint64_t h1 = chk::fnv1a_u64(chk::kFnvOffset, 42);
  const std::uint64_t h2 = chk::fnv1a_u64(chk::kFnvOffset, 42);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, chk::fnv1a_u64(chk::kFnvOffset, 43));
  // The cstr fold includes a terminator: ("ab","c") != ("a","bc").
  const std::uint64_t ab_c =
      chk::fnv1a_cstr(chk::fnv1a_cstr(chk::kFnvOffset, "ab"), "c");
  const std::uint64_t a_bc =
      chk::fnv1a_cstr(chk::fnv1a_cstr(chk::kFnvOffset, "a"), "bc");
  EXPECT_NE(ab_c, a_bc);
}

TEST(Digest, EngineDigestIsReproducibleAndLabelSensitive) {
  auto run_engine = [](const char* label) {
    Engine eng;
    eng.enable_digest(true);
    for (int i = 0; i < 5; ++i) {
      eng.schedule(i * 1_us, [] {}, label);
    }
    eng.run();
    return eng.digest();
  };
  EXPECT_EQ(run_engine("tick"), run_engine("tick"));
  EXPECT_NE(run_engine("tick"), run_engine("tock"));
  Engine off;
  off.schedule(1_us, [] {});
  off.run();
  EXPECT_EQ(off.digest(), 0u);  // digest off: no cost, no value
}

}  // namespace
