// meshmp-lint fixture: R3 (shared-state annotation discipline). Not
// compiled. A class marked shared-state must declare a chk::SimLock and
// every container member must be MESHMP_GUARDED_BY a lock or annotated
// unshared.
#include <map>
#include <vector>

// meshmp-lint: shared-state
class NoLock {  // LINT-EXPECT[R3] — declares no SimLock member
 public:
  int size() const { return 0; }

 private:
  std::vector<int> items_;  // LINT-EXPECT[R3] — unguarded container member
};

// meshmp-lint: shared-state
class Guarded {
 public:
  void touch();

 private:
  mutable meshmp::chk::SimLock mu_;
  std::vector<int> items_ MESHMP_GUARDED_BY(mu_);
  std::map<int, int> index_ MESHMP_GUARDED_BY(mu_);
  // meshmp-lint: unshared(iteration scratch, rebuilt from scratch per call)
  std::vector<int> scratch_;
};
