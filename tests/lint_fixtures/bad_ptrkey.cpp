// meshmp-lint fixture: D3 (pointer-keyed associative containers). Not
// compiled. Pointer VALUES are fine — only a pointer in the key (first
// template argument) position makes iteration order address-dependent.
#include <map>
#include <set>

struct Node;

std::map<Node*, int> rank_by_addr;  // LINT-EXPECT[D3]

std::set<const Node*> seen;  // LINT-EXPECT[D3]

// Legal: the key is an int; the pointer is the mapped value.
std::map<int, Node*> node_by_rank;

// Legal for the same reason, project flat container spelled with namespace.
// (FlatMap<int, Node*> must NOT fire.)
struct Holder {
  int dummy_;
};

// meshmp-lint: ptr-key-ok(keys are interned singletons with stable order)
std::map<Node*, int> suppressed_by_addr;
