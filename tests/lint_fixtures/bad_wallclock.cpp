// meshmp-lint fixture: D2 (wall clock / libc randomness). Not compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>

long wall_ns() {
  auto t = std::chrono::steady_clock::now();  // LINT-EXPECT[D2]
  return t.time_since_epoch().count();
}

int noise() { return std::rand(); }  // LINT-EXPECT[D2]

long stamp() { return time(nullptr); }  // LINT-EXPECT[D2]

int seed_source() {
  std::random_device rd;  // LINT-EXPECT[D2]
  return static_cast<int>(rd());
}

// meshmp-lint: host-time(names a log file; never feeds simulated time)
long log_stamp() { return time(nullptr); }
