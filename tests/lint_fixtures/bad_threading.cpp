// R4 fixture: raw threading primitives outside the src/sim/ + src/chk/
// threading layer. The rule keys on the path containing neither a sim/ nor
// a chk/ component, so this file stands in for any src/<subsystem>/ source.
// Lint-only — never compiled.

#include <atomic>  // LINT-EXPECT[R4]
#include <mutex>   // LINT-EXPECT[R4]

#include "chk/thread_annotations.hpp"

namespace fixture {

struct Counters {
  std::atomic<int> hits{0};  // LINT-EXPECT[R4]
};

inline void spawn_worker() {
  std::thread t([] {});  // LINT-EXPECT[R4]
  t.join();
}

inline int guarded_read() {
  static std::mutex mu;  // LINT-EXPECT[R4]
  std::lock_guard<std::mutex> lk(mu);  // LINT-EXPECT[R4]
  return 0;
}

inline void fenced() {
  std::atomic_thread_fence(std::memory_order_acquire);  // LINT-EXPECT[R4]
}

// Legal: the chk wrappers are the sanctioned synchronization surface — a
// SimLock is a no-op until an engine worker team activates it.
struct Guarded {
  chk::SimLock mu;
  int value MESHMP_GUARDED_BY(mu) = 0;
};

// Suppressed: an audited exception keeps its reason next to the use.
// meshmp-lint: raw-threading-ok(process-wide relaxed stats, host-side only)
inline long& host_stat_slot() {
  static std::atomic<long> slot{0};
  return reinterpret_cast<long&>(slot);
}

}  // namespace fixture
