// meshmp-lint fixture: D2 in gray-fault shapes. Not compiled.
//
// A flaky-NIC injector that rolls its per-frame drop/dup/reorder dice from
// libc randomness, or times its degrade window off a host clock, destroys
// run-twice reproducibility: the whole gray-failure campaign contract
// (byte-identical digests across reruns and MESHMP_THREADS settings) rests
// on every coin flip coming from the seeded sim::Rng stream.
#include <chrono>
#include <cstdlib>

struct FlakyDice {
  double drop_prob;
  bool should_drop() {
    return std::rand() < drop_prob * RAND_MAX;  // LINT-EXPECT[D2]
  }
};

long degrade_window_start_ns() {
  auto t = std::chrono::steady_clock::now();  // LINT-EXPECT[D2]
  return t.time_since_epoch().count();
}

unsigned reorder_seed() {
  std::random_device rd;  // LINT-EXPECT[D2]
  return rd();
}

// Legal shape: dice seeded from the fault schedule, advanced per frame.
// (Mirrors sim::Rng::bernoulli — splitmix-style, no libc involvement.)
struct SeededDice {
  unsigned long long state;
  explicit SeededDice(unsigned long long seed) : state(seed) {}
  double uniform01() {
    state += 0x9e3779b97f4a7c15ull;
    unsigned long long z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }
  bool bernoulli(double p) { return uniform01() < p; }
};
