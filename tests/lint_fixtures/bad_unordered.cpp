// meshmp-lint fixture: D1 (unordered containers). Not compiled — consumed by
// tests/test_lint.py, which asserts a finding on every LINT-EXPECT line and
// none anywhere else.
#include <string>
#include <unordered_map>  // LINT-EXPECT[D1]

std::unordered_map<int, int> sequence_table;  // LINT-EXPECT[D1]

std::unordered_set<std::string> names;  // LINT-EXPECT[D1]

// meshmp-lint: unordered-ok(build-time-only lookup cache; never iterated)
std::unordered_map<int, int> suppressed_table;
