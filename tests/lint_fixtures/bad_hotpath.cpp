// meshmp-lint fixture: H1 (std::function in the scheduling hot path). Not
// compiled.
#include <functional>

struct Engine {
  template <typename F>
  void schedule(long delay, F fn, const char* label);
  template <typename F>
  void schedule_at(long when, F fn, const char* label);
  void post(void* h);
};

void bad_same_line(Engine& eng) {
  eng.schedule(10, std::function<void()>([] {}), "tick");  // LINT-EXPECT[H1]
}

void bad_built_before(Engine& eng) {
  std::function<void()> cb = [] {};  // LINT-EXPECT[H1]
  eng.schedule_at(99, cb, "late");
}

void bad_after_post(Engine& eng, void* h) {
  eng.post(h);
  std::function<void()> retry = [] {};  // LINT-EXPECT[H1]
  eng.schedule(5, retry, "retry");
}

// A std::function far from any scheduling call is a legitimate long-lived
// sink (link delivery hooks, error handlers) and must stay silent.
struct Sink {
  std::function<void(int)> on_frame_;
  void set_sink(std::function<void(int)> s) { on_frame_ = std::move(s); }
};

void legal_far_from_schedule(Sink& s) {
  s.set_sink([](int) {});
}

void legal_block_boundary(Engine& eng, Sink& s) {
  eng.schedule(1, [] {}, "ok");

  s.on_frame_ = std::function<void(int)>([](int) {});
}

// meshmp-lint: std-function-ok(diagnostic shim, not on the per-event path)
void suppressed_case(Engine& eng) {
  std::function<void()> hook = [] {};
  eng.schedule(1, hook, "hook");
}
