// meshmp-lint fixture: C1 (copy accounting). Not compiled. A memcpy or
// std::copy must share a contiguous statement block with a charge_copy()
// call, or carry a host-copy / charged-copy annotation; a blank line ends
// the block.
#include <algorithm>
#include <cstring>

namespace buf {
void charge_copy(unsigned long bytes);
}

void unpaired(char* dst, const char* src, unsigned n) {
  std::memcpy(dst, src, n);  // LINT-EXPECT[C1]
}

void unpaired_std_copy(char* dst, const char* src, unsigned n) {
  std::copy(src, src + n, dst);  // LINT-EXPECT[C1]
}

void paired(char* dst, const char* src, unsigned n) {
  buf::charge_copy(n);
  std::memcpy(dst, src, n);
}

void annotated(char* dst, const char* src, unsigned n) {
  // meshmp-lint: host-copy(fixture: marshalling scratch, no modeled bytes)
  std::memcpy(dst, src, n);
}

void annotated_elsewhere(char* dst, const char* src, unsigned n) {
  // meshmp-lint: charged-copy(fixture: caller bills these bytes)
  const unsigned half = n / 2;
  std::memcpy(dst, src, half);
  std::memcpy(dst + half, src + half, n - half);
}

void blank_line_breaks_the_block(char* dst, const char* src, unsigned n) {
  buf::charge_copy(n);

  std::memcpy(dst, src, n);  // LINT-EXPECT[C1]
}
