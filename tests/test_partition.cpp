// Tests for partition tolerance: torus partition/heal fault events with
// named arm-time validation errors, deterministic bisection link sets, the
// strict-majority quorum rule and split-brain-safe membership (minority
// fail-fast, primary keeps serving), quorum-gated collectives, the healing
// reconciliation wave (epoch-bumping VI flush, death retraction, flooded
// view merge), the shared route-table cache, and simultaneous
// victim+informant crashes — all byte-identical under the run-twice
// determinism harness.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chk/audit.hpp"
#include "chk/determinism.hpp"
#include "chk/digest.hpp"
#include "cluster/gige_mesh.hpp"
#include "cluster/lifecycle.hpp"
#include "cluster/membership.hpp"
#include "cluster/report.hpp"
#include "coll/reduce_op.hpp"
#include "coll/tree.hpp"
#include "flt/fault.hpp"
#include "mp/endpoint.hpp"
#include "mpi/datatypes.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "topo/route_cache.hpp"
#include "topo/torus.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using chk::Fingerprint;
using cluster::ClusterLifecycle;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using cluster::Liveness;
using cluster::MembershipView;
using cluster::QuorumSide;
using sim::Task;

constexpr topo::Dir kPlusX{0, +1};

// Honour MESHMP_TRACE (tracing builds only) so CI can capture the partition
// and heal timeline of the campaign as a Perfetto artifact.
class TraceEnv : public ::testing::Environment {
 public:
  void SetUp() override { obs::trace_init_from_env(); }
  void TearDown() override { obs::trace_flush_env(); }
};
[[maybe_unused]] const auto* const kTraceEnv =
    ::testing::AddGlobalTestEnvironment(new TraceEnv);

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  }
  return v;
}

std::uint64_t hash_bytes(std::uint64_t h, const std::vector<std::byte>& v) {
  return chk::fnv1a_bytes(h, v.data(), v.size());
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL;
  return h * 1099511628211ULL;
}

// --- schedule validation: rejects name the offending event ------------------

std::string rejection(const std::function<void()>& arm) {
  try {
    arm();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "schedule was accepted";
  return {};
}

TEST(FltPartitionValidation, RejectsPlaneDimOutOfRange) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.partition_plane(1_ms, 5, 2);
  const std::string msg = rejection([&] { flt::Injector inj(c, s); });
  EXPECT_NE(msg.find("event #0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("partition"), std::string::npos) << msg;
  EXPECT_NE(msg.find("plane dim=5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("plane dimension out of range"), std::string::npos)
      << msg;
}

TEST(FltPartitionValidation, RejectsPlaneCutLeavingOneSideEmpty) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.partition_plane(1_ms, 0, 0);
  const std::string msg = rejection([&] { flt::Injector inj(c, s); });
  EXPECT_NE(msg.find("plane cut must leave both sides non-empty"),
            std::string::npos)
      << msg;
}

TEST(FltPartitionValidation, RejectsHealWithoutOpenPartition) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.heal(1_ms);
  const std::string msg = rejection([&] { flt::Injector inj(c, s); });
  EXPECT_NE(msg.find("event #0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("heal"), std::string::npos) << msg;
  EXPECT_NE(msg.find("all open partitions"), std::string::npos) << msg;
  EXPECT_NE(msg.find("heal without an open partition"), std::string::npos)
      << msg;
}

TEST(FltPartitionValidation, RejectsHealNotAfterThePartition) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.partition_plane(2_ms, 0, 2).heal(2_ms);
  const std::string msg = rejection([&] { flt::Injector inj(c, s); });
  EXPECT_NE(msg.find("heal not after the partition"), std::string::npos)
      << msg;
}

TEST(FltPartitionValidation, RejectsEmptyExplicitLinkSet) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.partition_links(1_ms, {});
  const std::string msg = rejection([&] { flt::Injector inj(c, s); });
  EXPECT_NE(msg.find("explicit link set is empty"), std::string::npos) << msg;
}

TEST(FltPartitionValidation, RejectsLinkEndpointRankOutOfRange) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.partition_links(1_ms, {{99, kPlusX}});
  const std::string msg = rejection([&] { flt::Injector inj(c, s); });
  EXPECT_NE(msg.find("link endpoint rank out of range"), std::string::npos)
      << msg;
}

TEST(FltPartitionValidation, AcceptsPartitionWindowAndExplicitLinks) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  flt::Schedule s;
  s.partition_window(1_ms, 0, 2, 5_ms)
      .partition_links(10_ms, {{0, kPlusX}})
      .heal(11_ms);
  EXPECT_NO_THROW({
    flt::Injector inj(c, s);
    (void)inj;
  });
}

// --- bisection link sets ----------------------------------------------------

TEST(TopoBisection, PlaneCutsBoundaryAndWraparoundOnce) {
  topo::Torus t(topo::Coord{4, 4});
  const auto links = t.bisection_links(0, 2);
  // Splitting x in {0,1} from x in {2,3}: each of the 4 rows contributes the
  // x=1->2 boundary cable and the x=3->0 wraparound cable.
  EXPECT_EQ(links.size(), 8u);
  for (const auto& [rank, dir] : links) {
    EXPECT_LT(t.coord(rank)[0], 2) << "link not listed from its low side";
    const auto peer = t.neighbor(rank, dir);
    ASSERT_TRUE(peer.has_value());
    EXPECT_GE(t.coord(*peer)[0], 2) << "cut cable does not cross the plane";
  }
  // Cutting every cable in `links` must disconnect the sides: no route from
  // a low-side rank to a high-side rank survives with the high side dead.
  std::vector<bool> high(static_cast<std::size_t>(t.size()), false);
  for (topo::Rank r = 0; r < t.size(); ++r) high[r] = t.coord(r)[0] >= 2;
  const auto table = t.route_table_avoiding(0, high);
  for (topo::Rank r = 0; r < t.size(); ++r) {
    if (t.coord(r)[0] >= 2) {
      EXPECT_EQ(table[r], -1);
    }
  }
}

TEST(TopoBisection, RejectsDegenerateCuts) {
  topo::Torus t(topo::Coord{4, 4});
  EXPECT_THROW((void)t.bisection_links(0, 0), std::invalid_argument);
  EXPECT_THROW((void)t.bisection_links(0, 4), std::invalid_argument);
  EXPECT_THROW((void)t.bisection_links(2, 1), std::invalid_argument);
}

// --- route-table cache (keyed by dead-set digest) ---------------------------

TEST(TopoRouteCache, HitsOnRepeatedDeadSetsAndStaysCorrect) {
  topo::Torus t(topo::Coord{4, 4});
  topo::RouteTableCache cache;
  std::vector<bool> dead(16, false);
  dead[5] = true;
  EXPECT_EQ(cache.get(t, 0, dead), t.route_table_avoiding(0, dead));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.get(t, 0, dead), t.route_table_avoiding(0, dead));
  EXPECT_EQ(cache.hits(), 1u);
  dead[6] = true;  // a different set is a different entry
  EXPECT_EQ(cache.get(t, 0, dead), t.route_table_avoiding(0, dead));
  EXPECT_EQ(cache.misses(), 2u);
  // Same set, different source: distinct table.
  EXPECT_EQ(cache.get(t, 3, dead), t.route_table_avoiding(3, dead));
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.size(), 3u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

// --- quorum rule ------------------------------------------------------------

TEST(ClusterQuorum, StrictMajorityAndLowestRankTieBreak) {
  MembershipView v(4);
  EXPECT_EQ(cluster::quorum_side(v), QuorumSide::kPrimary);  // all alive

  // One death: 3 of 4 is a strict majority.
  EXPECT_TRUE(v.apply({3, {Liveness::kDead, 0, 1}}));
  EXPECT_EQ(cluster::quorum_side(v), QuorumSide::kPrimary);

  // Exact half/half tie: the side holding rank 0 wins.
  EXPECT_TRUE(v.apply({2, {Liveness::kDead, 0, 1}}));
  EXPECT_EQ(cluster::quorum_side(v), QuorumSide::kPrimary);

  // The complementary view (ranks 0,1 dead) is the minority side.
  MembershipView w(4);
  EXPECT_TRUE(w.apply({0, {Liveness::kDead, 0, 1}}));
  EXPECT_TRUE(w.apply({1, {Liveness::kDead, 0, 1}}));
  EXPECT_EQ(cluster::quorum_side(w), QuorumSide::kMinority);

  // Fewer than half alive: minority outright.
  EXPECT_TRUE(w.apply({2, {Liveness::kDead, 0, 1}}));
  EXPECT_EQ(cluster::quorum_side(w), QuorumSide::kMinority);

  // Suspects still count as live (only a confirmed death removes a vote).
  MembershipView u(4);
  EXPECT_TRUE(u.apply({1, {Liveness::kSuspect, 0, 1}}));
  EXPECT_TRUE(u.apply({2, {Liveness::kDead, 0, 1}}));
  EXPECT_TRUE(u.apply({3, {Liveness::kDead, 0, 1}}));
  EXPECT_EQ(cluster::quorum_side(u), QuorumSide::kPrimary);
}

TEST(ClusterQuorum, RetractResetsToDefaultAndLosesToAnyAuthoredRecord) {
  MembershipView v(4);
  EXPECT_TRUE(v.apply({2, {Liveness::kDead, 3, 17}}));
  v.retract(2);
  EXPECT_EQ(v.at(2).state, Liveness::kAlive);
  EXPECT_EQ(v.at(2).incarnation, 0u);
  EXPECT_EQ(v.at(2).version, 0u);
  // Even a stale authored record re-applies over the retracted default.
  EXPECT_TRUE(v.apply({2, {Liveness::kDead, 0, 1}}));
}

// --- simultaneous victim + informant crashes --------------------------------
//
// The victim's row neighbours (its would-be informants in +x/-x) die at the
// same instant. Detection must not depend on any particular informant: the
// surviving neighbours declare all three within the dead_after bound plus
// detector-tick and flood slack.

Fingerprint informant_crash_scenario() {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  GigeMeshCluster c(cfg);
  c.engine().enable_digest(true);
  ClusterLifecycle life(c);
  life.start();

  // Victim 5 = (1,1); informants 4 = (0,1) and 6 = (2,1) crash with it.
  flt::Schedule s;
  s.node_crash(1_ms, 4).node_crash(1_ms, 5).node_crash(1_ms, 6);
  flt::Injector inj(c, s);

  c.engine().run_until(4_ms);
  std::uint64_t h = chk::kFnvOffset;
  for (topo::Rank dead : {4, 5, 6}) {
    EXPECT_TRUE(life.survivors_agree(dead, Liveness::kDead))
        << "survivors did not converge on rank " << dead;
    h = mix(h, static_cast<std::uint64_t>(
                   life.survivors_agree(dead, Liveness::kDead)));
  }
  // Three deaths out of 16 never threaten quorum.
  for (topo::Rank r : {0, 1, 7, 15}) {
    EXPECT_EQ(life.side(r), QuorumSide::kPrimary);
  }

  life.stop();
  c.run();
  return {c.engine().executed(), c.engine().digest(), c.engine().now(), h};
}

TEST(FltInformantCrash, SurvivorsConvergeWithinBoundByteIdentical) {
  auto r = chk::run_twice_and_compare(informant_crash_scenario);
  EXPECT_TRUE(r.identical) << r.divergence;
  auto& hist =
      obs::Registry::instance().histogram("cluster.detection_latency_ns");
  // 13 survivors x 3 subjects per run.
  EXPECT_GE(hist.count(), 39u);
  // Every detection within dead_after (2 ms) plus two detector ticks and
  // flood slack: losing the row informants must not stretch the bound.
  EXPECT_LE(hist.max(), 2_ms + 3 * 200_us);
}

// --- partition / heal acceptance campaign on 4x8x8 --------------------------
//
// partition_plane(dim 0, cut 2) splits the default 4x8x8 torus into two
// 2x8x8 halves of 128 nodes each — the exact tie the lowest-surviving-rank
// rule must break: the x<2 half holds rank 0 and stays primary, the x>=2
// half goes minority. Rank layout: rank = x + 4y + 32z.

constexpr topo::Rank kPrimaryA = 0;    // (0,0,0): paced-pair sender
constexpr topo::Rank kPrimaryB = 225;  // (1,0,7): paced-pair receiver
constexpr topo::Rank kBoundary = 1;    // (1,0,0): cross-cut channel owner
constexpr topo::Rank kMinA = 2;        // (2,0,0): minority probe node
constexpr topo::Rank kMinB = 3;        // (3,0,0): minority established peer
constexpr topo::Rank kMinFar = 34;     // (2,0,1): minority fresh-dial target

constexpr int kPacedMsgs = 120;
constexpr int kTagPaced = 5;
constexpr int kTagCross = 7;
constexpr int kTagIntra = 8;
constexpr int kTagFresh = 9;

struct PairTraffic {
  int delivered = 0;
  int ok_sends = 0;
  std::uint64_t hash = chk::kFnvOffset;
};

Task<> paced_sender(mp::Endpoint& ep, int dst, int tag, int n,
                    PairTraffic& out) {
  for (int i = 0; i < n; ++i) {
    auto st =
        co_await ep.send(dst, tag, pattern(512, static_cast<std::uint8_t>(i)));
    if (st == mp::SendStatus::kOk) ++out.ok_sends;
    co_await sim::delay(ep.engine(), 100_us);
  }
}

Task<> pair_receiver(mp::Endpoint& ep, int src, int tag, int n,
                     PairTraffic& out) {
  for (int i = 0; i < n; ++i) {
    mp::Message m = co_await ep.recv(src, tag);
    if (!m.ok) co_return;
    ++out.delivered;
    out.hash = hash_bytes(out.hash, m.data);
  }
}

struct SendCell {
  bool done = false;
  mp::SendStatus status = mp::SendStatus::kOk;
};

Task<> one_send(mp::Endpoint& ep, int dst, int tag, std::uint8_t seed,
                SendCell& out) {
  out.status = co_await ep.send(dst, tag, pattern(64, seed));
  out.done = true;
}

Task<> one_recv(mp::Endpoint& ep, int src, int tag, SendCell& out) {
  mp::Message m = co_await ep.recv(src, tag);
  out.status = m.ok ? mp::SendStatus::kOk : mp::SendStatus::kUnreachable;
  out.done = true;
}

struct CollCell {
  bool done = false;
  mp::SendStatus status = mp::SendStatus::kOk;
  std::vector<std::byte> data;
};

// `op` and `dead` by value: they are copied into the coroutine frame, so
// callers may pass temporaries that die before the first suspension resumes.
Task<> quorum_allreduce_node(mp::Endpoint& ep, coll::ReduceOp op, int tag,
                             std::vector<bool> dead, CollCell& out) {
  out.data = mpi::to_bytes(static_cast<double>(ep.rank()));
  out.status = co_await coll::allreduce_quorum(ep, out.data, op, tag, dead);
  out.done = true;
}

Task<> quorum_barrier_node(mp::Endpoint& ep, int tag, std::vector<bool> dead,
                           CollCell& out) {
  out.status = co_await coll::barrier_quorum(ep, tag, std::move(dead));
  out.done = true;
}

struct CampaignCounters {
  std::int64_t minority_transitions = 0;
  std::int64_t primary_restorations = 0;
  std::int64_t partition_rejoins = 0;
  std::int64_t reconcile_waves = 0;
  std::int64_t carrier_heal_events = 0;
  std::int64_t view_pushes = 0;
};

bool is_minority_rank(const topo::Torus& t, topo::Rank r) {
  return t.coord(r)[0] >= 2;
}

Fingerprint partition_campaign(cluster::ClusterReport& report_out,
                               CampaignCounters& ctr_out) {
  GigeMeshConfig cfg;  // default 4x8x8 torus, 256 nodes
  cfg.via.retx_timeout = 1_ms;
  GigeMeshCluster c(cfg);
  c.engine().enable_digest(true);
  ClusterLifecycle life(c);
  life.start();
  const topo::Torus& t = c.torus();

  // Partition 2 ms in, heal 10 ms later.
  flt::Schedule s;
  s.partition_plane(2_ms, 0, 2).heal(12_ms);
  flt::Injector inj(c, s);

  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  for (topo::Rank r = 0; r < c.size(); ++r) {
    eps.push_back(
        std::make_unique<mp::Endpoint>(c.agent(r), mp::CoreParams{}));
  }
  auto ep = [&eps](topo::Rank r) -> mp::Endpoint& {
    return *eps[static_cast<std::size_t>(r)];
  };

  // Intra-primary pair paced across the whole campaign: its minimal route
  // (x within {0,1}, z wraparound) never crosses the cut, so every message
  // must deliver regardless of the partition.
  PairTraffic paced;
  paced_sender(ep(kPrimaryA), kPrimaryB, kTagPaced, kPacedMsgs, paced)
      .detach();
  pair_receiver(ep(kPrimaryB), kPrimaryA, kTagPaced, kPacedMsgs, paced)
      .detach();

  // Warm a cross-cut channel (boundary -> minority) and an intra-minority
  // channel before the partition, so the campaign exercises fail-fast on an
  // established channel and survival of an intra-side channel respectively.
  SendCell warm_cross_tx, warm_cross_rx, warm_intra_tx, warm_intra_rx;
  one_recv(ep(kMinA), kBoundary, kTagCross, warm_cross_rx).detach();
  one_send(ep(kBoundary), kMinA, kTagCross, 1, warm_cross_tx).detach();
  one_recv(ep(kMinB), kMinA, kTagIntra, warm_intra_rx).detach();
  one_send(ep(kMinA), kMinB, kTagIntra, 2, warm_intra_tx).detach();

  // Detection: partition at 2 ms + dead_after 2 ms + detector tick + flood.
  c.engine().run_until(8_ms);
  EXPECT_TRUE(warm_cross_tx.done && warm_cross_rx.done);
  EXPECT_EQ(warm_cross_tx.status, mp::SendStatus::kOk);
  EXPECT_TRUE(warm_intra_tx.done && warm_intra_rx.done);
  EXPECT_EQ(warm_intra_tx.status, mp::SendStatus::kOk);

  // Split-brain safety: every view has converged on its own side's story —
  // 128 dead — and the tie broke to exactly one primary side.
  for (topo::Rank r = 0; r < c.size(); ++r) {
    EXPECT_EQ(life.view(r).count(Liveness::kDead), 128)
        << "rank " << r << " view not converged";
    EXPECT_EQ(life.side(r), is_minority_rank(t, r) ? QuorumSide::kMinority
                                                   : QuorumSide::kPrimary)
        << "rank " << r << " on the wrong side";
  }

  // Fail-fast probes during the partition.
  SendCell cross_probe, minority_fresh, intra_send, intra_recv;
  CollCell minority_coll;
  // a) Established cross-cut channel error-completes kUnreachable.
  one_send(ep(kBoundary), kMinA, kTagCross, 3, cross_probe).detach();
  // b) A fresh dial from the minority side is refused without touching the
  //    wire: kMinorityPartition.
  one_send(ep(kMinA), kMinFar, kTagFresh, 4, minority_fresh).detach();
  // c) An established intra-minority channel keeps working.
  one_recv(ep(kMinB), kMinA, kTagIntra, intra_recv).detach();
  one_send(ep(kMinA), kMinB, kTagIntra, 5, intra_send).detach();
  // d) A minority-side collective refuses immediately.
  quorum_barrier_node(ep(kMinA), (1 << 23) | 40, life.view(kMinA).dead_set(),
                      minority_coll)
      .detach();
  // e) The primary side re-trees and keeps serving: an allreduce over the
  //    128 survivors completes with the primary-side sum.
  std::vector<CollCell> prim(static_cast<std::size_t>(c.size()));
  double expected_sum = 0;
  for (topo::Rank r = 0; r < c.size(); ++r) {
    if (is_minority_rank(t, r)) continue;
    expected_sum += static_cast<double>(r);
    quorum_allreduce_node(ep(r), coll::sum_op<double>(), (1 << 23) | 44,
                          life.view(r).dead_set(),
                          prim[static_cast<std::size_t>(r)])
        .detach();
  }

  c.engine().run_until(11_ms);
  EXPECT_TRUE(cross_probe.done) << "cross-cut probe hung";
  EXPECT_EQ(cross_probe.status, mp::SendStatus::kUnreachable);
  EXPECT_TRUE(minority_fresh.done) << "minority fresh dial hung";
  EXPECT_EQ(minority_fresh.status, mp::SendStatus::kMinorityPartition);
  EXPECT_TRUE(intra_send.done && intra_recv.done);
  EXPECT_EQ(intra_send.status, mp::SendStatus::kOk);
  EXPECT_TRUE(minority_coll.done);
  EXPECT_EQ(minority_coll.status, mp::SendStatus::kMinorityPartition);
  for (topo::Rank r = 0; r < c.size(); ++r) {
    if (is_minority_rank(t, r)) continue;
    auto& cell = prim[static_cast<std::size_t>(r)];
    EXPECT_TRUE(cell.done) << "primary allreduce hung at rank " << r;
    EXPECT_EQ(cell.status, mp::SendStatus::kOk);
    if (cell.done && cell.status == mp::SendStatus::kOk) {
      EXPECT_EQ(mpi::scalar_from_bytes<double>(cell.data), expected_sum)
          << "wrong primary-side sum at rank " << r;
    }
  }

  // Heal fires at 12 ms: reconcile wave, epoch-bumping flushes, retraction,
  // rejoin floods. By 25 ms every view must be all-alive again.
  c.engine().run_until(25_ms);
  EXPECT_TRUE(life.all_alive()) << "heal reconciliation did not converge";
  EXPECT_EQ(paced.delivered, kPacedMsgs);
  EXPECT_EQ(paced.ok_sends, kPacedMsgs);
  for (topo::Rank r = 0; r < c.size(); ++r) {
    EXPECT_EQ(life.side(r), QuorumSide::kPrimary);
  }

  // Post-heal: blocked channels surface their failure once more, then the
  // app resets them and traffic flows again.
  SendCell retry_cross_stale, retry_cross, retry_cross_rx;
  SendCell retry_intra_stale, retry_intra, retry_intra_rx;
  SendCell retry_fresh, retry_fresh_rx;
  one_send(ep(kBoundary), kMinA, kTagCross, 6, retry_cross_stale).detach();
  one_send(ep(kMinA), kMinB, kTagIntra, 7, retry_intra_stale).detach();
  c.engine().run_until(26_ms);
  EXPECT_TRUE(retry_cross_stale.done);
  EXPECT_EQ(retry_cross_stale.status, mp::SendStatus::kUnreachable);
  EXPECT_TRUE(retry_intra_stale.done);  // minority flush failed this one too
  EXPECT_EQ(retry_intra_stale.status, mp::SendStatus::kUnreachable);

  ep(kBoundary).reset_peer(kMinA);
  ep(kMinA).reset_peer(kMinB);
  one_recv(ep(kMinA), kBoundary, kTagCross, retry_cross_rx).detach();
  one_send(ep(kBoundary), kMinA, kTagCross, 8, retry_cross).detach();
  one_recv(ep(kMinB), kMinA, kTagIntra, retry_intra_rx).detach();
  one_send(ep(kMinA), kMinB, kTagIntra, 9, retry_intra).detach();
  // The minority-refused fresh dial simply retries after the heal.
  one_recv(ep(kMinFar), kMinA, kTagFresh, retry_fresh_rx).detach();
  one_send(ep(kMinA), kMinFar, kTagFresh, 10, retry_fresh).detach();
  c.engine().run_until(28_ms);
  for (const SendCell* cell :
       {&retry_cross, &retry_cross_rx, &retry_intra, &retry_intra_rx,
        &retry_fresh, &retry_fresh_rx}) {
    EXPECT_TRUE(cell->done) << "post-heal retry hung";
    EXPECT_EQ(cell->status, mp::SendStatus::kOk);
  }

  // Machine-wide collective across all 256 ranks proves full recovery.
  std::vector<CollCell> world(static_cast<std::size_t>(c.size()));
  for (topo::Rank r = 0; r < c.size(); ++r) {
    quorum_barrier_node(ep(r), (1 << 23) | 48, life.view(r).dead_set(),
                        world[static_cast<std::size_t>(r)])
        .detach();
  }
  c.engine().run_until(32_ms);
  for (topo::Rank r = 0; r < c.size(); ++r) {
    auto& cell = world[static_cast<std::size_t>(r)];
    EXPECT_TRUE(cell.done) << "post-heal barrier hung at rank " << r;
    EXPECT_EQ(cell.status, mp::SendStatus::kOk);
  }

  EXPECT_EQ(inj.counters().get("partitions"), 1);
  EXPECT_EQ(inj.counters().get("heals"), 1);
  const auto& pc = life.partition_counters();
  ctr_out.minority_transitions = pc.get("minority_transitions");
  ctr_out.primary_restorations = pc.get("primary_restorations");
  ctr_out.partition_rejoins = pc.get("partition_rejoins");
  ctr_out.reconcile_waves = pc.get("reconcile_waves");
  ctr_out.carrier_heal_events = pc.get("carrier_heal_events");
  ctr_out.view_pushes = pc.get("view_pushes");

  life.stop();
  c.run();
  report_out = cluster::make_report(c);

  // No payload buffer may be stranded by the flush/retract/rejoin sequence.
  {
    chk::ScopedCapture capture;
    (void)chk::Audit::instance().quiesce();
    EXPECT_FALSE(capture.caught("buf.pool"))
        << "buffer leaked across the partition/heal cycle";
  }

  std::uint64_t h = paced.hash;
  h = mix(h, static_cast<std::uint64_t>(paced.delivered));
  h = mix(h, static_cast<std::uint64_t>(cross_probe.status));
  h = mix(h, static_cast<std::uint64_t>(minority_fresh.status));
  h = mix(h, static_cast<std::uint64_t>(minority_coll.status));
  h = mix(h, static_cast<std::uint64_t>(expected_sum));
  h = mix(h, static_cast<std::uint64_t>(ctr_out.minority_transitions));
  h = mix(h, static_cast<std::uint64_t>(ctr_out.partition_rejoins));
  h = mix(h, life.all_alive() ? 1 : 0);
  return {c.engine().executed(), c.engine().digest(), c.engine().now(), h};
}

TEST(FltPartition, SplitBrainHealReconcileByteIdentical) {
  cluster::ClusterReport report;
  CampaignCounters ctr;
  auto r = chk::run_twice_and_compare(
      [&report, &ctr] { return partition_campaign(report, ctr); });
  EXPECT_TRUE(r.identical) << r.divergence;
  EXPECT_NE(r.first.result_hash, 0u);

  // Each of the 128 minority nodes flipped exactly once each way and ran
  // exactly one reconcile rejoin; the wave reached every node.
  EXPECT_EQ(ctr.minority_transitions, 128);
  EXPECT_EQ(ctr.primary_restorations, 128);
  EXPECT_EQ(ctr.partition_rejoins, 128);
  EXPECT_EQ(ctr.reconcile_waves, 256);
  // Every cut cable reports heal evidence at both ends (128 cables: 64
  // boundary + 64 wraparound).
  EXPECT_EQ(ctr.carrier_heal_events, 256);
  EXPECT_GT(ctr.view_pushes, 0);

  // Partition work surfaced in the cluster report scalars.
  EXPECT_EQ(report.partition_flushes, 128);
  EXPECT_GT(report.minority_refusals, 0);
  EXPECT_EQ(report.node_crashes, 0);  // nobody actually died

  // Duration and heal-convergence distributions landed in the registry.
  auto& reg = obs::Registry::instance();
  EXPECT_GE(reg.histogram("cluster.partition.duration_ns").count(), 128u);
  EXPECT_GE(reg.histogram("cluster.partition.heal_convergence_ns").count(),
            256u);
}

}  // namespace
