// Tests for the extension features: the interrupt-level global reduction
// (paper sec. 7 future work), MPI communicator duplication, allgather,
// probe/iprobe, and whole-simulation determinism.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/gige_mesh.hpp"
#include "mp/endpoint.hpp"
#include "mpi/mpi.hpp"
#include "qmp/qmp.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using sim::Task;

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 5 + i) & 0xff);
  }
  return v;
}

struct World {
  GigeMeshCluster cluster;
  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  std::vector<std::unique_ptr<mpi::Comm>> comms;
  std::vector<std::unique_ptr<qmp::Machine>> machines;
  int finished = 0;

  explicit World(topo::Coord shape)
      : cluster([&] {
          GigeMeshConfig cfg;
          cfg.shape = shape;
          return cfg;
        }()) {
    for (topo::Rank r = 0; r < cluster.size(); ++r) {
      eps.push_back(std::make_unique<mp::Endpoint>(cluster.agent(r),
                                                   mp::CoreParams{}));
      comms.push_back(std::make_unique<mpi::Comm>(*eps.back()));
      machines.push_back(std::make_unique<qmp::Machine>(*eps.back()));
    }
  }

  template <typename F>
  void run_spmd_comm(F prog) {
    auto wrapper = [](F p, mpi::Comm& c, int& count) -> Task<> {
      co_await p(c);
      ++count;
    };
    for (auto& c : comms) wrapper(prog, *c, finished).detach();
    cluster.run();
    ASSERT_EQ(finished, static_cast<int>(comms.size())) << "rank deadlocked";
  }

  template <typename F>
  void run_spmd_qmp(F prog) {
    auto wrapper = [](F p, qmp::Machine& m, int& count) -> Task<> {
      co_await p(m);
      ++count;
    };
    for (auto& m : machines) wrapper(prog, *m, finished).detach();
    cluster.run();
    ASSERT_EQ(finished, static_cast<int>(machines.size()))
        << "node deadlocked";
  }
};

// --- interrupt-level collectives --------------------------------------------

class KernelSumShapes : public ::testing::TestWithParam<topo::Coord> {};

TEST_P(KernelSumShapes, MatchesUserLevelResult) {
  World w(GetParam());
  const int n = static_cast<int>(w.cluster.size());
  auto prog = [n](qmp::Machine& m) -> Task<> {
    const double ks = co_await m.sum_double_kernel(1.5 + m.node_number());
    EXPECT_DOUBLE_EQ(ks, 1.5 * n + n * (n - 1) / 2.0)
        << "node " << m.node_number();
    // Back-to-back kernel sums with different values must not mix.
    const double ks2 = co_await m.sum_double_kernel(2.0);
    EXPECT_DOUBLE_EQ(ks2, 2.0 * n);
  };
  w.run_spmd_qmp(prog);
}

INSTANTIATE_TEST_SUITE_P(Shapes, KernelSumShapes,
                         ::testing::Values(topo::Coord{4}, topo::Coord{4, 4},
                                           topo::Coord{2, 4, 4},
                                           topo::Coord{4, 8, 8}),
                         [](const auto& info) {
                           std::string name;
                           for (int d = 0; d < info.param.ndims(); ++d) {
                             if (d) name += "x";
                             name += std::to_string(info.param[d]);
                           }
                           return name;
                         });

TEST(KernelSum, FasterThanUserLevelGlobalSum) {
  // The point of the sec. 7 prototype: skipping the user-space hop on
  // interior nodes cuts the end-to-end latency of a global sum.
  World w(topo::Coord{4, 8, 8});
  auto& eng = w.cluster.engine();
  sim::Time user_done = 0;
  sim::Time kernel_done = 0;
  int phase_done = 0;
  auto prog = [&eng, &user_done, &kernel_done, &phase_done](
                  qmp::Machine& m) -> Task<> {
    co_await m.barrier();
    const sim::Time t0 = eng.now();
    (void)co_await m.sum_double(1.0);
    if (++phase_done == 256) user_done = eng.now() - t0;
    co_await m.barrier();
    const sim::Time t1 = eng.now();
    (void)co_await m.sum_double_kernel(1.0);
    if (++phase_done == 512) kernel_done = eng.now() - t1;
  };
  w.run_spmd_qmp(prog);
  EXPECT_GT(user_done, 0);
  EXPECT_GT(kernel_done, 0);
  EXPECT_LT(kernel_done, user_done)
      << "kernel " << sim::to_us(kernel_done) << "us vs user "
      << sim::to_us(user_done) << "us";
}

// --- MPI communicator contexts ----------------------------------------------

TEST(MpiDup, ContextsIsolateTraffic) {
  World w(topo::Coord{4});
  auto prog = [](mpi::Comm& world) -> Task<> {
    mpi::Comm other = world.dup();
    EXPECT_NE(other.context(), world.context());
    if (world.rank() == 0) {
      // Send tag 5 on BOTH communicators; receivers must get their own.
      co_await other.send(pattern(10, 2), 1, 5);
      co_await world.send(pattern(20, 1), 1, 5);
    } else if (world.rank() == 1) {
      std::vector<std::byte> a;
      std::vector<std::byte> b;
      // Receive on world first even though the dup message was sent first.
      (void)co_await world.recv(a, 0, 5);
      (void)co_await other.recv(b, 0, 5);
      EXPECT_EQ(a, pattern(20, 1));
      EXPECT_EQ(b, pattern(10, 2));
    }
    // Collectives on the dup also stay isolated.
    const double s = co_await other.allreduce_sum(1.0);
    EXPECT_DOUBLE_EQ(s, 4.0);
  };
  w.run_spmd_comm(prog);
}

TEST(MpiDup, AnyTagStaysInsideContext) {
  World w(topo::Coord{4});
  auto prog = [](mpi::Comm& world) -> Task<> {
    mpi::Comm other = world.dup();
    if (world.rank() == 0) {
      co_await other.send(pattern(8, 9), 1, 3);  // arrives first
      co_await world.send(pattern(8, 7), 1, 4);
    } else if (world.rank() == 1) {
      std::vector<std::byte> got;
      auto st = co_await world.recv(got, mpi::kAnySource, mpi::kAnyTag);
      EXPECT_EQ(st.tag, 4);  // must skip the dup's message
      EXPECT_EQ(got, pattern(8, 7));
      (void)co_await other.recv(got, 0, 3);
    }
  };
  w.run_spmd_comm(prog);
}

// --- allgather ----------------------------------------------------------------

TEST(MpiAllgather, EveryoneGetsAllChunks) {
  World w(topo::Coord{2, 4});
  auto prog = [](mpi::Comm& c) -> Task<> {
    auto all = co_await c.allgather(
        pattern(16 + static_cast<std::size_t>(c.rank()),
                static_cast<std::uint8_t>(c.rank())));
    EXPECT_EQ(all.size(), static_cast<std::size_t>(c.size()));
    for (int r = 0; r < c.size(); ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)],
                pattern(16 + static_cast<std::size_t>(r),
                        static_cast<std::uint8_t>(r)))
          << "chunk " << r << " at rank " << c.rank();
    }
  };
  w.run_spmd_comm(prog);
}

// --- probe ---------------------------------------------------------------------

TEST(MpiProbe, ReportsEnvelopeWithoutConsuming) {
  World w(topo::Coord{4});
  auto prog = [](mpi::Comm& c) -> Task<> {
    if (c.rank() == 0) {
      co_await c.send(pattern(77), 1, 9);
    } else if (c.rank() == 1) {
      auto st = co_await c.probe(mpi::kAnySource, mpi::kAnyTag);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 9);
      EXPECT_EQ(st.count, 77);
      // Probing twice is idempotent.
      auto st2 = co_await c.probe(0, 9);
      EXPECT_EQ(st2.count, 77);
      std::vector<std::byte> got;
      (void)co_await c.recv(got, st.source, st.tag);
      EXPECT_EQ(got, pattern(77));
      // Now nothing is probeable.
      EXPECT_FALSE(c.iprobe(mpi::kAnySource, mpi::kAnyTag).has_value());
    }
  };
  w.run_spmd_comm(prog);
}

TEST(MpiProbe, ProbeSeesRendezvousAnnouncements) {
  World w(topo::Coord{4});
  auto prog = [](mpi::Comm& c) -> Task<> {
    if (c.rank() == 0) {
      co_await c.send(pattern(100'000), 1, 2);  // rendezvous-sized
    } else if (c.rank() == 1) {
      auto st = co_await c.probe(0, 2);
      EXPECT_EQ(st.count, 100'000);  // size known from the RTS
      std::vector<std::byte> got;
      (void)co_await c.recv(got, 0, 2);
      EXPECT_EQ(got.size(), 100'000u);
    }
  };
  w.run_spmd_comm(prog);
}

// --- determinism ------------------------------------------------------------

sim::Time run_workload_once() {
  World w(topo::Coord{2, 4});
  sim::Time last = 0;
  auto prog = [](mpi::Comm& c, sim::Engine& eng, sim::Time& out) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      const int peer = (c.rank() + 1 + i) % c.size();
      std::vector<std::byte> in;
      (void)co_await c.sendrecv(pattern(500 + i * 37), peer, i, in,
                                mpi::kAnySource, i);
      (void)co_await c.allreduce_sum(double(i));
    }
    out = eng.now();
  };
  auto wrapper = [](decltype(prog) p, mpi::Comm& c, sim::Engine& e,
                    sim::Time& out) -> Task<> { co_await p(c, e, out); };
  for (auto& c : w.comms) {
    wrapper(prog, *c, w.cluster.engine(), last).detach();
  }
  w.cluster.run();
  return last;
}

TEST(Determinism, IdenticalRunsProduceIdenticalTimings) {
  const sim::Time a = run_workload_once();
  const sim::Time b = run_workload_once();
  EXPECT_GT(a, 0);
  EXPECT_EQ(a, b);
}

}  // namespace
