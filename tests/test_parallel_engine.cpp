// Conservative parallel engine (Engine::partition) tests: LP partition
// correctness, cross-LP mailbox ordering parity against the single-thread
// reference, lookahead edge cases (zero-delay self-events, Time-max
// saturation, lookahead-violation detection), and the RunTwice × threads
// digest-parity property — the machine-checked form of "the digest is a
// function of the simulated program and the LP count, never of the worker
// count".

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "chk/determinism.hpp"
#include "chk/digest.hpp"
#include "cluster/gige_mesh.hpp"
#include "sim/engine.hpp"
#include "sim/lp.hpp"
#include "sim/task.hpp"
#include "via/agent.hpp"
#include "via/vi.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using chk::Fingerprint;
using sim::Engine;
using sim::LpId;
using sim::LpScope;
using sim::Task;

constexpr sim::Time kTimeMax = std::numeric_limits<sim::Time>::max();

// --- LP partition correctness ----------------------------------------------

TEST(ParallelEngine, PartitionValidatesArguments) {
  {
    Engine eng;
    EXPECT_THROW(eng.partition(0, 1, 300), std::invalid_argument);
  }
  {
    Engine eng;  // multi-LP with no lookahead: windows could never close
    EXPECT_THROW(eng.partition(4, 2, 0), std::invalid_argument);
  }
  {
    Engine eng;  // partition() must come before any scheduling
    eng.schedule(0, [] {});
    EXPECT_THROW(eng.partition(4, 2, 300), std::logic_error);
  }
}

TEST(ParallelEngine, PartitionShapesTheEngine) {
  Engine eng;
  eng.partition(3, 8, 250);
  EXPECT_TRUE(eng.partitioned());
  EXPECT_EQ(eng.lps(), 3u);
  EXPECT_LE(eng.threads(), 3u);  // workers clamp to the LP count
  EXPECT_EQ(eng.lookahead(), 250);
  EXPECT_EQ(eng.current_lp(), sim::kControlLp);
}

TEST(ParallelEngine, LpScopeRoutesWorkToItsLp) {
  Engine eng;
  eng.partition(3, 1, 100);
  LpId seen = 99;
  {
    LpScope scope(eng, 2);
    EXPECT_EQ(eng.current_lp(), 2u);
    eng.schedule(0, [&eng, &seen] { seen = eng.current_lp(); });
  }
  EXPECT_EQ(eng.current_lp(), sim::kControlLp);
  eng.run();
  EXPECT_EQ(seen, 2u);
}

// --- cross-LP mailbox ordering ---------------------------------------------

// Two source LPs emit into LP 1 with colliding delivery times; the drain
// must order them by (when, src LP, per-source emission number) no matter
// how many workers ran the emitting window.
Fingerprint mailbox_scenario(unsigned nthreads, std::vector<int>* order_out) {
  Engine eng;
  eng.partition(4, nthreads, 100);
  eng.enable_digest(true);
  static std::vector<int> order;  // written only by LP 1's events
  order.clear();
  auto emit = [](Engine& e, int tag, sim::Duration d) {
    e.schedule_to(1, d, [tag] { order.push_back(tag); }, "msg");
  };
  {
    LpScope scope(eng, 2);
    eng.schedule(0, [&eng, emit] {
      emit(eng, 20, 100);
      emit(eng, 21, 150);
      emit(eng, 22, 150);
    });
  }
  {
    LpScope scope(eng, 3);
    eng.schedule(0, [&eng, emit] {
      emit(eng, 30, 100);
      emit(eng, 31, 100);
      emit(eng, 32, 150);
    });
  }
  eng.run();
  std::uint64_t h = chk::kFnvOffset;
  for (int v : order) h = chk::fnv1a_u64(h, static_cast<std::uint64_t>(v));
  if (order_out != nullptr) *order_out = order;
  return Fingerprint{eng.executed(), eng.digest(), eng.now(), h};
}

TEST(ParallelEngine, MailboxDrainOrderIsCanonical) {
  // when=100: lp2's first, then lp3's two (per-source emission order);
  // when=150: lp2's two, then lp3's.
  const std::vector<int> expected{20, 30, 31, 21, 22, 32};
  for (unsigned t : {1u, 2u, 4u}) {
    std::vector<int> order;
    (void)mailbox_scenario(t, &order);
    EXPECT_EQ(order, expected) << "threads=" << t;
  }
}

TEST(ParallelEngine, MailboxParityAcrossThreadCounts) {
  const Fingerprint ref = mailbox_scenario(1, nullptr);
  for (unsigned t : {2u, 4u}) {
    const Fingerprint fp = mailbox_scenario(t, nullptr);
    EXPECT_EQ(fp, ref) << "threads=" << t << ": " << chk::describe(fp)
                       << " vs " << chk::describe(ref);
  }
}

// --- lookahead edge cases --------------------------------------------------

TEST(ParallelEngine, ZeroDelaySelfEventsRunInsideTheWindow) {
  for (unsigned t : {1u, 4u}) {
    Engine eng;
    eng.partition(3, t, 300);
    eng.enable_digest(true);
    static int chain;
    chain = 0;
    {
      LpScope scope(eng, 1);
      eng.schedule(1_us, [&eng] {
        ++chain;
        eng.schedule(0, [&eng] {
          ++chain;
          eng.schedule(0, [] { ++chain; });
        });
      });
    }
    eng.run();
    EXPECT_EQ(chain, 3) << "threads=" << t;
    EXPECT_EQ(eng.now(), 1_us) << "threads=" << t;
    EXPECT_EQ(eng.executed(), 3u) << "threads=" << t;
  }
}

TEST(ParallelEngine, TimeMaxSaturatesInsteadOfOverflowing) {
  // An event one tick short of the representable horizon: the window end
  // T + lookahead must saturate, not wrap (UBSan would flag the overflow).
  Engine eng;
  eng.partition(2, 1, 300);
  bool ran = false;
  {
    LpScope scope(eng, 1);
    eng.schedule_at(kTimeMax - 1, [&ran] { ran = true; });
  }
  eng.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(eng.now(), kTimeMax - 1);
}

TEST(ParallelEngine, LookaheadViolationIsDetected) {
  // LP 1 emits into LP 2 with a delay far below the declared lookahead while
  // LP 2's clock has already advanced past the delivery time inside the same
  // window — the drain must refuse to rewrite LP 2's past.
  Engine eng;
  eng.partition(3, 1, 1000);
  {
    LpScope scope(eng, 2);
    eng.schedule(0, [] {});
    eng.schedule(500, [] {});
  }
  {
    LpScope scope(eng, 1);
    eng.schedule(0, [&eng] { eng.schedule_to(2, 10, [] {}); });
  }
  EXPECT_THROW(eng.run(), std::logic_error);
}

// --- cluster digest matrix -------------------------------------------------

// A VIA ping-pong over the partitioned 4-ring, the in-process miniature of
// the CI determinism matrix: identical digests at 1, 2 and 4 workers, and
// identical *modeled results* (event count, finish time) between the
// windowed engine and the legacy sequential engine.
Fingerprint ring_pingpong(unsigned threads) {
  cluster::GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  cfg.threads = threads;
  cluster::GigeMeshCluster c(cfg);
  c.engine().enable_digest(true);  // legacy runs opt in here too
  via::Vi* a = nullptr;
  via::Vi* b = nullptr;
  auto dial = [](via::KernelAgent& ag, via::Vi*& out) -> Task<> {
    out = co_await ag.connect(1, 1);
  };
  auto answer = [](via::KernelAgent& ag, via::Vi*& out) -> Task<> {
    out = co_await ag.accept(1);
  };
  c.agent(1).listen(1);
  answer(c.agent(1), b).detach();
  dial(c.agent(0), a).detach();
  c.run();
  for (int i = 0; i < 12; ++i) {
    a->post_recv(256);
    b->post_recv(256);
  }
  auto pong = [](via::Vi& vi, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      auto m = co_await vi.recv_completion();
      co_await vi.send(std::move(m.data));
    }
  };
  auto ping = [](via::Vi& vi, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      co_await vi.send(std::vector<std::byte>(128, std::byte{0x5a}));
      (void)co_await vi.recv_completion();
    }
  };
  pong(*b, 8).detach();
  ping(*a, 8).detach();
  c.run();
  return Fingerprint{c.engine().executed(), c.engine().digest(),
                     c.engine().now(), 0};
}

TEST(ParallelEngine, ClusterDigestsMatchAcrossThreadCounts) {
  const Fingerprint ref = ring_pingpong(1);
  for (unsigned t : {2u, 4u}) {
    const Fingerprint fp = ring_pingpong(t);
    EXPECT_EQ(fp, ref) << "threads=" << t << ": " << chk::describe(fp)
                       << " vs " << chk::describe(ref);
  }
}

TEST(ParallelEngine, WindowedEngineKeepsLegacySemantics) {
  // threads=0 builds the legacy single-shard engine. Digests use different
  // sequence streams, but the modeled outcome — events dispatched and the
  // simulated finish time — must be identical.
  const Fingerprint legacy = ring_pingpong(0);
  const Fingerprint windowed = ring_pingpong(1);
  EXPECT_EQ(windowed.executed, legacy.executed);
  EXPECT_EQ(windowed.end_time, legacy.end_time);
}

TEST(ParallelEngine, RunTwiceDigestParityProperty) {
  Fingerprint per_thread[3];
  const unsigned counts[3] = {1u, 2u, 4u};
  for (int i = 0; i < 3; ++i) {
    const unsigned t = counts[i];
    auto r = chk::run_twice_and_compare(
        [t] { return ring_pingpong(t); });
    EXPECT_TRUE(r.identical) << "threads=" << t << ": " << r.divergence;
    per_thread[i] = r.first;
  }
  EXPECT_EQ(per_thread[0], per_thread[1]);
  EXPECT_EQ(per_thread[0], per_thread[2]);
}

}  // namespace
