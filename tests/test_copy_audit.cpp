// Copy-accounting regression tests: pin the exact number of charge_copy
// calls (and bytes) on each modeled data path.
//
// Together with the buf.copy.* counters in the bench baselines (fig2/3/5),
// these make copy-count drift a hard test failure: an extra memcpy sneaking
// onto a modeled path either goes through charge_copy() — and trips the
// exact counts pinned here — or it is host-only and must carry a
// `meshmp-lint: host-copy(...)` annotation to pass tools/meshmp_lint.py.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "buf/copy.hpp"
#include "cluster/gige_mesh.hpp"
#include "coll/tree.hpp"
#include "common.hpp"
#include "mp/endpoint.hpp"
#include "mp/wire.hpp"

namespace {

using namespace meshmp;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using mp::Endpoint;
using sim::Task;

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 7 + i * 13) & 0xff);
  }
  return v;
}

/// Fragments a `bytes`-sized message at the default VIA MTU.
std::uint64_t nfrags(std::uint64_t bytes) {
  const auto mtu = static_cast<std::uint64_t>(via::ViaParams{}.mtu_payload);
  return (bytes + mtu - 1) / mtu;
}

struct Pair {
  GigeMeshCluster cluster;
  Endpoint a;
  Endpoint b;

  Pair()
      : cluster([] {
          GigeMeshConfig cfg;
          cfg.shape = topo::Coord{4};
          return cfg;
        }()),
        a(cluster.agent(0), mp::CoreParams{}),
        b(cluster.agent(1), mp::CoreParams{}) {}

  /// One 0 -> 1 message over the endpoint layer, run to quiescence.
  void transfer(std::size_t size) {
    auto receiver = [](Endpoint& ep) -> Task<> {
      (void)co_await ep.recv(0, 1);
    };
    auto sender = [](Endpoint& ep, std::vector<std::byte> d) -> Task<> {
      (void)co_await ep.send(1, 1, std::move(d));
    };
    receiver(b).detach();
    sender(a, pattern(size)).detach();
    cluster.engine().run();
  }
};

// The eager path models exactly three byte movements: user -> bounce on the
// sender (charged in Endpoint::send), kernel ring -> registered buffer in
// the receive ISR (charged per fragment in KernelAgent::rx_data), and
// bounce -> user at match time (charged in handle_eager / recv).
TEST(CopyAudit, EagerPathChargesExactlyThreePayloadCopies) {
  Pair p;
  p.transfer(64);  // warm: dial + first-use setup, outside the measurement

  for (const std::size_t size : {std::size_t{1000}, std::size_t{4000}}) {
    buf::reset_copy_stats();
    p.transfer(size);
    const auto st = buf::copy_stats();
    EXPECT_EQ(st.copies, 2 + nfrags(size)) << "size=" << size;
    EXPECT_EQ(st.bytes, 3 * size) << "size=" << size;
  }
}

// The rendezvous path is zero-copy except the receive ISR's per-fragment
// gather into the registered region; the only other charges are the RTS and
// RTR control bodies crossing the receive ISR (FIN rides an empty frame).
TEST(CopyAudit, RendezvousPathChargesPayloadExactlyOnce) {
  Pair p;
  p.transfer(64);  // warm

  const std::size_t size = 100'000;  // over the 16 KiB eager cutoff
  buf::reset_copy_stats();
  p.transfer(size);
  const auto st = buf::copy_stats();
  EXPECT_EQ(st.copies, nfrags(size) + 2);
  EXPECT_EQ(st.bytes, size + sizeof(mp::RtsBody) + sizeof(mp::RtrBody));
}

// Fig3-style raw M-VIA streaming: no endpoint layer, so the only modeled
// copy is the receive ISR gather — per fragment, totalling the payload.
TEST(CopyAudit, Fig3StyleViaStreamChargesIsrGatherOnly) {
  benchutil::ViaPair p;
  constexpr int kCount = 20;
  constexpr std::int64_t kSize = 4000;
  for (int i = 0; i < kCount + 4; ++i) p.b->post_recv(kSize + 64);

  buf::reset_copy_stats();
  auto stream = [](via::Vi& vi, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      co_await vi.send(benchutil::payload(kSize));
    }
  };
  auto drain = [](via::Vi& vi, int n) -> Task<> {
    for (int i = 0; i < n; ++i) (void)co_await vi.recv_completion();
  };
  stream(*p.a, kCount).detach();
  drain(*p.b, kCount).detach();
  p.cluster.run();

  const auto st = buf::copy_stats();
  EXPECT_EQ(st.copies, kCount * nfrags(kSize));
  EXPECT_EQ(st.bytes, kCount * static_cast<std::uint64_t>(kSize));
}

// Fig5-style collective on a small torus: the charged-copy count of a
// broadcast is a structural property of the spanning tree (n-1 eager
// messages, three charges each), so it is pinned exactly — and it must be
// identical on a second run of an identical world (accounting determinism).
TEST(CopyAudit, Fig5StyleBroadcastCountIsPinnedAndRepeatable) {
  constexpr std::size_t kSize = 256;
  auto run_once = []() -> buf::CopyStats {
    cluster::GigeMeshCluster c([] {
      GigeMeshConfig cfg;
      cfg.shape = topo::Coord{2, 2};
      return cfg;
    }());
    std::vector<std::unique_ptr<Endpoint>> eps;
    for (topo::Rank r = 0; r < c.size(); ++r) {
      eps.push_back(std::make_unique<Endpoint>(c.agent(r), mp::CoreParams{}));
    }
    auto node = [](Endpoint& ep) -> Task<> {
      std::vector<std::byte> data(kSize, std::byte{0x11});
      co_await coll::broadcast(ep, 0, data, 100);
    };
    buf::reset_copy_stats();
    for (auto& ep : eps) node(*ep).detach();
    c.run();
    return buf::copy_stats();
  };

  const buf::CopyStats first = run_once();
  // 4 ranks -> 3 tree edges; each eager transfer charges three times.
  EXPECT_EQ(first.copies, 9u);
  EXPECT_EQ(first.bytes, 3 * 3 * kSize);

  const buf::CopyStats second = run_once();
  EXPECT_EQ(second.copies, first.copies);
  EXPECT_EQ(second.bytes, first.bytes);
}

}  // namespace
