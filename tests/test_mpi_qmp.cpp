// Tests for the MPI 1.1 subset, the QMP API, and the mesh collective
// algorithms they share.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "cluster/gige_mesh.hpp"
#include "coll/scatter.hpp"
#include "coll/tree.hpp"
#include "mp/endpoint.hpp"
#include "mpi/mpi.hpp"
#include "qmp/qmp.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using sim::Task;

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 31 + i * 3) & 0xff);
  }
  return v;
}

struct World {
  GigeMeshCluster cluster;
  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  std::vector<std::unique_ptr<mpi::Comm>> comms;
  std::vector<std::unique_ptr<qmp::Machine>> machines;
  int finished = 0;

  explicit World(topo::Coord shape)
      : cluster([&] {
          GigeMeshConfig cfg;
          cfg.shape = shape;
          return cfg;
        }()) {
    for (topo::Rank r = 0; r < cluster.size(); ++r) {
      eps.push_back(std::make_unique<mp::Endpoint>(cluster.agent(r),
                                                   mp::CoreParams{}));
      comms.push_back(std::make_unique<mpi::Comm>(*eps.back()));
      machines.push_back(std::make_unique<qmp::Machine>(*eps.back()));
    }
  }

  mpi::Comm& comm(int r) { return *comms.at(static_cast<std::size_t>(r)); }
  qmp::Machine& qmp_at(int r) {
    return *machines.at(static_cast<std::size_t>(r));
  }

  template <typename F>
  void run_spmd_comm(F prog) {
    auto wrapper = [](F p, mpi::Comm& c, int& count) -> Task<> {
      co_await p(c);
      ++count;
    };
    for (auto& c : comms) wrapper(prog, *c, finished).detach();
    cluster.run();
    ASSERT_EQ(finished, static_cast<int>(comms.size()))
        << "an MPI rank deadlocked";
  }

  template <typename F>
  void run_spmd_qmp(F prog) {
    auto wrapper = [](F p, qmp::Machine& m, int& count) -> Task<> {
      co_await p(m);
      ++count;
    };
    for (auto& m : machines) wrapper(prog, *m, finished).detach();
    cluster.run();
    ASSERT_EQ(finished, static_cast<int>(machines.size()))
        << "a QMP node deadlocked";
  }
};

// --- MPI point-to-point ------------------------------------------------------

TEST(MpiP2p, TypedRingPass) {
  World w(topo::Coord{4});
  auto prog = [](mpi::Comm& c) -> Task<> {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    std::vector<int> tok{c.rank()};
    if (c.rank() == 0) {
      co_await c.send_vec(tok, next, 0);
      auto got = co_await c.recv_vec<int>(prev, 0);
      EXPECT_EQ(got.size(), 4u);  // everyone appended
    } else {
      auto got = co_await c.recv_vec<int>(prev, 0);
      got.push_back(c.rank());
      co_await c.send_vec(got, next, 0);
    }
  };
  w.run_spmd_comm(prog);
}

TEST(MpiP2p, SendrecvExchangesWithoutDeadlock) {
  World w(topo::Coord{4});
  auto prog = [](mpi::Comm& c) -> Task<> {
    const int partner = c.rank() ^ 1;  // 0<->1, 2<->3
    std::vector<std::byte> in;
    auto st = co_await c.sendrecv(
        pattern(64, static_cast<std::uint8_t>(c.rank())), partner, 1, in,
        partner, 1);
    EXPECT_EQ(st.source, partner);
    EXPECT_EQ(in, pattern(64, static_cast<std::uint8_t>(partner)));
  };
  w.run_spmd_comm(prog);
}

TEST(MpiP2p, NonblockingWaitall) {
  World w(topo::Coord{4});
  auto prog = [](mpi::Comm& c) -> Task<> {
    if (c.rank() == 0) {
      std::vector<mpi::Request> reqs;
      for (int r = 1; r < c.size(); ++r) {
        reqs.push_back(c.isend(pattern(100, static_cast<std::uint8_t>(r)),
                               r, 4));
        reqs.push_back(c.irecv(r, 5));
      }
      co_await c.waitall(reqs);
      for (std::size_t i = 1; i < reqs.size(); i += 2) {
        auto data = reqs[i].take_data();
        EXPECT_EQ(data.size(), 50u);
      }
    } else {
      std::vector<std::byte> in;
      auto st = co_await c.recv(in, 0, 4);
      EXPECT_EQ(st.count, 100);
      co_await c.send(pattern(50), 0, 5);
    }
  };
  w.run_spmd_comm(prog);
}

TEST(MpiP2p, AnySourceStatusReportsTruth) {
  World w(topo::Coord{4});
  auto prog = [](mpi::Comm& c) -> Task<> {
    if (c.rank() == 0) {
      for (int i = 1; i < c.size(); ++i) {
        std::vector<std::byte> in;
        auto st = co_await c.recv(in, mpi::kAnySource, mpi::kAnyTag);
        EXPECT_EQ(st.tag, st.source * 10);  // senders use tag = rank*10
        EXPECT_EQ(st.count, st.source * 7);
      }
    } else {
      co_await c.send(pattern(static_cast<std::size_t>(c.rank() * 7)), 0,
                      c.rank() * 10);
    }
  };
  w.run_spmd_comm(prog);
}

TEST(MpiP2p, TagOutOfRangeThrows) {
  World w(topo::Coord{4});
  auto prog = [](mpi::Comm& c) -> Task<> {
    if (c.rank() == 0) {
      EXPECT_THROW(co_await c.send(pattern(8), 1, mpi::kTagUb + 1),
                   std::invalid_argument);
      co_await c.send(pattern(8), 1, mpi::kTagUb);
    } else if (c.rank() == 1) {
      std::vector<std::byte> in;
      (void)co_await c.recv(in, 0, mpi::kTagUb);
    }
  };
  w.run_spmd_comm(prog);
}

// --- collectives -------------------------------------------------------------

class CollShapes : public ::testing::TestWithParam<topo::Coord> {};

TEST_P(CollShapes, BroadcastDeliversEverywhere) {
  World w(GetParam());
  const int root = w.cluster.size() / 3;
  auto payload = pattern(1000, 7);
  auto prog = [root, payload](mpi::Comm& c) -> Task<> {
    std::vector<std::byte> data = c.rank() == root ? payload
                                                   : std::vector<std::byte>{};
    co_await c.bcast(data, root);
    EXPECT_EQ(data, payload) << "rank " << c.rank();
  };
  w.run_spmd_comm(prog);
}

TEST_P(CollShapes, ReduceSumsToRoot) {
  World w(GetParam());
  const int root = 0;
  const int n = w.cluster.size();
  auto prog = [root, n](mpi::Comm& c) -> Task<> {
    auto data = mpi::to_bytes(std::vector<double>{double(c.rank()), 1.0});
    co_await c.reduce(data, coll::sum_op<double>(), root);
    if (c.rank() == root) {
      auto v = mpi::from_bytes<double>(data);
      EXPECT_DOUBLE_EQ(v[0], n * (n - 1) / 2.0);
      EXPECT_DOUBLE_EQ(v[1], n);
    }
  };
  w.run_spmd_comm(prog);
}

TEST_P(CollShapes, AllreduceGivesEveryoneTheSum) {
  World w(GetParam());
  const int n = w.cluster.size();
  auto prog = [n](mpi::Comm& c) -> Task<> {
    const double sum = co_await c.allreduce_sum(double(c.rank()) + 0.5);
    EXPECT_DOUBLE_EQ(sum, n * (n - 1) / 2.0 + 0.5 * n) << "rank " << c.rank();
  };
  w.run_spmd_comm(prog);
}

TEST_P(CollShapes, BarrierActuallySynchronizes) {
  World w(GetParam());
  auto& eng = w.cluster.engine();
  std::vector<sim::Time> before(static_cast<std::size_t>(w.cluster.size()));
  std::vector<sim::Time> after(static_cast<std::size_t>(w.cluster.size()));
  auto prog = [&eng, &before, &after](mpi::Comm& c) -> Task<> {
    // Stagger arrival: rank r works r*50us before the barrier.
    co_await sim::delay(eng, c.rank() * 50_us);
    before[static_cast<std::size_t>(c.rank())] = eng.now();
    co_await c.barrier();
    after[static_cast<std::size_t>(c.rank())] = eng.now();
  };
  w.run_spmd_comm(prog);
  const sim::Time latest_arrival =
      *std::max_element(before.begin(), before.end());
  for (sim::Time t : after) EXPECT_GE(t, latest_arrival);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CollShapes,
                         ::testing::Values(topo::Coord{8}, topo::Coord{4, 4},
                                           topo::Coord{3, 3, 3},
                                           topo::Coord{2, 4, 4}),
                         [](const auto& info) {
                           std::string name;
                           for (int d = 0; d < info.param.ndims(); ++d) {
                             if (d) name += "x";
                             name += std::to_string(info.param[d]);
                           }
                           return name;
                         });

class ScatterCase
    : public ::testing::TestWithParam<std::pair<topo::Coord, coll::ScatterAlg>> {
};

TEST_P(ScatterCase, ScatterDeliversPersonalizedChunks) {
  const auto& [shape, alg] = GetParam();
  World w(shape);
  const int root = 0;
  const int n = w.cluster.size();
  auto make_chunks = [n] {
    std::vector<std::vector<std::byte>> chunks;
    for (int d = 0; d < n; ++d) {
      chunks.push_back(pattern(64 + static_cast<std::size_t>(d) * 8,
                               static_cast<std::uint8_t>(d)));
    }
    return chunks;
  };
  auto prog = [root, make_chunks, alg](mpi::Comm& c) -> Task<> {
    std::vector<std::vector<std::byte>> chunks;
    std::vector<std::byte> mine;
    if (c.rank() == root) {
      chunks = make_chunks();
      mine = co_await c.scatter(&chunks, root, alg);
    } else {
      mine = co_await c.scatter(nullptr, root, alg);
    }
    EXPECT_EQ(mine, pattern(64 + static_cast<std::size_t>(c.rank()) * 8,
                            static_cast<std::uint8_t>(c.rank())))
        << "rank " << c.rank();
  };
  w.run_spmd_comm(prog);
}

TEST_P(ScatterCase, GatherCollectsAll) {
  const auto& [shape, alg] = GetParam();
  World w(shape);
  const int root = w.cluster.size() - 1;
  auto prog = [root, alg](mpi::Comm& c) -> Task<> {
    auto all = co_await c.gather(
        pattern(32, static_cast<std::uint8_t>(c.rank())), root, alg);
    if (c.rank() == root) {
      EXPECT_EQ(all.size(), static_cast<std::size_t>(c.size()));
      for (int r = 0; r < c.size() &&
                      all.size() == static_cast<std::size_t>(c.size());
           ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)],
                  pattern(32, static_cast<std::uint8_t>(r)))
            << "chunk " << r;
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  };
  w.run_spmd_comm(prog);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ScatterCase,
    ::testing::Values(std::pair{topo::Coord{8}, coll::ScatterAlg::kSdf},
                      std::pair{topo::Coord{8}, coll::ScatterAlg::kOpt},
                      std::pair{topo::Coord{4, 4}, coll::ScatterAlg::kSdf},
                      std::pair{topo::Coord{4, 4}, coll::ScatterAlg::kOpt},
                      std::pair{topo::Coord{3, 3, 3},
                                coll::ScatterAlg::kOpt}),
    [](const auto& info) {
      std::string name;
      for (int d = 0; d < info.param.first.ndims(); ++d) {
        if (d) name += "x";
        name += std::to_string(info.param.first[d]);
      }
      return name +
             (info.param.second == coll::ScatterAlg::kSdf ? "_sdf" : "_opt");
    });

TEST(MpiAlltoall, EveryPairExchanges) {
  World w(topo::Coord{3, 3});
  auto prog = [](mpi::Comm& c) -> Task<> {
    std::vector<std::vector<std::byte>> chunks;
    for (int d = 0; d < c.size(); ++d) {
      chunks.push_back(
          pattern(16, static_cast<std::uint8_t>(c.rank() * 16 + d)));
    }
    auto got = co_await c.alltoall(std::move(chunks));
    EXPECT_EQ(got.size(), static_cast<std::size_t>(c.size()));
    for (int s = 0; s < c.size() &&
                    got.size() == static_cast<std::size_t>(c.size());
         ++s) {
      EXPECT_EQ(got[static_cast<std::size_t>(s)],
                pattern(16, static_cast<std::uint8_t>(s * 16 + c.rank())))
          << "from " << s;
    }
  };
  w.run_spmd_comm(prog);
}

TEST(MpiColl, BackToBackCollectivesDoNotMix) {
  World w(topo::Coord{4, 4});
  auto prog = [](mpi::Comm& c) -> Task<> {
    for (int iter = 0; iter < 5; ++iter) {
      auto payload = pattern(100, static_cast<std::uint8_t>(iter));
      std::vector<std::byte> data = c.rank() == 0 ? payload
                                                  : std::vector<std::byte>{};
      co_await c.bcast(data, 0);
      EXPECT_EQ(data, payload) << "iter " << iter;
      const double s = co_await c.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(s, c.size());
    }
  };
  w.run_spmd_comm(prog);
}

// --- broadcast tree properties ------------------------------------------------

TEST(BcastTree, ParentChildRelationConsistent) {
  const topo::Torus t(topo::Coord{4, 8, 8});
  for (topo::Rank root : {0, 100, 255}) {
    int edges = 0;
    for (topo::Rank me = 0; me < t.size(); ++me) {
      for (topo::Rank kid : coll::bcast_children(t, root, me)) {
        auto p = coll::bcast_parent(t, root, kid);
        ASSERT_TRUE(p);
        EXPECT_EQ(*p, me) << "root " << root << " me " << me << " kid "
                          << kid;
        ++edges;
      }
    }
    // A spanning tree has exactly size-1 edges.
    EXPECT_EQ(edges, t.size() - 1);
  }
}

TEST(BcastTree, DepthMatchesPaperStepCount) {
  // Paper: broadcast on 4x8x8 takes ~10 steps (= 2 + 4 + 4 = sum of ext/2).
  const topo::Torus t(topo::Coord{4, 8, 8});
  int depth = 0;
  for (topo::Rank me = 0; me < t.size(); ++me) {
    int d = 0;
    topo::Rank cur = me;
    while (auto p = coll::bcast_parent(t, 0, cur)) {
      cur = *p;
      ++d;
    }
    depth = std::max(depth, d);
  }
  EXPECT_EQ(depth, 10);
}

// --- QMP ---------------------------------------------------------------------

TEST(Qmp, TopologyQueries) {
  World w(topo::Coord{4, 8, 8});
  auto& m = w.qmp_at(37);
  EXPECT_EQ(m.node_number(), 37);
  EXPECT_EQ(m.num_nodes(), 256);
  EXPECT_EQ(m.num_dimensions(), 3);
  EXPECT_EQ(m.logical_dimensions(), (std::vector<int>{4, 8, 8}));
  const auto c = m.logical_coordinates();
  const topo::Torus t(topo::Coord{4, 8, 8});
  const auto expect = t.coord(37);
  for (int d = 0; d < 3; ++d) EXPECT_EQ(c[static_cast<std::size_t>(d)], expect[d]);
  EXPECT_EQ(m.neighbor_rank(0, +1), t.rank(*t.neighbor(expect, {0, +1})));
}

TEST(Qmp, RelativeHaloExchange) {
  // Every node sends its rank pattern +x and receives from -x; after the
  // exchange each node holds its -x neighbour's pattern. Handles are then
  // reused for a second round (QMP semantics).
  World w(topo::Coord{4, 4});
  auto prog = [](qmp::Machine& m) -> Task<> {
    const topo::Torus& t = m.endpoint().agent().torus();
    for (int round = 0; round < 2; ++round) {
      qmp::MsgMem sendmem(64);
      qmp::MsgMem recvmem(64);
      sendmem.buf = pattern(64, static_cast<std::uint8_t>(
                                    m.node_number() * 2 + round));
      auto sh = m.declare_send_relative(sendmem, 0, +1);
      auto rh = m.declare_receive_relative(recvmem, 0, -1);
      m.start(sh);
      m.start(rh);
      co_await m.wait(rh);
      co_await m.wait(sh);
      const auto nb = t.neighbor(static_cast<topo::Rank>(m.node_number()),
                                 topo::Dir{0, -1});
      EXPECT_EQ(recvmem.buf,
                pattern(64, static_cast<std::uint8_t>(*nb * 2 + round)));
    }
  };
  w.run_spmd_qmp(prog);
}

TEST(Qmp, GlobalSumAndMax) {
  World w(topo::Coord{2, 4});
  auto prog = [](qmp::Machine& m) -> Task<> {
    const double sum = co_await m.sum_double(1.0 + m.node_number());
    EXPECT_DOUBLE_EQ(sum, 8 + 28);  // n + sum(0..7)
    const double mx = co_await m.max_double(double(m.node_number() % 5));
    EXPECT_DOUBLE_EQ(mx, 4.0);
    std::vector<double> arr{double(m.node_number()), 2.0};
    co_await m.sum_double_array(arr);
    EXPECT_DOUBLE_EQ(arr[0], 28.0);
    EXPECT_DOUBLE_EQ(arr[1], 16.0);
  };
  w.run_spmd_qmp(prog);
}

TEST(Qmp, BroadcastAndBarrier) {
  World w(topo::Coord{2, 4});
  auto prog = [](qmp::Machine& m) -> Task<> {
    std::vector<std::byte> data =
        m.node_number() == 0 ? pattern(256, 3) : std::vector<std::byte>{};
    co_await m.broadcast(data);
    EXPECT_EQ(data, pattern(256, 3));
    co_await m.barrier();
  };
  w.run_spmd_qmp(prog);
}

}  // namespace
