// Additional VIA coverage: unreliable-delivery mode, the kernel qdisc (the
// never-drop software transmit queue), ack cadence, and the cluster report.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/gige_mesh.hpp"
#include "cluster/report.hpp"
#include "sim/engine.hpp"
#include "via/agent.hpp"
#include "via/vi.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using cluster::GigeMeshCluster;
using cluster::GigeMeshConfig;
using sim::Task;
using via::RecvCompletion;
using via::Vi;

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed + i * 11) & 0xff);
  }
  return v;
}

struct Conn {
  Vi* a = nullptr;
  Vi* b = nullptr;
};

Conn connect_pair(GigeMeshCluster& c, topo::Rank ra, topo::Rank rb) {
  Conn conn;
  auto dial = [](via::KernelAgent& ag, net::NodeId to, Vi*& out) -> Task<> {
    out = co_await ag.connect(to, 7);
  };
  auto answer = [](via::KernelAgent& ag, Vi*& out) -> Task<> {
    out = co_await ag.accept(7);
  };
  c.agent(rb).listen(7);
  answer(c.agent(rb), conn.b).detach();
  dial(c.agent(ra), rb, conn.a).detach();
  c.engine().run();
  EXPECT_NE(conn.a, nullptr);
  EXPECT_NE(conn.b, nullptr);
  return conn;
}

TEST(ViaUnreliable, CleanWireDeliversWithoutAcks) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  cfg.via.reliability = via::Reliability::kUnreliable;
  GigeMeshCluster c(cfg);
  Conn conn = connect_pair(c, 0, 1);
  const int n = 30;
  for (int i = 0; i < n + 2; ++i) conn.b->post_recv(8192);
  int got = 0;
  auto receiver = [](Vi& vi, int count, int& cnt) -> Task<> {
    for (int i = 0; i < count; ++i) {
      (void)co_await vi.recv_completion();
      ++cnt;
    }
  };
  auto sender = [](Vi& vi, int count) -> Task<> {
    for (int i = 0; i < count; ++i) {
      co_await vi.send(pattern(4000, static_cast<std::uint8_t>(i)));
    }
  };
  receiver(*conn.b, n, got).detach();
  sender(*conn.a, n).detach();
  c.engine().run();
  EXPECT_EQ(got, n);
  EXPECT_EQ(conn.a->counters().get("retransmits"), 0);
  // No acks at all on an unreliable VI: the reverse wire carried only the
  // single ConnAck of the handshake.
  EXPECT_EQ(c.nic(1, topo::Dir{0, -1}).counters().get("tx_frames") +
                c.nic(1, topo::Dir{0, +1}).counters().get("tx_frames"),
            1);
}

TEST(ViaUnreliable, LostFramesAreSimplyGone) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  cfg.via.reliability = via::Reliability::kUnreliable;
  GigeMeshCluster c(cfg);
  Conn conn = connect_pair(c, 0, 1);
  // Drop everything after connecting: sends complete, nothing arrives,
  // nothing retransmits (that is what "unreliable delivery" means).
  for (topo::Rank r = 0; r < c.size(); ++r) {
    for (topo::Dir d : c.torus().directions(c.torus().coord(r))) {
      c.nic(r, d).wire_params().drop_prob = 1.0;
    }
  }
  conn.b->post_recv(1024);
  auto sender = [](Vi& vi) -> Task<> { co_await vi.send(pattern(100)); };
  sender(*conn.a).detach();
  c.engine().run_until(100_ms);
  EXPECT_EQ(conn.b->counters().get("rx_messages"), 0);
  EXPECT_EQ(conn.a->counters().get("retransmits"), 0);
  EXPECT_EQ(conn.a->counters().get("tx_messages"), 1);
}

TEST(ViaQdisc, KernelQueueAbsorbsRingPressure) {
  // A tiny tx ring forces acks/forwards through the qdisc; nothing may drop.
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  cfg.nic.tx_descriptors = 4;
  GigeMeshCluster c(cfg);
  Conn conn = connect_pair(c, 0, 1);
  const int n = 60;
  for (int i = 0; i < n + 2; ++i) conn.b->post_recv(8192);
  int got = 0;
  auto receiver = [](Vi& vi, int count, int& cnt) -> Task<> {
    for (int i = 0; i < count; ++i) {
      (void)co_await vi.recv_completion();
      ++cnt;
    }
  };
  auto sender = [](Vi& vi, int count) -> Task<> {
    for (int i = 0; i < count; ++i) {
      co_await vi.send(pattern(6000, static_cast<std::uint8_t>(i)));
    }
  };
  receiver(*conn.b, n, got).detach();
  sender(*conn.a, n).detach();
  c.engine().run();
  EXPECT_EQ(got, n);
}

TEST(ViaAcks, CumulativeAckCadenceFollowsAckEvery) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  cfg.via.ack_every = 4;
  GigeMeshCluster c(cfg);
  Conn conn = connect_pair(c, 0, 1);
  const int n = 40;  // 40 single-fragment messages
  for (int i = 0; i < n + 2; ++i) conn.b->post_recv(2048);
  int got = 0;
  auto receiver = [](Vi& vi, int count, int& cnt) -> Task<> {
    for (int i = 0; i < count; ++i) {
      (void)co_await vi.recv_completion();
      ++cnt;
    }
  };
  auto sender = [](Vi& vi, int count) -> Task<> {
    for (int i = 0; i < count; ++i) co_await vi.send(pattern(600));
  };
  receiver(*conn.b, n, got).detach();
  sender(*conn.a, n).detach();
  c.engine().run();
  EXPECT_EQ(got, n);
  // 40 in-order frames, one cumulative ack per 4: ~10 acks back to node 0.
  const auto acks_rxd =
      c.nic(0, topo::Dir{0, +1}).counters().get("rx_frames");
  EXPECT_GE(acks_rxd, 9);
  EXPECT_LE(acks_rxd, 13);
}

TEST(ClusterReport, AggregatesCounters) {
  GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  GigeMeshCluster c(cfg);
  Conn conn = connect_pair(c, 0, 2);  // 2 hops: forwarding involved
  conn.b->post_recv(4096);
  bool done = false;
  auto receiver = [](Vi& vi, bool& flag) -> Task<> {
    (void)co_await vi.recv_completion();
    flag = true;
  };
  auto sender = [](Vi& vi) -> Task<> { co_await vi.send(pattern(2000)); };
  receiver(*conn.b, done).detach();
  sender(*conn.a).detach();
  c.engine().run();
  ASSERT_TRUE(done);
  const auto report = cluster::make_report(c);
  EXPECT_GT(report.sim_seconds, 0);
  EXPECT_GT(report.tx_frames, 0);
  EXPECT_EQ(report.tx_frames, report.rx_frames);  // lossless run
  EXPECT_GT(report.forwarded_frames, 0);
  EXPECT_GT(report.interrupts, 0);
  EXPECT_EQ(report.checksum_drops, 0);
  EXPECT_FALSE(report.str().empty());
}

}  // namespace
