// Tests for frames/checksums, links, the crossbar, the CPU cost model and the
// GigE NIC model (rings, DMA/wire pipelining, coalescing, checksum drops).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "buf/pool.hpp"
#include "hw/cpu.hpp"
#include "hw/nic.hpp"
#include "hw/node.hpp"
#include "hw/params.hpp"
#include "net/crossbar.hpp"
#include "net/frame.hpp"
#include "net/link.hpp"
#include "sim/engine.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::sim::literals;
using sim::Engine;
using sim::Task;

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

// --- frame / crc -----------------------------------------------------------

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (classic check value).
  auto data = bytes_of("123456789");
  EXPECT_EQ(net::crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(net::crc32({}), 0x00000000u);
}

TEST(Frame, ChecksumDetectsBitFlip) {
  net::Frame f;
  f.payload = buf::Pool::instance().adopt(bytes_of("hello mesh"));
  f.stamp_checksum();
  EXPECT_TRUE(f.checksum_ok());
  f.corrupt_payload_byte(3, std::byte{0x01});
  EXPECT_FALSE(f.checksum_ok());
}

// --- link -------------------------------------------------------------------

TEST(SimplexPipe, SerializesAtLineRate) {
  Engine eng;
  net::LinkParams lp = hw::gige_link_params();
  lp.propagation = 0;
  net::SimplexPipe pipe(eng, lp, sim::Rng(1), "t");
  std::vector<sim::Time> arrivals;
  pipe.set_sink([&](net::Frame) { arrivals.push_back(eng.now()); });
  for (int i = 0; i < 3; ++i) {
    net::Frame f;
    f.wire_bytes = 1500;
    pipe.send(std::move(f));
  }
  eng.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // (1500+38)*8 ns = 12304 ns per frame, back to back.
  EXPECT_EQ(arrivals[0], 12304);
  EXPECT_EQ(arrivals[1], 2 * 12304);
  EXPECT_EQ(arrivals[2], 3 * 12304);
}

TEST(SimplexPipe, SmallFramesPayMinimumSize) {
  Engine eng;
  net::LinkParams lp = hw::gige_link_params();
  lp.propagation = 0;
  net::SimplexPipe pipe(eng, lp, sim::Rng(1), "t");
  sim::Time arrival = -1;
  pipe.set_sink([&](net::Frame) { arrival = eng.now(); });
  net::Frame f;
  f.wire_bytes = 1;  // padded to 64 + 38 overhead = 816 ns
  pipe.send(std::move(f));
  eng.run();
  EXPECT_EQ(arrival, 816);
}

TEST(SimplexPipe, DropInjection) {
  Engine eng;
  net::LinkParams lp = hw::gige_link_params();
  lp.drop_prob = 0.5;
  net::SimplexPipe pipe(eng, lp, sim::Rng(7), "t");
  int delivered = 0;
  pipe.set_sink([&](net::Frame) { ++delivered; });
  for (int i = 0; i < 1000; ++i) {
    net::Frame f;
    f.wire_bytes = 100;
    pipe.send(std::move(f));
  }
  eng.run();
  EXPECT_GT(delivered, 400);
  EXPECT_LT(delivered, 600);
  EXPECT_EQ(delivered + pipe.counters().get("dropped"), 1000);
}

TEST(SimplexPipe, CorruptionBreaksChecksum) {
  Engine eng;
  net::LinkParams lp = hw::gige_link_params();
  lp.corrupt_prob = 1.0;
  net::SimplexPipe pipe(eng, lp, sim::Rng(7), "t");
  bool ok = true;
  pipe.set_sink([&](net::Frame f) { ok = f.checksum_ok(); });
  net::Frame f;
  f.payload = buf::Pool::instance().adopt(bytes_of("payload-bytes"));
  f.wire_bytes = static_cast<std::int64_t>(f.payload.size());
  f.stamp_checksum();
  pipe.send(std::move(f));
  eng.run();
  EXPECT_FALSE(ok);
}

// --- crossbar ----------------------------------------------------------------

TEST(Crossbar, RoutesByDestinationWithoutCrossTraffic) {
  Engine eng;
  net::LinkParams lp = hw::myrinet_link_params();
  lp.propagation = 0;
  net::Crossbar xbar(eng, 4, lp, 500_ns, sim::Rng(3));
  std::vector<std::vector<sim::Time>> arrivals(4);
  for (int p = 0; p < 4; ++p) {
    xbar.set_egress_sink(
        p, [&arrivals, p, &eng](net::Frame) { arrivals[p].push_back(eng.now()); });
  }
  // Two flows to different outputs do not serialize against each other.
  for (int i = 0; i < 2; ++i) {
    net::Frame a;
    a.dst = 1;
    a.wire_bytes = 1000;
    xbar.ingress(std::move(a));
    net::Frame b;
    b.dst = 2;
    b.wire_bytes = 1000;
    xbar.ingress(std::move(b));
  }
  eng.run();
  ASSERT_EQ(arrivals[1].size(), 2u);
  ASSERT_EQ(arrivals[2].size(), 2u);
  EXPECT_EQ(arrivals[1], arrivals[2]);  // parallel, identical timing
  EXPECT_TRUE(arrivals[0].empty());
  EXPECT_THROW(
      {
        net::Frame bad;
        bad.dst = 99;
        xbar.ingress(std::move(bad));
      },
      std::out_of_range);
}

// --- cpu ---------------------------------------------------------------------

TEST(Cpu, CopyTimeHotVsCold) {
  hw::HostParams hp;
  EXPECT_EQ(hp.copy_time(1'000'000, true),
            100 + sim::transfer_time(1'000'000, hp.copy_bytes_per_sec_hot));
  EXPECT_EQ(hp.copy_time(1'000'000, false),
            100 + sim::transfer_time(1'000'000, hp.copy_bytes_per_sec_cold));
  EXPECT_GT(hp.copy_time(1000, false), hp.copy_time(1000, true));
}

TEST(Cpu, UtilizationTracksBusyTime) {
  Engine eng;
  hw::Cpu cpu(eng, hw::HostParams{});
  cpu.busy(300_ns).detach();
  eng.run_until(1000_ns);
  EXPECT_EQ(cpu.busy_time(), 300);
  EXPECT_NEAR(cpu.utilization(), 0.3, 1e-9);
}

// --- nic ----------------------------------------------------------------------

struct Capture : hw::NicDriver {
  std::vector<std::pair<sim::Time, net::Frame>> frames;
  sim::Engine* eng = nullptr;
  sim::Duration per_frame = 0;
  Task<> handle_rx(net::Frame f, hw::IsrContext& ctx) override {
    if (per_frame > 0) co_await ctx.spend(per_frame);
    frames.emplace_back(eng->now(), std::move(f));
  }
};

struct NicPair {
  Engine eng;
  hw::NodeHw a;
  hw::NodeHw b;
  hw::Nic* na;
  hw::Nic* nb;
  Capture cap;

  explicit NicPair(hw::NicParams np = {}, net::LinkParams lp = hw::gige_link_params())
      : a(eng, 0, hw::HostParams{}, hw::BusParams{}),
        b(eng, 1, hw::HostParams{}, hw::BusParams{}) {
    na = &a.add_nic(np, lp, sim::Rng(1), "a0");
    nb = &b.add_nic(np, lp, sim::Rng(2), "b0");
    na->set_peer(nb->rx_entry());
    nb->set_peer(na->rx_entry());
    cap.eng = &eng;
    nb->set_driver(&cap);
  }
};

net::Frame make_frame(int bytes, net::NodeId src = 0, net::NodeId dst = 1) {
  net::Frame f;
  f.src = src;
  f.dst = dst;
  f.payload = buf::Pool::instance().adopt(
      std::vector<std::byte>(static_cast<std::size_t>(bytes), std::byte{0xab}));
  f.wire_bytes = bytes + 28;  // typical protocol header
  return f;
}

TEST(Nic, DeliversFrameThroughFullPath) {
  NicPair p;
  ASSERT_TRUE(p.na->post_tx(make_frame(100)));
  p.eng.run();
  ASSERT_EQ(p.cap.frames.size(), 1u);
  EXPECT_EQ(p.cap.frames[0].second.payload.size(), 100u);
  EXPECT_TRUE(p.cap.frames[0].second.checksum_ok());
  // Latency must include DMA + wire + coalescing delay + isr entry.
  const auto t = p.cap.frames[0].first;
  EXPECT_GT(t, p.na->params().rx_interrupt_delay);
  EXPECT_LT(t, 20'000);  // and stay in the ~15 us ballpark for 100 B
  EXPECT_EQ(p.nb->counters().get("rx_frames"), 1);
  EXPECT_EQ(p.nb->counters().get("interrupts"), 1);
}

TEST(Nic, CoalescingBatchesInterruptsForSmallFrames) {
  // Small frames arrive ~1.9 us apart at line rate, well inside the 9.5 us
  // coalescing window, so several frames share one interrupt. (Full-size
  // frames arrive ~11.7 us apart and legitimately interrupt one by one.)
  NicPair p;
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(p.na->post_tx(make_frame(200)));
  }
  p.eng.run();
  EXPECT_EQ(p.cap.frames.size(), 32u);
  EXPECT_LT(p.nb->counters().get("interrupts"), 16);
  EXPECT_GE(p.nb->counters().get("interrupts"), 1);
}

TEST(Nic, NapiPollingReducesInterruptsUnderLoad) {
  // With NAPI (paper sec. 7 future work) the first frame interrupts, then
  // polling drains the stream; interrupts re-arm only when the ring idles.
  hw::NicParams np;
  np.napi = true;
  NicPair p(np);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(p.na->post_tx(make_frame(1400)));
  }
  p.eng.run();
  EXPECT_EQ(p.cap.frames.size(), 64u);
  EXPECT_LE(p.nb->counters().get("interrupts"), 4);
  EXPECT_GT(p.nb->counters().get("napi_polls"), 0);
}

TEST(Nic, NapiReenablesInterruptsWhenIdle) {
  hw::NicParams np;
  np.napi = true;
  NicPair p(np);
  // Burst, long idle gap, burst: the second burst must raise an interrupt
  // again (polling mode exited in between).
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(p.na->post_tx(make_frame(1400)));
  p.eng.run();
  const auto ints_after_first = p.nb->counters().get("interrupts");
  EXPECT_GE(ints_after_first, 1);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(p.na->post_tx(make_frame(1400)));
  p.eng.run();
  EXPECT_EQ(p.cap.frames.size(), 16u);
  EXPECT_GT(p.nb->counters().get("interrupts"), ints_after_first);
}

TEST(Nic, IsrBatchesUnderCpuOverload) {
  // While the receiving CPU is pinned by user work, the pending ISR cannot
  // run; frames accumulate in the ring and a single ISR drains them all.
  NicPair p;
  p.b.cpu().busy(2_ms, hw::Cpu::kUser).detach();
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(p.na->post_tx(make_frame(1400)));
  }
  p.eng.run();
  EXPECT_EQ(p.cap.frames.size(), 32u);
  EXPECT_LE(p.nb->counters().get("interrupts"), 2);
}

TEST(Nic, SteadyStateThroughputIsWireLimited) {
  NicPair p;
  const int n = 200;
  const int payload = 1444;  // 1472 modelled on wire with 28B header
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(p.na->post_tx(make_frame(payload)));
  }
  p.eng.run();
  ASSERT_EQ(p.cap.frames.size(), static_cast<std::size_t>(n));
  const double secs = sim::to_sec(p.cap.frames.back().first);
  const double mbps = n * payload / 1e6 / secs;
  // Wire bound: 125 MB/s * 1444/(1472+38) = ~119 MB/s. DMA at 800 MB/s and
  // the ISR must not be the bottleneck.
  EXPECT_GT(mbps, 105.0);
  EXPECT_LT(mbps, 122.0);
}

TEST(Nic, TxRingFullRejectsAndSignals) {
  hw::NicParams np;
  np.tx_descriptors = 4;
  NicPair p(np);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (p.na->post_tx(make_frame(1000))) ++accepted;
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(p.na->counters().get("tx_ring_full"), 6);
  p.eng.run();
  EXPECT_EQ(p.cap.frames.size(), 4u);
  EXPECT_EQ(p.na->tx_free(), 4);
}

TEST(Nic, RxChecksumDropOnCorruptingWire) {
  net::LinkParams lp = hw::gige_link_params();
  lp.corrupt_prob = 1.0;
  NicPair p(hw::NicParams{}, lp);
  ASSERT_TRUE(p.na->post_tx(make_frame(500)));
  p.eng.run();
  EXPECT_TRUE(p.cap.frames.empty());
  EXPECT_EQ(p.nb->counters().get("rx_checksum_drop"), 1);
}

TEST(Nic, RxRingOverflowDrops) {
  hw::NicParams np;
  np.rx_descriptors = 8;
  np.rx_interrupt_delay = 10_ms;  // ISR never runs during the burst
  NicPair p(np);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(p.na->post_tx(make_frame(200)));
  }
  p.eng.run_until(5_ms);
  EXPECT_EQ(p.nb->counters().get("rx_ring_full"), 24);
}

TEST(Nic, IsrPreemptsQueuedUserWork) {
  NicPair p;
  // Saturate the receiving CPU with queued user work, then deliver a frame:
  // the ISR must run before the queued user slices.
  std::vector<std::string> order;
  auto user_work = [](hw::Cpu& cpu, std::vector<std::string>& log,
                      int i) -> Task<> {
    co_await cpu.busy(50_us);
    log.push_back("user" + std::to_string(i));
  };
  user_work(p.b.cpu(), order, 0).detach();
  user_work(p.b.cpu(), order, 1).detach();
  ASSERT_TRUE(p.na->post_tx(make_frame(100)));
  p.eng.run();
  ASSERT_EQ(p.cap.frames.size(), 1u);
  // Frame arrives ~15us in, while user0 still runs; ISR then beats user1.
  EXPECT_LT(p.cap.frames[0].first, 100_us);
  EXPECT_EQ(order.front(), "user0");
}

TEST(NodeHw, SharedBusSerializesAdapterDma) {
  Engine eng;
  hw::NodeHw node(eng, 0, hw::HostParams{}, hw::BusParams{});
  hw::NodeHw peer0(eng, 1, hw::HostParams{}, hw::BusParams{});
  hw::NodeHw peer1(eng, 2, hw::HostParams{}, hw::BusParams{});
  auto lp = hw::gige_link_params();
  auto& n0 = node.add_nic({}, lp, sim::Rng(1), "n0");
  auto& n1 = node.add_nic({}, lp, sim::Rng(2), "n1");
  auto& p0 = peer0.add_nic({}, lp, sim::Rng(3), "p0");
  auto& p1 = peer1.add_nic({}, lp, sim::Rng(4), "p1");
  n0.set_peer(p0.rx_entry());
  p0.set_peer(n0.rx_entry());
  n1.set_peer(p1.rx_entry());
  p1.set_peer(n1.rx_entry());
  Capture c0, c1;
  c0.eng = &eng;
  c1.eng = &eng;
  p0.set_driver(&c0);
  p1.set_driver(&c1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(n0.post_tx(make_frame(1400, 0, 1)));
    ASSERT_TRUE(n1.post_tx(make_frame(1400, 0, 2)));
  }
  eng.run();
  EXPECT_EQ(c0.frames.size(), 50u);
  EXPECT_EQ(c1.frames.size(), 50u);
  // Both links still reach near wire rate: bus (1066 MB/s) is not limiting
  // for 2 links, but DMAs really interleaved through one bus resource.
  const double secs = sim::to_sec(
      std::max(c0.frames.back().first, c1.frames.back().first));
  const double total_mbps = 2 * 50 * 1400 / 1e6 / secs;
  EXPECT_GT(total_mbps, 200.0);
}

}  // namespace
