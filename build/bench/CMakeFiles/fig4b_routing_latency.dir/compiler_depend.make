# Empty compiler generated dependencies file for fig4b_routing_latency.
# This may be replaced when dependencies are built.
