file(REMOVE_RECURSE
  "CMakeFiles/fig4b_routing_latency.dir/fig4b_routing_latency.cpp.o"
  "CMakeFiles/fig4b_routing_latency.dir/fig4b_routing_latency.cpp.o.d"
  "fig4b_routing_latency"
  "fig4b_routing_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_routing_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
