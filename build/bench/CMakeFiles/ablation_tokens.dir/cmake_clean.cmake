file(REMOVE_RECURSE
  "CMakeFiles/ablation_tokens.dir/ablation_tokens.cpp.o"
  "CMakeFiles/ablation_tokens.dir/ablation_tokens.cpp.o.d"
  "ablation_tokens"
  "ablation_tokens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
