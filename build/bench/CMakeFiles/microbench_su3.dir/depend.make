# Empty dependencies file for microbench_su3.
# This may be replaced when dependencies are built.
