file(REMOVE_RECURSE
  "CMakeFiles/microbench_su3.dir/microbench_su3.cpp.o"
  "CMakeFiles/microbench_su3.dir/microbench_su3.cpp.o.d"
  "microbench_su3"
  "microbench_su3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_su3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
