# Empty dependencies file for ablation_kernel_reduce.
# This may be replaced when dependencies are built.
