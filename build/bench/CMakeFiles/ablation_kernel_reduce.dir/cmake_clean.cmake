file(REMOVE_RECURSE
  "CMakeFiles/ablation_kernel_reduce.dir/ablation_kernel_reduce.cpp.o"
  "CMakeFiles/ablation_kernel_reduce.dir/ablation_kernel_reduce.cpp.o.d"
  "ablation_kernel_reduce"
  "ablation_kernel_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kernel_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
