# Empty dependencies file for fig2_p2p_via_tcp.
# This may be replaced when dependencies are built.
