file(REMOVE_RECURSE
  "CMakeFiles/fig2_p2p_via_tcp.dir/fig2_p2p_via_tcp.cpp.o"
  "CMakeFiles/fig2_p2p_via_tcp.dir/fig2_p2p_via_tcp.cpp.o.d"
  "fig2_p2p_via_tcp"
  "fig2_p2p_via_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_p2p_via_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
