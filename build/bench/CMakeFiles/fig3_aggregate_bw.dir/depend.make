# Empty dependencies file for fig3_aggregate_bw.
# This may be replaced when dependencies are built.
