file(REMOVE_RECURSE
  "CMakeFiles/fig3_aggregate_bw.dir/fig3_aggregate_bw.cpp.o"
  "CMakeFiles/fig3_aggregate_bw.dir/fig3_aggregate_bw.cpp.o.d"
  "fig3_aggregate_bw"
  "fig3_aggregate_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_aggregate_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
