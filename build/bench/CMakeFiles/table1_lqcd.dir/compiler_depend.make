# Empty compiler generated dependencies file for table1_lqcd.
# This may be replaced when dependencies are built.
