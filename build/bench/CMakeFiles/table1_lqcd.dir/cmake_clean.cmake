file(REMOVE_RECURSE
  "CMakeFiles/table1_lqcd.dir/table1_lqcd.cpp.o"
  "CMakeFiles/table1_lqcd.dir/table1_lqcd.cpp.o.d"
  "table1_lqcd"
  "table1_lqcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_lqcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
