# Empty compiler generated dependencies file for fig4_mpiqmp_p2p.
# This may be replaced when dependencies are built.
