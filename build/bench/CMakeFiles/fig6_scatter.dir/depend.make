# Empty dependencies file for fig6_scatter.
# This may be replaced when dependencies are built.
