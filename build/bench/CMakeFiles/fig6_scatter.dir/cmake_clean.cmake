file(REMOVE_RECURSE
  "CMakeFiles/fig6_scatter.dir/fig6_scatter.cpp.o"
  "CMakeFiles/fig6_scatter.dir/fig6_scatter.cpp.o.d"
  "fig6_scatter"
  "fig6_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
