file(REMOVE_RECURSE
  "CMakeFiles/fig5_collectives.dir/fig5_collectives.cpp.o"
  "CMakeFiles/fig5_collectives.dir/fig5_collectives.cpp.o.d"
  "fig5_collectives"
  "fig5_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
