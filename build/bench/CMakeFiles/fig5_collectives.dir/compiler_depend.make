# Empty compiler generated dependencies file for fig5_collectives.
# This may be replaced when dependencies are built.
