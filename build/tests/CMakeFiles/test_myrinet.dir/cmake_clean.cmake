file(REMOVE_RECURSE
  "CMakeFiles/test_myrinet.dir/test_myrinet.cpp.o"
  "CMakeFiles/test_myrinet.dir/test_myrinet.cpp.o.d"
  "test_myrinet"
  "test_myrinet.pdb"
  "test_myrinet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_myrinet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
