file(REMOVE_RECURSE
  "CMakeFiles/test_tcpstack.dir/test_tcpstack.cpp.o"
  "CMakeFiles/test_tcpstack.dir/test_tcpstack.cpp.o.d"
  "test_tcpstack"
  "test_tcpstack.pdb"
  "test_tcpstack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcpstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
