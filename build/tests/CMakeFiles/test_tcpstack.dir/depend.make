# Empty dependencies file for test_tcpstack.
# This may be replaced when dependencies are built.
