# Empty dependencies file for test_hw_net.
# This may be replaced when dependencies are built.
