file(REMOVE_RECURSE
  "CMakeFiles/test_hw_net.dir/test_hw_net.cpp.o"
  "CMakeFiles/test_hw_net.dir/test_hw_net.cpp.o.d"
  "test_hw_net"
  "test_hw_net.pdb"
  "test_hw_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
