file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_qmp.dir/test_mpi_qmp.cpp.o"
  "CMakeFiles/test_mpi_qmp.dir/test_mpi_qmp.cpp.o.d"
  "test_mpi_qmp"
  "test_mpi_qmp.pdb"
  "test_mpi_qmp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_qmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
