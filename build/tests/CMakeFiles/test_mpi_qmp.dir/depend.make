# Empty dependencies file for test_mpi_qmp.
# This may be replaced when dependencies are built.
