# Empty compiler generated dependencies file for test_lqcd.
# This may be replaced when dependencies are built.
