file(REMOVE_RECURSE
  "CMakeFiles/test_lqcd.dir/test_lqcd.cpp.o"
  "CMakeFiles/test_lqcd.dir/test_lqcd.cpp.o.d"
  "test_lqcd"
  "test_lqcd.pdb"
  "test_lqcd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lqcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
