
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_topo.cpp" "tests/CMakeFiles/test_topo.dir/test_topo.cpp.o" "gcc" "tests/CMakeFiles/test_topo.dir/test_topo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/meshmp_lqcd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meshmp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meshmp_tcpstack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meshmp_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meshmp_qmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meshmp_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meshmp_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meshmp_via.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meshmp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meshmp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meshmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meshmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
