file(REMOVE_RECURSE
  "CMakeFiles/test_via.dir/test_via.cpp.o"
  "CMakeFiles/test_via.dir/test_via.cpp.o.d"
  "test_via"
  "test_via.pdb"
  "test_via[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_via.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
