# Empty compiler generated dependencies file for test_via_modes.
# This may be replaced when dependencies are built.
