file(REMOVE_RECURSE
  "CMakeFiles/test_via_modes.dir/test_via_modes.cpp.o"
  "CMakeFiles/test_via_modes.dir/test_via_modes.cpp.o.d"
  "test_via_modes"
  "test_via_modes.pdb"
  "test_via_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_via_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
