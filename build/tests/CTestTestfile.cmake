# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_hw_net[1]_include.cmake")
include("/root/repo/build/tests/test_lqcd[1]_include.cmake")
include("/root/repo/build/tests/test_mp[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_qmp[1]_include.cmake")
include("/root/repo/build/tests/test_myrinet[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_tcpstack[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_via[1]_include.cmake")
include("/root/repo/build/tests/test_via_modes[1]_include.cmake")
