# Empty compiler generated dependencies file for meshmp_qmp.
# This may be replaced when dependencies are built.
