file(REMOVE_RECURSE
  "libmeshmp_qmp.a"
)
