file(REMOVE_RECURSE
  "CMakeFiles/meshmp_qmp.dir/qmp/qmp.cpp.o"
  "CMakeFiles/meshmp_qmp.dir/qmp/qmp.cpp.o.d"
  "libmeshmp_qmp.a"
  "libmeshmp_qmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshmp_qmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
