file(REMOVE_RECURSE
  "libmeshmp_via.a"
)
