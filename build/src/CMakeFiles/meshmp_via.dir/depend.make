# Empty dependencies file for meshmp_via.
# This may be replaced when dependencies are built.
