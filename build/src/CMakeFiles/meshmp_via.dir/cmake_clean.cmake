file(REMOVE_RECURSE
  "CMakeFiles/meshmp_via.dir/via/agent.cpp.o"
  "CMakeFiles/meshmp_via.dir/via/agent.cpp.o.d"
  "CMakeFiles/meshmp_via.dir/via/vi.cpp.o"
  "CMakeFiles/meshmp_via.dir/via/vi.cpp.o.d"
  "libmeshmp_via.a"
  "libmeshmp_via.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshmp_via.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
