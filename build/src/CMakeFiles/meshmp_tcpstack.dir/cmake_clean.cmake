file(REMOVE_RECURSE
  "CMakeFiles/meshmp_tcpstack.dir/tcpstack/socket.cpp.o"
  "CMakeFiles/meshmp_tcpstack.dir/tcpstack/socket.cpp.o.d"
  "CMakeFiles/meshmp_tcpstack.dir/tcpstack/stack.cpp.o"
  "CMakeFiles/meshmp_tcpstack.dir/tcpstack/stack.cpp.o.d"
  "libmeshmp_tcpstack.a"
  "libmeshmp_tcpstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshmp_tcpstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
