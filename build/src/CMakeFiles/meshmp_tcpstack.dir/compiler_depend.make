# Empty compiler generated dependencies file for meshmp_tcpstack.
# This may be replaced when dependencies are built.
