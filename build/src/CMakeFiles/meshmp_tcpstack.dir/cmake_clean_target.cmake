file(REMOVE_RECURSE
  "libmeshmp_tcpstack.a"
)
