file(REMOVE_RECURSE
  "CMakeFiles/meshmp_net.dir/net/crossbar.cpp.o"
  "CMakeFiles/meshmp_net.dir/net/crossbar.cpp.o.d"
  "CMakeFiles/meshmp_net.dir/net/frame.cpp.o"
  "CMakeFiles/meshmp_net.dir/net/frame.cpp.o.d"
  "CMakeFiles/meshmp_net.dir/net/link.cpp.o"
  "CMakeFiles/meshmp_net.dir/net/link.cpp.o.d"
  "libmeshmp_net.a"
  "libmeshmp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshmp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
