
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/crossbar.cpp" "src/CMakeFiles/meshmp_net.dir/net/crossbar.cpp.o" "gcc" "src/CMakeFiles/meshmp_net.dir/net/crossbar.cpp.o.d"
  "/root/repo/src/net/frame.cpp" "src/CMakeFiles/meshmp_net.dir/net/frame.cpp.o" "gcc" "src/CMakeFiles/meshmp_net.dir/net/frame.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/meshmp_net.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/meshmp_net.dir/net/link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/meshmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
