file(REMOVE_RECURSE
  "libmeshmp_net.a"
)
