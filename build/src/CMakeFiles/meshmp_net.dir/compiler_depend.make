# Empty compiler generated dependencies file for meshmp_net.
# This may be replaced when dependencies are built.
