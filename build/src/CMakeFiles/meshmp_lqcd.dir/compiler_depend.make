# Empty compiler generated dependencies file for meshmp_lqcd.
# This may be replaced when dependencies are built.
