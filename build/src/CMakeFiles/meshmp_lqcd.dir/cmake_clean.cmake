file(REMOVE_RECURSE
  "CMakeFiles/meshmp_lqcd.dir/lqcd/app.cpp.o"
  "CMakeFiles/meshmp_lqcd.dir/lqcd/app.cpp.o.d"
  "CMakeFiles/meshmp_lqcd.dir/lqcd/dslash.cpp.o"
  "CMakeFiles/meshmp_lqcd.dir/lqcd/dslash.cpp.o.d"
  "CMakeFiles/meshmp_lqcd.dir/lqcd/even_odd.cpp.o"
  "CMakeFiles/meshmp_lqcd.dir/lqcd/even_odd.cpp.o.d"
  "CMakeFiles/meshmp_lqcd.dir/lqcd/su3.cpp.o"
  "CMakeFiles/meshmp_lqcd.dir/lqcd/su3.cpp.o.d"
  "libmeshmp_lqcd.a"
  "libmeshmp_lqcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshmp_lqcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
