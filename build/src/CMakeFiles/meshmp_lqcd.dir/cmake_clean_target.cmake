file(REMOVE_RECURSE
  "libmeshmp_lqcd.a"
)
