
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/partition.cpp" "src/CMakeFiles/meshmp_topo.dir/topo/partition.cpp.o" "gcc" "src/CMakeFiles/meshmp_topo.dir/topo/partition.cpp.o.d"
  "/root/repo/src/topo/spanning_tree.cpp" "src/CMakeFiles/meshmp_topo.dir/topo/spanning_tree.cpp.o" "gcc" "src/CMakeFiles/meshmp_topo.dir/topo/spanning_tree.cpp.o.d"
  "/root/repo/src/topo/torus.cpp" "src/CMakeFiles/meshmp_topo.dir/topo/torus.cpp.o" "gcc" "src/CMakeFiles/meshmp_topo.dir/topo/torus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
