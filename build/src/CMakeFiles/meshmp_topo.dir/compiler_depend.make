# Empty compiler generated dependencies file for meshmp_topo.
# This may be replaced when dependencies are built.
