file(REMOVE_RECURSE
  "libmeshmp_topo.a"
)
