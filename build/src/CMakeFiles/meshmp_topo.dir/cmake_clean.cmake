file(REMOVE_RECURSE
  "CMakeFiles/meshmp_topo.dir/topo/partition.cpp.o"
  "CMakeFiles/meshmp_topo.dir/topo/partition.cpp.o.d"
  "CMakeFiles/meshmp_topo.dir/topo/spanning_tree.cpp.o"
  "CMakeFiles/meshmp_topo.dir/topo/spanning_tree.cpp.o.d"
  "CMakeFiles/meshmp_topo.dir/topo/torus.cpp.o"
  "CMakeFiles/meshmp_topo.dir/topo/torus.cpp.o.d"
  "libmeshmp_topo.a"
  "libmeshmp_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshmp_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
