file(REMOVE_RECURSE
  "CMakeFiles/meshmp_mp.dir/mp/endpoint.cpp.o"
  "CMakeFiles/meshmp_mp.dir/mp/endpoint.cpp.o.d"
  "libmeshmp_mp.a"
  "libmeshmp_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshmp_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
