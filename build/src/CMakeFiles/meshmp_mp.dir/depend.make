# Empty dependencies file for meshmp_mp.
# This may be replaced when dependencies are built.
