file(REMOVE_RECURSE
  "libmeshmp_mp.a"
)
