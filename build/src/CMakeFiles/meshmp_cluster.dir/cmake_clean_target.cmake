file(REMOVE_RECURSE
  "libmeshmp_cluster.a"
)
