file(REMOVE_RECURSE
  "CMakeFiles/meshmp_cluster.dir/cluster/gige_mesh.cpp.o"
  "CMakeFiles/meshmp_cluster.dir/cluster/gige_mesh.cpp.o.d"
  "CMakeFiles/meshmp_cluster.dir/cluster/myrinet.cpp.o"
  "CMakeFiles/meshmp_cluster.dir/cluster/myrinet.cpp.o.d"
  "CMakeFiles/meshmp_cluster.dir/cluster/report.cpp.o"
  "CMakeFiles/meshmp_cluster.dir/cluster/report.cpp.o.d"
  "libmeshmp_cluster.a"
  "libmeshmp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshmp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
