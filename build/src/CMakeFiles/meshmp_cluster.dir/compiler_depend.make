# Empty compiler generated dependencies file for meshmp_cluster.
# This may be replaced when dependencies are built.
