file(REMOVE_RECURSE
  "libmeshmp_mpi.a"
)
