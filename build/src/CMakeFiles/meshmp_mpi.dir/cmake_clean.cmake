file(REMOVE_RECURSE
  "CMakeFiles/meshmp_mpi.dir/mpi/mpi.cpp.o"
  "CMakeFiles/meshmp_mpi.dir/mpi/mpi.cpp.o.d"
  "libmeshmp_mpi.a"
  "libmeshmp_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshmp_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
