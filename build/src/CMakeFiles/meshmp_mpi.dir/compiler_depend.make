# Empty compiler generated dependencies file for meshmp_mpi.
# This may be replaced when dependencies are built.
