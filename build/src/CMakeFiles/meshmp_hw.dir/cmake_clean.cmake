file(REMOVE_RECURSE
  "CMakeFiles/meshmp_hw.dir/hw/nic.cpp.o"
  "CMakeFiles/meshmp_hw.dir/hw/nic.cpp.o.d"
  "libmeshmp_hw.a"
  "libmeshmp_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshmp_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
