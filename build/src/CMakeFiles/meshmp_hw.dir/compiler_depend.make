# Empty compiler generated dependencies file for meshmp_hw.
# This may be replaced when dependencies are built.
