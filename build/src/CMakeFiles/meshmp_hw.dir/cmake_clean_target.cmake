file(REMOVE_RECURSE
  "libmeshmp_hw.a"
)
