file(REMOVE_RECURSE
  "libmeshmp_sim.a"
)
