file(REMOVE_RECURSE
  "CMakeFiles/meshmp_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/meshmp_sim.dir/sim/engine.cpp.o.d"
  "libmeshmp_sim.a"
  "libmeshmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshmp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
