# Empty dependencies file for meshmp_sim.
# This may be replaced when dependencies are built.
