file(REMOVE_RECURSE
  "libmeshmp_coll.a"
)
