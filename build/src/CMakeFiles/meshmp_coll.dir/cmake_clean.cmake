file(REMOVE_RECURSE
  "CMakeFiles/meshmp_coll.dir/coll/scatter.cpp.o"
  "CMakeFiles/meshmp_coll.dir/coll/scatter.cpp.o.d"
  "CMakeFiles/meshmp_coll.dir/coll/tree.cpp.o"
  "CMakeFiles/meshmp_coll.dir/coll/tree.cpp.o.d"
  "libmeshmp_coll.a"
  "libmeshmp_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshmp_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
