# Empty compiler generated dependencies file for meshmp_coll.
# This may be replaced when dependencies are built.
