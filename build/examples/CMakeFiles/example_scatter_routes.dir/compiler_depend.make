# Empty compiler generated dependencies file for example_scatter_routes.
# This may be replaced when dependencies are built.
