file(REMOVE_RECURSE
  "CMakeFiles/example_scatter_routes.dir/scatter_routes.cpp.o"
  "CMakeFiles/example_scatter_routes.dir/scatter_routes.cpp.o.d"
  "example_scatter_routes"
  "example_scatter_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scatter_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
