# Empty dependencies file for example_lqcd_dslash.
# This may be replaced when dependencies are built.
