file(REMOVE_RECURSE
  "CMakeFiles/example_lqcd_dslash.dir/lqcd_dslash.cpp.o"
  "CMakeFiles/example_lqcd_dslash.dir/lqcd_dslash.cpp.o.d"
  "example_lqcd_dslash"
  "example_lqcd_dslash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lqcd_dslash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
