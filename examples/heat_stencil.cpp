// Heat-diffusion example: a classic 2-D Jacobi stencil distributed over a
// 4x4 GigE torus with QMP-style halo exchange — the "other scientific
// calculations" the paper says the clusters also serve.
//
// Each rank owns a 32x32 tile of a 128x128 periodic grid. Per iteration it
// exchanges one-cell-wide halos with its four neighbours through the QMP
// relative-message API and applies the 5-point stencil. Total heat is
// conserved (checked with a QMP global sum).

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "cluster/gige_mesh.hpp"
#include "mp/endpoint.hpp"
#include "qmp/qmp.hpp"

using namespace meshmp;
using sim::Task;

namespace {

constexpr int kTile = 32;
constexpr int kIters = 10;
constexpr double kAlpha = 0.2;

struct Tile {
  // (kTile+2)^2 with a one-cell ghost ring.
  std::vector<double> cells = std::vector<double>((kTile + 2) * (kTile + 2));
  double& at(int x, int y) { return cells[(y + 1) * (kTile + 2) + (x + 1)]; }
};

std::vector<std::byte> pack_column(Tile& t, int x) {
  std::vector<std::byte> out(kTile * sizeof(double));
  for (int y = 0; y < kTile; ++y) {
    std::memcpy(out.data() + y * sizeof(double), &t.at(x, y),
                sizeof(double));
  }
  return out;
}

std::vector<std::byte> pack_row(Tile& t, int y) {
  std::vector<std::byte> out(kTile * sizeof(double));
  for (int x = 0; x < kTile; ++x) {
    std::memcpy(out.data() + x * sizeof(double), &t.at(x, y),
                sizeof(double));
  }
  return out;
}

Task<> node_main(qmp::Machine& m, double& final_heat, int& done) {
  // `done` is this rank's own slot (summed by main after the run); ranks
  // live on distinct logical processes, so a shared counter would race
  // under the parallel engine.
  Tile t;
  // Initial condition: a hot spot on rank 0 only.
  if (m.node_number() == 0) t.at(kTile / 2, kTile / 2) = 1000.0;

  for (int iter = 0; iter < kIters; ++iter) {
    // Exchange the four halos. Sends carry boundary columns/rows; receives
    // land in the ghost ring.
    qmp::MsgMem sx_hi(kTile * sizeof(double));
    qmp::MsgMem sx_lo(kTile * sizeof(double));
    qmp::MsgMem sy_hi(kTile * sizeof(double));
    qmp::MsgMem sy_lo(kTile * sizeof(double));
    sx_hi.buf = pack_column(t, kTile - 1);
    sx_lo.buf = pack_column(t, 0);
    sy_hi.buf = pack_row(t, kTile - 1);
    sy_lo.buf = pack_row(t, 0);
    qmp::MsgMem rx_hi(kTile * sizeof(double));
    qmp::MsgMem rx_lo(kTile * sizeof(double));
    qmp::MsgMem ry_hi(kTile * sizeof(double));
    qmp::MsgMem ry_lo(kTile * sizeof(double));

    auto s0 = m.declare_send_relative(sx_hi, 0, +1);
    auto s1 = m.declare_send_relative(sx_lo, 0, -1);
    auto s2 = m.declare_send_relative(sy_hi, 1, +1);
    auto s3 = m.declare_send_relative(sy_lo, 1, -1);
    auto r0 = m.declare_receive_relative(rx_lo, 0, -1);
    auto r1 = m.declare_receive_relative(rx_hi, 0, +1);
    auto r2 = m.declare_receive_relative(ry_lo, 1, -1);
    auto r3 = m.declare_receive_relative(ry_hi, 1, +1);
    for (auto* h : {&s0, &s1, &s2, &s3, &r0, &r1, &r2, &r3}) m.start(*h);
    for (auto* h : {&r0, &r1, &r2, &r3, &s0, &s1, &s2, &s3}) {
      co_await m.wait(*h);
    }

    // Unpack ghosts.
    for (int y = 0; y < kTile; ++y) {
      std::memcpy(&t.at(-1, y), rx_lo.buf.data() + y * sizeof(double),
                  sizeof(double));
      std::memcpy(&t.at(kTile, y), rx_hi.buf.data() + y * sizeof(double),
                  sizeof(double));
    }
    for (int x = 0; x < kTile; ++x) {
      std::memcpy(&t.at(x, -1), ry_lo.buf.data() + x * sizeof(double),
                  sizeof(double));
      std::memcpy(&t.at(x, kTile), ry_hi.buf.data() + x * sizeof(double),
                  sizeof(double));
    }

    // 5-point Jacobi update.
    Tile next = t;
    for (int y = 0; y < kTile; ++y) {
      for (int x = 0; x < kTile; ++x) {
        next.at(x, y) =
            t.at(x, y) + kAlpha * (t.at(x - 1, y) + t.at(x + 1, y) +
                                   t.at(x, y - 1) + t.at(x, y + 1) -
                                   4.0 * t.at(x, y));
      }
    }
    t = std::move(next);
    // Real codes charge this compute to the node; do the same.
    co_await m.endpoint().agent().node().cpu().compute_flops(kTile * kTile *
                                                             7.0);
  }

  double local = 0;
  for (int y = 0; y < kTile; ++y) {
    for (int x = 0; x < kTile; ++x) local += t.at(x, y);
  }
  const double total = co_await m.sum_double(local);
  if (m.node_number() == 0) final_heat = total;
  done = 1;
}

}  // namespace

int main() {
  cluster::GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4, 4};
  cluster::GigeMeshCluster cluster(cfg);

  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  std::vector<std::unique_ptr<qmp::Machine>> machines;
  for (topo::Rank r = 0; r < cluster.size(); ++r) {
    sim::LpScope scope(cluster.engine(), cluster.lp_of(r));
    eps.push_back(
        std::make_unique<mp::Endpoint>(cluster.agent(r), mp::CoreParams{}));
    machines.push_back(std::make_unique<qmp::Machine>(*eps.back()));
  }

  double final_heat = 0;
  std::vector<int> done_slots(static_cast<std::size_t>(cluster.size()), 0);
  for (topo::Rank r = 0; r < cluster.size(); ++r) {
    sim::LpScope scope(cluster.engine(), cluster.lp_of(r));
    node_main(*machines[static_cast<std::size_t>(r)], final_heat,
              done_slots[static_cast<std::size_t>(r)])
        .detach();
  }
  cluster.run();

  int done = 0;
  for (int f : done_slots) done += f;
  std::printf("ranks finished: %d/16\n", done);
  std::printf("total heat after %d iterations: %.6f (injected 1000)\n",
              kIters, final_heat);
  std::printf("simulated time: %.1f us\n", sim::to_us(cluster.engine().now()));
  const bool conserved = final_heat > 999.999 && final_heat < 1000.001;
  std::printf("heat conserved: %s\n", conserved ? "yes" : "NO");
  return done == 16 && conserved ? 0 : 1;
}
