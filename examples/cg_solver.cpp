// Conjugate-gradient example: the iterative solve at the heart of every LQCD
// production run. Solves the normal equation of the shifted Wilson operator,
//
//     A x = b   with   A = (D + m)^dag (D + m),
//
// on an 8x8x8x8 lattice with a random SU(3) gauge field, using the real
// arithmetic kernels of src/lqcd. A is hermitian positive definite by
// construction, so plain CG applies; convergence of the true residual is the
// end-to-end check that dslash, dslash_dagger and the algebra all agree.

#include <cstdio>

#include "lqcd/dslash.hpp"
#include "lqcd/lattice.hpp"
#include "lqcd/su3.hpp"

using namespace meshmp;
using namespace meshmp::lqcd;

namespace {

constexpr double kMass = 10.0;  // outside the dslash spectrum (|lambda|<=8): A is well conditioned

SpinorField apply_shifted(const Lattice4D& lat, const GaugeField& u,
                          const SpinorField& x, double m) {
  SpinorField y = dslash(lat, u, x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    for (int s = 0; s < 4; ++s) {
      y[i][s] += Complex{m} * x[i][s];
    }
  }
  return y;
}

SpinorField apply_shifted_dagger(const Lattice4D& lat, const GaugeField& u,
                                 const SpinorField& x, double m) {
  SpinorField y = dslash_dagger(lat, u, x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    for (int s = 0; s < 4; ++s) {
      y[i][s] += Complex{m} * x[i][s];
    }
  }
  return y;
}

SpinorField apply_normal(const Lattice4D& lat, const GaugeField& u,
                         const SpinorField& x) {
  return apply_shifted_dagger(lat, u, apply_shifted(lat, u, x, kMass),
                              kMass);
}

void axpy(SpinorField& y, Complex a, const SpinorField& x) {
  for (std::size_t i = 0; i < y.size(); ++i) {
    for (int s = 0; s < 4; ++s) y[i][s] += a * x[i][s];
  }
}

double norm2(const SpinorField& f) {
  double n = 0;
  for (const auto& sp : f) n += sp.norm2();
  return n;
}

}  // namespace

int main() {
  const Lattice4D lat({8, 8, 8, 8});
  sim::Rng rng(7);
  const GaugeField u = random_gauge(lat, rng);
  const SpinorField b = random_spinor_field(lat, rng);

  SpinorField x(b.size());  // x0 = 0
  SpinorField r = b;        // r0 = b - A x0 = b
  SpinorField p = r;
  double rr = norm2(r);
  const double bb = norm2(b);

  std::printf("CG on (D+m)^dag(D+m) x = b, %d sites, m=%.1f\n", lat.volume(),
              kMass);
  std::printf("%6s %14s\n", "iter", "|r|/|b|");

  const double tol = 1e-10;
  int iter = 0;
  for (; iter < 200 && rr / bb > tol * tol; ++iter) {
    const SpinorField ap = apply_normal(lat, u, p);
    const Complex pap = inner_product(p, ap);
    const Complex alpha = Complex{rr} / pap;
    axpy(x, alpha, p);
    axpy(r, -alpha, ap);
    const double rr_new = norm2(r);
    if (iter % 5 == 0) {
      std::printf("%6d %14.3e\n", iter, std::sqrt(rr_new / bb));
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < p.size(); ++i) {
      for (int s = 0; s < 4; ++s) {
        p[i][s] = r[i][s] + Complex{beta} * p[i][s];
      }
    }
  }

  // True residual check (not the recursive one): b - A x.
  SpinorField ax = apply_normal(lat, u, x);
  SpinorField true_r = b;
  axpy(true_r, Complex{-1.0}, ax);
  const double final_rel = std::sqrt(norm2(true_r) / bb);
  std::printf("converged in %d iterations, true |b - A x|/|b| = %.3e\n",
              iter, final_rel);
  return final_rel < 1e-8 ? 0 : 1;
}
