// LQCD example: the workload the JLab clusters were built for.
//
// Part 1 runs the *real* Wilson dslash kernel on this machine (random SU(3)
// gauge field, random spinor field) and verifies the gamma5-hermiticity
// identity numerically.
//
// Part 2 runs the cluster-scale benchmark model: the same per-iteration
// structure (six hypersurface halo exchanges + local dslash + global sum)
// on a simulated GigE mesh and on a simulated Myrinet switched cluster, and
// prints the paper's table-1-style comparison for one lattice size.

#include <chrono>
#include <cstdio>

#include "lqcd/app.hpp"
#include "lqcd/dslash.hpp"
#include "lqcd/lattice.hpp"

using namespace meshmp;
using namespace meshmp::lqcd;

int main() {
  // --- Part 1: real arithmetic -----------------------------------------
  const Lattice4D lat({8, 8, 8, 8});
  sim::Rng rng(2026);
  const GaugeField u = random_gauge(lat, rng);
  const SpinorField psi = random_spinor_field(lat, rng);

  const auto wall0 = std::chrono::steady_clock::now();
  const SpinorField dpsi = dslash(lat, u, psi);
  const auto wall1 = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration<double>(wall1 - wall0).count();
  std::printf("dslash on 8^4 (%d sites): %.1f ms on this host\n",
              lat.volume(), secs * 1e3);

  // gamma5 D gamma5 == D^dag  =>  g5*D is hermitian  =>  <psi, g5 D psi>
  // is real.
  SpinorField g5d(psi.size());
  for (std::size_t i = 0; i < dpsi.size(); ++i) {
    g5d[i] = apply_gamma5(dpsi[i]);
  }
  const Complex ip = inner_product(psi, g5d);
  std::printf("gamma5-hermiticity: Im<psi, g5 D psi>/|.| = %.3e (should be"
              " ~0)\n", ip.imag() / std::abs(ip));

  // --- Part 2: cluster benchmark model ----------------------------------
  DslashRunConfig cfg;
  cfg.local_extent = 8;
  cfg.iterations = 5;
  const auto gige = run_dslash_gige(topo::Coord{4, 4, 4}, cfg);
  const auto myri = run_dslash_myrinet(64, cfg);
  const hw::CostParams costs;

  std::printf("\n8^4 per node, 64 nodes, 5 iterations:\n");
  std::printf("  GigE mesh   : %7.1f Mflops/node (%4.1f%% comm)  $%.2f per"
              " Mflops\n",
              gige.mflops_per_node, gige.comm_fraction * 100,
              usd_per_mflops(gige.mflops_per_node, costs.gige_node_usd()));
  std::printf("  Myrinet     : %7.1f Mflops/node (%4.1f%% comm)  $%.2f per"
              " Mflops\n",
              myri.mflops_per_node, myri.comm_fraction * 100,
              usd_per_mflops(myri.mflops_per_node, costs.myrinet_node_usd()));
  return 0;
}
