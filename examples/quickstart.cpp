// Quickstart: build a simulated 2x4 GigE torus, run an SPMD MPI program on
// it — a ring-pass plus a global reduction — and print what happened.
//
//   $ ./example_quickstart
//
// Everything below is the library's normal public surface: a cluster
// builder, one mp::Endpoint + mpi::Comm per rank, and coroutine node
// programs spawned onto the simulation.

#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/gige_mesh.hpp"
#include "mp/endpoint.hpp"
#include "mpi/mpi.hpp"

using namespace meshmp;
using sim::Task;

namespace {

/// The per-rank program: pass a growing token around the ring, then check
/// everyone agrees on a global sum.
Task<> node_main(mpi::Comm& comm, int& oks) {
  const int me = comm.rank();
  const int next = (me + 1) % comm.size();
  const int prev = (me + comm.size() - 1) % comm.size();

  if (me == 0) {
    // (named, not a braced temporary: GCC 12 miscompiles those in co_await)
    std::vector<int> seed{0};
    co_await comm.send_vec(seed, next, /*tag=*/1);
    auto token = co_await comm.recv_vec<int>(prev, 1);
    std::printf("[rank 0] token came home with %zu entries\n", token.size());
  } else {
    auto token = co_await comm.recv_vec<int>(prev, 1);
    token.push_back(me);
    co_await comm.send_vec(token, next, 1);
  }

  const double sum = co_await comm.allreduce_sum(1.0 + me);
  const double expect = comm.size() * (comm.size() + 1) / 2.0;
  if (sum == expect) ++oks;
  co_return;
}

}  // namespace

int main() {
  // 1. Describe the hardware: an eight-node 2x4 torus of GigE-mesh nodes.
  cluster::GigeMeshConfig cfg;
  cfg.shape = topo::Coord{2, 4};
  cluster::GigeMeshCluster cluster(cfg);

  // 2. One message-passing endpoint and MPI communicator per rank.
  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  std::vector<std::unique_ptr<mpi::Comm>> comms;
  for (topo::Rank r = 0; r < cluster.size(); ++r) {
    eps.push_back(
        std::make_unique<mp::Endpoint>(cluster.agent(r), mp::CoreParams{}));
    comms.push_back(std::make_unique<mpi::Comm>(*eps.back()));
  }

  // 3. Spawn the SPMD program and run the simulation to completion.
  int oks = 0;
  for (auto& c : comms) node_main(*c, oks).detach();
  cluster.run();

  std::printf("global sum agreed on %d/%d ranks\n", oks,
              static_cast<int>(cluster.size()));
  std::printf("simulated time: %.1f us\n",
              sim::to_us(cluster.engine().now()));
  return oks == cluster.size() ? 0 : 1;
}
