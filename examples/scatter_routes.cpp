// Scatter-algorithm example: visualizes the OPT region partition of an 8x8
// torus (paper sec. 5.2) and then runs both scatter algorithms, reporting
// the measured dispatch times and the root-link utilization that explains
// OPT's advantage.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/gige_mesh.hpp"
#include "coll/scatter.hpp"
#include "coll/tree.hpp"
#include "mp/endpoint.hpp"
#include "topo/partition.hpp"

using namespace meshmp;
using sim::Task;

namespace {

double run_scatter(coll::ScatterAlg alg, std::int64_t bytes) {
  cluster::GigeMeshConfig cfg;
  cfg.shape = topo::Coord{8, 8};
  cluster::GigeMeshCluster cluster(cfg);
  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  for (topo::Rank r = 0; r < cluster.size(); ++r) {
    sim::LpScope scope(cluster.engine(), cluster.lp_of(r));
    eps.push_back(
        std::make_unique<mp::Endpoint>(cluster.agent(r), mp::CoreParams{}));
  }
  sim::Time t0 = 0;
  // Per-rank finish slots (max after the run); a shared countdown latch
  // would race across logical processes under the parallel engine.
  std::vector<sim::Time> ends(static_cast<std::size_t>(cluster.size()), 0);
  auto node = [](mp::Endpoint& ep, coll::ScatterAlg a, std::int64_t sz,
                 int nranks, sim::Time& start, sim::Time& end) -> Task<> {
    co_await coll::barrier(ep, (1 << 23) | 7);
    if (ep.rank() == 0) start = ep.engine().now();
    if (ep.rank() == 0) {
      std::vector<std::vector<std::byte>> chunks(
          static_cast<std::size_t>(nranks),
          std::vector<std::byte>(static_cast<std::size_t>(sz),
                                 std::byte{1}));
      (void)co_await coll::scatter(ep, 0, &chunks, (1 << 23) | 9, a);
    } else {
      (void)co_await coll::scatter(ep, 0, nullptr, (1 << 23) | 9, a);
    }
    end = ep.engine().now();
  };
  for (topo::Rank r = 0; r < cluster.size(); ++r) {
    sim::LpScope scope(cluster.engine(), cluster.lp_of(r));
    node(*eps[static_cast<std::size_t>(r)], alg, bytes,
         static_cast<int>(cluster.size()), t0,
         ends[static_cast<std::size_t>(r)])
        .detach();
  }
  cluster.run();
  const sim::Time t1 = *std::max_element(ends.begin(), ends.end());
  return sim::to_us(t1 - t0);
}

}  // namespace

int main() {
  const topo::Torus t(topo::Coord{8, 8});
  const auto part = topo::make_region_partition(t, /*root=*/0);

  std::printf("OPT region partition of the 8x8 torus around node (0,0):\n");
  std::printf("(each cell shows which root link serves it)\n\n");
  for (int y = 7; y >= 0; --y) {
    std::printf("  ");
    for (int x = 0; x < 8; ++x) {
      const topo::Rank r = t.rank(topo::Coord{x, y});
      if (r == 0) {
        std::printf(" ROOT");
        continue;
      }
      const int region = part.region_of[static_cast<std::size_t>(r)];
      std::printf("   %s",
                  part.region_dir[static_cast<std::size_t>(region)]
                      .str()
                      .c_str());
    }
    std::printf("\n");
  }

  std::printf("\nregion sizes:");
  for (int i = 0; i < part.num_regions(); ++i) {
    std::printf(" %s=%zu", part.region_dir[static_cast<std::size_t>(i)].str().c_str(),
                part.members[static_cast<std::size_t>(i)].size());
  }
  std::printf("  (ideal: %d each)\n\n",
              (t.size() - 1) / part.num_regions());

  for (std::int64_t bytes : {64LL, 1024LL}) {
    const double sdf = run_scatter(coll::ScatterAlg::kSdf, bytes);
    const double opt = run_scatter(coll::ScatterAlg::kOpt, bytes);
    std::printf("scatter %4lld B/dest: SDF %8.1f us   OPT %8.1f us   "
                "speedup %.2fx\n",
                static_cast<long long>(bytes), sdf, opt, sdf / opt);
  }
  return 0;
}
