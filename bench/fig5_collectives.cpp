// Figure 5 reproduction: broadcast and global-sum timing on the 4x8x8
// (256-node) torus for growing message sizes.
//
// Paper headlines: small-message broadcast ~200 us over 10 communication
// steps (xdim/2 + ydim/2 + zdim/2 = 2+4+4, ~20 us per step, in line with the
// 18.5 us point-to-point latency); global sum roughly twice the broadcast
// (reduce to a node + broadcast back); both growing linearly with size.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "coll/reduce_op.hpp"
#include "coll/tree.hpp"

namespace {

using namespace benchutil;

struct CollWorld {
  cluster::GigeMeshCluster cluster;
  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  sim::Time t_start = 0;
  // Per-rank finish times (max taken after the run): ranks live on distinct
  // logical processes, so a shared "++done == nranks" latch would race
  // under the parallel engine.
  std::vector<sim::Time> finish;

  explicit CollWorld(topo::Coord shape)
      : cluster([&] {
          cluster::GigeMeshConfig cfg;
          cfg.shape = shape;
          return cfg;
        }()),
        finish(static_cast<std::size_t>(cluster.size()), 0) {
    for (topo::Rank r = 0; r < cluster.size(); ++r) {
      // Endpoint progress loops belong to their rank's logical process.
      sim::LpScope scope(cluster.engine(), cluster.lp_of(r));
      eps.push_back(std::make_unique<mp::Endpoint>(cluster.agent(r),
                                                   mp::CoreParams{}));
    }
  }
};

enum class Op { kBcast, kGlobalSum };

double run_collective(Op op, std::int64_t bytes) {
  CollWorld w(topo::Coord{4, 8, 8});
  // Warm up (dials every channel), then have all ranks enter the measured
  // operation at the same instant — the simulator's zero-skew barrier, which
  // isolates the operation's true latency the way the paper plots it.
  constexpr sim::Time kGo = 500_ms;
  auto node = [](CollWorld& world, mp::Endpoint& ep, Op op_,
                 std::int64_t sz) -> Task<> {
    std::vector<std::byte> warm(8, std::byte{0x22});
    co_await coll::broadcast(ep, 0, warm, (1 << 23) | 100);
    co_await sim::delay(ep.engine(), kGo - ep.engine().now());
    if (ep.rank() == 0) world.t_start = ep.engine().now();
    std::vector<std::byte> data(static_cast<std::size_t>(sz),
                                std::byte{0x11});
    if (op_ == Op::kBcast) {
      co_await coll::broadcast(ep, 0, data, (1 << 23) | 200);
    } else {
      co_await coll::allreduce(ep, data, coll::sum_op<double>(),
                               (1 << 23) | 300);
    }
    world.finish[static_cast<std::size_t>(ep.rank())] = ep.engine().now();
  };
  for (topo::Rank r = 0; r < w.cluster.size(); ++r) {
    sim::LpScope scope(w.cluster.engine(), w.cluster.lp_of(r));
    node(w, *w.eps[static_cast<std::size_t>(r)], op, bytes).detach();
  }
  w.cluster.run();
  const sim::Time t_end = *std::max_element(w.finish.begin(), w.finish.end());
  return sim::to_us(t_end - w.t_start);
}

}  // namespace

int main() {
  benchutil::BenchReport report("fig5_collectives");
  std::printf("# Figure 5: broadcast and global sum on the 4x8x8 torus\n");
  std::printf("%10s %14s %14s %8s\n", "bytes", "broadcast_us",
              "globalsum_us", "ratio");
  for (std::int64_t s : {8LL, 64LL, 256LL, 1024LL, 4096LL, 16384LL, 65536LL}) {
    const double b = run_collective(Op::kBcast, s);
    const double g = run_collective(Op::kGlobalSum, s);
    std::printf("%10lld %14.1f %14.1f %8.2f\n", static_cast<long long>(s), b,
                g, g / b);
    report.add_row({{"bytes", static_cast<double>(s)},
                    {"broadcast_us", b},
                    {"globalsum_us", g}});
  }
  std::printf("# paper: small-size broadcast ~200 us (10 steps), global sum"
              " ~2x broadcast\n");
  return 0;
}
