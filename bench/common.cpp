#include "common.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <memory>

#include "buf/copy.hpp"
#include "flt/fault.hpp"
#include "mpi/mpi.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace benchutil {

namespace {

std::int64_t host_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// --------------------------------------------------------------------------
// BenchReport
// --------------------------------------------------------------------------

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), start_ns_(host_now_ns()) {
  // Fresh metrics for this bench only (a process may run several harnesses
  // before the report is constructed), and honour MESHMP_TRACE if the tracer
  // is compiled in.
  obs::Registry::instance().reset();
  // Copy accounting restarts with the bench too, so the charged_copies /
  // charged_bytes the report publishes are this bench's alone and the
  // baselines pin the exact modeled-copy count of each figure.
  buf::reset_copy_stats();
  // Host-side engine telemetry (events dispatched, queue depth) restarts so
  // the host.engine.* metrics the report publishes cover this bench alone.
  sim::reset_engine_host_stats();
  obs::trace_init_from_env();
}

double BenchReport::host_seconds() const {
  return static_cast<double>(host_now_ns() - start_ns_) * 1e-9;
}

void BenchReport::add_row(std::vector<std::pair<std::string, double>> row) {
  rows_.push_back(std::move(row));
}

BenchReport::~BenchReport() {
  const std::string path = "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", name_.c_str());
  std::fprintf(f, "  \"host_seconds\": %.6f,\n", host_seconds());
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    std::fprintf(f, "    {");
    for (std::size_t k = 0; k < rows_[i].size(); ++k) {
      std::fprintf(f, "%s\"%s\": %.6g", k == 0 ? "" : ", ",
                   rows_[i][k].first.c_str(), rows_[i][k].second);
    }
    std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Full registry view (live + retired): per-layer counters and histogram
  // summaries travel with the modeled rows so regressions in *why* numbers
  // moved are diffable, not just the numbers themselves. The charge_copy
  // tally rides along as buf.copy.* — an unreviewed extra copy on a modeled
  // path shows up as exact-counter drift in the bench_diff gate.
  const buf::CopyStats cs = buf::copy_stats();
  obs::Counters copy_counters;
  copy_counters.inc("charged_copies", static_cast<std::int64_t>(cs.copies));
  copy_counters.inc("charged_bytes", static_cast<std::int64_t>(cs.bytes));
  const auto copy_reg =
      obs::Registry::instance().attach("buf.copy", &copy_counters);
  // Host-side engine throughput rides along under the "host." prefix, which
  // tools/bench_diff.py treats as informational (host time is machine-
  // dependent; everything else in this report is gated byte-exact).
  const sim::EngineHostStats es = sim::engine_host_stats();
  const double secs = host_seconds();
  obs::Counters host_counters;
  host_counters.inc("events_dispatched",
                    static_cast<std::int64_t>(es.events_dispatched));
  host_counters.inc("queue_depth_hwm",
                    static_cast<std::int64_t>(es.queue_depth_hwm));
  host_counters.inc(
      "events_per_sec",
      secs > 0 ? static_cast<std::int64_t>(
                     static_cast<double>(es.events_dispatched) / secs)
               : 0);
  // Worker-thread count (MESHMP_THREADS; 0 = legacy single-shard engine) and
  // the window tallies, so a bench_diff between thread counts shows what
  // fraction of windows actually fanned out to the team.
  host_counters.inc("threads",
                    static_cast<std::int64_t>(sim::threads_from_env()));
  host_counters.inc("windows", static_cast<std::int64_t>(es.windows));
  host_counters.inc("parallel_windows",
                    static_cast<std::int64_t>(es.parallel_windows));
  const auto host_reg =
      obs::Registry::instance().attach("host.engine", &host_counters);
  const std::string metrics = obs::Registry::instance().snapshot().to_json(2);
  std::fprintf(f, "  \"metrics\": %s\n}\n", metrics.c_str());
  std::fclose(f);
  std::printf("# host wall-clock: %.3f s (-> %s)\n", host_seconds(),
              path.c_str());
  obs::trace_flush_env();
}

namespace {

topo::Coord aggregate_shape(int ndims) {
  return ndims == 2 ? topo::Coord{3, 3} : topo::Coord{3, 3, 3};
}

}  // namespace

// --------------------------------------------------------------------------
// M-VIA aggregate
// --------------------------------------------------------------------------

double via_aggregate_bw(int ndims, std::int64_t size, int count_per_link) {
  return via_aggregate_bw_cfg(ndims, size, count_per_link, hw::NicParams{});
}

double via_aggregate_bw_cfg(int ndims, std::int64_t size, int count_per_link,
                            const hw::NicParams& nic_params) {
  cluster::GigeMeshConfig cfg;
  cfg.nic = nic_params;
  return via_aggregate_bw_faulty(ndims, size, count_per_link, cfg);
}

double via_aggregate_bw_faulty(int ndims, std::int64_t size,
                               int count_per_link,
                               cluster::GigeMeshConfig cfg,
                               sim::Duration flap_after,
                               sim::Duration flap_down) {
  cfg.shape = aggregate_shape(ndims);
  cluster::GigeMeshCluster c(cfg);
  const topo::Torus& t = c.torus();
  const topo::Rank center = t.rank(ndims == 2 ? topo::Coord{1, 1}
                                              : topo::Coord{1, 1, 1});
  const auto dirs = t.directions(t.coord(center));
  const int nlinks = static_cast<int>(dirs.size());

  // One VI pair per link, dialed from the centre.
  struct LinkConn {
    via::Vi* mine = nullptr;   // centre endpoint
    via::Vi* theirs = nullptr; // neighbour endpoint
  };
  std::vector<LinkConn> conns(static_cast<std::size_t>(nlinks));
  auto dial = [](via::KernelAgent& ag, net::NodeId peer, std::uint32_t svc,
                 via::Vi*& out) -> Task<> {
    out = co_await ag.connect(peer, svc);
  };
  auto answer = [](via::KernelAgent& ag, std::uint32_t svc,
                   via::Vi*& out) -> Task<> {
    out = co_await ag.accept(svc);
  };
  for (int i = 0; i < nlinks; ++i) {
    const auto nb = t.neighbor(center, dirs[static_cast<std::size_t>(i)]);
    const auto svc = static_cast<std::uint32_t>(100 + i);
    c.agent(*nb).listen(svc);
    answer(c.agent(*nb), svc, conns[static_cast<std::size_t>(i)].theirs)
        .detach();
    dial(c.agent(center), *nb, svc, conns[static_cast<std::size_t>(i)].mine)
        .detach();
  }
  c.run();

  // Reverse connections so neighbours also stream toward the centre
  // (bidirectional "simultaneous" load on every link).
  std::vector<LinkConn> rev(static_cast<std::size_t>(nlinks));
  for (int i = 0; i < nlinks; ++i) {
    const auto nb = t.neighbor(center, dirs[static_cast<std::size_t>(i)]);
    const auto svc = static_cast<std::uint32_t>(200 + i);
    c.agent(center).listen(svc);
    answer(c.agent(center), svc, rev[static_cast<std::size_t>(i)].theirs)
        .detach();
    dial(c.agent(*nb), center, svc, rev[static_cast<std::size_t>(i)].mine)
        .detach();
  }
  c.run();

  for (int i = 0; i < nlinks; ++i) {
    for (int k = 0; k < count_per_link + 4; ++k) {
      conns[static_cast<std::size_t>(i)].theirs->post_recv(size + 64);
      rev[static_cast<std::size_t>(i)].theirs->post_recv(size + 64);
    }
  }

  // Per-drain finish slots (max taken after the run): the drains live on
  // different logical processes, so a shared countdown latch would race
  // under the parallel engine.
  std::vector<sim::Time> ends(static_cast<std::size_t>(2 * nlinks), 0);
  auto stream = [](via::Vi& vi, std::int64_t sz, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      co_await vi.send(payload(static_cast<std::size_t>(sz)));
    }
  };
  auto drain = [](via::Vi& vi, sim::Engine& eng, int n,
                  sim::Time& end) -> Task<> {
    for (int i = 0; i < n; ++i) (void)co_await vi.recv_completion();
    end = eng.now();
  };
  const sim::Time t0 = c.engine().now();
  std::unique_ptr<flt::Injector> inj;
  if (flap_down > 0) {
    flt::Schedule faults;
    faults.link_flap(t0 + flap_after, center, dirs[0], flap_down);
    inj = std::make_unique<flt::Injector>(c, faults);
  }
  for (int i = 0; i < nlinks; ++i) {
    const auto nb = *t.neighbor(center, dirs[static_cast<std::size_t>(i)]);
    {
      sim::LpScope sc(c.engine(), c.lp_of(center));
      stream(*conns[static_cast<std::size_t>(i)].mine, size, count_per_link)
          .detach();
      drain(*rev[static_cast<std::size_t>(i)].theirs, c.engine(),
            count_per_link, ends[static_cast<std::size_t>(nlinks + i)])
          .detach();
    }
    {
      sim::LpScope sn(c.engine(), c.lp_of(nb));
      stream(*rev[static_cast<std::size_t>(i)].mine, size, count_per_link)
          .detach();
      drain(*conns[static_cast<std::size_t>(i)].theirs, c.engine(),
            count_per_link, ends[static_cast<std::size_t>(i)])
          .detach();
    }
  }
  c.run();
  const sim::Time t_end = *std::max_element(ends.begin(), ends.end());
  // Aggregated *send* bandwidth of the centre node.
  return sim::rate_mb_per_s(static_cast<std::int64_t>(nlinks) * size *
                                count_per_link,
                            t_end - t0);
}

// --------------------------------------------------------------------------
// TCP
// --------------------------------------------------------------------------

double tcp_rtt2_us(std::int64_t size, int rounds) {
  TcpPair p;
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  auto pong = [](tcpstack::TcpSocket& s, std::int64_t sz, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      auto m = co_await s.recv_exact(sz);
      co_await s.send(std::move(m));
    }
  };
  auto ping = [](tcpstack::TcpSocket& s, sim::Engine& eng, std::int64_t sz,
                 int n, sim::Time& start, sim::Time& end) -> Task<> {
    start = eng.now();
    for (int i = 0; i < n; ++i) {
      co_await s.send(payload(static_cast<std::size_t>(sz)));
      (void)co_await s.recv_exact(sz);
    }
    end = eng.now();
  };
  pong(*p.b, size, rounds).detach();
  ping(*p.a, p.cluster.engine(), size, rounds, t0, t1).detach();
  p.cluster.run();
  return sim::to_us(t1 - t0) / 2.0 / rounds;
}

double tcp_simultaneous_bw(std::int64_t size, int count) {
  TcpPair p;
  sim::Time ends[2] = {0, 0};
  auto stream = [](tcpstack::TcpSocket& s, std::int64_t sz, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      co_await s.send(payload(static_cast<std::size_t>(sz)));
    }
  };
  auto drain = [](tcpstack::TcpSocket& s, sim::Engine& eng, std::int64_t sz,
                  int n, sim::Time& end) -> Task<> {
    (void)co_await s.recv_exact(sz * n);
    end = eng.now();
  };
  const sim::Time t0 = p.cluster.engine().now();
  {
    sim::LpScope s0(p.cluster.engine(), p.cluster.lp_of(0));
    stream(*p.a, size, count).detach();
    drain(*p.a, p.cluster.engine(), size, count, ends[0]).detach();
  }
  {
    sim::LpScope s1(p.cluster.engine(), p.cluster.lp_of(1));
    stream(*p.b, size, count).detach();
    drain(*p.b, p.cluster.engine(), size, count, ends[1]).detach();
  }
  p.cluster.run();
  const sim::Time t_end = std::max(ends[0], ends[1]);
  return sim::rate_mb_per_s(size * count, t_end - t0);
}

double tcp_aggregate_bw(int ndims, std::int64_t size, int count_per_link) {
  cluster::TcpMeshConfig cfg;
  cfg.shape = aggregate_shape(ndims);
  cluster::TcpMeshCluster c(cfg);
  const topo::Torus& t = c.torus();
  const topo::Rank center = t.rank(ndims == 2 ? topo::Coord{1, 1}
                                              : topo::Coord{1, 1, 1});
  const auto dirs = t.directions(t.coord(center));
  const int nlinks = static_cast<int>(dirs.size());

  struct Conn {
    tcpstack::TcpSocket* mine = nullptr;
    tcpstack::TcpSocket* theirs = nullptr;
  };
  std::vector<Conn> out(static_cast<std::size_t>(nlinks));
  std::vector<Conn> back(static_cast<std::size_t>(nlinks));
  auto dial = [](tcpstack::TcpStack& st, net::NodeId peer, std::uint16_t port,
                 tcpstack::TcpSocket*& o) -> Task<> {
    o = co_await st.connect(peer, port);
  };
  auto answer = [](tcpstack::TcpStack& st, std::uint16_t port,
                   tcpstack::TcpSocket*& o) -> Task<> {
    o = co_await st.accept(port);
  };
  for (int i = 0; i < nlinks; ++i) {
    const auto nb = t.neighbor(center, dirs[static_cast<std::size_t>(i)]);
    const auto port1 = static_cast<std::uint16_t>(100 + i);
    const auto port2 = static_cast<std::uint16_t>(200 + i);
    c.stack(*nb).listen(port1);
    c.stack(center).listen(port2);
    answer(c.stack(*nb), port1, out[static_cast<std::size_t>(i)].theirs)
        .detach();
    dial(c.stack(center), *nb, port1, out[static_cast<std::size_t>(i)].mine)
        .detach();
    answer(c.stack(center), port2, back[static_cast<std::size_t>(i)].theirs)
        .detach();
    dial(c.stack(*nb), center, port2, back[static_cast<std::size_t>(i)].mine)
        .detach();
  }
  c.run();

  std::vector<sim::Time> ends(static_cast<std::size_t>(2 * nlinks), 0);
  auto stream = [](tcpstack::TcpSocket& s, std::int64_t sz, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      co_await s.send(payload(static_cast<std::size_t>(sz)));
    }
  };
  auto drain = [](tcpstack::TcpSocket& s, sim::Engine& eng, std::int64_t sz,
                  int n, sim::Time& end) -> Task<> {
    (void)co_await s.recv_exact(sz * n);
    end = eng.now();
  };
  const sim::Time t0 = c.engine().now();
  for (int i = 0; i < nlinks; ++i) {
    const auto nb = *t.neighbor(center, dirs[static_cast<std::size_t>(i)]);
    {
      sim::LpScope sc(c.engine(), c.lp_of(center));
      stream(*out[static_cast<std::size_t>(i)].mine, size, count_per_link)
          .detach();
      drain(*back[static_cast<std::size_t>(i)].theirs, c.engine(), size,
            count_per_link, ends[static_cast<std::size_t>(nlinks + i)])
          .detach();
    }
    {
      sim::LpScope sn(c.engine(), c.lp_of(nb));
      stream(*back[static_cast<std::size_t>(i)].mine, size, count_per_link)
          .detach();
      drain(*out[static_cast<std::size_t>(i)].theirs, c.engine(), size,
            count_per_link, ends[static_cast<std::size_t>(i)])
          .detach();
    }
  }
  c.run();
  const sim::Time t_end = *std::max_element(ends.begin(), ends.end());
  return sim::rate_mb_per_s(static_cast<std::int64_t>(nlinks) * size *
                                count_per_link,
                            t_end - t0);
}

// --------------------------------------------------------------------------
// MPI/QMP (endpoint layer)
// --------------------------------------------------------------------------

namespace {

struct EndpointWorld {
  cluster::GigeMeshCluster cluster;
  std::vector<std::unique_ptr<mp::Endpoint>> eps;

  explicit EndpointWorld(topo::Coord shape, mp::CoreParams mp_params = {})
      : cluster([&] {
          cluster::GigeMeshConfig cfg;
          cfg.shape = shape;
          return cfg;
        }()) {
    for (topo::Rank r = 0; r < cluster.size(); ++r) {
      // Endpoint progress loops belong to their rank's logical process.
      sim::LpScope scope(cluster.engine(), cluster.lp_of(r));
      eps.push_back(
          std::make_unique<mp::Endpoint>(cluster.agent(r), mp_params));
    }
  }
};

}  // namespace

double mpiqmp_rtt2_us(std::int64_t size, int rounds,
                      mp::CoreParams mp_params) {
  EndpointWorld w(topo::Coord{4}, mp_params);
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  auto pong = [](mp::Endpoint& ep, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      auto m = co_await ep.recv(0, 1);
      co_await ep.send(0, 1, std::move(m.data));
    }
  };
  auto ping = [](mp::Endpoint& ep, sim::Engine& eng, std::int64_t sz, int n,
                 sim::Time& start, sim::Time& end) -> Task<> {
    start = eng.now();
    for (int i = 0; i < n; ++i) {
      co_await ep.send(1, 1, payload(static_cast<std::size_t>(sz)));
      (void)co_await ep.recv(1, 1);
    }
    end = eng.now();
  };
  pong(*w.eps[1], rounds).detach();
  ping(*w.eps[0], w.cluster.engine(), size, rounds, t0, t1).detach();
  w.cluster.run();
  return sim::to_us(t1 - t0) / 2.0 / rounds;
}

double mpiqmp_stream_bw(std::int64_t size, int count,
                        mp::CoreParams mp_params) {
  EndpointWorld w(topo::Coord{4}, mp_params);
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  auto stream = [](mp::Endpoint& ep, std::int64_t sz, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      co_await ep.send(1, 1, payload(static_cast<std::size_t>(sz)));
    }
  };
  auto drain = [](mp::Endpoint& ep, sim::Engine& eng, int n,
                  sim::Time& start, sim::Time& end) -> Task<> {
    start = eng.now();
    for (int i = 0; i < n; ++i) (void)co_await ep.recv(0, 1);
    end = eng.now();
  };
  drain(*w.eps[1], w.cluster.engine(), count, t0, t1).detach();
  stream(*w.eps[0], size, count).detach();
  w.cluster.run();
  return sim::rate_mb_per_s(size * count, t1 - t0);
}

double mpiqmp_routed_rtt2_us(int hops, std::int64_t size, int rounds) {
  EndpointWorld w(topo::Coord{16});  // ring: ranks 0..15, distance = rank
  const int peer = hops;
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  auto pong = [](mp::Endpoint& ep, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      auto m = co_await ep.recv(0, 1);
      co_await ep.send(0, 1, std::move(m.data));
    }
  };
  auto ping = [](mp::Endpoint& ep, sim::Engine& eng, int peer_,
                 std::int64_t sz, int n, sim::Time& start,
                 sim::Time& end) -> Task<> {
    start = eng.now();
    for (int i = 0; i < n; ++i) {
      co_await ep.send(peer_, 1, payload(static_cast<std::size_t>(sz)));
      (void)co_await ep.recv(peer_, 1);
    }
    end = eng.now();
  };
  pong(*w.eps[static_cast<std::size_t>(peer)], rounds).detach();
  ping(*w.eps[0], w.cluster.engine(), peer, size, rounds, t0, t1).detach();
  w.cluster.run();
  return sim::to_us(t1 - t0) / 2.0 / rounds;
}

double mpiqmp_aggregate_bw(int ndims, std::int64_t size, int count_per_link) {
  EndpointWorld w(aggregate_shape(ndims));
  const topo::Torus& t = w.cluster.torus();
  const topo::Rank center = t.rank(ndims == 2 ? topo::Coord{1, 1}
                                              : topo::Coord{1, 1, 1});
  const auto dirs = t.directions(t.coord(center));
  const int nlinks = static_cast<int>(dirs.size());

  std::vector<sim::Time> ends(static_cast<std::size_t>(2 * nlinks), 0);
  auto stream = [](mp::Endpoint& ep, int dst, std::int64_t sz,
                   int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      co_await ep.send(dst, 1, payload(static_cast<std::size_t>(sz)));
    }
  };
  auto drain = [](mp::Endpoint& ep, sim::Engine& eng, int src, int n,
                  sim::Time& end) -> Task<> {
    for (int i = 0; i < n; ++i) (void)co_await ep.recv(src, 1);
    end = eng.now();
  };
  const sim::Time t0 = w.cluster.engine().now();
  for (int i = 0; i < nlinks; ++i) {
    const auto nb = *t.neighbor(center, dirs[static_cast<std::size_t>(i)]);
    {
      sim::LpScope sc(w.cluster.engine(), w.cluster.lp_of(center));
      stream(*w.eps[static_cast<std::size_t>(center)], nb, size,
             count_per_link)
          .detach();
      drain(*w.eps[static_cast<std::size_t>(center)], w.cluster.engine(), nb,
            count_per_link, ends[static_cast<std::size_t>(nlinks + i)])
          .detach();
    }
    {
      sim::LpScope sn(w.cluster.engine(), w.cluster.lp_of(nb));
      stream(*w.eps[static_cast<std::size_t>(nb)], center, size,
             count_per_link)
          .detach();
      drain(*w.eps[static_cast<std::size_t>(nb)], w.cluster.engine(), center,
            count_per_link, ends[static_cast<std::size_t>(i)])
          .detach();
    }
  }
  w.cluster.run();
  const sim::Time t_end = *std::max_element(ends.begin(), ends.end());
  return sim::rate_mb_per_s(static_cast<std::int64_t>(nlinks) * size *
                                count_per_link,
                            t_end - t0);
}

}  // namespace benchutil
