// Ablation: the eager -> RMA protocol switch point (paper sec. 5.1 fixes it
// at 16 KiB). Sweeps the threshold and reports MPI/QMP latency and one-way
// streaming bandwidth at probe message sizes spanning the switch.
//
// Expected shape: below the crossover region the eager path wins (the
// rendezvous handshake costs ~2 extra one-way latencies); above it RMA wins
// (it skips both user-level copies). The knee sits near the paper's 16 KiB.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace benchutil;

  const std::int64_t thresholds[] = {2048,  4096,   8192,
                                     16384, 32768,  65536,
                                     131072};
  const std::int64_t probes[] = {4096, 16384, 65536, 262144};

  std::printf("# Ablation: eager/RMA threshold sweep (MPI/QMP)\n");
  std::printf("# one-way stream bandwidth (MB/s) per probe size\n");
  std::printf("%12s", "threshold");
  for (auto p : probes) std::printf(" %10lldB", static_cast<long long>(p));
  std::printf(" %12s\n", "lat8k_us");

  for (std::int64_t th : thresholds) {
    mp::CoreParams params;
    params.eager_threshold = th;
    std::printf("%12lld", static_cast<long long>(th));
    for (std::int64_t p : probes) {
      const int count = p >= 262144 ? 20 : 80;
      std::printf(" %11.1f", mpiqmp_stream_bw(p, count, params));
    }
    std::printf(" %12.2f\n", mpiqmp_rtt2_us(8192, 30, params));
  }
  std::printf("# paper picks 16 KiB: small messages stay on the low-latency"
              " eager path,\n# large ones get the copy-free RMA path\n");
  return 0;
}
