// Figure 4 reproduction: MPI/QMP point-to-point performance — small-message
// half-round-trip latency (inset) and the 2-D/3-D aggregated bandwidth of one
// node through the full message-passing stack.
//
// Paper headlines: ~18.5 us RTT/2 (small implementation overhead over raw
// M-VIA); aggregated bandwidths below raw M-VIA (flow control + rendezvous
// control traffic) but still ~400 MB/s for the 3-D mesh; and a visible jump
// around 16 KiB where the eager bounce-buffer path hands over to RMA.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace benchutil;

  std::printf("# Figure 4 (inset): MPI/QMP half-round-trip latency\n");
  std::printf("%10s %12s\n", "bytes", "rtt2_us");
  for (std::int64_t s : {4LL, 16LL, 64LL, 256LL, 1024LL, 4096LL}) {
    std::printf("%10lld %12.2f\n", static_cast<long long>(s),
                mpiqmp_rtt2_us(s));
  }

  std::printf("\n# Figure 4 (main): MPI/QMP aggregated send bandwidth"
              " (MB/s)\n");
  std::printf("%10s %12s %12s\n", "bytes", "mpiqmp_3d", "mpiqmp_2d");
  const std::int64_t sizes[] = {1024,  2048,  4096,   8192,  12288, 15360,
                                16384, 24576, 32768,  65536, 131072,
                                262144, 524288};
  for (std::int64_t s : sizes) {
    const int count = s >= 262144 ? 16 : (s >= 32768 ? 40 : 120);
    std::printf("%10lld %12.1f %12.1f\n", static_cast<long long>(s),
                mpiqmp_aggregate_bw(3, s, count),
                mpiqmp_aggregate_bw(2, s, count));
  }
  std::printf("# note: the step between 15360 and 16384 bytes is the eager ->"
              " RMA protocol switch\n");
  return 0;
}
