// Ablation: message-passing performance under wire faults. Two experiments:
//
//  1. Loss-rate sweep — point-to-point half-RTT and 3-D aggregate send
//     bandwidth as the per-frame drop probability rises from 0 to 1e-3.
//     Reliable Delivery keeps every payload intact; the cost is the
//     go-back-N stall whenever a window has to retransmit, so latency
//     degrades in steps of roughly one retransmission timeout.
//
//  2. Mid-run link flap — aggregate bandwidth while one of the centre
//     node's cables loses carrier partway through the streaming phase.
//     The kernel agents route around the dead cable (paper sec. 5.1's SDF
//     rule restricted to surviving ports), so throughput dips instead of
//     the run hanging; longer outages cost proportionally more.

#include <cstdio>

#include "common.hpp"
#include "flt/fault.hpp"

namespace {

using namespace benchutil;

cluster::GigeMeshConfig lossy_config(double drop_prob) {
  cluster::GigeMeshConfig cfg;
  cfg.shape = topo::Coord{4};
  cfg.link.drop_prob = drop_prob;
  // A tighter timeout than the deep-pipeline default keeps single-frame
  // recovery visible at bench scale without changing the qualitative shape.
  cfg.via.retx_timeout = 5_ms;
  return cfg;
}

/// Half round-trip time (us) over ping-pongs with an optional carrier flap
/// on the 0<->1 cable partway through the measurement.
double p2p_rtt2_us_flap(std::int64_t size, int rounds, double drop_prob,
                        sim::Duration flap_after, sim::Duration flap_down) {
  ViaPair p(lossy_config(drop_prob));
  for (int i = 0; i < rounds + 4; ++i) {
    p.a->post_recv(size + 64);
    p.b->post_recv(size + 64);
  }
  std::unique_ptr<flt::Injector> inj;
  if (flap_down > 0) {
    flt::Schedule faults;
    faults.link_flap(p.cluster.engine().now() + flap_after, 0,
                     topo::Dir{0, +1}, flap_down);
    inj = std::make_unique<flt::Injector>(p.cluster, faults);
  }
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  auto pong = [](via::Vi& vi, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      auto m = co_await vi.recv_completion();
      co_await vi.send(std::move(m.data));
    }
  };
  auto ping = [](via::Vi& vi, sim::Engine& eng, std::int64_t sz, int n,
                 sim::Time& start, sim::Time& end) -> Task<> {
    start = eng.now();
    for (int i = 0; i < n; ++i) {
      co_await vi.send(payload(static_cast<std::size_t>(sz)));
      (void)co_await vi.recv_completion();
    }
    end = eng.now();
  };
  pong(*p.b, rounds).detach();
  ping(*p.a, p.cluster.engine(), size, rounds, t0, t1).detach();
  p.cluster.run();
  return sim::to_us(t1 - t0) / 2.0 / rounds;
}

}  // namespace

int main() {
  const double rates[] = {0.0, 1e-5, 1e-4, 1e-3};

  std::printf("# Ablation: performance vs wire loss rate\n");
  std::printf("# p2p half-RTT (us, 8 KiB) and 3-D aggregate send BW (MB/s,"
              " 16 KiB)\n");
  std::printf("%12s %12s %12s\n", "drop_prob", "p2p_us", "agg3d_mbs");
  for (double rate : rates) {
    const double lat = p2p_rtt2_us_flap(8192, 60, rate, 0, 0);
    const double bw =
        via_aggregate_bw_faulty(3, 16384, 40, lossy_config(rate));
    std::printf("%12.0e %12.2f %12.1f\n", rate, lat, bw);
  }
  std::printf("# every payload still arrives intact: Reliable Delivery"
              " absorbs the loss,\n# paying one go-back-N stall per"
              " retransmitted window\n\n");

  std::printf("# Ablation: mid-run link flap (carrier down, then restored)\n");
  std::printf("# flap hits 2 ms into the run; routing detours around the"
              " dead cable\n");
  std::printf("%12s %12s %12s\n", "down_ms", "p2p_us", "agg3d_mbs");
  const sim::Duration downs[] = {0, 1_ms, 5_ms, 20_ms};
  for (sim::Duration down : downs) {
    const double lat = p2p_rtt2_us_flap(8192, 60, 0.0, 2_ms, down);
    const double bw = via_aggregate_bw_faulty(3, 16384, 40, lossy_config(0.0),
                                              2_ms, down);
    std::printf("%12.1f %12.2f %12.1f\n", sim::to_us(down) / 1000.0, lat, bw);
  }
  std::printf("# no hang, no lost payloads: traffic reroutes (+2 hops worst"
              " case) until\n# carrier returns, then falls back to the"
              " minimal SDF route\n");
  return 0;
}
