#pragma once

// Shared measurement harnesses for the paper-reproduction benches.
//
// Every figure bench builds a fresh simulated cluster per data point, runs
// the paper's measurement pattern, and prints one row per message size in a
// gnuplot-friendly table.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/gige_mesh.hpp"
#include "cluster/tcp_mesh.hpp"
#include "mp/endpoint.hpp"
#include "sim/engine.hpp"
#include "sim/lp.hpp"
#include "via/agent.hpp"

namespace benchutil {

using namespace meshmp;
using namespace meshmp::sim::literals;
using sim::Task;

// --------------------------------------------------------------------------
// Self-timing report: collects the simulated results a bench prints plus the
// host wall-clock it took to produce them, and emits both as
// BENCH_<name>.json in the working directory. Machine-readable so CI perf
// jobs (and humans diffing runs) can track simulator throughput regressions
// alongside the modeled numbers.
// --------------------------------------------------------------------------

class BenchReport {
 public:
  explicit BenchReport(std::string name);
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;
  /// Writes the JSON on destruction (covers early returns in bench mains).
  ~BenchReport();

  /// One result row: ordered (key, value) pairs, e.g. {{"bytes", 8},
  /// {"broadcast_us", 208.2}}.
  void add_row(std::vector<std::pair<std::string, double>> row);

  /// Host seconds elapsed since construction.
  double host_seconds() const;

 private:
  std::string name_;
  std::int64_t start_ns_ = 0;
  std::vector<std::vector<std::pair<std::string, double>>> rows_;
};

inline std::vector<std::byte> payload(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 31) & 0xff);
  }
  return v;
}

// --------------------------------------------------------------------------
// Raw M-VIA harnesses (figures 2 and 3)
// --------------------------------------------------------------------------

struct ViaPair {
  cluster::GigeMeshCluster cluster;
  via::Vi* a = nullptr;
  via::Vi* b = nullptr;

  explicit ViaPair(cluster::GigeMeshConfig cfg = ring4())
      : cluster(std::move(cfg)) {
    auto dial = [](via::KernelAgent& ag, via::Vi*& out) -> Task<> {
      out = co_await ag.connect(1, 1);
    };
    auto answer = [](via::KernelAgent& ag, via::Vi*& out) -> Task<> {
      out = co_await ag.accept(1);
    };
    cluster.agent(1).listen(1);
    answer(cluster.agent(1), b).detach();
    dial(cluster.agent(0), a).detach();
    cluster.run();
  }

  static cluster::GigeMeshConfig ring4() {
    cluster::GigeMeshConfig cfg;
    cfg.shape = topo::Coord{4};
    return cfg;
  }
};

/// Half round-trip time over `rounds` VIA ping-pongs.
inline double via_rtt2_us(std::int64_t size, int rounds = 40,
                          cluster::GigeMeshConfig cfg = ViaPair::ring4()) {
  ViaPair p(std::move(cfg));
  for (int i = 0; i < rounds + 4; ++i) {
    p.a->post_recv(size + 64);
    p.b->post_recv(size + 64);
  }
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  auto pong = [](via::Vi& vi, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      auto m = co_await vi.recv_completion();
      co_await vi.send(std::move(m.data));
    }
  };
  auto ping = [](via::Vi& vi, sim::Engine& eng, std::int64_t sz, int n,
                 sim::Time& start, sim::Time& end) -> Task<> {
    start = eng.now();
    for (int i = 0; i < n; ++i) {
      co_await vi.send(payload(static_cast<std::size_t>(sz)));
      (void)co_await vi.recv_completion();
    }
    end = eng.now();
  };
  pong(*p.b, rounds).detach();
  ping(*p.a, p.cluster.engine(), size, rounds, t0, t1).detach();
  p.cluster.run();
  return sim::to_us(t1 - t0) / 2.0 / rounds;
}

/// Pingpong bandwidth (MB/s): alternating one-way transfers.
inline double via_pingpong_bw(std::int64_t size, int rounds = 30) {
  const double rtt2_us = via_rtt2_us(size, rounds);
  return static_cast<double>(size) / rtt2_us;  // bytes/us == MB/s
}

/// Simultaneous send bandwidth (MB/s): both ends stream `count` messages of
/// `size` concurrently; reported per direction.
inline double via_simultaneous_bw(std::int64_t size, int count = 200,
                                  cluster::GigeMeshConfig cfg =
                                      ViaPair::ring4()) {
  ViaPair p(std::move(cfg));
  for (int i = 0; i < count + 4; ++i) {
    p.a->post_recv(size + 64);
    p.b->post_recv(size + 64);
  }
  // Each drain records its own finish time; the measurement is the max.
  // A shared "++fin == 2" latch would be a data race under the parallel
  // engine (the two drains live on different logical processes).
  sim::Time ends[2] = {0, 0};
  auto stream = [](via::Vi& vi, std::int64_t sz, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      co_await vi.send(payload(static_cast<std::size_t>(sz)));
    }
  };
  auto drain = [](via::Vi& vi, sim::Engine& eng, int n,
                  sim::Time& end) -> Task<> {
    for (int i = 0; i < n; ++i) (void)co_await vi.recv_completion();
    end = eng.now();
  };
  const sim::Time t0 = p.cluster.engine().now();
  {
    sim::LpScope s0(p.cluster.engine(), p.cluster.lp_of(0));
    stream(*p.a, size, count).detach();
    drain(*p.a, p.cluster.engine(), count, ends[0]).detach();
  }
  {
    sim::LpScope s1(p.cluster.engine(), p.cluster.lp_of(1));
    stream(*p.b, size, count).detach();
    drain(*p.b, p.cluster.engine(), count, ends[1]).detach();
  }
  p.cluster.run();
  const sim::Time t_end = ends[0] > ends[1] ? ends[0] : ends[1];
  return sim::rate_mb_per_s(size * count, t_end - t0);
}

/// Aggregated send bandwidth (MB/s) of the centre node of a 2-D (3x3) or
/// 3-D (3x3x3) torus: all links stream bidirectionally at once, like the
/// paper's "sum of the simultaneous bandwidth of each GigE link within a
/// single user process".
double via_aggregate_bw(int ndims, std::int64_t size, int count_per_link);
/// Same, with custom adapter parameters (NAPI / coalescing ablations).
double via_aggregate_bw_cfg(int ndims, std::int64_t size, int count_per_link,
                            const hw::NicParams& nic_params);
/// Same, with a full cluster config (wire loss/corruption rates, VIA
/// tunables) and an optional link flap: `flap_after` into the streaming
/// phase the centre node's first port loses carrier for `flap_down`
/// (0 = no flap). Shape is still fixed by `ndims`.
double via_aggregate_bw_faulty(int ndims, std::int64_t size,
                               int count_per_link,
                               cluster::GigeMeshConfig cfg,
                               sim::Duration flap_after = 0,
                               sim::Duration flap_down = 0);

// --------------------------------------------------------------------------
// TCP harnesses
// --------------------------------------------------------------------------

struct TcpPair {
  cluster::TcpMeshCluster cluster;
  tcpstack::TcpSocket* a = nullptr;
  tcpstack::TcpSocket* b = nullptr;

  TcpPair()
      : cluster([] {
          cluster::TcpMeshConfig cfg;
          cfg.shape = topo::Coord{4};
          return cfg;
        }()) {
    auto dial = [](tcpstack::TcpStack& st, tcpstack::TcpSocket*& out)
        -> Task<> { out = co_await st.connect(1, 7); };
    auto answer = [](tcpstack::TcpStack& st, tcpstack::TcpSocket*& out)
        -> Task<> { out = co_await st.accept(7); };
    cluster.stack(1).listen(7);
    answer(cluster.stack(1), b).detach();
    dial(cluster.stack(0), a).detach();
    cluster.run();
  }
};

double tcp_rtt2_us(std::int64_t size, int rounds = 40);
double tcp_simultaneous_bw(std::int64_t size, int count = 200);
double tcp_aggregate_bw(int ndims, std::int64_t size, int count_per_link);

inline double tcp_pingpong_bw(std::int64_t size, int rounds = 30) {
  return static_cast<double>(size) / tcp_rtt2_us(size, rounds);
}

// --------------------------------------------------------------------------
// MPI/QMP (endpoint) harnesses (figure 4)
// --------------------------------------------------------------------------

double mpiqmp_rtt2_us(std::int64_t size, int rounds = 40,
                      mp::CoreParams mp_params = {});
double mpiqmp_aggregate_bw(int ndims, std::int64_t size, int count_per_link);
/// One-way streaming bandwidth between neighbours through MPI/QMP.
double mpiqmp_stream_bw(std::int64_t size, int count,
                        mp::CoreParams mp_params = {});
/// Latency between ranks `hops` apart on a ring (kernel packet switching).
double mpiqmp_routed_rtt2_us(int hops, std::int64_t size, int rounds = 20);

}  // namespace benchutil
