// Figure 3 reproduction: aggregated (usable) send bandwidth of one node with
// all of its mesh links streaming bidirectionally at once — 4 links in a 2-D
// torus, 6 links in a 3-D torus — for the modified M-VIA and for TCP.
//
// Paper headlines: M-VIA 2-D flattens around 400 MB/s (~100 MB/s per link);
// M-VIA 3-D peaks near 550 MB/s and falls back toward 400 MB/s at large
// sizes (receive-copy + pipelining limits); TCP far below and roughly flat —
// a single CPU cannot drive multiple GigE links through the kernel stack.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace benchutil;

  BenchReport report("fig3_aggregate_bw");
  std::printf("# Figure 3: aggregated send bandwidth (MB/s) of one node\n");
  std::printf("%10s %12s %12s %12s %12s\n", "bytes", "via_3d", "via_2d",
              "tcp_3d", "tcp_2d");

  const std::int64_t sizes[] = {1024,  2048,   4096,   8192,  16384,
                                32768, 65536, 131072, 262144, 524288,
                                1048576};
  for (std::int64_t s : sizes) {
    const int count = s >= 262144 ? 20 : (s >= 32768 ? 60 : 150);
    const double via3 = via_aggregate_bw(3, s, count);
    const double via2 = via_aggregate_bw(2, s, count);
    const double tcp3 = tcp_aggregate_bw(3, s, count);
    const double tcp2 = tcp_aggregate_bw(2, s, count);
    std::printf("%10lld %12.1f %12.1f %12.1f %12.1f\n",
                static_cast<long long>(s), via3, via2, tcp3, tcp2);
    report.add_row({{"bytes", static_cast<double>(s)},
                    {"via_3d_mbs", via3},
                    {"via_2d_mbs", via2},
                    {"tcp_3d_mbs", tcp3},
                    {"tcp_2d_mbs", tcp2}});
  }
  return 0;
}
