// Ablation: user-level global combining (paper sec. 5.2) vs the
// interrupt-level global reduction prototype (paper sec. 7 future work).
//
// The user-level global sum pays, at every tree level, a receive-interrupt,
// a copy into user space, a process wakeup, and a user-level send post. The
// interrupt-level version combines partial sums inside the receive ISR and
// forwards at kernel level, so interior nodes never touch user space.
// Expected shape: the kernel version wins by roughly the per-hop user
// overhead times the tree depth — the paper's stated motivation.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "qmp/qmp.hpp"

namespace {

using namespace benchutil;

struct SumWorld {
  cluster::GigeMeshCluster cluster;
  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  std::vector<std::unique_ptr<qmp::Machine>> machines;
  sim::Time start = 0;
  // Per-rank finish slots (max after the run); a shared countdown latch
  // would race across logical processes under the parallel engine.
  std::vector<sim::Time> finish;

  explicit SumWorld(topo::Coord shape)
      : cluster([&] {
          cluster::GigeMeshConfig cfg;
          cfg.shape = shape;
          return cfg;
        }()),
        finish(static_cast<std::size_t>(cluster.size()), 0) {
    for (topo::Rank r = 0; r < cluster.size(); ++r) {
      sim::LpScope scope(cluster.engine(), cluster.lp_of(r));
      eps.push_back(std::make_unique<mp::Endpoint>(cluster.agent(r),
                                                   mp::CoreParams{}));
      machines.push_back(std::make_unique<qmp::Machine>(*eps.back()));
    }
  }
};

double time_global_sum(topo::Coord shape, bool kernel_level) {
  SumWorld w(shape);
  auto prog = [](SumWorld& world, qmp::Machine& m,
                 bool klevel) -> sim::Task<> {
    co_await m.barrier();
    if (m.node_number() == 0) world.start = m.endpoint().engine().now();
    double s = 0;
    if (klevel) {
      s = co_await m.sum_double_kernel(1.0);
    } else {
      s = co_await m.sum_double(1.0);
    }
    (void)s;
    world.finish[static_cast<std::size_t>(m.node_number())] =
        m.endpoint().engine().now();
  };
  for (topo::Rank r = 0; r < w.cluster.size(); ++r) {
    sim::LpScope scope(w.cluster.engine(), w.cluster.lp_of(r));
    prog(w, *w.machines[static_cast<std::size_t>(r)], kernel_level).detach();
  }
  w.cluster.run();
  const sim::Time end = *std::max_element(w.finish.begin(), w.finish.end());
  return sim::to_us(end - w.start);
}

}  // namespace

int main() {
  std::printf("# Ablation: user-level vs interrupt-level global sum\n");
  std::printf("%12s %14s %16s %10s\n", "mesh", "user_us", "kernel_us",
              "speedup");
  for (topo::Coord shape :
       {topo::Coord{4, 4}, topo::Coord{2, 4, 4}, topo::Coord{4, 4, 4},
        topo::Coord{4, 8, 8}}) {
    std::string name;
    for (int d = 0; d < shape.ndims(); ++d) {
      if (d) name += "x";
      name += std::to_string(shape[d]);
    }
    const double user = time_global_sum(shape, false);
    const double kern = time_global_sum(shape, true);
    std::printf("%12s %14.1f %16.1f %10.2f\n", name.c_str(), user, kern,
                user / kern);
  }
  std::printf("# paper sec. 7: interrupt-level combining 'eliminates the"
              " overhead of copying\n# data to user space for the"
              " intermediate steps'\n");
  return 0;
}
