// Engine hot-path microbenchmark: raw events/sec through the ladder queue,
// InlineFn dispatch, and the pooled event arena, with a process-wide heap
// counter proving the steady state performs ZERO per-event allocations.
//
// Three mixes stress different queue shapes:
//  * churn   — W self-rescheduling events with pseudo-random offsets: pushes
//              land across rungs, pops drain buckets, reseeds happen.
//  * timers  — K fixed-period timers: the classic calendar-queue best case,
//              all pushes land near the bottom.
//  * ring    — a token ring of coroutines waking each other through
//              Engine::post: every event is a coroutine resumption.
//
// Every mix runs twice on a fresh engine with the determinism digest on; the
// row records digest_match so a nondeterministic engine change fails the
// bench_diff gate (the checked-in baseline pins digest_match = 1 and
// steady_allocs = 0). Host events/sec is printed for humans and exported as
// the (informational) host.engine.* metric group by BenchReport.

#include <atomic>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <new>

#include "common.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"

// ---------------------------------------------------------------------------
// Process-wide heap counter. Replacing the global operator new/delete in the
// bench binary counts every allocation on this process; the steady-state
// window of each mix must observe zero.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace meshmp;

constexpr std::uint64_t kWarmupEvents = 20'000;
constexpr std::uint64_t kMeasuredEvents = 300'000;

struct MixResult {
  std::uint64_t events = 0;       ///< events dispatched in the measured window
  std::int64_t sim_ns = 0;        ///< simulated time consumed (deterministic)
  std::uint64_t steady_allocs = 0;  ///< heap allocations in the window (want 0)
  std::uint64_t digest = 0;
  std::uint64_t depth_hwm = 0;
  double host_secs = 0;           ///< host time of the window (informational)
};

double host_secs_now() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

/// Runs warmup then the measured window on `eng`, assuming all work is
/// already scheduled. The warmup must populate the arena freelist and the
/// queue's internal vectors to their high-water mark.
template <typename Harness>
MixResult run_mix(Harness&& setup) {
  sim::Engine eng;
  eng.enable_digest(true);
  setup(eng);
  while (eng.executed() < kWarmupEvents) {
    if (!eng.step()) break;  // mix drained early: events counted below
  }
  const std::uint64_t warm_events = eng.executed();
  const sim::Time warm_now = eng.now();
  const std::uint64_t a0 = g_heap_allocs.load(std::memory_order_relaxed);
  const double t0 = host_secs_now();
  eng.run();
  const double t1 = host_secs_now();
  const std::uint64_t a1 = g_heap_allocs.load(std::memory_order_relaxed);
  MixResult r;
  r.events = eng.executed() - warm_events;
  r.sim_ns = eng.now() - warm_now;
  r.steady_allocs = a1 - a0;
  r.digest = eng.digest();
  r.depth_hwm = eng.queue_depth_hwm();
  r.host_secs = t1 - t0;
  return r;
}

// -- churn: W floating self-rescheduling events, pseudo-random offsets ------

struct ChurnEvent {
  sim::Engine* eng;
  sim::Rng* rng;
  std::uint64_t* left;
  void operator()() {
    if (*left == 0) return;
    --*left;
    eng->schedule(static_cast<sim::Duration>(rng->below(9999) + 1),
                  ChurnEvent{*this}, "churn");
  }
};

MixResult mix_churn() {
  static sim::Rng rng(42);      // static: churn state outlives setup()
  static std::uint64_t left;
  rng = sim::Rng(42);
  left = kWarmupEvents + kMeasuredEvents;
  return run_mix([](sim::Engine& eng) {
    for (int i = 0; i < 64; ++i) {
      eng.schedule(static_cast<sim::Duration>(rng.below(9999) + 1),
                   ChurnEvent{&eng, &rng, &left}, "churn");
    }
  });
}

// -- timers: K fixed-period repeating timers --------------------------------

struct TimerEvent {
  sim::Engine* eng;
  std::uint64_t* left;
  sim::Duration period;
  void operator()() {
    if (*left == 0) return;
    --*left;
    eng->schedule(period, TimerEvent{*this}, "timer");
  }
};

MixResult mix_timers() {
  static std::uint64_t left;
  left = kWarmupEvents + kMeasuredEvents;
  return run_mix([](sim::Engine& eng) {
    for (int i = 0; i < 256; ++i) {
      eng.schedule(100 + 37 * (i % 13), TimerEvent{&eng, &left, 100 + 37 * (i % 13)},
                   "timer");
    }
  });
}

// -- ring: coroutines passing a token through Engine::post ------------------

/// Single-consumer one-shot wakeup slot: the coroutine parks its handle here
/// and a neighbour posts it to the engine. No containers, no allocations.
/// The awaiter holds a pointer back to the slot: the compiler may materialize
/// the awaiter into the coroutine frame, so an awaiter that stored the handle
/// in *itself* would leave the shared slot's waiter forever null.
struct TokenSlot {
  std::coroutine_handle<> waiter{};
  auto wait() noexcept {
    struct Awaiter {
      TokenSlot* slot;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) noexcept {
        slot->waiter = h;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }
};

constexpr int kRingSize = 64;

sim::Task<> ring_actor(sim::Engine& eng, TokenSlot* slots, int me,
                       std::uint64_t rounds) {
  // The last actor lets the token die on its final round: actor 0 was woken
  // `rounds` times already (injection + rounds-1 passes), has returned, and
  // its detached frame is gone — posting its stale handle would resume a
  // destroyed coroutine.
  const bool ends_token = me == kRingSize - 1;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    co_await slots[me].wait();
    if (ends_token && r + 1 == rounds) break;
    eng.post(slots[(me + 1) % kRingSize].waiter);
  }
}

MixResult mix_ring() {
  static TokenSlot slots[kRingSize];
  for (auto& s : slots) s.waiter = {};
  const std::uint64_t rounds = (kWarmupEvents + kMeasuredEvents) / kRingSize;
  return run_mix([rounds](sim::Engine& eng) {
    for (int i = 0; i < kRingSize; ++i) {
      ring_actor(eng, slots, i, rounds).detach();
    }
    eng.post(slots[0].waiter);  // inject the token
  });
}

void report_mix(benchutil::BenchReport& rep, const char* name, int mix_id,
                MixResult (*mix)()) {
  const MixResult first = mix();
  const MixResult second = mix();
  const double evps =
      second.host_secs > 0
          ? static_cast<double>(second.events) / second.host_secs
          : 0;
  const int digest_match = first.digest == second.digest ? 1 : 0;
  std::printf("%-8s %9llu events  %7.2f Mev/s  depth_hwm %6llu  "
              "steady_allocs %llu  digest_match %d\n",
              name, static_cast<unsigned long long>(second.events),
              evps / 1e6, static_cast<unsigned long long>(second.depth_hwm),
              static_cast<unsigned long long>(second.steady_allocs),
              digest_match);
  // Rows carry only deterministic values; host throughput goes to stdout and
  // the host.engine.* metric group.
  rep.add_row({{"mix", mix_id},
               {"events", static_cast<double>(second.events)},
               {"sim_ns", static_cast<double>(second.sim_ns)},
               {"queue_depth_hwm", static_cast<double>(second.depth_hwm)},
               {"steady_allocs", static_cast<double>(second.steady_allocs)},
               {"digest_match", digest_match}});
  if (second.steady_allocs != 0 || digest_match != 1) {
    std::fprintf(stderr,
                 "FAIL %s: steady_allocs=%llu (want 0) digest_match=%d\n",
                 name, static_cast<unsigned long long>(second.steady_allocs),
                 digest_match);
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);  // progress survives a crash
  benchutil::BenchReport rep("microbench_engine");
  report_mix(rep, "churn", 0, mix_churn);
  report_mix(rep, "timers", 1, mix_timers);
  report_mix(rep, "ring", 2, mix_ring);
  return 0;
}
