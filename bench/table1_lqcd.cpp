// Table 1 reproduction: normalized LQCD (Wilson dslash) benchmark and
// estimated dollars-per-Mflops on the GigE mesh cluster (QMP over modified
// M-VIA) versus a Myrinet switched cluster (vendor-MPI-like GM transport).
//
// Paper headlines: the Myrinet cluster performs a little better in absolute
// Gflops (its network costs less time, even though our GigE nodes have the
// faster 2.67 GHz CPUs vs 2.0 GHz); GigE performance climbs with lattice
// size as the surface-to-volume ratio falls; and the GigE mesh wins clearly
// on $/Mflops because three dual-port adapters ($420/node) cost far less
// than a Myrinet NIC + switch port (~$1000/node).
//
// Exact lattice sizes are unreadable in the source scan; we sweep per-node
// sub-lattices L^4 for L in {4,6,8,12,16} (documented in DESIGN.md).

#include <cstdio>

#include "hw/params.hpp"
#include "lqcd/app.hpp"
#include "topo/torus.hpp"

int main() {
  using namespace meshmp;

  const hw::CostParams costs;
  std::printf("# Table 1: normalized LQCD benchmark (Wilson dslash)\n");
  std::printf("# GigE mesh: 4x4x4 torus section; Myrinet: 64-node switched"
              " cluster\n");
  std::printf("%10s %14s %16s %14s %16s %10s\n", "lattice", "myri_gflops",
              "myri_usd_mflop", "gige_gflops", "gige_usd_mflop",
              "gige_comm");

  for (int L : {4, 6, 8, 12, 16}) {
    lqcd::DslashRunConfig cfg;
    cfg.local_extent = L;
    cfg.iterations = 5;
    const auto gige = lqcd::run_dslash_gige(topo::Coord{4, 4, 4}, cfg);
    const auto myri = lqcd::run_dslash_myrinet(64, cfg);
    std::printf("%7d^4 %14.3f %16.2f %14.3f %16.2f %9.1f%%\n", L,
                myri.mflops_per_node / 1000.0,
                lqcd::usd_per_mflops(myri.mflops_per_node,
                                     costs.myrinet_node_usd()),
                gige.mflops_per_node / 1000.0,
                lqcd::usd_per_mflops(gige.mflops_per_node,
                                     costs.gige_node_usd()),
                gige.comm_fraction * 100.0);
  }
  std::printf("# paper: GigE Gflops grow with lattice size; GigE $/Mflops"
              " beat Myrinet throughout\n");
  return 0;
}
