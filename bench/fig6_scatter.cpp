// Figure 6 reproduction: one-to-all personalized communication (scatter)
// with the SDF and OPT algorithms on the 8x8 (64-node) and 4x8x8 (256-node)
// configurations of the mesh cluster.
//
// Paper headlines: OPT dispatches all messages ~4x faster than SDF on either
// configuration across the tested sizes, and OPT scales well from 8x8 to
// 4x8x8 except at the largest sizes (six simultaneous sends from the root
// become hard).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "coll/scatter.hpp"
#include "coll/tree.hpp"

namespace {

using namespace benchutil;

struct ScatterWorld {
  cluster::GigeMeshCluster cluster;
  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  sim::Time t_start = 0;
  // Per-rank finish slots (max after the run); a shared countdown latch
  // would race across logical processes under the parallel engine.
  std::vector<sim::Time> finish;

  explicit ScatterWorld(topo::Coord shape)
      : cluster([&] {
          cluster::GigeMeshConfig cfg;
          cfg.shape = shape;
          return cfg;
        }()),
        finish(static_cast<std::size_t>(cluster.size()), 0) {
    for (topo::Rank r = 0; r < cluster.size(); ++r) {
      sim::LpScope scope(cluster.engine(), cluster.lp_of(r));
      eps.push_back(std::make_unique<mp::Endpoint>(cluster.agent(r),
                                                   mp::CoreParams{}));
    }
  }
};

double run_scatter(topo::Coord shape, coll::ScatterAlg alg,
                   std::int64_t bytes) {
  ScatterWorld w(shape);
  const int n = static_cast<int>(w.cluster.size());
  auto node = [](ScatterWorld& world, mp::Endpoint& ep, coll::ScatterAlg a,
                 std::int64_t sz, int nranks) -> Task<> {
    co_await coll::barrier(ep, (1 << 23) | 100);
    if (ep.rank() == 0) world.t_start = ep.engine().now();
    std::vector<std::byte> mine;
    if (ep.rank() == 0) {
      std::vector<std::vector<std::byte>> chunks(
          static_cast<std::size_t>(nranks),
          payload(static_cast<std::size_t>(sz)));
      mine = co_await coll::scatter(ep, 0, &chunks, (1 << 23) | 400, a);
    } else {
      mine = co_await coll::scatter(ep, 0, nullptr, (1 << 23) | 400, a);
    }
    world.finish[static_cast<std::size_t>(ep.rank())] = ep.engine().now();
  };
  for (topo::Rank r = 0; r < w.cluster.size(); ++r) {
    sim::LpScope scope(w.cluster.engine(), w.cluster.lp_of(r));
    node(w, *w.eps[static_cast<std::size_t>(r)], alg, bytes, n).detach();
  }
  w.cluster.run();
  const sim::Time t_end = *std::max_element(w.finish.begin(), w.finish.end());
  return sim::to_us(t_end - w.t_start);
}

}  // namespace

int main() {
  std::printf("# Figure 6: personalized one-to-all (scatter), total us until"
              " every message is delivered\n");
  std::printf("%10s %14s %14s %10s %14s %14s %10s\n", "bytes", "8x8_sdf",
              "8x8_opt", "speedup", "4x8x8_sdf", "4x8x8_opt", "speedup");
  for (std::int64_t s : {16LL, 64LL, 256LL, 1024LL, 4096LL}) {
    const double sdf64 = run_scatter(topo::Coord{8, 8},
                                     coll::ScatterAlg::kSdf, s);
    const double opt64 = run_scatter(topo::Coord{8, 8},
                                     coll::ScatterAlg::kOpt, s);
    const double sdf256 = run_scatter(topo::Coord{4, 8, 8},
                                      coll::ScatterAlg::kSdf, s);
    const double opt256 = run_scatter(topo::Coord{4, 8, 8},
                                      coll::ScatterAlg::kOpt, s);
    std::printf("%10lld %14.1f %14.1f %10.2f %14.1f %14.1f %10.2f\n",
                static_cast<long long>(s), sdf64, opt64, sdf64 / opt64,
                sdf256, opt256, sdf256 / opt256);
  }
  std::printf("# paper: OPT ~4x faster than SDF on both configurations\n");
  return 0;
}
