// Section 5.1 reproduction (text series backing fig. 4): point-to-point
// latency to NON-nearest neighbours through the modified M-VIA's kernel
// packet switching.
//
// Paper headline: routed latency = 18.5 us + ~12.5 us per additional hop
// (forwarding happens at kernel interrupt level, skipping the user-space
// copies), and non-neighbour bandwidth without contention matches the
// neighbour bandwidth.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace benchutil;

  std::printf("# Sec 5.1: MPI/QMP latency vs hop count (64 B messages)\n");
  std::printf("%6s %12s %16s\n", "hops", "rtt2_us", "us_per_extra_hop");
  double prev = 0;
  for (int hops = 1; hops <= 8; ++hops) {
    const double us = mpiqmp_routed_rtt2_us(hops, 64);
    std::printf("%6d %12.2f %16.2f\n", hops, us, hops == 1 ? 0.0 : us - prev);
    prev = us;
  }
  std::printf("# paper: slope ~12.5 us/hop on top of the 18.5 us base\n");

  std::printf("\n# non-neighbour bandwidth under no contention (256 KiB"
              " messages, MB/s)\n");
  std::printf("%6s %12s\n", "hops", "bw_mbs");
  for (int hops : {1, 2, 4}) {
    const double us = mpiqmp_routed_rtt2_us(hops, 262144, 8);
    std::printf("%6d %12.1f\n", hops, 262144.0 / us);
  }
  return 0;
}
