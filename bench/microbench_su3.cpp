// google-benchmark microbenchmarks of the real (host-executed) LQCD
// arithmetic: SU(3) matrix algebra and the reference Wilson dslash. These
// measure *this machine's* throughput on the actual kernels — useful for
// sanity-checking the flops_per_sec parameter fed to the cluster model.

#include <benchmark/benchmark.h>

#include "lqcd/dslash.hpp"
#include "lqcd/lattice.hpp"
#include "lqcd/su3.hpp"

namespace {

using namespace meshmp;
using namespace meshmp::lqcd;

void BM_Su3MatMat(benchmark::State& state) {
  sim::Rng rng(1);
  const Su3Matrix a = random_su3(rng);
  const Su3Matrix b = random_su3(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kFlopsSu3MatMat),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Su3MatMat);

void BM_Su3MatVec(benchmark::State& state) {
  sim::Rng rng(2);
  const Su3Matrix u = random_su3(rng);
  ColorVector v;
  for (int i = 0; i < 3; ++i) v[i] = Complex{0.5, -0.25};
  for (auto _ : state) {
    benchmark::DoNotOptimize(u * v);
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kFlopsSu3MatVec),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Su3MatVec);

void BM_WilsonDslash(benchmark::State& state) {
  const int L = static_cast<int>(state.range(0));
  const Lattice4D lat({L, L, L, L});
  sim::Rng rng(3);
  const GaugeField u = random_gauge(lat, rng);
  const SpinorField in = random_spinor_field(lat, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dslash(lat, u, in));
  }
  state.SetItemsProcessed(state.iterations() * lat.volume());
  state.counters["site_flops"] = benchmark::Counter(
      static_cast<double>(state.iterations() * lat.volume() *
                          kFlopsWilsonDslashPerSite),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WilsonDslash)->Arg(4)->Arg(8);

void BM_RandomSu3(benchmark::State& state) {
  sim::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_su3(rng));
  }
}
BENCHMARK(BM_RandomSu3);

}  // namespace

BENCHMARK_MAIN();
