// Ablation: flow-control token count (= pre-posted receive descriptors per
// channel, paper sec. 5.1). Few tokens throttle eager streaming (the sender
// stalls waiting for credits); beyond a modest number the wire is the limit.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace benchutil;

  std::printf("# Ablation: flow-control tokens per channel\n");
  std::printf("%8s %16s %16s\n", "tokens", "bw_1KiB_mbs", "bw_8KiB_mbs");
  for (int tokens : {2, 4, 8, 16, 32, 64, 128}) {
    mp::CoreParams params;
    params.tokens = tokens;
    params.credit_return_threshold = std::max(1, tokens / 2);
    std::printf("%8d %16.1f %16.1f\n", tokens,
                mpiqmp_stream_bw(1024, 300, params),
                mpiqmp_stream_bw(8192, 150, params));
  }
  std::printf("# the paper pre-posts enough descriptors that tokens never"
              " bound the pipe\n");
  return 0;
}
