// Ablation: receive-interrupt coalescing delay (the e1000 "interrupt delay"
// the paper tunes in its locally developed M-VIA driver, sec. 3).
//
// Expected shape: latency rises ~1:1 with the delay; single-link streaming
// bandwidth is insensitive (wire-limited); but the 3-D aggregate *gains*
// from moderate coalescing because fewer interrupts leave more CPU for the
// six links. This is exactly the trade the paper's driver tuning makes.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace benchutil;
  using namespace meshmp::sim::literals;

  std::printf("# Ablation: rx interrupt coalescing delay\n");
  std::printf("%12s %12s %14s\n", "delay_us", "rtt2_us", "sim_bw_mbs");
  for (sim::Duration d :
       {0_us, 2_us, 5_us, 9_us, 12.6_us, 20_us, 40_us}) {
    cluster::GigeMeshConfig cfg = ViaPair::ring4();
    cfg.nic.rx_interrupt_delay = d;
    const double lat = via_rtt2_us(64, 40, cfg);
    const double bw = via_simultaneous_bw(16384, 120, cfg);
    std::printf("%12.1f %12.2f %14.1f\n", sim::to_us(d), lat, bw);
  }
  std::printf("# default 12.6 us reproduces the paper's 18.5 us RTT/2;"
              " lower delays trade\n# aggregate CPU headroom for latency\n");

  std::printf("\n# NAPI polling mode (paper sec. 7 future work)\n");
  std::printf("%12s %12s %14s %14s\n", "mode", "rtt2_us", "sim_bw_mbs",
              "agg3d_mbs");
  for (bool napi : {false, true}) {
    cluster::GigeMeshConfig cfg = ViaPair::ring4();
    cfg.nic.napi = napi;
    const double lat = via_rtt2_us(64, 40, cfg);
    const double bw = via_simultaneous_bw(16384, 120, cfg);
    const double agg = via_aggregate_bw_cfg(3, 16384, 60, cfg.nic);
    std::printf("%12s %12.2f %14.1f %14.1f\n", napi ? "napi" : "irq", lat,
                bw, agg);
  }
  std::printf("# with a 15 us poll cadence NAPI beats per-frame interrupt"
              " coalescing on both\n# metrics: polling replaces the fixed"
              " 12.6 us delay AND frees CPU for 6 links\n");
  return 0;
}
