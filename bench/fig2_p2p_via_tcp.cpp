// Figure 2 reproduction: M-VIA vs TCP point-to-point latency (half round
// trip) and bandwidth (pingpong and bidirectional-simultaneous) over one
// GigE link.
//
// Paper headlines: M-VIA RTT/2 ~18.5 us for small messages; TCP latency at
// least 30% higher; M-VIA simultaneous send bandwidth approaching ~110 MB/s,
// ~37% better than TCP; pingpong bandwidths much closer together.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace benchutil;
  BenchReport report("fig2_p2p_via_tcp");

  std::printf("# Figure 2: M-VIA vs TCP point-to-point (one GigE link)\n");
  std::printf("# latency in us (half round trip), bandwidth in MB/s\n");
  std::printf("%10s %12s %12s %12s %12s %12s %12s\n", "bytes", "via_rtt2",
              "tcp_rtt2", "via_pp_bw", "tcp_pp_bw", "via_sim_bw",
              "tcp_sim_bw");

  const std::int64_t sizes[] = {4,    16,    64,    256,   1024,  4096,
                                8192, 16384, 32768, 65536, 131072, 262144};
  for (std::int64_t s : sizes) {
    const double via_lat = via_rtt2_us(s);
    const double tcp_lat = tcp_rtt2_us(s);
    const double via_pp = static_cast<double>(s) / via_lat;
    const double tcp_pp = static_cast<double>(s) / tcp_lat;
    const int count = s >= 65536 ? 60 : 200;
    const double via_sim = via_simultaneous_bw(s, count);
    const double tcp_sim = tcp_simultaneous_bw(s, count);
    std::printf("%10lld %12.2f %12.2f %12.2f %12.2f %12.2f %12.2f\n",
                static_cast<long long>(s), via_lat, tcp_lat, via_pp, tcp_pp,
                via_sim, tcp_sim);
    report.add_row({{"bytes", static_cast<double>(s)},
                    {"via_rtt2_us", via_lat},
                    {"tcp_rtt2_us", tcp_lat},
                    {"via_pp_bw", via_pp},
                    {"tcp_pp_bw", tcp_pp},
                    {"via_sim_bw", via_sim},
                    {"tcp_sim_bw", tcp_sim}});
  }

  const double small = via_rtt2_us(64);
  std::printf("\n# paper check: M-VIA small-message RTT/2 = %.1f us "
              "(paper: ~18.5 us)\n", small);
  std::printf("# paper check: TCP/M-VIA latency ratio at 64 B = %.2f "
              "(paper: >= 1.3)\n", tcp_rtt2_us(64) / small);
  return 0;
}
