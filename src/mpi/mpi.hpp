#pragma once

// MPI 1.1 subset over the common message-passing core (the paper's second
// message-passing system). Point-to-point with tags, wildcards, blocking and
// nonblocking operations, probe; communicator duplication with isolated
// contexts; and the mesh collective algorithms of coll/.
//
// Wire tag layout (24 bits available from the core):
//   [23]    class: 0 = user point-to-point, 1 = collective
//   [22:19] communicator context (world = 0, dup() allocates 1..14;
//           15 is reserved for QMP when both systems share an endpoint)
//   class 0: [18:0]  user tag  (so kTagUb = 2^19 - 1)
//   class 1: [18:11] collective sequence number (all ranks call collectives
//            in the same order, so equal seq = same operation instance)
//            [10:0]  collective op code
// User tags are limited to 0..kTagUb.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "coll/reduce_op.hpp"
#include "coll/scatter.hpp"
#include "coll/tree.hpp"
#include "mp/endpoint.hpp"
#include "mpi/datatypes.hpp"

namespace meshmp::mpi {

inline constexpr int kAnySource = mp::Endpoint::kAny;
inline constexpr int kAnyTag = mp::Endpoint::kAny;
/// MPI guarantees at least 32767; we expose 2^19-1 of user tag space.
inline constexpr int kTagUb = (1 << 19) - 1;

/// Return codes (MPI_SUCCESS-style). Communication failures surface as error
/// codes, never as hangs or aborts: an unreachable peer (link dead, no
/// surviving route, retry budget exhausted) yields kErrUnreachable; a send
/// issued from the minority side of a partitioned machine is refused with
/// kErrMinorityPartition until quorum is restored.
inline constexpr int kSuccess = 0;
inline constexpr int kErrUnreachable = 1;
inline constexpr int kErrMinorityPartition = 2;

struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::int64_t count = 0;   ///< received bytes
  int error = kSuccess;     ///< kSuccess / kErrUnreachable / kErrMinorityPartition
};

/// Handle for a nonblocking operation. Copyable (shared state).
class Request {
 public:
  Request() = default;
  [[nodiscard]] bool valid() const noexcept { return st_ != nullptr; }
  [[nodiscard]] bool done() const noexcept;
  /// Receive data after completion (moves out of the request).
  [[nodiscard]] std::vector<std::byte> take_data();
  [[nodiscard]] const Status& status() const;

  /// Shared completion state (implementation detail; public so the internal
  /// runner coroutines can name it).
  struct State {
    explicit State(sim::Engine& eng) : done(eng) {}
    sim::Trigger done;
    Status status;
    std::vector<std::byte> data;
    bool finished = false;
  };

 private:
  friend class Comm;
  std::shared_ptr<State> st_;
};

class Comm {
 public:
  /// World communicator over the endpoint's whole mesh (context 0).
  explicit Comm(mp::Endpoint& ep)
      : ep_(&ep), ctx_(0), next_ctx_(std::make_shared<std::uint32_t>(1)) {}

  /// A duplicate with an isolated communication context (MPI_Comm_dup):
  /// traffic on the dup never matches traffic on the parent. All ranks must
  /// dup in the same order.
  [[nodiscard]] Comm dup() const;

  [[nodiscard]] int rank() const { return ep_->rank(); }
  [[nodiscard]] int size() const {
    return static_cast<int>(ep_->agent().torus().size());
  }
  [[nodiscard]] int context() const { return static_cast<int>(ctx_); }
  [[nodiscard]] mp::Endpoint& endpoint() noexcept { return *ep_; }

  // -- blocking point-to-point ------------------------------------------
  /// Returns kSuccess, or kErrUnreachable when delivery to `dest` gave up.
  sim::Task<int> send(std::vector<std::byte> data, int dest, int tag);
  sim::Task<Status> recv(std::vector<std::byte>& out, int source, int tag);
  /// Combined send+recv (both progress concurrently; deadlock-free).
  sim::Task<Status> sendrecv(std::vector<std::byte> senddata, int dest,
                             int sendtag, std::vector<std::byte>& recvdata,
                             int source, int recvtag);
  /// MPI_Probe / MPI_Iprobe: envelope of a matchable message, not consumed.
  sim::Task<Status> probe(int source, int tag);
  std::optional<Status> iprobe(int source, int tag);

  // -- nonblocking ---------------------------------------------------------
  Request isend(std::vector<std::byte> data, int dest, int tag);
  Request irecv(int source, int tag);
  static sim::Task<Status> wait(Request& req);
  sim::Task<> waitall(std::span<Request> reqs);
  static bool test(const Request& req) { return req.done(); }

  // -- typed convenience ---------------------------------------------------
  template <typename T>
  sim::Task<int> send_vec(const std::vector<T>& v, int dest, int tag) {
    co_return co_await send(to_bytes(v), dest, tag);
  }
  template <typename T>
  sim::Task<std::vector<T>> recv_vec(int source, int tag) {
    std::vector<std::byte> raw;
    (void)co_await recv(raw, source, tag);
    co_return from_bytes<T>(raw);
  }

  // -- collectives (paper sec. 5.2 algorithms) ------------------------------
  sim::Task<> barrier();
  sim::Task<> bcast(std::vector<std::byte>& data, int root);
  sim::Task<> reduce(std::vector<std::byte>& data, const coll::ReduceOp& op,
                     int root);
  sim::Task<> allreduce(std::vector<std::byte>& data,
                        const coll::ReduceOp& op);
  /// Scalar global sum (the LQCD hot operation).
  sim::Task<double> allreduce_sum(double value);
  sim::Task<std::vector<std::byte>> scatter(
      const std::vector<std::vector<std::byte>>* chunks, int root,
      coll::ScatterAlg alg = coll::ScatterAlg::kOpt);
  sim::Task<std::vector<std::vector<std::byte>>> gather(
      std::vector<std::byte> mine, int root,
      coll::ScatterAlg alg = coll::ScatterAlg::kOpt);
  /// MPI_Allgather: every rank ends with everyone's contribution.
  sim::Task<std::vector<std::vector<std::byte>>> allgather(
      std::vector<std::byte> mine);
  sim::Task<std::vector<std::vector<std::byte>>> alltoall(
      std::vector<std::vector<std::byte>> chunks,
      coll::ScatterAlg alg = coll::ScatterAlg::kOpt);

 private:
  Comm(mp::Endpoint& ep, std::uint32_t ctx,
       std::shared_ptr<std::uint32_t> next_ctx)
      : ep_(&ep), ctx_(ctx), next_ctx_(std::move(next_ctx)) {}

  int user_tag(int tag) const;
  /// Mask/value pair matching "any user tag in this context".
  int any_tag_value() const;
  static int any_tag_mask();
  int coll_tag(int op);

  mp::Endpoint* ep_;
  std::uint32_t ctx_;
  std::shared_ptr<std::uint32_t> next_ctx_;
  std::uint32_t coll_seq_ = 0;
};

}  // namespace meshmp::mpi
