#pragma once

// Typed <-> byte-buffer conversion helpers for the MPI subset. MPI 1.1's
// basic datatypes map to trivially copyable C++ types; derived datatypes are
// out of scope (the paper's applications use contiguous buffers).

#include <cstddef>
#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace meshmp::mpi {

template <typename T>
std::vector<std::byte> to_bytes(const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> out(v.size() * sizeof(T));
  // meshmp-lint: host-copy(typed<->byte marshalling at the MPI boundary; the
  // modeled data path charges when these bytes enter a bounce/RMA buffer)
  if (!v.empty()) std::memcpy(out.data(), v.data(), out.size());
  return out;
}

template <typename T>
std::vector<std::byte> to_bytes(const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> out(sizeof(T));
  // meshmp-lint: host-copy(scalar marshalling at the MPI boundary)
  std::memcpy(out.data(), &v, sizeof(T));
  return out;
}

template <typename T>
std::vector<T> from_bytes(std::span<const std::byte> bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes.size() % sizeof(T) != 0) {
    throw std::invalid_argument("from_bytes: size not a multiple of type");
  }
  std::vector<T> out(bytes.size() / sizeof(T));
  // meshmp-lint: host-copy(byte->typed unmarshalling at the MPI boundary)
  if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

template <typename T>
T scalar_from_bytes(std::span<const std::byte> bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes.size() != sizeof(T)) {
    throw std::invalid_argument("scalar_from_bytes: size mismatch");
  }
  T v;
  // meshmp-lint: host-copy(scalar unmarshalling at the MPI boundary)
  std::memcpy(&v, bytes.data(), sizeof(T));
  return v;
}

}  // namespace meshmp::mpi
