#include "mpi/mpi.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

namespace meshmp::mpi {

using sim::Task;

namespace {
constexpr int kClassBit = 1 << 23;
constexpr int kCtxShift = 19;
constexpr int kCtxMask = 0xF << kCtxShift;
constexpr std::uint32_t kMaxCtx = 14;  // 15 reserved for QMP

int map_send_status(mp::SendStatus st) {
  switch (st) {
    case mp::SendStatus::kOk:
      return kSuccess;
    case mp::SendStatus::kUnreachable:
      return kErrUnreachable;
    case mp::SendStatus::kMinorityPartition:
      return kErrMinorityPartition;
  }
  return kErrUnreachable;
}
}  // namespace

bool Request::done() const noexcept { return st_ && st_->finished; }

std::vector<std::byte> Request::take_data() {
  if (!st_ || !st_->finished) {
    throw std::logic_error("Request::take_data before completion");
  }
  return std::move(st_->data);
}

const Status& Request::status() const {
  if (!st_ || !st_->finished) {
    throw std::logic_error("Request::status before completion");
  }
  return st_->status;
}

Comm Comm::dup() const {
  const std::uint32_t ctx = (*next_ctx_)++;
  if (ctx > kMaxCtx) {
    throw std::runtime_error("Comm::dup: out of communicator contexts");
  }
  return Comm(*ep_, ctx, next_ctx_);
}

int Comm::user_tag(int tag) const {
  if (tag < 0 || tag > kTagUb) {
    throw std::invalid_argument("MPI tag out of range");
  }
  return static_cast<int>(ctx_ << kCtxShift) | tag;
}

int Comm::any_tag_value() const {
  return static_cast<int>(ctx_ << kCtxShift);
}

int Comm::any_tag_mask() { return kClassBit | kCtxMask; }

int Comm::coll_tag(int op) {
  // Ops are spaced so multi-phase collectives (reduce+bcast, data+hop-ack)
  // can use op and op+1; the per-communicator sequence number separates
  // consecutive instances.
  const std::uint32_t seq = coll_seq_++ & 0xffu;
  return kClassBit | static_cast<int>(ctx_ << kCtxShift) |
         static_cast<int>(seq << 11) | op;
}

Task<int> Comm::send(std::vector<std::byte> data, int dest, int tag) {
  const mp::SendStatus st =
      co_await ep_->send(dest, user_tag(tag), std::move(data));
  co_return map_send_status(st);
}

Task<Status> Comm::recv(std::vector<std::byte>& out, int source, int tag) {
  // ANY_TAG is restricted to this communicator's user tag class via a mask.
  // (co_await deliberately kept out of conditional expressions: GCC 12
  // miscompiles temporaries there.)
  mp::Message msg;
  if (tag == kAnyTag) {
    msg = co_await ep_->recv(source, any_tag_value(), any_tag_mask());
  } else {
    msg = co_await ep_->recv(source, user_tag(tag));
  }
  Status st;
  st.source = msg.src;
  st.tag = msg.tag & kTagUb;
  st.count = static_cast<std::int64_t>(msg.data.size());
  if (!msg.ok) st.error = kErrUnreachable;
  out = std::move(msg.data);
  co_return st;
}

Task<Status> Comm::sendrecv(std::vector<std::byte> senddata, int dest,
                            int sendtag, std::vector<std::byte>& recvdata,
                            int source, int recvtag) {
  Request rreq = irecv(source, recvtag);
  const int rc = co_await send(std::move(senddata), dest, sendtag);
  Status st = co_await wait(rreq);
  if (st.error == kSuccess) st.error = rc;
  recvdata = rreq.take_data();
  co_return st;
}

Task<Status> Comm::probe(int source, int tag) {
  mp::Endpoint::ProbeResult r;
  if (tag == kAnyTag) {
    r = co_await ep_->probe(source, any_tag_value(), any_tag_mask());
  } else {
    r = co_await ep_->probe(source, user_tag(tag));
  }
  co_return Status{r.src, r.tag & kTagUb, r.bytes};
}

std::optional<Status> Comm::iprobe(int source, int tag) {
  const auto r = tag == kAnyTag
                     ? ep_->iprobe(source, any_tag_value(), any_tag_mask())
                     : ep_->iprobe(source, user_tag(tag));
  if (!r) return std::nullopt;
  return Status{r->src, r->tag & kTagUb, r->bytes};
}

namespace {

Task<> run_isend(mp::Endpoint& ep, std::shared_ptr<Request::State> st,
                 std::vector<std::byte> data, int dest, int wire_tag) {
  const mp::SendStatus rc = co_await ep.send(dest, wire_tag, std::move(data));
  st->status.error = map_send_status(rc);
  st->finished = true;
  st->done.fire();
}

Task<> run_irecv(mp::Endpoint& ep, std::shared_ptr<Request::State> st,
                 int source, int tag, int mask) {
  mp::Message msg = co_await ep.recv(source, tag, mask);
  st->status.source = msg.src;
  st->status.tag = msg.tag & kTagUb;
  st->status.count = static_cast<std::int64_t>(msg.data.size());
  if (!msg.ok) st->status.error = kErrUnreachable;
  st->data = std::move(msg.data);
  st->finished = true;
  st->done.fire();
}

}  // namespace

Request Comm::isend(std::vector<std::byte> data, int dest, int tag) {
  Request req;
  req.st_ = std::make_shared<Request::State>(ep_->engine());
  run_isend(*ep_, req.st_, std::move(data), dest, user_tag(tag)).detach();
  return req;
}

Request Comm::irecv(int source, int tag) {
  Request req;
  req.st_ = std::make_shared<Request::State>(ep_->engine());
  if (tag == kAnyTag) {
    run_irecv(*ep_, req.st_, source, any_tag_value(), any_tag_mask())
        .detach();
  } else {
    run_irecv(*ep_, req.st_, source, user_tag(tag), ~0).detach();
  }
  return req;
}

Task<Status> Comm::wait(Request& req) {
  if (!req.st_) throw std::logic_error("wait on null Request");
  co_await req.st_->done.wait();
  co_return req.st_->status;
}

Task<> Comm::waitall(std::span<Request> reqs) {
  for (Request& r : reqs) (void)co_await wait(r);
}

// -- collectives ------------------------------------------------------------

Task<> Comm::barrier() { co_await coll::barrier(*ep_, coll_tag(0)); }

Task<> Comm::bcast(std::vector<std::byte>& data, int root) {
  co_await coll::broadcast(*ep_, root, data, coll_tag(2));
}

Task<> Comm::reduce(std::vector<std::byte>& data, const coll::ReduceOp& op,
                    int root) {
  co_await coll::reduce(*ep_, root, data, op, coll_tag(4));
}

Task<> Comm::allreduce(std::vector<std::byte>& data,
                       const coll::ReduceOp& op) {
  co_await coll::allreduce(*ep_, data, op, coll_tag(6));
}

Task<double> Comm::allreduce_sum(double value) {
  auto bytes = to_bytes(value);
  co_await allreduce(bytes, coll::sum_op<double>());
  co_return scalar_from_bytes<double>(bytes);
}

Task<std::vector<std::byte>> Comm::scatter(
    const std::vector<std::vector<std::byte>>* chunks, int root,
    coll::ScatterAlg alg) {
  co_return co_await coll::scatter(*ep_, root, chunks, coll_tag(8), alg);
}

Task<std::vector<std::vector<std::byte>>> Comm::gather(
    std::vector<std::byte> mine, int root, coll::ScatterAlg alg) {
  co_return co_await coll::gather(*ep_, root, std::move(mine), coll_tag(10),
                                  alg);
}

namespace {

std::vector<std::byte> pack_chunks(
    const std::vector<std::vector<std::byte>>& chunks) {
  std::size_t total = sizeof(std::uint32_t);
  for (const auto& c : chunks) total += sizeof(std::uint64_t) + c.size();
  std::vector<std::byte> out(total);
  std::size_t off = 0;
  const auto n = static_cast<std::uint32_t>(chunks.size());
  // meshmp-lint: host-copy(gatherv chunk-framing codec; the framed payload is
  // charged once when it enters the endpoint's bounce/RMA path)
  std::memcpy(out.data(), &n, sizeof(n));
  off += sizeof(n);
  for (const auto& c : chunks) {
    const auto sz = static_cast<std::uint64_t>(c.size());
    std::memcpy(out.data() + off, &sz, sizeof(sz));
    off += sizeof(sz);
    if (!c.empty()) std::memcpy(out.data() + off, c.data(), c.size());
    off += c.size();
  }
  return out;
}

std::vector<std::vector<std::byte>> unpack_chunks(
    const std::vector<std::byte>& packed) {
  std::uint32_t n = 0;
  // meshmp-lint: host-copy(gatherv chunk-framing decode)
  std::memcpy(&n, packed.data(), sizeof(n));
  std::size_t off = sizeof(n);
  std::vector<std::vector<std::byte>> chunks(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t sz = 0;
    std::memcpy(&sz, packed.data() + off, sizeof(sz));
    off += sizeof(sz);
    chunks[i].assign(packed.begin() + static_cast<std::ptrdiff_t>(off),
                     packed.begin() + static_cast<std::ptrdiff_t>(off + sz));
    off += sz;
  }
  return chunks;
}

}  // namespace

Task<std::vector<std::vector<std::byte>>> Comm::allgather(
    std::vector<std::byte> mine) {
  // Gather to rank 0 (OPT reverse-scatter), then broadcast the packed set.
  auto all = co_await gather(std::move(mine), 0);
  std::vector<std::byte> packed;
  if (rank() == 0) packed = pack_chunks(all);
  co_await bcast(packed, 0);
  co_return unpack_chunks(packed);
}

Task<std::vector<std::vector<std::byte>>> Comm::alltoall(
    std::vector<std::vector<std::byte>> chunks, coll::ScatterAlg alg) {
  co_return co_await coll::alltoall(*ep_, std::move(chunks), coll_tag(12),
                                    alg);
}

}  // namespace meshmp::mpi
