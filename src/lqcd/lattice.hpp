#pragma once

// 4-D periodic lattice geometry: site indexing, neighbours, and per-face
// surface enumeration (the 3-D hypersurfaces a node exchanges with its mesh
// neighbours).

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

namespace meshmp::lqcd {

class Lattice4D {
 public:
  using Site = std::int32_t;

  explicit Lattice4D(std::array<int, 4> dims) : dims_(dims) {
    volume_ = 1;
    for (int d : dims_) {
      assert(d >= 2);
      volume_ *= d;
    }
  }

  [[nodiscard]] int dim(int mu) const {
    return dims_[static_cast<std::size_t>(mu)];
  }
  [[nodiscard]] Site volume() const { return volume_; }

  [[nodiscard]] Site index(std::array<int, 4> x) const {
    Site s = 0;
    for (int mu = 3; mu >= 0; --mu) {
      const int d = dims_[static_cast<std::size_t>(mu)];
      const int xi = x[static_cast<std::size_t>(mu)];
      assert(xi >= 0 && xi < d);
      s = s * d + xi;
    }
    return s;
  }

  [[nodiscard]] std::array<int, 4> coords(Site s) const {
    std::array<int, 4> x{};
    for (int mu = 0; mu < 4; ++mu) {
      const int d = dims_[static_cast<std::size_t>(mu)];
      x[static_cast<std::size_t>(mu)] = static_cast<int>(s % d);
      s /= d;
    }
    return x;
  }

  /// Periodic neighbour one step along +-mu.
  [[nodiscard]] Site neighbor(Site s, int mu, int sign) const {
    auto x = coords(s);
    const int d = dims_[static_cast<std::size_t>(mu)];
    x[static_cast<std::size_t>(mu)] =
        (x[static_cast<std::size_t>(mu)] + sign + d) % d;
    return index(x);
  }

  /// Parity of a site (even/odd checkerboard).
  [[nodiscard]] int parity(Site s) const {
    const auto x = coords(s);
    return (x[0] + x[1] + x[2] + x[3]) & 1;
  }

  /// Sites on the face x_mu == (sign>0 ? dim-1 : 0): the 3-D hypersurface
  /// sent to the +-mu neighbour node in a distributed run.
  [[nodiscard]] std::vector<Site> face(int mu, int sign) const {
    std::vector<Site> sites;
    const int fixed = sign > 0 ? dims_[static_cast<std::size_t>(mu)] - 1 : 0;
    for (Site s = 0; s < volume_; ++s) {
      if (coords(s)[static_cast<std::size_t>(mu)] == fixed) {
        sites.push_back(s);
      }
    }
    return sites;
  }

  /// Surface sites per face along mu (= volume / dim(mu)).
  [[nodiscard]] Site face_sites(int mu) const {
    return volume_ / dims_[static_cast<std::size_t>(mu)];
  }

 private:
  std::array<int, 4> dims_;
  Site volume_;
};

}  // namespace meshmp::lqcd
