#include "lqcd/dslash.hpp"

#include <cassert>

namespace meshmp::lqcd {

namespace {

using Gamma = std::array<std::array<Complex, 4>, 4>;

constexpr Complex I{0.0, 1.0};

/// DeGrand-Rossi basis gamma matrices (x, y, z, t).
const std::array<Gamma, 4>& gammas() {
  static const std::array<Gamma, 4> g = [] {
    std::array<Gamma, 4> a{};
    // gamma_x
    a[0][0][3] = I;
    a[0][1][2] = I;
    a[0][2][1] = -I;
    a[0][3][0] = -I;
    // gamma_y
    a[1][0][3] = -1.0;
    a[1][1][2] = 1.0;
    a[1][2][1] = 1.0;
    a[1][3][0] = -1.0;
    // gamma_z
    a[2][0][2] = I;
    a[2][1][3] = -I;
    a[2][2][0] = -I;
    a[2][3][1] = I;
    // gamma_t
    a[3][0][2] = 1.0;
    a[3][1][3] = 1.0;
    a[3][2][0] = 1.0;
    a[3][3][1] = 1.0;
    return a;
  }();
  return g;
}

WilsonSpinor sub(const WilsonSpinor& a, const WilsonSpinor& b) {
  WilsonSpinor r;
  for (int s = 0; s < 4; ++s) r[s] = a[s] - b[s];
  return r;
}

WilsonSpinor add(const WilsonSpinor& a, const WilsonSpinor& b) {
  WilsonSpinor r;
  for (int s = 0; s < 4; ++s) r[s] = a[s] + b[s];
  return r;
}

/// Shared kernel: fwd_sign = -1 gives D, +1 gives D^dag (the gamma signs on
/// the forward/backward hops swap under daggering).
SpinorField hop(const Lattice4D& lat, const GaugeField& u,
                const SpinorField& in, int fwd_sign) {
  assert(in.size() == static_cast<std::size_t>(lat.volume()));
  assert(u.size() == static_cast<std::size_t>(lat.volume()) * 4);
  SpinorField out(in.size());
  for (Lattice4D::Site x = 0; x < lat.volume(); ++x) {
    WilsonSpinor acc{};
    for (int mu = 0; mu < 4; ++mu) {
      // forward hop: U_mu(x) (1 + fwd_sign*gamma_mu) psi(x+mu)
      const auto xf = lat.neighbor(x, mu, +1);
      const WilsonSpinor& f = in[static_cast<std::size_t>(xf)];
      WilsonSpinor pf = fwd_sign < 0 ? sub(f, apply_gamma(mu, f))
                                     : add(f, apply_gamma(mu, f));
      const Su3Matrix& ufwd =
          u[static_cast<std::size_t>(x) * 4 + static_cast<std::size_t>(mu)];
      for (int s = 0; s < 4; ++s) acc[s] += ufwd * pf[s];

      // backward hop: U_mu(x-mu)^dag (1 - fwd_sign*gamma_mu) psi(x-mu)
      const auto xb = lat.neighbor(x, mu, -1);
      const WilsonSpinor& b = in[static_cast<std::size_t>(xb)];
      WilsonSpinor pb = fwd_sign < 0 ? add(b, apply_gamma(mu, b))
                                     : sub(b, apply_gamma(mu, b));
      const Su3Matrix ubwd =
          u[static_cast<std::size_t>(xb) * 4 + static_cast<std::size_t>(mu)]
              .adjoint();
      for (int s = 0; s < 4; ++s) acc[s] += ubwd * pb[s];
    }
    out[static_cast<std::size_t>(x)] = acc;
  }
  return out;
}

}  // namespace

WilsonSpinor apply_gamma(int mu, const WilsonSpinor& in) {
  const Gamma& g = gammas()[static_cast<std::size_t>(mu)];
  WilsonSpinor out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      const Complex& coeff = g[static_cast<std::size_t>(r)]
                              [static_cast<std::size_t>(c)];
      if (coeff == Complex{0.0}) continue;
      out[r] += coeff * in[c];
    }
  }
  return out;
}

WilsonSpinor apply_gamma5(const WilsonSpinor& in) {
  WilsonSpinor out = in;
  out[2] = Complex{-1.0} * in[2];
  out[3] = Complex{-1.0} * in[3];
  return out;
}

Complex inner_product(const std::vector<WilsonSpinor>& a,
                      const std::vector<WilsonSpinor>& b) {
  assert(a.size() == b.size());
  Complex sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (int s = 0; s < 4; ++s) sum += dot(a[i][s], b[i][s]);
  }
  return sum;
}

GaugeField unit_gauge(const Lattice4D& lat) {
  return GaugeField(static_cast<std::size_t>(lat.volume()) * 4,
                    Su3Matrix::identity());
}

GaugeField random_gauge(const Lattice4D& lat, sim::Rng& rng) {
  GaugeField u(static_cast<std::size_t>(lat.volume()) * 4);
  for (auto& link : u) link = random_su3(rng);
  return u;
}

SpinorField random_spinor_field(const Lattice4D& lat, sim::Rng& rng) {
  SpinorField f(static_cast<std::size_t>(lat.volume()));
  for (auto& sp : f) {
    for (int s = 0; s < 4; ++s) {
      for (int c = 0; c < 3; ++c) {
        sp[s][c] = Complex{rng.uniform01() * 2 - 1, rng.uniform01() * 2 - 1};
      }
    }
  }
  return f;
}

SpinorField dslash(const Lattice4D& lat, const GaugeField& u,
                   const SpinorField& in) {
  return hop(lat, u, in, -1);
}

SpinorField dslash_dagger(const Lattice4D& lat, const GaugeField& u,
                          const SpinorField& in) {
  return hop(lat, u, in, +1);
}

}  // namespace meshmp::lqcd
