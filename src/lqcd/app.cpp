#include "lqcd/app.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include "mp/endpoint.hpp"
#include "qmp/qmp.hpp"
#include "sim/sync.hpp"

namespace meshmp::lqcd {

using sim::Task;

namespace {

std::int64_t pow4(int l) {
  return static_cast<std::int64_t>(l) * l * l * l;
}

struct SharedClock {
  sim::Time start = 0;
  sim::Time end = 0;
  int finished = 0;
  double compute_ns_per_node = 0;
};

/// One GigE node's program: halo exchange in all six mesh directions via QMP
/// relative handles, local dslash compute, global sum.
Task<> gige_node(qmp::Machine& m, DslashRunConfig cfg, SharedClock& clock,
                 int nnodes) {
  const std::int64_t halo_bytes =
      pow4(cfg.local_extent) / cfg.local_extent * cfg.bytes_per_halo_site;
  const double flops_per_iter =
      cfg.flops_per_site * static_cast<double>(pow4(cfg.local_extent));
  auto& cpu = m.endpoint().agent().node().cpu();
  auto& eng = cpu.engine();
  const int ndims = m.num_dimensions();

  qmp::MsgMem sendmem(static_cast<std::size_t>(halo_bytes));
  qmp::MsgMem recvmem(static_cast<std::size_t>(halo_bytes));

  co_await m.barrier();
  if (m.node_number() == 0) clock.start = eng.now();

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    // Surface exchange: all 2*ndims directions, concurrently (multi-port).
    sim::TaskGroup group(eng);
    std::vector<std::unique_ptr<qmp::MsgHandle>> handles;
    for (int d = 0; d < ndims; ++d) {
      for (int sign : {+1, -1}) {
        auto sh = std::make_unique<qmp::MsgHandle>(
            m.declare_send_relative(sendmem, d, sign));
        auto rh = std::make_unique<qmp::MsgHandle>(
            m.declare_receive_relative(recvmem, d, -sign));
        m.start(*sh);
        m.start(*rh);
        group.add(m.wait(*sh));
        group.add(m.wait(*rh));
        handles.push_back(std::move(sh));
        handles.push_back(std::move(rh));
      }
    }
    co_await group.join();
    // Local dslash application over the L^4 volume.
    co_await cpu.compute_flops(flops_per_iter);
    // The CG-style global reduction.
    (void)co_await m.sum_double(1.0);
  }

  if (++clock.finished == nnodes) clock.end = eng.now();
  clock.compute_ns_per_node = static_cast<double>(sim::transfer_time(
      static_cast<std::int64_t>(flops_per_iter * cfg.iterations),
      cpu.host().flops_per_sec));
}

Task<> myrinet_node(cluster::GmPort& port, const topo::Torus& logical,
                    DslashRunConfig cfg, SharedClock& clock, int nnodes) {
  const std::int64_t halo_bytes =
      pow4(cfg.local_extent) / cfg.local_extent * cfg.bytes_per_halo_site;
  const double flops_per_iter =
      cfg.flops_per_site * static_cast<double>(pow4(cfg.local_extent));
  auto& cpu = port.cpu();
  auto& eng = cpu.engine();

  // Nodes are laid out on a *logical* torus; physically everything crosses
  // the switch, which is the whole point of the comparison.
  const topo::Rank me = port.rank();
  (void)co_await port.allreduce_sum(0.0);  // entry barrier
  if (me == 0) clock.start = eng.now();

  const std::vector<std::byte> halo(static_cast<std::size_t>(halo_bytes),
                                    std::byte{0x5a});
  auto recv_one = [](cluster::GmPort& p, int src, int tag) -> Task<> {
    (void)co_await p.recv(src, tag);
  };
  for (int iter = 0; iter < cfg.iterations; ++iter) {
    sim::TaskGroup group(eng);
    for (int d = 0; d < logical.ndims(); ++d) {
      for (int sign : {+1, -1}) {
        const topo::Dir dir{static_cast<std::int8_t>(d),
                            static_cast<std::int8_t>(sign)};
        auto nb = logical.neighbor(me, dir);
        if (!nb) continue;
        group.add(port.send(static_cast<int>(*nb), 100 + dir.index(), halo));
        // The (d,sign) neighbour's message to us travelled along its
        // (d,-sign) link, which is how it tagged it.
        group.add(recv_one(port, static_cast<int>(*nb),
                           100 + dir.opposite().index()));
      }
    }
    co_await group.join();
    co_await cpu.compute_flops(flops_per_iter);
    (void)co_await port.allreduce_sum(1.0);
  }

  if (++clock.finished == nnodes) clock.end = eng.now();
  clock.compute_ns_per_node = static_cast<double>(sim::transfer_time(
      static_cast<std::int64_t>(flops_per_iter * cfg.iterations),
      cpu.host().flops_per_sec));
}

DslashRunResult summarize(const SharedClock& clock,
                          const DslashRunConfig& cfg) {
  DslashRunResult res;
  res.seconds = sim::to_sec(clock.end - clock.start);
  const double flops = cfg.flops_per_site *
                       static_cast<double>(pow4(cfg.local_extent)) *
                       cfg.iterations;
  res.mflops_per_node = flops / 1e6 / res.seconds;
  res.comm_fraction =
      1.0 - clock.compute_ns_per_node /
                static_cast<double>(clock.end - clock.start);
  return res;
}

}  // namespace

DslashRunResult run_dslash_gige(const topo::Coord& shape,
                                const DslashRunConfig& cfg) {
  cluster::GigeMeshConfig ccfg;
  ccfg.shape = shape;
  cluster::GigeMeshCluster c(ccfg);
  std::vector<std::unique_ptr<mp::Endpoint>> eps;
  std::vector<std::unique_ptr<qmp::Machine>> machines;
  for (topo::Rank r = 0; r < c.size(); ++r) {
    eps.push_back(
        std::make_unique<mp::Endpoint>(c.agent(r), mp::CoreParams{}));
    machines.push_back(std::make_unique<qmp::Machine>(*eps.back()));
  }
  SharedClock clock;
  for (auto& m : machines) {
    gige_node(*m, cfg, clock, static_cast<int>(c.size())).detach();
  }
  c.run();
  return summarize(clock, cfg);
}

DslashRunResult run_dslash_myrinet(int nodes, const DslashRunConfig& cfg) {
  cluster::MyrinetConfig mcfg;
  mcfg.nodes = nodes;
  cluster::MyrinetCluster c(mcfg);
  // Logical 3-D torus factorization of the node count (e.g. 64 -> 4x4x4).
  const int side = static_cast<int>(std::round(std::cbrt(nodes)));
  topo::Coord shape{side, side, side};
  if (side * side * side != nodes) {
    shape = topo::Coord{nodes};  // fall back to a ring
  }
  const topo::Torus logical(shape);
  SharedClock clock;
  for (int r = 0; r < nodes; ++r) {
    myrinet_node(c.port(r), logical, cfg, clock, nodes).detach();
  }
  c.run();
  return summarize(clock, cfg);
}

double usd_per_mflops(double mflops_per_node, double node_usd) {
  return node_usd / mflops_per_node;
}

}  // namespace meshmp::lqcd
