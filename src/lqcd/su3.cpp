#include "lqcd/su3.hpp"

namespace meshmp::lqcd {

Su3Matrix random_su3(sim::Rng& rng) {
  auto rand_row = [&rng] {
    ColorVector v;
    for (int i = 0; i < 3; ++i) {
      v[i] = Complex{rng.uniform01() * 2 - 1, rng.uniform01() * 2 - 1};
    }
    return v;
  };
  // Gram-Schmidt two random rows, then complete with the conjugate cross
  // product so the determinant is exactly +1.
  ColorVector r0 = rand_row();
  const double n0 = std::sqrt(r0.norm2());
  r0 = Complex{1.0 / n0} * r0;

  ColorVector r1 = rand_row();
  const Complex proj = dot(r0, r1);
  for (int i = 0; i < 3; ++i) r1[i] -= proj * r0[i];
  const double n1 = std::sqrt(r1.norm2());
  r1 = Complex{1.0 / n1} * r1;

  ColorVector r2;
  r2[0] = std::conj(r0[1] * r1[2] - r0[2] * r1[1]);
  r2[1] = std::conj(r0[2] * r1[0] - r0[0] * r1[2]);
  r2[2] = std::conj(r0[0] * r1[1] - r0[1] * r1[0]);

  Su3Matrix u;
  for (int c = 0; c < 3; ++c) {
    u.at(0, c) = r0[c];
    u.at(1, c) = r1[c];
    u.at(2, c) = r2[c];
  }
  return u;
}

}  // namespace meshmp::lqcd
