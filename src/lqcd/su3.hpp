#pragma once

// SU(3) color algebra: the arithmetic an LQCD code spends its life on
// (paper sec. 1: "calculating determinants and inverses of 3x3 complex
// matrices and communicating 3-D hyper-surface data").

#include <array>
#include <cmath>
#include <complex>
#include <cstdint>

#include "sim/rng.hpp"

namespace meshmp::lqcd {

using Complex = std::complex<double>;

/// A color 3-vector.
struct ColorVector {
  std::array<Complex, 3> c{};

  Complex& operator[](int i) { return c[static_cast<std::size_t>(i)]; }
  const Complex& operator[](int i) const {
    return c[static_cast<std::size_t>(i)];
  }

  ColorVector& operator+=(const ColorVector& o) {
    for (int i = 0; i < 3; ++i) c[static_cast<std::size_t>(i)] += o[i];
    return *this;
  }
  ColorVector& operator-=(const ColorVector& o) {
    for (int i = 0; i < 3; ++i) c[static_cast<std::size_t>(i)] -= o[i];
    return *this;
  }
  friend ColorVector operator+(ColorVector a, const ColorVector& b) {
    return a += b;
  }
  friend ColorVector operator-(ColorVector a, const ColorVector& b) {
    return a -= b;
  }
  friend ColorVector operator*(Complex s, const ColorVector& v) {
    ColorVector r;
    for (int i = 0; i < 3; ++i) r[i] = s * v[i];
    return r;
  }
  [[nodiscard]] double norm2() const {
    double n = 0;
    for (const auto& z : c) n += std::norm(z);
    return n;
  }
};

inline Complex dot(const ColorVector& a, const ColorVector& b) {
  Complex s = 0;
  for (int i = 0; i < 3; ++i) s += std::conj(a[i]) * b[i];
  return s;
}

/// A 3x3 complex (gauge link) matrix.
struct Su3Matrix {
  std::array<Complex, 9> m{};

  Complex& at(int r, int c) { return m[static_cast<std::size_t>(r * 3 + c)]; }
  const Complex& at(int r, int c) const {
    return m[static_cast<std::size_t>(r * 3 + c)];
  }

  static Su3Matrix identity() {
    Su3Matrix u;
    u.at(0, 0) = u.at(1, 1) = u.at(2, 2) = 1.0;
    return u;
  }

  [[nodiscard]] Su3Matrix adjoint() const {
    Su3Matrix a;
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) a.at(r, c) = std::conj(at(c, r));
    }
    return a;
  }

  friend Su3Matrix operator*(const Su3Matrix& a, const Su3Matrix& b) {
    Su3Matrix r;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        Complex s = 0;
        for (int k = 0; k < 3; ++k) s += a.at(i, k) * b.at(k, j);
        r.at(i, j) = s;
      }
    }
    return r;
  }

  friend ColorVector operator*(const Su3Matrix& a, const ColorVector& v) {
    ColorVector r;
    for (int i = 0; i < 3; ++i) {
      Complex s = 0;
      for (int k = 0; k < 3; ++k) s += a.at(i, k) * v[k];
      r[i] = s;
    }
    return r;
  }

  [[nodiscard]] Complex det() const {
    return at(0, 0) * (at(1, 1) * at(2, 2) - at(1, 2) * at(2, 1)) -
           at(0, 1) * (at(1, 0) * at(2, 2) - at(1, 2) * at(2, 0)) +
           at(0, 2) * (at(1, 0) * at(2, 1) - at(1, 1) * at(2, 0));
  }

  /// Deviation from unitarity: max |(U U† - 1)_ij|.
  [[nodiscard]] double unitarity_error() const {
    const Su3Matrix p = *this * adjoint();
    double e = 0;
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        const Complex expect = r == c ? Complex{1.0} : Complex{0.0};
        e = std::max(e, std::abs(p.at(r, c) - expect));
      }
    }
    return e;
  }
};

/// Random SU(3) matrix: random complex entries, Gram-Schmidt the rows, fix
/// the determinant to 1 (the standard construction for test gauge fields).
Su3Matrix random_su3(sim::Rng& rng);

/// Flop-count constants (complex mul = 6 flops, complex add = 2 flops).
inline constexpr std::int64_t kFlopsSu3MatVec = 66;   // 9 cmul + 6 cadd
inline constexpr std::int64_t kFlopsSu3MatMat = 198;  // 27 cmul + 18 cadd
/// The community-standard count for one Wilson dslash application per site
/// (with spin projection, which production kernels use).
inline constexpr std::int64_t kFlopsWilsonDslashPerSite = 1320;

}  // namespace meshmp::lqcd
