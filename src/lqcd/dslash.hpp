#pragma once

// Wilson dslash: the hopping term of the Wilson fermion matrix,
//
//   (D psi)(x) = sum_mu [ U_mu(x) (1 - gamma_mu) psi(x+mu)
//                       + U_mu(x-mu)^dag (1 + gamma_mu) psi(x-mu) ].
//
// This is the reference (single-node, periodic) implementation with explicit
// gamma-matrix algebra in the DeGrand-Rossi basis; production kernels use the
// spin-projection trick, whose standard flop count (1320/site) the cluster
// performance model charges.

#include <vector>

#include "lqcd/lattice.hpp"
#include "lqcd/su3.hpp"
#include "sim/rng.hpp"

namespace meshmp::lqcd {

/// A Wilson spinor: 4 spin components, each a color vector.
struct WilsonSpinor {
  std::array<ColorVector, 4> s{};

  ColorVector& operator[](int spin) {
    return s[static_cast<std::size_t>(spin)];
  }
  const ColorVector& operator[](int spin) const {
    return s[static_cast<std::size_t>(spin)];
  }
  WilsonSpinor& operator+=(const WilsonSpinor& o) {
    for (int i = 0; i < 4; ++i) s[static_cast<std::size_t>(i)] += o[i];
    return *this;
  }
  [[nodiscard]] double norm2() const {
    double n = 0;
    for (const auto& v : s) n += v.norm2();
    return n;
  }
};

/// Complex inner product <a, b> over a whole field.
Complex inner_product(const std::vector<WilsonSpinor>& a,
                      const std::vector<WilsonSpinor>& b);

/// gamma_mu in the DeGrand-Rossi basis, applied to a spinor.
WilsonSpinor apply_gamma(int mu, const WilsonSpinor& in);

/// gamma_5 (= gamma_0 gamma_1 gamma_2 gamma_3 up to phase; diagonal
/// (+1,+1,-1,-1) in this basis).
WilsonSpinor apply_gamma5(const WilsonSpinor& in);

/// A gauge field: links[site*4 + mu] = U_mu(site).
using GaugeField = std::vector<Su3Matrix>;
using SpinorField = std::vector<WilsonSpinor>;

GaugeField unit_gauge(const Lattice4D& lat);
GaugeField random_gauge(const Lattice4D& lat, sim::Rng& rng);
SpinorField random_spinor_field(const Lattice4D& lat, sim::Rng& rng);

/// out = D in  (periodic boundaries). Returns the field.
SpinorField dslash(const Lattice4D& lat, const GaugeField& u,
                   const SpinorField& in);

/// out = D^dag in, implemented directly (for the gamma5-hermiticity test).
SpinorField dslash_dagger(const Lattice4D& lat, const GaugeField& u,
                          const SpinorField& in);

}  // namespace meshmp::lqcd
