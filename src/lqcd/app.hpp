#pragma once

// Cluster-scale LQCD benchmark model (paper sec. 6, Table 1).
//
// Each node owns an L^4 sub-lattice. Per iteration it exchanges the six 3-D
// hypersurfaces (the three distributed lattice dimensions map onto the three
// machine dimensions), applies Wilson dslash over the local volume, and joins
// a global sum — the structure of one CG iteration. Arithmetic is charged to
// the simulated CPU at the community-standard 1320 flops/site; surface data
// is spin-projected single-precision half-spinors (12 floats = 48 B/site).
//
// The same workload runs on the GigE mesh (QMP over the modified M-VIA) and
// on the Myrinet switched cluster (GM-like transport), reproducing the
// paper's Gflops and $/Mflops comparison.

#include <cstdint>

#include "cluster/gige_mesh.hpp"
#include "cluster/myrinet.hpp"
#include "hw/params.hpp"
#include "topo/torus.hpp"

namespace meshmp::lqcd {

struct DslashRunConfig {
  int local_extent = 8;  ///< L: the node-local sub-lattice is L^4
  int iterations = 10;
  /// Bytes per surface site: 2 spins x 3 colors x complex x float.
  std::int64_t bytes_per_halo_site = 48;
  double flops_per_site = 1320.0;
};

struct DslashRunResult {
  double seconds = 0;            ///< simulated wall time for all iterations
  double mflops_per_node = 0;    ///< sustained, normalized to one node
  double comm_fraction = 0;      ///< share of wall time not spent computing
};

/// Runs the benchmark on a GigE mesh/torus of the given shape (QMP/M-VIA).
DslashRunResult run_dslash_gige(const topo::Coord& shape,
                                const DslashRunConfig& cfg);

/// Runs it on a switched Myrinet cluster with `nodes` nodes (power of two).
DslashRunResult run_dslash_myrinet(int nodes, const DslashRunConfig& cfg);

/// Price/performance (paper Table 1's $/Mflops columns).
double usd_per_mflops(double mflops_per_node, double node_usd);

}  // namespace meshmp::lqcd
