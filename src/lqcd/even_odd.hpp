#pragma once

// Even-odd (red-black) decomposition of the Wilson operator.
//
// Writing the full operator on the checkerboarded lattice as
//
//     M = [ m Id    D_eo ]
//         [ D_oe    m Id ],
//
// production LQCD codes (including the ones the paper's clusters ran) solve
// the even-site Schur complement (m^2 - D_eo D_oe) x_e = b'_e, halving the
// solve dimension. This module provides the checkerboard layout and the
// parity-restricted hopping operators, verified against the full dslash.

#include <vector>

#include "lqcd/dslash.hpp"
#include "lqcd/lattice.hpp"

namespace meshmp::lqcd {

/// Index translation between the full lattice and per-parity half lattices.
class EvenOddLayout {
 public:
  explicit EvenOddLayout(const Lattice4D& lat);

  [[nodiscard]] Lattice4D::Site half_volume() const {
    return static_cast<Lattice4D::Site>(to_full_[0].size());
  }
  /// Full-lattice site of half-index `i` with the given parity (0 = even).
  [[nodiscard]] Lattice4D::Site full_site(int parity,
                                          Lattice4D::Site i) const {
    return to_full_[static_cast<std::size_t>(parity)]
                   [static_cast<std::size_t>(i)];
  }
  /// Half-index of a full-lattice site (its parity is lat.parity(s)).
  [[nodiscard]] Lattice4D::Site half_index(Lattice4D::Site s) const {
    return to_half_[static_cast<std::size_t>(s)];
  }

  /// Splits a full field into (even, odd) half fields.
  [[nodiscard]] std::pair<SpinorField, SpinorField> split(
      const SpinorField& full) const;
  /// Reassembles half fields into a full field.
  [[nodiscard]] SpinorField join(const SpinorField& even,
                                 const SpinorField& odd) const;

 private:
  std::array<std::vector<Lattice4D::Site>, 2> to_full_;
  std::vector<Lattice4D::Site> to_half_;
};

/// Applies the parity-changing hopping term: out (on `target_parity` sites)
/// = D_{target_parity, 1-target_parity} * in (a half field on the opposite
/// parity). This is exactly the full dslash restricted to one checkerboard.
SpinorField dslash_parity(const Lattice4D& lat, const EvenOddLayout& layout,
                          const GaugeField& u, const SpinorField& in_half,
                          int target_parity);

/// The even-site Schur operator: (m^2 - D_eo D_oe) applied to an even half
/// field — the standard even-odd preconditioned Wilson operator (solved via
/// its normal equation, exactly like the full operator).
SpinorField schur_even(const Lattice4D& lat, const EvenOddLayout& layout,
                       const GaugeField& u, const SpinorField& in_even,
                       double m);

}  // namespace meshmp::lqcd
