#include "lqcd/even_odd.hpp"

#include <cassert>

namespace meshmp::lqcd {

EvenOddLayout::EvenOddLayout(const Lattice4D& lat)
    : to_half_(static_cast<std::size_t>(lat.volume())) {
  for (Lattice4D::Site s = 0; s < lat.volume(); ++s) {
    auto& bucket = to_full_[static_cast<std::size_t>(lat.parity(s))];
    to_half_[static_cast<std::size_t>(s)] =
        static_cast<Lattice4D::Site>(bucket.size());
    bucket.push_back(s);
  }
  assert(to_full_[0].size() == to_full_[1].size() &&
         "even-odd needs an even site count");
}

std::pair<SpinorField, SpinorField> EvenOddLayout::split(
    const SpinorField& full) const {
  SpinorField even(to_full_[0].size());
  SpinorField odd(to_full_[1].size());
  for (std::size_t i = 0; i < to_full_[0].size(); ++i) {
    even[i] = full[static_cast<std::size_t>(to_full_[0][i])];
  }
  for (std::size_t i = 0; i < to_full_[1].size(); ++i) {
    odd[i] = full[static_cast<std::size_t>(to_full_[1][i])];
  }
  return {std::move(even), std::move(odd)};
}

SpinorField EvenOddLayout::join(const SpinorField& even,
                                const SpinorField& odd) const {
  SpinorField full(even.size() + odd.size());
  for (std::size_t i = 0; i < even.size(); ++i) {
    full[static_cast<std::size_t>(to_full_[0][i])] = even[i];
  }
  for (std::size_t i = 0; i < odd.size(); ++i) {
    full[static_cast<std::size_t>(to_full_[1][i])] = odd[i];
  }
  return full;
}

SpinorField dslash_parity(const Lattice4D& lat, const EvenOddLayout& layout,
                          const GaugeField& u, const SpinorField& in_half,
                          int target_parity) {
  assert(in_half.size() == static_cast<std::size_t>(layout.half_volume()));
  SpinorField out(static_cast<std::size_t>(layout.half_volume()));
  for (Lattice4D::Site i = 0; i < layout.half_volume(); ++i) {
    const Lattice4D::Site x = layout.full_site(target_parity, i);
    WilsonSpinor acc{};
    for (int mu = 0; mu < 4; ++mu) {
      // forward: U_mu(x) (1 - gamma_mu) psi(x+mu)
      const auto xf = lat.neighbor(x, mu, +1);
      const WilsonSpinor& f =
          in_half[static_cast<std::size_t>(layout.half_index(xf))];
      WilsonSpinor pf;
      {
        const WilsonSpinor g = apply_gamma(mu, f);
        for (int s = 0; s < 4; ++s) pf[s] = f[s] - g[s];
      }
      const Su3Matrix& ufwd =
          u[static_cast<std::size_t>(x) * 4 + static_cast<std::size_t>(mu)];
      for (int s = 0; s < 4; ++s) acc[s] += ufwd * pf[s];

      // backward: U_mu(x-mu)^dag (1 + gamma_mu) psi(x-mu)
      const auto xb = lat.neighbor(x, mu, -1);
      const WilsonSpinor& b =
          in_half[static_cast<std::size_t>(layout.half_index(xb))];
      WilsonSpinor pb;
      {
        const WilsonSpinor g = apply_gamma(mu, b);
        for (int s = 0; s < 4; ++s) pb[s] = b[s] + g[s];
      }
      const Su3Matrix ubwd =
          u[static_cast<std::size_t>(xb) * 4 + static_cast<std::size_t>(mu)]
              .adjoint();
      for (int s = 0; s < 4; ++s) acc[s] += ubwd * pb[s];
    }
    out[static_cast<std::size_t>(i)] = acc;
  }
  return out;
}

SpinorField schur_even(const Lattice4D& lat, const EvenOddLayout& layout,
                       const GaugeField& u, const SpinorField& in_even,
                       double m) {
  // (m^2 - D_eo D_oe) x_e
  const SpinorField odd = dslash_parity(lat, layout, u, in_even, 1);
  const SpinorField hop = dslash_parity(lat, layout, u, odd, 0);
  SpinorField out(in_even.size());
  const Complex m2{m * m};
  for (std::size_t i = 0; i < in_even.size(); ++i) {
    for (int s = 0; s < 4; ++s) {
      out[i][s] = m2 * in_even[i][s] - hop[i][s];
    }
  }
  return out;
}

}  // namespace meshmp::lqcd
