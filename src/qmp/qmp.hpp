#pragma once

// QMP (QCD Message Passing) — the paper's first message-passing system: a
// lattice-QCD-focused subset of MPI functionality with an interface mirroring
// the real QMP library: logical topology queries, declared message memory and
// relative (nearest-neighbour) send/receive handles with start/wait
// semantics, and the collective operations LQCD needs (global sums,
// broadcast from node 0, barrier).
//
// Wire tag layout shares the collective class bit with MPI so the two systems
// can coexist on one endpoint; relative messages are tagged by direction so
// simultaneous exchanges in different directions never cross-match.

#include <cstdint>
#include <memory>
#include <vector>

#include "coll/reduce_op.hpp"
#include "coll/tree.hpp"
#include "mp/endpoint.hpp"
#include "topo/torus.hpp"

namespace meshmp::qmp {

/// QMP_status_t-style return codes. A send whose peer became unreachable
/// (dead link, no surviving route) completes with kErrUnreachable instead of
/// hanging the wait; a send issued from the minority side of a partitioned
/// machine is refused with kErrMinorityPartition until quorum returns.
enum class Status : std::uint8_t {
  kSuccess = 0,
  kErrUnreachable = 1,
  kErrMinorityPartition = 2,
};

[[nodiscard]] const char* to_string(Status s) noexcept;

/// Declared message memory: the buffer a handle sends from / receives into.
struct MsgMem {
  std::vector<std::byte> buf;

  explicit MsgMem(std::size_t bytes) : buf(bytes, std::byte{0}) {}
  template <typename T>
  static MsgMem of(std::size_t count) {
    return MsgMem(count * sizeof(T));
  }
};

class Machine;

/// A declared relative communication: start() begins the transfer, wait()
/// blocks until the local buffer is reusable (send) or filled (receive).
class MsgHandle {
 public:
  MsgHandle(MsgHandle&&) noexcept = default;
  MsgHandle& operator=(MsgHandle&&) noexcept = default;

  [[nodiscard]] bool started() const noexcept { return inflight_ != nullptr; }

 private:
  friend class Machine;
  MsgHandle(Machine& m, MsgMem& mem, topo::Dir dir, bool is_send)
      : machine_(&m), mem_(&mem), dir_(dir), is_send_(is_send) {}

  Machine* machine_;
  MsgMem* mem_;
  topo::Dir dir_;
  bool is_send_;
  Status status_ = Status::kSuccess;
  std::unique_ptr<sim::Trigger> inflight_;
};

class Machine {
 public:
  /// The paper's clusters declare the logical topology equal to the physical
  /// mesh; the machine binds to the endpoint's torus.
  explicit Machine(mp::Endpoint& ep) : ep_(&ep) {}

  [[nodiscard]] int node_number() const { return ep_->rank(); }
  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(ep_->agent().torus().size());
  }
  [[nodiscard]] int num_dimensions() const {
    return ep_->agent().torus().ndims();
  }
  [[nodiscard]] std::vector<int> logical_coordinates() const;
  [[nodiscard]] std::vector<int> logical_dimensions() const;
  /// Rank of the nearest neighbour one step along (dim, sign).
  [[nodiscard]] int neighbor_rank(int dim, int sign) const;
  [[nodiscard]] mp::Endpoint& endpoint() noexcept { return *ep_; }

  // -- relative message handles -----------------------------------------
  MsgHandle declare_send_relative(MsgMem& mem, int dim, int sign);
  MsgHandle declare_receive_relative(MsgMem& mem, int dim, int sign);
  /// Begins the transfer (send: enqueues the buffer; receive: posts).
  void start(MsgHandle& h);
  /// Completes it; a handle can be started again afterwards (QMP reuse).
  /// Returns kErrUnreachable when a send's peer could not be reached.
  sim::Task<Status> wait(MsgHandle& h);
  sim::Task<Status> start_and_wait(MsgHandle& h) {
    start(h);
    co_return co_await wait(h);
  }

  // -- collectives ---------------------------------------------------------
  sim::Task<double> sum_double(double value);
  /// Interrupt-level global sum (paper sec. 7 prototype): intermediate nodes
  /// combine in the receive ISR, never in user space. Much lower latency
  /// than sum_double on large meshes; see bench/ablation_kernel_reduce.
  sim::Task<double> sum_double_kernel(double value);
  sim::Task<> sum_double_array(std::vector<double>& values);
  sim::Task<double> max_double(double value);
  sim::Task<> broadcast(std::vector<std::byte>& data, int root = 0);
  sim::Task<> barrier();

 private:
  friend class MsgHandle;
  sim::Task<> run_send(MsgHandle* h, sim::Trigger* done);
  sim::Task<> run_recv(MsgHandle* h, sim::Trigger* done);
  int dir_tag(topo::Dir dir) const;
  int coll_tag(int op);

  mp::Endpoint* ep_;
  std::uint32_t coll_seq_ = 0;
};

}  // namespace meshmp::qmp
