#include "qmp/qmp.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "mpi/datatypes.hpp"

namespace meshmp::qmp {

using sim::Task;

namespace {
constexpr int kClassBit = 1 << 23;
// QMP owns communicator context 15 so that MPI communicators (contexts
// 0..14) sharing the same endpoint can never match QMP traffic.
constexpr int kQmpCtx = 15 << 19;
constexpr int kQmpRelBase = kClassBit | kQmpCtx | (1 << 14);
}  // namespace

std::vector<int> Machine::logical_coordinates() const {
  const auto& t = ep_->agent().torus();
  const topo::Coord c = t.coord(ep_->rank());
  std::vector<int> out(static_cast<std::size_t>(t.ndims()));
  for (int d = 0; d < t.ndims(); ++d) out[static_cast<std::size_t>(d)] = c[d];
  return out;
}

std::vector<int> Machine::logical_dimensions() const {
  const auto& t = ep_->agent().torus();
  std::vector<int> out(static_cast<std::size_t>(t.ndims()));
  for (int d = 0; d < t.ndims(); ++d) {
    out[static_cast<std::size_t>(d)] = t.shape()[d];
  }
  return out;
}

int Machine::neighbor_rank(int dim, int sign) const {
  const auto& t = ep_->agent().torus();
  const topo::Dir dir{static_cast<std::int8_t>(dim),
                      static_cast<std::int8_t>(sign)};
  auto n = t.neighbor(static_cast<topo::Rank>(ep_->rank()), dir);
  if (!n) throw std::invalid_argument("neighbor_rank: no link that way");
  return static_cast<int>(*n);
}

int Machine::dir_tag(topo::Dir dir) const { return kQmpRelBase | dir.index(); }

int Machine::coll_tag(int op) {
  // Collective op codes are >= 32 and relative-direction tags carry bit 14
  // with a low value < 8, so the spaces stay disjoint for any sequence.
  const std::uint32_t seq = coll_seq_++ & 0x7u;
  return kClassBit | kQmpCtx | static_cast<int>(seq << 11) | op;
}

MsgHandle Machine::declare_send_relative(MsgMem& mem, int dim, int sign) {
  return MsgHandle(*this, mem,
                   topo::Dir{static_cast<std::int8_t>(dim),
                             static_cast<std::int8_t>(sign)},
                   /*is_send=*/true);
}

MsgHandle Machine::declare_receive_relative(MsgMem& mem, int dim, int sign) {
  return MsgHandle(*this, mem,
                   topo::Dir{static_cast<std::int8_t>(dim),
                             static_cast<std::int8_t>(sign)},
                   /*is_send=*/false);
}

const char* to_string(Status s) noexcept {
  switch (s) {
    case Status::kSuccess:
      return "success";
    case Status::kErrUnreachable:
      return "unreachable";
    case Status::kErrMinorityPartition:
      return "minority-partition";
  }
  return "?";
}

Task<> Machine::run_send(MsgHandle* h, sim::Trigger* done) {
  const int dest = neighbor_rank(h->dir_.dim, h->dir_.sign);
  // The receiver listens on the direction it declared, which is where the
  // message *comes from*: the opposite of our send direction.
  const mp::SendStatus rc =
      co_await ep_->send(dest, dir_tag(h->dir_.opposite()), h->mem_->buf);
  h->status_ = rc == mp::SendStatus::kOk ? Status::kSuccess
               : rc == mp::SendStatus::kMinorityPartition
                   ? Status::kErrMinorityPartition
                   : Status::kErrUnreachable;
  done->fire();
}

Task<> Machine::run_recv(MsgHandle* h, sim::Trigger* done) {
  const int src = neighbor_rank(h->dir_.dim, h->dir_.sign);
  mp::Message msg = co_await ep_->recv(src, dir_tag(h->dir_));
  if (!msg.ok) {
    // Error completion: the receive was cancelled because the peer was
    // declared dead. Surface it through the handle instead of hanging.
    h->status_ = Status::kErrUnreachable;
    done->fire();
    co_return;
  }
  if (msg.data.size() != h->mem_->buf.size()) {
    throw std::runtime_error("QMP receive size mismatch");
  }
  h->mem_->buf = std::move(msg.data);
  done->fire();
}

void Machine::start(MsgHandle& h) {
  if (h.inflight_) throw std::logic_error("QMP handle already started");
  h.status_ = Status::kSuccess;
  h.inflight_ = std::make_unique<sim::Trigger>(ep_->engine());
  if (h.is_send_) {
    run_send(&h, h.inflight_.get()).detach();
  } else {
    run_recv(&h, h.inflight_.get()).detach();
  }
}

Task<Status> Machine::wait(MsgHandle& h) {
  if (!h.inflight_) throw std::logic_error("QMP handle not started");
  co_await h.inflight_->wait();
  h.inflight_.reset();  // reusable, like QMP handles
  co_return h.status_;
}

Task<double> Machine::sum_double_kernel(double value) {
  // Sequence ids are synchronized by SPMD call order, like every collective.
  const std::uint32_t seq = 0x40000000u | (coll_seq_++ & 0xffffffu);
  co_return co_await ep_->agent().kernel_global_sum(value, 0, seq);
}

Task<double> Machine::sum_double(double value) {
  auto bytes = mpi::to_bytes(value);
  co_await coll::allreduce(*ep_, bytes, coll::sum_op<double>(), coll_tag(32));
  co_return mpi::scalar_from_bytes<double>(bytes);
}

Task<> Machine::sum_double_array(std::vector<double>& values) {
  auto bytes = mpi::to_bytes(values);
  co_await coll::allreduce(*ep_, bytes, coll::sum_op<double>(), coll_tag(34));
  values = mpi::from_bytes<double>(bytes);
}

Task<double> Machine::max_double(double value) {
  auto bytes = mpi::to_bytes(value);
  co_await coll::allreduce(*ep_, bytes, coll::max_op<double>(), coll_tag(36));
  co_return mpi::scalar_from_bytes<double>(bytes);
}

Task<> Machine::broadcast(std::vector<std::byte>& data, int root) {
  co_await coll::broadcast(*ep_, root, data, coll_tag(38));
}

Task<> Machine::barrier() { co_await coll::barrier(*ep_, coll_tag(40)); }

}  // namespace meshmp::qmp
