#include "coll/tree.hpp"

#include <cassert>

#include "buf/pool.hpp"
#include "obs/trace.hpp"
#include "topo/spanning_tree.hpp"

namespace meshmp::coll {

using sim::Task;

std::optional<topo::Rank> bcast_parent(const topo::Torus& t, topo::Rank root,
                                       topo::Rank me) {
  return topo::bcast_parent(t, root, me);
}

std::vector<topo::Rank> bcast_children(const topo::Torus& t, topo::Rank root,
                                       topo::Rank me) {
  return topo::bcast_children(t, root, me);
}

Task<> broadcast(mp::Endpoint& ep, topo::Rank root,
                 std::vector<std::byte>& data, int tag) {
  const topo::Torus& t = ep.agent().torus();
  const topo::Rank me = ep.rank();
  [[maybe_unused]] std::int32_t trk = -1;
  MESHMP_TRACE_TRACK(trk, me, "coll");
  MESHMP_TRACE_SCOPE_ARG(ep.engine(), obs::Cat::kColl, me, trk, "broadcast",
                         "bytes", data.size());
  if (auto parent = topo::bcast_parent(t, root, me)) {
    mp::Message msg = co_await ep.recv(static_cast<int>(*parent), tag);
    data = std::move(msg.data);
  }
  // Forward to all children concurrently (the node's multi-port capability:
  // different children sit behind different adapters). Stage the payload
  // into the pool once; every child send aliases the same slice.
  const auto kids = topo::bcast_children(t, root, me);
  if (kids.empty()) co_return;
  const buf::Slice shared = buf::Pool::instance().stage(data);
  sim::TaskGroup group(ep.engine());
  for (topo::Rank kid : kids) {
    group.add(ep.send(static_cast<int>(kid), tag, shared));
  }
  co_await group.join();
}

Task<> reduce(mp::Endpoint& ep, topo::Rank root, std::vector<std::byte>& data,
              const ReduceOp& op, int tag) {
  const topo::Torus& t = ep.agent().torus();
  const topo::Rank me = ep.rank();
  [[maybe_unused]] std::int32_t trk = -1;
  MESHMP_TRACE_TRACK(trk, me, "coll");
  MESHMP_TRACE_SCOPE_ARG(ep.engine(), obs::Cat::kColl, me, trk, "reduce",
                         "bytes", data.size());
  auto& cpu = ep.agent().node().cpu();
  // Receive partials from every child (any arrival order), combine, pass on.
  const auto kids = topo::bcast_children(t, root, me);
  for (std::size_t i = 0; i < kids.size(); ++i) {
    (void)i;
    mp::Message msg = co_await ep.recv(mp::Endpoint::kAny, tag);
    op.combine(data, msg.data);
    if (op.flops_per_byte > 0) {
      co_await cpu.compute_flops(op.flops_per_byte *
                                 static_cast<double>(data.size()));
    }
  }
  if (auto parent = topo::bcast_parent(t, root, me)) {
    co_await ep.send(static_cast<int>(*parent), tag,
                     buf::Pool::instance().stage(data));
  }
}

Task<> allreduce(mp::Endpoint& ep, std::vector<std::byte>& data,
                 const ReduceOp& op, int tag) {
  constexpr topo::Rank kRoot = 0;
  co_await reduce(ep, kRoot, data, op, tag);
  co_await broadcast(ep, kRoot, data, tag + 1);
}

Task<> barrier(mp::Endpoint& ep, int tag) {
  std::vector<std::byte> nothing;
  co_await allreduce(ep, nothing, null_op(), tag);
}

Task<> broadcast_survivors(mp::Endpoint& ep, topo::Rank root,
                           std::vector<std::byte>& data, int tag,
                           const std::vector<bool>& dead) {
  const topo::Torus& t = ep.agent().torus();
  const topo::Rank me = ep.rank();
  [[maybe_unused]] std::int32_t trk = -1;
  MESHMP_TRACE_TRACK(trk, me, "coll");
  MESHMP_TRACE_SCOPE_ARG(ep.engine(), obs::Cat::kColl, me, trk,
                         "broadcast_survivors", "bytes", data.size());
  if (auto parent = topo::survivor_parent(t, root, me, dead)) {
    mp::Message msg = co_await ep.recv(static_cast<int>(*parent), tag);
    data = std::move(msg.data);
  }
  const auto kids = topo::survivor_children(t, root, me, dead);
  if (kids.empty()) co_return;
  const buf::Slice shared = buf::Pool::instance().stage(data);
  sim::TaskGroup group(ep.engine());
  for (topo::Rank kid : kids) {
    group.add(ep.send(static_cast<int>(kid), tag, shared));
  }
  co_await group.join();
}

Task<> reduce_survivors(mp::Endpoint& ep, topo::Rank root,
                        std::vector<std::byte>& data, const ReduceOp& op,
                        int tag, const std::vector<bool>& dead) {
  const topo::Torus& t = ep.agent().torus();
  const topo::Rank me = ep.rank();
  [[maybe_unused]] std::int32_t trk = -1;
  MESHMP_TRACE_TRACK(trk, me, "coll");
  MESHMP_TRACE_SCOPE_ARG(ep.engine(), obs::Cat::kColl, me, trk,
                         "reduce_survivors", "bytes", data.size());
  auto& cpu = ep.agent().node().cpu();
  const auto kids = topo::survivor_children(t, root, me, dead);
  for (std::size_t i = 0; i < kids.size(); ++i) {
    (void)i;
    mp::Message msg = co_await ep.recv(mp::Endpoint::kAny, tag);
    op.combine(data, msg.data);
    if (op.flops_per_byte > 0) {
      co_await cpu.compute_flops(op.flops_per_byte *
                                 static_cast<double>(data.size()));
    }
  }
  if (auto parent = topo::survivor_parent(t, root, me, dead)) {
    co_await ep.send(static_cast<int>(*parent), tag,
                     buf::Pool::instance().stage(data));
  }
}

Task<> allreduce_survivors(mp::Endpoint& ep, std::vector<std::byte>& data,
                           const ReduceOp& op, int tag,
                           const std::vector<bool>& dead) {
  topo::Rank root = 0;
  while (root < ep.agent().torus().size() &&
         dead[static_cast<std::size_t>(root)]) {
    ++root;
  }
  assert(root < ep.agent().torus().size() && "no survivors");
  co_await reduce_survivors(ep, root, data, op, tag, dead);
  co_await broadcast_survivors(ep, root, data, tag + 1, dead);
}

// -- quorum-gated (partition-safe) collectives ------------------------------

namespace {

// Worst-of combination: a minority refusal outranks an unreachable peer
// (it explains *why* and is retryable after the heal), which outranks kOk.
mp::SendStatus worst(mp::SendStatus a, mp::SendStatus b) {
  if (a == mp::SendStatus::kMinorityPartition ||
      b == mp::SendStatus::kMinorityPartition) {
    return mp::SendStatus::kMinorityPartition;
  }
  if (a == mp::SendStatus::kUnreachable || b == mp::SendStatus::kUnreachable) {
    return mp::SendStatus::kUnreachable;
  }
  return mp::SendStatus::kOk;
}

}  // namespace

Task<mp::SendStatus> broadcast_quorum(mp::Endpoint& ep, topo::Rank root,
                                      std::vector<std::byte>& data, int tag,
                                      const std::vector<bool>& dead) {
  if (ep.agent().minority()) co_return mp::SendStatus::kMinorityPartition;
  const topo::Torus& t = ep.agent().torus();
  const topo::Rank me = ep.rank();
  [[maybe_unused]] std::int32_t trk = -1;
  MESHMP_TRACE_TRACK(trk, me, "coll");
  MESHMP_TRACE_SCOPE_ARG(ep.engine(), obs::Cat::kColl, me, trk,
                         "broadcast_quorum", "bytes", data.size());
  if (auto parent = topo::survivor_parent(t, root, me, dead)) {
    mp::Message msg = co_await ep.recv(static_cast<int>(*parent), tag);
    if (!msg.ok) co_return mp::SendStatus::kUnreachable;
    data = std::move(msg.data);
  }
  const auto kids = topo::survivor_children(t, root, me, dead);
  mp::SendStatus st = mp::SendStatus::kOk;
  if (!kids.empty()) {
    // Sequential forwarding so each child's status is observed; a failed
    // child marks the whole operation instead of being dropped on the floor.
    const buf::Slice shared = buf::Pool::instance().stage(data);
    for (topo::Rank kid : kids) {
      const mp::SendStatus s =
          co_await ep.send(static_cast<int>(kid), tag, shared);
      st = worst(st, s);
    }
  }
  co_return st;
}

Task<mp::SendStatus> reduce_quorum(mp::Endpoint& ep, topo::Rank root,
                                   std::vector<std::byte>& data,
                                   const ReduceOp& op, int tag,
                                   const std::vector<bool>& dead) {
  if (ep.agent().minority()) co_return mp::SendStatus::kMinorityPartition;
  const topo::Torus& t = ep.agent().torus();
  const topo::Rank me = ep.rank();
  [[maybe_unused]] std::int32_t trk = -1;
  MESHMP_TRACE_TRACK(trk, me, "coll");
  MESHMP_TRACE_SCOPE_ARG(ep.engine(), obs::Cat::kColl, me, trk,
                         "reduce_quorum", "bytes", data.size());
  auto& cpu = ep.agent().node().cpu();
  mp::SendStatus st = mp::SendStatus::kOk;
  const auto kids = topo::survivor_children(t, root, me, dead);
  for (std::size_t i = 0; i < kids.size(); ++i) {
    (void)i;
    mp::Message msg = co_await ep.recv(mp::Endpoint::kAny, tag);
    if (!msg.ok) {
      st = worst(st, mp::SendStatus::kUnreachable);
      continue;
    }
    op.combine(data, msg.data);
    if (op.flops_per_byte > 0) {
      co_await cpu.compute_flops(op.flops_per_byte *
                                 static_cast<double>(data.size()));
    }
  }
  if (auto parent = topo::survivor_parent(t, root, me, dead)) {
    const mp::SendStatus s =
        co_await ep.send(static_cast<int>(*parent), tag,
                         buf::Pool::instance().stage(data));
    st = worst(st, s);
  }
  co_return st;
}

Task<mp::SendStatus> allreduce_quorum(mp::Endpoint& ep,
                                      std::vector<std::byte>& data,
                                      const ReduceOp& op, int tag,
                                      const std::vector<bool>& dead) {
  topo::Rank root = 0;
  while (root < ep.agent().torus().size() &&
         dead[static_cast<std::size_t>(root)]) {
    ++root;
  }
  assert(root < ep.agent().torus().size() && "no survivors");
  const mp::SendStatus st1 =
      co_await reduce_quorum(ep, root, data, op, tag, dead);
  if (st1 == mp::SendStatus::kMinorityPartition) co_return st1;
  const mp::SendStatus st2 =
      co_await broadcast_quorum(ep, root, data, tag + 1, dead);
  co_return worst(st1, st2);
}

Task<mp::SendStatus> barrier_quorum(mp::Endpoint& ep, int tag,
                                    const std::vector<bool>& dead) {
  std::vector<std::byte> nothing;
  co_return co_await allreduce_quorum(ep, nothing, null_op(), tag, dead);
}

}  // namespace meshmp::coll
