#pragma once

// Mesh collective algorithms of paper sec. 5.2: dimension-ordered broadcast
// (along the x axis, then across the xy plane, then through all yz planes),
// its reverse as reduction, global combining (reduce + broadcast), and
// barrier (global combine with a null reduction).
//
// All functions are SPMD: every rank calls the same function; the result is
// what that rank ends up with. Tags must come from a per-operation tag space
// (the MPI/QMP layers allocate them).

#include <optional>
#include <vector>

#include "coll/reduce_op.hpp"
#include "mp/endpoint.hpp"
#include "topo/torus.hpp"

namespace meshmp::coll {

/// The broadcast spanning tree rooted at `root`: a node's parent is one hop
/// toward the root along its *highest* displaced dimension, so data flows
/// dimension 0 first, exactly the paper's axis/plane order.
std::optional<topo::Rank> bcast_parent(const topo::Torus& t, topo::Rank root,
                                       topo::Rank me);

/// All nodes whose bcast_parent is `me` (the ranks this node must forward to).
std::vector<topo::Rank> bcast_children(const topo::Torus& t, topo::Rank root,
                                       topo::Rank me);

/// Dimension-ordered broadcast; on return every rank's `data` holds the
/// root's buffer.
sim::Task<> broadcast(mp::Endpoint& ep, topo::Rank root,
                      std::vector<std::byte>& data, int tag);

/// Reverse-broadcast reduction; on return the root's `data` holds the
/// elementwise combination of everyone's input (other ranks keep partials).
sim::Task<> reduce(mp::Endpoint& ep, topo::Rank root,
                   std::vector<std::byte>& data, const ReduceOp& op, int tag);

/// Global combining (paper: reduce to a node, then broadcast the result);
/// every rank ends with the combined value. Uses tag and tag+1.
sim::Task<> allreduce(mp::Endpoint& ep, std::vector<std::byte>& data,
                      const ReduceOp& op, int tag);

/// Barrier: global combining with a null reduction. Uses tag and tag+1.
sim::Task<> barrier(mp::Endpoint& ep, int tag);

// -- degraded-mode (survivor) collectives ----------------------------------
//
// After the failure detector confirms node deaths, the survivors rebuild
// their collective trees over the live subgraph: dead ranks are excluded as
// tree nodes (they neither contribute nor forward) and the tree is a BFS
// spanning tree of the survivors (topo::survivor_parent / survivor_children).
// Only live ranks call these, all with the same `dead` set (each rank's
// MembershipView::dead_set() once views converge); `root` must be alive.

/// Broadcast over the survivor tree; on return every live rank's `data`
/// holds the root's buffer.
sim::Task<> broadcast_survivors(mp::Endpoint& ep, topo::Rank root,
                                std::vector<std::byte>& data, int tag,
                                const std::vector<bool>& dead);

/// Reduction over the survivor tree; the root combines every live rank's
/// input.
sim::Task<> reduce_survivors(mp::Endpoint& ep, topo::Rank root,
                             std::vector<std::byte>& data, const ReduceOp& op,
                             int tag, const std::vector<bool>& dead);

/// Global combining over the survivors, rooted at the lowest live rank.
/// Uses tag and tag+1.
sim::Task<> allreduce_survivors(mp::Endpoint& ep, std::vector<std::byte>& data,
                                const ReduceOp& op, int tag,
                                const std::vector<bool>& dead);

// -- quorum-gated (partition-safe) collectives ------------------------------
//
// Split-brain-safe wrappers for partitioned machines. A rank whose kernel
// agent is flagged minority fails fast with kMinorityPartition before
// touching the wire — a minority-side collective can never represent the
// machine, so it must not silently compute over the fragment. Primary-side
// ranks run the survivor-tree algorithms over their converged dead set and
// propagate wire failures (a peer dying mid-collective) as kUnreachable
// instead of ignoring them. Only live primary-side ranks participate; all
// must pass the same `dead` set.

/// Quorum-gated broadcast over the survivor tree. kOk on every participant
/// iff the payload reached the whole primary side.
sim::Task<mp::SendStatus> broadcast_quorum(mp::Endpoint& ep, topo::Rank root,
                                           std::vector<std::byte>& data,
                                           int tag,
                                           const std::vector<bool>& dead);

/// Quorum-gated reduction over the survivor tree.
sim::Task<mp::SendStatus> reduce_quorum(mp::Endpoint& ep, topo::Rank root,
                                        std::vector<std::byte>& data,
                                        const ReduceOp& op, int tag,
                                        const std::vector<bool>& dead);

/// Quorum-gated global combining, rooted at the lowest live rank. Uses tag
/// and tag+1.
sim::Task<mp::SendStatus> allreduce_quorum(mp::Endpoint& ep,
                                           std::vector<std::byte>& data,
                                           const ReduceOp& op, int tag,
                                           const std::vector<bool>& dead);

/// Quorum-gated barrier (null reduction). Uses tag and tag+1.
sim::Task<mp::SendStatus> barrier_quorum(mp::Endpoint& ep, int tag,
                                         const std::vector<bool>& dead);

}  // namespace meshmp::coll
