#include "coll/scatter.hpp"

#include <cassert>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace meshmp::coll {

using sim::Task;

namespace {

constexpr std::size_t kMaxHops = 22;

/// Routing header prepended to every store-and-forward payload.
struct RouteHead {
  std::int32_t dest = 0;
  std::int32_t src = 0;  ///< original sender (the scatter's root)
  std::uint8_t nhops = 0;
  std::uint8_t hop_idx = 0;
  std::uint8_t dirs[kMaxHops] = {};
};

std::vector<std::byte> wrap(const RouteHead& head,
                            std::span<const std::byte> payload) {
  std::vector<std::byte> out(sizeof(RouteHead) + payload.size());
  // meshmp-lint: host-copy(routing-header marshalling; wire time is modeled
  // when the wrapped message enters the endpoint send path)
  std::memcpy(out.data(), &head, sizeof(RouteHead));
  if (!payload.empty()) {
    std::memcpy(out.data() + sizeof(RouteHead), payload.data(),
                payload.size());
  }
  return out;
}

RouteHead head_of(const std::vector<std::byte>& msg) {
  if (msg.size() < sizeof(RouteHead)) {
    throw std::runtime_error("scatter: truncated routing header");
  }
  RouteHead h;
  // meshmp-lint: host-copy(header peek; fixed 16-byte decode)
  std::memcpy(&h, msg.data(), sizeof(RouteHead));
  return h;
}

std::vector<std::byte> strip(std::vector<std::byte> msg) {
  msg.erase(msg.begin(), msg.begin() + sizeof(RouteHead));
  return msg;
}

RouteHead make_head(topo::Rank src, topo::Rank dest,
                    const std::vector<topo::Dir>& route) {
  if (route.size() > kMaxHops) {
    throw std::invalid_argument("scatter: route longer than kMaxHops");
  }
  RouteHead h;
  h.dest = dest;
  h.src = src;
  h.nhops = static_cast<std::uint8_t>(route.size());
  for (std::size_t i = 0; i < route.size(); ++i) {
    h.dirs[i] = static_cast<std::uint8_t>(route[i].index());
  }
  return h;
}

/// Adds `route`'s interior nodes (everything between endpoints) to counts.
void count_interior(const topo::Torus& t, topo::Rank from,
                    const std::vector<topo::Dir>& route,
                    std::vector<int>& counts) {
  topo::Coord cur = t.coord(from);
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    auto n = t.neighbor(cur, route[i]);
    assert(n);
    cur = *n;
    ++counts[static_cast<std::size_t>(t.rank(cur))];
  }
}

/// The ranks strictly upstream of `me` on `route` (the root plus every
/// interior hop before `me`): if any of them dies before forwarding, the
/// message can never reach `me`.
std::vector<topo::Rank> upstream_of(const topo::Torus& t, topo::Rank root,
                                    const std::vector<topo::Dir>& route,
                                    topo::Rank me) {
  std::vector<topo::Rank> up{root};
  topo::Coord cur = t.coord(root);
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    auto n = t.neighbor(cur, route[i]);
    assert(n);
    cur = *n;
    const topo::Rank r = t.rank(cur);
    if (r == me) break;
    up.push_back(r);
  }
  return up;
}

/// Advances the routing header by one hop; returns the next-hop rank.
topo::Rank advance(const topo::Torus& t, topo::Rank me,
                   std::vector<std::byte>& msg) {
  RouteHead h = head_of(msg);
  if (h.hop_idx >= h.nhops) {
    throw std::runtime_error("scatter: route exhausted before destination");
  }
  const topo::Dir dir = topo::Dir::from_index(h.dirs[h.hop_idx]);
  ++h.hop_idx;
  // meshmp-lint: host-copy(in-place header rewrite while forwarding)
  std::memcpy(msg.data(), &h, sizeof(RouteHead));
  auto next = t.neighbor(me, dir);
  assert(next);
  return *next;
}

/// The previous hop of a received message (for single-port hop acks).
topo::Rank prev_hop(const topo::Torus& t, topo::Rank me,
                    const RouteHead& h) {
  assert(h.hop_idx >= 1);
  const topo::Dir came = topo::Dir::from_index(h.dirs[h.hop_idx - 1]);
  auto prev = t.neighbor(me, came.opposite());
  assert(prev);
  return *prev;
}

/// One store-and-forward participant.
///
/// The paper's two algorithms differ in port discipline (sec. 5.2):
///  * SDF runs in *single-port* mode — a node selects and transmits one
///    message per time step. We model the time step with a per-hop
///    acknowledgement: the worker may not start the next transmission until
///    the previous hop is acknowledged. A dedicated receiver coroutine acks
///    incoming messages immediately, so ack delivery never depends on the
///    (possibly busy) worker and the system cannot deadlock.
///  * OPT runs in *multi-port* mode — all links transmit concurrently, so
///    emissions and forwards are simply spawned in plan order.
struct Participant {
  Participant(mp::Endpoint& e, const topo::Torus& torus, int data_tag,
              bool sp)
      : ep(e), t(torus), tag(data_tag), ack_tag(data_tag + 1),
        single_port(sp) {}

  mp::Endpoint& ep;
  const topo::Torus& t;
  int tag;       ///< data messages
  int ack_tag;   ///< single-port hop acks (tag + 1)
  bool single_port;

  /// Messages this node must emit itself (root chunks / gather contribution),
  /// already wrapped, paired with their first-hop rank.
  std::vector<std::pair<topo::Rank, std::vector<std::byte>>> emissions;
  /// Messages passing through (set by the plan).
  int forward_count = 0;
  /// Number of messages addressed to this node.
  int deliveries = 0;

  /// Failure awareness (scatter_failaware only). When set, the receiver
  /// tracks each expected message with the ranks upstream of this node on
  /// its route; a cancelled receive (msg.ok == false) makes it give up on
  /// every expectation whose upstream path crossed a now-dead node.
  std::function<bool(topo::Rank)> is_dead;
  struct Expected {
    topo::Rank dest = 0;
    std::vector<topo::Rank> upstream;  ///< root + interior hops before me
    bool resolved = false;
  };
  std::vector<Expected> expected;

  std::vector<std::vector<std::byte>> delivered;  // stripped payload + head
  std::vector<RouteHead> delivered_heads;

  Task<> run() {
    sim::Queue<std::vector<std::byte>> work(ep.engine());
    sim::TaskGroup group(ep.engine());
    group.add(receiver(work));
    group.add(worker(work));
    co_await group.join();
  }

 private:
  Task<> send_ack(topo::Rank to) {
    co_await ep.send(static_cast<int>(to), ack_tag, buf::Slice{});
  }

  Task<> receiver(sim::Queue<std::vector<std::byte>>& work) {
    if (is_dead) {
      co_await receiver_failaware(work);
      co_return;
    }
    sim::TaskGroup acks(ep.engine());
    int remaining = forward_count + deliveries;
    while (remaining-- > 0) {
      mp::Message msg = co_await ep.recv(mp::Endpoint::kAny, tag);
      const RouteHead h = head_of(msg.data);
      if (single_port) {
        acks.add(send_ack(prev_hop(t, ep.rank(), h)));
      }
      if (h.dest == ep.rank()) {
        delivered_heads.push_back(h);
        delivered.push_back(strip(std::move(msg.data)));
      } else {
        work.push(std::move(msg.data));
      }
    }
    co_await acks.join();
  }

  Task<> receiver_failaware(sim::Queue<std::vector<std::byte>>& work) {
    sim::TaskGroup acks(ep.engine());
    int unresolved = static_cast<int>(expected.size());
    while (unresolved > 0) {
      mp::Message msg = co_await ep.recv(mp::Endpoint::kAny, tag);
      if (!msg.ok) {
        // Cancellation wake after a confirmed death: give up on every
        // message whose upstream path crossed a dead node. Anything else is
        // still in flight on live hops and is re-awaited.
        for (Expected& e : expected) {
          if (e.resolved) continue;
          bool doomed = false;
          for (topo::Rank u : e.upstream) doomed = doomed || is_dead(u);
          if (!doomed) continue;
          e.resolved = true;
          --unresolved;
          if (e.dest != ep.rank()) {
            work.push({});  // poison keeps the worker's forward count honest
          }
        }
        continue;
      }
      const RouteHead h = head_of(msg.data);
      if (single_port) {
        acks.add(send_ack(prev_hop(t, ep.rank(), h)));
      }
      for (Expected& e : expected) {
        if (!e.resolved && e.dest == h.dest) {
          e.resolved = true;
          --unresolved;
          break;
        }
      }
      if (h.dest == ep.rank()) {
        delivered_heads.push_back(h);
        delivered.push_back(strip(std::move(msg.data)));
      } else {
        work.push(std::move(msg.data));
      }
    }
    co_await acks.join();
  }

  // Single-port pacing: a transmission may start only when at most one
  // earlier one is still unacknowledged — message k+1 overlaps the ack of
  // message k, so the port advances one message per hop period, which is the
  // paper's one-message-per-time-step discipline.
  std::deque<topo::Rank> outstanding;

  Task<> await_oldest_ack() {
    const topo::Rank oldest = outstanding.front();
    outstanding.pop_front();
    for (;;) {
      // A corpse never acks; a cancellation wake (ok == false) means the
      // membership view changed, so re-check before waiting again.
      if (is_dead && is_dead(oldest)) co_return;
      mp::Message m = co_await ep.recv(static_cast<int>(oldest), ack_tag);
      if (m.ok || !is_dead) co_return;
    }
  }

  Task<> transmit(topo::Rank next, std::vector<std::byte> msg) {
    if (is_dead && is_dead(next)) co_return;  // don't feed a known corpse
    if (single_port) {
      while (outstanding.size() >= 2) {
        co_await await_oldest_ack();
      }
      outstanding.push_back(next);
    }
    co_await ep.send(static_cast<int>(next), tag, std::move(msg));
  }

  Task<> drain_outstanding() {
    while (!outstanding.empty()) {
      co_await await_oldest_ack();
    }
  }

  Task<> worker(sim::Queue<std::vector<std::byte>>& work) {
    [[maybe_unused]] std::int32_t trk = -1;
    MESHMP_TRACE_TRACK(trk, ep.rank(), "coll");
    sim::TaskGroup group(ep.engine());
    // Own emissions first (FCFS / region order fixed by the plan)...
    if (!emissions.empty()) {
      MESHMP_TRACE_SCOPE_ARG(ep.engine(), obs::Cat::kColl, ep.rank(), trk,
                             "emit_phase", "msgs", emissions.size());
      for (auto& [next, msg] : emissions) {
        if (single_port) {
          co_await transmit(next, std::move(msg));
        } else {
          group.add(transmit(next, std::move(msg)));
        }
      }
    }
    // ...then everything passing through.
    if (forward_count > 0) {
      MESHMP_TRACE_SCOPE_ARG(ep.engine(), obs::Cat::kColl, ep.rank(), trk,
                             "forward_phase", "msgs", forward_count);
      for (int i = 0; i < forward_count; ++i) {
        std::vector<std::byte> msg = co_await work.pop();
        if (msg.empty()) continue;  // poison: a doomed forward, nothing to do
        const topo::Rank next = advance(t, ep.rank(), msg);
        if (single_port) {
          co_await transmit(next, std::move(msg));
        } else {
          group.add(transmit(next, std::move(msg)));
        }
      }
    }
    if (single_port) co_await drain_outstanding();
    co_await group.join();
  }
};

}  // namespace

ScatterPlan make_scatter_plan(const topo::Torus& t, topo::Rank root,
                              ScatterAlg alg) {
  ScatterPlan plan;
  plan.root = root;
  plan.routes.resize(static_cast<std::size_t>(t.size()));
  plan.forward_count.assign(static_cast<std::size_t>(t.size()), 0);

  if (alg == ScatterAlg::kSdf) {
    // First-Come-First-Served in destination order; SDF routes throughout.
    for (topo::Rank d = 0; d < t.size(); ++d) {
      if (d == root) continue;
      plan.routes[static_cast<std::size_t>(d)] =
          t.route(t.coord(root), t.coord(d));
      plan.emit_order.push_back(d);
    }
  } else {
    // OPT: region partition + Furthest-Distance-First, emitted round-robin
    // across the root's links so all ports stream in parallel.
    const auto part = topo::make_region_partition(t, root);
    std::size_t round = 0;
    for (bool any = true; any; ++round) {
      any = false;
      for (int region = 0; region < part.num_regions(); ++region) {
        const auto& members =
            part.members[static_cast<std::size_t>(region)];
        if (round >= members.size()) continue;
        any = true;
        const topo::Rank d = members[round];
        plan.routes[static_cast<std::size_t>(d)] = t.route_via(
            t.coord(root), t.coord(d),
            part.region_dir[static_cast<std::size_t>(region)]);
        plan.emit_order.push_back(d);
      }
    }
  }

  for (topo::Rank d = 0; d < t.size(); ++d) {
    if (d == root) continue;
    count_interior(t, root, plan.routes[static_cast<std::size_t>(d)],
                   plan.forward_count);
  }
  return plan;
}

Task<std::vector<std::byte>> scatter(
    mp::Endpoint& ep, topo::Rank root,
    const std::vector<std::vector<std::byte>>* chunks, int tag,
    ScatterAlg alg) {
  const topo::Torus& t = ep.agent().torus();
  const topo::Rank me = ep.rank();
  [[maybe_unused]] std::int32_t trk = -1;
  MESHMP_TRACE_TRACK(trk, me, "coll");
  MESHMP_TRACE_SCOPE_ARG(ep.engine(), obs::Cat::kColl, me, trk, "scatter",
                         "root", root);
  const ScatterPlan plan = make_scatter_plan(t, root, alg);

  Participant part(ep, t, tag, alg == ScatterAlg::kSdf);
  part.forward_count = plan.forward_count[static_cast<std::size_t>(me)];

  std::vector<std::byte> own;
  if (me == root) {
    if (chunks == nullptr ||
        chunks->size() != static_cast<std::size_t>(t.size())) {
      throw std::invalid_argument("scatter: root needs size() chunks");
    }
    own = (*chunks)[static_cast<std::size_t>(root)];
    for (topo::Rank d : plan.emit_order) {
      const auto& route = plan.routes[static_cast<std::size_t>(d)];
      RouteHead h = make_head(root, d, route);
      h.hop_idx = 1;  // the root itself performs hop 0
      auto next = t.neighbor(root, route.front());
      assert(next);
      part.emissions.emplace_back(
          *next, wrap(h, (*chunks)[static_cast<std::size_t>(d)]));
    }
  } else {
    if (chunks != nullptr) {
      throw std::invalid_argument("scatter: only the root passes chunks");
    }
    part.deliveries = 1;
  }

  co_await part.run();
  if (me != root) {
    assert(part.delivered.size() == 1);
    own = std::move(part.delivered.front());
  }
  co_return own;
}

Task<ScatterResult> scatter_failaware(
    mp::Endpoint& ep, topo::Rank root,
    const std::vector<std::vector<std::byte>>* chunks, int tag, ScatterAlg alg,
    std::function<bool(topo::Rank)> is_dead) {
  const topo::Torus& t = ep.agent().torus();
  const topo::Rank me = ep.rank();
  [[maybe_unused]] std::int32_t trk = -1;
  MESHMP_TRACE_TRACK(trk, me, "coll");
  MESHMP_TRACE_SCOPE_ARG(ep.engine(), obs::Cat::kColl, me, trk,
                         "scatter_failaware", "root", root);
  const ScatterPlan plan = make_scatter_plan(t, root, alg);

  Participant part(ep, t, tag, alg == ScatterAlg::kSdf);
  part.is_dead = std::move(is_dead);

  // Every message passing through me, tracked with its upstream ranks.
  for (topo::Rank d = 0; d < t.size(); ++d) {
    if (d == root || d == me) continue;
    const auto& route = plan.routes[static_cast<std::size_t>(d)];
    topo::Coord cur = t.coord(root);
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      auto n = t.neighbor(cur, route[i]);
      assert(n);
      cur = *n;
      if (t.rank(cur) == me) {
        part.expected.push_back(
            {d, upstream_of(t, root, route, me), false});
        break;
      }
    }
  }
  part.forward_count = static_cast<int>(part.expected.size());

  ScatterResult res;
  if (me == root) {
    if (chunks == nullptr ||
        chunks->size() != static_cast<std::size_t>(t.size())) {
      throw std::invalid_argument("scatter: root needs size() chunks");
    }
    res.data = (*chunks)[static_cast<std::size_t>(root)];
    for (topo::Rank d : plan.emit_order) {
      const auto& route = plan.routes[static_cast<std::size_t>(d)];
      RouteHead h = make_head(root, d, route);
      h.hop_idx = 1;  // the root itself performs hop 0
      auto next = t.neighbor(root, route.front());
      assert(next);
      part.emissions.emplace_back(
          *next, wrap(h, (*chunks)[static_cast<std::size_t>(d)]));
    }
  } else {
    if (chunks != nullptr) {
      throw std::invalid_argument("scatter: only the root passes chunks");
    }
    part.deliveries = 1;
    part.expected.push_back(
        {me, upstream_of(t, root, plan.routes[static_cast<std::size_t>(me)],
                         me),
         false});
  }

  co_await part.run();
  if (me != root) {
    // A payload that arrived before (or despite) the doom verdict wins.
    if (!part.delivered.empty()) {
      res.data = std::move(part.delivered.front());
    } else {
      res.ok = false;
    }
  }
  co_return res;
}

Task<std::vector<std::vector<std::byte>>> gather(mp::Endpoint& ep,
                                                 topo::Rank root,
                                                 std::vector<std::byte> mine,
                                                 int tag, ScatterAlg alg) {
  const topo::Torus& t = ep.agent().torus();
  const topo::Rank me = ep.rank();
  [[maybe_unused]] std::int32_t trk = -1;
  MESHMP_TRACE_TRACK(trk, me, "coll");
  MESHMP_TRACE_SCOPE_ARG(ep.engine(), obs::Cat::kColl, me, trk, "gather",
                         "root", root);
  // Reverse of the scatter plan: each contribution walks the scatter route
  // backwards (so the OPT variant keeps its region/streamline structure).
  const ScatterPlan plan = make_scatter_plan(t, root, alg);

  auto reverse_route = [&](topo::Rank src) {
    const auto& fwd = plan.routes[static_cast<std::size_t>(src)];
    std::vector<topo::Dir> rev(fwd.rbegin(), fwd.rend());
    for (auto& d : rev) d = d.opposite();
    return rev;
  };

  std::vector<int> counts(static_cast<std::size_t>(t.size()), 0);
  for (topo::Rank s = 0; s < t.size(); ++s) {
    if (s == root) continue;
    count_interior(t, s, reverse_route(s), counts);
  }

  Participant part(ep, t, tag, alg == ScatterAlg::kSdf);
  part.forward_count = counts[static_cast<std::size_t>(me)];

  std::vector<std::vector<std::byte>> all;
  if (me == root) {
    all.resize(static_cast<std::size_t>(t.size()));
    all[static_cast<std::size_t>(root)] = std::move(mine);
    part.deliveries = t.size() - 1;
  } else {
    const auto route = reverse_route(me);
    RouteHead h = make_head(me, root, route);
    h.hop_idx = 1;
    auto next = t.neighbor(me, route.front());
    assert(next);
    part.emissions.emplace_back(*next, wrap(h, mine));
  }

  co_await part.run();
  if (me == root) {
    for (std::size_t i = 0; i < part.delivered.size(); ++i) {
      all[static_cast<std::size_t>(part.delivered_heads[i].src)] =
          std::move(part.delivered[i]);
    }
  }
  co_return all;
}

Task<std::vector<std::vector<std::byte>>> alltoall(
    mp::Endpoint& ep, std::vector<std::vector<std::byte>> chunks, int tag,
    ScatterAlg alg) {
  const topo::Torus& t = ep.agent().torus();
  const topo::Rank me = ep.rank();
  if (chunks.size() != static_cast<std::size_t>(t.size())) {
    throw std::invalid_argument("alltoall: need size() chunks");
  }
  [[maybe_unused]] std::int32_t trk = -1;
  MESHMP_TRACE_TRACK(trk, me, "coll");
  MESHMP_TRACE_SCOPE_ARG(ep.engine(), obs::Cat::kColl, me, trk, "alltoall",
                         "ranks", t.size());

  // All size() simultaneous scatters share the wires; multi-port transport
  // regardless of the route-planning algorithm (the paper parallelizes the
  // per-root scatters).
  Participant part(ep, t, tag, /*single_port=*/false);
  std::vector<std::vector<std::vector<topo::Dir>>> routes(
      static_cast<std::size_t>(t.size()));
  {
    std::vector<int> counts(static_cast<std::size_t>(t.size()), 0);
    for (topo::Rank root = 0; root < t.size(); ++root) {
      const ScatterPlan plan = make_scatter_plan(t, root, alg);
      routes[static_cast<std::size_t>(root)] = plan.routes;
      for (topo::Rank d = 0; d < t.size(); ++d) {
        if (d == root) continue;
        count_interior(t, root, plan.routes[static_cast<std::size_t>(d)],
                       counts);
      }
    }
    part.forward_count = counts[static_cast<std::size_t>(me)];
  }
  part.deliveries = t.size() - 1;

  std::vector<std::vector<std::byte>> got(
      static_cast<std::size_t>(t.size()));
  got[static_cast<std::size_t>(me)] =
      std::move(chunks[static_cast<std::size_t>(me)]);

  for (topo::Rank d = 0; d < t.size(); ++d) {
    if (d == me) continue;
    const auto& route = routes[static_cast<std::size_t>(me)]
                              [static_cast<std::size_t>(d)];
    RouteHead h = make_head(me, d, route);
    h.hop_idx = 1;
    auto next = t.neighbor(me, route.front());
    assert(next);
    part.emissions.emplace_back(
        *next, wrap(h, chunks[static_cast<std::size_t>(d)]));
  }

  co_await part.run();
  for (std::size_t i = 0; i < part.delivered.size(); ++i) {
    got[static_cast<std::size_t>(part.delivered_heads[i].src)] =
        std::move(part.delivered[i]);
  }
  co_return got;
}

}  // namespace meshmp::coll
