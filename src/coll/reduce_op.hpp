#pragma once

// Reduction operators working on raw byte buffers (the collectives move
// bytes; the operator knows the element type).

#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <stdexcept>

namespace meshmp::coll {

struct ReduceOp {
  /// combine(acc, in): acc[i] = acc[i] (op) in[i], elementwise over bytes.
  std::function<void(std::span<std::byte>, std::span<const std::byte>)>
      combine;
  /// Arithmetic cost charged to the CPU per combined byte.
  double flops_per_byte = 0.0;
};

namespace detail {

template <typename T, typename F>
void combine_typed(std::span<std::byte> acc, std::span<const std::byte> in,
                   F f) {
  if (acc.size() != in.size() || acc.size() % sizeof(T) != 0) {
    throw std::invalid_argument("ReduceOp: buffer size mismatch");
  }
  const std::size_t n = acc.size() / sizeof(T);
  for (std::size_t i = 0; i < n; ++i) {
    T a;
    T b;
    // meshmp-lint: host-copy(type-punned element loads/stores of the combine
    // arithmetic, not a payload move; no bytes change buffers here)
    std::memcpy(&a, acc.data() + i * sizeof(T), sizeof(T));
    std::memcpy(&b, in.data() + i * sizeof(T), sizeof(T));
    a = f(a, b);
    std::memcpy(acc.data() + i * sizeof(T), &a, sizeof(T));
  }
}

}  // namespace detail

template <typename T>
ReduceOp sum_op() {
  return ReduceOp{
      [](std::span<std::byte> acc, std::span<const std::byte> in) {
        detail::combine_typed<T>(acc, in, [](T a, T b) { return a + b; });
      },
      1.0 / sizeof(T)};
}

template <typename T>
ReduceOp max_op() {
  return ReduceOp{
      [](std::span<std::byte> acc, std::span<const std::byte> in) {
        detail::combine_typed<T>(acc, in,
                                 [](T a, T b) { return a > b ? a : b; });
      },
      1.0 / sizeof(T)};
}

template <typename T>
ReduceOp min_op() {
  return ReduceOp{
      [](std::span<std::byte> acc, std::span<const std::byte> in) {
        detail::combine_typed<T>(acc, in,
                                 [](T a, T b) { return a < b ? a : b; });
      },
      1.0 / sizeof(T)};
}

template <typename T>
ReduceOp prod_op() {
  return ReduceOp{
      [](std::span<std::byte> acc, std::span<const std::byte> in) {
        detail::combine_typed<T>(acc, in, [](T a, T b) { return a * b; });
      },
      1.0 / sizeof(T)};
}

/// The paper's barrier: global combining with a null reduction.
inline ReduceOp null_op() {
  return ReduceOp{[](std::span<std::byte>, std::span<const std::byte>) {},
                  0.0};
}

}  // namespace meshmp::coll
