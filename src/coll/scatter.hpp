#pragma once

// One-to-all personalized communication (scatter), its reverse (gather), and
// all-to-all personalized communication — paper sec. 5.2.
//
// Messages move store-and-forward over neighbour channels; every message
// carries its full route, computed identically on all ranks:
//
//  * SDF (Shortest-Direction-First): root emits First-Come-First-Served in
//    destination-rank order; each hop follows the SDF rule. Simple, not
//    optimal: traffic concentrates on the directions with few remaining
//    steps.
//  * OPT: the mesh is partitioned into one region per root link such that
//    every region member is reached minimally through its link
//    (topo::make_region_partition); the root emits round-robin across
//    regions (multi-port), Furthest-Distance-First within each region, and
//    messages never leave their region's first hop. The root drains in
//    ceil((p-1)/k) emit steps — the paper's optimality argument.

#include <cstdint>
#include <functional>
#include <vector>

#include "mp/endpoint.hpp"
#include "topo/partition.hpp"
#include "topo/torus.hpp"

namespace meshmp::coll {

enum class ScatterAlg { kSdf, kOpt };

/// Deterministic routing/emission plan, identical on every rank.
struct ScatterPlan {
  topo::Rank root = 0;
  /// Full route (sequence of directions) from root to each destination.
  std::vector<std::vector<topo::Dir>> routes;
  /// Order in which the root emits destination messages.
  std::vector<topo::Rank> emit_order;
  /// Per rank: number of messages that pass *through* it (excludes its own).
  std::vector<int> forward_count;
};

ScatterPlan make_scatter_plan(const topo::Torus& t, topo::Rank root,
                              ScatterAlg alg);

/// SPMD scatter. At the root, `chunks` must point to size() buffers (chunk
/// [root] is returned locally); elsewhere it must be null. Returns this
/// rank's chunk.
sim::Task<std::vector<std::byte>> scatter(
    mp::Endpoint& ep, topo::Rank root,
    const std::vector<std::vector<std::byte>>* chunks, int tag,
    ScatterAlg alg);

/// Outcome of a failure-aware scatter on one rank.
struct ScatterResult {
  /// False when this rank's chunk was undeliverable: the root or some node
  /// upstream on the chunk's route died mid-operation. `data` is empty.
  bool ok = true;
  std::vector<std::byte> data;
};

/// Failure-aware SPMD scatter for clusters that may lose nodes mid-flight.
/// `is_dead(r)` is this rank's current belief about r (its
/// MembershipView::dead_set()); it may start all-false and flip during the
/// operation. The caller must arrange for posted receives to be cancelled
/// when a death is confirmed (ClusterLifecycle::subscribe ->
/// mp::Endpoint::cancel_posted_recvs), which wakes blocked participants:
/// each re-evaluates its expected messages and gives up on any whose
/// upstream path crossed a dead node. Every surviving rank terminates with
/// either its correct chunk (ok == true) or a clean unreachable outcome
/// (ok == false) — never a hang. Fault-free runs behave exactly like
/// scatter().
sim::Task<ScatterResult> scatter_failaware(
    mp::Endpoint& ep, topo::Rank root,
    const std::vector<std::vector<std::byte>>* chunks, int tag, ScatterAlg alg,
    std::function<bool(topo::Rank)> is_dead);

/// SPMD gather (reverse scatter): every rank contributes `mine`; the root
/// returns all size() chunks (others return empty).
sim::Task<std::vector<std::vector<std::byte>>> gather(
    mp::Endpoint& ep, topo::Rank root, std::vector<std::byte> mine, int tag,
    ScatterAlg alg);

/// SPMD all-to-all personalized communication: a parallel execution of every
/// one-to-all scatter (paper sec. 5.2, last paragraph). `chunks[d]` is this
/// rank's message for rank d; returns the received chunks indexed by source.
sim::Task<std::vector<std::vector<std::byte>>> alltoall(
    mp::Endpoint& ep, std::vector<std::vector<std::byte>> chunks, int tag,
    ScatterAlg alg);

}  // namespace meshmp::coll
