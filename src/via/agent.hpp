#pragma once

// The per-node M-VIA kernel agent.
//
// This is the "modified M-VIA" of the paper: it owns the node's VIs and
// registered memory, fragments and reassembles messages, implements the
// reliability modes, and — the key modification — performs *kernel-level
// packet switching* so that non-nearest-neighbour communication works on a
// mesh: frames addressed to another node are re-posted to the SDF-chosen
// egress adapter at interrupt level, without ever touching user space
// (paper sec. 4 and 5.1).

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "chk/flat_map.hpp"
#include "hw/nic.hpp"
#include "hw/node.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "topo/spanning_tree.hpp"
#include "topo/torus.hpp"
#include "via/header.hpp"
#include "via/memory.hpp"
#include "via/params.hpp"
#include "via/vi.hpp"

namespace meshmp::via {

class KernelAgent final : public hw::NicDriver {
 public:
  /// `mesh_rank` is this node's rank within `torus`; node ids on frames equal
  /// torus ranks.
  KernelAgent(hw::NodeHw& node, const topo::Torus& torus,
              topo::Rank mesh_rank, ViaParams params, sim::Rng rng);
  ~KernelAgent() override;

  /// Registers the adapter serving mesh direction `dir` and becomes its
  /// driver.
  void attach_nic(topo::Dir dir, hw::Nic& nic);

  [[nodiscard]] net::NodeId node_id() const noexcept { return me_; }
  [[nodiscard]] hw::NodeHw& node() noexcept { return node_; }
  [[nodiscard]] MemoryRegistry& memory() noexcept { return memory_; }
  [[nodiscard]] const ViaParams& params() const noexcept { return params_; }
  [[nodiscard]] const topo::Torus& torus() const noexcept { return torus_; }

  // -- connection management (the only place the "OS" is involved) --------
  Vi& create_vi();
  [[nodiscard]] Vi& vi(std::uint32_t id) { return *vis_.at(id); }
  [[nodiscard]] std::size_t vi_count() const noexcept { return vis_.size(); }
  /// Declares willingness to accept connections for `service`.
  void listen(std::uint32_t service);
  /// Dials (remote, service); resolves to the connected local VI.
  sim::Task<Vi*> connect(net::NodeId remote, std::uint32_t service);
  /// Waits for the next accepted connection on `service`.
  sim::Task<Vi*> accept(std::uint32_t service);

  // -- interrupt-level collectives (paper sec. 7 prototype) ---------------
  /// Global sum over all mesh nodes with intermediate combining performed in
  /// the receive ISR: interior nodes never copy to user space or wake a
  /// process, which removes most of the per-hop latency of the user-level
  /// global combine. `sequence` must be identical on all nodes per call and
  /// unique across concurrent calls.
  sim::Task<double> kernel_global_sum(double value, topo::Rank root,
                                      std::uint32_t sequence);

  // -- NicDriver ----------------------------------------------------------
  sim::Task<> handle_rx(net::Frame frame, hw::IsrContext& ctx) override;
  /// Carrier change on an attached adapter: marks the direction (un)usable so
  /// the forwarding path routes around it from the next frame on. There is no
  /// cached route table — next hops are recomputed per frame — so one mask
  /// update is the whole "recompute routes on failure" step.
  void link_change(hw::Nic& nic, bool up) override;

  /// Bitmask of this node's currently-dead local directions.
  [[nodiscard]] topo::DirMask failed_dirs() const noexcept {
    return failed_dirs_;
  }

  // -- gray-failure quality masks ----------------------------------------
  /// Installs the link-quality verdicts from the failure detector's scoring
  /// pass. `degraded` links are avoided among equal-length minimal paths;
  /// `black` links (carrier up but dropping essentially everything, e.g. a
  /// one-directional cable break) are treated like failed links for egress —
  /// detours allowed — without ever counting as a carrier loss.
  void set_quality_masks(topo::DirMask degraded, topo::DirMask black);
  [[nodiscard]] topo::DirMask degraded_dirs() const noexcept {
    return degraded_dirs_;
  }
  [[nodiscard]] topo::DirMask black_dirs() const noexcept {
    return black_dirs_;
  }

  // -- node-failure lifecycle --------------------------------------------
  /// Whole-node crash: every VI fails with kUnreachable (waking local
  /// blockers so nothing hangs and upper layers quiesce their state), the
  /// retransmit windows and kernel-collective state are discarded. The NICs
  /// are powered off separately by the cluster fabric.
  void power_fail();
  /// Cold boot after power_fail(): bumps the node's incarnation epoch so
  /// frames retransmitted by (or to) the previous incarnation are
  /// identifiable as stale, and forgets accepted-dial dedup state — a fresh
  /// host has no connection memory.
  void power_restore();
  [[nodiscard]] bool powered() const noexcept { return powered_; }
  /// This node's incarnation number (bumped by every power_restore()).
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }

  /// Fast-fails every VI connected to `peer` with kUnreachable: the failure
  /// detector confirmed the peer dead, so traffic to it error-completes now
  /// instead of burning through the full retransmit budget.
  void peer_declared_dead(net::NodeId peer);

  // -- partition tolerance ------------------------------------------------
  /// Quorum verdict from the membership layer. While set, new dials fail
  /// fast with kMinorityPartition (and upper layers refuse collectives/new
  /// channels) — a minority side must not keep serving on a half-machine
  /// view.
  void set_minority(bool m);
  [[nodiscard]] bool minority() const noexcept { return minority_; }

  /// Records a minority-side refusal made by an upper layer (mp::Endpoint
  /// rejecting a fresh send, coll refusing a collective) in this agent's
  /// counters, so cluster reports aggregate one machine-wide total.
  void note_minority_refusal() { counters_.inc("conn_minority_refused"); }

  /// Healing reconciliation flush: bumps the incarnation epoch *without* a
  /// power cycle and fails every existing VI. Frames retransmitted from (or
  /// addressed to) the pre-heal incarnation become identifiably stale, and
  /// every channel that operated on the partitioned view error-completes so
  /// applications re-establish on the merged view.
  void partition_flush();

  /// Membership news says `peer` is now at incarnation `epoch`: fast-fail
  /// the VIs still bound to an older incarnation of it — their sequence
  /// space and retransmit state are meaningless to the new one.
  void peer_reincarnated(net::NodeId peer, std::uint32_t epoch);

  /// Observer invoked on every carrier change of an attached adapter
  /// (after the failed-direction mask updates). The membership layer uses
  /// carrier restoration on a cut cable as the heal trigger.
  using LinkObserver = std::function<void(topo::Dir, bool)>;
  void set_link_observer(LinkObserver fn) { link_observer_ = std::move(fn); }

  /// Installs a per-destination first-hop table (dir index per rank, -1 =
  /// unreachable) that overrides per-frame SDF while set. Used for
  /// degraded-mode routing around confirmed-dead nodes; cleared when the
  /// mesh heals. The table is consulted before the SDF/detour path; a table
  /// hop whose local link is itself down falls back to the mask-aware path.
  void set_route_table(std::vector<std::int8_t> table);
  void clear_route_table();
  [[nodiscard]] bool has_route_table() const noexcept {
    return !route_table_.empty();
  }

  /// Handler for lifecycle control frames (kHeartbeat/kMembership) addressed
  /// to this node. Runs at ISR level; implementations must not block.
  using ControlHandler =
      std::function<void(const ViaHeader&, net::NodeId, const buf::Slice&)>;
  void set_control_handler(ControlHandler fn) {
    control_handler_ = std::move(fn);
  }
  /// Fire-and-forget control frame (heartbeat / membership flood record).
  /// Unreliable by design: the detector tolerates lost probes. `msg_id`
  /// lets probes carry a sequence number their acks echo back.
  void send_control(net::NodeId dst, MsgKind kind, buf::Slice payload,
                    std::uint64_t immediate = 0, std::uint32_t msg_id = 0);

  /// Like send_control, but pinned to the adapter serving `dir` instead of
  /// routed: a heartbeat probe must keep exercising the direct cable it
  /// monitors even when quality scoring would route data traffic around it.
  /// Silently dropped when no adapter serves `dir`.
  void send_control_dir(topo::Dir dir, MsgKind kind, buf::Slice payload,
                        std::uint64_t immediate = 0, std::uint32_t msg_id = 0);

  /// Observer invoked (from kernel context) every time the go-back-N layer
  /// retransmits a window toward `remote`. The quality layer attributes
  /// retransmits to the local egress when `remote` is a direct neighbour.
  using RetransmitObserver = std::function<void(net::NodeId)>;
  void set_retransmit_observer(RetransmitObserver fn) {
    retransmit_observer_ = std::move(fn);
  }

  [[nodiscard]] const sim::Counters& counters() const noexcept {
    return counters_;
  }

 private:
  friend class Vi;

  /// Fragments and transmits one message (kData or kRmaWrite) on `vi`.
  /// Fragments alias `data` — no per-fragment host copy.
  sim::Task<> transmit_message(Vi& vi, MsgKind kind, buf::Slice data,
                               std::uint64_t immediate, const MemToken* token,
                               std::uint64_t rma_offset);

  /// Picks the egress adapter for frames to `dst`: failure-aware SDF first
  /// hop, falling back to a +2-hop detour when no minimal direction is up.
  /// Returns nullptr (and counts `unreachable_drops`) when every usable port
  /// is down.
  hw::Nic* egress_for(net::NodeId dst);

  /// Moves `vi` into the error state: queues a structured error completion,
  /// invokes the error handler, and unblocks a dial still waiting on the
  /// connection handshake. Idempotent.
  void fail_vi(Vi& vi, ViError err);

  /// Backoff before the next retransmission probe of `vi`:
  /// min(retx_timeout * backoff^retries, retx_timeout_max) plus jitter.
  sim::Duration backoff_delay(const Vi& vi);

  /// Re-sends kConnReq with backoff until the handshake completes or the
  /// retry budget runs out (then fails the VI with kUnreachable).
  sim::Task<> connect_watchdog(std::uint32_t vi_id, net::NodeId remote,
                               std::uint32_t service);

  /// ISR-safe single-frame transmit: drops (and counts) when the ring is
  /// full. Used for forwarding, acks and retransmissions.
  void kernel_post(net::Frame f);

  /// User-context transmit that waits for descriptor-ring space.
  sim::Task<> post_with_backpressure(hw::Nic& nic, net::Frame f);

  net::Frame make_frame(net::NodeId dst, const ViaHeader& h,
                        buf::Slice payload) const;

  // receive-path pieces (run in ISR context)
  sim::Task<> rx_data(Vi& vi, const ViaHeader& h, net::Frame& f,
                      hw::IsrContext& ctx);
  sim::Task<> rx_rma(Vi& vi, const ViaHeader& h, net::Frame& f,
                     hw::IsrContext& ctx);
  void rx_ack(Vi& vi, const ViaHeader& h);
  void rx_connect(const ViaHeader& h, const net::Frame& f);
  /// Reliable-delivery in-order check; returns false if the frame must be
  /// discarded.
  bool reliable_accept(Vi& vi, const ViaHeader& h);
  struct KernelColl {
    double acc = 0;
    int waiting_children = 0;
    bool user_in = false;
    bool up_sent = false;
    bool down = false;
    double result = 0;
    std::unique_ptr<sim::Trigger> done;
  };
  KernelColl& kcoll(topo::Rank root, std::uint32_t seq);
  void kcoll_advance(topo::Rank root, std::uint32_t seq);
  void kcoll_finish(topo::Rank root, std::uint32_t seq, double result);

  void send_ack(Vi& vi);
  void arm_ack_timer(Vi& vi);
  void arm_retx_timer(Vi& vi);
  sim::Task<> ack_timer_loop(std::uint32_t vi_id);
  sim::Task<> retx_timer_loop(std::uint32_t vi_id);

  hw::NodeHw& node_;
  const topo::Torus& torus_;
  net::NodeId me_;
  topo::Coord my_coord_;
  ViaParams params_;
  MemoryRegistry memory_;
  sim::Rng rng_;

  chk::FlatMap<int, hw::Nic*> nic_by_dir_;
  // Reverse lookup in attach order, searched linearly (<= 6 ports). Not a
  // map keyed by pointer: address order is not stable across runs, and no
  // container here may ever offer nondeterministic iteration.
  std::vector<std::pair<const hw::Nic*, int>> dir_of_nic_;
  topo::DirMask failed_dirs_ = 0;
  topo::DirMask degraded_dirs_ = 0;  ///< sick but usable: avoid if free
  topo::DirMask black_dirs_ = 0;     ///< carrier up, drops ~everything
  bool powered_ = true;
  bool minority_ = false;  ///< on a minority partition; dials fail fast
  std::uint32_t epoch_ = 0;
  std::vector<std::int8_t> route_table_;  ///< first-hop dir per rank, -1 dead
  ControlHandler control_handler_;
  LinkObserver link_observer_;
  RetransmitObserver retransmit_observer_;
  std::vector<std::unique_ptr<Vi>> vis_;
  chk::FlatMap<std::uint32_t, std::unique_ptr<sim::Queue<Vi*>>>
      accept_queues_;  // keyed by service; iterated at power_fail
  // Dials re-send kConnReq, so a duplicate must re-ack the already-accepted
  // VI instead of accepting a second one — unless the duplicate comes from a
  // newer incarnation of the dialer, which gets a fresh accept. Keyed
  // (dialer node, dialer VI).
  struct AcceptedDial {
    std::uint32_t vi = 0;
    std::uint32_t epoch = 0;
  };
  chk::FlatMap<std::uint64_t, AcceptedDial> accepted_vis_;
  chk::FlatMap<std::uint64_t, KernelColl> kcolls_;  // (root, seq)

  sim::Counters counters_;
  chk::Audit::Registration audit_reg_;
  obs::Registry::Registration metrics_reg_;
  obs::Histogram& ack_rtt_hist_;  ///< ns from oldest-unacked send to its ack
  std::int32_t trk_rx_ = -1;      ///< "agent.rx" trace track (ISR-serialized)
};

}  // namespace meshmp::via
