#pragma once

// A Virtual Interface: one endpoint of a connected VI pair.
//
// The user-visible surface mirrors the VIA model (paper sec. 2): post receive
// descriptors, post sends, reap completions from a queue; plus RMA writes
// into a peer's registered memory. All kernel work (fragmentation, sequence
// numbers, acks, reassembly, the one receive-side copy) lives in the
// KernelAgent; the Vi holds per-connection state.

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "buf/pool.hpp"
#include "chk/audit.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "via/memory.hpp"

namespace meshmp::via {

class KernelAgent;

/// Why a VI entered the error state. Delivered in-band through a structured
/// error completion so blocked receivers wake up instead of hanging.
enum class ViError : std::uint8_t {
  kNone = 0,
  kUnreachable = 1,  ///< retry budget exhausted; peer presumed unreachable
  kMinorityPartition = 2,  ///< refused: this node is on a minority partition
};

[[nodiscard]] const char* to_string(ViError e) noexcept;

/// Stable id for a descriptor post→consume async trace span. Descriptors are
/// consumed in post order (FIFO), so the running post/consume totals pair the
/// begin and end events exactly.
constexpr std::uint64_t desc_trace_id(net::NodeId node, std::uint32_t vi,
                                      std::uint64_t n) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 40) |
         (static_cast<std::uint64_t>(vi & 0xfffffu) << 20) | (n & 0xfffffu);
}

/// A completed receive: the reassembled message plus its 64-bit immediate.
/// When `status != kNone` this is an error completion: `data` is empty and
/// the VI has entered its error state.
struct RecvCompletion {
  std::vector<std::byte> data;
  std::uint64_t immediate = 0;
  ViError status = ViError::kNone;
};

class Vi {
 public:
  Vi(KernelAgent& agent, std::uint32_t id);
  Vi(const Vi&) = delete;
  Vi& operator=(const Vi&) = delete;

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] bool connected() const noexcept { return connected_; }
  [[nodiscard]] net::NodeId remote_node() const noexcept {
    return remote_node_;
  }
  [[nodiscard]] std::uint32_t remote_vi() const noexcept { return remote_vi_; }

  /// Posts a receive descriptor able to hold a message of up to `max_bytes`.
  /// The number of posted descriptors is exactly what the message-passing
  /// layer advertises as flow-control tokens (paper sec. 5.1).
  void post_recv(std::int64_t max_bytes);
  [[nodiscard]] int posted_recvs() const noexcept {
    return static_cast<int>(recv_descs_.size());
  }

  /// Sends a message; resolves when every fragment is handed to the adapter
  /// (wire transfer continues asynchronously). The vector overload adopts
  /// the bytes into the pool with no copy; fragments alias the slice.
  sim::Task<> send(std::vector<std::byte> data, std::uint64_t immediate = 0);
  sim::Task<> send(buf::Slice data, std::uint64_t immediate = 0);

  /// Remote-memory write into the peer's registered region. Zero-copy on the
  /// user path: the single copy happens in the peer's receive interrupt.
  sim::Task<> rma_write(std::vector<std::byte> data, const MemToken& token,
                        std::uint64_t offset = 0);
  sim::Task<> rma_write(buf::Slice data, const MemToken& token,
                        std::uint64_t offset = 0);

  /// Blocks until the next receive completion and charges the user-level
  /// completion-processing cost.
  sim::Task<RecvCompletion> recv_completion();

  /// Non-blocking completion poll (no CPU cost charged).
  std::optional<RecvCompletion> poll_completion();

  /// True once reliable delivery gave up (retries exhausted).
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  /// The error that failed the VI (kNone while healthy).
  [[nodiscard]] ViError error() const noexcept { return error_; }

  /// Invoked (at most once) when the VI enters the error state, after the
  /// structured error completion is queued. Upper layers use it to fail
  /// pending sends/rendezvous without polling.
  void set_error_handler(std::function<void(Vi&, ViError)> fn) {
    on_error_ = std::move(fn);
  }

  [[nodiscard]] const sim::Counters& counters() const noexcept {
    return counters_;
  }

 private:
  friend class KernelAgent;

  /// Quiesce invariants: every posted receive descriptor is accounted for
  /// (consumed or still queued), no half-reassembled message, and no
  /// unacknowledged frames unless delivery gave up.
  void audit_quiesce() const;

  struct Reassembly {
    std::uint32_t msg_id = 0;
    buf::Buffer buf;  ///< pooled landing zone; released into the completion
    std::uint32_t frags_seen = 0;
    std::uint32_t nfrags = 0;
    std::uint64_t immediate = 0;
    bool active = false;
    bool dropping = false;
  };

  KernelAgent& agent_;
  std::uint32_t id_;

  // connection state
  bool connected_ = false;
  net::NodeId remote_node_ = -1;
  std::uint32_t remote_vi_ = 0;
  /// Peer incarnation this connection was established with. Frames stamped
  /// with a different sender epoch are stale retransmits from a previous
  /// incarnation and are discarded.
  std::uint32_t remote_epoch_ = 0;
  sim::Trigger conn_done_;

  // descriptors and completions. The posted/consumed totals back the audit's
  // conservation check: posted == consumed + queued, always.
  std::deque<std::int64_t> recv_descs_;
  std::uint64_t descs_posted_total_ = 0;
  std::uint64_t descs_consumed_total_ = 0;
  sim::Queue<RecvCompletion> completions_;

  // transmit state (reliable delivery)
  std::uint32_t next_msg_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::deque<net::Frame> unacked_;
  sim::Time oldest_unacked_ = 0;
  int retries_ = 0;
  bool retx_running_ = false;
  bool failed_ = false;
  ViError error_ = ViError::kNone;
  std::function<void(Vi&, ViError)> on_error_;

  // receive state (reliable delivery)
  std::uint64_t expected_seq_ = 0;
  int frames_since_ack_ = 0;
  bool ack_timer_running_ = false;
  Reassembly rx_;

  // Serializes the per-VI send work queue: descriptors of one VI transmit in
  // post order even when several coroutines send on it concurrently.
  sim::Resource send_lock_;

  sim::Counters counters_;
  chk::Audit::Registration audit_reg_;
  obs::Registry::Registration metrics_reg_;
  obs::Histogram& msg_bytes_hist_;  ///< message sizes entering send()
  std::int32_t trk_ = -1;           ///< per-VI trace track ("vi<id>")
};

}  // namespace meshmp::via
