#include "via/vi.hpp"

#include <string>
#include <utility>

#include "via/agent.hpp"

namespace meshmp::via {

const char* to_string(ViError e) noexcept {
  switch (e) {
    case ViError::kNone:
      return "none";
    case ViError::kUnreachable:
      return "unreachable";
    case ViError::kMinorityPartition:
      return "minority-partition";
  }
  return "?";
}

Vi::Vi(KernelAgent& agent, std::uint32_t id)
    : agent_(agent),
      id_(id),
      conn_done_(agent.node().cpu().engine()),
      completions_(agent.node().cpu().engine()),
      send_lock_(agent.node().cpu().engine(), 1,
                 "vi" + std::to_string(id) + ".sendlock"),
      audit_reg_(chk::Audit::instance().watch("via.vi",
                                              [this] { audit_quiesce(); })),
      metrics_reg_(obs::Registry::instance().attach("via.vi", &counters_)),
      msg_bytes_hist_(obs::Registry::instance().histogram("via.msg_bytes")) {}

void Vi::post_recv(std::int64_t max_bytes) {
  ++descs_posted_total_;
  recv_descs_.push_back(max_bytes);
  MESHMP_TRACE_ASYNC_BEGIN(
      agent_.node().cpu().engine(), obs::Cat::kVia, agent_.node_id(),
      "vi.desc", desc_trace_id(agent_.node_id(), id_, descs_posted_total_));
}

void Vi::audit_quiesce() const {
  const std::string who = "node " + std::to_string(agent_.node_id()) + " vi " +
                          std::to_string(id_) + ": ";
  if (descs_posted_total_ != descs_consumed_total_ + recv_descs_.size()) {
    chk::Audit::instance().fail(
        "via.vi",
        who + "recv descriptors not conserved: posted " +
            std::to_string(descs_posted_total_) + " != consumed " +
            std::to_string(descs_consumed_total_) + " + queued " +
            std::to_string(recv_descs_.size()));
  }
  if (rx_.active &&
      agent_.params().reliability == Reliability::kReliableDelivery) {
    chk::Audit::instance().fail(
        "via.vi", who + "reassembly incomplete at quiesce: msg " +
                      std::to_string(rx_.msg_id) + " has " +
                      std::to_string(rx_.frags_seen) + "/" +
                      std::to_string(rx_.nfrags) + " fragments");
  }
  if (!failed_ && !unacked_.empty()) {
    chk::Audit::instance().fail(
        "via.vi", who + std::to_string(unacked_.size()) +
                      " frame(s) unacknowledged at quiesce on a live VI");
  }
}

sim::Task<> Vi::send(std::vector<std::byte> data, std::uint64_t immediate) {
  co_await send(buf::Pool::instance().adopt(std::move(data)), immediate);
}

sim::Task<> Vi::send(buf::Slice data, std::uint64_t immediate) {
  msg_bytes_hist_.add(static_cast<std::int64_t>(data.size()));
  MESHMP_TRACE_TRACK(trk_, agent_.node_id(), "vi" + std::to_string(id_));
  MESHMP_TRACE_SCOPE_ARG(agent_.node().cpu().engine(), obs::Cat::kVia,
                         agent_.node_id(), trk_, "vi.send", "bytes",
                         data.size());
  auto& cpu = agent_.node().cpu();
  co_await cpu.busy(cpu.host().via_post, hw::Cpu::kUser);
  co_await agent_.transmit_message(*this, MsgKind::kData, std::move(data),
                                   immediate, nullptr, 0);
}

sim::Task<> Vi::rma_write(std::vector<std::byte> data, const MemToken& token,
                          std::uint64_t offset) {
  co_await rma_write(buf::Pool::instance().adopt(std::move(data)), token,
                     offset);
}

sim::Task<> Vi::rma_write(buf::Slice data, const MemToken& token,
                          std::uint64_t offset) {
  msg_bytes_hist_.add(static_cast<std::int64_t>(data.size()));
  MESHMP_TRACE_TRACK(trk_, agent_.node_id(), "vi" + std::to_string(id_));
  MESHMP_TRACE_SCOPE_ARG(agent_.node().cpu().engine(), obs::Cat::kVia,
                         agent_.node_id(), trk_, "vi.rma_write", "bytes",
                         data.size());
  auto& cpu = agent_.node().cpu();
  co_await cpu.busy(cpu.host().via_post, hw::Cpu::kUser);
  co_await agent_.transmit_message(*this, MsgKind::kRmaWrite, std::move(data),
                                   0, &token, offset);
}

sim::Task<RecvCompletion> Vi::recv_completion() {
  // The recv-wait span is the big one for trace coverage: it shows the
  // simulated time this endpoint spent *blocked*, which on a ping-pong node
  // is most of the run.
  MESHMP_TRACE_TRACK(trk_, agent_.node_id(), "vi" + std::to_string(id_));
  MESHMP_TRACE_SCOPE(agent_.node().cpu().engine(), obs::Cat::kVia,
                     agent_.node_id(), trk_, "vi.recv_wait");
  RecvCompletion c = co_await completions_.pop();
  auto& cpu = agent_.node().cpu();
  co_await cpu.busy(cpu.host().via_completion, hw::Cpu::kUser);
  co_return c;
}

std::optional<RecvCompletion> Vi::poll_completion() {
  return completions_.try_pop();
}

}  // namespace meshmp::via
