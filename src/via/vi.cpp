#include "via/vi.hpp"

#include <utility>

#include "via/agent.hpp"

namespace meshmp::via {

Vi::Vi(KernelAgent& agent, std::uint32_t id)
    : agent_(agent),
      id_(id),
      conn_done_(agent.node().cpu().engine()),
      completions_(agent.node().cpu().engine()),
      send_lock_(agent.node().cpu().engine(), 1) {}

void Vi::post_recv(std::int64_t max_bytes) {
  recv_descs_.push_back(max_bytes);
}

sim::Task<> Vi::send(std::vector<std::byte> data, std::uint64_t immediate) {
  auto& cpu = agent_.node().cpu();
  co_await cpu.busy(cpu.host().via_post, hw::Cpu::kUser);
  co_await agent_.transmit_message(*this, MsgKind::kData, std::move(data),
                                   immediate, nullptr, 0);
}

sim::Task<> Vi::rma_write(std::vector<std::byte> data, const MemToken& token,
                          std::uint64_t offset) {
  auto& cpu = agent_.node().cpu();
  co_await cpu.busy(cpu.host().via_post, hw::Cpu::kUser);
  co_await agent_.transmit_message(*this, MsgKind::kRmaWrite, std::move(data),
                                   0, &token, offset);
}

sim::Task<RecvCompletion> Vi::recv_completion() {
  RecvCompletion c = co_await completions_.pop();
  auto& cpu = agent_.node().cpu();
  co_await cpu.busy(cpu.host().via_completion, hw::Cpu::kUser);
  co_return c;
}

std::optional<RecvCompletion> Vi::poll_completion() {
  return completions_.try_pop();
}

}  // namespace meshmp::via
