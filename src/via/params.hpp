#pragma once

// Tunables of the modified M-VIA model.

#include <cstdint>

#include "sim/time.hpp"

namespace meshmp::via {

using namespace sim::literals;

/// NIC-level reliability classes from the VIA specification (paper sec. 2).
/// Reliable Reception is not modelled separately: on a point-to-point
/// Ethernet it behaves like Reliable Delivery.
enum class Reliability {
  kUnreliable,        ///< lost/corrupt frames simply vanish
  kReliableDelivery,  ///< go-back-N with cumulative acks and retransmit
};

struct ViaParams {
  /// Usable payload per Ethernet frame after the M-VIA header.
  std::int64_t mtu_payload = 1472;
  /// Modelled M-VIA header size (added to every frame's wire size).
  std::int64_t header_bytes = 28;

  Reliability reliability = Reliability::kReliableDelivery;

  /// Cumulative ack after this many in-order data frames...
  int ack_every = 8;
  /// ...or this long after the first unacknowledged frame.
  sim::Duration ack_delay = 100_us;
  /// Go-back-N retransmission timeout and retry budget. The default sits
  /// above the worst-case drain time of a full 2048-descriptor ring (~25 ms
  /// at GigE line rate) so deep pipelines never trigger spurious go-back-N.
  sim::Duration retx_timeout = 50_ms;
  int max_retries = 10;
  /// Exponential backoff on consecutive retransmissions of the same window:
  /// the n-th retry waits min(retx_timeout * backoff^n, retx_timeout_max),
  /// plus up to retx_jitter of that as deterministic (seeded) jitter so
  /// parallel senders behind one failed link do not retransmit in lockstep.
  double retx_backoff = 2.0;
  sim::Duration retx_timeout_max = 800_ms;
  double retx_jitter = 0.25;

  /// Connection dialogue timeout/retry budget: kConnReq is not covered by
  /// reliable delivery, so the dialer re-sends it with the same backoff and
  /// gives up (VI enters the error state) once the budget is exhausted.
  sim::Duration connect_timeout = 10_ms;
  int connect_retries = 4;

  /// Largest message a single descriptor may describe (sanity bound).
  std::int64_t max_message_bytes = std::int64_t{1} << 30;
};

}  // namespace meshmp::via
