#pragma once

// The M-VIA frame header carried (as Frame::meta) by every frame the VIA
// stack emits. Its modelled on-wire size is ViaParams::header_bytes.

#include <cstdint>

#include "net/frame.hpp"

namespace meshmp::via {

enum class MsgKind : std::uint8_t {
  kData,      ///< fragment of a send/receive message
  kRmaWrite,  ///< fragment of a remote-memory write
  kAck,       ///< cumulative acknowledgement (reliable delivery)
  kConnReq,   ///< connection request (kernel agent dialogue)
  kConnAck,   ///< connection accept
  // Interrupt-level collective prototype (paper sec. 7 future work):
  kKernelReduce,  ///< partial sum travelling up the spanning tree
  kKernelBcast,   ///< combined result travelling back down
  // Node-failure lifecycle (cluster::ClusterLifecycle control plane):
  kHeartbeat,   ///< neighbour liveness probe (unreliable, fire-and-forget)
  kMembership,  ///< membership-delta flood record batch
  kReconcile,   ///< post-heal reconciliation wave (generation in immediate)
  // Gray-failure control plane (phi detector + link-quality flood):
  kHeartbeatAck,  ///< echo of a heartbeat probe: msg_id = probe seq,
                  ///< immediate = probe send time (for RTT measurement)
  kLinkState,     ///< link-quality record flood (degraded/black masks)
};

struct ViaHeader {
  MsgKind kind = MsgKind::kData;
  std::uint32_t src_vi = 0;  ///< sender's VI number on its node
  std::uint32_t dst_vi = 0;  ///< receiver's VI number on its node

  /// Per-connection frame sequence number (reliable delivery).
  std::uint64_t seq = 0;
  /// Cumulative ack: all frames with seq < ack_seq are acknowledged.
  std::uint64_t ack_seq = 0;

  // -- incarnation fencing --
  /// Sender's node incarnation. A restarted node bumps its epoch, so frames
  /// (including retransmits) from the previous incarnation are identifiable.
  std::uint32_t epoch = 0;
  /// Receiver incarnation the sender believes it is talking to (0 = any,
  /// used by connection dialogue and epoch-less control traffic). A receiver
  /// whose epoch moved past this drops the frame as stale.
  std::uint32_t dst_epoch = 0;

  // -- message framing (kData) --
  std::uint32_t msg_id = 0;
  std::uint32_t frag = 0;
  std::uint32_t nfrags = 1;
  std::uint64_t msg_bytes = 0;
  std::uint64_t immediate = 0;  ///< 64-bit immediate delivered on completion

  // -- RMA (kRmaWrite) --
  std::uint32_t rma_handle = 0;
  std::uint32_t rma_key = 0;
  std::uint64_t rma_offset = 0;  ///< destination offset of this fragment

  // -- connection dialogue --
  std::uint32_t service = 0;  ///< listen/accept rendezvous tag

  // Every frame carries one of these inside Frame::meta, so std::any's
  // internal `new ViaHeader` is a per-frame (and per-frame-copy) heap
  // allocation — route it through the pooled meta freelist.
  MESHMP_POOLED_META()
};

static_assert(sizeof(ViaHeader) <= net::kMetaBlockBytes);

}  // namespace meshmp::via
