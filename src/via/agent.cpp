#include "via/agent.hpp"

#include <algorithm>
#include <any>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace meshmp::via {

using hw::Cpu;
using sim::Task;

namespace {

std::uint32_t ceil_frags(std::int64_t bytes, std::int64_t mtu) {
  if (bytes <= 0) return 1;  // zero-byte messages still take one frame
  return static_cast<std::uint32_t>((bytes + mtu - 1) / mtu);
}

std::uint64_t kcoll_key(topo::Rank root, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(root))
          << 32) |
         seq;
}

std::vector<std::byte> pack_double(double v) {
  std::vector<std::byte> out(sizeof(double));
  std::memcpy(out.data(), &v, sizeof(double));
  return out;
}

double unpack_double(const std::vector<std::byte>& bytes) {
  assert(bytes.size() == sizeof(double));
  double v;
  std::memcpy(&v, bytes.data(), sizeof(double));
  return v;
}

}  // namespace

KernelAgent::KernelAgent(hw::NodeHw& node, const topo::Torus& torus,
                         topo::Rank mesh_rank, ViaParams params, sim::Rng rng)
    : node_(node),
      torus_(torus),
      me_(mesh_rank),
      my_coord_(torus.coord(mesh_rank)),
      params_(params),
      memory_(mesh_rank, rng.fork()),
      rng_(rng),
      audit_reg_(chk::Audit::instance().watch("via.agent", [this] {
        if (!kcolls_.empty()) {
          chk::Audit::instance().fail(
              "via.agent", "node " + std::to_string(me_) + ": " +
                               std::to_string(kcolls_.size()) +
                               " kernel collective(s) unreaped at quiesce");
        }
      })) {}

KernelAgent::~KernelAgent() = default;

void KernelAgent::attach_nic(topo::Dir dir, hw::Nic& nic) {
  nic_by_dir_[dir.index()] = &nic;
  nic.set_driver(this);
}

Vi& KernelAgent::create_vi() {
  vis_.push_back(
      std::make_unique<Vi>(*this, static_cast<std::uint32_t>(vis_.size())));
  return *vis_.back();
}

void KernelAgent::listen(std::uint32_t service) {
  if (!accept_queues_.contains(service)) {
    accept_queues_.emplace(service, std::make_unique<sim::Queue<Vi*>>(
                                        node_.cpu().engine()));
  }
}

Task<Vi*> KernelAgent::connect(net::NodeId remote, std::uint32_t service) {
  Vi& vi = create_vi();
  vi.remote_node_ = remote;
  ViaHeader h;
  h.kind = MsgKind::kConnReq;
  h.src_vi = vi.id();
  h.service = service;
  kernel_post(make_frame(remote, h, {}));
  co_await vi.conn_done_.wait();
  co_return &vi;
}

Task<Vi*> KernelAgent::accept(std::uint32_t service) {
  listen(service);
  Vi* vi = co_await accept_queues_.at(service)->pop();
  co_return vi;
}

net::Frame KernelAgent::make_frame(net::NodeId dst, ViaHeader h,
                                   std::vector<std::byte> payload) const {
  net::Frame f;
  f.src = me_;
  f.dst = dst;
  f.proto = 0;
  f.wire_bytes =
      static_cast<std::int64_t>(payload.size()) + params_.header_bytes;
  f.payload = std::move(payload);
  f.meta = h;
  return f;
}

hw::Nic& KernelAgent::egress_for(net::NodeId dst) {
  assert(dst != me_ && "egress_for: frame addressed to self");
  const auto dir = torus_.sdf_next(my_coord_, torus_.coord(dst));
  assert(dir && "egress_for: no route");
  auto it = nic_by_dir_.find(dir->index());
  if (it == nic_by_dir_.end()) {
    throw std::logic_error("KernelAgent: no adapter on direction " +
                           dir->str());
  }
  return *it->second;
}

void KernelAgent::kernel_post(net::Frame f) {
  egress_for(f.dst).kernel_enqueue(std::move(f));
}

Task<> KernelAgent::post_with_backpressure(hw::Nic& nic, net::Frame f) {
  while (nic.tx_free() == 0) co_await nic.tx_space().next();
  const bool ok = nic.post_tx(std::move(f));
  assert(ok);
  (void)ok;
}

Task<> KernelAgent::transmit_message(Vi& vi, MsgKind kind,
                                     std::vector<std::byte> data,
                                     std::uint64_t immediate,
                                     const MemToken* token,
                                     std::uint64_t rma_offset) {
  if (!vi.connected()) throw std::logic_error("Vi::send on unconnected VI");
  if (vi.failed()) {
    // Reliable delivery already gave up on this connection; report instead of
    // queueing frames the retransmit machinery will never move.
    throw std::logic_error("Vi::send on failed VI");
  }
  if (static_cast<std::int64_t>(data.size()) > params_.max_message_bytes) {
    throw std::invalid_argument("message exceeds max_message_bytes");
  }
  const auto& hp = node_.cpu().host();
  const auto total = static_cast<std::int64_t>(data.size());
  const std::uint32_t nfrags = ceil_frags(total, params_.mtu_payload);

  co_await vi.send_lock_.acquire();
  const std::uint32_t msg_id = vi.next_msg_id_++;
  hw::Nic& nic = egress_for(vi.remote_node_);
  const bool reliable =
      params_.reliability == Reliability::kReliableDelivery;

  // One kernel trap segments the whole message: charge the per-fragment
  // driver work as a single CPU burst, then stream descriptors to the ring.
  co_await node_.cpu().busy(
      hp.via_tx_per_frame * static_cast<sim::Duration>(nfrags), Cpu::kUser);

  for (std::uint32_t i = 0; i < nfrags; ++i) {
    const std::int64_t off = static_cast<std::int64_t>(i) *
                             params_.mtu_payload;
    const std::int64_t len =
        std::min<std::int64_t>(params_.mtu_payload, total - off);
    std::vector<std::byte> chunk;
    if (len > 0) {
      chunk.assign(data.begin() + off, data.begin() + off + len);
    }

    ViaHeader h;
    h.kind = kind;
    h.src_vi = vi.id();
    h.dst_vi = vi.remote_vi();
    h.msg_id = msg_id;
    h.frag = i;
    h.nfrags = nfrags;
    h.msg_bytes = static_cast<std::uint64_t>(total);
    h.immediate = immediate;
    if (token != nullptr) {
      h.rma_handle = token->handle;
      h.rma_key = token->key;
      h.rma_offset = rma_offset + static_cast<std::uint64_t>(off);
    }
    if (reliable) h.seq = vi.next_seq_++;

    net::Frame f = make_frame(vi.remote_node_, h, std::move(chunk));

    if (reliable) {
      if (vi.unacked_.empty()) {
        vi.oldest_unacked_ = node_.cpu().engine().now();
      }
      vi.unacked_.push_back(f);  // keep a copy for go-back-N
      arm_retx_timer(vi);
    }
    co_await post_with_backpressure(nic, std::move(f));
  }
  vi.send_lock_.release();
  vi.counters_.inc(kind == MsgKind::kRmaWrite ? "tx_rma" : "tx_messages");
}

// --------------------------------------------------------------------------
// Receive path (ISR context: the caller holds the CPU at interrupt priority).
// --------------------------------------------------------------------------

Task<> KernelAgent::handle_rx(net::Frame frame, hw::IsrContext& ctx) {
  const auto& hp = node_.cpu().host();

  if (frame.dst != me_) {
    // Kernel-level packet switching: pick the SDF egress adapter and re-post
    // without any user-space copy (paper sec. 5.1: ~12.5 us/hop).
    counters_.inc("fwd_frames");
    co_await ctx.spend(hp.via_forward_per_frame);
    kernel_post(std::move(frame));
    co_return;
  }

  const ViaHeader* h = std::any_cast<ViaHeader>(&frame.meta);
  if (h == nullptr) {
    counters_.inc("rx_bad_frame");
    co_return;
  }

  switch (h->kind) {
    case MsgKind::kConnReq:
    case MsgKind::kConnAck:
      rx_connect(*h, frame);
      co_await ctx.spend(1_us);  // kernel agent work
      co_return;
    case MsgKind::kAck: {
      if (h->dst_vi >= vis_.size()) {
        counters_.inc("rx_bad_vi");
        co_return;
      }
      rx_ack(*vis_[h->dst_vi], *h);
      co_await ctx.spend(300);  // ack bookkeeping
      co_return;
    }
    case MsgKind::kKernelReduce: {
      // Combine in the ISR: no user copy, no process wakeup (paper sec. 7).
      co_await ctx.spend(hp.via_rx_per_frame + 200);
      const auto root = static_cast<topo::Rank>(h->immediate);
      KernelColl& st = kcoll(root, h->msg_id);
      st.acc += unpack_double(frame.payload);
      --st.waiting_children;
      counters_.inc("kcoll_up_rx");
      kcoll_advance(root, h->msg_id);
      co_return;
    }
    case MsgKind::kKernelBcast: {
      co_await ctx.spend(hp.via_rx_per_frame);
      const auto root = static_cast<topo::Rank>(h->immediate);
      // Waking the single local waiter is the only user-visible work.
      co_await ctx.spend(hp.wakeup);
      kcoll_finish(root, h->msg_id, unpack_double(frame.payload));
      co_return;
    }
    case MsgKind::kData:
    case MsgKind::kRmaWrite: {
      if (h->dst_vi >= vis_.size()) {
        counters_.inc("rx_bad_vi");
        co_return;
      }
      Vi& vi = *vis_[h->dst_vi];
      if (h->kind == MsgKind::kData) {
        co_await rx_data(vi, *h, frame, ctx);
      } else {
        co_await rx_rma(vi, *h, frame, ctx);
      }
      co_return;
    }
  }
}

bool KernelAgent::reliable_accept(Vi& vi, const ViaHeader& h) {
  if (params_.reliability != Reliability::kReliableDelivery) return true;
  if (h.seq != vi.expected_seq_) {
    vi.counters_.inc("rx_out_of_order");
    // Re-advertise the cumulative ack so the peer's go-back-N converges.
    send_ack(vi);
    return false;
  }
  ++vi.expected_seq_;
  ++vi.frames_since_ack_;
  if (vi.frames_since_ack_ >= params_.ack_every) {
    send_ack(vi);
  } else {
    arm_ack_timer(vi);
  }
  return true;
}

Task<> KernelAgent::rx_data(Vi& vi, const ViaHeader& h, net::Frame& f,
                            hw::IsrContext& ctx) {
  const auto& hp = node_.cpu().host();
  co_await ctx.spend(hp.via_rx_per_frame);
  if (!reliable_accept(vi, h)) co_return;

  Vi::Reassembly& r = vi.rx_;
  if (!r.active || r.msg_id != h.msg_id) {
    if (r.active) {
      vi.counters_.inc("rx_incomplete_message");
    }
    r = Vi::Reassembly{};
    r.active = true;
    r.msg_id = h.msg_id;
    r.nfrags = h.nfrags;
    r.immediate = h.immediate;
    if (vi.recv_descs_.empty()) {
      r.dropping = true;
      vi.counters_.inc("rx_no_descriptor");
    } else if (static_cast<std::int64_t>(h.msg_bytes) >
               vi.recv_descs_.front()) {
      vi.recv_descs_.pop_front();
      ++vi.descs_consumed_total_;
      r.dropping = true;
      vi.counters_.inc("rx_descriptor_too_small");
    } else {
      vi.recv_descs_.pop_front();
      ++vi.descs_consumed_total_;
      r.buf.assign(h.msg_bytes, std::byte{0});
    }
  }

  if (!r.dropping && !f.payload.empty()) {
    // The single receive-side memory copy of the modified M-VIA: kernel ring
    // buffer -> (registered) user buffer.
    const bool hot =
        static_cast<std::int64_t>(h.msg_bytes) <= hp.cache_bytes;
    co_await ctx.spend_copy(static_cast<std::int64_t>(f.payload.size()), hot);
    const auto off = static_cast<std::ptrdiff_t>(h.frag) *
                     static_cast<std::ptrdiff_t>(params_.mtu_payload);
    std::copy(f.payload.begin(), f.payload.end(), r.buf.begin() + off);
  }
  ++r.frags_seen;

  if (r.frags_seen == r.nfrags) {
    if (!r.dropping) {
      co_await ctx.spend(hp.wakeup);
      vi.completions_.push(RecvCompletion{std::move(r.buf), r.immediate});
      vi.counters_.inc("rx_messages");
    }
    r = Vi::Reassembly{};
  }
}

Task<> KernelAgent::rx_rma(Vi& vi, const ViaHeader& h, net::Frame& f,
                           hw::IsrContext& ctx) {
  const auto& hp = node_.cpu().host();
  co_await ctx.spend(hp.via_rx_per_frame);
  if (!reliable_accept(vi, h)) co_return;
  const bool hot = static_cast<std::int64_t>(h.msg_bytes) <= hp.cache_bytes;
  co_await ctx.spend_copy(static_cast<std::int64_t>(f.payload.size()), hot);
  if (!memory_.write(h.rma_handle, h.rma_key, h.rma_offset, f.payload)) {
    vi.counters_.inc("rma_rejected");
  } else {
    vi.counters_.inc("rx_rma_frames");
  }
}

void KernelAgent::rx_ack(Vi& vi, const ViaHeader& h) {
  if (chk::Audit::enabled() && h.ack_seq > vi.next_seq_) {
    chk::Audit::instance().fail(
        "via.vi", "node " + std::to_string(me_) + " vi " +
                      std::to_string(vi.id()) + ": cumulative ack " +
                      std::to_string(h.ack_seq) + " beyond send seq " +
                      std::to_string(vi.next_seq_));
  }
  bool progress = false;
  while (!vi.unacked_.empty()) {
    const auto* fh = std::any_cast<ViaHeader>(&vi.unacked_.front().meta);
    assert(fh != nullptr);
    if (fh->seq < h.ack_seq) {
      vi.unacked_.pop_front();
      progress = true;
    } else {
      break;
    }
  }
  if (progress) {
    vi.retries_ = 0;
    vi.oldest_unacked_ = node_.cpu().engine().now();
  }
}

void KernelAgent::rx_connect(const ViaHeader& h, const net::Frame& f) {
  if (h.kind == MsgKind::kConnReq) {
    auto it = accept_queues_.find(h.service);
    if (it == accept_queues_.end()) {
      counters_.inc("conn_refused");
      return;
    }
    Vi& vi = create_vi();
    vi.remote_node_ = f.src;
    vi.remote_vi_ = h.src_vi;
    vi.connected_ = true;
    it->second->push(&vi);
    ViaHeader ack;
    ack.kind = MsgKind::kConnAck;
    ack.src_vi = vi.id();
    ack.dst_vi = h.src_vi;
    kernel_post(make_frame(f.src, ack, {}));
    return;
  }
  // kConnAck at the initiator.
  if (h.dst_vi >= vis_.size()) {
    counters_.inc("rx_bad_vi");
    return;
  }
  Vi& vi = *vis_[h.dst_vi];
  vi.remote_vi_ = h.src_vi;
  vi.connected_ = true;
  vi.conn_done_.fire();
}

void KernelAgent::send_ack(Vi& vi) {
  vi.frames_since_ack_ = 0;
  ViaHeader h;
  h.kind = MsgKind::kAck;
  h.src_vi = vi.id();
  h.dst_vi = vi.remote_vi();
  h.ack_seq = vi.expected_seq_;
  kernel_post(make_frame(vi.remote_node_, h, {}));
}

void KernelAgent::arm_ack_timer(Vi& vi) {
  if (vi.ack_timer_running_) return;
  vi.ack_timer_running_ = true;
  ack_timer_loop(vi.id()).detach();
}

void KernelAgent::arm_retx_timer(Vi& vi) {
  if (vi.retx_running_) return;
  vi.retx_running_ = true;
  retx_timer_loop(vi.id()).detach();
}

// --------------------------------------------------------------------------
// Interrupt-level global reduction (paper sec. 7 future work)
// --------------------------------------------------------------------------

KernelAgent::KernelColl& KernelAgent::kcoll(topo::Rank root,
                                            std::uint32_t seq) {
  auto [it, fresh] = kcolls_.try_emplace(kcoll_key(root, seq));
  if (fresh) {
    it->second.waiting_children = static_cast<int>(
        topo::bcast_children(torus_, root, me_).size());
    it->second.done =
        std::make_unique<sim::Trigger>(node_.cpu().engine());
  }
  return it->second;
}

void KernelAgent::kcoll_advance(topo::Rank root, std::uint32_t seq) {
  KernelColl& st = kcoll(root, seq);
  if (!st.user_in || st.waiting_children > 0 || st.up_sent) return;
  st.up_sent = true;
  if (me_ == root) {
    kcoll_finish(root, seq, st.acc);
    return;
  }
  const auto parent = topo::bcast_parent(torus_, root, me_);
  assert(parent);
  ViaHeader h;
  h.kind = MsgKind::kKernelReduce;
  h.msg_id = seq;
  h.immediate = static_cast<std::uint64_t>(root);
  kernel_post(make_frame(*parent, h, pack_double(st.acc)));
  counters_.inc("kcoll_up_tx");
}

void KernelAgent::kcoll_finish(topo::Rank root, std::uint32_t seq,
                               double result) {
  KernelColl& st = kcoll(root, seq);
  st.result = result;
  st.down = true;
  // Fan the result out to the children entirely at kernel level.
  ViaHeader h;
  h.kind = MsgKind::kKernelBcast;
  h.msg_id = seq;
  h.immediate = static_cast<std::uint64_t>(root);
  for (topo::Rank kid : topo::bcast_children(torus_, root, me_)) {
    kernel_post(make_frame(kid, h, pack_double(result)));
  }
  st.done->fire();
}

Task<double> KernelAgent::kernel_global_sum(double value, topo::Rank root,
                                            std::uint32_t sequence) {
  const auto& hp = node_.cpu().host();
  // One kernel trap to deposit the local contribution.
  co_await node_.cpu().busy(hp.via_post, Cpu::kUser);
  KernelColl& st = kcoll(root, sequence);
  st.acc += value;
  st.user_in = true;
  kcoll_advance(root, sequence);
  co_await st.done->wait();
  // After completion the state still exists (st.done fired); reap it.
  const double result = kcoll(root, sequence).result;
  kcolls_.erase(kcoll_key(root, sequence));
  co_await node_.cpu().busy(hp.via_completion, Cpu::kUser);
  co_return result;
}

Task<> KernelAgent::ack_timer_loop(std::uint32_t vi_id) {
  Vi& vi = *vis_[vi_id];
  auto& eng = node_.cpu().engine();
  while (vi.frames_since_ack_ > 0) {
    co_await sim::delay(eng, params_.ack_delay);
    if (vi.frames_since_ack_ > 0) send_ack(vi);
  }
  vi.ack_timer_running_ = false;
}

Task<> KernelAgent::retx_timer_loop(std::uint32_t vi_id) {
  Vi& vi = *vis_[vi_id];
  auto& eng = node_.cpu().engine();
  const auto& hp = node_.cpu().host();
  while (!vi.unacked_.empty() && !vi.failed_) {
    co_await sim::delay(eng, params_.retx_timeout);
    if (vi.unacked_.empty()) break;
    if (eng.now() - vi.oldest_unacked_ < params_.retx_timeout) continue;
    if (++vi.retries_ > params_.max_retries) {
      vi.failed_ = true;
      vi.counters_.inc("failed");
      break;
    }
    // Go-back-N: retransmit the whole unacked window from kernel context.
    vi.counters_.inc("retransmits");
    co_await node_.cpu().busy(
        hp.via_tx_per_frame * static_cast<sim::Duration>(vi.unacked_.size()),
        Cpu::kKernel);
    for (const net::Frame& f : vi.unacked_) {
      kernel_post(f);  // copy
    }
    vi.oldest_unacked_ = eng.now();
  }
  vi.retx_running_ = false;
}

}  // namespace meshmp::via
