#include "via/agent.hpp"

#include <algorithm>
#include <any>
#include <array>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "buf/copy.hpp"

namespace meshmp::via {

using hw::Cpu;
using sim::Task;

namespace {

std::uint32_t ceil_frags(std::int64_t bytes, std::int64_t mtu) {
  if (bytes <= 0) return 1;  // zero-byte messages still take one frame
  return static_cast<std::uint32_t>((bytes + mtu - 1) / mtu);
}

std::uint64_t kcoll_key(topo::Rank root, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(root))
          << 32) |
         seq;
}

buf::Slice pack_double(double v) {
  std::array<std::byte, sizeof(double)> raw;
  // meshmp-lint: host-copy(8-byte scalar codec of the kernel collective)
  std::memcpy(raw.data(), &v, sizeof(double));
  return buf::Pool::instance().stage(raw);
}

double unpack_double(const buf::Slice& bytes) {
  assert(bytes.size() == sizeof(double));
  double v;
  // meshmp-lint: host-copy(8-byte scalar decode of the kernel collective)
  std::memcpy(&v, bytes.data(), sizeof(double));
  return v;
}

}  // namespace

KernelAgent::KernelAgent(hw::NodeHw& node, const topo::Torus& torus,
                         topo::Rank mesh_rank, ViaParams params, sim::Rng rng)
    : node_(node),
      torus_(torus),
      me_(mesh_rank),
      my_coord_(torus.coord(mesh_rank)),
      params_(params),
      memory_(mesh_rank, rng.fork()),
      rng_(rng),
      audit_reg_(chk::Audit::instance().watch("via.agent", [this] {
        if (!kcolls_.empty()) {
          chk::Audit::instance().fail(
              "via.agent", "node " + std::to_string(me_) + ": " +
                               std::to_string(kcolls_.size()) +
                               " kernel collective(s) unreaped at quiesce");
        }
      })),
      metrics_reg_(obs::Registry::instance().attach("via.agent", &counters_)),
      ack_rtt_hist_(obs::Registry::instance().histogram("via.ack_rtt_ns")) {}

KernelAgent::~KernelAgent() = default;

void KernelAgent::attach_nic(topo::Dir dir, hw::Nic& nic) {
  nic_by_dir_[dir.index()] = &nic;
  dir_of_nic_.emplace_back(&nic, dir.index());
  nic.set_driver(this);
}

void KernelAgent::link_change(hw::Nic& nic, bool up) {
  auto it = std::find_if(dir_of_nic_.begin(), dir_of_nic_.end(),
                         [&nic](const auto& e) { return e.first == &nic; });
  if (it == dir_of_nic_.end()) return;
  const topo::DirMask bit = topo::DirMask{1} << static_cast<unsigned>(
                                it->second);
  if (up) {
    failed_dirs_ &= ~bit;
    counters_.inc("link_up_events");
  } else {
    failed_dirs_ |= bit;
    counters_.inc("link_down_events");
  }
  if (link_observer_) {
    link_observer_(topo::Dir::from_index(it->second), up);
  }
}

void KernelAgent::set_quality_masks(topo::DirMask degraded,
                                    topo::DirMask black) {
  if (degraded_dirs_ == degraded && black_dirs_ == black) return;
  degraded_dirs_ = degraded;
  black_dirs_ = black;
  counters_.inc("quality_mask_updates");
}

Vi& KernelAgent::create_vi() {
  vis_.push_back(
      std::make_unique<Vi>(*this, static_cast<std::uint32_t>(vis_.size())));
  return *vis_.back();
}

void KernelAgent::listen(std::uint32_t service) {
  if (!accept_queues_.contains(service)) {
    accept_queues_.emplace(service, std::make_unique<sim::Queue<Vi*>>(
                                        node_.cpu().engine()));
  }
}

Task<Vi*> KernelAgent::connect(net::NodeId remote, std::uint32_t service) {
  Vi& vi = create_vi();
  vi.remote_node_ = remote;
  if (minority_) {
    // Quorum says this side must not open new channels: resolve the dial
    // immediately with a structured refusal instead of probing a cut that
    // will never answer.
    counters_.inc("conn_minority_refused");
    fail_vi(vi, ViError::kMinorityPartition);
    co_return &vi;
  }
  ViaHeader h;
  h.kind = MsgKind::kConnReq;
  h.src_vi = vi.id();
  h.service = service;
  kernel_post(make_frame(remote, h, {}));
  // The handshake is not covered by reliable delivery: a watchdog re-sends
  // the request with backoff and fails the VI once the budget runs out, so a
  // dial to an unreachable node resolves (with vi->failed()) instead of
  // hanging. Callers must check vi->failed() before use.
  connect_watchdog(vi.id(), remote, service).detach();
  co_await vi.conn_done_.wait();
  co_return &vi;
}

Task<> KernelAgent::connect_watchdog(std::uint32_t vi_id, net::NodeId remote,
                                     std::uint32_t service) {
  Vi& vi = *vis_[vi_id];
  auto& eng = node_.cpu().engine();
  double wait = static_cast<double>(params_.connect_timeout);
  for (int attempt = 0; attempt <= params_.connect_retries; ++attempt) {
    const double jitter = 1.0 + params_.retx_jitter * rng_.uniform01();
    co_await sim::delay(eng, static_cast<sim::Duration>(wait * jitter));
    if (vi.connected_ || vi.failed_) co_return;
    if (attempt == params_.connect_retries) break;
    vi.counters_.inc("conn_retries");
    ViaHeader h;
    h.kind = MsgKind::kConnReq;
    h.src_vi = vi.id();
    h.service = service;
    kernel_post(make_frame(remote, h, {}));
    wait = std::min(wait * params_.retx_backoff,
                    static_cast<double>(params_.retx_timeout_max));
  }
  fail_vi(vi, ViError::kUnreachable);
}

Task<Vi*> KernelAgent::accept(std::uint32_t service) {
  listen(service);
  Vi* vi = co_await accept_queues_.at(service)->pop();
  co_return vi;
}

net::Frame KernelAgent::make_frame(net::NodeId dst, const ViaHeader& h,
                                   buf::Slice payload) const {
  net::Frame f;
  f.src = me_;
  f.dst = dst;
  f.proto = 0;
  f.wire_bytes =
      static_cast<std::int64_t>(payload.size()) + params_.header_bytes;
  f.payload = std::move(payload);
  // Every frame carries the sender's incarnation; a frame created before a
  // crash and retransmitted after is identifiable by its stale epoch.
  ViaHeader stamped = h;
  stamped.epoch = epoch_;
  f.meta = stamped;
  return f;
}

hw::Nic* KernelAgent::egress_for(net::NodeId dst) {
  assert(dst != me_ && "egress_for: frame addressed to self");
  // Black links (carrier up, dropping everything — a gray failure) are as
  // unusable as failed ones for egress, but they never touched failed_dirs_
  // so no one mistakes them for a carrier loss.
  const topo::DirMask hard = failed_dirs_ | black_dirs_;
  if (!route_table_.empty()) {
    // Degraded mode: a BFS-recomputed table (routes around confirmed-dead
    // nodes) overrides per-frame SDF. A hop whose local link is itself down
    // falls through to the mask-aware SDF/detour path below.
    const std::int8_t d = route_table_[static_cast<std::size_t>(dst)];
    if (d < 0) {
      counters_.inc("unreachable_drops");
      return nullptr;
    }
    const topo::DirMask bit = topo::DirMask{1} << static_cast<unsigned>(d);
    if ((hard & bit) == 0) {
      counters_.inc("table_routed_frames");
      if (degraded_dirs_ != 0 && (degraded_dirs_ & bit) == 0) {
        // The quality-aware table steered this frame onto a healthy hop
        // where plain minimal SDF would have taken a degraded link.
        const auto direct =
            torus_.sdf_next_avoiding(my_coord_, torus_.coord(dst), hard);
        if (direct && (degraded_dirs_ & topo::dir_bit(*direct)) != 0) {
          counters_.inc("degraded_avoided");
        }
      }
      return nic_by_dir_.at(d);
    }
  }
  const topo::Coord to = torus_.coord(dst);
  std::optional<topo::Dir> dir;
  if (degraded_dirs_ != 0) {
    // Prefer a minimal first hop that dodges sick links entirely; when the
    // only minimal hops are degraded ones, fall through and use them (a
    // degraded link still beats a +2-hop detour).
    dir = torus_.sdf_next_avoiding(my_coord_, to, hard | degraded_dirs_);
    if (dir) {
      const auto direct = torus_.sdf_next_avoiding(my_coord_, to, hard);
      if (direct && (degraded_dirs_ & topo::dir_bit(*direct)) != 0) {
        counters_.inc("degraded_avoided");
      }
    }
  }
  if (!dir) dir = torus_.sdf_next_avoiding(my_coord_, to, hard);
  if (!dir) {
    // No minimal direction survives the failures: take a +2-hop detour.
    dir = torus_.detour_next(my_coord_, to, hard);
    if (!dir) {
      counters_.inc("unreachable_drops");
      return nullptr;
    }
  }
  if (hard != 0) {
    const auto preferred = torus_.sdf_next(my_coord_, to);
    if (preferred && !(preferred->dim == dir->dim &&
                       preferred->sign == dir->sign)) {
      counters_.inc("rerouted_frames");
    }
  }
  auto it = nic_by_dir_.find(dir->index());
  if (it == nic_by_dir_.end()) {
    throw std::logic_error("KernelAgent: no adapter on direction " +
                           dir->str());
  }
  return it->second;
}

void KernelAgent::kernel_post(net::Frame f) {
  hw::Nic* nic = egress_for(f.dst);
  if (nic == nullptr) return;  // counted as unreachable_drops in egress_for
  nic->kernel_enqueue(std::move(f));
}

Task<> KernelAgent::post_with_backpressure(hw::Nic& nic, net::Frame f) {
  while (nic.tx_free() == 0) co_await nic.tx_space().next();
  const bool ok = nic.post_tx(std::move(f));
  assert(ok);
  (void)ok;
}

Task<> KernelAgent::transmit_message(Vi& vi, MsgKind kind, buf::Slice data,
                                     std::uint64_t immediate,
                                     const MemToken* token,
                                     std::uint64_t rma_offset) {
  if (!vi.connected()) throw std::logic_error("Vi::send on unconnected VI");
  if (vi.failed()) {
    // Reliable delivery already gave up on this connection; report instead of
    // queueing frames the retransmit machinery will never move.
    throw std::logic_error("Vi::send on failed VI");
  }
  if (static_cast<std::int64_t>(data.size()) > params_.max_message_bytes) {
    throw std::invalid_argument("message exceeds max_message_bytes");
  }
  const auto& hp = node_.cpu().host();
  const auto total = static_cast<std::int64_t>(data.size());
  const std::uint32_t nfrags = ceil_frags(total, params_.mtu_payload);

  co_await vi.send_lock_.acquire();
  const std::uint32_t msg_id = vi.next_msg_id_++;
  // A null egress (all usable ports down) is not an immediate error: reliable
  // frames still enter the unacked window so the ordinary retransmit/backoff
  // machinery either recovers (link came back, detour appeared) or fails the
  // VI after the retry budget — one failure path for every cause.
  hw::Nic* nic = egress_for(vi.remote_node_);
  const bool reliable =
      params_.reliability == Reliability::kReliableDelivery;

  // One kernel trap segments the whole message: charge the per-fragment
  // driver work as a single CPU burst, then stream descriptors to the ring.
  co_await node_.cpu().busy(
      hp.via_tx_per_frame * static_cast<sim::Duration>(nfrags), Cpu::kUser);

  for (std::uint32_t i = 0; i < nfrags; ++i) {
    const std::int64_t off = static_cast<std::int64_t>(i) *
                             params_.mtu_payload;
    const std::int64_t len =
        std::min<std::int64_t>(params_.mtu_payload, total - off);
    // Fragments alias the message slice: no host copy per fragment, and the
    // retransmit window below shares the same storage by refcount.
    buf::Slice chunk;
    if (len > 0) {
      chunk = data.subslice(static_cast<std::size_t>(off),
                            static_cast<std::size_t>(len));
    }

    ViaHeader h;
    h.kind = kind;
    h.src_vi = vi.id();
    h.dst_vi = vi.remote_vi();
    h.msg_id = msg_id;
    h.frag = i;
    h.nfrags = nfrags;
    h.msg_bytes = static_cast<std::uint64_t>(total);
    h.immediate = immediate;
    h.dst_epoch = vi.remote_epoch_;
    if (token != nullptr) {
      h.rma_handle = token->handle;
      h.rma_key = token->key;
      h.rma_offset = rma_offset + static_cast<std::uint64_t>(off);
    }
    if (reliable) h.seq = vi.next_seq_++;

    net::Frame f = make_frame(vi.remote_node_, h, std::move(chunk));

    if (reliable) {
      if (vi.unacked_.empty()) {
        vi.oldest_unacked_ = node_.cpu().engine().now();
      }
      vi.unacked_.push_back(f);  // go-back-N window entry (aliases payload)
      arm_retx_timer(vi);
    }
    if (nic != nullptr) {
      co_await post_with_backpressure(*nic, std::move(f));
    } else {
      vi.counters_.inc("tx_no_route");
    }
  }
  vi.send_lock_.release();
  vi.counters_.inc(kind == MsgKind::kRmaWrite ? "tx_rma" : "tx_messages");
}

// --------------------------------------------------------------------------
// Receive path (ISR context: the caller holds the CPU at interrupt priority).
// --------------------------------------------------------------------------

Task<> KernelAgent::handle_rx(net::Frame frame, hw::IsrContext& ctx) {
  const auto& hp = node_.cpu().host();
  MESHMP_TRACE_TRACK(trk_rx_, me_, "agent.rx");

  if (!powered_) co_return;  // dead host: late-delivered frames vanish

  if (frame.dst != me_) {
    // Kernel-level packet switching: pick the SDF egress adapter and re-post
    // without any user-space copy (paper sec. 5.1: ~12.5 us/hop). The TTL
    // bounds the extra hops rerouting can add, so frames cannot orbit a
    // heavily failed mesh forever.
    if (frame.ttl == 0) {
      counters_.inc("ttl_expired");
      co_return;
    }
    --frame.ttl;
    counters_.inc("fwd_frames");
    MESHMP_TRACE_SCOPE_ARG(ctx.engine(), obs::Cat::kVia, me_, trk_rx_, "fwd",
                           "dst", frame.dst);
    co_await ctx.spend(hp.via_forward_per_frame);
    kernel_post(std::move(frame));
    co_return;
  }

  const ViaHeader* h = std::any_cast<ViaHeader>(&frame.meta);
  if (h == nullptr) {
    counters_.inc("rx_bad_frame");
    co_return;
  }
  if (h->dst_epoch != 0 && h->dst_epoch != epoch_) {
    // Addressed to a previous incarnation of this node (sender has not yet
    // learned about the restart): never deliver across the reboot.
    counters_.inc("rx_stale_epoch");
    co_return;
  }

  switch (h->kind) {
    case MsgKind::kConnReq:
    case MsgKind::kConnAck:
      rx_connect(*h, frame);
      co_await ctx.spend(1_us);  // kernel agent work
      co_return;
    case MsgKind::kAck: {
      if (h->dst_vi >= vis_.size()) {
        counters_.inc("rx_bad_vi");
        co_return;
      }
      Vi& vi = *vis_[h->dst_vi];
      if (vi.failed_ || h->epoch != vi.remote_epoch_) {
        counters_.inc(vi.failed_ ? "rx_failed_vi" : "rx_stale_epoch");
        co_return;
      }
      MESHMP_TRACE_SCOPE(ctx.engine(), obs::Cat::kVia, me_, trk_rx_,
                         "rx_ack");
      rx_ack(vi, *h);
      co_await ctx.spend(300);  // ack bookkeeping
      co_return;
    }
    case MsgKind::kHeartbeat:
    case MsgKind::kMembership:
    case MsgKind::kReconcile:
    case MsgKind::kHeartbeatAck:
    case MsgKind::kLinkState: {
      co_await ctx.spend(hp.via_rx_per_frame);
      counters_.inc(h->kind == MsgKind::kHeartbeat      ? "rx_heartbeats"
                    : h->kind == MsgKind::kReconcile    ? "rx_reconcile"
                    : h->kind == MsgKind::kHeartbeatAck ? "rx_heartbeat_acks"
                    : h->kind == MsgKind::kLinkState    ? "rx_linkstate"
                                                        : "rx_membership");
      if (control_handler_) control_handler_(*h, frame.src, frame.payload);
      co_return;
    }
    case MsgKind::kKernelReduce: {
      // Combine in the ISR: no user copy, no process wakeup (paper sec. 7).
      co_await ctx.spend(hp.via_rx_per_frame + 200);
      const auto root = static_cast<topo::Rank>(h->immediate);
      KernelColl& st = kcoll(root, h->msg_id);
      st.acc += unpack_double(frame.payload);
      --st.waiting_children;
      counters_.inc("kcoll_up_rx");
      kcoll_advance(root, h->msg_id);
      co_return;
    }
    case MsgKind::kKernelBcast: {
      co_await ctx.spend(hp.via_rx_per_frame);
      const auto root = static_cast<topo::Rank>(h->immediate);
      // Waking the single local waiter is the only user-visible work.
      co_await ctx.spend(hp.wakeup);
      kcoll_finish(root, h->msg_id, unpack_double(frame.payload));
      co_return;
    }
    case MsgKind::kData:
    case MsgKind::kRmaWrite: {
      if (h->dst_vi >= vis_.size()) {
        counters_.inc("rx_bad_vi");
        co_return;
      }
      Vi& vi = *vis_[h->dst_vi];
      if (vi.failed_ || (vi.connected_ && h->epoch != vi.remote_epoch_)) {
        // Either this VI already gave up (crash path marked it) or the frame
        // is a leftover from a previous incarnation of the peer.
        counters_.inc(vi.failed_ ? "rx_failed_vi" : "rx_stale_epoch");
        co_return;
      }
      if (h->kind == MsgKind::kData) {
        co_await rx_data(vi, *h, frame, ctx);
      } else {
        co_await rx_rma(vi, *h, frame, ctx);
      }
      co_return;
    }
  }
}

bool KernelAgent::reliable_accept(Vi& vi, const ViaHeader& h) {
  if (params_.reliability != Reliability::kReliableDelivery) return true;
  if (h.seq != vi.expected_seq_) {
    vi.counters_.inc("rx_out_of_order");
    // Dedup audit: a sequence below the cumulative high-water is a frame we
    // already delivered (go-back-N retransmit overlap or a duplicating PHY);
    // above it is a gap the sender must go back over. Either way the frame
    // is discarded, so a duplicate can never be delivered twice — the
    // counters let tests pin that down per failure mode.
    vi.counters_.inc(h.seq < vi.expected_seq_ ? "rx_dup_frames"
                                              : "rx_future_frames");
    // Re-advertise the cumulative ack so the peer's go-back-N converges.
    send_ack(vi);
    return false;
  }
  ++vi.expected_seq_;
  ++vi.frames_since_ack_;
  if (vi.frames_since_ack_ >= params_.ack_every) {
    send_ack(vi);
  } else {
    arm_ack_timer(vi);
  }
  return true;
}

Task<> KernelAgent::rx_data(Vi& vi, const ViaHeader& h, net::Frame& f,
                            hw::IsrContext& ctx) {
  const auto& hp = node_.cpu().host();
  MESHMP_TRACE_SCOPE_ARG(ctx.engine(), obs::Cat::kVia, me_, trk_rx_,
                         "rx_data", "frag", h.frag);
  co_await ctx.spend(hp.via_rx_per_frame);
  if (!reliable_accept(vi, h)) co_return;

  Vi::Reassembly& r = vi.rx_;
  if (!r.active || r.msg_id != h.msg_id) {
    if (r.active) {
      vi.counters_.inc("rx_incomplete_message");
    }
    r = Vi::Reassembly{};
    r.active = true;
    r.msg_id = h.msg_id;
    r.nfrags = h.nfrags;
    r.immediate = h.immediate;
    if (vi.recv_descs_.empty()) {
      r.dropping = true;
      vi.counters_.inc("rx_no_descriptor");
    } else if (static_cast<std::int64_t>(h.msg_bytes) >
               vi.recv_descs_.front()) {
      vi.recv_descs_.pop_front();
      ++vi.descs_consumed_total_;
      MESHMP_TRACE_ASYNC_END(
          ctx.engine(), obs::Cat::kVia, me_, "vi.desc",
          desc_trace_id(me_, vi.id(), vi.descs_consumed_total_));
      r.dropping = true;
      vi.counters_.inc("rx_descriptor_too_small");
    } else {
      vi.recv_descs_.pop_front();
      ++vi.descs_consumed_total_;
      MESHMP_TRACE_ASYNC_END(
          ctx.engine(), obs::Cat::kVia, me_, "vi.desc",
          desc_trace_id(me_, vi.id(), vi.descs_consumed_total_));
      r.buf = buf::Pool::instance().get(h.msg_bytes);
    }
  }

  if (!r.dropping && !f.payload.empty()) {
    // The single receive-side memory copy of the modified M-VIA: kernel ring
    // buffer -> (registered) user buffer. The host memcpy below is the one
    // byte movement this charge models.
    const bool hot =
        static_cast<std::int64_t>(h.msg_bytes) <= hp.cache_bytes;
    co_await buf::charge_copy(ctx, static_cast<std::int64_t>(f.payload.size()),
                              hot);
    const auto off = static_cast<std::size_t>(h.frag) *
                     static_cast<std::size_t>(params_.mtu_payload);
    std::memcpy(r.buf.data() + off, f.payload.data(), f.payload.size());
  }
  ++r.frags_seen;

  if (r.frags_seen == r.nfrags) {
    if (!r.dropping) {
      co_await ctx.spend(hp.wakeup);
      // Completion steals the pooled storage: no copy at the user boundary.
      vi.completions_.push(
          RecvCompletion{std::move(r.buf).release(), r.immediate});
      vi.counters_.inc("rx_messages");
    }
    r = Vi::Reassembly{};
  }
}

Task<> KernelAgent::rx_rma(Vi& vi, const ViaHeader& h, net::Frame& f,
                           hw::IsrContext& ctx) {
  const auto& hp = node_.cpu().host();
  MESHMP_TRACE_SCOPE_ARG(ctx.engine(), obs::Cat::kVia, me_, trk_rx_, "rx_rma",
                         "frag", h.frag);
  co_await ctx.spend(hp.via_rx_per_frame);
  if (!reliable_accept(vi, h)) co_return;
  const bool hot = static_cast<std::int64_t>(h.msg_bytes) <= hp.cache_bytes;
  co_await buf::charge_copy(ctx, static_cast<std::int64_t>(f.payload.size()),
                            hot);
  if (!memory_.write(h.rma_handle, h.rma_key, h.rma_offset,
                     f.payload.span())) {
    vi.counters_.inc("rma_rejected");
  } else {
    vi.counters_.inc("rx_rma_frames");
  }
}

void KernelAgent::rx_ack(Vi& vi, const ViaHeader& h) {
  if (chk::Audit::enabled() && h.ack_seq > vi.next_seq_) {
    chk::Audit::instance().fail(
        "via.vi", "node " + std::to_string(me_) + " vi " +
                      std::to_string(vi.id()) + ": cumulative ack " +
                      std::to_string(h.ack_seq) + " beyond send seq " +
                      std::to_string(vi.next_seq_));
  }
  bool progress = false;
  while (!vi.unacked_.empty()) {
    const auto* fh = std::any_cast<ViaHeader>(&vi.unacked_.front().meta);
    assert(fh != nullptr);
    if (fh->seq < h.ack_seq) {
      vi.unacked_.pop_front();
      progress = true;
    } else {
      break;
    }
  }
  if (progress) {
    // Ack RTT as seen by go-back-N: oldest-unacked send (or last progress)
    // to the cumulative ack that moved the window.
    ack_rtt_hist_.add(node_.cpu().engine().now() - vi.oldest_unacked_);
    vi.retries_ = 0;
    vi.oldest_unacked_ = node_.cpu().engine().now();
  }
}

void KernelAgent::rx_connect(const ViaHeader& h, const net::Frame& f) {
  if (h.kind == MsgKind::kConnReq) {
    auto it = accept_queues_.find(h.service);
    if (it == accept_queues_.end()) {
      counters_.inc("conn_refused");
      return;
    }
    // The dialer re-sends kConnReq when the handshake times out; a duplicate
    // must re-ack the VI already accepted for it, not accept a second one.
    // A request from a *newer incarnation* of the dialer is not a duplicate:
    // the old mapping belongs to the dead incarnation and a fresh VI is
    // accepted in its place.
    const std::uint64_t dial_key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.src)) << 32) |
        h.src_vi;
    auto [acc, fresh] =
        accepted_vis_.try_emplace(dial_key, AcceptedDial{0, h.epoch});
    if (!fresh && acc->second.epoch != h.epoch) {
      acc->second = AcceptedDial{0, h.epoch};
      fresh = true;
      counters_.inc("conn_reincarnated");
    }
    if (fresh) {
      Vi& vi = create_vi();
      acc->second.vi = vi.id();
      vi.remote_node_ = f.src;
      vi.remote_vi_ = h.src_vi;
      vi.remote_epoch_ = h.epoch;
      vi.connected_ = true;
      it->second->push(&vi);
    } else {
      counters_.inc("conn_dup_req");
    }
    ViaHeader ack;
    ack.kind = MsgKind::kConnAck;
    ack.src_vi = acc->second.vi;
    ack.dst_vi = h.src_vi;
    // Pin the ack to the incarnation that dialed: if the dialer crashed and
    // rebooted meanwhile, this ack must not complete the new dial.
    ack.dst_epoch = h.epoch;
    kernel_post(make_frame(f.src, ack, {}));
    return;
  }
  // kConnAck at the initiator.
  if (h.dst_vi >= vis_.size()) {
    counters_.inc("rx_bad_vi");
    return;
  }
  Vi& vi = *vis_[h.dst_vi];
  if (vi.connected_ || vi.failed_) {
    // Duplicate ack from a re-sent request, or the dial already gave up.
    counters_.inc("conn_dup_ack");
    return;
  }
  vi.remote_vi_ = h.src_vi;
  vi.remote_epoch_ = h.epoch;
  vi.connected_ = true;
  vi.conn_done_.fire();
}

void KernelAgent::send_ack(Vi& vi) {
  vi.frames_since_ack_ = 0;
  ViaHeader h;
  h.kind = MsgKind::kAck;
  h.src_vi = vi.id();
  h.dst_vi = vi.remote_vi();
  h.ack_seq = vi.expected_seq_;
  h.dst_epoch = vi.remote_epoch_;
  kernel_post(make_frame(vi.remote_node_, h, {}));
}

void KernelAgent::arm_ack_timer(Vi& vi) {
  if (vi.ack_timer_running_) return;
  vi.ack_timer_running_ = true;
  ack_timer_loop(vi.id()).detach();
}

void KernelAgent::arm_retx_timer(Vi& vi) {
  if (vi.retx_running_) return;
  vi.retx_running_ = true;
  retx_timer_loop(vi.id()).detach();
}

void KernelAgent::fail_vi(Vi& vi, ViError err) {
  if (vi.failed_) return;
  vi.failed_ = true;
  vi.error_ = err;
  vi.counters_.inc("failed");
  counters_.inc("vi_failures");
  MESHMP_TRACE_INSTANT_ARG(node_.cpu().engine(), obs::Cat::kVia, me_,
                           "vi_failed", "vi", vi.id());
  // Structured error completion: a receiver blocked in recv_completion()
  // wakes with status != kNone instead of hanging forever.
  RecvCompletion c;
  c.status = err;
  vi.completions_.push(std::move(c));
  if (vi.on_error_) vi.on_error_(vi, err);
  // A dial still waiting on the handshake resolves now (with failed() set).
  vi.conn_done_.fire();
}

// --------------------------------------------------------------------------
// Node-failure lifecycle
// --------------------------------------------------------------------------

void KernelAgent::power_fail() {
  if (!powered_) return;
  powered_ = false;
  counters_.inc("node_crashes");
  MESHMP_TRACE_INSTANT(node_.cpu().engine(), obs::Cat::kVia, me_,
                       "node_crash");
  // Every connection dies with the host. fail_vi wakes local blockers with a
  // structured error completion so the node's own coroutines unwind instead
  // of hanging, and upper layers (mp::Endpoint) quiesce their channel state
  // through the error handler.
  for (auto& vi : vis_) {
    vi->unacked_.clear();  // retransmit window is gone with the host's RAM
    vi->frames_since_ack_ = 0;
    vi->rx_ = Vi::Reassembly{};  // half-reassembled messages die with RAM too
    fail_vi(*vi, ViError::kUnreachable);
  }
  // In-progress kernel collectives are lost; interior forwarding state has
  // no local waiter, so dropping it is safe.
  kcolls_.clear();
  // Accepted-but-unreaped connections must not be handed to the next
  // incarnation's accept() calls.
  for (auto& [service, q] : accept_queues_) {
    while (q->try_pop()) {
    }
  }
  clear_route_table();
  // Quality verdicts lived in the dead host's RAM; the next incarnation
  // re-learns them from fresh probes.
  degraded_dirs_ = 0;
  black_dirs_ = 0;
}

void KernelAgent::power_restore() {
  if (powered_) return;
  powered_ = true;
  ++epoch_;  // the new incarnation: stale frames no longer match
  // A fresh host has no connection memory; re-dials from peers (which also
  // carry their own epochs) get fresh accepts.
  accepted_vis_.clear();
  counters_.inc("node_restarts");
  MESHMP_TRACE_INSTANT(node_.cpu().engine(), obs::Cat::kVia, me_,
                       "node_restart");
}

void KernelAgent::peer_declared_dead(net::NodeId peer) {
  for (auto& vi : vis_) {
    if (vi->remote_node_ == peer && !vi->failed_) {
      // The failure detector confirmed the peer dead: error-complete now
      // rather than waiting out the full retransmit budget.
      vi->unacked_.clear();
      fail_vi(*vi, ViError::kUnreachable);
    }
  }
}

void KernelAgent::set_minority(bool m) {
  if (minority_ == m) return;
  minority_ = m;
  counters_.inc(m ? "minority_entered" : "minority_cleared");
  MESHMP_TRACE_INSTANT(node_.cpu().engine(), obs::Cat::kVia, me_,
                       m ? "minority_enter" : "minority_clear");
}

void KernelAgent::partition_flush() {
  ++epoch_;  // the post-heal incarnation: pre-heal frames no longer match
  counters_.inc("partition_flushes");
  MESHMP_TRACE_INSTANT(node_.cpu().engine(), obs::Cat::kVia, me_,
                       "partition_flush");
  // Every channel established on the partitioned view dies here — the same
  // teardown as power_fail(), minus the power cycle. Local blockers wake
  // with structured errors and re-establish against the merged view.
  for (auto& vi : vis_) {
    vi->unacked_.clear();
    vi->frames_since_ack_ = 0;
    vi->rx_ = Vi::Reassembly{};
    fail_vi(*vi, ViError::kUnreachable);
  }
  kcolls_.clear();
  for (auto& [service, q] : accept_queues_) {
    while (q->try_pop()) {
    }
  }
  // Peers re-dialing under their own bumped epochs must get fresh accepts.
  accepted_vis_.clear();
  clear_route_table();
}

void KernelAgent::peer_reincarnated(net::NodeId peer, std::uint32_t epoch) {
  for (auto& vi : vis_) {
    if (vi->remote_node_ == peer && vi->connected_ && !vi->failed_ &&
        vi->remote_epoch_ < epoch) {
      // The peer moved to a new incarnation: this VI's sequence space and
      // retransmit window mean nothing to it any more.
      vi->unacked_.clear();
      fail_vi(*vi, ViError::kUnreachable);
    }
  }
}

void KernelAgent::set_route_table(std::vector<std::int8_t> table) {
  assert(table.size() == static_cast<std::size_t>(torus_.size()));
  route_table_ = std::move(table);
  counters_.inc("route_table_installs");
}

void KernelAgent::clear_route_table() { route_table_.clear(); }

namespace {

const char* control_tx_counter(MsgKind kind) {
  switch (kind) {
    case MsgKind::kHeartbeat:
      return "tx_heartbeats";
    case MsgKind::kReconcile:
      return "tx_reconcile";
    case MsgKind::kHeartbeatAck:
      return "tx_heartbeat_acks";
    case MsgKind::kLinkState:
      return "tx_linkstate";
    default:
      return "tx_membership";
  }
}

}  // namespace

void KernelAgent::send_control(net::NodeId dst, MsgKind kind,
                               buf::Slice payload, std::uint64_t immediate,
                               std::uint32_t msg_id) {
  if (!powered_) return;
  ViaHeader h;
  h.kind = kind;
  h.immediate = immediate;
  h.msg_id = msg_id;
  counters_.inc(control_tx_counter(kind));
  kernel_post(make_frame(dst, h, std::move(payload)));
}

void KernelAgent::send_control_dir(topo::Dir dir, MsgKind kind,
                                   buf::Slice payload, std::uint64_t immediate,
                                   std::uint32_t msg_id) {
  if (!powered_) return;
  const auto n = torus_.neighbor(me_, dir);
  auto it = nic_by_dir_.find(dir.index());
  if (!n || it == nic_by_dir_.end()) return;
  ViaHeader h;
  h.kind = kind;
  h.immediate = immediate;
  h.msg_id = msg_id;
  counters_.inc(control_tx_counter(kind));
  // Pinned to the port serving `dir`: quality probes must keep exercising
  // the sick cable itself, not whatever healthy route egress_for would pick.
  it->second->kernel_enqueue(make_frame(*n, h, std::move(payload)));
}

sim::Duration KernelAgent::backoff_delay(const Vi& vi) {
  double t = static_cast<double>(params_.retx_timeout);
  for (int i = 0; i < vi.retries_; ++i) {
    t = std::min(t * params_.retx_backoff,
                 static_cast<double>(params_.retx_timeout_max));
  }
  // Deterministic (seeded) jitter de-synchronizes senders sharing a failed
  // link without breaking run-twice reproducibility.
  t *= 1.0 + params_.retx_jitter * rng_.uniform01();
  return static_cast<sim::Duration>(t);
}

// --------------------------------------------------------------------------
// Interrupt-level global reduction (paper sec. 7 future work)
// --------------------------------------------------------------------------

KernelAgent::KernelColl& KernelAgent::kcoll(topo::Rank root,
                                            std::uint32_t seq) {
  auto [it, fresh] = kcolls_.try_emplace(kcoll_key(root, seq));
  if (fresh) {
    it->second.waiting_children = static_cast<int>(
        topo::bcast_children(torus_, root, me_).size());
    it->second.done =
        std::make_unique<sim::Trigger>(node_.cpu().engine());
  }
  return it->second;
}

void KernelAgent::kcoll_advance(topo::Rank root, std::uint32_t seq) {
  KernelColl& st = kcoll(root, seq);
  if (!st.user_in || st.waiting_children > 0 || st.up_sent) return;
  st.up_sent = true;
  if (me_ == root) {
    kcoll_finish(root, seq, st.acc);
    return;
  }
  const auto parent = topo::bcast_parent(torus_, root, me_);
  assert(parent);
  ViaHeader h;
  h.kind = MsgKind::kKernelReduce;
  h.msg_id = seq;
  h.immediate = static_cast<std::uint64_t>(root);
  kernel_post(make_frame(*parent, h, pack_double(st.acc)));
  counters_.inc("kcoll_up_tx");
}

void KernelAgent::kcoll_finish(topo::Rank root, std::uint32_t seq,
                               double result) {
  KernelColl& st = kcoll(root, seq);
  st.result = result;
  st.down = true;
  // Fan the result out to the children entirely at kernel level.
  ViaHeader h;
  h.kind = MsgKind::kKernelBcast;
  h.msg_id = seq;
  h.immediate = static_cast<std::uint64_t>(root);
  for (topo::Rank kid : topo::bcast_children(torus_, root, me_)) {
    kernel_post(make_frame(kid, h, pack_double(result)));
  }
  st.done->fire();
}

Task<double> KernelAgent::kernel_global_sum(double value, topo::Rank root,
                                            std::uint32_t sequence) {
  const auto& hp = node_.cpu().host();
  // One kernel trap to deposit the local contribution.
  co_await node_.cpu().busy(hp.via_post, Cpu::kUser);
  KernelColl& st = kcoll(root, sequence);
  st.acc += value;
  st.user_in = true;
  kcoll_advance(root, sequence);
  co_await st.done->wait();
  // After completion the state still exists (st.done fired); reap it.
  const double result = kcoll(root, sequence).result;
  kcolls_.erase(kcoll_key(root, sequence));
  co_await node_.cpu().busy(hp.via_completion, Cpu::kUser);
  co_return result;
}

Task<> KernelAgent::ack_timer_loop(std::uint32_t vi_id) {
  Vi& vi = *vis_[vi_id];
  auto& eng = node_.cpu().engine();
  while (vi.frames_since_ack_ > 0) {
    co_await sim::delay(eng, params_.ack_delay);
    if (vi.frames_since_ack_ > 0) send_ack(vi);
  }
  vi.ack_timer_running_ = false;
}

Task<> KernelAgent::retx_timer_loop(std::uint32_t vi_id) {
  Vi& vi = *vis_[vi_id];
  auto& eng = node_.cpu().engine();
  const auto& hp = node_.cpu().host();
  while (!vi.unacked_.empty() && !vi.failed_) {
    // Exponential backoff: consecutive fruitless retransmissions wait longer
    // and longer, so a flapping link is probed cheaply while the retry budget
    // still bounds total time-to-error. Ack progress resets retries_ (and so
    // the backoff) in rx_ack.
    co_await sim::delay(eng, backoff_delay(vi));
    if (vi.unacked_.empty() || vi.failed_) break;
    if (eng.now() - vi.oldest_unacked_ < params_.retx_timeout) continue;
    if (++vi.retries_ > params_.max_retries) {
      fail_vi(vi, ViError::kUnreachable);
      break;
    }
    // Go-back-N: retransmit the whole unacked window from kernel context.
    vi.counters_.inc("retransmits");
    if (retransmit_observer_) retransmit_observer_(vi.remote_node_);
    MESHMP_TRACE_INSTANT_ARG(eng, obs::Cat::kVia, me_, "retransmit", "window",
                             vi.unacked_.size());
    co_await node_.cpu().busy(
        hp.via_tx_per_frame * static_cast<sim::Duration>(vi.unacked_.size()),
        Cpu::kKernel);
    for (const net::Frame& f : vi.unacked_) {
      kernel_post(f);  // frame copy; payload shared by refcount
    }
    vi.oldest_unacked_ = eng.now();
  }
  vi.retx_running_ = false;
}

}  // namespace meshmp::via
