#pragma once

// Registered memory regions.
//
// VIA requires data buffers to be registered (pinned) before the adapter may
// DMA into them. Regions carry a protection key: an RMA write must present
// the right (handle, key) pair and stay inside the region's bounds, otherwise
// it is discarded and counted — the simulated equivalent of the VIA
// protection model.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "chk/flat_map.hpp"
#include "net/frame.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace meshmp::via {

/// Remote-memory access token handed to a peer so it may RMA-write here.
struct MemToken {
  net::NodeId node = -1;
  std::uint32_t handle = 0;
  std::uint32_t key = 0;
  std::uint64_t bytes = 0;
};

class MemoryRegistry {
 public:
  explicit MemoryRegistry(net::NodeId node, sim::Rng rng)
      : node_(node), rng_(rng) {}

  /// Registers a zero-initialized region and returns its access token.
  MemToken register_region(std::uint64_t bytes) {
    const std::uint32_t handle = next_handle_++;
    Region r;
    r.key = static_cast<std::uint32_t>(rng_.next() | 1u);
    r.storage.assign(bytes, std::byte{0});
    regions_.emplace(handle, std::move(r));
    return MemToken{node_, handle, regions_.at(handle).key, bytes};
  }

  void deregister(std::uint32_t handle) { regions_.erase(handle); }

  /// Steals the region's storage and deregisters it in one step: the
  /// zero-copy handoff from a rendezvous landing zone to the user's message
  /// buffer (the RMA write into the region was the one modeled copy).
  [[nodiscard]] std::vector<std::byte> take_storage(std::uint32_t handle) {
    auto it = regions_.find(handle);
    if (it == regions_.end()) return {};
    std::vector<std::byte> out = std::move(it->second.storage);
    regions_.erase(it);
    return out;
  }

  /// Direct access for the owning process (e.g. to read a received message).
  [[nodiscard]] std::span<std::byte> region(std::uint32_t handle) {
    auto it = regions_.find(handle);
    if (it == regions_.end()) return {};
    return it->second.storage;
  }

  /// Validated remote write; returns false (and counts) on any violation.
  bool write(std::uint32_t handle, std::uint32_t key, std::uint64_t offset,
             std::span<const std::byte> data) {
    auto it = regions_.find(handle);
    if (it == regions_.end()) {
      counters_.inc("rma_bad_handle");
      return false;
    }
    Region& r = it->second;
    if (key != r.key) {
      counters_.inc("rma_bad_key");
      return false;
    }
    if (offset + data.size() > r.storage.size()) {
      counters_.inc("rma_out_of_bounds");
      return false;
    }
    // meshmp-lint: charged-copy(KernelAgent::rx_rma bills this fragment's
    // bytes via charge_copy before calling write)
    std::copy(data.begin(), data.end(), r.storage.begin() +
                                            static_cast<std::ptrdiff_t>(offset));
    return true;
  }

  [[nodiscard]] const sim::Counters& counters() const { return counters_; }
  [[nodiscard]] std::size_t active_regions() const { return regions_.size(); }

 private:
  struct Region {
    std::uint32_t key = 0;
    std::vector<std::byte> storage;
  };

  net::NodeId node_;
  sim::Rng rng_;
  std::uint32_t next_handle_ = 1;
  // Keyed by handle (monotonic), so iteration order is registration order.
  // Region moves on insert/erase keep their storage buffers in place, so
  // spans handed out by region() stay valid.
  chk::FlatMap<std::uint32_t, Region> regions_;
  sim::Counters counters_;
};

}  // namespace meshmp::via
