#pragma once

// Runtime invariant auditing.
//
// Subsystems register *quiesce validators* — closures that verify conservation
// and state-machine invariants (descriptor rings balanced, no leaked resource
// holds, reassembly complete, event queue drained). Validators run only when
// someone calls `Audit::quiesce()`, typically a test or the determinism
// harness after the simulation has drained. Hot-path code additionally guards
// inline checks behind `Audit::enabled()`, a single branch on a global bool,
// so the audit layer is always compiled in but costs nothing when off.
//
// A violation produces a labelled report. By default it is printed to stderr
// and the process aborts; tests install a capturing handler (ScopedCapture)
// to assert that a seeded violation is caught.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "chk/thread_annotations.hpp"

namespace meshmp::chk {

/// One detected invariant violation.
struct Violation {
  std::string label;    ///< dotted subsystem path, e.g. "sim.resource.cpu"
  std::string message;  ///< what broke, with the observed values
};

/// Process-wide validator registry. The entry table, violation log and
/// failure handler are guarded by audit_mu_ (a zero-cost chk::SimLock until
/// the PDES engine lands); validators and handlers always run *outside* the
/// lock so they can re-enter fail()/unwatch() without self-deadlocking once
/// the lock is real.
// meshmp-lint: shared-state
class Audit {
 public:
  static Audit& instance();

  /// Hot-path guard for inline checks. Off by default: enabling is the
  /// test/CI opt-in, so benches run at full speed.
  [[nodiscard]] static bool enabled() noexcept { return enabled_; }
  static void set_enabled(bool on) noexcept { enabled_ = on; }

  /// A quiesce validator: inspects its subsystem and calls fail() for every
  /// violated invariant.
  using Validator = std::function<void()>;

  /// RAII registration handle; unregisters on destruction. Subsystem objects
  /// hold one as a member so their validator lives exactly as long as they do.
  class Registration {
   public:
    Registration() noexcept = default;
    Registration(Registration&& other) noexcept
        : id_(std::exchange(other.id_, 0)) {}
    Registration& operator=(Registration&& other) noexcept {
      if (this != &other) {
        release();
        id_ = std::exchange(other.id_, 0);
      }
      return *this;
    }
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;
    ~Registration() { release(); }

   private:
    friend class Audit;
    explicit Registration(std::uint64_t id) noexcept : id_(id) {}
    void release() noexcept;
    std::uint64_t id_ = 0;
  };

  /// Registers a validator under `label`; runs on every quiesce() until the
  /// returned handle is destroyed.
  [[nodiscard]] Registration watch(std::string label, Validator validator);

  /// Runs every registered validator (in registration order, so reports are
  /// deterministic). Returns the number of violations they raised.
  std::size_t quiesce();

  /// Reports a violation: records it and invokes the failure handler. The
  /// default handler prints a labelled report and aborts.
  void fail(std::string label, std::string message);

  /// The recorded violations. Reading the returned reference is the calling
  /// partition's to serialize (test-only accessor).
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    chk::SimLockGuard g(audit_mu_);
    return violations_;
  }
  void clear_violations() {
    chk::SimLockGuard g(audit_mu_);
    violations_.clear();
  }

  using Handler = std::function<void(const Violation&)>;
  /// Swaps the failure handler; returns the previous one (empty = default
  /// print-and-abort behaviour).
  Handler exchange_handler(Handler h);

 private:
  struct Entry {
    std::string label;
    Validator validator;
  };

  Audit() = default;

  /// Locked unregistration (Registration::release goes through here so the
  /// entry table is never touched without the capability).
  void unwatch(std::uint64_t id) noexcept;

  static inline bool enabled_ = false;

  mutable chk::SimLock audit_mu_;
  std::uint64_t next_id_ MESHMP_GUARDED_BY(audit_mu_) = 1;
  // ordered -> deterministic runs
  std::map<std::uint64_t, Entry> entries_ MESHMP_GUARDED_BY(audit_mu_);
  std::vector<Violation> violations_ MESHMP_GUARDED_BY(audit_mu_);
  Handler handler_ MESHMP_GUARDED_BY(audit_mu_);
};

/// Test helper: while alive, violations are recorded instead of aborting.
/// Clears the violation log on entry and exit so tests stay independent.
class ScopedCapture {
 public:
  ScopedCapture();
  ScopedCapture(const ScopedCapture&) = delete;
  ScopedCapture& operator=(const ScopedCapture&) = delete;
  ~ScopedCapture();

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return Audit::instance().violations();
  }
  /// True if any recorded violation's label starts with `label_prefix`.
  [[nodiscard]] bool caught(std::string_view label_prefix) const;

 private:
  Audit::Handler previous_;
};

}  // namespace meshmp::chk
