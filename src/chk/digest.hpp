#pragma once

// FNV-1a event digesting.
//
// The engine folds every dispatched event — (when, seq, label) — into a
// running 64-bit FNV-1a hash. Two runs of the same program must produce the
// same digest; any divergence (iteration over pointer-keyed containers,
// uninitialized reads, wall-clock leakage) changes it with high probability.

#include <cstddef>
#include <cstdint>

namespace meshmp::chk {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Folds `n` raw bytes into hash `h`.
inline std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data,
                                 std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Folds a 64-bit value (as its 8 little-endian-in-memory bytes).
inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) noexcept {
  return fnv1a_bytes(h, &v, sizeof(v));
}

/// Folds a NUL-terminated string, including a terminator byte so that
/// ("ab","c") and ("a","bc") hash differently.
inline std::uint64_t fnv1a_cstr(std::uint64_t h, const char* s) noexcept {
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= kFnvPrime;
  }
  h ^= 0xff;
  h *= kFnvPrime;
  return h;
}

}  // namespace meshmp::chk
