#include "chk/determinism.hpp"

#include <cinttypes>
#include <cstdio>

namespace meshmp::chk {

std::string describe(const Fingerprint& fp) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "executed=%" PRIu64 " digest=%016" PRIx64 " end_time=%" PRId64
                "ns result=%016" PRIx64,
                fp.executed, fp.digest, fp.end_time, fp.result_hash);
  return buf;
}

ReplayResult run_twice_and_compare(
    const std::function<Fingerprint()>& scenario) {
  ReplayResult r;
  r.first = scenario();
  r.second = scenario();
  r.identical = r.first == r.second;
  if (!r.identical) {
    if (r.first.executed != r.second.executed) r.divergence += "executed ";
    if (r.first.digest != r.second.digest) r.divergence += "digest ";
    if (r.first.end_time != r.second.end_time) r.divergence += "end_time ";
    if (r.first.result_hash != r.second.result_hash) {
      r.divergence += "result_hash ";
    }
    r.divergence += "(" + describe(r.first) + " vs " + describe(r.second) + ")";
  }
  return r;
}

}  // namespace meshmp::chk
