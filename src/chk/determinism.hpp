#pragma once

// Determinism checking.
//
// A scenario runs a complete simulation and reports a Fingerprint: the event
// count, the engine's FNV event digest, and the final simulated time (plus an
// optional hash of the scenario's own results). `run_twice_and_compare`
// executes the scenario twice in fresh state and demands byte-identical
// fingerprints — the machine-checked form of the engine's "two runs of the
// same program produce identical event orders" contract.
//
// This module deliberately knows nothing about the simulator: a Fingerprint
// is plain integers, so chk stays at the bottom of the dependency order.

#include <cstdint>
#include <functional>
#include <string>

namespace meshmp::chk {

struct Fingerprint {
  std::uint64_t executed = 0;  ///< events dispatched (Engine::executed())
  std::uint64_t digest = 0;    ///< FNV event digest (Engine::digest())
  std::int64_t end_time = 0;   ///< final simulated time in ns
  std::uint64_t result_hash = 0;  ///< optional: hash of scenario outputs

  bool operator==(const Fingerprint&) const = default;
};

/// Human-readable one-liner, for failure messages.
std::string describe(const Fingerprint& fp);

struct ReplayResult {
  Fingerprint first;
  Fingerprint second;
  bool identical = false;
  /// Empty when identical; otherwise names every differing field.
  std::string divergence;
};

/// Runs `scenario` twice and compares the fingerprints. The scenario must
/// build all of its own state (cluster, endpoints, RNG seeds) from scratch on
/// every call; shared mutable state across calls is exactly the kind of bug
/// this harness exists to expose.
ReplayResult run_twice_and_compare(const std::function<Fingerprint()>& scenario);

}  // namespace meshmp::chk
