#pragma once

// Determinism-digest export for the CI thread-count matrix.
//
// When MESHMP_DIGEST_OUT names a file, every cluster appends one
// "<name>=<hex digest>" line to it as it is destroyed (names are
// "cluster.<k>" with k a process-global construction counter, so a binary
// that builds several clusters emits a stable sequence). The CI
// determinism-matrix job runs the same binary at MESHMP_THREADS=1/2/4 and
// diffs the files: any divergence is a conservative-synchronization bug.
// With the variable unset this is a no-op.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace meshmp::chk {

/// Process-global ordinal for digest-emitting clusters.
inline std::uint32_t next_digest_ordinal() noexcept {
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Appends "<name>=<hex>" to $MESHMP_DIGEST_OUT (no-op when unset).
inline void append_digest_out(const std::string& name, std::uint64_t digest) {
  // Host configuration, read at cluster teardown on the coordinator.
  const char* path = std::getenv("MESHMP_DIGEST_OUT");  // NOLINT(concurrency-mt-unsafe)
  if (path == nullptr || *path == '\0') return;
  std::FILE* f = std::fopen(path, "ae");
  if (f == nullptr) return;
  std::fprintf(f, "%s=%016llx\n", name.c_str(),
               static_cast<unsigned long long>(digest));
  std::fclose(f);
}

}  // namespace meshmp::chk
