#pragma once

// Deterministically ordered flat associative containers.
//
// std::unordered_map iteration order depends on hash seeding, bucket counts
// and insertion history — iterating one in simulation-affecting code is a
// determinism bug waiting to happen (and `tools/meshmp_lint.py` rule D1 bans
// the type in src/ outright). These containers are the sanctioned
// replacement: a sorted vector of entries, so iteration order is the key
// order, identical on every run and every platform. obs::Counters pioneered
// the idiom for the metrics registry; this header generalizes it.
//
// Complexity: lookup is O(log n), insert/erase O(n) moves. Every map in the
// simulator keyed this way is small (directions per node, services per
// agent, in-flight rendezvous per endpoint), where the flat layout also wins
// on cache behaviour — the same reasoning as buf::Pool's free-list classes.
//
// The API is the subset of std::map the codebase uses; value_type is
// std::pair<Key, Value> (non-const key, as in a vector), and insertion or
// erasure invalidates iterators and references like any vector.

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

namespace meshmp::chk {

template <typename Key, typename Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  [[nodiscard]] iterator begin() noexcept { return items_.begin(); }
  [[nodiscard]] iterator end() noexcept { return items_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept {
    return items_.begin();
  }
  [[nodiscard]] const_iterator end() const noexcept { return items_.end(); }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  void clear() noexcept { items_.clear(); }

  [[nodiscard]] iterator find(const Key& key) {
    auto it = lower_bound(key);
    return it != items_.end() && it->first == key ? it : items_.end();
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    auto it = lower_bound(key);
    return it != items_.end() && it->first == key ? it : items_.end();
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find(key) != end();
  }
  [[nodiscard]] std::size_t count(const Key& key) const {
    return contains(key) ? 1 : 0;
  }

  [[nodiscard]] Value& at(const Key& key) {
    auto it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at: no such key");
    return it->second;
  }
  [[nodiscard]] const Value& at(const Key& key) const {
    auto it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at: no such key");
    return it->second;
  }

  Value& operator[](const Key& key) {
    auto it = lower_bound(key);
    if (it == items_.end() || it->first != key) {
      it = items_.emplace(it, key, Value{});
    }
    return it->second;
  }

  /// Inserts (key, Value(args...)) if absent; returns {iterator, inserted}.
  /// Value is only constructed when the key is new (try_emplace semantics;
  /// emplace is an alias since the codebase never relies on the difference).
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    auto it = lower_bound(key);
    if (it != items_.end() && it->first == key) return {it, false};
    it = items_.emplace(it, std::piecewise_construct,
                        std::forward_as_tuple(key),
                        std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }
  template <typename... Args>
  std::pair<iterator, bool> emplace(const Key& key, Args&&... args) {
    return try_emplace(key, std::forward<Args>(args)...);
  }

  std::size_t erase(const Key& key) {
    auto it = find(key);
    if (it == end()) return 0;
    items_.erase(it);
    return 1;
  }
  iterator erase(const_iterator pos) { return items_.erase(pos); }

 private:
  [[nodiscard]] iterator lower_bound(const Key& key) {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const value_type& a, const Key& k) { return a.first < k; });
  }
  [[nodiscard]] const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const value_type& a, const Key& k) { return a.first < k; });
  }

  std::vector<value_type> items_;
};

template <typename Key>
class FlatSet {
 public:
  using const_iterator = typename std::vector<Key>::const_iterator;

  [[nodiscard]] const_iterator begin() const noexcept {
    return items_.begin();
  }
  [[nodiscard]] const_iterator end() const noexcept { return items_.end(); }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  void clear() noexcept { items_.clear(); }

  [[nodiscard]] bool contains(const Key& key) const {
    auto it = std::lower_bound(items_.begin(), items_.end(), key);
    return it != items_.end() && *it == key;
  }

  /// Inserts `key` if absent; returns true when it was new.
  bool insert(const Key& key) {
    auto it = std::lower_bound(items_.begin(), items_.end(), key);
    if (it != items_.end() && *it == key) return false;
    items_.insert(it, key);
    return true;
  }

  std::size_t erase(const Key& key) {
    auto it = std::lower_bound(items_.begin(), items_.end(), key);
    if (it == items_.end() || *it != key) return 0;
    items_.erase(it);
    return 1;
  }

 private:
  std::vector<Key> items_;
};

}  // namespace meshmp::chk
