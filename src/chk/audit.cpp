#include "chk/audit.hpp"

#include <cstdio>
#include <cstdlib>

namespace meshmp::chk {

Audit& Audit::instance() {
  static Audit audit;
  return audit;
}

void Audit::Registration::release() noexcept {
  if (id_ != 0) {
    Audit::instance().unwatch(id_);
    id_ = 0;
  }
}

void Audit::unwatch(std::uint64_t id) noexcept {
  chk::SimLockGuard g(audit_mu_);
  entries_.erase(id);
}

Audit::Registration Audit::watch(std::string label, Validator validator) {
  chk::SimLockGuard g(audit_mu_);
  const std::uint64_t id = next_id_++;
  entries_.emplace(id, Entry{std::move(label), std::move(validator)});
  return Registration{id};
}

std::size_t Audit::quiesce() {
  // Snapshot the ids under the lock, then run each validator outside it:
  // validators call fail() (which re-acquires the lock) and object teardown
  // inside a handler may unregister, so neither may run under audit_mu_.
  std::size_t before = 0;
  std::vector<std::uint64_t> ids;
  {
    chk::SimLockGuard g(audit_mu_);
    before = violations_.size();
    ids.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) ids.push_back(id);
  }
  for (std::uint64_t id : ids) {
    Validator v;
    {
      chk::SimLockGuard g(audit_mu_);
      auto it = entries_.find(id);
      if (it == entries_.end()) continue;  // unregistered mid-sweep
      v = it->second.validator;
    }
    v();
  }
  chk::SimLockGuard g(audit_mu_);
  return violations_.size() - before;
}

void Audit::fail(std::string label, std::string message) {
  Violation v{std::move(label), std::move(message)};
  Handler h;
  {
    chk::SimLockGuard g(audit_mu_);
    violations_.push_back(v);
    h = handler_;
  }
  if (h) {
    h(v);
    return;
  }
  std::fprintf(stderr, "meshmp audit violation [%s]: %s\n", v.label.c_str(),
               v.message.c_str());
  std::abort();
}

Audit::Handler Audit::exchange_handler(Handler h) {
  chk::SimLockGuard g(audit_mu_);
  Handler old = std::move(handler_);
  handler_ = std::move(h);
  return old;
}

ScopedCapture::ScopedCapture() {
  Audit::instance().clear_violations();
  previous_ =
      Audit::instance().exchange_handler([](const Violation&) { /* record */ });
}

ScopedCapture::~ScopedCapture() {
  (void)Audit::instance().exchange_handler(std::move(previous_));
  Audit::instance().clear_violations();
}

bool ScopedCapture::caught(std::string_view label_prefix) const {
  for (const Violation& v : violations()) {
    if (std::string_view(v.label).substr(0, label_prefix.size()) ==
        label_prefix) {
      return true;
    }
  }
  return false;
}

}  // namespace meshmp::chk
