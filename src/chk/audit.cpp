#include "chk/audit.hpp"

#include <cstdio>
#include <cstdlib>

namespace meshmp::chk {

Audit& Audit::instance() {
  static Audit audit;
  return audit;
}

void Audit::Registration::release() noexcept {
  if (id_ != 0) {
    Audit::instance().entries_.erase(id_);
    id_ = 0;
  }
}

Audit::Registration Audit::watch(std::string label, Validator validator) {
  const std::uint64_t id = next_id_++;
  entries_.emplace(id, Entry{std::move(label), std::move(validator)});
  return Registration{id};
}

std::size_t Audit::quiesce() {
  const std::size_t before = violations_.size();
  // Validators may not (un)register during the sweep; iterate over a copy of
  // the ids so object teardown inside a handler cannot invalidate iterators.
  std::vector<std::uint64_t> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  for (std::uint64_t id : ids) {
    auto it = entries_.find(id);
    if (it != entries_.end()) it->second.validator();
  }
  return violations_.size() - before;
}

void Audit::fail(std::string label, std::string message) {
  Violation v{std::move(label), std::move(message)};
  violations_.push_back(v);
  if (handler_) {
    handler_(v);
    return;
  }
  std::fprintf(stderr, "meshmp audit violation [%s]: %s\n", v.label.c_str(),
               v.message.c_str());
  std::abort();
}

Audit::Handler Audit::exchange_handler(Handler h) {
  Handler old = std::move(handler_);
  handler_ = std::move(h);
  return old;
}

ScopedCapture::ScopedCapture() {
  Audit::instance().clear_violations();
  previous_ =
      Audit::instance().exchange_handler([](const Violation&) { /* record */ });
}

ScopedCapture::~ScopedCapture() {
  (void)Audit::instance().exchange_handler(std::move(previous_));
  Audit::instance().clear_violations();
}

bool ScopedCapture::caught(std::string_view label_prefix) const {
  for (const Violation& v : violations()) {
    if (std::string_view(v.label).substr(0, label_prefix.size()) ==
        label_prefix) {
      return true;
    }
  }
  return false;
}

}  // namespace meshmp::chk
