#pragma once

// Clang thread-safety annotations behind MESHMP_* macros, plus the zero-cost
// SimLock capability the single-threaded engine annotates against today.
//
// The multicore PDES engine will contend on a handful of shared structures
// (the sim::Engine event queue, buf::Pool free lists, the obs and chk
// registries). Before any worker thread exists, those hot spots declare
// their locking discipline here: members carry MESHMP_GUARDED_BY, private
// helpers carry MESHMP_REQUIRES, and public entry points take a
// SimLockGuard. Under Clang, -Wthread-safety (promoted to an error by
// MESHMP_THREAD_SAFETY) then checks the discipline statically on every
// build; under GCC the annotations compile to nothing.
//
// SimLock is a conditional mutex: while the process is single-threaded
// (chk::mt_active() false — no engine worker team exists) lock()/unlock()
// are a relaxed flag check the optimizer keeps out of the hot path, so the
// sequential engine pays almost nothing. The moment a parallel engine spawns
// its worker team the same annotated, already-checked acquire points become
// real std::mutex synchronization — no re-audit of the call graph required.

#include <mutex>

#include "chk/parallel.hpp"

#if defined(__clang__)
#define MESHMP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MESHMP_THREAD_ANNOTATION_(x)
#endif

/// Declares a type that models a lockable capability.
#define MESHMP_CAPABILITY(x) MESHMP_THREAD_ANNOTATION_(capability(x))
/// Declares an RAII type that acquires on construction, releases on scope exit.
#define MESHMP_SCOPED_CAPABILITY MESHMP_THREAD_ANNOTATION_(scoped_lockable)
/// Data member readable/writable only while holding the named capability.
#define MESHMP_GUARDED_BY(x) MESHMP_THREAD_ANNOTATION_(guarded_by(x))
/// Pointer member whose pointee is guarded by the named capability.
#define MESHMP_PT_GUARDED_BY(x) MESHMP_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function that must be entered with the capability already held.
#define MESHMP_REQUIRES(...) \
  MESHMP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function that acquires the capability and returns holding it.
#define MESHMP_ACQUIRE(...) \
  MESHMP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function that releases a held capability.
#define MESHMP_RELEASE(...) \
  MESHMP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Function that acquires the capability when it returns the given value.
#define MESHMP_TRY_ACQUIRE(...) \
  MESHMP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Function that must NOT be entered holding the capability (deadlock guard).
#define MESHMP_EXCLUDES(...) \
  MESHMP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Function returning a reference to the named capability.
#define MESHMP_RETURN_CAPABILITY(x) MESHMP_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch: disables the analysis for one function. Use with a comment.
#define MESHMP_NO_THREAD_SAFETY_ANALYSIS \
  MESHMP_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace meshmp::chk {

/// The capability the engine's shared-state hot spots annotate against.
/// Lock operations are a no-op while the process is single-threaded and a
/// real std::mutex while an engine worker team exists (chk::mt_active()).
///
/// The engaged_ flag records whether this *acquisition* took the mutex, so
/// an activation flip between lock() and unlock() can never unbalance the
/// mutex. The flip itself only happens on the coordinator thread while no
/// worker is executing (team spawn/join), so skipped locks are never
/// actually contended. engaged_ is written only by the current holder:
/// under the mutex when it was taken, and in a single-threaded regime when
/// it was skipped.
class MESHMP_CAPABILITY("mutex") SimLock {
 public:
  SimLock() noexcept = default;
  SimLock(const SimLock&) = delete;
  SimLock& operator=(const SimLock&) = delete;

  void lock() noexcept MESHMP_ACQUIRE() {
    if (mt_active()) {
      mu_.lock();
      engaged_ = true;
    }
  }
  void unlock() noexcept MESHMP_RELEASE() {
    if (engaged_) {
      engaged_ = false;
      mu_.unlock();
    }
  }
  bool try_lock() noexcept MESHMP_TRY_ACQUIRE(true) {
    if (mt_active()) {
      if (!mu_.try_lock()) return false;
      engaged_ = true;
    }
    return true;
  }

 private:
  std::mutex mu_;
  bool engaged_ = false;
};

/// RAII guard for SimLock; the annotated analogue of std::lock_guard.
class MESHMP_SCOPED_CAPABILITY SimLockGuard {
 public:
  explicit SimLockGuard(SimLock& lock) noexcept MESHMP_ACQUIRE(lock)
      : lock_(lock) {
    lock_.lock();
  }
  ~SimLockGuard() noexcept MESHMP_RELEASE() { lock_.unlock(); }
  SimLockGuard(const SimLockGuard&) = delete;
  SimLockGuard& operator=(const SimLockGuard&) = delete;

 private:
  SimLock& lock_;
};

}  // namespace meshmp::chk
