#pragma once

// Parallel-engine support primitives: the one place outside src/sim where raw
// concurrency machinery is allowed to live (meshmp-lint rule R4 bans
// std::thread / std::mutex / std::atomic elsewhere — workers belong to the
// engine, and shared state synchronizes through chk::SimLock or the wrappers
// below).
//
// Design contract with the conservative PDES engine (DESIGN.md section 13):
//
//  * mt_active() is a process-wide flag, true exactly while at least one
//    engine worker team exists. chk::SimLock consults it so the sequential
//    engine keeps its zero-cost locks while a parallel run pays for real
//    mutexes. Activation/deactivation only ever happens on the coordinator
//    thread while no worker is executing a window, so the flag never flips
//    underneath a held lock.
//
//  * worker_index() is -1 on every plain host thread (including the
//    coordinator) and w >= 1 on engine worker thread w. obs::Histogram uses
//    it to route adds into per-worker shards that are merged back in a fixed
//    order at window quiesce, keeping shared interned histograms both
//    race-free and deterministic.
//
//  * SharedCount / SharedCount64 wrap the few cross-LP counters (buf block
//    refcounts, process-wide copy accounting) whose owners are not tied to a
//    single logical process. They are sequentially consistent enough for
//    counting (acq_rel RMW) and read with acquire loads; their values are
//    functions of the simulated program alone, so they stay deterministic.

#include <atomic>
#include <cstdint>

namespace meshmp::chk {

namespace detail {
inline std::atomic<int>& mt_refcount() noexcept {
  static std::atomic<int> count{0};
  return count;
}
inline int& worker_index_slot() noexcept {
  thread_local int index = -1;
  return index;
}
}  // namespace detail

/// True while any engine worker team exists; SimLock engages its real mutex.
[[nodiscard]] inline bool mt_active() noexcept {
  return detail::mt_refcount().load(std::memory_order_acquire) > 0;
}

/// RAII refcount on the mt_active() flag; held by each engine worker team
/// for its whole lifetime (threads are spawned after construction and joined
/// before destruction, so locks are real whenever a worker could run).
class MtActivation {
 public:
  MtActivation() noexcept {
    detail::mt_refcount().fetch_add(1, std::memory_order_acq_rel);
  }
  ~MtActivation() {
    detail::mt_refcount().fetch_sub(1, std::memory_order_acq_rel);
  }
  MtActivation(const MtActivation&) = delete;
  MtActivation& operator=(const MtActivation&) = delete;
};

/// Index of the current engine worker thread (>= 1), or -1 on plain host
/// threads and the coordinator. Set once at worker-thread start.
[[nodiscard]] inline int worker_index() noexcept {
  return detail::worker_index_slot();
}
inline void set_worker_index(int index) noexcept {
  detail::worker_index_slot() = index;
}

/// Atomic counter for the few shared tallies mutated from multiple logical
/// processes (buf refcounts, copy accounting). Deterministic because every
/// increment is driven by the simulated program; atomicity only protects the
/// read-modify-write, never an ordering decision.
template <typename T>
class Shared {
 public:
  Shared() noexcept = default;
  explicit Shared(T v) noexcept : v_(v) {}
  Shared(const Shared&) = delete;
  Shared& operator=(const Shared&) = delete;

  [[nodiscard]] T load() const noexcept {
    return v_.load(std::memory_order_acquire);
  }
  void store(T v) noexcept { v_.store(v, std::memory_order_release); }
  /// Returns the value *after* the addition (the common refcount shape).
  T add(T by) noexcept {
    return v_.fetch_add(by, std::memory_order_acq_rel) + by;
  }
  /// Returns the value *after* the subtraction.
  T sub(T by) noexcept {
    return v_.fetch_sub(by, std::memory_order_acq_rel) - by;
  }
  /// Monotone max (host-telemetry high-water marks).
  void fold_max(T candidate) noexcept {
    T cur = v_.load(std::memory_order_relaxed);
    while (candidate > cur &&
           !v_.compare_exchange_weak(cur, candidate,
                                     std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<T> v_{0};
};

using SharedCount = Shared<std::uint32_t>;
using SharedCount64 = Shared<std::uint64_t>;

}  // namespace meshmp::chk
