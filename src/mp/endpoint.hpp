#pragma once

// The common message-passing core both MPI and QMP sit on (paper sec. 5).
//
// Per peer there is one *outgoing* VI (dialed lazily by the sender) and, on
// the peer, one incoming VI managed by its accept loop. On every channel:
//
//  * token flow control: a sender holds one token per in-flight message;
//    tokens mirror the receive descriptors pre-posted on the peer's incoming
//    VI and come back piggybacked on reverse traffic or as explicit credit
//    messages (paper sec. 5.1, bullet 2);
//  * eager protocol below 16 KiB: user buffer -> bounce buffer copy, then a
//    VIA send into a pre-posted descriptor; the receiver copies bounce ->
//    user at match time (two copies total);
//  * rendezvous + RMA at/above 16 KiB: RTS announcement, receiver-side
//    matching, RTR with a registered-memory token, sender RMA write
//    (zero-copy: the only copy is the kernel's receive-interrupt copy), FIN.
//
// Receiver-side matching supports MPI wildcards; RTRs are matched on the
// *sender* side by rendezvous id (the paper's sender-side matching).

#include <cstdint>
#include <deque>
#include <optional>
#include <memory>
#include <vector>

#include "buf/pool.hpp"
#include "chk/audit.hpp"
#include "chk/flat_map.hpp"
#include "mp/params.hpp"
#include "mp/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "via/agent.hpp"

namespace meshmp::mp {

struct Message {
  int src = -1;
  int tag = 0;
  std::vector<std::byte> data;
  /// False when the receive was error-completed (the peer was declared dead
  /// and the posted receive cancelled) instead of matched; data is empty.
  bool ok = true;
};

/// Outcome of a send. Failures are structured, not exceptional: an
/// unreachable peer (dead link with no surviving detour, retry budget
/// exhausted) reports kUnreachable instead of hanging or aborting, and the
/// channel stays failed for subsequent sends. A node on a minority
/// partition refuses to open new channels at all — kMinorityPartition —
/// until quorum is restored by healing.
enum class SendStatus : std::uint8_t {
  kOk = 0,
  kUnreachable = 1,
  kMinorityPartition = 2,
};

class Endpoint {
 public:
  static constexpr int kAny = -1;

  Endpoint(via::KernelAgent& agent, CoreParams params);
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  [[nodiscard]] int rank() const noexcept { return agent_.node_id(); }
  [[nodiscard]] via::KernelAgent& agent() noexcept { return agent_; }
  [[nodiscard]] sim::Engine& engine() noexcept {
    return agent_.node().cpu().engine();
  }
  [[nodiscard]] const CoreParams& params() const noexcept { return params_; }

  /// Sends `data` to rank `dst` with `tag` (0..kMaxTag). Completes when the
  /// buffer is reusable: immediately after the bounce copy for eager sends,
  /// after the matching receive was found for rendezvous sends. Returns
  /// kUnreachable when reliable delivery to `dst` has given up.
  /// The vector overload adopts the bytes into the buffer pool; the slice
  /// overload lets callers (e.g. collectives) share one staged payload
  /// across several sends without host copies.
  sim::Task<SendStatus> send(int dst, int tag, std::vector<std::byte> data);
  sim::Task<SendStatus> send(int dst, int tag, buf::Slice data);

  /// Receives the next message matching (src, tag); kAny is a wildcard.
  /// When tag != kAny, only bits selected by `tag_mask` participate in the
  /// match — MPI uses this to keep ANY_TAG inside the user tag class.
  sim::Task<Message> recv(int src = kAny, int tag = kAny, int tag_mask = ~0);

  /// Metadata of a matchable incoming message (MPI_Probe-style).
  struct ProbeResult {
    int src = 0;
    int tag = 0;
    std::int64_t bytes = 0;
  };

  /// Blocks until a message matching (src, tag) has arrived but not been
  /// received, and returns its envelope without consuming it.
  sim::Task<ProbeResult> probe(int src = kAny, int tag = kAny,
                               int tag_mask = ~0);

  /// Non-blocking probe.
  std::optional<ProbeResult> iprobe(int src = kAny, int tag = kAny,
                                    int tag_mask = ~0);

  /// Error-completes posted-but-unmatched receives: every blocked recv whose
  /// source filter names `src` (or every posted recv when src == kAny) wakes
  /// with msg.ok == false instead of hanging on a peer that will never send.
  /// Upper layers call this when the failure detector confirms a death.
  void cancel_posted_recvs(int src = kAny);

  /// Forgets a *failed* channel to `dst` so the next send re-dials instead
  /// of failing fast forever. Upper layers call this when membership says
  /// the peer is alive again (rejoin, partition heal). A healthy channel is
  /// left untouched; senders still blocked on the failed channel complete
  /// with their original error.
  void reset_peer(int dst);

  /// Number of unexpected (arrived but unmatched) messages — diagnostics.
  [[nodiscard]] std::size_t unexpected_count() const noexcept {
    return unexpected_.size();
  }

  [[nodiscard]] const sim::Counters& counters() const noexcept {
    return counters_;
  }

 private:
  struct OutChannel {
    explicit OutChannel(sim::Engine& eng) : token_ready(eng), dialed(eng) {}
    via::Vi* vi = nullptr;
    int tokens = 0;
    sim::Signal token_ready;
    bool dialing = false;
    bool failed = false;  ///< underlying VI gave up; sends fail fast
    sim::Trigger dialed;
  };

  struct InVi {
    via::Vi* vi = nullptr;
    int returnable = 0;  ///< consumed descriptors not yet credited back
  };

  struct PostedRecv {
    int src = kAny;
    int tag = kAny;
    int tag_mask = ~0;
    bool done = false;
    Message msg;
    std::unique_ptr<sim::Trigger> ready;
  };

  struct Unexpected {
    int src = 0;
    int tag = 0;
    bool is_rts = false;
    std::vector<std::byte> data;  // eager payload
    std::uint32_t rts_id = 0;
    std::uint64_t rts_size = 0;
  };

  struct PendingRndvSend {
    buf::Slice data;  ///< pinned send buffer, shared with the RMA write
    int dst = 0;
    bool failed = false;  ///< channel died before the receiver matched
    std::unique_ptr<sim::Trigger> matched;
  };

  struct RndvRecv {
    via::MemToken token;
    std::shared_ptr<PostedRecv> posted;
    int src = 0;
    int tag = 0;
    std::uint64_t size = 0;
  };

  static std::uint64_t rndv_key(int src, std::uint32_t id) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           id;
  }

  sim::Task<OutChannel*> out_channel(int dst);
  /// Acquires one flow-control token, or returns false once the channel has
  /// failed (failure notifies token_ready so stalled senders wake up).
  sim::Task<bool> take_token(OutChannel& ch);
  /// Marks the channel to `dst` failed and fails every send blocked on it:
  /// token waiters wake and bail, pending rendezvous to `dst` complete with
  /// an error. Idempotent.
  void fail_channel(int dst, OutChannel& ch);
  /// Quiesce invariants: token counts within [0, params.tokens], no pending
  /// rendezvous on either side, no posted-but-unmatched receives.
  void audit_quiesce() const;
  /// Attaches any pending credits for `peer`'s incoming VI to `imm`.
  void piggyback_credits(int peer, Imm& imm);
  void apply_credits(const Imm& imm);

  sim::Task<> accept_loop();
  sim::Task<> pump(via::Vi* vi, int peer);
  sim::Task<> handle_eager(int src, int tag, std::vector<std::byte> data);
  sim::Task<> handle_rts(int src, const RtsBody& rts);
  sim::Task<> issue_rtr(std::shared_ptr<PostedRecv> posted, int src,
                        std::uint32_t id, std::uint64_t size, int tag);
  sim::Task<> handle_rtr(int src, const RtrBody& rtr);
  sim::Task<> handle_fin(int src, std::uint32_t id);
  sim::Task<> maybe_return_credits(int peer, InVi& in);
  sim::Task<> deliver_local(int tag, buf::Slice data);

  static bool tag_matches(int want, int mask, int got) {
    return want == kAny || (want & mask) == (got & mask);
  }
  /// First posted receive compatible with (src, tag), or null.
  std::shared_ptr<PostedRecv> match_posted(int src, int tag);
  void complete(PostedRecv& posted, Message msg);

  via::KernelAgent& agent_;
  CoreParams params_;

  // Flat maps: audit_quiesce and fail_channel iterate these, and wake order
  // must not depend on hash-bucket layout. Channel/InVi objects sit behind
  // unique_ptr, so references survive map growth.
  chk::FlatMap<int, std::unique_ptr<OutChannel>> out_;
  chk::FlatMap<std::uint32_t, OutChannel*> out_by_vi_;  // local vi id
  chk::FlatMap<int, std::vector<std::unique_ptr<InVi>>> in_;
  // Channels replaced by reset_peer. Senders woken by fail_channel resume
  // *after* the reset (Signal::notify_all posts through the engine), so the
  // failed object must outlive them; they finish with their original error.
  std::vector<std::unique_ptr<OutChannel>> retired_;

  std::deque<std::shared_ptr<PostedRecv>> posted_;
  std::deque<Unexpected> unexpected_;
  std::unique_ptr<sim::Signal> unexpected_arrived_;

  // shared_ptr: handle_rtr may still be mid-flight on an entry when a channel
  // failure completes (and erases) the owning send.
  std::uint32_t next_rndv_id_ = 1;
  chk::FlatMap<std::uint32_t, std::shared_ptr<PendingRndvSend>> pending_rndv_;
  chk::FlatMap<std::uint64_t, RndvRecv> rndv_recv_;

  sim::Counters counters_;
  chk::Audit::Registration audit_reg_;
  obs::Registry::Registration metrics_reg_;
  obs::Histogram& eager_bytes_hist_;  ///< eager-path send sizes
  obs::Histogram& rndv_bytes_hist_;   ///< rendezvous-path send sizes
  std::uint64_t trace_send_seq_ = 0;  ///< async span ids for send phases

  // Service coroutines are owned (not detached) so endpoint teardown frees
  // their frames; last members, destroyed before anything they reference.
  sim::Task<> accept_task_;
  std::vector<sim::Task<>> pump_tasks_;
};

}  // namespace meshmp::mp
