#include "mp/endpoint.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "buf/copy.hpp"

namespace meshmp::mp {

using hw::Cpu;
using sim::Task;

namespace {

/// Unique id for an mp-layer async trace span (rank + per-endpoint counter).
[[maybe_unused]] std::uint64_t mp_span_id(int rank, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 40) |
         (seq & 0xff'ffff'ffffull);
}

}  // namespace

Endpoint::Endpoint(via::KernelAgent& agent, CoreParams params)
    : agent_(agent),
      params_(params),
      audit_reg_(chk::Audit::instance().watch("mp.endpoint",
                                              [this] { audit_quiesce(); })),
      metrics_reg_(
          obs::Registry::instance().attach("mp.endpoint", &counters_)),
      eager_bytes_hist_(obs::Registry::instance().histogram("mp.eager_bytes")),
      rndv_bytes_hist_(obs::Registry::instance().histogram("mp.rndv_bytes")) {
  unexpected_arrived_ = std::make_unique<sim::Signal>(engine());
  agent_.listen(params_.service);
  accept_task_ = accept_loop();
}

void Endpoint::audit_quiesce() const {
  const std::string who = "rank " + std::to_string(agent_.node_id()) + ": ";
  for (const auto& [dst, ch] : out_) {
    if (ch->vi == nullptr) continue;
    if (ch->tokens < 0 || ch->tokens > params_.tokens) {
      chk::Audit::instance().fail(
          "mp.endpoint", who + "channel to rank " + std::to_string(dst) +
                             " holds " + std::to_string(ch->tokens) +
                             " tokens, outside [0, " +
                             std::to_string(params_.tokens) + "]");
    }
  }
  if (!pending_rndv_.empty()) {
    chk::Audit::instance().fail(
        "mp.endpoint", who + std::to_string(pending_rndv_.size()) +
                           " rendezvous send(s) never matched at quiesce");
  }
  if (!rndv_recv_.empty()) {
    chk::Audit::instance().fail(
        "mp.endpoint", who + std::to_string(rndv_recv_.size()) +
                           " rendezvous receive(s) never finished at quiesce");
  }
}

std::optional<Endpoint::ProbeResult> Endpoint::iprobe(int src, int tag,
                                                      int tag_mask) {
  for (const Unexpected& u : unexpected_) {
    const bool src_ok = src == kAny || src == u.src;
    const bool tag_ok = tag_matches(tag, tag_mask, u.tag);
    if (!src_ok || !tag_ok) continue;
    ProbeResult r;
    r.src = u.src;
    r.tag = u.tag;
    r.bytes = u.is_rts ? static_cast<std::int64_t>(u.rts_size)
                       : static_cast<std::int64_t>(u.data.size());
    return r;
  }
  return std::nullopt;
}

sim::Task<Endpoint::ProbeResult> Endpoint::probe(int src, int tag,
                                                 int tag_mask) {
  for (;;) {
    if (auto r = iprobe(src, tag, tag_mask)) co_return *r;
    co_await unexpected_arrived_->next();
  }
}

// --------------------------------------------------------------------------
// Channel management and flow control
// --------------------------------------------------------------------------

Task<Endpoint::OutChannel*> Endpoint::out_channel(int dst) {
  auto it = out_.find(dst);
  if (it == out_.end()) {
    it = out_.emplace(dst, std::make_unique<OutChannel>(engine())).first;
  }
  OutChannel& ch = *it->second;
  if (ch.vi != nullptr) co_return &ch;
  if (ch.dialing) {
    co_await ch.dialed.wait();
    co_return &ch;
  }
  ch.dialing = true;
  ch.vi = co_await agent_.connect(dst, params_.service);
  ch.tokens = params_.tokens;
  out_by_vi_[ch.vi->id()] = &ch;
  // Reliable delivery giving up on this VI (retry budget exhausted) fails
  // the whole channel: blocked senders wake and report kUnreachable.
  ch.vi->set_error_handler([this, dst](via::Vi&, via::ViError) {
    auto cit = out_.find(dst);
    if (cit != out_.end()) fail_channel(dst, *cit->second);
  });
  if (ch.vi->failed()) fail_channel(dst, ch);  // dial itself timed out
  ch.dialed.fire();
  counters_.inc("channels_dialed");
  co_return &ch;
}

Task<bool> Endpoint::take_token(OutChannel& ch) {
  while (ch.tokens == 0 && !ch.failed) {
    counters_.inc("token_stalls");
    co_await ch.token_ready.next();
  }
  if (ch.failed) co_return false;
  --ch.tokens;
  co_return true;
}

void Endpoint::fail_channel(int dst, OutChannel& ch) {
  if (ch.failed) return;
  ch.failed = true;
  counters_.inc("channels_failed");
  // Wake token waiters so they observe the failure instead of stalling.
  ch.token_ready.notify_all();
  // Rendezvous sends to this peer will never see an RTR; complete them with
  // the error so their callers return instead of hanging.
  for (auto& [id, p] : pending_rndv_) {
    if (p->dst != dst || p->failed) continue;
    p->failed = true;
    p->matched->fire();
  }
}

void Endpoint::reset_peer(int dst) {
  auto it = out_.find(dst);
  if (it == out_.end()) return;
  OutChannel& ch = *it->second;
  if (!ch.failed) return;
  if (ch.vi != nullptr) {
    auto vit = out_by_vi_.find(ch.vi->id());
    if (vit != out_by_vi_.end() && vit->second == &ch) out_by_vi_.erase(vit);
  }
  retired_.push_back(std::move(it->second));
  out_.erase(it);
  counters_.inc("channels_reset");
}

void Endpoint::piggyback_credits(int peer, Imm& imm) {
  auto it = in_.find(peer);
  if (it == in_.end()) return;
  for (auto& in : it->second) {
    if (in->returnable > 0) {
      imm.credits = static_cast<std::uint16_t>(in->returnable);
      imm.credit_vi = static_cast<std::uint16_t>(in->vi->remote_vi());
      in->returnable = 0;
      counters_.inc("credits_piggybacked", imm.credits);
      return;
    }
  }
}

void Endpoint::apply_credits(const Imm& imm) {
  if (imm.credits == 0) return;
  auto it = out_by_vi_.find(imm.credit_vi);
  if (it == out_by_vi_.end()) return;
  it->second->tokens += imm.credits;
  it->second->token_ready.notify_all();
}

Task<> Endpoint::maybe_return_credits(int peer, InVi& in) {
  // Repost the consumed descriptor right away, then decide whether the
  // accumulated credits warrant an explicit credit message.
  in.vi->post_recv(params_.eager_threshold + 64);
  ++in.returnable;
  if (in.returnable < params_.credit_return_threshold) co_return;
  OutChannel& ch = *co_await out_channel(peer);
  if (ch.failed) co_return;  // peer unreachable: credits are moot
  Imm imm;
  imm.kind = WireKind::kCredit;
  imm.credits = static_cast<std::uint16_t>(in.returnable);
  imm.credit_vi = static_cast<std::uint16_t>(in.vi->remote_vi());
  in.returnable = 0;
  counters_.inc("credits_explicit", imm.credits);
  // Credit messages bypass token flow control (they are what replenishes
  // it); the receiver's control_slack descriptors absorb them.
  try {
    co_await ch.vi->send(buf::Slice{}, imm.pack());
  } catch (const std::logic_error&) {
    // VI failed while this pump-side send was queued; nothing to credit.
  }
}

// --------------------------------------------------------------------------
// Send path
// --------------------------------------------------------------------------

Task<SendStatus> Endpoint::send(int dst, int tag, std::vector<std::byte> data) {
  co_return co_await send(dst, tag,
                          buf::Pool::instance().adopt(std::move(data)));
}

Task<SendStatus> Endpoint::send(int dst, int tag, buf::Slice data) {
  if (tag < 0 || tag > kMaxTag) {
    throw std::invalid_argument("Endpoint::send: tag out of range");
  }
  if (dst < 0 || dst >= agent_.torus().size()) {
    throw std::invalid_argument("Endpoint::send: bad destination rank");
  }
  if (dst == rank()) {
    co_await deliver_local(tag, std::move(data));
    co_return SendStatus::kOk;
  }

  // Quorum fail-fast: a minority side must not open new channels on its
  // half-machine view. Channels established before the partition keep
  // working (or die through the failure detector) — only fresh dials and
  // collectives are refused.
  if (agent_.minority() && !out_.contains(dst)) {
    counters_.inc("send_minority_rejected");
    agent_.note_minority_refusal();
    co_return SendStatus::kMinorityPartition;
  }

  auto& cpu = agent_.node().cpu();
  const auto size = static_cast<std::int64_t>(data.size());
  OutChannel& ch = *co_await out_channel(dst);
  if (ch.failed) {
    if (ch.vi != nullptr &&
        ch.vi->error() == via::ViError::kMinorityPartition) {
      counters_.inc("send_minority_rejected");
      co_return SendStatus::kMinorityPartition;
    }
    counters_.inc("send_unreachable");
    co_return SendStatus::kUnreachable;
  }

  if (size < params_.eager_threshold) {
    eager_bytes_hist_.add(size);
    [[maybe_unused]] const std::uint64_t span =
        mp_span_id(rank(), ++trace_send_seq_);
    MESHMP_TRACE_ASYNC_SCOPE(engine(), obs::Cat::kMp, rank(), "eager_send",
                             span);
    if (!co_await take_token(ch)) {
      counters_.inc("send_unreachable");
      co_return SendStatus::kUnreachable;
    }
    // Copy #1 of the eager path: user buffer -> pre-registered bounce.
    co_await buf::charge_copy(cpu, size, /*hot=*/true);
    Imm imm;
    imm.kind = WireKind::kEager;
    imm.tag = static_cast<std::uint32_t>(tag);
    piggyback_credits(dst, imm);
    counters_.inc("eager_tx");
    try {
      co_await ch.vi->send(std::move(data), imm.pack());
    } catch (const std::logic_error&) {
      // The VI failed between the channel check and the post.
      counters_.inc("send_unreachable");
      co_return SendStatus::kUnreachable;
    }
    co_return SendStatus::kOk;
  }

  // Rendezvous: announce, wait for the receiver's RTR (sender-side matched
  // by id), RMA-write, FIN.
  rndv_bytes_hist_.add(size);
  [[maybe_unused]] const std::uint64_t span =
      mp_span_id(rank(), ++trace_send_seq_);
  MESHMP_TRACE_ASYNC_SCOPE(engine(), obs::Cat::kMp, rank(), "rndv_send", span);
  const std::uint32_t id = (next_rndv_id_++ & 0xffffffu);
  auto pr = std::make_shared<PendingRndvSend>();
  pr->data = std::move(data);
  pr->dst = dst;
  pr->matched = std::make_unique<sim::Trigger>(engine());
  pending_rndv_.emplace(id, pr);

  if (!co_await take_token(ch)) {
    pending_rndv_.erase(id);
    counters_.inc("send_unreachable");
    co_return SendStatus::kUnreachable;
  }
  Imm imm;
  imm.kind = WireKind::kRts;
  imm.tag = static_cast<std::uint32_t>(tag);
  piggyback_credits(dst, imm);
  counters_.inc("rts_tx");
  try {
    co_await ch.vi->send(
        serialize(RtsBody{static_cast<std::uint64_t>(size), id, tag}),
        imm.pack());
  } catch (const std::logic_error&) {
    pending_rndv_.erase(id);
    counters_.inc("send_unreachable");
    co_return SendStatus::kUnreachable;
  }
  co_await pr->matched->wait();
  const bool failed = pr->failed;
  pending_rndv_.erase(id);
  if (failed) {
    counters_.inc("send_unreachable");
    co_return SendStatus::kUnreachable;
  }
  co_return SendStatus::kOk;
}

Task<> Endpoint::handle_rtr(int src, const RtrBody& rtr) {
  auto it = pending_rndv_.find(rtr.id);
  if (it == pending_rndv_.end()) {
    counters_.inc("rtr_unmatched");
    co_return;
  }
  auto pr = it->second;  // keep alive across awaits even if the send bails
  assert(pr->dst == src);
  OutChannel& ch = *co_await out_channel(src);
  if (ch.failed || pr->failed) co_return;
  via::MemToken token;
  token.node = src;
  token.handle = rtr.handle;
  token.key = rtr.key;
  token.bytes = rtr.bytes;
  counters_.inc("rndv_rma_tx");
  try {
    co_await ch.vi->rma_write(pr->data, token, 0);
    if (!co_await take_token(ch)) co_return;
    Imm imm;
    imm.kind = WireKind::kFin;
    imm.tag = rtr.id;
    piggyback_credits(src, imm);
    co_await ch.vi->send(buf::Slice{}, imm.pack());
  } catch (const std::logic_error&) {
    co_return;  // VI failed mid-protocol; fail_channel completes the send
  }
  // The buffer is consumed and the receive is known to be posted: the send
  // completes with the paper's synchronous-RMA semantics.
  pr->matched->fire();
}

Task<> Endpoint::deliver_local(int tag, buf::Slice data) {
  auto& cpu = agent_.node().cpu();
  const auto size = static_cast<std::int64_t>(data.size());
  // One modeled copy from the sender's buffer into the receiver's; the
  // to_vector materialization below is the host movement it accounts for.
  co_await buf::charge_copy(cpu, size, size <= cpu.host().cache_bytes);
  counters_.inc("self_tx");
  if (auto posted = match_posted(rank(), tag)) {
    complete(*posted, Message{rank(), tag, data.to_vector()});
    co_return;
  }
  Unexpected u;
  u.src = rank();
  u.tag = tag;
  u.data = data.to_vector();
  unexpected_.push_back(std::move(u));
  unexpected_arrived_->notify_all();
}

// --------------------------------------------------------------------------
// Receive path
// --------------------------------------------------------------------------

std::shared_ptr<Endpoint::PostedRecv> Endpoint::match_posted(int src,
                                                             int tag) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    PostedRecv& p = **it;
    const bool src_ok = p.src == kAny || p.src == src;
    const bool tag_ok = tag_matches(p.tag, p.tag_mask, tag);
    if (src_ok && tag_ok) {
      auto sp = *it;
      posted_.erase(it);
      return sp;
    }
  }
  return nullptr;
}

void Endpoint::complete(PostedRecv& posted, Message msg) {
  posted.msg = std::move(msg);
  posted.done = true;
  posted.ready->fire();
}

void Endpoint::cancel_posted_recvs(int src) {
  for (auto it = posted_.begin(); it != posted_.end();) {
    if (src != kAny && (*it)->src != src) {
      ++it;
      continue;
    }
    auto sp = *it;
    it = posted_.erase(it);
    Message msg;
    msg.src = sp->src;
    msg.tag = sp->tag;
    msg.ok = false;
    complete(*sp, std::move(msg));
    counters_.inc("recvs_cancelled");
  }
}

Task<Message> Endpoint::recv(int src, int tag, int tag_mask) {
  // Look at unexpected messages first, in arrival order.
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    const bool src_ok = src == kAny || src == it->src;
    const bool tag_ok = tag_matches(tag, tag_mask, it->tag);
    if (!src_ok || !tag_ok) continue;
    Unexpected u = std::move(*it);
    unexpected_.erase(it);
    if (!u.is_rts) {
      // Copy #2 of the eager path: bounce buffer -> user buffer.
      auto& cpu = agent_.node().cpu();
      co_await buf::charge_copy(cpu, static_cast<std::int64_t>(u.data.size()),
                                /*hot=*/true);
      counters_.inc("recv_from_unexpected");
      co_return Message{u.src, u.tag, std::move(u.data)};
    }
    // An unexpected rendezvous announcement: issue the RTR now and wait.
    auto posted = std::make_shared<PostedRecv>();
    posted->src = src;
    posted->tag = tag;
    posted->tag_mask = tag_mask;
    posted->ready = std::make_unique<sim::Trigger>(engine());
    co_await issue_rtr(posted, u.src, u.rts_id, u.rts_size, u.tag);
    co_await posted->ready->wait();
    co_return std::move(posted->msg);
  }

  auto posted = std::make_shared<PostedRecv>();
  posted->src = src;
  posted->tag = tag;
  posted->tag_mask = tag_mask;
  posted->ready = std::make_unique<sim::Trigger>(engine());
  posted_.push_back(posted);
  co_await posted->ready->wait();
  co_return std::move(posted->msg);
}

Task<> Endpoint::handle_eager(int src, int tag, std::vector<std::byte> data) {
  if (auto posted = match_posted(src, tag)) {
    // Copy #2 of the eager path, charged at user priority.
    auto& cpu = agent_.node().cpu();
    co_await buf::charge_copy(cpu, static_cast<std::int64_t>(data.size()),
                              /*hot=*/true);
    complete(*posted, Message{src, tag, std::move(data)});
    co_return;
  }
  Unexpected u;
  u.src = src;
  u.tag = tag;
  u.data = std::move(data);
  unexpected_.push_back(std::move(u));
  counters_.inc("unexpected_eager");
  MESHMP_TRACE_INSTANT_ARG(engine(), obs::Cat::kMp, rank(), "unexpected_eager",
                           "src", src);
  unexpected_arrived_->notify_all();
}

Task<> Endpoint::handle_rts(int src, const RtsBody& rts) {
  MESHMP_TRACE_INSTANT_ARG(engine(), obs::Cat::kMp, rank(), "rts_rx", "bytes",
                           rts.size);
  if (auto posted = match_posted(src, rts.tag)) {
    co_await issue_rtr(posted, src, rts.id, rts.size, rts.tag);
    co_return;
  }
  Unexpected u;
  u.src = src;
  u.tag = rts.tag;
  u.is_rts = true;
  u.rts_id = rts.id;
  u.rts_size = rts.size;
  unexpected_.push_back(u);
  counters_.inc("unexpected_rts");
  unexpected_arrived_->notify_all();
}

Task<> Endpoint::issue_rtr(std::shared_ptr<PostedRecv> posted, int src,
                           std::uint32_t id, std::uint64_t size, int tag) {
  RndvRecv state;
  state.token = agent_.memory().register_region(size);
  state.posted = std::move(posted);
  state.src = src;
  state.size = size;
  state.tag = tag;
  const auto key = rndv_key(src, id);
  OutChannel& ch = *co_await out_channel(src);
  RtrBody body;
  body.id = id;
  body.handle = state.token.handle;
  body.key = state.token.key;
  body.bytes = state.token.bytes;
  rndv_recv_.emplace(key, std::move(state));
  bool sent = co_await take_token(ch);
  if (sent) {
    Imm imm;
    imm.kind = WireKind::kRtr;
    piggyback_credits(src, imm);
    counters_.inc("rtr_tx");
    try {
      co_await ch.vi->send(serialize(body), imm.pack());
    } catch (const std::logic_error&) {
      sent = false;
    }
  }
  if (!sent) {
    // The reverse channel died: the RTR cannot reach the sender, so the
    // rendezvous will never finish. Drop the state (the posted receive stays
    // pending, like a receive whose sender never existed).
    counters_.inc("rtr_undeliverable");
    auto st = rndv_recv_.find(key);
    if (st != rndv_recv_.end()) {
      agent_.memory().deregister(st->second.token.handle);
      rndv_recv_.erase(st);
    }
  }
}

Task<> Endpoint::handle_fin(int src, std::uint32_t id) {
  MESHMP_TRACE_INSTANT_ARG(engine(), obs::Cat::kMp, rank(), "fin_rx", "src",
                           src);
  auto it = rndv_recv_.find(rndv_key(src, id));
  if (it == rndv_recv_.end()) {
    counters_.inc("fin_unmatched");
    co_return;
  }
  RndvRecv state = std::move(it->second);
  rndv_recv_.erase(it);
  // Handing the registered region to the user is zero-copy in the real
  // implementation; steal its storage outright so the host does not copy
  // either. The RMA write into the region was the one modeled copy.
  Message msg;
  msg.src = src;
  msg.tag = state.tag;
  msg.data = agent_.memory().take_storage(state.token.handle);
  counters_.inc("rndv_rx");
  complete(*state.posted, std::move(msg));
  co_return;
}

// --------------------------------------------------------------------------
// Incoming message pumps
// --------------------------------------------------------------------------

Task<> Endpoint::accept_loop() {
  for (;;) {
    via::Vi* vi = co_await agent_.accept(params_.service);
    const int peer = vi->remote_node();
    auto in = std::make_unique<InVi>();
    in->vi = vi;
    for (int i = 0; i < params_.tokens + params_.control_slack; ++i) {
      vi->post_recv(params_.eager_threshold + 64);
    }
    InVi* raw = in.get();
    in_[peer].push_back(std::move(in));
    pump_tasks_.push_back(pump(raw->vi, peer));
    counters_.inc("channels_accepted");
  }
}

Task<> Endpoint::pump(via::Vi* vi, int peer) {
  for (;;) {
    via::RecvCompletion comp = co_await vi->recv_completion();
    if (comp.status != via::ViError::kNone) {
      // Structured error completion: the VI is dead, stop pumping it.
      counters_.inc("pump_vi_errors");
      co_return;
    }
    const Imm imm = Imm::unpack(comp.immediate);
    apply_credits(imm);

    switch (imm.kind) {
      case WireKind::kEager:
        co_await handle_eager(peer, static_cast<int>(imm.tag),
                              std::move(comp.data));
        break;
      case WireKind::kRts:
        co_await handle_rts(peer, deserialize<RtsBody>(comp.data));
        break;
      case WireKind::kRtr:
        co_await handle_rtr(peer, deserialize<RtrBody>(comp.data));
        break;
      case WireKind::kFin:
        co_await handle_fin(peer, imm.tag);
        break;
      case WireKind::kCredit:
        counters_.inc("credits_rx_msgs");
        break;
    }

    // Find the InVi record to repost + credit. (Small vector: a node talks
    // to a handful of peers on one or two VIs each.)
    for (auto& in : in_.at(peer)) {
      if (in->vi != vi) continue;
      if (imm.kind == WireKind::kCredit) {
        // Credit messages bypass token flow control on the send side, so
        // they must not generate credits themselves: that would inflate the
        // peer's tokens and, at small return thresholds, ping-pong credits
        // forever. Just repost the descriptor they consumed.
        vi->post_recv(params_.eager_threshold + 64);
      } else {
        co_await maybe_return_credits(peer, *in);
      }
      break;
    }
  }
}

}  // namespace meshmp::mp
