#pragma once

// Tunables of the common message-passing core shared by MPI and QMP.

#include <cstdint>

namespace meshmp::mp {

struct CoreParams {
  /// Protocol switch point (paper sec. 5.1): messages below go eager through
  /// pre-posted bounce buffers; messages at/above go rendezvous + RMA write.
  std::int64_t eager_threshold = 16 * 1024;

  /// Flow-control tokens per channel == pre-posted receive descriptors on
  /// the incoming VI (paper sec. 5.1, second design bullet).
  int tokens = 32;

  /// Extra descriptors kept posted beyond the advertised tokens so that
  /// explicit credit messages (which deliberately bypass flow control to
  /// avoid deadlock) always find a descriptor.
  int control_slack = 4;

  /// Return credits once this many have accumulated (and no application
  /// message has piggybacked them sooner).
  int credit_return_threshold = 16;

  /// VIA service id the endpoints rendezvous on.
  std::uint32_t service = 0x4D50;  // "MP"
};

}  // namespace meshmp::mp
