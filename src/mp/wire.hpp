#pragma once

// On-the-wire encoding of the message-passing core's protocol:
//  * the VIA 64-bit immediate carries message kind, piggybacked credits and
//    a 24-bit tag/id field;
//  * RTS/RTR control payloads are serialized little structs (real bytes, so
//    they survive fragmentation/corruption tests like everything else).

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "via/memory.hpp"

namespace meshmp::mp {

enum class WireKind : std::uint8_t {
  kEager = 1,   ///< small message; payload = user bytes
  kRts = 2,     ///< rendezvous announcement {size, id, tag}
  kRtr = 3,     ///< ready-to-receive {id, memory token}
  kFin = 4,     ///< rendezvous data complete (id in tag field)
  kCredit = 5,  ///< explicit flow-control credit return
};

/// Largest tag representable on the wire (24 bits).
inline constexpr std::int32_t kMaxTag = (1 << 24) - 1;

/// Immediate layout: [63:56] kind | [55:40] credits | [39:24] credit VI |
/// [23:0] tag (kEager/kRts) or rendezvous id (kFin).
struct Imm {
  WireKind kind = WireKind::kEager;
  std::uint16_t credits = 0;
  std::uint16_t credit_vi = 0;
  std::uint32_t tag = 0;

  [[nodiscard]] std::uint64_t pack() const {
    return (static_cast<std::uint64_t>(kind) << 56) |
           (static_cast<std::uint64_t>(credits) << 40) |
           (static_cast<std::uint64_t>(credit_vi) << 24) |
           (static_cast<std::uint64_t>(tag) & 0xffffffu);
  }
  static Imm unpack(std::uint64_t v) {
    Imm i;
    i.kind = static_cast<WireKind>((v >> 56) & 0xff);
    i.credits = static_cast<std::uint16_t>((v >> 40) & 0xffff);
    i.credit_vi = static_cast<std::uint16_t>((v >> 24) & 0xffff);
    i.tag = static_cast<std::uint32_t>(v & 0xffffffu);
    return i;
  }
};

struct RtsBody {
  std::uint64_t size = 0;
  std::uint32_t id = 0;
  std::int32_t tag = 0;
};

struct RtrBody {
  std::uint32_t id = 0;
  std::uint32_t handle = 0;
  std::uint32_t key = 0;
  std::uint64_t bytes = 0;
};

template <typename T>
std::vector<std::byte> serialize(const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> out(sizeof(T));
  // meshmp-lint: host-copy(control-message codec: RTS/RTR/FIN/credit bodies
  // are tens of bytes and ride frames whose costs are modeled per frame)
  std::memcpy(out.data(), &v, sizeof(T));
  return out;
}

template <typename T>
T deserialize(const std::vector<std::byte>& bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes.size() != sizeof(T)) {
    throw std::runtime_error("mp::deserialize: size mismatch");
  }
  T v;
  // meshmp-lint: host-copy(control-message decode; see serialize above)
  std::memcpy(&v, bytes.data(), sizeof(T));
  return v;
}

}  // namespace meshmp::mp
