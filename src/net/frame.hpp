#pragma once

// Frames: the unit moved by links and NICs.
//
// Frames carry *real* payload bytes so that integrity is testable end to end
// (through fragmentation, kernel forwarding, corruption and retransmission),
// plus a modelled `wire_bytes` size that includes protocol headers the
// simulation does not materialize.

#include <any>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace meshmp::net {

/// Global node index within a cluster.
using NodeId = std::int32_t;

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected) over a byte range.
std::uint32_t crc32(std::span<const std::byte> data);

/// Forwarding budget: enough for any minimal route on the paper's meshes
/// plus detours around failed links, small enough to kill routing loops fast.
inline constexpr std::uint8_t kDefaultTtl = 32;

struct Frame {
  NodeId src = -1;  ///< originating node (not the last forwarder)
  NodeId dst = -1;  ///< final destination node
  /// Remaining forwarding hops; decremented by each kernel-level switch and
  /// dropped at zero so a transient routing loop cannot orbit forever.
  std::uint8_t ttl = kDefaultTtl;
  /// Protocol demultiplex key on the receiving node (VIA kernel agent, TCP
  /// stack, ...). Values are assigned by the cluster builder.
  std::uint16_t proto = 0;
  /// Modelled frame size in bytes including protocol headers (the link adds
  /// Ethernet preamble/header/FCS/IFG on top of this).
  std::int64_t wire_bytes = 0;
  /// CRC of `payload` computed at transmit time (hardware checksum model).
  std::uint32_t checksum = 0;
  /// Actual data carried (empty for pure control frames).
  std::vector<std::byte> payload;
  /// Protocol-private header (e.g. via::FrameHeader). One heap allocation per
  /// frame; only the owning protocol reads it.
  std::any meta;

  /// Recomputes `checksum` from the payload (done by the NIC on transmit —
  /// the Intel Pro/1000MT offloads this, so it costs no host CPU).
  void stamp_checksum() { checksum = crc32(payload); }

  /// True when payload still matches the transmit-time checksum.
  [[nodiscard]] bool checksum_ok() const { return checksum == crc32(payload); }
};

/// Convenience: byte-vector from any trivially copyable object sequence.
template <typename T>
std::vector<std::byte> to_bytes(std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto raw = std::as_bytes(values);
  return {raw.begin(), raw.end()};
}

}  // namespace meshmp::net
