#pragma once

// Frames: the unit moved by links and NICs.
//
// Frames carry *real* payload bytes so that integrity is testable end to end
// (through fragmentation, kernel forwarding, corruption and retransmission),
// plus a modelled `wire_bytes` size that includes protocol headers the
// simulation does not materialize.
//
// The payload is a buf::Slice: a refcounted view into pooled storage, so
// copying a frame (per-hop forwarding, retransmit queues, DMA staging) bumps
// a refcount instead of duplicating bytes. Modeled copy costs are charged
// separately through buf::charge_copy; see src/buf/.

#include <any>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "buf/pool.hpp"
#include "sim/inline_fn.hpp"

namespace meshmp::net {

/// Global node index within a cluster.
using NodeId = std::int32_t;

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected) over a byte range.
std::uint32_t crc32(std::span<const std::byte> data);

/// Freelist allocator for the protocol headers carried in Frame::meta.
/// std::any heap-allocates one header per frame (and per frame *copy* —
/// retransmit queues, per-hop event captures), which made malloc a hot-path
/// cost. Protocol header types route their class-level operator new/delete
/// here so steady-state frames recycle fixed blocks instead. Requests larger
/// than the block size fall through to the global allocator.
[[nodiscard]] void* meta_alloc(std::size_t bytes);
void meta_free(void* p, std::size_t bytes) noexcept;

/// One block class sized for the largest header (ViaHeader is exactly 96
/// bytes); smaller headers waste a little slack rather than paying a second
/// freelist. Header types static_assert they fit so a growing header turns
/// the pool off loudly (at compile time) instead of silently.
inline constexpr std::size_t kMetaBlockBytes = 96;

/// Declares pooled allocation for a protocol header type. Member functions
/// do not affect aggregate-ness, so designated initializers keep working.
#define MESHMP_POOLED_META()                                    \
  static void* operator new(std::size_t n) {                    \
    return ::meshmp::net::meta_alloc(n);                        \
  }                                                             \
  static void operator delete(void* p, std::size_t n) noexcept { \
    ::meshmp::net::meta_free(p, n);                             \
  }

/// Forwarding budget: enough for any minimal route on the paper's meshes
/// plus detours around failed links, small enough to kill routing loops fast.
inline constexpr std::uint8_t kDefaultTtl = 32;

// Field order is packed densest-first so the header occupies bytes [0, 24)
// with a single byte of tail padding: every hot-path hop (TTL check, proto
// demux, wire-time computation) touches one cache line.
struct Frame {
  NodeId src = -1;  ///< originating node (not the last forwarder)
  NodeId dst = -1;  ///< final destination node
  /// Modelled frame size in bytes including protocol headers (the link adds
  /// Ethernet preamble/header/FCS/IFG on top of this).
  std::int64_t wire_bytes = 0;
  /// CRC of `payload` computed at transmit time (hardware checksum model).
  std::uint32_t checksum = 0;
  /// Protocol demultiplex key on the receiving node (VIA kernel agent, TCP
  /// stack, ...). Values are assigned by the cluster builder.
  std::uint16_t proto = 0;
  /// Remaining forwarding hops; decremented by each kernel-level switch and
  /// dropped at zero so a transient routing loop cannot orbit forever.
  std::uint8_t ttl = kDefaultTtl;
  /// Actual data carried (null slice for pure control frames). Immutable:
  /// wire corruption must go through corrupt_payload_byte().
  buf::Slice payload;
  /// Protocol-private header (e.g. via::FrameHeader). One heap allocation per
  /// frame; only the owning protocol reads it.
  std::any meta;

  /// Recomputes `checksum` from the payload (done by the NIC on transmit —
  /// the Intel Pro/1000MT offloads this, so it costs no host CPU). The
  /// slice memoizes its CRC, so restamping on forward costs O(1).
  void stamp_checksum() { checksum = payload.crc(); }

  /// True when payload still matches the transmit-time checksum.
  [[nodiscard]] bool checksum_ok() const { return checksum == payload.crc(); }

  /// Models a wire bit error: replaces the payload with a detached mutated
  /// copy (the original storage — shared with retransmit queues — is never
  /// altered, and the copy carries no CRC memo, so checksum_ok() fails).
  void corrupt_payload_byte(std::size_t index, std::byte mask) {
    payload = payload.corrupted(index, mask);
  }
};

// Size pins: frames are moved through every pump and captured by value in
// per-hop events, so growth here is a hot-path regression. 24-byte packed
// header + 32-byte slice + 16-byte std::any.
static_assert(sizeof(buf::Slice) == 32);
static_assert(sizeof(Frame) == 72);

// The largest event capture on the hot path is [this + Frame] in the
// link/NIC/crossbar pumps; it must fit the InlineFn budget so those events
// never allocate. If this fires, either the Frame grew or the budget shrank
// — both are deliberate decisions.
static_assert(sizeof(Frame) + sizeof(void*) <= sim::kInlineFnCapacity);

/// Convenience: byte-vector from any trivially copyable object sequence.
template <typename T>
std::vector<std::byte> to_bytes(std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto raw = std::as_bytes(values);
  return {raw.begin(), raw.end()};
}

}  // namespace meshmp::net
