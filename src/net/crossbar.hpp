#pragma once

// Ideal non-blocking crossbar switch (full-bisection Clos model).
//
// Used for the Myrinet comparison cluster: every ingress frame pays a fixed
// switch latency, then serializes only on its *output* port — two flows to
// different destinations never interfere, which is exactly what a
// full-bisection Clos network provides.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/link.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace meshmp::net {

class Crossbar {
 public:
  /// `port_params` describes each node-to-switch cable; egress serialization
  /// happens at this same rate.
  Crossbar(sim::Engine& eng, int ports, LinkParams port_params,
           sim::Duration switch_latency, sim::Rng rng);

  /// Registers the sink for frames leaving output port `port` (the attached
  /// node's NIC rx entry).
  void set_egress_sink(int port, std::function<void(Frame)> sink);

  /// Called by the ingress side; frame.dst selects the output port (node id
  /// == port index in the switched cluster).
  void ingress(Frame f);

 private:
  sim::Engine& eng_;
  sim::Duration switch_latency_;
  std::vector<std::unique_ptr<SimplexPipe>> egress_;
};

}  // namespace meshmp::net
