#include "net/frame.hpp"

#include <array>

namespace meshmp::net {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  std::uint32_t c = 0xffffffffu;
  for (std::byte b : data) {
    c = kCrcTable[(c ^ static_cast<std::uint32_t>(b)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace meshmp::net
