#include "net/frame.hpp"

#include <new>

#include "buf/pool.hpp"
#include "chk/thread_annotations.hpp"

namespace meshmp::net {

// The table implementation lives in buf so Slice can memoize CRCs; this
// wrapper keeps the historical net-level entry point for callers and tests.
std::uint32_t crc32(std::span<const std::byte> data) {
  return buf::crc32(data);
}

namespace {

// Blocks are never returned to the OS — the high-water population is a few
// hundred (frames in flight plus retransmit queues).
struct MetaBlock {
  MetaBlock* next;
};

// Guarded the same way as buf::Pool: a zero-cost chk::SimLock seam that a
// future multicore PDES engine turns into a real mutex.
chk::SimLock g_meta_mu;
MetaBlock* g_meta_free MESHMP_GUARDED_BY(g_meta_mu) = nullptr;

}  // namespace

void* meta_alloc(std::size_t bytes) {
  if (bytes > kMetaBlockBytes) return ::operator new(bytes);
  {
    chk::SimLockGuard g(g_meta_mu);
    if (g_meta_free != nullptr) {
      MetaBlock* b = g_meta_free;
      g_meta_free = b->next;
      return b;
    }
  }
  return ::operator new(kMetaBlockBytes);
}

void meta_free(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes > kMetaBlockBytes) {
    ::operator delete(p);
    return;
  }
  auto* b = static_cast<MetaBlock*>(p);
  chk::SimLockGuard g(g_meta_mu);
  b->next = g_meta_free;
  g_meta_free = b;
}

}  // namespace meshmp::net
