#include "net/frame.hpp"

#include "buf/pool.hpp"

namespace meshmp::net {

// The table implementation lives in buf so Slice can memoize CRCs; this
// wrapper keeps the historical net-level entry point for callers and tests.
std::uint32_t crc32(std::span<const std::byte> data) {
  return buf::crc32(data);
}

}  // namespace meshmp::net
