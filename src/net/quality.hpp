#pragma once

// Per-link quality scoring for gray-failure detection.
//
// Each node keeps one LinkQuality tracking every local port: an EWMA of
// observed probe round-trip latency and an EWMA of loss events (probe
// timeouts, attributed retransmits, explicit drops) combine into a score in
// [0, 1] per direction. 1 means healthy; a degraded link (added latency,
// squeezed bandwidth, flaky PHY) sinks toward 0 long before — or without —
// the carrier ever dropping.
//
// Scores feed two masks with hysteresis so routing does not flap:
//  * degraded: score fell below `degrade_below`; cleared above `clear_above`.
//    Routing prefers equal-length paths that dodge these links.
//  * black: loss EWMA above `black_loss` — the link drops essentially
//    everything (e.g. one-directional cable break) even though carrier sense
//    says it is up. Egress treats these like failed links (detour allowed),
//    but no link_change ever fires: that distinction is what keeps a gray
//    link from being confused with a dead node.
//
// Everything here is driven by simulation observations only — no wall clock,
// no RNG — so faulted runs stay bit-reproducible.

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace meshmp::net {

struct QualityParams {
  /// EWMA smoothing factor per sample for both loss and latency.
  double alpha = 0.25;
  /// Healthy-link reference RTT: latency factor is ref_rtt / rtt_ewma,
  /// clamped to 1, so anything at or under the reference scores cleanly.
  /// Deliberately generous — a membership-flood storm can queue a probe ack
  /// behind a full tick of control frames, and congestion must never read
  /// as a sick cable (a flipped mask floods link state, which feeds the
  /// storm that flipped it).
  sim::Duration ref_rtt = 250'000;  // ns
  /// Score thresholds with hysteresis for the degraded mask.
  double degrade_below = 0.30;
  double clear_above = 0.60;
  /// Consecutive below-threshold evaluations required before a port is
  /// flagged degraded — the debounce that keeps one storm-stretched RTT
  /// sample from flipping routing.
  int degrade_streak = 3;
  /// Loss-EWMA thresholds with hysteresis for the black (effectively dead)
  /// mask. No streak debounce: the EWMA itself needs ~6 consecutive lost
  /// probes to cross, and every extra tick spent waiting runs down the
  /// clock against the neighbour's phi death verdict (the acks that detour
  /// once the port goes black are what refute its suspicion).
  double black_loss = 0.80;
  double black_clear = 0.50;
};

class LinkQuality {
 public:
  LinkQuality(QualityParams params, int nports)
      : params_(params), ports_(static_cast<std::size_t>(nports)) {
    for (PortState& p : ports_) p.rtt_ewma = params_.ref_rtt;
  }

  /// A probe (heartbeat) sent on this port was acknowledged after `rtt`.
  void on_probe_ack(int dir_index, sim::Duration rtt) {
    PortState& p = port(dir_index);
    p.loss_ewma *= 1 - params_.alpha;
    p.rtt_ewma = (1 - params_.alpha) * p.rtt_ewma +
                 params_.alpha * static_cast<double>(rtt);
    ++p.acks;
  }

  /// A probe sent on this port is overdue (no ack by the next monitor tick).
  void on_probe_timeout(int dir_index) {
    PortState& p = port(dir_index);
    p.loss_ewma = (1 - params_.alpha) * p.loss_ewma + params_.alpha;
    ++p.timeouts;
  }

  /// The reliability layer retransmitted toward the neighbor on this port —
  /// counts as a loss observation (the wire ate a frame or its ack).
  void on_retransmit(int dir_index) {
    PortState& p = port(dir_index);
    p.loss_ewma = (1 - params_.alpha) * p.loss_ewma + params_.alpha;
    ++p.retransmits;
  }

  /// Quality score in [0, 1]: delivery probability times the latency factor.
  [[nodiscard]] double score(int dir_index) const {
    const PortState& p = ports_[static_cast<std::size_t>(dir_index)];
    const double lat =
        p.rtt_ewma <= static_cast<double>(params_.ref_rtt)
            ? 1.0
            : static_cast<double>(params_.ref_rtt) / p.rtt_ewma;
    return (1 - p.loss_ewma) * lat;
  }

  [[nodiscard]] double loss_ewma(int dir_index) const {
    return ports_[static_cast<std::size_t>(dir_index)].loss_ewma;
  }
  [[nodiscard]] double rtt_ewma(int dir_index) const {
    return ports_[static_cast<std::size_t>(dir_index)].rtt_ewma;
  }

  /// Re-evaluates the hysteresis masks from current scores. Returns true
  /// when either mask changed (callers then refresh routes / flood state).
  bool update_masks() {
    const std::uint32_t old_deg = degraded_;
    const std::uint32_t old_blk = black_;
    for (std::size_t i = 0; i < ports_.size(); ++i) {
      const std::uint32_t bit = std::uint32_t{1} << i;
      const double s = score(static_cast<int>(i));
      PortState& p = ports_[i];
      if ((degraded_ & bit) != 0) {
        if (s > params_.clear_above) {
          degraded_ &= ~bit;
          p.below_streak = 0;
        }
      } else if (s < params_.degrade_below) {
        if (++p.below_streak >= params_.degrade_streak) degraded_ |= bit;
      } else {
        p.below_streak = 0;
      }
      const double l = ports_[i].loss_ewma;
      if ((black_ & bit) != 0) {
        if (l < params_.black_clear) black_ &= ~bit;
      } else if (l > params_.black_loss) {
        black_ |= bit;
      }
    }
    return degraded_ != old_deg || black_ != old_blk;
  }

  /// Ports whose score sank below the degrade threshold (bit = Dir::index()).
  [[nodiscard]] std::uint32_t degraded_mask() const noexcept {
    return degraded_;
  }
  /// Ports dropping essentially every frame despite carrier-up.
  [[nodiscard]] std::uint32_t black_mask() const noexcept { return black_; }

  [[nodiscard]] const QualityParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::int64_t acks(int dir_index) const {
    return ports_[static_cast<std::size_t>(dir_index)].acks;
  }
  [[nodiscard]] std::int64_t timeouts(int dir_index) const {
    return ports_[static_cast<std::size_t>(dir_index)].timeouts;
  }
  [[nodiscard]] std::int64_t retransmits(int dir_index) const {
    return ports_[static_cast<std::size_t>(dir_index)].retransmits;
  }

 private:
  struct PortState {
    double loss_ewma = 0;  ///< fraction of recent observations lost
    double rtt_ewma = 0;   ///< smoothed probe round-trip, ns
    std::int64_t acks = 0;
    std::int64_t timeouts = 0;
    std::int64_t retransmits = 0;
    int below_streak = 0;  ///< consecutive sub-threshold score evaluations
  };
  PortState& port(int dir_index) {
    return ports_[static_cast<std::size_t>(dir_index)];
  }

  QualityParams params_;
  std::vector<PortState> ports_;
  std::uint32_t degraded_ = 0;
  std::uint32_t black_ = 0;
};

}  // namespace meshmp::net
