#include "net/link.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace meshmp::net {

SimplexPipe::SimplexPipe(sim::Engine& eng, LinkParams params, sim::Rng rng,
                         std::string name)
    : eng_(eng),
      params_(params),
      rng_(rng),
      name_(std::move(name)),
      q_(eng) {
  pump().detach();
}

sim::Duration SimplexPipe::wire_time(std::int64_t wire_bytes) const {
  const std::int64_t on_wire =
      std::max(wire_bytes, params_.min_frame_bytes) +
      params_.per_frame_overhead_bytes;
  return sim::transfer_time(on_wire, params_.bytes_per_sec);
}

void SimplexPipe::send(Frame f) { q_.push(std::move(f)); }

sim::Task<> SimplexPipe::pump() {
  for (;;) {
    Frame f = co_await q_.pop();
    co_await sim::delay(eng_, wire_time(f.wire_bytes));
    bytes_sent_ += f.wire_bytes;
    counters_.inc("frames");
    if (!carrier_) {
      counters_.inc("carrier_dropped");
      continue;
    }
    if (params_.drop_prob > 0 && rng_.bernoulli(params_.drop_prob)) {
      counters_.inc("dropped");
      continue;
    }
    if (params_.corrupt_prob > 0 && !f.payload.empty() &&
        rng_.bernoulli(params_.corrupt_prob)) {
      // Flip one bit somewhere in the payload; the transmit-time checksum no
      // longer matches and the receiving NIC will discard the frame.
      f.corrupt_payload_byte(rng_.below(f.payload.size()), std::byte{0x10});
      counters_.inc("corrupted");
    }
    assert(sink_ && "SimplexPipe: no sink attached");
    sim::Duration extra = 0;
    if (params_.reorder_prob > 0 && rng_.bernoulli(params_.reorder_prob)) {
      // Held back in the PHY elastic buffer: arrives behind younger frames.
      extra = params_.reorder_delay;
      counters_.inc("reordered");
    }
    if (params_.dup_prob > 0 && rng_.bernoulli(params_.dup_prob)) {
      // Flaky retransmitting PHY: the far end sees the frame twice.
      Frame dup = f;
      counters_.inc("duplicated");
      eng_.schedule_to(
          sink_lp_, params_.propagation + extra,
          [this, dup = std::move(dup)]() mutable { sink_(std::move(dup)); },
          "wire");
    }
    eng_.schedule_to(
        sink_lp_, params_.propagation + extra,
        [this, f = std::move(f)]() mutable { sink_(std::move(f)); }, "wire");
  }
}

}  // namespace meshmp::net
