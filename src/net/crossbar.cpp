#include "net/crossbar.hpp"

#include <cassert>
#include <stdexcept>

namespace meshmp::net {

Crossbar::Crossbar(sim::Engine& eng, int ports, LinkParams port_params,
                   sim::Duration switch_latency, sim::Rng rng)
    : eng_(eng), switch_latency_(switch_latency) {
  egress_.reserve(static_cast<std::size_t>(ports));
  for (int p = 0; p < ports; ++p) {
    egress_.push_back(std::make_unique<SimplexPipe>(
        eng, port_params, rng.fork(), "xbar.out" + std::to_string(p)));
  }
}

void Crossbar::set_egress_sink(int port, std::function<void(Frame)> sink) {
  egress_.at(static_cast<std::size_t>(port))->set_sink(std::move(sink));
}

void Crossbar::ingress(Frame f) {
  if (f.dst < 0 || static_cast<std::size_t>(f.dst) >= egress_.size()) {
    throw std::out_of_range("Crossbar::ingress: bad destination");
  }
  eng_.schedule(switch_latency_, [this, f = std::move(f)]() mutable {
    egress_[static_cast<std::size_t>(f.dst)]->send(std::move(f));
  });
}

}  // namespace meshmp::net
