#pragma once

// Point-to-point wires.
//
// A SimplexPipe serializes frames at line rate (store-and-forward), applies
// propagation delay, and can inject drops and payload corruption for fault
// testing. A Link is a full-duplex pair of pipes — one copper GigE cable
// between two adapter ports.

#include <functional>
#include <string>

#include "net/frame.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace meshmp::net {

struct LinkParams {
  /// Line rate in bytes/second. GigE: 125e6. Myrinet 2000: 250e6.
  double bytes_per_sec = 125e6;
  /// Cable + PHY latency.
  sim::Duration propagation = 300;  // ns
  /// Per-frame media overhead added to Frame::wire_bytes on the wire.
  /// Ethernet: preamble(8) + MAC header(14) + FCS(4) + IFG(12) = 38.
  std::int64_t per_frame_overhead_bytes = 38;
  /// Minimum frame size on the wire (Ethernet: 64 bytes before overhead).
  std::int64_t min_frame_bytes = 64;
  /// Fault injection probabilities per frame.
  double drop_prob = 0.0;
  double corrupt_prob = 0.0;
  /// Gray-failure (flaky PHY) probabilities per frame: duplicate delivers the
  /// frame twice, reorder holds one copy back by `reorder_delay` so it lands
  /// behind younger traffic. Both draw from the pipe's deterministic RNG and
  /// burn zero draws while the probability is 0.
  double dup_prob = 0.0;
  double reorder_prob = 0.0;
  /// Extra propagation applied to a reordered frame (always >= 0: added
  /// latency keeps the cross-LP lookahead sound, shaving it would not).
  sim::Duration reorder_delay = 20'000;  // ns
};

class SimplexPipe {
 public:
  SimplexPipe(sim::Engine& eng, LinkParams params, sim::Rng rng,
              std::string name);
  SimplexPipe(const SimplexPipe&) = delete;
  SimplexPipe& operator=(const SimplexPipe&) = delete;

  /// Registers the receiver (the peer NIC's rx entry). Must be set before
  /// the first frame arrives. `sink_lp` is the receiver's logical process
  /// for partitioned engines (the propagation hop crosses LPs there).
  void set_sink(std::function<void(Frame)> sink,
                sim::LpId sink_lp = sim::kControlLp) {
    sink_ = std::move(sink);
    sink_lp_ = sink_lp;
  }

  /// Queues a frame for transmission; frames serialize in FIFO order.
  void send(Frame f);

  /// Carrier (link-up) state. With the carrier down the pipe behaves like an
  /// unplugged cable: frames still serialize (the transmitting PHY does not
  /// know) but nothing reaches the far end. Fault schedules toggle this.
  void set_carrier(bool up) { carrier_ = up; }
  [[nodiscard]] bool carrier() const noexcept { return carrier_; }

  /// Time the wire needs for one frame of this size (excl. propagation).
  [[nodiscard]] sim::Duration wire_time(std::int64_t wire_bytes) const;

  [[nodiscard]] const sim::Counters& counters() const { return counters_; }
  [[nodiscard]] std::int64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] const LinkParams& params() const { return params_; }

 private:
  sim::Task<> pump();

  sim::Engine& eng_;
  LinkParams params_;
  sim::Rng rng_;
  std::string name_;
  sim::Queue<Frame> q_;
  std::function<void(Frame)> sink_;
  sim::LpId sink_lp_ = sim::kControlLp;
  sim::Counters counters_;
  std::int64_t bytes_sent_ = 0;
  bool carrier_ = true;
};

/// Full-duplex cable: direction 0 is a->b, direction 1 is b->a.
class Link {
 public:
  Link(sim::Engine& eng, LinkParams params, sim::Rng rng, std::string name)
      : a2b_(eng, params, rng.fork(), name + ".a2b"),
        b2a_(eng, params, rng.fork(), name + ".b2a") {}

  SimplexPipe& a_to_b() { return a2b_; }
  SimplexPipe& b_to_a() { return b2a_; }

  /// A cable cut takes both directions down at once.
  void set_carrier(bool up) {
    a2b_.set_carrier(up);
    b2a_.set_carrier(up);
  }
  [[nodiscard]] bool carrier() const noexcept {
    return a2b_.carrier() && b2a_.carrier();
  }

 private:
  SimplexPipe a2b_;
  SimplexPipe b2a_;
};

}  // namespace meshmp::net
