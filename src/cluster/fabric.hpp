#pragma once

// Shared mesh plumbing: builds one NodeHw per torus rank with one adapter
// port per mesh direction and wires neighbouring ports with full-duplex
// cables. Both the M-VIA and the TCP mesh clusters sit on this.

#include <memory>
#include <string>
#include <vector>

#include "hw/node.hpp"
#include "hw/params.hpp"
#include "net/link.hpp"
#include "sim/engine.hpp"
#include "sim/lp.hpp"
#include "sim/rng.hpp"
#include "topo/torus.hpp"

namespace meshmp::cluster {

class MeshFabric {
 public:
  MeshFabric(sim::Engine& eng, const topo::Torus& torus,
             const hw::HostParams& host, const hw::NicParams& nic_params,
             const hw::BusParams& bus, const net::LinkParams& link,
             sim::Rng& rng) {
    // In a partitioned engine node r's hardware lives on LP 1 + r: the
    // LpScope binds every pump coroutine and timer the node spawns during
    // construction to its own shard. Unpartitioned engines keep everything
    // on the control LP.
    const bool parted = eng.partitioned();
    nodes_.reserve(static_cast<std::size_t>(torus.size()));
    nic_index_.assign(static_cast<std::size_t>(torus.size()),
                      std::vector<int>(2 * topo::kMaxDims, -1));
    for (topo::Rank r = 0; r < torus.size(); ++r) {
      sim::LpScope scope(eng, lp_of(parted, r));
      auto node = std::make_unique<hw::NodeHw>(eng, r, host, bus);
      for (topo::Dir d : torus.directions(torus.coord(r))) {
        node->add_nic(nic_params, link, rng.fork(),
                      "node" + std::to_string(r) + "." + d.str());
        nic_index_[static_cast<std::size_t>(r)][static_cast<std::size_t>(
            d.index())] = static_cast<int>(node->nics().size()) - 1;
      }
      nodes_.push_back(std::move(node));
    }
    // Each (node, dir) port connects to the neighbour's opposite port; the
    // propagation hop targets the neighbour's LP.
    for (topo::Rank r = 0; r < torus.size(); ++r) {
      for (topo::Dir d : torus.directions(torus.coord(r))) {
        auto n = torus.neighbor(r, d);
        nic(r, d).set_peer(nic(*n, d.opposite()).rx_entry(),
                           lp_of(parted, *n));
      }
    }
  }

  [[nodiscard]] hw::NodeHw& node(topo::Rank r) { return *nodes_.at(r); }

  [[nodiscard]] hw::Nic& nic(topo::Rank r, topo::Dir dir) {
    const int idx = nic_index_.at(static_cast<std::size_t>(r))
                        .at(static_cast<std::size_t>(dir.index()));
    return nodes_[static_cast<std::size_t>(r)]->nic(
        static_cast<std::size_t>(idx));
  }

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// LP owning rank r's hardware: 1 + r when partitioned, control otherwise.
  [[nodiscard]] static sim::LpId lp_of(bool partitioned, topo::Rank r) {
    return partitioned ? static_cast<sim::LpId>(1 + r) : sim::kControlLp;
  }

 private:
  std::vector<std::unique_ptr<hw::NodeHw>> nodes_;
  std::vector<std::vector<int>> nic_index_;
};

}  // namespace meshmp::cluster
