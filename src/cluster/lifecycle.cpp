#include "cluster/lifecycle.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "buf/pool.hpp"
#include "sim/lp.hpp"
#include "sim/sync.hpp"
#include "via/header.hpp"

namespace meshmp::cluster {

namespace {
constexpr std::size_t idx(topo::Rank r) { return static_cast<std::size_t>(r); }
}  // namespace

ClusterLifecycle::ClusterLifecycle(GigeMeshCluster& cluster,
                                   LifecycleParams params)
    : cluster_(cluster),
      params_(params),
      ctl_(idx(cluster.size())),
      observers_(idx(cluster.size())),
      crash_time_(idx(cluster.size()), -1),
      restart_time_(idx(cluster.size()), -1),
      detect_hist_(
          obs::Registry::instance().histogram("cluster.detection_latency_ns")),
      rejoin_hist_(
          obs::Registry::instance().histogram("cluster.rejoin_latency_ns")),
      side_(idx(cluster.size()), QuorumSide::kPrimary),
      minority_since_(idx(cluster.size()), -1),
      heal_pending_(idx(cluster.size()), false),
      counters_reg_(
          obs::Registry::instance().attach("cluster.partition", &counters_)),
      partition_duration_hist_(
          obs::Registry::instance().histogram("cluster.partition.duration_ns")),
      heal_conv_hist_(obs::Registry::instance().histogram(
          "cluster.partition.heal_convergence_ns")),
      link_seen_(idx(cluster.size()),
                 std::vector<std::uint64_t>(idx(cluster.size()), 0)),
      remote_degraded_(idx(cluster.size()),
                       std::vector<topo::DirMask>(idx(cluster.size()), 0)),
      phi_reg_(obs::Registry::instance().attach("cluster.phi", &phi_counters_)),
      score_reg_(
          obs::Registry::instance().attach("net.link.score", &score_counters_)),
      phi_suspect_hist_(obs::Registry::instance().histogram(
          "cluster.phi.suspect_level_x1000")) {
  views_.reserve(idx(cluster.size()));
  quality_.reserve(idx(cluster.size()));
  for (topo::Rank r = 0; r < cluster.size(); ++r) {
    views_.emplace_back(cluster.size());
    quality_.emplace_back(params_.quality, kMaxPorts);
    ctl_[idx(r)].ls_pending.assign(idx(cluster.size()), 0);
  }
}

void ClusterLifecycle::start() {
  assert(!started_ && "lifecycle started twice");
  started_ = true;
  const sim::Time now = cluster_.engine().now();
  for (topo::Rank r = 0; r < cluster_.size(); ++r) {
    ctl_[idx(r)].last_heard.assign(idx(cluster_.size()), now);
    via::KernelAgent& ag = cluster_.agent(r);
    ag.set_control_handler([this, r](const via::ViaHeader& h, net::NodeId src,
                                     const buf::Slice& payload) {
      if (stopped_) return;
      if (h.kind == via::MsgKind::kHeartbeat) {
        on_heartbeat(r, static_cast<topo::Rank>(src), h);
      } else if (h.kind == via::MsgKind::kHeartbeatAck) {
        on_heartbeat_ack(r, static_cast<topo::Rank>(src), h);
      } else if (h.kind == via::MsgKind::kLinkState) {
        on_linkstate_frame(r, payload.data(), payload.size());
      } else if (h.kind == via::MsgKind::kReconcile) {
        on_reconcile(r, h.immediate);
      } else {
        on_membership_frame(r, payload.data(), payload.size());
      }
    });
    // Go-back-N retransmits toward a direct neighbour are loss evidence for
    // the port serving it — the data path's contribution to link scoring.
    ag.set_retransmit_observer([this, r](net::NodeId remote) {
      if (stopped_) return;
      const auto d = dir_toward(r, static_cast<topo::Rank>(remote));
      if (d) quality_[idx(r)].on_retransmit(d->index());
    });
    // Carrier restoration is the heal trigger: a link coming up toward a
    // rank this node believes dead starts the reconciliation sequence.
    ag.set_link_observer([this, r](topo::Dir d, bool up) {
      if (up && started_ && !stopped_) on_carrier_up(r, d);
    });
    ag.listen(kService);
  }
  cluster_.set_crash_hooks([this](topo::Rank r) { on_crash(r); },
                           [this](topo::Rank r) { on_restart(r); });
  for (topo::Rank r = 0; r < cluster_.size(); ++r) {
    // Detector loops belong to their node's logical process: their timers and
    // sends must shard with the node, not pile onto the control LP.
    sim::LpScope scope(cluster_.engine(), cluster_.lp_of(r));
    heartbeat_loop(r, ctl_[idx(r)].gen).detach();
    monitor_loop(r, ctl_[idx(r)].gen).detach();
    accept_loop(r).detach();
  }
}

void ClusterLifecycle::stop() { stopped_ = true; }

void ClusterLifecycle::subscribe(topo::Rank observer, Observer fn) {
  observers_.at(idx(observer)).push_back(std::move(fn));
}

bool ClusterLifecycle::survivors_agree(topo::Rank subject, Liveness s) const {
  for (topo::Rank r = 0; r < cluster_.size(); ++r) {
    if (r == subject) continue;
    if (!cluster_.agent(r).powered()) continue;
    if (views_[idx(r)].at(subject).state != s) return false;
  }
  return true;
}

bool ClusterLifecycle::all_alive() const {
  for (topo::Rank r = 0; r < cluster_.size(); ++r) {
    if (!cluster_.agent(r).powered()) return false;
    if (views_[idx(r)].count(Liveness::kAlive) != cluster_.size()) return false;
  }
  return true;
}

// -- crash hooks (called by GigeMeshCluster at the fault instant) -----------

void ClusterLifecycle::on_crash(topo::Rank r) {
  if (!started_) return;
  crash_time_[idx(r)] = cluster_.engine().now();
  // Retire the dead node's detector loops at their next tick; its handler
  // sees no frames while unpowered, so its stale view simply freezes.
  ++ctl_[idx(r)].gen;
}

void ClusterLifecycle::on_restart(topo::Rank r) {
  if (!started_) return;
  const sim::Time now = cluster_.engine().now();
  restart_time_[idx(r)] = now;
  const std::uint64_t gen = ++ctl_[idx(r)].gen;
  // The silence clocks restart with the node; without this the monitor would
  // re-declare every neighbour dead from pre-crash timestamps.
  ctl_[idx(r)].last_heard.assign(idx(cluster_.size()), now);
  // Probe/arrival bookkeeping and port scores restart with the hardware;
  // link_version stays monotone so fresh-life floods outrank stale echoes.
  for (DirHealth& dh : ctl_[idx(r)].dirs) dh = DirHealth{};
  quality_[idx(r)] = net::LinkQuality(params_.quality, kMaxPorts);
  link_seen_[idx(r)].assign(idx(cluster_.size()), 0);
  link_seen_[idx(r)][idx(r)] = ctl_[idx(r)].link_version;
  remote_degraded_[idx(r)].assign(idx(cluster_.size()), 0);
  ctl_[idx(r)].ls_pending.assign(idx(cluster_.size()), 0);
  ctl_[idx(r)].ls_any = false;
  sim::LpScope scope(cluster_.engine(), cluster_.lp_of(r));
  heartbeat_loop(r, gen).detach();
  monitor_loop(r, gen).detach();
  rejoin(r, gen).detach();
}

// -- detector coroutines ----------------------------------------------------

sim::Task<> ClusterLifecycle::heartbeat_loop(topo::Rank r, std::uint64_t gen) {
  sim::Engine& eng = cluster_.engine();
  const topo::Torus& t = cluster_.torus();
  for (;;) {
    co_await sim::delay(eng, params_.heartbeat_period);
    if (stopped_ || gen != ctl_[idx(r)].gen) co_return;
    via::KernelAgent& ag = cluster_.agent(r);
    if (!ag.powered()) co_return;
    const sim::Time now = eng.now();
    for (topo::Dir d : t.directions(t.coord(r))) {
      const auto n = t.neighbor(r, d);
      if (!n) continue;
      // No point probing a confirmed corpse; rejoin news revives the probe.
      if (views_[idx(r)].at(*n).state == Liveness::kDead) continue;
      if ((ag.failed_dirs() & topo::dir_bit(d)) != 0) {
        // Carrier is down this way but the neighbour is not condemned (the
        // link-flap detour case): keep its silence clock fed over whatever
        // route still reaches it. msg_id 0 marks a non-probe — no ack.
        ag.send_control(*n, via::MsgKind::kHeartbeat, {});
        continue;
      }
      // Pinned probe: it must exercise the exact cable it monitors even when
      // quality scoring routes data traffic around it — a probe that detours
      // would mask the recovery the hysteresis clear threshold waits for.
      // msg_id packs (dir index << 24 | seq) so the routed ack, which may
      // arrive over any port, still credits the port that was probed.
      DirHealth& dh = ctl_[idx(r)].dirs[static_cast<std::size_t>(d.index())];
      const auto seq = static_cast<std::uint32_t>(++dh.probe_seq & 0xFFFFFFu);
      ag.send_control_dir(
          d, via::MsgKind::kHeartbeat, {}, static_cast<std::uint64_t>(now),
          (static_cast<std::uint32_t>(d.index()) << 24) | seq);
    }
  }
}

sim::Task<> ClusterLifecycle::monitor_loop(topo::Rank r, std::uint64_t gen) {
  sim::Engine& eng = cluster_.engine();
  const topo::Torus& t = cluster_.torus();
  for (;;) {
    co_await sim::delay(eng, params_.heartbeat_period);
    if (stopped_ || gen != ctl_[idx(r)].gen) co_return;
    via::KernelAgent& ag = cluster_.agent(r);
    if (!ag.powered()) co_return;
    const sim::Time now = eng.now();
    NodeCtl& ctl = ctl_[idx(r)];
    net::LinkQuality& lq = quality_[idx(r)];
    // A membership flood storm within the last tick means the wire is busy
    // carrying the cluster's gossip, not dropping probes: acks queue for a
    // tick or more behind hundreds of flood frames. Sampling resumes one
    // quiet tick later — a probe whose ack did land late has advanced
    // probe_ack_seq by then and produces no timeout at all.
    const bool flood_storm =
        ctl.last_member_news >= 0 &&
        now - ctl.last_member_news <= params_.heartbeat_period;
    for (topo::Dir d : t.directions(t.coord(r))) {
      const auto n = t.neighbor(r, d);
      if (!n) continue;
      DirHealth& dh = ctl.dirs[static_cast<std::size_t>(d.index())];
      // Overdue-probe sampling: a probe sent at least two full ticks ago and
      // still unacked is a loss observation. Only the newest such probe is
      // sampled per tick — the EWMA wants a loss *rate*, not a backlog
      // count — and the two-tick grace keeps a storm-delayed ack (membership
      // floods at partition onset queue control frames for most of a tick)
      // from reading as wire loss.
      if (!flood_storm && (ag.failed_dirs() & topo::dir_bit(d)) == 0) {
        const std::uint64_t due = dh.seq_two_ticks_ago;
        if (due > dh.probe_ack_seq && due > dh.timeout_checked) {
          lq.on_probe_timeout(d.index());
          dh.timeout_checked = due;
        }
      }
      dh.seq_two_ticks_ago = dh.seq_at_last_tick;
      dh.seq_at_last_tick = dh.probe_seq;
      const Liveness st = views_[idx(r)].at(*n).state;
      if (st == Liveness::kDead || st == Liveness::kRejoining) continue;
      const sim::Duration silent = now - ctl.last_heard[idx(*n)];
      const double phi = phi_level(ctl, d.index(), silent);
      if (phi >= params_.phi_dead) {
        {
          chk::SimLockGuard g(shared_mu_);
          phi_counters_.inc("dead_declared");
        }
        declare(r, *n, Liveness::kDead);
      } else if (phi >= params_.phi_suspect && st == Liveness::kAlive) {
        phi_suspect_hist_.add(static_cast<sim::Duration>(phi * 1000));
        {
          chk::SimLockGuard g(shared_mu_);
          phi_counters_.inc("suspects");
        }
        declare(r, *n, Liveness::kSuspect);
      }
    }
    // Hysteresis re-score; on any mask flip, retarget local egress and flood
    // the new mask so remote route tables can dodge this node's sick ports.
    if (lq.update_masks()) {
      const auto deg = static_cast<topo::DirMask>(lq.degraded_mask());
      const auto blk = static_cast<topo::DirMask>(lq.black_mask());
      ag.set_quality_masks(deg, blk);
      {
        chk::SimLockGuard g(shared_mu_);
        score_counters_.inc("mask_updates");
      }
      process_link_record(r, LinkRecord{r, static_cast<std::uint32_t>(
                                               deg | blk),
                                        ++ctl.link_version});
    }
    // Flush the pending link-state floods as one batched frame per live
    // neighbour. Coalescing to the tick bounds the fan-out at six frames
    // per node per period no matter how hard the records churn — the
    // re-flood must never become the congestion it is reporting on.
    if (ctl.ls_any) {
      ctl.ls_any = false;
      std::vector<LinkRecord> batch;
      for (topo::Rank q = 0; q < cluster_.size(); ++q) {
        if (ctl.ls_pending[idx(q)] == 0) continue;
        ctl.ls_pending[idx(q)] = 0;
        batch.push_back(
            LinkRecord{q,
                       static_cast<std::uint32_t>(remote_degraded_[idx(r)][idx(q)]),
                       link_seen_[idx(r)][idx(q)]});
      }
      constexpr std::size_t kLsBatch = 64;  // 16 B/record — stays under MTU
      for (std::size_t off = 0; off < batch.size(); off += kLsBatch) {
        const std::size_t cnt = std::min(kLsBatch, batch.size() - off);
        const std::vector<LinkRecord> chunk(
            batch.begin() + static_cast<std::ptrdiff_t>(off),
            batch.begin() + static_cast<std::ptrdiff_t>(off + cnt));
        for (topo::Dir d : t.directions(t.coord(r))) {
          const auto n = t.neighbor(r, d);
          if (!n) continue;
          if (views_[idx(r)].at(*n).state == Liveness::kDead) continue;
          ag.send_control(*n, via::MsgKind::kLinkState,
                          buf::Pool::instance().adopt(encode_links(chunk)));
        }
      }
    }
    if (ctl.routes_dirty) {
      ctl.routes_dirty = false;
      refresh_routes(r);
    }
  }
}

double ClusterLifecycle::phi_level(const NodeCtl& ctl, int dir_index,
                                   sim::Duration silent) const {
  const DirHealth& dh = ctl.dirs[static_cast<std::size_t>(dir_index)];
  // Exponential-arrival phi: phi(t) = -log10 P(silence >= t) = t / (mean *
  // ln 10). The mean never drops below the configured period — two probes
  // landing the same tick must not tighten the detector below its design
  // cadence — but a lossy link stretching real arrivals loosens it.
  double mean = static_cast<double>(params_.heartbeat_period);
  if (dh.nwin > 0) {
    double sum = 0;
    for (std::size_t i = 0; i < dh.nwin; ++i) {
      sum += static_cast<double>(dh.window[i]);
    }
    mean = std::max(mean, sum / static_cast<double>(dh.nwin));
  }
  return 0.43429448190325176 * static_cast<double>(silent) / mean;
}

double ClusterLifecycle::phi(topo::Rank r, topo::Dir d) const {
  const auto n = cluster_.torus().neighbor(r, d);
  if (!n) return 0;
  const NodeCtl& ctl = ctl_[idx(r)];
  const sim::Duration silent =
      cluster_.engine().now() - ctl.last_heard[idx(*n)];
  return phi_level(ctl, d.index(), silent);
}

std::optional<topo::Dir> ClusterLifecycle::dir_toward(topo::Rank from,
                                                      topo::Rank to) const {
  const topo::Torus& t = cluster_.torus();
  for (topo::Dir d : t.directions(t.coord(from))) {
    const auto n = t.neighbor(from, d);
    if (n && *n == to) return d;
  }
  return std::nullopt;
}

// -- rejoin handshake -------------------------------------------------------

sim::Task<> ClusterLifecycle::accept_loop(topo::Rank r) {
  via::KernelAgent& ag = cluster_.agent(r);
  for (;;) {
    via::Vi* vi = co_await ag.accept(kService);
    if (vi == nullptr) co_return;
    vi->post_recv(64);
    vi->post_recv(64);
    drain_completions(*vi).detach();
  }
}

sim::Task<> ClusterLifecycle::drain_completions(via::Vi& vi) {
  for (;;) {
    const via::RecvCompletion c = co_await vi.recv_completion();
    if (c.status != via::ViError::kNone) co_return;
  }
}

sim::Task<> ClusterLifecycle::rejoin(topo::Rank r, std::uint64_t gen) {
  via::KernelAgent& ag = cluster_.agent(r);
  const topo::Torus& t = cluster_.torus();
  // Announce the new incarnation before the handshakes so survivors stop
  // routing around this coordinate as the connection traffic lands.
  process_record(
      r, MemberRecord{r, MemberState{Liveness::kRejoining, ag.epoch(), 1}});
  for (topo::Dir d : t.directions(t.coord(r))) {
    if (stopped_ || gen != ctl_[idx(r)].gen) co_return;
    const auto n = t.neighbor(r, d);
    if (!n) continue;
    if (views_[idx(r)].at(*n).state == Liveness::kDead) continue;
    // Fresh-epoch ConnReq/ConnAck with each live neighbour; the hello is the
    // first message of the new sequence space (seq restarts from zero), so a
    // completed handshake doubles as a sequence-resync proof.
    via::Vi* vi = co_await ag.connect(*n, kService);
    if (vi == nullptr || vi->failed()) continue;
    std::vector<std::byte> hello(8, std::byte{0x5a});
    co_await vi->send(std::move(hello), /*immediate=*/ag.epoch());
  }
  if (stopped_ || gen != ctl_[idx(r)].gen) co_return;
  process_record(
      r, MemberRecord{r, MemberState{Liveness::kAlive, ag.epoch(), 2}});
}

// -- membership plumbing ----------------------------------------------------

void ClusterLifecycle::on_heartbeat(topo::Rank observer, topo::Rank src,
                                    const via::ViaHeader& h) {
  const sim::Time now = cluster_.engine().now();
  NodeCtl& ctl = ctl_[idx(observer)];
  if (h.msg_id != 0) {
    if (const auto d = dir_toward(observer, src)) {
      DirHealth& dh = ctl.dirs[static_cast<std::size_t>(d->index())];
      if (h.msg_id == dh.last_probe_msg) {
        // A flaky wire duplicated the probe frame in flight; the first
        // arrival already fed the window and was acked.
        chk::SimLockGuard g(shared_mu_);
        phi_counters_.inc("dup_probes_ignored");
        return;
      }
      dh.last_probe_msg = h.msg_id;
      if (dh.last_arrival >= 0) {
        dh.window[dh.wpos] = now - dh.last_arrival;
        dh.wpos = (dh.wpos + 1) % kPhiWindow;
        if (dh.nwin < kPhiWindow) ++dh.nwin;
      }
      dh.last_arrival = now;
    }
    // Echo the probe. The ack routes normally (it may detour around a black
    // port) and carries the probe's msg_id and send timestamp back so the
    // prober can credit the right port with an RTT sample.
    cluster_.agent(observer).send_control(src, via::MsgKind::kHeartbeatAck,
                                          {}, h.immediate, h.msg_id);
  }
  ctl.last_heard[idx(src)] = now;
  // A heartbeat refutes suspicion directly; death needs the rejoin protocol.
  if (views_[idx(observer)].at(src).state == Liveness::kSuspect) {
    {
      chk::SimLockGuard g(shared_mu_);
      phi_counters_.inc("refutations");
    }
    declare(observer, src, Liveness::kAlive);
  }
}

void ClusterLifecycle::on_heartbeat_ack(topo::Rank observer, topo::Rank src,
                                        const via::ViaHeader& h) {
  const sim::Time now = cluster_.engine().now();
  NodeCtl& ctl = ctl_[idx(observer)];
  const int di = static_cast<int>(h.msg_id >> 24);
  const std::uint64_t seq = h.msg_id & 0xFFFFFFu;
  if (seq != 0 && di < kMaxPorts) {
    DirHealth& dh = ctl.dirs[static_cast<std::size_t>(di)];
    if (seq > dh.probe_ack_seq) {
      dh.probe_ack_seq = seq;
      quality_[idx(observer)].on_probe_ack(
          di, now - static_cast<sim::Time>(h.immediate));
    }
  }
  // The ack is proof of life even when it detoured around a black port —
  // this is what keeps a one-directionally severed neighbour suspected but
  // never condemned.
  ctl.last_heard[idx(src)] = now;
  if (views_[idx(observer)].at(src).state == Liveness::kSuspect) {
    {
      chk::SimLockGuard g(shared_mu_);
      phi_counters_.inc("refutations");
    }
    declare(observer, src, Liveness::kAlive);
  }
}

void ClusterLifecycle::on_linkstate_frame(topo::Rank observer,
                                          const std::byte* data,
                                          std::size_t bytes) {
  for (const LinkRecord& rec : decode_links(data, bytes)) {
    process_link_record(observer, rec);
  }
}

void ClusterLifecycle::process_link_record(topo::Rank observer,
                                           const LinkRecord& rec) {
  if (rec.rank < 0 || rec.rank >= cluster_.size()) return;
  std::uint64_t& seen = link_seen_[idx(observer)][idx(rec.rank)];
  if (rec.version <= seen) return;  // stale — the flood terminates here
  seen = rec.version;
  remote_degraded_[idx(observer)][idx(rec.rank)] =
      static_cast<topo::DirMask>(rec.mask);
  // Both the route recompute and the re-flood are deferred to the next
  // monitor tick (routes_dirty / ls_pending): a storm of applied records
  // coalesces into one recompute and one batched flood per period instead
  // of a per-record fan-out that feeds the storm.
  NodeCtl& ctl = ctl_[idx(observer)];
  ctl.routes_dirty = true;
  ctl.ls_pending[idx(rec.rank)] = 1;
  ctl.ls_any = true;
  {
    chk::SimLockGuard g(shared_mu_);
    score_counters_.inc("linkstate_applied");
  }
}

void ClusterLifecycle::on_membership_frame(topo::Rank observer,
                                           const std::byte* data,
                                           std::size_t bytes) {
  for (const MemberRecord& rec : MembershipView::decode(data, bytes)) {
    process_record(observer, rec);
  }
}

void ClusterLifecycle::declare(topo::Rank observer, topo::Rank subject,
                               Liveness to) {
  const MemberState& cur = views_[idx(observer)].at(subject);
  process_record(observer,
                 MemberRecord{subject, MemberState{to, cur.incarnation,
                                                   cur.version + 1}});
}

void ClusterLifecycle::process_record(topo::Rank observer,
                                      const MemberRecord& rec) {
  MembershipView& view = views_[idx(observer)];
  const MemberState prev_st = view.at(rec.rank);
  const Liveness prev = prev_st.state;
  if (!view.apply(rec)) return;  // stale — flood terminates here
  const Liveness to = rec.st.state;
  const sim::Time now = cluster_.engine().now();
  ctl_[idx(observer)].last_member_news = now;
  via::KernelAgent& ag = cluster_.agent(observer);

  if (observer != rec.rank && rec.st.incarnation > prev_st.incarnation) {
    // The subject flushed or rebooted since these channels were built; any
    // VI still bound to the older epoch can never complete a handshake.
    ag.peer_reincarnated(rec.rank, rec.st.incarnation);
  }
  if ((prev == Liveness::kDead) != (to == Liveness::kDead)) {
    refresh_routes(observer);
  }
  if (to == Liveness::kDead && prev != Liveness::kDead) {
    // Fast-fail pending traffic instead of burning the retransmit budget.
    ag.peer_declared_dead(rec.rank);
    if (observer != rec.rank && crash_time_[idx(rec.rank)] >= 0) {
      detect_hist_.add(now - crash_time_[idx(rec.rank)]);
    }
  }
  if (to == Liveness::kAlive || to == Liveness::kRejoining) {
    // Fresh life restarts the silence clock, else the monitor re-kills it
    // from a timestamp predating the outage.
    ctl_[idx(observer)].last_heard[idx(rec.rank)] = now;
  }
  if (to == Liveness::kAlive && prev != Liveness::kAlive &&
      observer != rec.rank && restart_time_[idx(rec.rank)] >= 0) {
    rejoin_hist_.add(now - restart_time_[idx(rec.rank)]);
  }
  update_quorum(observer);
  for (const Observer& fn : observers_[idx(observer)]) fn(rec.rank, to);

  // Re-flood news to every live neighbour; apply-is-news gating above is
  // what terminates the flood.
  const topo::Torus& t = cluster_.torus();
  for (topo::Dir d : t.directions(t.coord(observer))) {
    const auto n = t.neighbor(observer, d);
    if (!n) continue;
    if (views_[idx(observer)].at(*n).state == Liveness::kDead) continue;
    ag.send_control(*n, via::MsgKind::kMembership,
                    buf::Pool::instance().adopt(MembershipView::encode({rec})));
  }

  if (to == Liveness::kRejoining && prev == Liveness::kDead &&
      observer != rec.rank && t.distance(observer, rec.rank) == 1) {
    // A dead-believed direct neighbour announced a new life: the healed
    // boundary runs between us. Push our side's story across it so the
    // merge is bidirectional — this is how real deaths behind a partition
    // reach the reconciled side.
    push_view(observer, rec.rank);
  }
  chk::SimLockGuard g(shared_mu_);
  if (heal_start_ >= 0 && heal_pending_[idx(observer)] &&
      view.count(Liveness::kDead) == 0) {
    heal_pending_[idx(observer)] = false;
    heal_conv_hist_.add(now - heal_start_);
    if (--heal_remaining_ == 0) heal_start_ = -1;
  }
}

void ClusterLifecycle::refresh_routes(topo::Rank observer) {
  const std::vector<bool> dead = views_[idx(observer)].dead_set();
  bool any_dead = false;
  for (const bool b : dead) any_dead = any_dead || b;
  const std::vector<topo::DirMask>& degraded = remote_degraded_[idx(observer)];
  bool any_deg = false;
  for (const topo::DirMask m : degraded) any_deg = any_deg || m != 0;
  via::KernelAgent& ag = cluster_.agent(observer);
  if (!any_dead && !any_deg) {
    ag.clear_route_table();
  } else if (any_deg) {
    // Quality-aware table: among minimal paths, dodge links whose owners
    // flooded them as degraded/black. Keyed into the shared cache by the
    // full (dead set, degraded-mask map) identity.
    ag.set_route_table(
        route_cache_.get(cluster_.torus(), observer, dead, degraded));
    chk::SimLockGuard g(shared_mu_);
    score_counters_.inc("quality_route_refreshes");
  } else {
    // Shared cache: during partition/heal storms many nodes pass through
    // identical dead sets, and BFS route tables are the hot part.
    ag.set_route_table(route_cache_.get(cluster_.torus(), observer, dead));
  }
}

// -- partition tolerance ------------------------------------------------------

void ClusterLifecycle::update_quorum(topo::Rank r) {
  const QuorumSide s = quorum_side(views_[idx(r)]);
  if (s == side_[idx(r)]) return;
  side_[idx(r)] = s;
  via::KernelAgent& ag = cluster_.agent(r);
  const sim::Time now = cluster_.engine().now();
  if (s == QuorumSide::kMinority) {
    minority_since_[idx(r)] = now;
    ag.set_minority(true);
    chk::SimLockGuard g(shared_mu_);
    counters_.inc("minority_transitions");
  } else {
    ag.set_minority(false);
    {
      chk::SimLockGuard g(shared_mu_);
      counters_.inc("primary_restorations");
    }
    if (minority_since_[idx(r)] >= 0) {
      partition_duration_hist_.add(now - minority_since_[idx(r)]);
      minority_since_[idx(r)] = -1;
    }
  }
}

void ClusterLifecycle::on_carrier_up(topo::Rank r, topo::Dir d) {
  via::KernelAgent& ag = cluster_.agent(r);
  if (!ag.powered()) return;
  const auto n = cluster_.torus().neighbor(r, d);
  if (!n) return;
  if (views_[idx(r)].at(*n).state != Liveness::kDead) return;
  // A link coming back up toward a believed-dead rank is heal evidence —
  // either a partition heal or a node restart; both converge through the
  // same flood merge, so both feed the heal-convergence histogram.
  {
    chk::SimLockGuard g(shared_mu_);
    counters_.inc("carrier_heal_events");
    if (heal_start_ < 0) {
      heal_start_ = cluster_.engine().now();
      heal_remaining_ = 0;
      for (topo::Rank q = 0; q < cluster_.size(); ++q) {
        const bool pending = cluster_.agent(q).powered() &&
                             views_[idx(q)].count(Liveness::kDead) > 0;
        heal_pending_[idx(q)] = pending;
        if (pending) ++heal_remaining_;
      }
    }
  }
  if (side_[idx(r)] == QuorumSide::kMinority) {
    // Minority nodes own the heal: start (or join) the reconcile wave. The
    // primary side stays passive here — its half of the merge happens when
    // the minority's kRejoining records arrive (push_view above).
    on_reconcile(r, ctl_[idx(r)].reconcile_gen + 1);
  }
}

void ClusterLifecycle::on_reconcile(topo::Rank r, std::uint64_t gen) {
  NodeCtl& ctl = ctl_[idx(r)];
  if (gen <= ctl.reconcile_gen) return;  // wave already seen — flood gate
  via::KernelAgent& ag = cluster_.agent(r);
  if (!ag.powered()) return;
  ctl.reconcile_gen = gen;
  {
    chk::SimLockGuard g(shared_mu_);
    counters_.inc("reconcile_waves");
  }
  if (side_[idx(r)] == QuorumSide::kMinority) partition_rejoin(r);
  // Re-flood so the wave reaches minority nodes with no healed link of
  // their own. Runs after partition_rejoin: a reconciled node's route
  // table no longer drops frames toward cross-boundary neighbours.
  const topo::Torus& t = cluster_.torus();
  for (topo::Dir dd : t.directions(t.coord(r))) {
    const auto nb = t.neighbor(r, dd);
    if (!nb) continue;
    if (views_[idx(r)].at(*nb).state == Liveness::kDead) continue;
    ag.send_control(*nb, via::MsgKind::kReconcile, {}, gen);
  }
}

void ClusterLifecycle::partition_rejoin(topo::Rank r) {
  via::KernelAgent& ag = cluster_.agent(r);
  const sim::Time now = cluster_.engine().now();
  {
    chk::SimLockGuard g(shared_mu_);
    counters_.inc("partition_rejoins");
  }
  // 1. Flush every VI under a bumped incarnation epoch: stale retransmits
  //    and half-open channels from the partition era identify themselves
  //    against the new epoch instead of corrupting fresh traffic.
  ag.partition_flush();
  // 2. Retract the partition-era death verdicts. A retracted entry loses to
  //    any authored record, so the post-heal flood merge re-applies the
  //    other side's story — including real deaths behind the partition —
  //    as news. Observers hear kAlive so upper layers reset per-peer state.
  MembershipView& v = views_[idx(r)];
  for (topo::Rank q = 0; q < cluster_.size(); ++q) {
    if (v.at(q).state != Liveness::kDead) continue;
    v.retract(q);
    // Without a fresh silence clock the monitor would re-kill q from its
    // partition-era timestamp before the first healed heartbeat lands.
    ctl_[idx(r)].last_heard[idx(q)] = now;
    for (const Observer& fn : observers_[idx(r)]) fn(q, Liveness::kAlive);
  }
  // 3. Avoidance tables cleared; the view is dead-free again, so the
  //    quorum flips back and the minority send/dial gates lift.
  refresh_routes(r);
  update_quorum(r);
  {
    chk::SimLockGuard g(shared_mu_);
    if (heal_start_ >= 0 && heal_pending_[idx(r)]) {
      heal_pending_[idx(r)] = false;
      heal_conv_hist_.add(now - heal_start_);
      if (--heal_remaining_ == 0) heal_start_ = -1;
    }
  }
  // 4. The rejoin machinery under the bumped epoch: kRejoining flood,
  //    fresh-epoch handshakes with every neighbour, kAlive flood.
  rejoin(r, ctl_[idx(r)].gen).detach();
}

void ClusterLifecycle::push_view(topo::Rank from, topo::Rank to) {
  via::KernelAgent& ag = cluster_.agent(from);
  if (!ag.powered()) return;
  {
    chk::SimLockGuard g(shared_mu_);
    counters_.inc("view_pushes");
  }
  // Batched so each control frame stays under the wire MTU.
  constexpr std::size_t kBatch = 64;
  const MembershipView& v = views_[idx(from)];
  std::vector<MemberRecord> batch;
  batch.reserve(kBatch);
  for (topo::Rank q = 0; q < cluster_.size(); ++q) {
    if (q == to) continue;  // the peer outranks everyone on its own story
    const MemberState& st = v.at(q);
    if (st.state == Liveness::kAlive && st.incarnation == 0 &&
        st.version == 0) {
      continue;  // default record — can never be news
    }
    batch.push_back(MemberRecord{q, st});
    if (batch.size() == kBatch) {
      ag.send_control(
          to, via::MsgKind::kMembership,
          buf::Pool::instance().adopt(MembershipView::encode(batch)));
      batch.clear();
    }
  }
  if (!batch.empty()) {
    ag.send_control(
        to, via::MsgKind::kMembership,
        buf::Pool::instance().adopt(MembershipView::encode(batch)));
  }
}

}  // namespace meshmp::cluster
