#include "cluster/lifecycle.hpp"

#include <cassert>
#include <utility>

#include "buf/pool.hpp"
#include "sim/sync.hpp"
#include "via/header.hpp"

namespace meshmp::cluster {

namespace {
constexpr std::size_t idx(topo::Rank r) { return static_cast<std::size_t>(r); }
}  // namespace

ClusterLifecycle::ClusterLifecycle(GigeMeshCluster& cluster,
                                   LifecycleParams params)
    : cluster_(cluster),
      params_(params),
      ctl_(idx(cluster.size())),
      observers_(idx(cluster.size())),
      crash_time_(idx(cluster.size()), -1),
      restart_time_(idx(cluster.size()), -1),
      detect_hist_(
          obs::Registry::instance().histogram("cluster.detection_latency_ns")),
      rejoin_hist_(
          obs::Registry::instance().histogram("cluster.rejoin_latency_ns")) {
  views_.reserve(idx(cluster.size()));
  for (topo::Rank r = 0; r < cluster.size(); ++r) {
    views_.emplace_back(cluster.size());
  }
}

void ClusterLifecycle::start() {
  assert(!started_ && "lifecycle started twice");
  started_ = true;
  const sim::Time now = cluster_.engine().now();
  for (topo::Rank r = 0; r < cluster_.size(); ++r) {
    ctl_[idx(r)].last_heard.assign(idx(cluster_.size()), now);
    via::KernelAgent& ag = cluster_.agent(r);
    ag.set_control_handler([this, r](const via::ViaHeader& h, net::NodeId src,
                                     const buf::Slice& payload) {
      if (stopped_) return;
      if (h.kind == via::MsgKind::kHeartbeat) {
        on_heartbeat(r, static_cast<topo::Rank>(src));
      } else {
        on_membership_frame(r, payload.data(), payload.size());
      }
    });
    ag.listen(kService);
  }
  cluster_.set_crash_hooks([this](topo::Rank r) { on_crash(r); },
                           [this](topo::Rank r) { on_restart(r); });
  for (topo::Rank r = 0; r < cluster_.size(); ++r) {
    heartbeat_loop(r, ctl_[idx(r)].gen).detach();
    monitor_loop(r, ctl_[idx(r)].gen).detach();
    accept_loop(r).detach();
  }
}

void ClusterLifecycle::stop() { stopped_ = true; }

void ClusterLifecycle::subscribe(topo::Rank observer, Observer fn) {
  observers_.at(idx(observer)).push_back(std::move(fn));
}

bool ClusterLifecycle::survivors_agree(topo::Rank subject, Liveness s) const {
  for (topo::Rank r = 0; r < cluster_.size(); ++r) {
    if (r == subject) continue;
    if (!cluster_.agent(r).powered()) continue;
    if (views_[idx(r)].at(subject).state != s) return false;
  }
  return true;
}

bool ClusterLifecycle::all_alive() const {
  for (topo::Rank r = 0; r < cluster_.size(); ++r) {
    if (!cluster_.agent(r).powered()) return false;
    if (views_[idx(r)].count(Liveness::kAlive) != cluster_.size()) return false;
  }
  return true;
}

// -- crash hooks (called by GigeMeshCluster at the fault instant) -----------

void ClusterLifecycle::on_crash(topo::Rank r) {
  if (!started_) return;
  crash_time_[idx(r)] = cluster_.engine().now();
  // Retire the dead node's detector loops at their next tick; its handler
  // sees no frames while unpowered, so its stale view simply freezes.
  ++ctl_[idx(r)].gen;
}

void ClusterLifecycle::on_restart(topo::Rank r) {
  if (!started_) return;
  const sim::Time now = cluster_.engine().now();
  restart_time_[idx(r)] = now;
  const std::uint64_t gen = ++ctl_[idx(r)].gen;
  // The silence clocks restart with the node; without this the monitor would
  // re-declare every neighbour dead from pre-crash timestamps.
  ctl_[idx(r)].last_heard.assign(idx(cluster_.size()), now);
  heartbeat_loop(r, gen).detach();
  monitor_loop(r, gen).detach();
  rejoin(r, gen).detach();
}

// -- detector coroutines ----------------------------------------------------

sim::Task<> ClusterLifecycle::heartbeat_loop(topo::Rank r, std::uint64_t gen) {
  sim::Engine& eng = cluster_.engine();
  const topo::Torus& t = cluster_.torus();
  for (;;) {
    co_await sim::delay(eng, params_.heartbeat_period);
    if (stopped_ || gen != ctl_[idx(r)].gen) co_return;
    via::KernelAgent& ag = cluster_.agent(r);
    if (!ag.powered()) co_return;
    for (topo::Dir d : t.directions(t.coord(r))) {
      const auto n = t.neighbor(r, d);
      if (!n) continue;
      // No point probing a confirmed corpse; rejoin news revives the probe.
      if (views_[idx(r)].at(*n).state == Liveness::kDead) continue;
      ag.send_control(*n, via::MsgKind::kHeartbeat, {});
    }
  }
}

sim::Task<> ClusterLifecycle::monitor_loop(topo::Rank r, std::uint64_t gen) {
  sim::Engine& eng = cluster_.engine();
  const topo::Torus& t = cluster_.torus();
  for (;;) {
    co_await sim::delay(eng, params_.heartbeat_period);
    if (stopped_ || gen != ctl_[idx(r)].gen) co_return;
    if (!cluster_.agent(r).powered()) co_return;
    const sim::Time now = eng.now();
    for (topo::Dir d : t.directions(t.coord(r))) {
      const auto n = t.neighbor(r, d);
      if (!n) continue;
      const Liveness st = views_[idx(r)].at(*n).state;
      if (st == Liveness::kDead || st == Liveness::kRejoining) continue;
      const sim::Duration silent = now - ctl_[idx(r)].last_heard[idx(*n)];
      if (silent >= params_.dead_after) {
        declare(r, *n, Liveness::kDead);
      } else if (silent >= params_.suspect_after && st == Liveness::kAlive) {
        declare(r, *n, Liveness::kSuspect);
      }
    }
  }
}

// -- rejoin handshake -------------------------------------------------------

sim::Task<> ClusterLifecycle::accept_loop(topo::Rank r) {
  via::KernelAgent& ag = cluster_.agent(r);
  for (;;) {
    via::Vi* vi = co_await ag.accept(kService);
    if (vi == nullptr) co_return;
    vi->post_recv(64);
    vi->post_recv(64);
    drain_completions(*vi).detach();
  }
}

sim::Task<> ClusterLifecycle::drain_completions(via::Vi& vi) {
  for (;;) {
    const via::RecvCompletion c = co_await vi.recv_completion();
    if (c.status != via::ViError::kNone) co_return;
  }
}

sim::Task<> ClusterLifecycle::rejoin(topo::Rank r, std::uint64_t gen) {
  via::KernelAgent& ag = cluster_.agent(r);
  const topo::Torus& t = cluster_.torus();
  // Announce the new incarnation before the handshakes so survivors stop
  // routing around this coordinate as the connection traffic lands.
  process_record(
      r, MemberRecord{r, MemberState{Liveness::kRejoining, ag.epoch(), 1}});
  for (topo::Dir d : t.directions(t.coord(r))) {
    if (stopped_ || gen != ctl_[idx(r)].gen) co_return;
    const auto n = t.neighbor(r, d);
    if (!n) continue;
    if (views_[idx(r)].at(*n).state == Liveness::kDead) continue;
    // Fresh-epoch ConnReq/ConnAck with each live neighbour; the hello is the
    // first message of the new sequence space (seq restarts from zero), so a
    // completed handshake doubles as a sequence-resync proof.
    via::Vi* vi = co_await ag.connect(*n, kService);
    if (vi == nullptr || vi->failed()) continue;
    std::vector<std::byte> hello(8, std::byte{0x5a});
    co_await vi->send(std::move(hello), /*immediate=*/ag.epoch());
  }
  if (stopped_ || gen != ctl_[idx(r)].gen) co_return;
  process_record(
      r, MemberRecord{r, MemberState{Liveness::kAlive, ag.epoch(), 2}});
}

// -- membership plumbing ----------------------------------------------------

void ClusterLifecycle::on_heartbeat(topo::Rank observer, topo::Rank src) {
  ctl_[idx(observer)].last_heard[idx(src)] = cluster_.engine().now();
  // A heartbeat refutes suspicion directly; death needs the rejoin protocol.
  if (views_[idx(observer)].at(src).state == Liveness::kSuspect) {
    declare(observer, src, Liveness::kAlive);
  }
}

void ClusterLifecycle::on_membership_frame(topo::Rank observer,
                                           const std::byte* data,
                                           std::size_t bytes) {
  for (const MemberRecord& rec : MembershipView::decode(data, bytes)) {
    process_record(observer, rec);
  }
}

void ClusterLifecycle::declare(topo::Rank observer, topo::Rank subject,
                               Liveness to) {
  const MemberState& cur = views_[idx(observer)].at(subject);
  process_record(observer,
                 MemberRecord{subject, MemberState{to, cur.incarnation,
                                                   cur.version + 1}});
}

void ClusterLifecycle::process_record(topo::Rank observer,
                                      const MemberRecord& rec) {
  MembershipView& view = views_[idx(observer)];
  const Liveness prev = view.at(rec.rank).state;
  if (!view.apply(rec)) return;  // stale — flood terminates here
  const Liveness to = rec.st.state;
  const sim::Time now = cluster_.engine().now();
  via::KernelAgent& ag = cluster_.agent(observer);

  if ((prev == Liveness::kDead) != (to == Liveness::kDead)) {
    refresh_routes(observer);
  }
  if (to == Liveness::kDead && prev != Liveness::kDead) {
    // Fast-fail pending traffic instead of burning the retransmit budget.
    ag.peer_declared_dead(rec.rank);
    if (observer != rec.rank && crash_time_[idx(rec.rank)] >= 0) {
      detect_hist_.add(now - crash_time_[idx(rec.rank)]);
    }
  }
  if (to == Liveness::kAlive || to == Liveness::kRejoining) {
    // Fresh life restarts the silence clock, else the monitor re-kills it
    // from a timestamp predating the outage.
    ctl_[idx(observer)].last_heard[idx(rec.rank)] = now;
  }
  if (to == Liveness::kAlive && prev != Liveness::kAlive &&
      observer != rec.rank && restart_time_[idx(rec.rank)] >= 0) {
    rejoin_hist_.add(now - restart_time_[idx(rec.rank)]);
  }
  for (const Observer& fn : observers_[idx(observer)]) fn(rec.rank, to);

  // Re-flood news to every live neighbour; apply-is-news gating above is
  // what terminates the flood.
  const topo::Torus& t = cluster_.torus();
  for (topo::Dir d : t.directions(t.coord(observer))) {
    const auto n = t.neighbor(observer, d);
    if (!n) continue;
    if (views_[idx(observer)].at(*n).state == Liveness::kDead) continue;
    ag.send_control(*n, via::MsgKind::kMembership,
                    buf::Pool::instance().adopt(MembershipView::encode({rec})));
  }
}

void ClusterLifecycle::refresh_routes(topo::Rank observer) {
  const std::vector<bool> dead = views_[idx(observer)].dead_set();
  bool any = false;
  for (const bool b : dead) any = any || b;
  via::KernelAgent& ag = cluster_.agent(observer);
  if (!any) {
    ag.clear_route_table();
  } else {
    ag.set_route_table(cluster_.torus().route_table_avoiding(observer, dead));
  }
}

}  // namespace meshmp::cluster
