#pragma once

// Node-failure lifecycle: heartbeat failure detection, membership flooding,
// degraded-mode routing, and rejoin — the control plane for whole-node
// crashes on the switchless mesh.
//
// Every node runs two detector coroutines: a heartbeat loop that probes each
// mesh neighbour with an unreliable kHeartbeat control frame per period, and
// a monitor loop that turns silence into kSuspect after `suspect_after` and
// kDead after `dead_after`. Transitions are flooded as MemberRecords over
// the surviving mesh (apply-is-news gating terminates the flood), so every
// survivor's MembershipView converges without any central observer — there
// is no switch, and no master, to ask.
//
// On a confirmed death each survivor recomputes a full BFS route table
// around the dead coordinate (Torus::route_table_avoiding) and installs it
// in its kernel agent, and fast-fails every VI to the dead rank so pending
// traffic error-completes instead of burning the retransmit budget. On
// restart the node's agent epoch has already been bumped; the rejoin
// coroutine floods kRejoining under the new incarnation, re-runs VI
// connection establishment with its live neighbours (fresh-epoch
// ConnReq/Ack, sequence numbers restarting from zero), then floods kAlive —
// at which point survivors heal their route tables.
//
// Detection and rejoin latencies (crash/restart sim-time to each survivor's
// view transition) are recorded into obs histograms and therefore appear in
// ClusterReport.metrics.
//
// Partition tolerance (split-brain safety): after every applied record each
// node re-evaluates the strict-majority quorum rule (membership.hpp) over
// its own view. A node whose view places it on the minority side of a split
// sets its kernel agent's minority flag — new dials and sends to
// unconnected peers fail fast with kMinorityPartition — while the primary
// side re-trees collectives over survivors and keeps serving. Healing is
// driven by carrier restoration: a node that sees a link come up toward a
// rank it believes dead either pushes its view across the boundary
// (primary) or starts a flooded kReconcile wave (minority). Reconciling
// minority nodes flush every VI under a bumped incarnation epoch, retract
// their partition-era death verdicts, clear avoidance route tables, and
// re-run the PR-5 rejoin handshake — after which the ordinary
// (incarnation, version, severity) flood merge converges both sides' views,
// including any real deaths that happened behind the partition.

#include <cstdint>
#include <functional>
#include <vector>

#include "chk/thread_annotations.hpp"
#include "cluster/gige_mesh.hpp"
#include "cluster/membership.hpp"
#include "obs/metrics.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "topo/route_cache.hpp"
#include "via/vi.hpp"

namespace meshmp::cluster {

struct LifecycleParams {
  sim::Duration heartbeat_period = 200'000;  ///< 200 us between probes
  sim::Duration suspect_after = 700'000;     ///< silence before kSuspect
  sim::Duration dead_after = 2'000'000;      ///< suspicion timeout -> kDead
};

class ClusterLifecycle {
 public:
  /// Service number the rejoin handshake dials; every node listens on it.
  static constexpr std::uint32_t kService = 0xFEEDC0DEu;

  ClusterLifecycle(GigeMeshCluster& cluster, LifecycleParams params = {});

  /// Spawns the per-node detector loops and rejoin accept loops, installs
  /// the control-frame handlers, and registers the cluster crash hooks.
  /// Call once, before the first fault fires.
  void start();
  /// Detector loops exit at their next tick, letting the engine quiesce.
  void stop();

  [[nodiscard]] const LifecycleParams& params() const noexcept {
    return params_;
  }
  /// Rank `r`'s current belief about the cluster.
  [[nodiscard]] const MembershipView& view(topo::Rank r) const {
    return views_.at(static_cast<std::size_t>(r));
  }

  /// Observer invoked on every membership transition rank `observer` applies
  /// (its own detections and flooded news alike). Used by upper layers to
  /// cancel receives or rebuild collective state on death/rejoin.
  using Observer = std::function<void(topo::Rank subject, Liveness to)>;
  void subscribe(topo::Rank observer, Observer fn);

  /// True when every powered node other than `subject` believes `subject`
  /// is in state `s` — the flood-convergence acceptance check.
  [[nodiscard]] bool survivors_agree(topo::Rank subject, Liveness s) const;
  /// True when every powered node believes every rank is alive.
  [[nodiscard]] bool all_alive() const;

  /// Which side of a split `r`'s view currently places it on.
  [[nodiscard]] QuorumSide side(topo::Rank r) const {
    return side_.at(idx_(r));
  }
  [[nodiscard]] bool is_minority(topo::Rank r) const {
    return side(r) == QuorumSide::kMinority;
  }
  /// Partition/heal bookkeeping counters (also attached to the obs registry
  /// under "cluster.partition").
  [[nodiscard]] const obs::Counters& partition_counters() const noexcept {
    return counters_;
  }

 private:
  struct NodeCtl {
    std::vector<sim::Time> last_heard;  ///< by rank; only neighbours used
    std::uint64_t gen = 0;  ///< bumped on crash/restart to retire old loops
    /// Highest kReconcile wave generation seen; the flood-termination gate.
    std::uint64_t reconcile_gen = 0;
  };

  static std::size_t idx_(topo::Rank r) {
    return static_cast<std::size_t>(r);
  }

  void on_crash(topo::Rank r);
  void on_restart(topo::Rank r);

  sim::Task<> heartbeat_loop(topo::Rank r, std::uint64_t gen);
  sim::Task<> monitor_loop(topo::Rank r, std::uint64_t gen);
  sim::Task<> accept_loop(topo::Rank r);
  sim::Task<> drain_completions(via::Vi& vi);
  sim::Task<> rejoin(topo::Rank r, std::uint64_t gen);

  void on_heartbeat(topo::Rank observer, topo::Rank src);
  void on_membership_frame(topo::Rank observer, const std::byte* data,
                           std::size_t bytes);
  /// Authors a transition about `subject` as seen by `observer` and runs it
  /// through the same apply/react/flood path as received news.
  void declare(topo::Rank observer, topo::Rank subject, Liveness to);
  void process_record(topo::Rank observer, const MemberRecord& rec);
  /// Reinstall (or clear) observer's degraded-mode route table from its
  /// current dead set.
  void refresh_routes(topo::Rank observer);

  // -- partition tolerance ---------------------------------------------------
  /// Re-evaluates quorum_side for `r`'s view, toggling the agent minority
  /// flag and recording partition-duration samples on transitions.
  void update_quorum(topo::Rank r);
  /// Carrier came back up on one of `r`'s links: heal evidence when the
  /// neighbour that way is currently believed dead.
  void on_carrier_up(topo::Rank r, topo::Dir d);
  /// A kReconcile wave frame (or its local origination) reached `r`.
  void on_reconcile(topo::Rank r, std::uint64_t gen);
  /// The minority-side heal sequence: VI flush under a bumped epoch, retract
  /// partition-era deaths, clear avoidance routes, PR-5 rejoin handshake.
  void partition_rejoin(topo::Rank r);
  /// Sends `from`'s full non-default view to `to` as kMembership batches —
  /// the primary side's half of the post-heal merge.
  void push_view(topo::Rank from, topo::Rank to);

  GigeMeshCluster& cluster_;
  LifecycleParams params_;
  bool started_ = false;
  bool stopped_ = false;
  std::vector<MembershipView> views_;
  std::vector<NodeCtl> ctl_;
  std::vector<std::vector<Observer>> observers_;
  std::vector<sim::Time> crash_time_;    ///< -1 until the fault fires
  std::vector<sim::Time> restart_time_;  ///< -1 until the restart fires
  obs::Histogram& detect_hist_;  ///< crash -> per-survivor kDead, ns
  obs::Histogram& rejoin_hist_;  ///< restart -> per-survivor kAlive, ns

  std::vector<QuorumSide> side_;         ///< per node, from its own view
  std::vector<sim::Time> minority_since_;  ///< -1 while primary
  /// Guards the cross-node tallies below: per-node state (views_, ctl_,
  /// side_) is only ever touched from its own rank's logical process, but
  /// the partition counters and heal-convergence tracking are written by
  /// whichever rank's transition fires, concurrently during parallel
  /// windows. Zero-cost in the sequential engine.
  mutable chk::SimLock shared_mu_;
  /// Heal-convergence tracking: set at the first carrier-up heal evidence of
  /// a cycle, cleared when every pending node's view is dead-free again.
  sim::Time heal_start_ MESHMP_GUARDED_BY(shared_mu_) = -1;
  std::vector<bool> heal_pending_ MESHMP_GUARDED_BY(shared_mu_);
  int heal_remaining_ MESHMP_GUARDED_BY(shared_mu_) = 0;
  topo::RouteTableCache route_cache_;  ///< shared across nodes by dead-set
  /// "cluster.partition.*" — inc'd under shared_mu_; the registry reads it
  /// from the host between runs, so the accessor stays lock-free.
  obs::Counters counters_;
  obs::Registry::Registration counters_reg_;
  obs::Histogram& partition_duration_hist_;  ///< minority entry -> primary, ns
  obs::Histogram& heal_conv_hist_;  ///< heal evidence -> dead-free view, ns
};

}  // namespace meshmp::cluster
