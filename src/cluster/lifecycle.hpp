#pragma once

// Node-failure lifecycle: heartbeat failure detection, membership flooding,
// degraded-mode routing, and rejoin — the control plane for whole-node
// crashes on the switchless mesh.
//
// Every node runs two detector coroutines: a heartbeat loop that probes each
// mesh neighbour with an unreliable kHeartbeat control frame per period, and
// a monitor loop that converts silence into suspicion with a phi-accrual
// failure detector: phi(t) = log10-scaled improbability of `t` ns of silence
// given the observed inter-arrival window for that link. Suspicion crosses
// into kSuspect at `phi_suspect` and hardens into kDead at `phi_dead`, so a
// slow-but-alive neighbour (degraded cable, flaky PHY stretching arrival
// intervals) raises suspicion without ever producing a false death verdict.
// Transitions are flooded as MemberRecords over the surviving mesh
// (apply-is-news gating terminates the flood), so every survivor's
// MembershipView converges without any central observer — there is no
// switch, and no master, to ask.
//
// Gray-failure control plane: heartbeat probes are pinned to the adapter of
// the direction they monitor (send_control_dir) and carry a per-direction
// sequence number plus their send timestamp; the receiver echoes both in a
// routed kHeartbeatAck. Ack RTTs and overdue probes feed a per-port
// net::LinkQuality (EWMA loss + latency score with hysteresis). Ports whose
// score sinks go into the agent's degraded mask (equal-cost avoidance) or —
// when loss approaches 1.0 despite carrier-up, the one-directional cable
// break — the black mask (detour like a failed link, but no link_change and
// no death: the acks that detour back are proof of life). Mask changes are
// flooded as versioned LinkRecords (kLinkState) so every node's route table
// can dodge remote degraded links among minimal paths
// (Torus::route_table_avoiding, RouteTableCache keyed by dead set + the
// full degraded-mask map).
//
// On a confirmed death each survivor recomputes a full BFS route table
// around the dead coordinate (Torus::route_table_avoiding) and installs it
// in its kernel agent, and fast-fails every VI to the dead rank so pending
// traffic error-completes instead of burning the retransmit budget. On
// restart the node's agent epoch has already been bumped; the rejoin
// coroutine floods kRejoining under the new incarnation, re-runs VI
// connection establishment with its live neighbours (fresh-epoch
// ConnReq/Ack, sequence numbers restarting from zero), then floods kAlive —
// at which point survivors heal their route tables.
//
// Detection and rejoin latencies (crash/restart sim-time to each survivor's
// view transition) are recorded into obs histograms and therefore appear in
// ClusterReport.metrics.
//
// Partition tolerance (split-brain safety): after every applied record each
// node re-evaluates the strict-majority quorum rule (membership.hpp) over
// its own view. A node whose view places it on the minority side of a split
// sets its kernel agent's minority flag — new dials and sends to
// unconnected peers fail fast with kMinorityPartition — while the primary
// side re-trees collectives over survivors and keeps serving. Healing is
// driven by carrier restoration: a node that sees a link come up toward a
// rank it believes dead either pushes its view across the boundary
// (primary) or starts a flooded kReconcile wave (minority). Reconciling
// minority nodes flush every VI under a bumped incarnation epoch, retract
// their partition-era death verdicts, clear avoidance route tables, and
// re-run the PR-5 rejoin handshake — after which the ordinary
// (incarnation, version, severity) flood merge converges both sides' views,
// including any real deaths that happened behind the partition.

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "chk/thread_annotations.hpp"
#include "cluster/gige_mesh.hpp"
#include "cluster/membership.hpp"
#include "net/quality.hpp"
#include "obs/metrics.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "topo/route_cache.hpp"
#include "via/vi.hpp"

namespace meshmp::cluster {

struct LifecycleParams {
  sim::Duration heartbeat_period = 200'000;  ///< 200 us between probes
  /// Phi-accrual thresholds. With a clean 200 us arrival cadence the window
  /// mean clamps to the period, so phi = 0.4343 * silence / period:
  /// phi_suspect fires at ~690 us of silence and phi_dead at ~1.98 ms —
  /// deliberately calibrated to the fixed 700 us / 2 ms thresholds this
  /// detector replaced. A lossy link stretches the observed window mean,
  /// which stretches both thresholds proportionally: slow-but-alive raises
  /// suspicion, never a death verdict.
  double phi_suspect = 1.5;
  double phi_dead = 4.3;
  /// Per-port link-quality scoring knobs (EWMA, hysteresis thresholds).
  net::QualityParams quality{};
};

class ClusterLifecycle {
 public:
  /// Service number the rejoin handshake dials; every node listens on it.
  static constexpr std::uint32_t kService = 0xFEEDC0DEu;

  ClusterLifecycle(GigeMeshCluster& cluster, LifecycleParams params = {});

  /// Spawns the per-node detector loops and rejoin accept loops, installs
  /// the control-frame handlers, and registers the cluster crash hooks.
  /// Call once, before the first fault fires.
  void start();
  /// Detector loops exit at their next tick, letting the engine quiesce.
  void stop();

  [[nodiscard]] const LifecycleParams& params() const noexcept {
    return params_;
  }
  /// Rank `r`'s current belief about the cluster.
  [[nodiscard]] const MembershipView& view(topo::Rank r) const {
    return views_.at(static_cast<std::size_t>(r));
  }

  /// Observer invoked on every membership transition rank `observer` applies
  /// (its own detections and flooded news alike). Used by upper layers to
  /// cancel receives or rebuild collective state on death/rejoin.
  using Observer = std::function<void(topo::Rank subject, Liveness to)>;
  void subscribe(topo::Rank observer, Observer fn);

  /// True when every powered node other than `subject` believes `subject`
  /// is in state `s` — the flood-convergence acceptance check.
  [[nodiscard]] bool survivors_agree(topo::Rank subject, Liveness s) const;
  /// True when every powered node believes every rank is alive.
  [[nodiscard]] bool all_alive() const;

  /// Which side of a split `r`'s view currently places it on.
  [[nodiscard]] QuorumSide side(topo::Rank r) const {
    return side_.at(idx_(r));
  }
  [[nodiscard]] bool is_minority(topo::Rank r) const {
    return side(r) == QuorumSide::kMinority;
  }
  /// Partition/heal bookkeeping counters (also attached to the obs registry
  /// under "cluster.partition").
  [[nodiscard]] const obs::Counters& partition_counters() const noexcept {
    return counters_;
  }

  // -- gray-failure introspection ------------------------------------------
  /// Current phi suspicion level rank `r` holds for its neighbour in
  /// direction `d` (0 for an edge with no neighbour).
  [[nodiscard]] double phi(topo::Rank r, topo::Dir d) const;
  /// Rank `r`'s local per-port link-quality tracker.
  [[nodiscard]] const net::LinkQuality& link_quality(topo::Rank r) const {
    return quality_.at(idx_(r));
  }
  /// `observer`'s current belief of `subject`'s degraded|black egress mask
  /// (converged via the kLinkState flood).
  [[nodiscard]] topo::DirMask degraded_belief(topo::Rank observer,
                                              topo::Rank subject) const {
    return remote_degraded_.at(idx_(observer)).at(idx_(subject));
  }
  /// "cluster.phi.*" — suspicion/refutation bookkeeping.
  [[nodiscard]] const obs::Counters& phi_counters() const noexcept {
    return phi_counters_;
  }
  /// "net.link.score.*" — quality-mask and link-state-flood bookkeeping.
  [[nodiscard]] const obs::Counters& score_counters() const noexcept {
    return score_counters_;
  }

 private:
  /// Inter-arrival samples retained per monitored direction.
  static constexpr std::size_t kPhiWindow = 16;
  static constexpr int kMaxPorts = 2 * topo::kMaxDims;

  /// Per-direction probe and arrival bookkeeping (the phi detector's input).
  struct DirHealth {
    std::uint64_t probe_seq = 0;      ///< probes pinned out this direction
    std::uint64_t probe_ack_seq = 0;  ///< highest probe seq echoed back
    /// probe_seq snapshots from the previous and the one-before monitor
    /// ticks: only probes at least two full ticks old may be sampled as
    /// overdue. A healthy ack takes microseconds, but a membership flood
    /// storm (partition onset) can queue one behind a full tick of control
    /// frames — congestion must not read as a sick cable.
    std::uint64_t seq_at_last_tick = 0;
    std::uint64_t seq_two_ticks_ago = 0;
    std::uint64_t timeout_checked = 0;  ///< last seq sampled as overdue
    std::uint32_t last_probe_msg = 0;   ///< dedup for wire-duplicated probes
    sim::Time last_arrival = -1;
    std::array<sim::Duration, kPhiWindow> window{};  ///< inter-arrival ring
    std::size_t nwin = 0;
    std::size_t wpos = 0;
  };

  struct NodeCtl {
    std::vector<sim::Time> last_heard;  ///< by rank; only neighbours used
    std::uint64_t gen = 0;  ///< bumped on crash/restart to retire old loops
    /// Highest kReconcile wave generation seen; the flood-termination gate.
    std::uint64_t reconcile_gen = 0;
    std::array<DirHealth, kMaxPorts> dirs{};
    /// Monotone origination counter for this node's LinkRecords. Survives
    /// restart so post-rejoin floods outrank partition-era echoes.
    std::uint64_t link_version = 0;
    /// Set when a LinkRecord applied; serviced (route refresh) at the next
    /// monitor tick so flood storms coalesce into one recompute.
    bool routes_dirty = false;
    /// When the last membership record applied as news. A flood storm
    /// (suspect wave, death wave, heal reconciliation) saturates the wire
    /// with control frames; probe-timeout sampling pauses while news is
    /// still landing so storm queueing never reads as cable loss.
    sim::Time last_member_news = -1;
    /// Ranks whose freshly-applied LinkRecords still need re-flooding.
    /// Flushed as one batched frame per neighbour at the next monitor tick:
    /// synchronous per-record fan-out would amplify a mask-flip storm into
    /// the very congestion that flipped the masks.
    std::vector<std::uint8_t> ls_pending;
    bool ls_any = false;
  };

  static std::size_t idx_(topo::Rank r) {
    return static_cast<std::size_t>(r);
  }

  void on_crash(topo::Rank r);
  void on_restart(topo::Rank r);

  sim::Task<> heartbeat_loop(topo::Rank r, std::uint64_t gen);
  sim::Task<> monitor_loop(topo::Rank r, std::uint64_t gen);
  sim::Task<> accept_loop(topo::Rank r);
  sim::Task<> drain_completions(via::Vi& vi);
  sim::Task<> rejoin(topo::Rank r, std::uint64_t gen);

  void on_heartbeat(topo::Rank observer, topo::Rank src,
                    const via::ViaHeader& h);
  void on_heartbeat_ack(topo::Rank observer, topo::Rank src,
                        const via::ViaHeader& h);
  void on_membership_frame(topo::Rank observer, const std::byte* data,
                           std::size_t bytes);
  void on_linkstate_frame(topo::Rank observer, const std::byte* data,
                          std::size_t bytes);
  /// Applies a link-quality record iff its version is news for (observer,
  /// subject), marks routes dirty, and re-floods — the kLinkState analogue
  /// of process_record.
  void process_link_record(topo::Rank observer, const LinkRecord& rec);
  /// phi for `silent` ns of silence given dir `dir_index`'s arrival window.
  [[nodiscard]] double phi_level(const NodeCtl& ctl, int dir_index,
                                 sim::Duration silent) const;
  /// The direction from `from` toward direct neighbour `to`, if any.
  [[nodiscard]] std::optional<topo::Dir> dir_toward(topo::Rank from,
                                                    topo::Rank to) const;
  /// Authors a transition about `subject` as seen by `observer` and runs it
  /// through the same apply/react/flood path as received news.
  void declare(topo::Rank observer, topo::Rank subject, Liveness to);
  void process_record(topo::Rank observer, const MemberRecord& rec);
  /// Reinstall (or clear) observer's degraded-mode route table from its
  /// current dead set.
  void refresh_routes(topo::Rank observer);

  // -- partition tolerance ---------------------------------------------------
  /// Re-evaluates quorum_side for `r`'s view, toggling the agent minority
  /// flag and recording partition-duration samples on transitions.
  void update_quorum(topo::Rank r);
  /// Carrier came back up on one of `r`'s links: heal evidence when the
  /// neighbour that way is currently believed dead.
  void on_carrier_up(topo::Rank r, topo::Dir d);
  /// A kReconcile wave frame (or its local origination) reached `r`.
  void on_reconcile(topo::Rank r, std::uint64_t gen);
  /// The minority-side heal sequence: VI flush under a bumped epoch, retract
  /// partition-era deaths, clear avoidance routes, PR-5 rejoin handshake.
  void partition_rejoin(topo::Rank r);
  /// Sends `from`'s full non-default view to `to` as kMembership batches —
  /// the primary side's half of the post-heal merge.
  void push_view(topo::Rank from, topo::Rank to);

  GigeMeshCluster& cluster_;
  LifecycleParams params_;
  bool started_ = false;
  bool stopped_ = false;
  std::vector<MembershipView> views_;
  std::vector<NodeCtl> ctl_;
  std::vector<std::vector<Observer>> observers_;
  std::vector<sim::Time> crash_time_;    ///< -1 until the fault fires
  std::vector<sim::Time> restart_time_;  ///< -1 until the restart fires
  obs::Histogram& detect_hist_;  ///< crash -> per-survivor kDead, ns
  obs::Histogram& rejoin_hist_;  ///< restart -> per-survivor kAlive, ns

  std::vector<QuorumSide> side_;         ///< per node, from its own view
  std::vector<sim::Time> minority_since_;  ///< -1 while primary
  /// Guards the cross-node tallies below: per-node state (views_, ctl_,
  /// side_) is only ever touched from its own rank's logical process, but
  /// the partition counters and heal-convergence tracking are written by
  /// whichever rank's transition fires, concurrently during parallel
  /// windows. Zero-cost in the sequential engine.
  mutable chk::SimLock shared_mu_;
  /// Heal-convergence tracking: set at the first carrier-up heal evidence of
  /// a cycle, cleared when every pending node's view is dead-free again.
  sim::Time heal_start_ MESHMP_GUARDED_BY(shared_mu_) = -1;
  std::vector<bool> heal_pending_ MESHMP_GUARDED_BY(shared_mu_);
  int heal_remaining_ MESHMP_GUARDED_BY(shared_mu_) = 0;
  topo::RouteTableCache route_cache_;  ///< shared across nodes by dead-set
  /// "cluster.partition.*" — inc'd under shared_mu_; the registry reads it
  /// from the host between runs, so the accessor stays lock-free.
  obs::Counters counters_;
  obs::Registry::Registration counters_reg_;
  obs::Histogram& partition_duration_hist_;  ///< minority entry -> primary, ns
  obs::Histogram& heal_conv_hist_;  ///< heal evidence -> dead-free view, ns

  // -- gray-failure state ---------------------------------------------------
  /// Per-node port-quality trackers; only touched from the owning rank's LP.
  std::vector<net::LinkQuality> quality_;
  /// link_seen_[observer][subject]: highest LinkRecord version applied — the
  /// kLinkState flood-termination gate, per (observer, subject).
  std::vector<std::vector<std::uint64_t>> link_seen_;
  /// remote_degraded_[observer][subject]: observer's belief of subject's
  /// degraded|black egress mask; the `degraded` input to route recompute.
  std::vector<std::vector<topo::DirMask>> remote_degraded_;
  /// "cluster.phi.*" / "net.link.score.*" — inc'd under shared_mu_ like the
  /// partition counters; accessors stay lock-free (host reads between runs).
  obs::Counters phi_counters_;
  obs::Registry::Registration phi_reg_;
  obs::Counters score_counters_;
  obs::Registry::Registration score_reg_;
  obs::Histogram& phi_suspect_hist_;  ///< phi * 1000 at suspect declarations
};

}  // namespace meshmp::cluster
