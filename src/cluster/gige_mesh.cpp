#include "cluster/gige_mesh.hpp"

#include "chk/digest_out.hpp"

namespace meshmp::cluster {

GigeMeshCluster::GigeMeshCluster(GigeMeshConfig cfg)
    : cfg_(cfg), torus_(cfg.shape, cfg.wrap) {
  if (cfg_.threads > 0) {
    // One LP per node plus the control LP; the cable propagation delay is
    // the minimum cross-LP latency and therefore the lookahead. Digests are
    // kept on so the CI matrix can compare runs across thread counts.
    eng_.partition(1 + static_cast<std::uint32_t>(torus_.size()),
                   cfg_.threads, cfg_.link.propagation);
    eng_.enable_digest(true);
  }
  digest_name_ = "cluster." + std::to_string(chk::next_digest_ordinal());
  sim::Rng master(cfg_.seed);
  fabric_ = std::make_unique<MeshFabric>(eng_, torus_, cfg_.host, cfg_.nic,
                                         cfg_.bus, cfg_.link, master);
  agents_.reserve(static_cast<std::size_t>(torus_.size()));
  for (topo::Rank r = 0; r < torus_.size(); ++r) {
    sim::LpScope scope(eng_, lp_of(r));
    auto agent = std::make_unique<via::KernelAgent>(
        fabric_->node(r), torus_, r, cfg_.via, master.fork());
    for (topo::Dir d : torus_.directions(torus_.coord(r))) {
      agent->attach_nic(d, fabric_->nic(r, d));
    }
    agents_.push_back(std::move(agent));
  }
}

GigeMeshCluster::~GigeMeshCluster() {
  chk::append_digest_out(digest_name_, eng_.digest());
}

void GigeMeshCluster::power_fail_node(topo::Rank r) {
  if (!agent(r).powered()) return;
  // Adapters first: anything the agent's failure callbacks try to transmit
  // while unwinding is blackholed instead of escaping the dead host.
  for (topo::Dir d : torus_.directions(torus_.coord(r))) {
    nic(r, d).power_off();
    // The cable is dead at both ends: the neighbour's port sees its link go
    // down and its agent reroutes from the next frame on.
    const auto n = torus_.neighbor(r, d);
    nic(*n, d.opposite()).set_carrier(false);
  }
  agent(r).power_fail();
  if (on_crash_) on_crash_(r);
}

void GigeMeshCluster::power_restore_node(topo::Rank r) {
  if (agent(r).powered()) return;
  // Epoch bumps before any port carries traffic, so every frame of the new
  // incarnation is stamped with the new epoch.
  agent(r).power_restore();
  for (topo::Dir d : torus_.directions(torus_.coord(r))) {
    nic(r, d).power_on();
    nic(r, d).set_carrier(true);
    const auto n = torus_.neighbor(r, d);
    nic(*n, d.opposite()).set_carrier(true);
  }
  if (on_restart_) on_restart_(r);
}

}  // namespace meshmp::cluster
