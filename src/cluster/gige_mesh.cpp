#include "cluster/gige_mesh.hpp"

namespace meshmp::cluster {

GigeMeshCluster::GigeMeshCluster(GigeMeshConfig cfg)
    : cfg_(cfg), torus_(cfg.shape, cfg.wrap) {
  sim::Rng master(cfg_.seed);
  fabric_ = std::make_unique<MeshFabric>(eng_, torus_, cfg_.host, cfg_.nic,
                                         cfg_.bus, cfg_.link, master);
  agents_.reserve(static_cast<std::size_t>(torus_.size()));
  for (topo::Rank r = 0; r < torus_.size(); ++r) {
    auto agent = std::make_unique<via::KernelAgent>(
        fabric_->node(r), torus_, r, cfg_.via, master.fork());
    for (topo::Dir d : torus_.directions(torus_.coord(r))) {
      agent->attach_nic(d, fabric_->nic(r, d));
    }
    agents_.push_back(std::move(agent));
  }
}

}  // namespace meshmp::cluster
