#include "cluster/report.hpp"

#include <algorithm>
#include <cstdio>

namespace meshmp::cluster {

ClusterReport make_report(GigeMeshCluster& cluster) {
  ClusterReport r;
  r.sim_seconds = sim::to_sec(cluster.engine().now());
  for (topo::Rank rank = 0; rank < cluster.size(); ++rank) {
    auto& node = cluster.node_hw(rank);
    const double u = node.cpu().utilization();
    r.avg_cpu_utilization += u;
    r.max_cpu_utilization = std::max(r.max_cpu_utilization, u);
    for (auto& nic : node.nics()) {
      const auto& c = nic->counters();
      r.interrupts += c.get("interrupts");
      r.napi_polls += c.get("napi_polls");
      r.tx_frames += c.get("tx_frames");
      r.rx_frames += c.get("rx_frames");
      r.checksum_drops += c.get("rx_checksum_drop");
      r.corrupt_discards += c.get("rx_checksum_drop");
      r.ring_drops += c.get("rx_ring_full") + c.get("tx_ring_full");
      r.carrier_drops +=
          c.get("carrier_dropped") + c.get("carrier_rx_dropped");
      r.asym_carrier_drops += c.get("asym_dropped");
    }
    auto& agent = cluster.agent(rank);
    const auto& ac = agent.counters();
    r.forwarded_frames += ac.get("fwd_frames");
    r.rerouted_frames += ac.get("rerouted_frames");
    r.unreachable_drops += ac.get("unreachable_drops");
    r.ttl_expired += ac.get("ttl_expired");
    r.vi_failures += ac.get("vi_failures");
    r.node_crashes += ac.get("node_crashes");
    r.node_restarts += ac.get("node_restarts");
    r.stale_epoch_drops += ac.get("rx_stale_epoch");
    r.table_routed_frames += ac.get("table_routed_frames");
    r.partition_flushes += ac.get("partition_flushes");
    r.minority_refusals += ac.get("conn_minority_refused");
    r.degraded_avoided += ac.get("degraded_avoided");
    for (std::uint32_t v = 0;
         v < static_cast<std::uint32_t>(agent.vi_count()); ++v) {
      const auto& vc = agent.vi(v).counters();
      r.retransmits += vc.get("retransmits");
      r.duplicate_discards += vc.get("rx_out_of_order");
      r.dup_frame_discards += vc.get("rx_dup_frames");
    }
  }
  r.avg_cpu_utilization /= static_cast<double>(cluster.size());
  r.metrics = obs::Registry::instance().snapshot_live();
  return r;
}

std::string ClusterReport::str() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "simulated time      : %.6f s\n"
      "cpu utilization     : avg %.1f%%, max %.1f%%\n"
      "frames              : %lld tx, %lld rx, %lld forwarded\n"
      "interrupts          : %lld (%lld NAPI polls)\n"
      "drops               : %lld checksum, %lld ring, %lld carrier\n"
      "reliability         : %lld retransmits, %lld dup-discards\n"
      "fault handling      : %lld rerouted, %lld unreachable, %lld TTL, "
      "%lld VI failures\n"
      "node lifecycle      : %lld crashes, %lld restarts, %lld stale-epoch, "
      "%lld table-routed\n"
      "partition tolerance : %lld flushes, %lld minority-refusals\n"
      "gray failures       : %lld asym-drops, %lld dup-discards, "
      "%lld degraded-avoided\n",
      sim_seconds, avg_cpu_utilization * 100, max_cpu_utilization * 100,
      static_cast<long long>(tx_frames), static_cast<long long>(rx_frames),
      static_cast<long long>(forwarded_frames),
      static_cast<long long>(interrupts),
      static_cast<long long>(napi_polls),
      static_cast<long long>(checksum_drops),
      static_cast<long long>(ring_drops),
      static_cast<long long>(carrier_drops),
      static_cast<long long>(retransmits),
      static_cast<long long>(duplicate_discards),
      static_cast<long long>(rerouted_frames),
      static_cast<long long>(unreachable_drops),
      static_cast<long long>(ttl_expired),
      static_cast<long long>(vi_failures),
      static_cast<long long>(node_crashes),
      static_cast<long long>(node_restarts),
      static_cast<long long>(stale_epoch_drops),
      static_cast<long long>(table_routed_frames),
      static_cast<long long>(partition_flushes),
      static_cast<long long>(minority_refusals),
      static_cast<long long>(asym_carrier_drops),
      static_cast<long long>(dup_frame_discards),
      static_cast<long long>(degraded_avoided));
  return buf;
}

}  // namespace meshmp::cluster
