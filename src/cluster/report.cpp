#include "cluster/report.hpp"

#include <algorithm>
#include <cstdio>

namespace meshmp::cluster {

ClusterReport make_report(GigeMeshCluster& cluster) {
  ClusterReport r;
  r.sim_seconds = sim::to_sec(cluster.engine().now());
  for (topo::Rank rank = 0; rank < cluster.size(); ++rank) {
    auto& node = cluster.node_hw(rank);
    const double u = node.cpu().utilization();
    r.avg_cpu_utilization += u;
    r.max_cpu_utilization = std::max(r.max_cpu_utilization, u);
    for (auto& nic : node.nics()) {
      const auto& c = nic->counters();
      r.interrupts += c.get("interrupts");
      r.napi_polls += c.get("napi_polls");
      r.tx_frames += c.get("tx_frames");
      r.rx_frames += c.get("rx_frames");
      r.checksum_drops += c.get("rx_checksum_drop");
      r.ring_drops += c.get("rx_ring_full") + c.get("tx_ring_full");
    }
    r.forwarded_frames += cluster.agent(rank).counters().get("fwd_frames");
  }
  r.avg_cpu_utilization /= static_cast<double>(cluster.size());
  return r;
}

std::string ClusterReport::str() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "simulated time      : %.6f s\n"
      "cpu utilization     : avg %.1f%%, max %.1f%%\n"
      "frames              : %lld tx, %lld rx, %lld forwarded\n"
      "interrupts          : %lld (%lld NAPI polls)\n"
      "drops               : %lld checksum, %lld ring\n"
      "retransmits         : %lld\n",
      sim_seconds, avg_cpu_utilization * 100, max_cpu_utilization * 100,
      static_cast<long long>(tx_frames), static_cast<long long>(rx_frames),
      static_cast<long long>(forwarded_frames),
      static_cast<long long>(interrupts),
      static_cast<long long>(napi_polls),
      static_cast<long long>(checksum_drops),
      static_cast<long long>(ring_drops),
      static_cast<long long>(retransmits));
  return buf;
}

}  // namespace meshmp::cluster
