#pragma once

// TCP baseline twin of the GigE mesh cluster: same hardware, same cables,
// but the stock kernel TCP/IP stack instead of the modified M-VIA.

#include <memory>
#include <vector>

#include "cluster/fabric.hpp"
#include "sim/engine.hpp"
#include "tcpstack/stack.hpp"
#include "topo/torus.hpp"

namespace meshmp::cluster {

struct TcpMeshConfig {
  topo::Coord shape{4, 8, 8};
  bool wrap = true;
  hw::HostParams host{};
  hw::NicParams nic{};
  hw::BusParams bus{};
  net::LinkParams link = hw::gige_link_params();
  tcpstack::TcpParams tcp{};
  std::uint64_t seed = 1;
};

class TcpMeshCluster {
 public:
  explicit TcpMeshCluster(TcpMeshConfig cfg)
      : cfg_(cfg), torus_(cfg.shape, cfg.wrap) {
    sim::Rng master(cfg_.seed);
    fabric_ = std::make_unique<MeshFabric>(eng_, torus_, cfg_.host, cfg_.nic,
                                           cfg_.bus, cfg_.link, master);
    stacks_.reserve(static_cast<std::size_t>(torus_.size()));
    for (topo::Rank r = 0; r < torus_.size(); ++r) {
      auto stack = std::make_unique<tcpstack::TcpStack>(fabric_->node(r),
                                                        torus_, r, cfg_.tcp);
      for (topo::Dir d : torus_.directions(torus_.coord(r))) {
        stack->attach_nic(d, fabric_->nic(r, d));
      }
      stacks_.push_back(std::move(stack));
    }
  }
  TcpMeshCluster(const TcpMeshCluster&) = delete;
  TcpMeshCluster& operator=(const TcpMeshCluster&) = delete;

  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }
  [[nodiscard]] const topo::Torus& torus() const noexcept { return torus_; }
  [[nodiscard]] topo::Rank size() const noexcept { return torus_.size(); }
  [[nodiscard]] hw::NodeHw& node_hw(topo::Rank r) { return fabric_->node(r); }
  [[nodiscard]] tcpstack::TcpStack& stack(topo::Rank r) {
    return *stacks_.at(r);
  }
  [[nodiscard]] hw::Nic& nic(topo::Rank r, topo::Dir dir) {
    return fabric_->nic(r, dir);
  }

  void run() { eng_.run(); }

 private:
  TcpMeshConfig cfg_;
  sim::Engine eng_;
  topo::Torus torus_;
  std::unique_ptr<MeshFabric> fabric_;
  std::vector<std::unique_ptr<tcpstack::TcpStack>> stacks_;
};

}  // namespace meshmp::cluster
