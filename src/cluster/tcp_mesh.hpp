#pragma once

// TCP baseline twin of the GigE mesh cluster: same hardware, same cables,
// but the stock kernel TCP/IP stack instead of the modified M-VIA.

#include <memory>
#include <string>
#include <vector>

#include "chk/digest_out.hpp"
#include "cluster/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/lp.hpp"
#include "tcpstack/stack.hpp"
#include "topo/torus.hpp"

namespace meshmp::cluster {

struct TcpMeshConfig {
  topo::Coord shape{4, 8, 8};
  bool wrap = true;
  hw::HostParams host{};
  hw::NicParams nic{};
  hw::BusParams bus{};
  net::LinkParams link = hw::gige_link_params();
  tcpstack::TcpParams tcp{};
  std::uint64_t seed = 1;
  /// Engine worker threads (MESHMP_THREADS); see GigeMeshConfig::threads.
  unsigned threads = sim::threads_from_env();
};

class TcpMeshCluster {
 public:
  explicit TcpMeshCluster(TcpMeshConfig cfg)
      : cfg_(cfg), torus_(cfg.shape, cfg.wrap) {
    if (cfg_.threads > 0) {
      eng_.partition(1 + static_cast<std::uint32_t>(torus_.size()),
                     cfg_.threads, cfg_.link.propagation);
      eng_.enable_digest(true);
    }
    digest_name_ = "cluster." + std::to_string(chk::next_digest_ordinal());
    sim::Rng master(cfg_.seed);
    fabric_ = std::make_unique<MeshFabric>(eng_, torus_, cfg_.host, cfg_.nic,
                                           cfg_.bus, cfg_.link, master);
    stacks_.reserve(static_cast<std::size_t>(torus_.size()));
    for (topo::Rank r = 0; r < torus_.size(); ++r) {
      sim::LpScope scope(eng_, lp_of(r));
      auto stack = std::make_unique<tcpstack::TcpStack>(fabric_->node(r),
                                                        torus_, r, cfg_.tcp);
      for (topo::Dir d : torus_.directions(torus_.coord(r))) {
        stack->attach_nic(d, fabric_->nic(r, d));
      }
      stacks_.push_back(std::move(stack));
    }
  }
  ~TcpMeshCluster() { chk::append_digest_out(digest_name_, eng_.digest()); }
  TcpMeshCluster(const TcpMeshCluster&) = delete;
  TcpMeshCluster& operator=(const TcpMeshCluster&) = delete;

  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }
  [[nodiscard]] const topo::Torus& torus() const noexcept { return torus_; }
  [[nodiscard]] topo::Rank size() const noexcept { return torus_.size(); }
  [[nodiscard]] hw::NodeHw& node_hw(topo::Rank r) { return fabric_->node(r); }
  [[nodiscard]] tcpstack::TcpStack& stack(topo::Rank r) {
    return *stacks_.at(r);
  }
  [[nodiscard]] hw::Nic& nic(topo::Rank r, topo::Dir dir) {
    return fabric_->nic(r, dir);
  }

  /// LP owning rank r's events; see GigeMeshCluster::lp_of.
  [[nodiscard]] sim::LpId lp_of(topo::Rank r) const noexcept {
    return eng_.partitioned() ? static_cast<sim::LpId>(1 + r)
                              : sim::kControlLp;
  }

  void run() { eng_.run(); }

 private:
  TcpMeshConfig cfg_;
  sim::Engine eng_;
  topo::Torus torus_;
  std::string digest_name_;
  std::unique_ptr<MeshFabric> fabric_;
  std::vector<std::unique_ptr<tcpstack::TcpStack>> stacks_;
};

}  // namespace meshmp::cluster
