#pragma once

// Myrinet comparison cluster (paper sec. 3/6): every node has one LANai9
// port into a full-bisection Clos switch (modelled as an ideal crossbar).
// The transport is GM-like: user-level, polled completions, no kernel or
// interrupts on the critical path — which is exactly why its latency beats
// GigE even though our M-VIA removes most of the TCP overhead.

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "hw/cpu.hpp"
#include "hw/params.hpp"
#include "net/crossbar.hpp"
#include "net/link.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace meshmp::cluster {

struct GmMessage {
  int src = -1;
  int tag = 0;
  std::vector<std::byte> data;
};

class MyrinetCluster;

/// Per-node user-level transport endpoint.
class GmPort {
 public:
  GmPort(MyrinetCluster& cluster, int rank, hw::Cpu& cpu,
         net::SimplexPipe& to_switch);
  GmPort(const GmPort&) = delete;
  GmPort& operator=(const GmPort&) = delete;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] hw::Cpu& cpu() noexcept { return cpu_; }

  sim::Task<> send(int dst, int tag, std::vector<std::byte> data);
  sim::Task<GmMessage> recv(int src, int tag);

  /// Recursive-doubling global sum (power-of-two node counts).
  sim::Task<double> allreduce_sum(double value);

  /// Receive entry driven by the switch egress pipe.
  void deliver(net::Frame f);

  [[nodiscard]] const sim::Counters& counters() const noexcept {
    return counters_;
  }

 private:
  struct Posted {
    int src;
    int tag;
    GmMessage msg;
    bool done = false;
    std::unique_ptr<sim::Trigger> ready;
  };
  struct Partial {
    std::vector<std::byte> buf;
    std::uint32_t msg_id = 0;
    std::uint32_t seen = 0;
    std::uint32_t nfrags = 0;
    bool active = false;
  };

  void complete(GmMessage msg);

  MyrinetCluster& cluster_;
  int rank_;
  hw::Cpu& cpu_;
  net::SimplexPipe& to_switch_;
  std::uint32_t next_msg_id_ = 1;
  // reassembly keyed by source (one in-flight message per src suffices: the
  // port serializes per-source messages; key by (src,msg_id) if extended)
  std::vector<Partial> partial_;
  std::deque<std::shared_ptr<Posted>> posted_;
  std::deque<GmMessage> unexpected_;
  sim::Counters counters_;
};

struct MyrinetConfig {
  int nodes = 64;
  hw::HostParams host{};  ///< flops rate overridden by gm.flops_per_sec
  hw::MyrinetParams gm{};
  net::LinkParams link = hw::myrinet_link_params();
  std::uint64_t seed = 1;
};

class MyrinetCluster {
 public:
  explicit MyrinetCluster(MyrinetConfig cfg);
  MyrinetCluster(const MyrinetCluster&) = delete;
  MyrinetCluster& operator=(const MyrinetCluster&) = delete;

  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }
  [[nodiscard]] int size() const noexcept { return cfg_.nodes; }
  [[nodiscard]] const MyrinetConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] GmPort& port(int r) { return *ports_.at(static_cast<std::size_t>(r)); }
  [[nodiscard]] hw::Cpu& cpu(int r) {
    return *cpus_.at(static_cast<std::size_t>(r));
  }

  void run() { eng_.run(); }

 private:
  friend class GmPort;
  MyrinetConfig cfg_;
  sim::Engine eng_;
  std::vector<std::unique_ptr<hw::Cpu>> cpus_;
  std::vector<std::unique_ptr<net::SimplexPipe>> ingress_;
  std::unique_ptr<net::Crossbar> xbar_;
  std::vector<std::unique_ptr<GmPort>> ports_;
};

}  // namespace meshmp::cluster
