#include "cluster/myrinet.hpp"

#include <any>
#include <cstring>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "buf/pool.hpp"

namespace meshmp::cluster {

using sim::Task;

namespace {

struct GmHeader {
  int tag = 0;
  std::uint32_t msg_id = 0;
  std::uint32_t frag = 0;
  std::uint32_t nfrags = 1;
  std::uint64_t msg_bytes = 0;

  // Carried per-frame inside Frame::meta — use the pooled meta freelist.
  MESHMP_POOLED_META()
};

static_assert(sizeof(GmHeader) <= net::kMetaBlockBytes);

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

MyrinetCluster::MyrinetCluster(MyrinetConfig cfg) : cfg_(cfg) {
  sim::Rng master(cfg_.seed);
  // Every node's host flops come from the Myrinet cluster's (slower) CPUs.
  cfg_.host.flops_per_sec = cfg_.gm.flops_per_sec;
  xbar_ = std::make_unique<net::Crossbar>(eng_, cfg_.nodes, cfg_.link,
                                          cfg_.gm.switch_latency,
                                          master.fork());
  for (int r = 0; r < cfg_.nodes; ++r) {
    cpus_.push_back(std::make_unique<hw::Cpu>(eng_, cfg_.host));
    ingress_.push_back(std::make_unique<net::SimplexPipe>(
        eng_, cfg_.link, master.fork(), "gm.in" + std::to_string(r)));
    ingress_.back()->set_sink(
        [this](net::Frame f) { xbar_->ingress(std::move(f)); });
    ports_.push_back(std::make_unique<GmPort>(*this, r, *cpus_.back(),
                                              *ingress_.back()));
    xbar_->set_egress_sink(r, [port = ports_.back().get()](net::Frame f) {
      port->deliver(std::move(f));
    });
  }
}

GmPort::GmPort(MyrinetCluster& cluster, int rank, hw::Cpu& cpu,
               net::SimplexPipe& to_switch)
    : cluster_(cluster),
      rank_(rank),
      cpu_(cpu),
      to_switch_(to_switch),
      partial_(static_cast<std::size_t>(cluster.size())) {}

Task<> GmPort::send(int dst, int tag, std::vector<std::byte> data) {
  if (dst < 0 || dst >= cluster_.size()) {
    throw std::invalid_argument("GmPort::send: bad destination");
  }
  const auto& gm = cluster_.config().gm;
  const auto total = static_cast<std::int64_t>(data.size());
  const auto nfrags = static_cast<std::uint32_t>(
      total == 0 ? 1 : (total + gm.mtu_payload - 1) / gm.mtu_payload);
  const std::uint32_t msg_id = next_msg_id_++;
  // Adopt once; fragments alias the message storage.
  const buf::Slice whole = buf::Pool::instance().adopt(std::move(data));
  for (std::uint32_t i = 0; i < nfrags; ++i) {
    const std::int64_t off = static_cast<std::int64_t>(i) * gm.mtu_payload;
    const std::int64_t len = std::min(gm.mtu_payload, total - off);
    // User-level post: descriptor write + doorbell, then LANai firmware.
    co_await cpu_.busy(gm.host_post, hw::Cpu::kUser);
    co_await sim::delay(cpu_.engine(), gm.nic_per_frame);
    net::Frame f;
    f.src = rank_;
    f.dst = dst;
    f.proto = 2;
    f.wire_bytes = std::max<std::int64_t>(len, 0) + 16;  // GM header
    if (len > 0) {
      f.payload = whole.subslice(static_cast<std::size_t>(off),
                                 static_cast<std::size_t>(len));
    }
    GmHeader h;
    h.tag = tag;
    h.msg_id = msg_id;
    h.frag = i;
    h.nfrags = nfrags;
    h.msg_bytes = static_cast<std::uint64_t>(total);
    f.meta = h;
    f.stamp_checksum();
    to_switch_.send(std::move(f));
  }
  counters_.inc("tx_messages");
}

void GmPort::deliver(net::Frame f) {
  const auto* h = std::any_cast<GmHeader>(&f.meta);
  assert(h != nullptr);
  Partial& p = partial_[static_cast<std::size_t>(f.src)];
  if (!p.active) {
    p.active = true;
    p.msg_id = h->msg_id;
    p.nfrags = h->nfrags;
    p.buf.assign(h->msg_bytes, std::byte{0});
    p.seen = 0;
  } else if (p.msg_id != h->msg_id) {
    // One in-flight message per (src,dst) pair is the supported pattern;
    // interleaved fragments would corrupt the reassembly, so fail loudly.
    throw std::logic_error("GmPort: interleaved messages from one source");
  }
  const auto off =
      static_cast<std::ptrdiff_t>(h->frag) *
      static_cast<std::ptrdiff_t>(cluster_.config().gm.mtu_payload);
  // meshmp-lint: host-copy(GM reassembly; the Myrinet reference model bills a
  // calibrated lump host_completion cost per message instead of per-byte
  // charge_copy, so charging here would double-count)
  std::copy(f.payload.begin(), f.payload.end(), p.buf.begin() + off);
  if (++p.seen < p.nfrags) return;
  GmMessage msg;
  msg.src = f.src;
  msg.tag = h->tag;
  msg.data = std::move(p.buf);
  p = Partial{};
  counters_.inc("rx_messages");
  complete(std::move(msg));
}

void GmPort::complete(GmMessage msg) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    Posted& p = **it;
    if ((p.src < 0 || p.src == msg.src) && (p.tag < 0 || p.tag == msg.tag)) {
      auto sp = *it;
      posted_.erase(it);
      sp->msg = std::move(msg);
      sp->done = true;
      sp->ready->fire();
      return;
    }
  }
  unexpected_.push_back(std::move(msg));
}

Task<GmMessage> GmPort::recv(int src, int tag) {
  const auto& gm = cluster_.config().gm;
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if ((src < 0 || src == it->src) && (tag < 0 || tag == it->tag)) {
      GmMessage msg = std::move(*it);
      unexpected_.erase(it);
      co_await cpu_.busy(gm.host_completion, hw::Cpu::kUser);
      co_return msg;
    }
  }
  auto posted = std::make_shared<Posted>();
  posted->src = src;
  posted->tag = tag;
  posted->ready = std::make_unique<sim::Trigger>(cpu_.engine());
  posted_.push_back(posted);
  co_await posted->ready->wait();
  co_await cpu_.busy(gm.host_completion, hw::Cpu::kUser);
  co_return std::move(posted->msg);
}

Task<double> GmPort::allreduce_sum(double value) {
  const int n = cluster_.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("allreduce_sum needs a power-of-two cluster");
  }
  constexpr int kTag = 1 << 20;
  double acc = value;
  for (int mask = 1; mask < n; mask <<= 1) {
    const int partner = rank_ ^ mask;
    std::vector<std::byte> out(sizeof(double));
    // meshmp-lint: host-copy(8-byte scalar codec of the GM allreduce)
    std::memcpy(out.data(), &acc, sizeof(double));
    co_await send(partner, kTag + mask, std::move(out));
    GmMessage in = co_await recv(partner, kTag + mask);
    double other = 0;
    std::memcpy(&other, in.data.data(), sizeof(double));
    acc += other;
  }
  co_return acc;
}

}  // namespace meshmp::cluster
