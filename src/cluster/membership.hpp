#pragma once

// Per-node cluster membership view for the node-failure lifecycle.
//
// Every node keeps a MembershipView: what it currently believes about each
// rank's liveness. Views converge across survivors by flooding MemberRecords
// over the mesh (cluster/lifecycle.{hpp,cpp}); a record is "news" — applied
// and re-flooded — iff it is strictly newer than the stored state by
// (incarnation, version) lexicographic order, which both terminates the
// flood and lets a restarted node's fresh incarnation override any stale
// story about its previous life.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topo/torus.hpp"

namespace meshmp::cluster {

enum class Liveness : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,    ///< missed heartbeats, not yet declared dead
  kDead = 2,       ///< suspicion timeout expired; routed around
  kRejoining = 3,  ///< restarted, re-establishing connections
};

[[nodiscard]] const char* to_string(Liveness s) noexcept;

struct MemberState {
  Liveness state = Liveness::kAlive;
  /// Node incarnation (the via::KernelAgent epoch of the subject node as
  /// known to the record's author).
  std::uint32_t incarnation = 0;
  /// Monotone per (rank, incarnation); bumped by whoever authors a
  /// transition. (incarnation, version) orders records totally per rank.
  std::uint64_t version = 0;
};

/// One flooded unit of membership news about `rank`.
struct MemberRecord {
  topo::Rank rank = 0;
  MemberState st;
};

class MembershipView {
 public:
  explicit MembershipView(topo::Rank cluster_size)
      : states_(static_cast<std::size_t>(cluster_size)) {}

  [[nodiscard]] topo::Rank size() const noexcept {
    return static_cast<topo::Rank>(states_.size());
  }
  [[nodiscard]] const MemberState& at(topo::Rank r) const {
    return states_.at(static_cast<std::size_t>(r));
  }

  /// Applies `rec` iff it is news: (incarnation, version, state-severity)
  /// strictly greater than the stored record for that rank — the severity
  /// tie-break (dead > suspect > rejoining > alive) makes concurrent
  /// same-version conflicts converge. Returns whether it was news (the
  /// flood-forwarding gate).
  bool apply(const MemberRecord& rec);

  /// The stored state of `r` as a floodable record.
  [[nodiscard]] MemberRecord record(topo::Rank r) const {
    return MemberRecord{r, at(r)};
  }

  [[nodiscard]] int count(Liveness s) const;
  /// dead[r] == true iff this view believes r is kDead. The input to
  /// degraded-mode route recomputation and survivor spanning trees.
  [[nodiscard]] std::vector<bool> dead_set() const;

  /// Wire encoding for kMembership flood frames: 17 bytes per record
  /// (rank i32 | state u8 | incarnation u32 | version u64, little-endian).
  static constexpr std::size_t kRecordBytes = 17;
  [[nodiscard]] static std::vector<std::byte> encode(
      const std::vector<MemberRecord>& recs);
  [[nodiscard]] static std::vector<MemberRecord> decode(const std::byte* data,
                                                        std::size_t bytes);

 private:
  std::vector<MemberState> states_;
};

}  // namespace meshmp::cluster
