#pragma once

// Per-node cluster membership view for the node-failure lifecycle.
//
// Every node keeps a MembershipView: what it currently believes about each
// rank's liveness. Views converge across survivors by flooding MemberRecords
// over the mesh (cluster/lifecycle.{hpp,cpp}); a record is "news" — applied
// and re-flooded — iff it is strictly newer than the stored state by
// (incarnation, version) lexicographic order, which both terminates the
// flood and lets a restarted node's fresh incarnation override any stale
// story about its previous life.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topo/torus.hpp"

namespace meshmp::cluster {

enum class Liveness : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,    ///< missed heartbeats, not yet declared dead
  kDead = 2,       ///< suspicion timeout expired; routed around
  kRejoining = 3,  ///< restarted, re-establishing connections
};

[[nodiscard]] const char* to_string(Liveness s) noexcept;

struct MemberState {
  Liveness state = Liveness::kAlive;
  /// Node incarnation (the via::KernelAgent epoch of the subject node as
  /// known to the record's author).
  std::uint32_t incarnation = 0;
  /// Monotone per (rank, incarnation); bumped by whoever authors a
  /// transition. (incarnation, version) orders records totally per rank.
  std::uint64_t version = 0;
};

/// One flooded unit of membership news about `rank`.
struct MemberRecord {
  topo::Rank rank = 0;
  MemberState st;
};

class MembershipView {
 public:
  explicit MembershipView(topo::Rank cluster_size)
      : states_(static_cast<std::size_t>(cluster_size)) {}

  [[nodiscard]] topo::Rank size() const noexcept {
    return static_cast<topo::Rank>(states_.size());
  }
  [[nodiscard]] const MemberState& at(topo::Rank r) const {
    return states_.at(static_cast<std::size_t>(r));
  }

  /// Applies `rec` iff it is news: (incarnation, version, state-severity)
  /// strictly greater than the stored record for that rank — the severity
  /// tie-break (dead > suspect > rejoining > alive) makes concurrent
  /// same-version conflicts converge. Returns whether it was news (the
  /// flood-forwarding gate).
  bool apply(const MemberRecord& rec);

  /// Resets the stored record for `r` to the default (alive, incarnation 0,
  /// version 0). Healing reconciliation retracts partition-era death
  /// verdicts this way: the retracted entry loses to *any* authored record,
  /// so the post-heal flood merge re-applies the other side's story as news
  /// — including any real deaths this side mistook for partition damage.
  void retract(topo::Rank r) {
    states_.at(static_cast<std::size_t>(r)) = MemberState{};
  }

  /// The stored state of `r` as a floodable record.
  [[nodiscard]] MemberRecord record(topo::Rank r) const {
    return MemberRecord{r, at(r)};
  }

  [[nodiscard]] int count(Liveness s) const;
  /// dead[r] == true iff this view believes r is kDead. The input to
  /// degraded-mode route recomputation and survivor spanning trees.
  [[nodiscard]] std::vector<bool> dead_set() const;

  /// Wire encoding for kMembership flood frames: 17 bytes per record
  /// (rank i32 | state u8 | incarnation u32 | version u64, little-endian).
  static constexpr std::size_t kRecordBytes = 17;
  [[nodiscard]] static std::vector<std::byte> encode(
      const std::vector<MemberRecord>& recs);
  [[nodiscard]] static std::vector<MemberRecord> decode(const std::byte* data,
                                                        std::size_t bytes);

 private:
  std::vector<MemberState> states_;
};

/// One flooded unit of link-quality news (gray-failure control plane): the
/// degraded-direction mask `rank` currently advertises for its own ports.
/// Versions are monotone per rank; apply-is-news gating in the lifecycle
/// terminates the kLinkState flood exactly like membership records.
struct LinkRecord {
  topo::Rank rank = 0;
  /// Degraded egress directions at `rank` (bit = topo::Dir::index()).
  std::uint32_t mask = 0;
  std::uint64_t version = 0;
};

/// Wire encoding for kLinkState flood frames: 16 bytes per record
/// (rank i32 | mask u32 | version u64, little-endian).
constexpr std::size_t kLinkRecordBytes = 16;
[[nodiscard]] std::vector<std::byte> encode_links(
    const std::vector<LinkRecord>& recs);
[[nodiscard]] std::vector<LinkRecord> decode_links(const std::byte* data,
                                                   std::size_t bytes);

/// Which side of a split machine a view places its holder on. Derived
/// purely from the view, so disjoint converged views classify themselves
/// without any cross-partition communication.
enum class QuorumSide : std::uint8_t {
  kPrimary,   ///< may keep serving: re-tree collectives, accept dials
  kMinority,  ///< must fail fast: no new channels, no collectives
};

/// The strict-majority quorum rule. Live ranks are everything the view does
/// not hold kDead (suspects and rejoiners still count — only a confirmed
/// death removes a vote). A side is primary iff its live ranks form a
/// strict majority of the configured machine; an exact half/half tie goes
/// to the side containing the lowest surviving rank, so exactly one side of
/// any bisection is ever primary.
[[nodiscard]] QuorumSide quorum_side(const MembershipView& v);

}  // namespace meshmp::cluster
