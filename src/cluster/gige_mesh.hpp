#pragma once

// Builder for a GigE mesh/torus cluster: N nodes, one adapter port per mesh
// direction, copper point-to-point cables to the neighbours, one modified
// M-VIA kernel agent per node. This is the simulated twin of the JLab
// clusters (paper sec. 3).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/fabric.hpp"
#include "hw/node.hpp"
#include "hw/params.hpp"
#include "sim/engine.hpp"
#include "sim/lp.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "topo/torus.hpp"
#include "via/agent.hpp"

namespace meshmp::cluster {

struct GigeMeshConfig {
  topo::Coord shape{4, 8, 8};
  bool wrap = true;
  hw::HostParams host{};
  hw::NicParams nic{};
  hw::BusParams bus{};
  net::LinkParams link = hw::gige_link_params();
  via::ViaParams via{};
  std::uint64_t seed = 1;
  /// Engine worker threads (MESHMP_THREADS). 0 = legacy sequential engine;
  /// >= 1 partitions the engine into one LP per node under conservative
  /// windowed synchronization (1 is the single-threaded reference run of
  /// the same algorithm — digests are identical at every value).
  unsigned threads = sim::threads_from_env();
};

class GigeMeshCluster {
 public:
  explicit GigeMeshCluster(GigeMeshConfig cfg);
  ~GigeMeshCluster();
  GigeMeshCluster(const GigeMeshCluster&) = delete;
  GigeMeshCluster& operator=(const GigeMeshCluster&) = delete;

  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }
  [[nodiscard]] const topo::Torus& torus() const noexcept { return torus_; }
  [[nodiscard]] topo::Rank size() const noexcept { return torus_.size(); }
  [[nodiscard]] const GigeMeshConfig& config() const noexcept { return cfg_; }

  [[nodiscard]] hw::NodeHw& node_hw(topo::Rank r) { return fabric_->node(r); }
  [[nodiscard]] via::KernelAgent& agent(topo::Rank r) { return *agents_.at(r); }
  /// The adapter of node `r` facing direction `dir`.
  [[nodiscard]] hw::Nic& nic(topo::Rank r, topo::Dir dir) {
    return fabric_->nic(r, dir);
  }

  /// LP owning rank r's events (control LP when not partitioned). Wrap
  /// per-rank driver construction/spawning in LpScope(engine(), lp_of(r))
  /// so its events land on the rank's own shard.
  [[nodiscard]] sim::LpId lp_of(topo::Rank r) const noexcept {
    return eng_.partitioned() ? static_cast<sim::LpId>(1 + r)
                              : sim::kControlLp;
  }

  /// Detaches a node program onto the simulation.
  void spawn(sim::Task<> program) { program.detach(); }

  /// Runs the simulation to completion.
  void run() { eng_.run(); }

  // -- node-failure lifecycle --------------------------------------------
  /// Observers (the ClusterLifecycle failure detector) notified after a node
  /// is power-failed / power-restored.
  void set_crash_hooks(std::function<void(topo::Rank)> on_crash,
                       std::function<void(topo::Rank)> on_restart) {
    on_crash_ = std::move(on_crash);
    on_restart_ = std::move(on_restart);
  }

  /// Whole-node power failure: every adapter powers off (rings and in-flight
  /// descriptors discarded, carrier drops at both cable ends) and the kernel
  /// agent fails all its connections so local blockers unwind.
  void power_fail_node(topo::Rank r);
  /// Cold start: the agent's incarnation epoch bumps first, then the
  /// adapters power on and both cable ends regain carrier.
  void power_restore_node(topo::Rank r);

 private:
  GigeMeshConfig cfg_;
  sim::Engine eng_;
  topo::Torus torus_;
  std::string digest_name_;
  std::unique_ptr<MeshFabric> fabric_;
  std::vector<std::unique_ptr<via::KernelAgent>> agents_;
  std::function<void(topo::Rank)> on_crash_;
  std::function<void(topo::Rank)> on_restart_;
};

}  // namespace meshmp::cluster
