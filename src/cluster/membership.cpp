#include "cluster/membership.hpp"

#include <cstring>
#include <tuple>

namespace meshmp::cluster {

const char* to_string(Liveness s) noexcept {
  switch (s) {
    case Liveness::kAlive:
      return "alive";
    case Liveness::kSuspect:
      return "suspect";
    case Liveness::kDead:
      return "dead";
    case Liveness::kRejoining:
      return "rejoining";
  }
  return "?";
}

namespace {

// Tie-break for records carrying the same (incarnation, version): the more
// pessimistic state wins everywhere, so two survivors authoring conflicting
// transitions at the same version still converge instead of flood-fighting.
int severity(Liveness s) noexcept {
  switch (s) {
    case Liveness::kAlive:
      return 0;
    case Liveness::kRejoining:
      return 1;
    case Liveness::kSuspect:
      return 2;
    case Liveness::kDead:
      return 3;
  }
  return 0;
}

}  // namespace

bool MembershipView::apply(const MemberRecord& rec) {
  MemberState& cur = states_.at(static_cast<std::size_t>(rec.rank));
  const bool news =
      std::tuple(rec.st.incarnation, rec.st.version, severity(rec.st.state)) >
      std::tuple(cur.incarnation, cur.version, severity(cur.state));
  if (news) cur = rec.st;
  return news;
}

int MembershipView::count(Liveness s) const {
  int n = 0;
  for (const MemberState& st : states_) {
    if (st.state == s) ++n;
  }
  return n;
}

std::vector<bool> MembershipView::dead_set() const {
  std::vector<bool> dead(states_.size(), false);
  for (std::size_t r = 0; r < states_.size(); ++r) {
    dead[r] = states_[r].state == Liveness::kDead;
  }
  return dead;
}

std::vector<std::byte> MembershipView::encode(
    const std::vector<MemberRecord>& recs) {
  std::vector<std::byte> out(recs.size() * kRecordBytes);
  std::byte* p = out.data();
  for (const MemberRecord& rec : recs) {
    const auto rank = static_cast<std::int32_t>(rec.rank);
    const auto state = static_cast<std::uint8_t>(rec.st.state);
    // meshmp-lint: host-copy(gossip record codec; control traffic bills lump
    // per-frame host costs, not per-byte copies)
    std::memcpy(p, &rank, 4);
    std::memcpy(p + 4, &state, 1);
    std::memcpy(p + 5, &rec.st.incarnation, 4);
    std::memcpy(p + 9, &rec.st.version, 8);
    p += kRecordBytes;
  }
  return out;
}

std::vector<std::byte> encode_links(const std::vector<LinkRecord>& recs) {
  std::vector<std::byte> out(recs.size() * kLinkRecordBytes);
  std::byte* p = out.data();
  for (const LinkRecord& rec : recs) {
    const auto rank = static_cast<std::int32_t>(rec.rank);
    // meshmp-lint: host-copy(link-state record codec; control traffic bills
    // lump per-frame host costs, not per-byte copies)
    std::memcpy(p, &rank, 4);
    std::memcpy(p + 4, &rec.mask, 4);
    std::memcpy(p + 8, &rec.version, 8);
    p += kLinkRecordBytes;
  }
  return out;
}

std::vector<LinkRecord> decode_links(const std::byte* data,
                                     std::size_t bytes) {
  std::vector<LinkRecord> recs;
  recs.reserve(bytes / kLinkRecordBytes);
  for (std::size_t off = 0; off + kLinkRecordBytes <= bytes;
       off += kLinkRecordBytes) {
    const std::byte* p = data + off;
    LinkRecord rec;
    std::int32_t rank = 0;
    // meshmp-lint: host-copy(link-state record decode; see encode above)
    std::memcpy(&rank, p, 4);
    std::memcpy(&rec.mask, p + 4, 4);
    std::memcpy(&rec.version, p + 8, 8);
    rec.rank = rank;
    recs.push_back(rec);
  }
  return recs;
}

QuorumSide quorum_side(const MembershipView& v) {
  const topo::Rank n = v.size();
  int live = 0;
  topo::Rank lowest_live = -1;
  topo::Rank lowest_dead = -1;
  for (topo::Rank r = 0; r < n; ++r) {
    if (v.at(r).state == Liveness::kDead) {
      if (lowest_dead < 0) lowest_dead = r;
    } else {
      ++live;
      if (lowest_live < 0) lowest_live = r;
    }
  }
  if (2 * live > n) return QuorumSide::kPrimary;
  if (2 * live < n) return QuorumSide::kMinority;
  // Exact half/half tie. The two sides of a bisection hold disjoint live
  // sets, so exactly one of them contains the globally lowest surviving
  // rank — that side wins. A view whose lowest live rank precedes its
  // lowest dead rank is the view holding that rank.
  if (lowest_live < 0) return QuorumSide::kMinority;
  return (lowest_dead < 0 || lowest_live < lowest_dead)
             ? QuorumSide::kPrimary
             : QuorumSide::kMinority;
}

std::vector<MemberRecord> MembershipView::decode(const std::byte* data,
                                                 std::size_t bytes) {
  std::vector<MemberRecord> recs;
  recs.reserve(bytes / kRecordBytes);
  for (std::size_t off = 0; off + kRecordBytes <= bytes;
       off += kRecordBytes) {
    const std::byte* p = data + off;
    MemberRecord rec;
    std::int32_t rank = 0;
    std::uint8_t state = 0;
    // meshmp-lint: host-copy(gossip record decode; see encode above)
    std::memcpy(&rank, p, 4);
    std::memcpy(&state, p + 4, 1);
    std::memcpy(&rec.st.incarnation, p + 5, 4);
    std::memcpy(&rec.st.version, p + 9, 8);
    rec.rank = rank;
    rec.st.state = static_cast<Liveness>(state);
    recs.push_back(rec);
  }
  return recs;
}

}  // namespace meshmp::cluster
