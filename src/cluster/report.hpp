#pragma once

// Post-run diagnostics: aggregates hardware and protocol counters across a
// cluster into a printable summary (CPU utilization, interrupt counts, frame
// totals, retransmissions, forwarding activity). Benches and examples use it
// to explain *why* a configuration performed the way it did.

#include <string>

#include "cluster/gige_mesh.hpp"
#include "obs/metrics.hpp"

namespace meshmp::cluster {

struct ClusterReport {
  double sim_seconds = 0;
  double avg_cpu_utilization = 0;
  double max_cpu_utilization = 0;
  std::int64_t interrupts = 0;
  std::int64_t napi_polls = 0;
  std::int64_t tx_frames = 0;
  std::int64_t rx_frames = 0;
  std::int64_t checksum_drops = 0;
  std::int64_t ring_drops = 0;
  std::int64_t forwarded_frames = 0;
  std::int64_t retransmits = 0;
  std::int64_t duplicate_discards = 0;  ///< out-of-order/dup frames dropped
  std::int64_t corrupt_discards = 0;    ///< wire-corrupted frames CRC-dropped
  std::int64_t rerouted_frames = 0;     ///< frames sent off the default hop
  std::int64_t carrier_drops = 0;       ///< frames lost to a dead cable
  std::int64_t unreachable_drops = 0;   ///< frames with no usable egress
  std::int64_t ttl_expired = 0;         ///< frames that ran out of hops
  std::int64_t vi_failures = 0;         ///< VIs whose retry budget ran out
  std::int64_t node_crashes = 0;        ///< whole-node power failures
  std::int64_t node_restarts = 0;       ///< cold starts after a crash
  std::int64_t stale_epoch_drops = 0;   ///< frames from a previous incarnation
  std::int64_t table_routed_frames = 0;  ///< frames sent via a degraded table
  std::int64_t partition_flushes = 0;    ///< epoch-bumping VI flushes on heal
  std::int64_t minority_refusals = 0;    ///< dials/sends refused on minority
  std::int64_t asym_carrier_drops = 0;   ///< frames eaten by a one-way cable
  std::int64_t dup_frame_discards = 0;   ///< exact-duplicate frames dropped
  std::int64_t degraded_avoided = 0;     ///< frames steered off a sick link

  /// Full metrics-registry view at snapshot time: every live counter group
  /// plus latency/size histogram summaries (p50/p95/p99). The scalar fields
  /// above stay as convenient named aggregates; this carries everything else.
  obs::Snapshot metrics;

  /// Multi-line human-readable rendering.
  [[nodiscard]] std::string str() const;
};

/// Snapshot of the cluster's counters at the current simulated time.
ClusterReport make_report(GigeMeshCluster& cluster);

}  // namespace meshmp::cluster
