#pragma once

// A connected TCP socket (stream semantics).
//
// The baseline against which the paper measures M-VIA: every send crosses the
// kernel boundary (syscall), is copied user->kernel, and is processed
// per-segment by the protocol machine; every receive pays the interrupt +
// protocol + software checksum path, then a second copy kernel->user at the
// recv() syscall.

#include <cstdint>
#include <deque>
#include <vector>

#include "net/frame.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace meshmp::tcpstack {

class TcpStack;

class TcpSocket {
 public:
  TcpSocket(TcpStack& stack, std::uint32_t id);
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] bool connected() const noexcept { return connected_; }
  [[nodiscard]] net::NodeId remote_node() const noexcept {
    return remote_node_;
  }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// Writes the whole buffer to the stream (blocking while the send window
  /// is full).
  sim::Task<> send(std::vector<std::byte> data);

  /// Reads 1..max_bytes from the stream (blocking until data is available).
  sim::Task<std::vector<std::byte>> recv(std::int64_t max_bytes);

  /// Reads exactly n bytes.
  sim::Task<std::vector<std::byte>> recv_exact(std::int64_t n);

  [[nodiscard]] const sim::Counters& counters() const noexcept {
    return counters_;
  }

 private:
  friend class TcpStack;

  TcpStack& stack_;
  std::uint32_t id_;

  bool connected_ = false;
  bool failed_ = false;
  net::NodeId remote_node_ = -1;
  std::uint32_t remote_conn_ = 0;
  sim::Trigger conn_done_;

  // transmit
  std::uint64_t next_tx_seq_ = 0;
  std::uint64_t acked_seq_ = 0;
  std::deque<net::Frame> unacked_;
  sim::Time oldest_unacked_ = 0;
  int retries_ = 0;
  bool retx_running_ = false;
  sim::Signal window_open_;
  sim::Resource send_lock_;

  // receive
  std::uint64_t expected_rx_seq_ = 0;
  int segs_since_ack_ = 0;
  bool ack_timer_running_ = false;
  std::vector<std::byte> sockbuf_;
  std::size_t sockbuf_head_ = 0;
  sim::Signal rx_ready_;

  sim::Counters counters_;
  obs::Registry::Registration metrics_reg_;
  std::int32_t trk_ = -1;  ///< per-socket trace track
};

}  // namespace meshmp::tcpstack
