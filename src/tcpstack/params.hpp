#pragma once

// Tunables of the kernel-2.4-era TCP/IP baseline stack.

#include <cstdint>

#include "sim/time.hpp"

namespace meshmp::tcpstack {

using namespace sim::literals;

struct TcpParams {
  /// Payload per segment (1500 MTU - 52 bytes of IP+TCP headers).
  std::int64_t mss = 1448;
  std::int64_t header_bytes = 52;
  /// Send window: maximum unacknowledged bytes in flight.
  std::int64_t window_bytes = 256 * 1024;
  /// Data segments per delayed ACK and the delayed-ack timer.
  int ack_every = 2;
  sim::Duration ack_delay = 200_us;
  /// Go-back-N retransmission. Kept above the drain time of the deepest
  /// in-flight pipeline (window/mss segments) to avoid spurious timeouts.
  sim::Duration retx_timeout = 50_ms;
  int max_retries = 10;
};

}  // namespace meshmp::tcpstack
