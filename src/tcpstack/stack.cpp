#include "tcpstack/stack.hpp"

#include <algorithm>
#include <any>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "buf/copy.hpp"

namespace meshmp::tcpstack {

using hw::Cpu;
using sim::Task;

TcpStack::TcpStack(hw::NodeHw& node, const topo::Torus& torus,
                   topo::Rank mesh_rank, TcpParams params)
    : node_(node),
      torus_(torus),
      me_(mesh_rank),
      my_coord_(torus.coord(mesh_rank)),
      params_(params),
      metrics_reg_(obs::Registry::instance().attach("tcp.stack", &counters_)),
      rx_seg_bytes_hist_(
          obs::Registry::instance().histogram("tcp.rx_seg_bytes")) {}

TcpStack::~TcpStack() = default;

void TcpStack::attach_nic(topo::Dir dir, hw::Nic& nic) {
  nic_by_dir_[dir.index()] = &nic;
  nic.set_driver(this);
}

void TcpStack::listen(std::uint16_t port) {
  if (!accept_queues_.contains(port)) {
    accept_queues_.emplace(port, std::make_unique<sim::Queue<TcpSocket*>>(
                                     node_.cpu().engine()));
  }
}

Task<TcpSocket*> TcpStack::connect(net::NodeId remote, std::uint16_t port) {
  socks_.push_back(std::make_unique<TcpSocket>(
      *this, static_cast<std::uint32_t>(socks_.size())));
  TcpSocket& s = *socks_.back();
  s.remote_node_ = remote;
  TcpHeader h;
  h.kind = SegKind::kSyn;
  h.src_conn = s.id();
  h.port = port;
  kernel_post(make_frame(remote, h, {}));
  co_await s.conn_done_.wait();
  co_return &s;
}

Task<TcpSocket*> TcpStack::accept(std::uint16_t port) {
  listen(port);
  TcpSocket* s = co_await accept_queues_.at(port)->pop();
  co_return s;
}

net::Frame TcpStack::make_frame(net::NodeId dst, const TcpHeader& h,
                                buf::Slice payload) const {
  net::Frame f;
  f.src = me_;
  f.dst = dst;
  f.proto = 1;
  f.wire_bytes =
      static_cast<std::int64_t>(payload.size()) + params_.header_bytes;
  f.payload = std::move(payload);
  f.meta = h;
  return f;
}

hw::Nic& TcpStack::egress_for(net::NodeId dst) {
  assert(dst != me_);
  const auto dir = torus_.sdf_next(my_coord_, torus_.coord(dst));
  assert(dir);
  auto it = nic_by_dir_.find(dir->index());
  if (it == nic_by_dir_.end()) {
    throw std::logic_error("TcpStack: no adapter on direction " + dir->str());
  }
  return *it->second;
}

void TcpStack::kernel_post(net::Frame f) {
  egress_for(f.dst).kernel_enqueue(std::move(f));
}

Task<> TcpStack::post_with_backpressure(hw::Nic& nic, net::Frame f) {
  while (nic.tx_free() == 0) co_await nic.tx_space().next();
  const bool ok = nic.post_tx(std::move(f));
  assert(ok);
  (void)ok;
}

Task<> TcpStack::stream_out(TcpSocket& s, std::vector<std::byte> data) {
  if (!s.connected_) throw std::logic_error("send on unconnected socket");
  const auto& hp = node_.cpu().host();
  const auto total = static_cast<std::int64_t>(data.size());
  const bool hot = total <= hp.cache_bytes;
  // Adopt the stream once; every MSS segment below aliases this storage, so
  // the *modeled* user->skb copy per segment has no host-side counterpart.
  const buf::Slice whole = buf::Pool::instance().adopt(std::move(data));

  MESHMP_TRACE_TRACK(s.trk_, me_, "sock" + std::to_string(s.id()));
  MESHMP_TRACE_SCOPE_ARG(node_.cpu().engine(), obs::Cat::kTcp, me_, s.trk_,
                         "tcp.stream_out", "bytes", total);
  co_await s.send_lock_.acquire();
  hw::Nic& nic = egress_for(s.remote_node_);
  std::int64_t off = 0;
  while (off < total) {
    const std::int64_t len = std::min(params_.mss, total - off);
    // Respect the send window (blocks until acks open it).
    while (s.next_tx_seq_ + static_cast<std::uint64_t>(len) >
           s.acked_seq_ + static_cast<std::uint64_t>(params_.window_bytes)) {
      co_await s.window_open_.next();
      if (s.failed_) {
        s.send_lock_.release();
        co_return;
      }
    }
    // Copy #1 of the TCP path: user buffer -> kernel skb.
    co_await buf::charge_copy(node_.cpu(), len, hot);
    // Per-segment protocol transmit work.
    co_await node_.cpu().busy(hp.tcp_tx_per_frame, Cpu::kUser);

    TcpHeader h;
    h.kind = SegKind::kData;
    h.src_conn = s.id();
    h.dst_conn = s.remote_conn_;
    h.seq = s.next_tx_seq_;
    buf::Slice chunk = whole.subslice(static_cast<std::size_t>(off),
                                      static_cast<std::size_t>(len));
    net::Frame f = make_frame(s.remote_node_, h, std::move(chunk));
    s.next_tx_seq_ += static_cast<std::uint64_t>(len);
    if (s.unacked_.empty()) {
      s.oldest_unacked_ = node_.cpu().engine().now();
    }
    s.unacked_.push_back(f);
    arm_retx_timer(s);
    co_await post_with_backpressure(nic, std::move(f));
    off += len;
  }
  s.send_lock_.release();
  s.counters_.inc("tx_bytes", total);
}

// -- receive path (ISR context) --------------------------------------------

Task<> TcpStack::handle_rx(net::Frame frame, hw::IsrContext& ctx) {
  const auto& hp = node_.cpu().host();
  if (frame.dst != me_) {
    counters_.inc("fwd_frames");
    MESHMP_TRACE_INSTANT_ARG(node_.cpu().engine(), obs::Cat::kTcp, me_,
                             "tcp.fwd", "dst", frame.dst);
    co_await ctx.spend(hp.tcp_forward_per_frame);
    kernel_post(std::move(frame));
    co_return;
  }
  const TcpHeader* h = std::any_cast<TcpHeader>(&frame.meta);
  if (h == nullptr) {
    counters_.inc("rx_bad_frame");
    co_return;
  }
  switch (h->kind) {
    case SegKind::kSyn:
    case SegKind::kSynAck:
      rx_connect(*h, frame);
      co_await ctx.spend(2_us);
      co_return;
    case SegKind::kAck: {
      if (h->dst_conn >= socks_.size()) {
        counters_.inc("rx_bad_conn");
        co_return;
      }
      co_await ctx.spend(hp.tcp_ack_rx);
      rx_ack(*socks_[h->dst_conn], *h);
      co_return;
    }
    case SegKind::kData: {
      if (h->dst_conn >= socks_.size()) {
        counters_.inc("rx_bad_conn");
        co_return;
      }
      co_await rx_data(*socks_[h->dst_conn], *h, frame, ctx);
      co_return;
    }
  }
}

Task<> TcpStack::rx_data(TcpSocket& s, const TcpHeader& h, net::Frame& f,
                         hw::IsrContext& ctx) {
  const auto& hp = node_.cpu().host();
  MESHMP_TRACE_TRACK(trk_rx_, me_, "tcp.rx");
  MESHMP_TRACE_SCOPE_ARG(node_.cpu().engine(), obs::Cat::kTcp, me_, trk_rx_,
                         "tcp.rx_data", "bytes", f.payload.size());
  co_await ctx.spend(hp.tcp_rx_per_frame);
  // Software checksum over the payload (no receive offload in this era).
  co_await ctx.spend(sim::transfer_time(
      static_cast<std::int64_t>(f.payload.size()), hp.tcp_csum_bytes_per_sec));

  if (h.seq != s.expected_rx_seq_) {
    s.counters_.inc("rx_out_of_order");
    MESHMP_TRACE_INSTANT_ARG(node_.cpu().engine(), obs::Cat::kTcp, me_,
                             "tcp.rx_out_of_order", "seq", h.seq);
    send_ack(s);  // dup-ack so the peer's go-back-N converges
    co_return;
  }
  s.expected_rx_seq_ += static_cast<std::uint64_t>(f.payload.size());
  rx_seg_bytes_hist_.add(static_cast<std::int64_t>(f.payload.size()));
  const bool was_empty = s.sockbuf_head_ == s.sockbuf_.size();
  s.sockbuf_.insert(s.sockbuf_.end(), f.payload.begin(), f.payload.end());
  if (was_empty) {
    co_await ctx.spend(hp.wakeup);
    s.rx_ready_.notify_all();
  }
  if (++s.segs_since_ack_ >= params_.ack_every) {
    co_await ctx.spend(hp.tcp_ack_tx);
    send_ack(s);
  } else {
    arm_ack_timer(s);
  }
}

void TcpStack::rx_ack(TcpSocket& s, const TcpHeader& h) {
  bool progress = false;
  while (!s.unacked_.empty()) {
    const auto* fh = std::any_cast<TcpHeader>(&s.unacked_.front().meta);
    assert(fh != nullptr);
    if (fh->seq + s.unacked_.front().payload.size() <= h.ack) {
      s.unacked_.pop_front();
      progress = true;
    } else {
      break;
    }
  }
  if (h.ack > s.acked_seq_) {
    s.acked_seq_ = h.ack;
    progress = true;
  }
  if (progress) {
    s.retries_ = 0;
    s.oldest_unacked_ = node_.cpu().engine().now();
    s.window_open_.notify_all();
  }
}

void TcpStack::rx_connect(const TcpHeader& h, const net::Frame& f) {
  if (h.kind == SegKind::kSyn) {
    auto it = accept_queues_.find(h.port);
    if (it == accept_queues_.end()) {
      counters_.inc("conn_refused");
      return;
    }
    socks_.push_back(std::make_unique<TcpSocket>(
        *this, static_cast<std::uint32_t>(socks_.size())));
    TcpSocket& s = *socks_.back();
    s.remote_node_ = f.src;
    s.remote_conn_ = h.src_conn;
    s.connected_ = true;
    it->second->push(&s);
    TcpHeader ack;
    ack.kind = SegKind::kSynAck;
    ack.src_conn = s.id();
    ack.dst_conn = h.src_conn;
    kernel_post(make_frame(f.src, ack, {}));
    return;
  }
  if (h.dst_conn >= socks_.size()) {
    counters_.inc("rx_bad_conn");
    return;
  }
  TcpSocket& s = *socks_[h.dst_conn];
  s.remote_conn_ = h.src_conn;
  s.connected_ = true;
  s.conn_done_.fire();
}

void TcpStack::send_ack(TcpSocket& s) {
  s.segs_since_ack_ = 0;
  TcpHeader h;
  h.kind = SegKind::kAck;
  h.src_conn = s.id();
  h.dst_conn = s.remote_conn_;
  h.ack = s.expected_rx_seq_;
  kernel_post(make_frame(s.remote_node_, h, {}));
}

void TcpStack::arm_ack_timer(TcpSocket& s) {
  if (s.ack_timer_running_) return;
  s.ack_timer_running_ = true;
  ack_timer_loop(s.id()).detach();
}

void TcpStack::arm_retx_timer(TcpSocket& s) {
  if (s.retx_running_) return;
  s.retx_running_ = true;
  retx_timer_loop(s.id()).detach();
}

Task<> TcpStack::ack_timer_loop(std::uint32_t conn) {
  TcpSocket& s = *socks_[conn];
  auto& eng = node_.cpu().engine();
  while (s.segs_since_ack_ > 0) {
    co_await sim::delay(eng, params_.ack_delay);
    if (s.segs_since_ack_ > 0) send_ack(s);
  }
  s.ack_timer_running_ = false;
}

Task<> TcpStack::retx_timer_loop(std::uint32_t conn) {
  TcpSocket& s = *socks_[conn];
  auto& eng = node_.cpu().engine();
  const auto& hp = node_.cpu().host();
  while (!s.unacked_.empty() && !s.failed_) {
    co_await sim::delay(eng, params_.retx_timeout);
    if (s.unacked_.empty()) break;
    if (eng.now() - s.oldest_unacked_ < params_.retx_timeout) continue;
    if (++s.retries_ > params_.max_retries) {
      s.failed_ = true;
      s.counters_.inc("failed");
      s.window_open_.notify_all();
      break;
    }
    s.counters_.inc("retransmits");
    MESHMP_TRACE_INSTANT_ARG(eng, obs::Cat::kTcp, me_, "tcp.retransmit",
                             "segs", s.unacked_.size());
    co_await node_.cpu().busy(
        hp.tcp_tx_per_frame * static_cast<sim::Duration>(s.unacked_.size()),
        Cpu::kKernel);
    for (const net::Frame& f : s.unacked_) kernel_post(f);
    s.oldest_unacked_ = eng.now();
  }
  s.retx_running_ = false;
}

}  // namespace meshmp::tcpstack
