#pragma once

// Per-node TCP/IP stack over the mesh: kernel IP forwarding gives multi-hop
// connectivity (the "careful setup of routing tables" the paper mentions for
// MPICH-P4 on a mesh); go-back-N with cumulative/delayed acks gives the
// reliable byte stream.

#include <cstdint>
#include <memory>
#include <vector>

#include "buf/pool.hpp"
#include "chk/flat_map.hpp"
#include "hw/nic.hpp"
#include "hw/node.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "tcpstack/params.hpp"
#include "tcpstack/socket.hpp"
#include "topo/torus.hpp"

namespace meshmp::tcpstack {

enum class SegKind : std::uint8_t { kSyn, kSynAck, kData, kAck };

struct TcpHeader {
  SegKind kind = SegKind::kData;
  std::uint32_t src_conn = 0;
  std::uint32_t dst_conn = 0;
  std::uint64_t seq = 0;  ///< stream offset of the first payload byte
  std::uint64_t ack = 0;  ///< cumulative ack (next expected byte)
  std::uint16_t port = 0; ///< rendezvous port (kSyn)

  // Carried per-frame inside Frame::meta — use the pooled meta freelist.
  MESHMP_POOLED_META()
};

static_assert(sizeof(TcpHeader) <= net::kMetaBlockBytes);

class TcpStack final : public hw::NicDriver {
 public:
  TcpStack(hw::NodeHw& node, const topo::Torus& torus, topo::Rank mesh_rank,
           TcpParams params);
  ~TcpStack() override;

  void attach_nic(topo::Dir dir, hw::Nic& nic);

  [[nodiscard]] net::NodeId node_id() const noexcept { return me_; }
  [[nodiscard]] hw::NodeHw& node() noexcept { return node_; }
  [[nodiscard]] const TcpParams& params() const noexcept { return params_; }

  void listen(std::uint16_t port);
  sim::Task<TcpSocket*> connect(net::NodeId remote, std::uint16_t port);
  sim::Task<TcpSocket*> accept(std::uint16_t port);

  sim::Task<> handle_rx(net::Frame frame, hw::IsrContext& ctx) override;

  [[nodiscard]] const sim::Counters& counters() const noexcept {
    return counters_;
  }

 private:
  friend class TcpSocket;

  sim::Task<> stream_out(TcpSocket& s, std::vector<std::byte> data);
  hw::Nic& egress_for(net::NodeId dst);
  void kernel_post(net::Frame f);
  sim::Task<> post_with_backpressure(hw::Nic& nic, net::Frame f);
  net::Frame make_frame(net::NodeId dst, const TcpHeader& h,
                        buf::Slice payload) const;
  void send_ack(TcpSocket& s);
  void arm_ack_timer(TcpSocket& s);
  void arm_retx_timer(TcpSocket& s);
  sim::Task<> ack_timer_loop(std::uint32_t conn);
  sim::Task<> retx_timer_loop(std::uint32_t conn);

  sim::Task<> rx_data(TcpSocket& s, const TcpHeader& h, net::Frame& f,
                      hw::IsrContext& ctx);
  void rx_ack(TcpSocket& s, const TcpHeader& h);
  void rx_connect(const TcpHeader& h, const net::Frame& f);

  hw::NodeHw& node_;
  const topo::Torus& torus_;
  net::NodeId me_;
  topo::Coord my_coord_;
  TcpParams params_;

  chk::FlatMap<int, hw::Nic*> nic_by_dir_;
  std::vector<std::unique_ptr<TcpSocket>> socks_;
  chk::FlatMap<std::uint16_t, std::unique_ptr<sim::Queue<TcpSocket*>>>
      accept_queues_;

  sim::Counters counters_;
  obs::Registry::Registration metrics_reg_;
  obs::Histogram& rx_seg_bytes_hist_;  ///< in-order data segment payloads
  std::int32_t trk_rx_ = -1;           ///< trace track for the rx/ISR side
};

}  // namespace meshmp::tcpstack
