#include "tcpstack/socket.hpp"

#include <algorithm>
#include <string>

#include "buf/copy.hpp"
#include "obs/trace.hpp"
#include "tcpstack/stack.hpp"

namespace meshmp::tcpstack {

TcpSocket::TcpSocket(TcpStack& stack, std::uint32_t id)
    : stack_(stack),
      id_(id),
      conn_done_(stack.node().cpu().engine()),
      window_open_(stack.node().cpu().engine()),
      send_lock_(stack.node().cpu().engine(), 1),
      rx_ready_(stack.node().cpu().engine()),
      metrics_reg_(obs::Registry::instance().attach("tcp.sock", &counters_)) {}

sim::Task<> TcpSocket::send(std::vector<std::byte> data) {
  auto& cpu = stack_.node().cpu();
  co_await cpu.busy(cpu.host().syscall, hw::Cpu::kUser);
  co_await stack_.stream_out(*this, std::move(data));
}

sim::Task<std::vector<std::byte>> TcpSocket::recv(std::int64_t max_bytes) {
  auto& cpu = stack_.node().cpu();
  MESHMP_TRACE_TRACK(trk_, stack_.node_id(), "sock" + std::to_string(id_));
  // Covers the blocked interval while the stream is empty plus the
  // kernel->user copy — the receive-side cost the paper's TCP baseline pays.
  MESHMP_TRACE_SCOPE(cpu.engine(), obs::Cat::kTcp, stack_.node_id(), trk_,
                     "tcp.recv_wait");
  co_await cpu.busy(cpu.host().syscall, hw::Cpu::kUser);
  while (sockbuf_head_ == sockbuf_.size()) {
    co_await rx_ready_.next();
  }
  const auto avail =
      static_cast<std::int64_t>(sockbuf_.size() - sockbuf_head_);
  const auto take = std::min(max_bytes, avail);
  // The second copy of the TCP path: kernel socket buffer -> user buffer.
  const bool hot = take <= cpu.host().cache_bytes;
  co_await buf::charge_copy(cpu, take, hot);
  std::vector<std::byte> out(
      sockbuf_.begin() + static_cast<std::ptrdiff_t>(sockbuf_head_),
      sockbuf_.begin() + static_cast<std::ptrdiff_t>(sockbuf_head_ + take));
  sockbuf_head_ += static_cast<std::size_t>(take);
  if (sockbuf_head_ > (1u << 20) && sockbuf_head_ * 2 > sockbuf_.size()) {
    sockbuf_.erase(sockbuf_.begin(),
                   sockbuf_.begin() + static_cast<std::ptrdiff_t>(sockbuf_head_));
    sockbuf_head_ = 0;
  }
  co_return out;
}

sim::Task<std::vector<std::byte>> TcpSocket::recv_exact(std::int64_t n) {
  std::vector<std::byte> out;
  out.reserve(static_cast<std::size_t>(n));
  while (static_cast<std::int64_t>(out.size()) < n) {
    auto chunk = co_await recv(n - static_cast<std::int64_t>(out.size()));
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  co_return out;
}

}  // namespace meshmp::tcpstack
