#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace meshmp::obs {

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

namespace {

/// Bucket index for a sample: 0 for values <= 0, else 1 + floor(log2(v)).
int bucket_of(std::int64_t value) {
  if (value <= 0) return 0;
  return std::bit_width(static_cast<std::uint64_t>(value));
}

/// Inclusive value range covered by bucket k (k >= 1).
std::pair<double, double> bucket_range(int k) {
  const double lo = k <= 1 ? 1.0 : std::ldexp(1.0, k - 1);
  const double hi = std::ldexp(1.0, k) - 1.0;
  return {lo, std::max(lo, hi)};
}

}  // namespace

void Histogram::add_direct(std::int64_t value, std::int64_t weight) {
  if (weight <= 0) return;
  const auto w = static_cast<std::uint64_t>(weight);
  buckets_[bucket_of(value)] += w;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += w;
  sum_ += value * weight;
}

void Histogram::set_shards(int nworkers) {
  const int want = nworkers > 1 ? nworkers - 1 : 0;
  if (want == nshards_) return;
  shards_ = want > 0 ? std::make_unique<Histogram[]>(
                           static_cast<std::size_t>(want))
                     : nullptr;
  nshards_ = want;
}

void Histogram::merge_shards() {
  for (int i = 0; i < nshards_; ++i) {
    merge(shards_[i]);
    shards_[i] = Histogram{};
  }
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based, nearest-rank with interpolation
  // inside the bucket.
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;
  double seen = 0;
  for (int k = 0; k < kBuckets; ++k) {
    if (buckets_[k] == 0) continue;
    const auto in_bucket = static_cast<double>(buckets_[k]);
    if (rank > seen + in_bucket) {
      seen += in_bucket;
      continue;
    }
    if (k == 0) return std::clamp(0.0, static_cast<double>(min_),
                                  static_cast<double>(max_));
    const auto [lo, hi] = bucket_range(k);
    const double frac = in_bucket > 1 ? (rank - seen - 1.0) / (in_bucket - 1.0)
                                      : 0.5;
    const double v = lo + frac * (hi - lo);
    return std::clamp(v, static_cast<double>(min_),
                      static_cast<double>(max_));
  }
  return static_cast<double>(max_);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (int k = 0; k < kBuckets; ++k) buckets_[k] += other.buckets_[k];
  count_ += other.count_;
  sum_ += other.sum_;
}

// --------------------------------------------------------------------------
// Snapshot
// --------------------------------------------------------------------------

std::int64_t Snapshot::counter(const std::string& name) const {
  for (const auto& [k, v] : counters) {
    if (k == name) return v;
  }
  return 0;
}

const HistogramSummary* Snapshot::hist(const std::string& name) const {
  for (const auto& h : hists) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string Snapshot::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad1 = pad + "  ";
  const std::string pad2 = pad1 + "  ";
  std::string out = "{\n" + pad1 + "\"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    char line[192];
    std::snprintf(line, sizeof(line), "%s\"%s\": %" PRId64, pad2.c_str(),
                  counters[i].first.c_str(), counters[i].second);
    out += line;
  }
  out += counters.empty() ? "},\n" : "\n" + pad1 + "},\n";
  out += pad1 + "\"histograms\": {";
  for (std::size_t i = 0; i < hists.size(); ++i) {
    const HistogramSummary& h = hists[i];
    out += i == 0 ? "\n" : ",\n";
    char line[320];
    std::snprintf(line, sizeof(line),
                  "%s\"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRId64
                  ", \"min\": %" PRId64 ", \"max\": %" PRId64
                  ", \"mean\": %.6g, \"p50\": %.6g, \"p95\": %.6g, "
                  "\"p99\": %.6g}",
                  pad2.c_str(), h.name.c_str(), h.count, h.sum, h.min, h.max,
                  h.mean, h.p50, h.p95, h.p99);
    out += line;
  }
  out += hists.empty() ? "}\n" : "\n" + pad1 + "}\n";
  out += pad + "}";
  return out;
}

// --------------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------------

Registry::Registration::~Registration() {
  if (reg_ != nullptr) reg_->detach(id_);
}

Registry& Registry::instance() {
  static Registry reg;
  return reg;
}

Registry::Registration Registry::attach(std::string group,
                                        const Counters* counters) {
  chk::SimLockGuard g(reg_mu_);
  const std::uint64_t id = next_id_++;
  sources_.push_back(Source{id, std::move(group), counters});
  return Registration{this, id};
}

void Registry::detach(std::uint64_t id) {
  chk::SimLockGuard g(reg_mu_);
  // Ids are handed out monotonically and sources_ is append-only between
  // erases, so it stays sorted by id: binary search instead of a scan.
  // Teardown detaches in near-LIFO order, which also keeps the erase cheap.
  auto it = std::lower_bound(
      sources_.begin(), sources_.end(), id,
      [](const Source& s, std::uint64_t want) { return s.id < want; });
  if (it == sources_.end() || it->id != id || it->counters == nullptr) return;
  // Reuse one buffer for the "<group>.<key>" names: cluster teardown folds
  // thousands of sources, and a fresh string per key made detach a visible
  // slice of bench teardown time.
  std::string name;
  for (const auto& [key, value] : it->counters->items()) {
    name.assign(it->group);
    name += '.';
    name += key;
    retired_.inc(name, value);
  }
  // Tombstone instead of erasing: a 256-node cluster detaches thousands of
  // sources in non-LIFO order, and erasing each one memmoved the whole tail
  // (quadratic teardown). Compacting once the dead outnumber the live keeps
  // detach amortized O(log n) and preserves the sorted-by-id order.
  it->counters = nullptr;
  ++dead_sources_;
  if (dead_sources_ * 2 > sources_.size()) {
    std::erase_if(sources_,
                  [](const Source& s) { return s.counters == nullptr; });
    dead_sources_ = 0;
  }
}

Histogram& Registry::histogram(const std::string& name) {
  chk::SimLockGuard g(reg_mu_);
  for (auto& [n, h] : hists_) {
    if (n == name) return *h;
  }
  hists_.emplace_back(name, std::make_unique<Histogram>());
  if (shard_width_ > 0) hists_.back().second->set_shards(shard_width_);
  return *hists_.back().second;
}

void Registry::begin_parallel(unsigned nworkers) {
  chk::SimLockGuard g(reg_mu_);
  shard_width_ = static_cast<int>(nworkers);
  for (auto& [name, h] : hists_) h->set_shards(shard_width_);
}

void Registry::end_parallel() {
  chk::SimLockGuard g(reg_mu_);
  shard_width_ = 0;
  for (auto& [name, h] : hists_) h->merge_shards();
}

Snapshot Registry::snapshot() const {
  chk::SimLockGuard g(reg_mu_);
  return snapshot_impl(true);
}
Snapshot Registry::snapshot_live() const {
  chk::SimLockGuard g(reg_mu_);
  return snapshot_impl(false);
}

Snapshot Registry::snapshot_impl(bool include_retired) const {
  Counters total;
  std::string name;  // reused "<group>.<key>" buffer, as in detach()
  for (const Source& s : sources_) {
    if (s.counters == nullptr) continue;  // tombstoned (detached)
    for (const auto& [key, value] : s.counters->items()) {
      name.assign(s.group);
      name += '.';
      name += key;
      total.inc(name, value);
    }
  }
  if (include_retired) {
    for (const auto& [key, value] : retired_.items()) total.inc(key, value);
  }
  Snapshot snap;
  snap.counters = total.items();
  for (const auto& [name, h] : hists_) {
    if (h->count() == 0) continue;
    HistogramSummary s;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.mean = h->mean();
    s.p50 = h->p50();
    s.p95 = h->p95();
    s.p99 = h->p99();
    snap.hists.push_back(std::move(s));
  }
  std::sort(snap.hists.begin(), snap.hists.end(),
            [](const HistogramSummary& a, const HistogramSummary& b) {
              return a.name < b.name;
            });
  return snap;
}

void Registry::reset() {
  chk::SimLockGuard g(reg_mu_);
  retired_ = Counters{};
  for (auto& [name, h] : hists_) h->reset();
}

}  // namespace meshmp::obs
