#pragma once

// Sim-time event tracer with Chrome/Perfetto trace_event JSON export.
//
// The tracer records what the simulated cluster was doing *in simulated
// time*: scoped spans (DMA of one frame, an ISR, a blocked recv), instant
// events (a retransmission, an interrupt arming) and async spans (descriptor
// post -> completion, a rendezvous id across both hosts). Exported traces
// open directly in https://ui.perfetto.dev or chrome://tracing; nodes map to
// processes and named tracks to threads.
//
// Cost model:
//  * Compile-time off by default. Without MESHMP_OBS_TRACING every
//    MESHMP_TRACE_* macro expands to ((void)0) — zero code, zero data.
//    Configure with -DMESHMP_TRACING=ON to compile the instrumentation in.
//  * Runtime off by default. Compiled-in macros test one global bool and a
//    category bit before touching anything else.
//  * Ring-buffered when on: a fixed-capacity buffer overwrites the oldest
//    events, so tracing a long run keeps the tail and never grows unbounded.
//
// Tracing must not perturb the model. The tracer only *reads* the simulated
// clock; it never schedules events, consumes RNG, or touches component
// state, so modeled results and determinism digests are bit-identical with
// tracing on or off (enforced by test_obs.cpp).

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace meshmp::sim {
class Engine;
}

namespace meshmp::obs {

/// Event categories, used both for filtering (category mask) and as the
/// "cat" field in the exported JSON.
enum class Cat : std::uint8_t {
  kSim = 0,   ///< engine event dispatch (very high volume)
  kNic = 1,   ///< adapter model: DMA, wire, interrupts, NAPI
  kVia = 2,   ///< M-VIA: VIs, kernel agent, forwarding, reliability
  kMp = 3,    ///< message-passing core: eager/rendezvous, matching
  kColl = 4,  ///< collectives
  kTcp = 5,   ///< TCP comparison stack
  kApp = 6,   ///< benches and applications
};

[[nodiscard]] const char* to_string(Cat cat) noexcept;

constexpr std::uint32_t cat_bit(Cat c) {
  return 1u << static_cast<unsigned>(c);
}
/// Default mask: everything except per-dispatch engine events, which are so
/// numerous they evict everything else from the ring.
constexpr std::uint32_t kDefaultCatMask = 0xffffffffu & ~cat_bit(Cat::kSim);

/// The node id used for events with no owning node (the engine itself).
constexpr std::int32_t kEnginePid = 1 << 20;

struct TraceEvent {
  enum class Phase : std::uint8_t {
    kComplete,    ///< "X": ts + dur
    kInstant,     ///< "i"
    kAsyncBegin,  ///< "b" (id-matched)
    kAsyncEnd,    ///< "e" (id-matched)
    kCounter,     ///< "C"
  };

  sim::Time ts = 0;
  sim::Duration dur = 0;
  const char* name = nullptr;      ///< string literal
  const char* arg_name = nullptr;  ///< string literal or null
  double arg = 0;
  std::uint64_t id = 0;  ///< async span id
  std::int32_t node = 0;
  std::int32_t track = 0;  ///< interned track id (exported as tid)
  Cat cat = Cat::kSim;
  Phase phase = Phase::kInstant;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Starts recording into a fresh ring of `capacity` events.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void set_categories(std::uint32_t mask) noexcept { cat_mask_ = mask; }
  [[nodiscard]] std::uint32_t categories() const noexcept { return cat_mask_; }
  [[nodiscard]] bool wants(Cat c) const noexcept {
    return enabled_ && (cat_mask_ & cat_bit(c)) != 0;
  }

  /// Interns a (node, track-name) pair; the id becomes the exported tid.
  /// Interned tracks survive clear()/enable() so cached ids stay valid.
  std::int32_t track(std::int32_t node, std::string name);

  void complete(sim::Time ts, sim::Duration dur, Cat cat, std::int32_t node,
                std::int32_t track, const char* name,
                const char* arg_name = nullptr, double arg = 0);
  void instant(sim::Time ts, Cat cat, std::int32_t node, const char* name,
               const char* arg_name = nullptr, double arg = 0);
  void async_begin(sim::Time ts, Cat cat, std::int32_t node, const char* name,
                   std::uint64_t id, const char* arg_name = nullptr,
                   double arg = 0);
  void async_end(sim::Time ts, Cat cat, std::int32_t node, const char* name,
                 std::uint64_t id);
  void counter(sim::Time ts, Cat cat, std::int32_t node, const char* name,
               double value);

  /// Events currently in the ring, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Chrome trace_event JSON ({"traceEvents": [...]}), events sorted by
  /// timestamp, with process/thread naming metadata.
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`; returns false (with a message to stderr) on
  /// I/O failure.
  bool write_json(const std::string& path) const;

  void clear();

  static constexpr std::size_t kDefaultCapacity = 1u << 20;

 private:
  Tracer() = default;
  void push(const TraceEvent& ev);

  bool enabled_ = false;
  std::uint32_t cat_mask_ = kDefaultCatMask;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  ///< next write position
  bool wrapped_ = false;
  std::uint64_t dropped_ = 0;
  struct Track {
    std::int32_t node;
    std::string name;
  };
  std::vector<Track> tracks_;  ///< index == track id
};

/// Fraction of [t0, t1] on `node` covered by the union of complete spans.
/// This is the acceptance metric for "the trace explains the run": gaps mean
/// simulated time nobody instrumented.
double span_coverage(const std::vector<TraceEvent>& events, std::int32_t node,
                     sim::Time t0, sim::Time t1);

/// Enables tracing when the MESHMP_TRACE environment variable names an
/// output path (MESHMP_TRACE_CATS optionally selects categories as a comma
/// list, e.g. "nic,via,sim"). Returns true when tracing was enabled. When
/// the tracer is compiled out, warns on stderr and returns false.
bool trace_init_from_env();
/// Writes the trace to the path captured by trace_init_from_env(), if any.
void trace_flush_env();

/// RAII scoped span: records the simulated time on construction and emits a
/// complete event for [t_ctor, t_dtor] on destruction. Safe to hold across
/// co_awaits — the span then covers the suspended interval, which is exactly
/// what a blocked-recv span should show.
class SpanHandle {
 public:
  SpanHandle(sim::Engine& eng, Cat cat, std::int32_t node, std::int32_t track,
             const char* name, const char* arg_name = nullptr,
             double arg = 0);
  SpanHandle(const SpanHandle&) = delete;
  SpanHandle& operator=(const SpanHandle&) = delete;
  ~SpanHandle();

 private:
  sim::Engine* eng_ = nullptr;  ///< null when tracing was off at construction
  sim::Time t0_ = 0;
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  double arg_ = 0;
  std::int32_t node_ = 0;
  std::int32_t track_ = 0;
  Cat cat_ = Cat::kSim;
};

/// RAII async span: emits an async-begin ("b") on construction and the
/// matching async-end ("e") on destruction. Unlike SpanHandle these render
/// correctly when several instances with distinct ids overlap in time, so
/// they fit protocol phases (a rendezvous, a descriptor's lifetime) that
/// interleave freely on one node.
class AsyncScope {
 public:
  AsyncScope(sim::Engine& eng, Cat cat, std::int32_t node, const char* name,
             std::uint64_t id);
  AsyncScope(const AsyncScope&) = delete;
  AsyncScope& operator=(const AsyncScope&) = delete;
  ~AsyncScope();

 private:
  sim::Engine* eng_ = nullptr;  ///< null when tracing was off at construction
  const char* name_ = nullptr;
  std::uint64_t id_ = 0;
  std::int32_t node_ = 0;
  Cat cat_ = Cat::kSim;
};

}  // namespace meshmp::obs

// --------------------------------------------------------------------------
// Instrumentation macros. These are the only spellings components should
// use: they vanish entirely when MESHMP_OBS_TRACING is not defined.
//
//   MESHMP_TRACE_SCOPE(eng, cat, node, track_id, "name")
//     RAII span on an interned track (see MESHMP_TRACE_TRACK).
//   MESHMP_TRACE_TRACK(var, node, "track-name")
//     Lazily interns a track id into `var` (an std::int32_t initialized to
//     -1) when tracing is on.
//   MESHMP_TRACE_INSTANT / _ASYNC_BEGIN / _ASYNC_END / _COUNTER
//     Single events; cheap enough for ISR paths.
// --------------------------------------------------------------------------

#if MESHMP_OBS_TRACING

#define MESHMP_TRACE_CONCAT2(a, b) a##b
#define MESHMP_TRACE_CONCAT(a, b) MESHMP_TRACE_CONCAT2(a, b)

#define MESHMP_TRACE_SCOPE(eng, cat, node, track, name)                     \
  ::meshmp::obs::SpanHandle MESHMP_TRACE_CONCAT(meshmp_trace_span_,         \
                                                __LINE__)(                  \
      (eng), (cat), (node), (track), (name))

#define MESHMP_TRACE_SCOPE_ARG(eng, cat, node, track, name, argname, argval) \
  ::meshmp::obs::SpanHandle MESHMP_TRACE_CONCAT(meshmp_trace_span_,          \
                                                __LINE__)(                   \
      (eng), (cat), (node), (track), (name), (argname),                      \
      static_cast<double>(argval))

#define MESHMP_TRACE_TRACK(var, node, trackname)                            \
  do {                                                                      \
    if ((var) < 0 && ::meshmp::obs::Tracer::instance().enabled()) {         \
      (var) = ::meshmp::obs::Tracer::instance().track((node), (trackname)); \
    }                                                                       \
  } while (0)

#define MESHMP_TRACE_INSTANT(eng, cat, node, name)                        \
  do {                                                                    \
    auto& meshmp_trace_tr = ::meshmp::obs::Tracer::instance();            \
    if (meshmp_trace_tr.wants(cat)) {                                     \
      meshmp_trace_tr.instant((eng).now(), (cat), (node), (name));        \
    }                                                                     \
  } while (0)

#define MESHMP_TRACE_INSTANT_ARG(eng, cat, node, name, argname, argval)   \
  do {                                                                    \
    auto& meshmp_trace_tr = ::meshmp::obs::Tracer::instance();            \
    if (meshmp_trace_tr.wants(cat)) {                                     \
      meshmp_trace_tr.instant((eng).now(), (cat), (node), (name),         \
                              (argname), static_cast<double>(argval));    \
    }                                                                     \
  } while (0)

#define MESHMP_TRACE_ASYNC_SCOPE(eng, cat, node, name, id)                \
  ::meshmp::obs::AsyncScope MESHMP_TRACE_CONCAT(meshmp_trace_async_,      \
                                                __LINE__)(                \
      (eng), (cat), (node), (name), (id))

#define MESHMP_TRACE_ASYNC_BEGIN(eng, cat, node, name, id)                \
  do {                                                                    \
    auto& meshmp_trace_tr = ::meshmp::obs::Tracer::instance();            \
    if (meshmp_trace_tr.wants(cat)) {                                     \
      meshmp_trace_tr.async_begin((eng).now(), (cat), (node), (name),     \
                                  (id));                                  \
    }                                                                     \
  } while (0)

#define MESHMP_TRACE_ASYNC_END(eng, cat, node, name, id)                  \
  do {                                                                    \
    auto& meshmp_trace_tr = ::meshmp::obs::Tracer::instance();            \
    if (meshmp_trace_tr.wants(cat)) {                                     \
      meshmp_trace_tr.async_end((eng).now(), (cat), (node), (name), (id)); \
    }                                                                     \
  } while (0)

#define MESHMP_TRACE_COUNTER(eng, cat, node, name, value)                 \
  do {                                                                    \
    auto& meshmp_trace_tr = ::meshmp::obs::Tracer::instance();            \
    if (meshmp_trace_tr.wants(cat)) {                                     \
      meshmp_trace_tr.counter((eng).now(), (cat), (node), (name),         \
                              static_cast<double>(value));                \
    }                                                                     \
  } while (0)

#else  // !MESHMP_OBS_TRACING

#define MESHMP_TRACE_SCOPE(eng, cat, node, track, name) ((void)0)
#define MESHMP_TRACE_SCOPE_ARG(eng, cat, node, track, name, argname, argval) \
  ((void)0)
#define MESHMP_TRACE_TRACK(var, node, trackname) ((void)0)
#define MESHMP_TRACE_INSTANT(eng, cat, node, name) ((void)0)
#define MESHMP_TRACE_INSTANT_ARG(eng, cat, node, name, argname, argval) \
  ((void)0)
#define MESHMP_TRACE_ASYNC_SCOPE(eng, cat, node, name, id) ((void)0)
#define MESHMP_TRACE_ASYNC_BEGIN(eng, cat, node, name, id) ((void)0)
#define MESHMP_TRACE_ASYNC_END(eng, cat, node, name, id) ((void)0)
#define MESHMP_TRACE_COUNTER(eng, cat, node, name, value) ((void)0)

#endif  // MESHMP_OBS_TRACING
