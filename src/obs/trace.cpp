#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "sim/engine.hpp"

namespace meshmp::obs {

const char* to_string(Cat cat) noexcept {
  switch (cat) {
    case Cat::kSim:
      return "sim";
    case Cat::kNic:
      return "nic";
    case Cat::kVia:
      return "via";
    case Cat::kMp:
      return "mp";
    case Cat::kColl:
      return "coll";
    case Cat::kTcp:
      return "tcp";
    case Cat::kApp:
      return "app";
  }
  return "?";
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(std::size_t capacity) {
  clear();
  capacity_ = std::max<std::size_t>(capacity, 1);
  ring_.reserve(std::min<std::size_t>(capacity_, 1u << 16));
  enabled_ = true;
}

void Tracer::clear() {
  // Track interning survives clear(): components cache track ids, and a
  // stale id pointing at a recycled slot would mislabel every later span.
  ring_.clear();
  head_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

std::int32_t Tracer::track(std::int32_t node, std::string name) {
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].node == node && tracks_[i].name == name) {
      return static_cast<std::int32_t>(i);
    }
  }
  tracks_.push_back(Track{node, std::move(name)});
  return static_cast<std::int32_t>(tracks_.size() - 1);
}

void Tracer::push(const TraceEvent& ev) {
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
    return;
  }
  ring_[head_] = ev;
  head_ = (head_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
}

void Tracer::complete(sim::Time ts, sim::Duration dur, Cat cat,
                      std::int32_t node, std::int32_t track, const char* name,
                      const char* arg_name, double arg) {
  if (!wants(cat)) return;
  TraceEvent ev;
  ev.ts = ts;
  ev.dur = dur;
  ev.name = name;
  ev.arg_name = arg_name;
  ev.arg = arg;
  ev.node = node;
  ev.track = track;
  ev.cat = cat;
  ev.phase = TraceEvent::Phase::kComplete;
  push(ev);
}

void Tracer::instant(sim::Time ts, Cat cat, std::int32_t node,
                     const char* name, const char* arg_name, double arg) {
  if (!wants(cat)) return;
  TraceEvent ev;
  ev.ts = ts;
  ev.name = name;
  ev.arg_name = arg_name;
  ev.arg = arg;
  ev.node = node;
  ev.track = -1;
  ev.cat = cat;
  ev.phase = TraceEvent::Phase::kInstant;
  push(ev);
}

void Tracer::async_begin(sim::Time ts, Cat cat, std::int32_t node,
                         const char* name, std::uint64_t id,
                         const char* arg_name, double arg) {
  if (!wants(cat)) return;
  TraceEvent ev;
  ev.ts = ts;
  ev.name = name;
  ev.arg_name = arg_name;
  ev.arg = arg;
  ev.id = id;
  ev.node = node;
  ev.track = -1;
  ev.cat = cat;
  ev.phase = TraceEvent::Phase::kAsyncBegin;
  push(ev);
}

void Tracer::async_end(sim::Time ts, Cat cat, std::int32_t node,
                       const char* name, std::uint64_t id) {
  if (!wants(cat)) return;
  TraceEvent ev;
  ev.ts = ts;
  ev.name = name;
  ev.id = id;
  ev.node = node;
  ev.track = -1;
  ev.cat = cat;
  ev.phase = TraceEvent::Phase::kAsyncEnd;
  push(ev);
}

void Tracer::counter(sim::Time ts, Cat cat, std::int32_t node,
                     const char* name, double value) {
  if (!wants(cat)) return;
  TraceEvent ev;
  ev.ts = ts;
  ev.name = name;
  ev.arg_name = "value";
  ev.arg = value;
  ev.node = node;
  ev.track = -1;
  ev.cat = cat;
  ev.phase = TraceEvent::Phase::kCounter;
  push(ev);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  } else {
    out = ring_;
  }
  return out;
}

namespace {

/// Escapes a string for a JSON value. Names are string literals from our own
/// code, so this only needs to handle quotes/backslashes defensively.
std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

/// Emits the common fields of one trace_event. `ph` is the phase letter.
void append_event_json(std::string& out, const TraceEvent& ev, char ph) {
  char buf[256];
  // Perfetto wants microseconds; keep nanosecond precision as fractions.
  const double ts_us = static_cast<double>(ev.ts) / 1000.0;
  std::snprintf(buf, sizeof(buf),
                "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", "
                "\"ts\": %.3f, \"pid\": %d, \"tid\": %d",
                json_escape(ev.name).c_str(), to_string(ev.cat), ph, ts_us,
                ev.node, ev.track >= 0 ? ev.track : 0);
  out += buf;
  if (ph == 'X') {
    std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f",
                  static_cast<double>(ev.dur) / 1000.0);
    out += buf;
  }
  if (ph == 'b' || ph == 'e') {
    std::snprintf(buf, sizeof(buf), ", \"id\": \"%" PRIx64 "\", \"scope\": \"%s\"",
                  ev.id, to_string(ev.cat));
    out += buf;
  }
  if (ph == 'i') out += ", \"s\": \"t\"";
  if (ev.arg_name != nullptr) {
    std::snprintf(buf, sizeof(buf), ", \"args\": {\"%s\": %.6g}",
                  json_escape(ev.arg_name).c_str(), ev.arg);
    out += buf;
  } else if (ph == 'b' || ph == 'e') {
    // Async events require an args object in some consumers.
    out += ", \"args\": {}";
  }
  out += '}';
}

}  // namespace

std::string Tracer::to_json() const {
  std::vector<TraceEvent> evs = events();
  std::stable_sort(evs.begin(), evs.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts < b.ts;
                   });

  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  char buf[256];

  // Metadata: name processes after nodes and threads after interned tracks.
  std::vector<std::int32_t> pids;
  for (const TraceEvent& ev : evs) pids.push_back(ev.node);
  for (const Track& t : tracks_) pids.push_back(t.node);
  std::sort(pids.begin(), pids.end());
  pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
  for (std::int32_t pid : pids) {
    if (!first) out += ",\n";
    first = false;
    if (pid == kEnginePid) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
                    "\"args\": {\"name\": \"engine\"}}",
                    pid);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
                    "\"args\": {\"name\": \"node%d\"}}",
                    pid, pid);
    }
    out += buf;
  }
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (!first) out += ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, "
                  "\"tid\": %zu, \"args\": {\"name\": \"%s\"}}",
                  tracks_[i].node, i, json_escape(tracks_[i].name.c_str()).c_str());
    out += buf;
  }

  for (const TraceEvent& ev : evs) {
    if (!first) out += ",\n";
    first = false;
    char ph = 'i';
    switch (ev.phase) {
      case TraceEvent::Phase::kComplete:
        ph = 'X';
        break;
      case TraceEvent::Phase::kInstant:
        ph = 'i';
        break;
      case TraceEvent::Phase::kAsyncBegin:
        ph = 'b';
        break;
      case TraceEvent::Phase::kAsyncEnd:
        ph = 'e';
        break;
      case TraceEvent::Phase::kCounter:
        ph = 'C';
        break;
    }
    append_event_json(out, ev, ph);
  }
  out += "\n], \"displayTimeUnit\": \"ns\"}\n";
  return out;
}

bool Tracer::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open trace output '%s'\n", path.c_str());
    return false;
  }
  const std::string json = to_json();
  const std::size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (wrote != json.size()) {
    std::fprintf(stderr, "obs: short write to trace output '%s'\n",
                 path.c_str());
    return false;
  }
  return true;
}

double span_coverage(const std::vector<TraceEvent>& events, std::int32_t node,
                     sim::Time t0, sim::Time t1) {
  if (t1 <= t0) return 0.0;
  std::vector<std::pair<sim::Time, sim::Time>> spans;
  for (const TraceEvent& ev : events) {
    if (ev.phase != TraceEvent::Phase::kComplete || ev.node != node) continue;
    const sim::Time lo = std::max(ev.ts, t0);
    const sim::Time hi = std::min(ev.ts + ev.dur, t1);
    if (hi > lo) spans.emplace_back(lo, hi);
  }
  std::sort(spans.begin(), spans.end());
  sim::Duration covered = 0;
  sim::Time cursor = t0;
  for (const auto& [lo, hi] : spans) {
    const sim::Time begin = std::max(lo, cursor);
    if (hi > begin) {
      covered += hi - begin;
      cursor = hi;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(t1 - t0);
}

namespace {
std::string g_env_trace_path;  // captured by trace_init_from_env()
}

bool trace_init_from_env() {
  // Called once from main()/BenchReport before any cluster exists, so the
  // mt-unsafe getenv cannot race a setenv.
  const char* path = std::getenv("MESHMP_TRACE");  // NOLINT(concurrency-mt-unsafe)
  if (path == nullptr || *path == '\0') return false;
#if MESHMP_OBS_TRACING
  Tracer& tr = Tracer::instance();
  tr.enable();
  if (const char* cats = std::getenv("MESHMP_TRACE_CATS");  // NOLINT(concurrency-mt-unsafe)
      cats != nullptr && *cats != '\0') {
    std::uint32_t mask = 0;
    const char* p = cats;
    while (*p != '\0') {
      const char* end = std::strchr(p, ',');
      const std::size_t len =
          end != nullptr ? static_cast<std::size_t>(end - p) : std::strlen(p);
      const std::string_view tok(p, len);
      for (int c = 0; c <= static_cast<int>(Cat::kApp); ++c) {
        if (tok == to_string(static_cast<Cat>(c))) {
          mask |= cat_bit(static_cast<Cat>(c));
        }
      }
      if (tok == "all") mask = 0xffffffffu;
      p = end != nullptr ? end + 1 : p + len;
    }
    if (mask != 0) tr.set_categories(mask);
  }
  g_env_trace_path = path;
  return true;
#else
  std::fprintf(stderr,
               "obs: MESHMP_TRACE=%s ignored — tracer compiled out; "
               "reconfigure with -DMESHMP_TRACING=ON\n",
               path);
  return false;
#endif
}

void trace_flush_env() {
  if (g_env_trace_path.empty()) return;
  Tracer& tr = Tracer::instance();
  if (tr.write_json(g_env_trace_path)) {
    std::fprintf(stderr, "obs: wrote trace to %s (%zu events, %" PRIu64
                         " dropped)\n",
                 g_env_trace_path.c_str(), tr.events().size(), tr.dropped());
  }
  g_env_trace_path.clear();
  tr.disable();
}

SpanHandle::SpanHandle(sim::Engine& eng, Cat cat, std::int32_t node,
                       std::int32_t track, const char* name,
                       const char* arg_name, double arg)
    : name_(name),
      arg_name_(arg_name),
      arg_(arg),
      node_(node),
      track_(track),
      cat_(cat) {
  if (Tracer::instance().wants(cat)) {
    eng_ = &eng;
    t0_ = eng.now();
  }
}

AsyncScope::AsyncScope(sim::Engine& eng, Cat cat, std::int32_t node,
                       const char* name, std::uint64_t id)
    : name_(name), id_(id), node_(node), cat_(cat) {
  Tracer& tr = Tracer::instance();
  if (tr.wants(cat)) {
    eng_ = &eng;
    tr.async_begin(eng.now(), cat, node, name, id);
  }
}

AsyncScope::~AsyncScope() {
  if (eng_ == nullptr) return;
  Tracer& tr = Tracer::instance();
  if (!tr.wants(cat_)) return;
  tr.async_end(eng_->now(), cat_, node_, name_, id_);
}

SpanHandle::~SpanHandle() {
  if (eng_ == nullptr) return;
  Tracer& tr = Tracer::instance();
  if (!tr.wants(cat_)) return;
  const sim::Time t1 = eng_->now();
  tr.complete(t0_, t1 - t0_, cat_, node_, track_, name_, arg_name_, arg_);
}

}  // namespace meshmp::obs
