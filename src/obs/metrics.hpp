#pragma once

// Metrics: counters, log-bucketed histograms, and the process-wide registry.
//
// This is the quantitative half of the observability layer (the tracer in
// obs/trace.hpp is the timeline half). Components own their counters and
// histogram handles; the registry only aggregates:
//
//  * Counters is a sorted flat map — O(log n) lookup per increment (the old
//    sim::Counters did a linear scan per inc, hot once every subsystem feeds
//    the registry) and deterministically ordered iteration for snapshots.
//  * Histogram buckets values by power of two, so latencies from nanoseconds
//    to seconds and sizes from bytes to megabytes fit in 66 fixed buckets;
//    percentiles are interpolated within the bucket.
//  * Registry aggregates by *group name*: every hw::Nic attaches its counters
//    under "hw.nic", and a snapshot sums them — the per-instance breakdown
//    stays available through the components' own accessors. Detached sources
//    (a destroyed cluster) fold into retired totals so end-of-process
//    snapshots (BenchReport) still see them. Histograms are interned by name
//    and shared: all NICs add to one "hw.nic.rx_batch_frames".
//
// Everything here is deterministic: values come from the simulation only,
// snapshots iterate in sorted name order, and nothing consumes RNG.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "chk/thread_annotations.hpp"

namespace meshmp::obs {

/// Monotone counters keyed by short names. Sorted flat map: keys are kept
/// ordered, so inc/get are binary searches and items() is deterministic.
/// Lookups take string_view so the per-frame hot incs (NIC rx/tx, router)
/// never construct a std::string — keys longer than the SSO buffer would
/// otherwise cost a heap allocation per increment.
class Counters {
 public:
  void inc(std::string_view key, std::int64_t by = 1) {
    auto it = lower_bound(key);
    if (it != items_.end() && it->first == key) {
      it->second += by;
      return;
    }
    items_.emplace(it, std::string(key), by);
  }

  [[nodiscard]] std::int64_t get(std::string_view key) const {
    auto it = lower_bound(key);
    return it != items_.end() && it->first == key ? it->second : 0;
  }

  /// (key, value) pairs in ascending key order.
  [[nodiscard]] const std::vector<std::pair<std::string, std::int64_t>>&
  items() const noexcept {
    return items_;
  }

 private:
  using Item = std::pair<std::string, std::int64_t>;

  [[nodiscard]] std::vector<Item>::const_iterator lower_bound(
      std::string_view key) const {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const Item& a, std::string_view k) { return a.first < k; });
  }
  [[nodiscard]] std::vector<Item>::iterator lower_bound(std::string_view key) {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const Item& a, std::string_view k) { return a.first < k; });
  }

  std::vector<Item> items_;
};

/// Log-bucketed histogram for non-negative integer samples (latencies in ns,
/// sizes in bytes). Bucket k >= 1 holds values in [2^(k-1), 2^k); bucket 0
/// holds zeros. Percentiles interpolate linearly inside the bucket and are
/// clamped to the observed [min, max].
///
/// Parallel-engine sharding: interned registry histograms are shared by
/// every node's hardware, so during a parallel window adds from engine
/// worker w >= 1 are routed into a private per-worker shard (coordinator
/// adds, worker 0, stay direct — it is the only direct writer). The engine
/// merges shards back after each run (Registry::end_parallel); merging is a
/// pure bucket/count sum, so totals are independent of which worker
/// happened to own which LP and the snapshot stays deterministic.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // zeros + one per bit of magnitude

  Histogram() = default;
  Histogram(Histogram&&) = default;
  Histogram& operator=(Histogram&&) = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void add(std::int64_t value, std::int64_t weight = 1) {
    if (shards_ != nullptr) {
      const int w = chk::worker_index();
      if (w >= 1 && w <= nshards_) {
        shards_[w - 1].add_direct(value, weight);
        return;
      }
    }
    add_direct(value, weight);
  }

  /// Arms `nworkers - 1` per-worker shards (idempotent for the same width);
  /// 0 or 1 disarms. Engine-coordinator-only, between windows.
  void set_shards(int nworkers);
  /// Folds every shard back into the base histogram and empties it.
  void merge_shards();

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::int64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::int64_t min() const noexcept {
    return count_ ? min_ : 0;
  }
  [[nodiscard]] std::int64_t max() const noexcept {
    return count_ ? max_ : 0;
  }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Value at quantile q in [0, 1]; 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  void merge(const Histogram& other);
  void reset() { *this = Histogram{}; }

  [[nodiscard]] const std::uint64_t* buckets() const noexcept {
    return buckets_;
  }

 private:
  void add_direct(std::int64_t value, std::int64_t weight);

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::unique_ptr<Histogram[]> shards_;  // per-worker, workers 1..nshards_
  int nshards_ = 0;
};

/// One aggregated histogram in a snapshot.
struct HistogramSummary {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Deterministic, sorted view of everything the registry knows.
struct Snapshot {
  /// Fully-qualified "<group>.<key>" counter totals, ascending by name.
  std::vector<std::pair<std::string, std::int64_t>> counters;
  /// Histogram summaries, ascending by name.
  std::vector<HistogramSummary> hists;

  [[nodiscard]] std::int64_t counter(const std::string& name) const;
  [[nodiscard]] const HistogramSummary* hist(const std::string& name) const;

  /// JSON object {"counters": {...}, "histograms": {...}}, stable key order.
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

/// Process-wide metrics registry (singleton, like chk::Audit and
/// buf::CopyStats). Components attach their Counters under a group name for
/// the lifetime of a Registration; same-group sources are summed in
/// snapshots. Detaching folds the final values into retired totals.
///
/// The source list, retired totals and histogram intern table are guarded by
/// reg_mu_ (a zero-cost chk::SimLock until the PDES engine lands). Two
/// deliberate seams stay outside the lock: attached Counters objects are
/// owned by their components, and interned Histogram references are stable
/// (heap-owned) but their add() path is the owning partition's to serialize.
// meshmp-lint: shared-state
class Registry {
 public:
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept { swap(other); }
    Registration& operator=(Registration&& other) noexcept {
      swap(other);
      return *this;
    }
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;
    ~Registration();

   private:
    friend class Registry;
    Registration(Registry* reg, std::uint64_t id) : reg_(reg), id_(id) {}
    void swap(Registration& other) noexcept {
      std::swap(reg_, other.reg_);
      std::swap(id_, other.id_);
    }
    Registry* reg_ = nullptr;
    std::uint64_t id_ = 0;
  };

  static Registry& instance();

  /// Attaches `counters` under `group` until the Registration dies; the
  /// caller keeps ownership and must outlive the Registration.
  [[nodiscard]] Registration attach(std::string group,
                                    const Counters* counters);

  /// Interned shared histogram: one instance per name, owned by the registry
  /// for the rest of the process. All callers with the same name add into
  /// the same histogram.
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Live sources + retired totals + all histograms (BenchReport view).
  [[nodiscard]] Snapshot snapshot() const;
  /// Live sources only, no retired totals (ClusterReport view: the counters
  /// of the clusters currently alive, not of everything run so far).
  [[nodiscard]] Snapshot snapshot_live() const;

  /// Forgets retired totals and zeroes every interned histogram. Live
  /// attachments are untouched. Benches call this between phases; tests call
  /// it for isolation.
  void reset();

  /// Parallel-engine hooks (coordinator-only, outside any window): arm
  /// per-worker shards on every interned histogram for a run with
  /// `nworkers` workers, and fold them back when the run finishes.
  /// Histograms interned mid-run are armed on creation.
  void begin_parallel(unsigned nworkers);
  void end_parallel();

 private:
  struct Source {
    std::uint64_t id = 0;
    std::string group;
    const Counters* counters = nullptr;  ///< null = tombstoned (detached)
  };

  Registry() = default;
  void detach(std::uint64_t id);
  [[nodiscard]] Snapshot snapshot_impl(bool include_retired) const
      MESHMP_REQUIRES(reg_mu_);

  mutable chk::SimLock reg_mu_;
  std::uint64_t next_id_ MESHMP_GUARDED_BY(reg_mu_) = 1;
  std::vector<Source> sources_ MESHMP_GUARDED_BY(reg_mu_);
  std::size_t dead_sources_ MESHMP_GUARDED_BY(reg_mu_) = 0;
  Counters retired_ MESHMP_GUARDED_BY(reg_mu_);  // keyed "<group>.<key>"
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> hists_
      MESHMP_GUARDED_BY(reg_mu_);
  int shard_width_ MESHMP_GUARDED_BY(reg_mu_) = 0;  // workers in the active run
};

}  // namespace meshmp::obs
