#pragma once

// Worker team for the conservative windowed engine.
//
// The coordinator (whatever host thread called Engine::run / run_until)
// publishes one lookahead window at a time; each worker processes the event
// shards of the LPs it owns (static assignment lp % nthreads == worker, so
// the partition is a function of the LP count and thread count only, never
// of host timing) and the coordinator doubles as worker 0. Between windows
// workers spin briefly on the generation counter and then park on a condvar,
// so a mostly-sequential phase (campaign logic on the control LP) costs
// parked threads nothing.
//
// Determinism: nothing here orders events. Each LP's events run in (when,
// seq) order by its one owner, cross-LP messages travel through per-shard
// mailboxes drained canonically at window boundaries, and the per-LP FNV
// digests are merged in LP-id order — so the window barrier is pure
// synchronization and the digest is independent of worker count and of how
// windows interleave on the host.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "chk/parallel.hpp"
#include "sim/time.hpp"

namespace meshmp::sim {

class Engine;

class WorkerTeam {
 public:
  /// Spawns `nthreads - 1` workers (the coordinator is worker 0). Holds the
  /// chk::mt_active() refcount for its whole lifetime, so every SimLock in
  /// the process is a real mutex while the team exists.
  WorkerTeam(Engine& eng, unsigned nthreads);
  ~WorkerTeam();
  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  /// Runs one window: publishes `wend`, executes worker 0's shard set on the
  /// calling thread, and returns once every worker finished the window.
  void run_window(Time wend);

  [[nodiscard]] unsigned threads() const noexcept { return nthreads_; }

 private:
  void worker_main(unsigned index);

  Engine& eng_;
  unsigned nthreads_;
  // Chosen at construction from hardware_concurrency() vs nthreads: pause-
  // spin long on spare cores, yield-spin briefly when oversubscribed.
  int spin_iters_ = 0;
  bool spin_yields_ = false;
  chk::MtActivation mt_;  // ordered before threads_: active while any worker runs

  std::mutex m_;
  std::condition_variable cv_workers_;  // workers park here between windows
  std::condition_variable cv_coord_;    // coordinator parks here during windows
  std::atomic<std::uint64_t> gen_{0};   // bumped (under m_) per window/stop
  std::atomic<unsigned> remaining_{0};  // workers still inside the window
  std::atomic<bool> stop_{false};
  // Park bookkeeping (seq_cst on both sides): the hot path skips the mutex
  // and condvar syscalls entirely while everyone is still spinning.
  std::atomic<unsigned> parked_workers_{0};
  std::atomic<bool> coord_parked_{false};
  Time wend_ = 0;  // published before the gen_ bump, read after observing it

  std::vector<std::thread> threads_;
};

}  // namespace meshmp::sim
