#pragma once

// Logical-process identity for the conservative PDES engine.
//
// A partitioned sim::Engine owns one event-queue shard per logical process
// (LP). LP 0 is the control LP — host drivers, fault injectors, anything
// constructed outside a node scope — and LPs 1..N map one-to-one onto the
// simulated torus nodes. The *construction-time* LP decides where an
// object's events live: cluster builders wrap each node's hardware, agent
// and lifecycle construction in an LpScope so every timer, pump coroutine
// and callback that object schedules lands on its node's shard.
//
// At dispatch time the engine sets the current LP to the shard being
// executed, so everything an event body schedules (including coroutine
// wakes via Engine::post) stays on the dispatching LP. Coroutines therefore
// *migrate* to the LP of whoever wakes them — a rank coroutine woken by its
// node's rx event runs on that node's LP with no home-LP bookkeeping, and
// the only events that ever cross LPs are the explicit wire-propagation
// hops (Engine::schedule_to), whose delay is the lookahead window.

#include <cstdint>
#include <cstdlib>

#include "sim/time.hpp"

namespace meshmp::sim {

class Engine;

/// Logical-process id: 0 is the control LP, 1..N are torus nodes.
using LpId = std::uint32_t;
inline constexpr LpId kControlLp = 0;

namespace detail {
struct LpCtx {
  Engine* eng = nullptr;
  LpId lp = kControlLp;
  /// Causal floor: the `when` of the event this thread is dispatching on
  /// `eng` (0 outside dispatch). Scheduling bases on max(shard clock,
  /// floor), so an event that LpScopes onto *another* LP — a restart
  /// respawning a crashed node's service loops from the control LP — never
  /// schedules into that shard's stale past: its clock may not have moved
  /// since the crash.
  Time tnow = 0;
  /// Shard whose events this thread is dispatching (null outside dispatch).
  /// Scheduling onto any *other* shard mid-run marks that shard's head
  /// dirty: it may be inactive this window, and the coordinator must
  /// re-read its queue head or the new event is never discovered.
  const void* dispatch_shard = nullptr;
};
inline LpCtx& lp_ctx() noexcept {
  thread_local LpCtx ctx;
  return ctx;
}
}  // namespace detail

/// RAII scope binding subsequently scheduled work (and constructed objects'
/// service coroutines) to `lp` of `eng`. Nestable; restores on destruction.
/// Inside an event body the dispatching event's time carries through (same
/// engine), so scoped scheduling stays anchored to the causal present.
class LpScope {
 public:
  LpScope(Engine& eng, LpId lp) noexcept : prev_(detail::lp_ctx()) {
    const bool same = prev_.eng == &eng;
    detail::lp_ctx() = detail::LpCtx{&eng, lp, same ? prev_.tnow : Time{0},
                                     same ? prev_.dispatch_shard : nullptr};
  }
  ~LpScope() { detail::lp_ctx() = prev_; }
  LpScope(const LpScope&) = delete;
  LpScope& operator=(const LpScope&) = delete;

 private:
  detail::LpCtx prev_;
};

/// Worker-thread count requested via MESHMP_THREADS. 0 (unset, empty, or
/// unparsable) means "legacy single-shard engine": cluster builders skip
/// partitioning entirely and behave byte-identically to the sequential
/// engine. Any value >= 1 selects the windowed conservative engine with
/// that many workers (1 is the single-threaded reference execution of the
/// same algorithm — same digests as any other value by construction).
inline unsigned threads_from_env() noexcept {
  // Host configuration, read once per call site at cluster construction;
  // never consulted mid-simulation.
  const char* s = std::getenv("MESHMP_THREADS");  // NOLINT(concurrency-mt-unsafe)
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || v < 0) return 0;
  return v > 64 ? 64U : static_cast<unsigned>(v);
}

}  // namespace meshmp::sim
