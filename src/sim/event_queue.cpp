#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

namespace meshmp::sim {

namespace {

/// start + width * count, saturated at the Time maximum. Timestamps are
/// non-negative (the engine rejects scheduling in the past), so the unsigned
/// widening below is exact.
Time bucket_end(Time start, Time width, std::size_t count) {
  using U = unsigned __int128;
  const U v = static_cast<U>(static_cast<std::uint64_t>(start)) +
              static_cast<U>(static_cast<std::uint64_t>(width)) * count;
  constexpr U kMax = static_cast<U>(std::numeric_limits<Time>::max());
  return v > kMax ? std::numeric_limits<Time>::max() : static_cast<Time>(v);
}

}  // namespace

// --- EventArena ------------------------------------------------------------

EventNode* EventArena::get() {
  if (free_ == nullptr) {
    auto chunk = std::make_unique<EventNode[]>(kChunkNodes);
    for (std::size_t i = kChunkNodes; i-- > 0;) {
      chunk[i].next = free_;
      free_ = &chunk[i];
    }
    chunks_.push_back(std::move(chunk));
  }
  EventNode* n = free_;
  free_ = n->next;
  n->next = nullptr;
  return n;
}

void EventArena::put(EventNode* n) noexcept {
  assert(!n->fn && "recycling a node with a live callable");
  n->label = nullptr;
  n->next = free_;
  free_ = n;
}

// --- LadderQueue -----------------------------------------------------------

void LadderQueue::append(Bucket& b, EventNode* n) noexcept {
  n->next = nullptr;
  if (b.tail != nullptr) {
    b.tail->next = n;
  } else {
    b.head = n;
  }
  b.tail = n;
}

void LadderQueue::push(EventNode* n) {
  if (n->when < bottom_end_) {
    bottom_.push_back(n);
    std::push_heap(bottom_.begin(), bottom_.end(), FiresLater{});
    ++size_;
    if (size_ > hwm_) hwm_ = size_;
    return;
  }
  if (cur_ < kRungs && n->when < horizon_) {
    // bottom_end_ is always the start boundary of bucket cur_, so
    // when >= bottom_end_ lands at index >= cur_ (never a drained bucket).
    // When horizon_ is saturated at the Time maximum, `when < horizon_`
    // no longer implies the index is in range — those fall to overflow.
    const auto idx =
        static_cast<std::size_t>((n->when - rung_start_) / width_);
    if (idx < kRungs) {
      append(rungs_[idx], n);
      occ_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      ++rung_count_;
      ++size_;
      if (size_ > hwm_) hwm_ = size_;
      return;
    }
  }
  n->next = overflow_;
  overflow_ = n;
  ++overflow_count_;
  ++size_;
  if (size_ > hwm_) hwm_ = size_;
}

std::size_t LadderQueue::next_occupied(std::size_t from) const noexcept {
  std::size_t word = from >> 6;
  if (word >= kWords) return kRungs;
  std::uint64_t w = occ_[word] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (w != 0) {
      return (word << 6) + static_cast<std::size_t>(std::countr_zero(w));
    }
    if (++word == kWords) return kRungs;
    w = occ_[word];
  }
}

bool LadderQueue::advance() {
  assert(bottom_.empty());
  for (;;) {
    if (rung_count_ > 0) {
      const std::size_t idx = next_occupied(cur_);
      assert(idx < kRungs && "occupancy count and bitmap disagree");
      Bucket b = rungs_[idx];
      rungs_[idx] = Bucket{};
      occ_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
      cur_ = idx + 1;
      bottom_end_ = bucket_end(rung_start_, width_, cur_);
      for (EventNode* n = b.head; n != nullptr;) {
        EventNode* next = n->next;
        n->next = nullptr;
        bottom_.push_back(n);
        --rung_count_;
        n = next;
      }
      std::make_heap(bottom_.begin(), bottom_.end(), FiresLater{});
      return true;
    }
    if (overflow_ == nullptr) return false;
    reseed();
  }
}

void LadderQueue::reseed() {
  Time mn = std::numeric_limits<Time>::max();
  Time mx = 0;
  for (EventNode* n = overflow_; n != nullptr; n = n->next) {
    mn = std::min(mn, n->when);
    mx = std::max(mx, n->when);
  }
  rung_start_ = mn;
  // Width chosen so the maximum lands in the last bucket:
  // (mx - mn) / width_ <= kRungs - 1 by construction.
  width_ = (mx - mn) / static_cast<Time>(kRungs) + 1;
  horizon_ = bucket_end(rung_start_, width_, kRungs);
  cur_ = 0;
  bottom_end_ = rung_start_;
  EventNode* n = overflow_;
  overflow_ = nullptr;
  overflow_count_ = 0;
  while (n != nullptr) {
    EventNode* next = n->next;
    const auto idx =
        static_cast<std::size_t>((n->when - rung_start_) / width_);
    append(rungs_[idx], n);
    occ_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    ++rung_count_;
    n = next;
  }
  ++reseeds_;
}

EventNode* LadderQueue::peek() {
  if (bottom_.empty() && !advance()) return nullptr;
  return bottom_.front();
}

EventNode* LadderQueue::pop() {
  if (bottom_.empty() && !advance()) return nullptr;
  std::pop_heap(bottom_.begin(), bottom_.end(), FiresLater{});
  EventNode* n = bottom_.back();
  bottom_.pop_back();
  --size_;
  return n;
}

LadderQueue::Layout LadderQueue::layout() const noexcept {
  Layout l;
  l.bottom = bottom_.size();
  l.rungs = rung_count_;
  l.overflow = overflow_count_;
  l.reseeds = reseeds_;
  l.bottom_end = bottom_end_;
  l.rung_start = rung_start_;
  l.width = width_;
  l.horizon = horizon_;
  return l;
}

}  // namespace meshmp::sim
