#pragma once

// Small-buffer-only type-erased callable for the event hot path.
//
// std::function falls back to the heap when a capture outgrows its SSO
// buffer, which on the event loop means one malloc/free per frame-hop event.
// InlineFn instead makes the capture budget a compile-time contract: a
// callable that does not fit in kInlineFnCapacity bytes is a build error at
// the schedule() call site, never a silent allocation. Events are therefore
// guaranteed allocation-free, and an EventNode (header + InlineFn) packs
// into exactly two cache lines (see sim/event_queue.hpp).

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace meshmp::sim {

/// Capture budget for one event. Sized for the largest hot-path capture,
/// [this + net::Frame] (8 + 72 bytes) in the link/NIC/crossbar pumps; the
/// coupling is pinned by a static_assert in net/frame.hpp. Raising this
/// grows every queued event, so shrink captures (pointers and indices, not
/// values) before reaching for a bigger budget.
inline constexpr std::size_t kInlineFnCapacity = 88;

/// Type-erased `void()` callable with inline-only storage. Move-only, like
/// the captures it carries (coroutine handles, pooled slices, frames).
class InlineFn {
 public:
  InlineFn() noexcept = default;

  /// Implicit so existing `schedule(d, [=]{...})` call sites read unchanged.
  template <typename F, typename = std::enable_if_t<!std::is_same_v<
                            std::remove_cvref_t<F>, InlineFn>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty InlineFn");
    ops_->invoke(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Destroys the held callable (captures release their resources now).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  struct OpsFor {
    static void invoke(void* p) { (*static_cast<F*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) F(std::move(*static_cast<F*>(src)));
      static_cast<F*>(src)->~F();
    }
    static void destroy(void* p) noexcept { static_cast<F*>(p)->~F(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "InlineFn holds void() callables");
    static_assert(sizeof(Fn) <= kInlineFnCapacity,
                  "event capture exceeds the InlineFn budget: capture "
                  "pointers/indices instead of values, or raise "
                  "sim::kInlineFnCapacity deliberately (grows every event)");
    static_assert(alignof(Fn) <= alignof(void*),
                  "InlineFn storage is pointer-aligned");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event captures must be nothrow-movable (queue relocation)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::ops;
  }

  void move_from(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(void*) std::byte storage_[kInlineFnCapacity];
};

static_assert(sizeof(InlineFn) == sizeof(void*) + kInlineFnCapacity);

}  // namespace meshmp::sim
