#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace meshmp::sim {

void Engine::schedule(Duration delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument("Engine::schedule: negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

void Engine::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("Engine::schedule_at: time in the past");
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

void Engine::post(std::coroutine_handle<> h) {
  assert(h && "posting a null coroutine handle");
  schedule_at(now_, [h] { h.resume(); });
}

void Engine::dispatch(Event ev) {
  now_ = ev.when;
  ++executed_;
  ev.fn();
}

void Engine::run() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    dispatch(std::move(ev));
  }
}

bool Engine::run_until(Time t) {
  while (!heap_.empty() && heap_.top().when <= t) {
    Event ev = heap_.top();
    heap_.pop();
    dispatch(std::move(ev));
  }
  now_ = t;
  return !heap_.empty();
}

bool Engine::step() {
  if (heap_.empty()) return false;
  Event ev = heap_.top();
  heap_.pop();
  dispatch(std::move(ev));
  return true;
}

}  // namespace meshmp::sim
