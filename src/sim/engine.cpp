#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "chk/digest.hpp"
#include "obs/trace.hpp"

namespace meshmp::sim {

Engine::Engine()
    : audit_reg_(chk::Audit::instance().watch(
          "sim.engine", [this] { audit_queue_drained(); })) {}

void Engine::audit_queue_drained() const {
  chk::SimLockGuard g(queue_mu_);
  if (!heap_.empty()) {
    chk::Audit::instance().fail(
        "sim.engine", std::to_string(heap_.size()) +
                          " event(s) still queued at quiesce (next at t=" +
                          std::to_string(heap_.top().when) + "ns)");
  }
}

void Engine::schedule(Duration delay, std::function<void()> fn,
                      const char* label) {
  if (delay < 0) throw std::invalid_argument("Engine::schedule: negative delay");
  schedule_at(now_ + delay, std::move(fn), label);
}

void Engine::schedule_at(Time t, std::function<void()> fn,
                         const char* label) {
  if (t < now_) throw std::invalid_argument("Engine::schedule_at: time in the past");
  chk::SimLockGuard g(queue_mu_);
  heap_.push(Event{t, next_seq_++, std::move(fn), label});
}

void Engine::post(std::coroutine_handle<> h) {
  assert(h && "posting a null coroutine handle");
  schedule_at(now_, [h] { h.resume(); }, "post");
}

void Engine::dispatch(Event ev) {
  if (chk::Audit::enabled() && ev.when < now_) {
    chk::Audit::instance().fail(
        "sim.engine",
        "time went backwards: dispatching t=" + std::to_string(ev.when) +
            "ns at now=" + std::to_string(now_) + "ns");
  }
  if (digest_on_) {
    std::uint64_t h = digest_ == 0 ? chk::kFnvOffset : digest_;
    h = chk::fnv1a_u64(h, static_cast<std::uint64_t>(ev.when));
    h = chk::fnv1a_u64(h, ev.seq);
    digest_ = chk::fnv1a_cstr(h, ev.label);
  }
  now_ = ev.when;
  ++executed_;
  // Per-dispatch events live in the (default-masked) kSim category: they are
  // the finest-grained view of the run and evict everything else when on.
  MESHMP_TRACE_INSTANT_ARG(*this, obs::Cat::kSim, obs::kEnginePid, ev.label,
                           "seq", ev.seq);
  ev.fn();
}

// The run loops pop under queue_mu_ but always dispatch outside it: event
// bodies re-enter schedule_at (timers, coroutine posts), which must not
// self-deadlock once SimLock is a real mutex.

void Engine::run() {
  for (;;) {
    Event ev{};
    {
      chk::SimLockGuard g(queue_mu_);
      if (heap_.empty()) return;
      ev = heap_.top();
      heap_.pop();
    }
    dispatch(std::move(ev));
  }
}

bool Engine::run_until(Time t) {
  for (;;) {
    Event ev{};
    {
      chk::SimLockGuard g(queue_mu_);
      if (heap_.empty() || heap_.top().when > t) break;
      ev = heap_.top();
      heap_.pop();
    }
    dispatch(std::move(ev));
  }
  now_ = t;
  return pending() != 0;
}

bool Engine::step() {
  Event ev{};
  {
    chk::SimLockGuard g(queue_mu_);
    if (heap_.empty()) return false;
    ev = heap_.top();
    heap_.pop();
  }
  dispatch(std::move(ev));
  return true;
}

}  // namespace meshmp::sim
