#include "sim/engine.hpp"

#include <atomic>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "chk/digest.hpp"
#include "obs/trace.hpp"

namespace meshmp::sim {

namespace {

// Host-side telemetry only — never feeds back into simulated behavior.
std::atomic<std::uint64_t> g_events_dispatched{0};
std::atomic<std::uint64_t> g_queue_depth_hwm{0};

void fold_host_stats(std::uint64_t dispatched, std::uint64_t hwm) noexcept {
  g_events_dispatched.fetch_add(dispatched, std::memory_order_relaxed);
  std::uint64_t cur = g_queue_depth_hwm.load(std::memory_order_relaxed);
  while (hwm > cur && !g_queue_depth_hwm.compare_exchange_weak(
                          cur, hwm, std::memory_order_relaxed)) {
  }
}

}  // namespace

EngineHostStats engine_host_stats() noexcept {
  EngineHostStats s;
  s.events_dispatched = g_events_dispatched.load(std::memory_order_relaxed);
  s.queue_depth_hwm = g_queue_depth_hwm.load(std::memory_order_relaxed);
  return s;
}

void reset_engine_host_stats() noexcept {
  g_events_dispatched.store(0, std::memory_order_relaxed);
  g_queue_depth_hwm.store(0, std::memory_order_relaxed);
}

Engine::Engine()
    : audit_reg_(chk::Audit::instance().watch(
          "sim.engine", [this] { audit_queue_drained(); })) {}

Engine::~Engine() { fold_host_stats(executed_, queue_depth_hwm()); }

void Engine::audit_queue_drained() {
  chk::SimLockGuard g(queue_mu_);
  if (!queue_.empty()) {
    chk::Audit::instance().fail(
        "sim.engine", std::to_string(queue_.size()) +
                          " event(s) still queued at quiesce (next at t=" +
                          std::to_string(queue_.peek()->when) + "ns)");
  }
}

void Engine::schedule(Duration delay, InlineFn fn, const char* label) {
  if (delay < 0) throw std::invalid_argument("Engine::schedule: negative delay");
  schedule_at(now_ + delay, std::move(fn), label);
}

void Engine::schedule_at(Time t, InlineFn fn, const char* label) {
  if (t < now_) throw std::invalid_argument("Engine::schedule_at: time in the past");
  chk::SimLockGuard g(queue_mu_);
  EventNode* n = arena_.get();
  n->when = t;
  n->seq = next_seq_++;
  n->label = label;
  n->fn = std::move(fn);
  queue_.push(n);
}

void Engine::post(std::coroutine_handle<> h) {
  assert(h && "posting a null coroutine handle");
  schedule_at(now_, [h] { h.resume(); }, "post");
}

void Engine::release_node(EventNode* n) noexcept {
  n->fn.reset();
  chk::SimLockGuard g(queue_mu_);
  arena_.put(n);
}

void Engine::dispatch(EventNode* n) {
  if (chk::Audit::enabled() && n->when < now_) {
    chk::Audit::instance().fail(
        "sim.engine",
        "time went backwards: dispatching t=" + std::to_string(n->when) +
            "ns at now=" + std::to_string(now_) + "ns");
  }
  if (digest_on_) {
    std::uint64_t h = digest_ == 0 ? chk::kFnvOffset : digest_;
    h = chk::fnv1a_u64(h, static_cast<std::uint64_t>(n->when));
    h = chk::fnv1a_u64(h, n->seq);
    digest_ = chk::fnv1a_cstr(h, n->label);
  }
  now_ = n->when;
  ++executed_;
  // Per-dispatch events live in the (default-masked) kSim category: they are
  // the finest-grained view of the run and evict everything else when on.
  MESHMP_TRACE_INSTANT_ARG(*this, obs::Cat::kSim, obs::kEnginePid, n->label,
                           "seq", n->seq);
  // Recycling is deferred past the body so a throwing event cannot leak its
  // node; the callable is destroyed after it runs (never while running).
  struct Recycle {
    Engine* eng;
    EventNode* node;
    ~Recycle() { eng->release_node(node); }
  } recycle{this, n};
  n->fn();
}

// The run loops pop under queue_mu_ but always dispatch outside it: event
// bodies re-enter schedule_at (timers, coroutine posts), which must not
// self-deadlock once SimLock is a real mutex.

void Engine::run() {
  for (;;) {
    EventNode* n = nullptr;
    {
      chk::SimLockGuard g(queue_mu_);
      n = queue_.pop();
    }
    if (n == nullptr) return;
    dispatch(n);
  }
}

bool Engine::run_until(Time t) {
  for (;;) {
    EventNode* n = nullptr;
    {
      chk::SimLockGuard g(queue_mu_);
      EventNode* head = queue_.peek();
      if (head == nullptr || head->when > t) break;
      n = queue_.pop();
    }
    dispatch(n);
  }
  now_ = t;
  return pending() != 0;
}

bool Engine::step() {
  EventNode* n = nullptr;
  {
    chk::SimLockGuard g(queue_mu_);
    n = queue_.pop();
  }
  if (n == nullptr) return false;
  dispatch(n);
  return true;
}

}  // namespace meshmp::sim
