#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "chk/digest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"

namespace meshmp::sim {

namespace {

constexpr Time kNever = std::numeric_limits<Time>::max();

/// Saturating a + b for b >= 0: the lookahead horizon and Time-max schedules
/// clamp instead of wrapping.
constexpr Time sat_add(Time a, Duration b) noexcept {
  return a > kNever - b ? kNever : a + b;
}

/// Min-heap comparator over (when, lp): earliest first, lowest LP on ties.
struct HeadGreater {
  bool operator()(const std::pair<Time, LpId>& a,
                  const std::pair<Time, LpId>& b) const noexcept {
    return a > b;
  }
};

// Host-side telemetry only — never feeds back into simulated behavior.
std::atomic<std::uint64_t> g_events_dispatched{0};
std::atomic<std::uint64_t> g_queue_depth_hwm{0};
std::atomic<std::uint64_t> g_windows{0};
std::atomic<std::uint64_t> g_parallel_windows{0};

void fold_host_stats(std::uint64_t dispatched, std::uint64_t hwm,
                     std::uint64_t windows, std::uint64_t parallel) noexcept {
  g_events_dispatched.fetch_add(dispatched, std::memory_order_relaxed);
  g_windows.fetch_add(windows, std::memory_order_relaxed);
  g_parallel_windows.fetch_add(parallel, std::memory_order_relaxed);
  std::uint64_t cur = g_queue_depth_hwm.load(std::memory_order_relaxed);
  while (hwm > cur && !g_queue_depth_hwm.compare_exchange_weak(
                          cur, hwm, std::memory_order_relaxed)) {
  }
}

}  // namespace

EngineHostStats engine_host_stats() noexcept {
  EngineHostStats s;
  s.events_dispatched = g_events_dispatched.load(std::memory_order_relaxed);
  s.queue_depth_hwm = g_queue_depth_hwm.load(std::memory_order_relaxed);
  s.windows = g_windows.load(std::memory_order_relaxed);
  s.parallel_windows = g_parallel_windows.load(std::memory_order_relaxed);
  return s;
}

void reset_engine_host_stats() noexcept {
  g_events_dispatched.store(0, std::memory_order_relaxed);
  g_queue_depth_hwm.store(0, std::memory_order_relaxed);
  g_windows.store(0, std::memory_order_relaxed);
  g_parallel_windows.store(0, std::memory_order_relaxed);
}

Engine::Engine()
    : audit_reg_(chk::Audit::instance().watch(
          "sim.engine", [this] { audit_queue_drained(); })) {
  shards_.push_back(std::make_unique<Shard>());
  head_cache_.assign(1, kNever);
}

Engine::~Engine() {
  // Join the worker team first so no thread can touch the shards below.
  team_.reset();
  fold_host_stats(executed(), queue_depth_hwm(), windows_, parallel_windows_);
}

void Engine::partition(std::uint32_t nlps, unsigned nthreads,
                       Duration lookahead) {
  if (nlps == 0) {
    throw std::invalid_argument("Engine::partition: need at least one LP");
  }
  if (nlps > 1 && lookahead <= 0) {
    throw std::invalid_argument(
        "Engine::partition: lookahead must be positive");
  }
  if (executed() != 0 || pending() != 0 || now_ != 0) {
    throw std::logic_error(
        "Engine::partition: engine already scheduled or ran events");
  }
#if defined(MESHMP_OBS_TRACING)
  // The sim-time tracer's ring buffer is single-writer; a traced run keeps
  // the windowed algorithm but executes it on the coordinator alone, which
  // leaves the digest unchanged (it never depends on the worker count).
  if (obs::Tracer::instance().enabled()) nthreads = 1;
#endif
  if (nthreads == 0) nthreads = 1;
  if (nthreads > nlps) nthreads = nlps;
  while (shards_.size() < nlps) shards_.push_back(std::make_unique<Shard>());
  nthreads_ = nthreads;
  lookahead_ = nlps > 1 ? lookahead : 0;
  head_cache_.assign(shards_.size(), kNever);
  heads_.clear();
  heads_stale_ = true;
}

void Engine::audit_queue_drained() {
  for (std::size_t lp = 0; lp < shards_.size(); ++lp) {
    Shard& s = *shards_[lp];
    {
      chk::SimLockGuard g(s.mu);
      if (!s.queue.empty()) {
        std::string msg = std::to_string(s.queue.size()) +
                          " event(s) still queued at quiesce (next at t=" +
                          std::to_string(s.queue.peek()->when) + "ns)";
        if (partitioned()) msg += " on lp=" + std::to_string(lp);
        chk::Audit::instance().fail("sim.engine", msg);
      }
    }
    chk::SimLockGuard g(s.inbox_mu);
    if (!s.inbox.empty()) {
      chk::Audit::instance().fail(
          "sim.engine",
          std::to_string(s.inbox.size()) +
              " cross-LP message(s) undelivered at quiesce into lp=" +
              std::to_string(lp));
    }
  }
}

void Engine::schedule(Duration delay, InlineFn fn, const char* label) {
  if (delay < 0) throw std::invalid_argument("Engine::schedule: negative delay");
  Shard& s = current_shard();
  if (!running_) heads_stale_ = true;
  schedule_on(s, sat_add(causal_now(s), delay), std::move(fn), label);
}

void Engine::schedule_at(Time t, InlineFn fn, const char* label) {
  Shard& s = current_shard();
  if (t < causal_now(s)) {
    throw std::invalid_argument("Engine::schedule_at: time in the past");
  }
  if (!running_) heads_stale_ = true;
  schedule_on(s, t, std::move(fn), label);
}

void Engine::schedule_to(LpId target, Duration delay, InlineFn fn,
                         const char* label) {
  if (delay < 0) {
    throw std::invalid_argument("Engine::schedule_to: negative delay");
  }
  if (target >= shards_.size()) {
    throw std::invalid_argument("Engine::schedule_to: no such LP");
  }
  const LpId cur = current_lp();
  Shard& src = *shards_[cur];
  const Time t = sat_add(causal_now(src), delay);
  if (target == cur) {
    if (!running_) heads_stale_ = true;
    schedule_on(src, t, std::move(fn), label);
    return;
  }
  // Cross-LP: through the target's mailbox. (when, src, emit_seq) is the
  // canonical drain order — a per-source counter advanced only by this LP's
  // own deterministic execution, so no host interleaving can reorder it.
  Shard& dst = *shards_[target];
  XlpItem item;
  item.when = t;
  item.src = cur;
  item.emit_seq = src.xlp_emitted++;
  item.label = label;
  item.fn = std::move(fn);
  chk::SimLockGuard g(dst.inbox_mu);
  dst.inbox.push_back(std::move(item));
  dst.inbox_nonempty.store(true, std::memory_order_release);
}

void Engine::post(std::coroutine_handle<> h) {
  assert(h && "posting a null coroutine handle");
  Shard& s = current_shard();
  if (!running_) heads_stale_ = true;
  schedule_on(s, causal_now(s), [h] { h.resume(); }, "post");
}

void Engine::schedule_on(Shard& s, Time t, InlineFn fn, const char* label) {
  {
    chk::SimLockGuard g(s.mu);
    EventNode* n = s.arena.get();
    n->when = t;
    n->seq = s.next_seq++;
    n->label = label;
    n->fn = std::move(fn);
    s.queue.push(n);
  }
  // Scheduling onto a shard other than the one this thread is dispatching
  // (an LpScope from a control-LP event): the target may be inactive this
  // window with a stale cached head, so flag it for the coordinator sweep.
  // Only legal from merged execution — node events must use schedule_to —
  // because a direct foreign push races the owner's seq assignment.
  if (running_ && partitioned() &&
      detail::lp_ctx().dispatch_shard != static_cast<const void*>(&s)) {
    s.head_dirty.store(true, std::memory_order_release);
  }
}

void Engine::release_node(Shard& s, EventNode* n) noexcept {
  n->fn.reset();
  chk::SimLockGuard g(s.mu);
  s.arena.put(n);
}

void Engine::dispatch(Shard& s, EventNode* n) {
  if (chk::Audit::enabled() && n->when < s.lnow) {
    chk::Audit::instance().fail(
        "sim.engine",
        "time went backwards: dispatching t=" + std::to_string(n->when) +
            "ns at now=" + std::to_string(s.lnow) + "ns");
  }
  if (digest_on_) {
    std::uint64_t h = s.digest == 0 ? chk::kFnvOffset : s.digest;
    h = chk::fnv1a_u64(h, static_cast<std::uint64_t>(n->when));
    h = chk::fnv1a_u64(h, n->seq);
    s.digest = chk::fnv1a_cstr(h, n->label);
  }
  s.lnow = n->when;
  // Causal floor and owner shard for scoped scheduling from the event body.
  detail::lp_ctx().tnow = n->when;
  detail::lp_ctx().dispatch_shard = &s;
  ++s.executed;
  // Per-dispatch events live in the (default-masked) kSim category: they are
  // the finest-grained view of the run and evict everything else when on.
  MESHMP_TRACE_INSTANT_ARG(*this, obs::Cat::kSim, obs::kEnginePid, n->label,
                           "seq", n->seq);
  // Recycling is deferred past the body so a throwing event cannot leak its
  // node; the callable is destroyed after it runs (never while running).
  struct Recycle {
    Engine* eng;
    Shard* shard;
    EventNode* node;
    ~Recycle() { eng->release_node(*shard, node); }
  } recycle{this, &s, n};
  n->fn();
}

// The run loops pop under the shard lock but always dispatch outside it:
// event bodies re-enter schedule_at (timers, coroutine posts), which must
// not self-deadlock now that SimLock is a real mutex under mt_active().

void Engine::run() {
  if (partitioned()) {
    run_windowed(0, /*bounded=*/false);
    return;
  }
  Shard& s = *shards_[0];
  running_ = true;
  const detail::LpCtx saved = detail::lp_ctx();
  detail::lp_ctx() = detail::LpCtx{this, kControlLp};
  for (;;) {
    EventNode* n = nullptr;
    {
      chk::SimLockGuard g(s.mu);
      n = s.queue.pop();
    }
    if (n == nullptr) break;
    dispatch(s, n);
    now_ = s.lnow;
  }
  detail::lp_ctx() = saved;
  running_ = false;
}

bool Engine::run_until(Time t) {
  if (partitioned()) return run_windowed(t, /*bounded=*/true);
  Shard& s = *shards_[0];
  running_ = true;
  const detail::LpCtx saved = detail::lp_ctx();
  detail::lp_ctx() = detail::LpCtx{this, kControlLp};
  for (;;) {
    EventNode* n = nullptr;
    {
      chk::SimLockGuard g(s.mu);
      EventNode* head = s.queue.peek();
      if (head == nullptr || head->when > t) break;
      n = s.queue.pop();
    }
    dispatch(s, n);
  }
  s.lnow = t;
  now_ = t;
  detail::lp_ctx() = saved;
  running_ = false;
  return pending() != 0;
}

bool Engine::step() {
  if (partitioned()) return step_windowed();
  Shard& s = *shards_[0];
  EventNode* n = nullptr;
  {
    chk::SimLockGuard g(s.mu);
    n = s.queue.pop();
  }
  if (n == nullptr) return false;
  running_ = true;
  const detail::LpCtx saved = detail::lp_ctx();
  detail::lp_ctx() = detail::LpCtx{this, kControlLp};
  dispatch(s, n);
  now_ = s.lnow;
  detail::lp_ctx() = saved;
  running_ = false;
  return true;
}

std::size_t Engine::pending() const noexcept {
  std::size_t total = 0;
  for (const auto& sp : shards_) {
    {
      chk::SimLockGuard g(sp->mu);
      total += sp->queue.size();
    }
    chk::SimLockGuard g(sp->inbox_mu);
    total += sp->inbox.size();
  }
  return total;
}

std::size_t Engine::queue_depth_hwm() const noexcept {
  std::size_t hwm = 0;
  for (const auto& sp : shards_) {
    chk::SimLockGuard g(sp->mu);
    hwm = std::max(hwm, sp->queue.depth_hwm());
  }
  return hwm;
}

std::uint64_t Engine::executed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) total += sp->executed;
  return total;
}

std::uint64_t Engine::digest() const noexcept {
  if (shards_.size() == 1) return shards_[0]->digest;
  // Merge the per-LP digests in LP-id order: a canonical fold no thread
  // interleaving can perturb.
  std::uint64_t h = chk::kFnvOffset;
  for (const auto& sp : shards_) h = chk::fnv1a_u64(h, sp->digest);
  return h;
}

// --------------------------------------------------------------------------
// Windowed (partitioned) execution
// --------------------------------------------------------------------------

void Engine::refresh_head(LpId lp) {
  Shard& s = *shards_[lp];
  Time w = kNever;
  {
    chk::SimLockGuard g(s.mu);
    EventNode* h = s.queue.peek();
    if (h != nullptr) w = h->when;
  }
  head_cache_[lp] = w;
  if (w != kNever) {
    heads_.emplace_back(w, lp);
    std::push_heap(heads_.begin(), heads_.end(), HeadGreater{});
  }
}

void Engine::rebuild_heads() {
  heads_.clear();
  for (LpId lp = 0; lp < shards_.size(); ++lp) refresh_head(lp);
}

void Engine::sweep_dirty_heads() {
  for (LpId lp = 0; lp < shards_.size(); ++lp) {
    Shard& s = *shards_[lp];
    if (!s.head_dirty.load(std::memory_order_acquire)) continue;
    s.head_dirty.store(false, std::memory_order_relaxed);
    refresh_head(lp);
  }
}

void Engine::drain_inboxes() {
  for (LpId lp = 0; lp < shards_.size(); ++lp) {
    Shard& s = *shards_[lp];
    if (!s.inbox_nonempty.load(std::memory_order_acquire)) continue;
    {
      chk::SimLockGuard g(s.inbox_mu);
      if (s.inbox.empty()) continue;
      drain_scratch_.swap(s.inbox);
      s.inbox_nonempty.store(false, std::memory_order_relaxed);
    }
    std::sort(drain_scratch_.begin(), drain_scratch_.end(),
              [](const XlpItem& a, const XlpItem& b) {
                if (a.when != b.when) return a.when < b.when;
                if (a.src != b.src) return a.src < b.src;
                return a.emit_seq < b.emit_seq;
              });
    {
      chk::SimLockGuard g(s.mu);
      for (XlpItem& item : drain_scratch_) {
        if (item.when < s.lnow) {
          throw std::logic_error(
              "Engine: cross-LP message violates the lookahead window "
              "(delivery t=" +
              std::to_string(item.when) +
              "ns behind lp=" + std::to_string(lp) + " clock t=" +
              std::to_string(s.lnow) + "ns)");
        }
        EventNode* n = s.arena.get();
        n->when = item.when;
        n->seq = s.next_seq++;
        n->label = item.label;
        n->fn = std::move(item.fn);
        s.queue.push(n);
      }
    }
    drain_scratch_.clear();
    refresh_head(lp);
  }
}

void Engine::run_window_shards(unsigned worker, unsigned stride, Time wend) {
  for (LpId lp : active_) {
    if (lp % stride != worker) continue;
    run_shard_window(*shards_[lp], lp, wend);
  }
}

void Engine::run_shard_window(Shard& s, LpId lp, Time wend) {
  const detail::LpCtx saved = detail::lp_ctx();
  detail::lp_ctx() = detail::LpCtx{this, lp};
  for (;;) {
    EventNode* n = nullptr;
    {
      chk::SimLockGuard g(s.mu);
      EventNode* h = s.queue.peek();
      if (h != nullptr && h->when < wend) n = s.queue.pop();
    }
    if (n == nullptr) break;
    dispatch(s, n);
  }
  detail::lp_ctx() = saved;
}

void Engine::run_window_merged(Time wend) {
  // Global (when, lp, seq) interleave across the active shards: per-LP order
  // is the same as the fan-out path (so digests agree), and cross-LP
  // timestamp order is preserved for control events that touch node state.
  merge_heap_.clear();
  for (LpId lp : active_) {
    Shard& s = *shards_[lp];
    chk::SimLockGuard g(s.mu);
    EventNode* h = s.queue.peek();
    if (h != nullptr && h->when < wend) merge_heap_.emplace_back(h->when, lp);
  }
  std::make_heap(merge_heap_.begin(), merge_heap_.end(), HeadGreater{});
  const detail::LpCtx saved = detail::lp_ctx();
  while (!merge_heap_.empty()) {
    const LpId lp = merge_heap_.front().second;
    std::pop_heap(merge_heap_.begin(), merge_heap_.end(), HeadGreater{});
    merge_heap_.pop_back();
    Shard& s = *shards_[lp];
    EventNode* n = nullptr;
    {
      chk::SimLockGuard g(s.mu);
      n = s.queue.pop();
    }
    detail::lp_ctx() = detail::LpCtx{this, lp};
    dispatch(s, n);
    detail::lp_ctx() = saved;
    chk::SimLockGuard g(s.mu);
    EventNode* h = s.queue.peek();
    if (h != nullptr && h->when < wend) {
      merge_heap_.emplace_back(h->when, lp);
      std::push_heap(merge_heap_.begin(), merge_heap_.end(), HeadGreater{});
    }
  }
}

bool Engine::run_windowed(Time limit, bool bounded) {
  running_ = true;
  if (nthreads_ > 1 && team_ == nullptr) {
    team_ = std::make_unique<WorkerTeam>(*this, nthreads_);
  }
  const bool sharded_obs = nthreads_ > 1;
  if (sharded_obs) obs::Registry::instance().begin_parallel(nthreads_);
  if (heads_stale_) {
    rebuild_heads();
    heads_stale_ = false;
  }
  for (;;) {
    drain_inboxes();
    sweep_dirty_heads();
    // Earliest valid head: discard stale lazy-heap entries on the way.
    Time t0 = kNever;
    while (!heads_.empty()) {
      const auto [w, lp] = heads_.front();
      if (w == head_cache_[lp]) {
        t0 = w;
        break;
      }
      std::pop_heap(heads_.begin(), heads_.end(), HeadGreater{});
      heads_.pop_back();
    }
    if (t0 == kNever) break;
    if (bounded && t0 > limit) break;
    Time wend = sat_add(t0, lookahead_);
    if (bounded && limit != kNever && wend > limit + 1) wend = limit + 1;
    // Collect the active LPs (head < wend), consuming their heap entries.
    active_.clear();
    bool lp0_active = false;
    while (!heads_.empty() && heads_.front().first < wend) {
      const auto [w, lp] = heads_.front();
      std::pop_heap(heads_.begin(), heads_.end(), HeadGreater{});
      heads_.pop_back();
      if (w != head_cache_[lp]) continue;  // stale entry
      head_cache_[lp] = kNever;            // consumed; refreshed after the window
      active_.push_back(lp);
      if (lp == kControlLp) lp0_active = true;
    }
    ++windows_;
    // Fan out only when the window is pure node work: control-LP events
    // (fault injection, host drivers) may touch any node's state, so they
    // run merged in global timestamp order. Tiny windows stay merged too —
    // the barrier costs more than two shards' worth of events.
    const bool parallel =
        team_ != nullptr && !lp0_active && active_.size() >= 3;
    if (parallel) {
      ++parallel_windows_;
      team_->run_window(wend);
    } else {
      run_window_merged(wend);
    }
    for (LpId lp : active_) refresh_head(lp);
  }
  if (bounded) now_ = std::max(now_, limit);
  for (const auto& sp : shards_) now_ = std::max(now_, sp->lnow);
  // Synchronize every shard clock to the run's high-water mark. Shard clocks
  // drift apart across windows (an idle LP keeps the time of its last
  // event); if they stayed behind, work scheduled by the host between runs —
  // harnesses routinely run, post more traffic, and run again — would land
  // in a laggard's past and its first wire hop would violate the lookahead
  // invariant on a shard whose clock is already ahead.
  for (auto& sp : shards_) sp->lnow = now_;
  if (sharded_obs) obs::Registry::instance().end_parallel();
  running_ = false;
  return pending() != 0;
}

bool Engine::step_windowed() {
  running_ = true;
  if (heads_stale_) {
    rebuild_heads();
    heads_stale_ = false;
  }
  drain_inboxes();
  sweep_dirty_heads();
  Shard* best = nullptr;
  LpId best_lp = 0;
  while (!heads_.empty()) {
    const auto [w, lp] = heads_.front();
    std::pop_heap(heads_.begin(), heads_.end(), HeadGreater{});
    heads_.pop_back();
    if (w != head_cache_[lp]) continue;
    head_cache_[lp] = kNever;
    best = shards_[lp].get();
    best_lp = lp;
    break;
  }
  if (best == nullptr) {
    running_ = false;
    return false;
  }
  EventNode* n = nullptr;
  {
    chk::SimLockGuard g(best->mu);
    n = best->queue.pop();
  }
  const detail::LpCtx saved = detail::lp_ctx();
  detail::lp_ctx() = detail::LpCtx{this, best_lp};
  dispatch(*best, n);
  detail::lp_ctx() = saved;
  now_ = std::max(now_, best->lnow);
  refresh_head(best_lp);
  running_ = false;
  return true;
}

}  // namespace meshmp::sim
