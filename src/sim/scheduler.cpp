#include "sim/scheduler.hpp"

#include "sim/engine.hpp"

namespace meshmp::sim {

namespace {

// One pause-class instruction: keeps the core's load port free for the
// owner of the line being watched without giving up the timeslice.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("isb" ::: "memory");
#endif
}

// Spin budgets before parking. With spare cores the waiter pause-spins —
// tens of microseconds of busy-wait, orders of magnitude longer than a busy
// window takes to arrive, with no syscalls. When the machine is
// oversubscribed (threads >= cores) pause-spinning would burn the timeslice
// the *other* thread needs to make progress, so the waiter yields instead,
// and briefly: every barrier costs context switches there regardless.
constexpr int kPauseIters = 20000;
constexpr int kYieldIters = 1024;

}  // namespace

WorkerTeam::WorkerTeam(Engine& eng, unsigned nthreads)
    : eng_(eng), nthreads_(nthreads) {
  const unsigned cores = std::thread::hardware_concurrency();
  spin_iters_ = cores > nthreads_ ? kPauseIters : kYieldIters;
  spin_yields_ = cores <= nthreads_;
  threads_.reserve(nthreads_ > 0 ? nthreads_ - 1 : 0);
  for (unsigned i = 1; i < nthreads_; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

WorkerTeam::~WorkerTeam() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_.store(true, std::memory_order_release);
    gen_.fetch_add(1);
  }
  cv_workers_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerTeam::run_window(Time wend) {
  if (threads_.empty()) {
    eng_.run_window_shards(0, nthreads_ == 0 ? 1 : nthreads_, wend);
    return;
  }
  wend_ = wend;
  remaining_.store(static_cast<unsigned>(threads_.size()),
                   std::memory_order_release);
  // seq_cst bump, then check who actually parked: a worker either sees the
  // new generation in its pre-park predicate (checked under m_) or has
  // already bumped parked_workers_ and gets the notify.
  gen_.fetch_add(1);
  if (parked_workers_.load() > 0) {
    { std::lock_guard<std::mutex> lk(m_); }
    cv_workers_.notify_all();
  }

  eng_.run_window_shards(0, nthreads_, wend);

  for (int i = 0; i < spin_iters_; ++i) {
    if (remaining_.load(std::memory_order_acquire) == 0) return;
    if (spin_yields_) {
      std::this_thread::yield();
    } else {
      cpu_pause();
    }
  }
  std::unique_lock<std::mutex> lk(m_);
  coord_parked_.store(true);
  cv_coord_.wait(lk, [this] {
    return remaining_.load(std::memory_order_acquire) == 0;
  });
  coord_parked_.store(false);
}

void WorkerTeam::worker_main(unsigned index) {
  chk::set_worker_index(static_cast<int>(index));
  std::uint64_t seen = 0;
  for (;;) {
    // Wait for a new window (or stop): spin briefly, then park.
    std::uint64_t g = gen_.load(std::memory_order_acquire);
    for (int i = 0; g == seen && i < spin_iters_; ++i) {
      if (spin_yields_) {
        std::this_thread::yield();
      } else {
        cpu_pause();
      }
      g = gen_.load(std::memory_order_acquire);
    }
    if (g == seen) {
      std::unique_lock<std::mutex> lk(m_);
      parked_workers_.fetch_add(1);
      cv_workers_.wait(lk, [this, seen] {
        return gen_.load(std::memory_order_acquire) != seen;
      });
      parked_workers_.fetch_sub(1);
      g = gen_.load(std::memory_order_acquire);
    }
    seen = g;
    if (stop_.load(std::memory_order_acquire)) return;

    eng_.run_window_shards(index, nthreads_, wend_);

    // seq_cst decrement, then check whether the coordinator parked: it
    // either sees remaining_ == 0 in its pre-park predicate (under m_) or
    // has already published coord_parked_ and gets the notify.
    if (remaining_.fetch_sub(1) == 1 && coord_parked_.load()) {
      { std::lock_guard<std::mutex> lk(m_); }
      cv_coord_.notify_one();
    }
  }
}

}  // namespace meshmp::sim
