#pragma once

// Small statistics helpers used by benchmarks and hardware models.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace meshmp::sim {

/// Streaming accumulator: count / sum / min / max / mean / stddev.
class Stat {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sumsq_ += x * x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double stddev() const noexcept {
    if (n_ < 2) return 0.0;
    const double m = mean();
    const double var =
        (sumsq_ - static_cast<double>(n_) * m * m) / static_cast<double>(n_ - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
  }

  void reset() { *this = Stat{}; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Monotone counters keyed by short names (drops, retransmits, interrupts...).
class Counters {
 public:
  void inc(const std::string& key, std::int64_t by = 1) {
    for (auto& [k, v] : items_) {
      if (k == key) {
        v += by;
        return;
      }
    }
    items_.emplace_back(key, by);
  }

  [[nodiscard]] std::int64_t get(const std::string& key) const {
    for (const auto& [k, v] : items_) {
      if (k == key) return v;
    }
    return 0;
  }

  [[nodiscard]] const std::vector<std::pair<std::string, std::int64_t>>& items()
      const noexcept {
    return items_;
  }

 private:
  std::vector<std::pair<std::string, std::int64_t>> items_;
};

}  // namespace meshmp::sim
