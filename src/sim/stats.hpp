#pragma once

// Small statistics helpers used by benchmarks and hardware models.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "obs/metrics.hpp"

namespace meshmp::sim {

/// Streaming accumulator: count / sum / min / max / mean / stddev.
class Stat {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sumsq_ += x * x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double stddev() const noexcept {
    if (n_ < 2) return 0.0;
    const double m = mean();
    const double var =
        (sumsq_ - static_cast<double>(n_) * m * m) / static_cast<double>(n_ - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
  }

  void reset() { *this = Stat{}; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Monotone counters keyed by short names (drops, retransmits, interrupts...).
/// Alias of the observability layer's sorted flat map (O(log n) per inc, and
/// deterministically ordered items() for snapshots); components attach these
/// to obs::Registry to feed report/bench metrics.
using Counters = obs::Counters;

}  // namespace meshmp::sim
