#pragma once

// Discrete-event simulation engine.
//
// A single-threaded, deterministic event loop: events fire in (time, sequence)
// order, where sequence is the order of scheduling. All coroutine resumptions
// are funnelled through the queue, so two runs of the same program produce
// identical event orders and identical results.
//
// Concurrency readiness: the event queue is the one structure a future
// multicore PDES engine shares between producer threads (schedulers) and the
// dispatch loop, so it is already written in the locked shape — pushes and
// pops happen under queue_mu_ (a zero-cost chk::SimLock today) and event
// bodies run outside it. now_/executed_/digest_ stay dispatch-loop-private.

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "chk/audit.hpp"
#include "chk/thread_annotations.hpp"
#include "sim/time.hpp"

namespace meshmp::sim {

// meshmp-lint: shared-state
class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` nanoseconds from now (delay >= 0).
  /// `label` (a string literal) names the event in the determinism digest.
  void schedule(Duration delay, std::function<void()> fn,
                const char* label = "event");

  /// Schedules `fn` at absolute time `t` (t >= now()).
  void schedule_at(Time t, std::function<void()> fn,
                   const char* label = "event");

  /// Schedules resumption of a suspended coroutine at the current time.
  /// All synchronization primitives wake waiters through here, never inline,
  /// which keeps wakeup order deterministic and stacks flat.
  void post(std::coroutine_handle<> h);

  /// Runs until the event queue is empty.
  void run();

  /// Runs all events with timestamp <= t, then sets now() = t.
  /// Returns true if events remain in the queue.
  bool run_until(Time t);

  /// Runs a single event if one is pending. Returns false when idle.
  bool step();

  /// Number of queued events.
  [[nodiscard]] std::size_t pending() const noexcept {
    chk::SimLockGuard g(queue_mu_);
    return heap_.size();
  }

  /// Total events executed so far (useful for complexity assertions in tests).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Determinism digest: when enabled, every dispatched event folds
  /// (when, seq, label) into a running FNV-1a hash. Two runs of the same
  /// program must produce identical digests (chk::run_twice_and_compare).
  void enable_digest(bool on) noexcept { digest_on_ = on; }
  [[nodiscard]] bool digest_enabled() const noexcept { return digest_on_; }
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    std::function<void()> fn;
    const char* label;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void dispatch(Event ev);
  /// Quiesce validator body (a named method so the thread-safety analysis
  /// sees the lock acquisition; lambdas are analyzed without lock context).
  void audit_queue_drained() const;

  Time now_ = 0;
  std::uint64_t executed_ = 0;
  bool digest_on_ = false;
  std::uint64_t digest_ = 0;
  mutable chk::SimLock queue_mu_;
  std::uint64_t next_seq_ MESHMP_GUARDED_BY(queue_mu_) = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_
      MESHMP_GUARDED_BY(queue_mu_);
  chk::Audit::Registration audit_reg_;
};

}  // namespace meshmp::sim
