#pragma once

// Discrete-event simulation engine: sequential by default, conservative
// parallel (PDES) when partitioned.
//
// Legacy mode (every raw `Engine`, and clusters when MESHMP_THREADS is
// unset): a single-threaded, deterministic event loop. Events fire in
// (time, sequence) order, where sequence is the order of scheduling. All
// coroutine resumptions are funnelled through the queue, so two runs of the
// same program produce identical event orders and identical results. This
// path is byte-identical to the engine before the PDES work — same seq
// numbering, same digest.
//
// Partitioned mode (Engine::partition, used by the cluster builders when
// MESHMP_THREADS >= 1): events are sharded across logical processes — LP 0
// for control/host work, one LP per simulated node — each shard owning its
// own EventArena/LadderQueue/seq-counter/clock/digest. Execution advances in
// lookahead windows: with T the earliest pending timestamp and L the link
// propagation delay, every event with when < T+L can run, because the only
// cross-LP events are wire hops (Engine::schedule_to) whose delay is >= L,
// so nothing scheduled inside the window can land inside it on another LP.
// Cross-LP events travel through per-shard mailboxes, are sorted by
// (when, source LP, per-source emission number) and injected at window
// boundaries — an order that no thread interleaving can perturb. Each LP's
// events run in (when, seq) order by exactly one owner per window, so the
// per-LP FNV digests — merged in LP-id order by digest() — are bit-identical
// at any MESHMP_THREADS value, including 1. Windows with control-LP events
// (fault injection, host drivers) run merged on the coordinator in global
// (when, lp, seq) order; pure node windows fan out across the worker team.
//
// Hot-path shape (both modes): pooled EventNodes (sim/event_queue.hpp)
// holding a fixed-capacity sim::InlineFn, ordered by a calendar/ladder
// queue. Steady-state scheduling performs zero heap allocations.

#include <coroutine>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "chk/audit.hpp"
#include "chk/thread_annotations.hpp"
#include "sim/event_queue.hpp"
#include "sim/inline_fn.hpp"
#include "sim/lp.hpp"
#include "sim/time.hpp"

namespace meshmp::sim {

class WorkerTeam;

/// Process-wide host-side engine telemetry, accumulated as engines are
/// destroyed (relaxed atomics; safe under TSan). Deliberately outside the
/// deterministic state: bench reports publish these under the host.* metric
/// group, which tools/bench_diff.py treats as informational only.
struct EngineHostStats {
  std::uint64_t events_dispatched = 0;
  std::uint64_t queue_depth_hwm = 0;  ///< max over all engines' high-water marks
  std::uint64_t windows = 0;           ///< lookahead windows run (partitioned)
  std::uint64_t parallel_windows = 0;  ///< windows fanned out to the team
};
[[nodiscard]] EngineHostStats engine_host_stats() noexcept;
void reset_engine_host_stats() noexcept;

// meshmp-lint: shared-state
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Switches this engine into windowed conservative mode with `nlps`
  /// logical processes (LP 0 = control, 1..nlps-1 = nodes), `nthreads`
  /// workers (clamped to nlps; 1 = the single-threaded reference execution
  /// of the same windowed algorithm) and a lookahead of `lookahead` ns (the
  /// minimum cross-LP delay; must be > 0). Must be called before anything
  /// is scheduled. Digests are a function of the simulated program and nlps
  /// only — never of nthreads.
  void partition(std::uint32_t nlps, unsigned nthreads, Duration lookahead);

  [[nodiscard]] bool partitioned() const noexcept {
    return shards_.size() > 1;
  }
  [[nodiscard]] std::uint32_t lps() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] unsigned threads() const noexcept { return nthreads_; }
  [[nodiscard]] Duration lookahead() const noexcept { return lookahead_; }

  /// LP whose events are currently being scheduled: the dispatching shard
  /// inside an event body, the enclosing LpScope during construction, or
  /// the control LP from a plain host context.
  [[nodiscard]] LpId current_lp() const noexcept {
    const detail::LpCtx& c = detail::lp_ctx();
    return c.eng == this ? c.lp : kControlLp;
  }

  /// Current simulated time: the executing LP's clock inside an event body
  /// (floored by the dispatching event's time, so an LpScope onto a shard
  /// whose clock lags — a crashed node being respawned — still reads the
  /// causal present), the engine-wide high-water mark otherwise.
  [[nodiscard]] Time now() const noexcept {
    const detail::LpCtx& c = detail::lp_ctx();
    if (c.eng == this && c.lp < shards_.size()) {
      const Time t = shards_[c.lp]->lnow;
      return c.tnow > t ? c.tnow : t;
    }
    return now_;
  }

  /// Schedules `fn` to run `delay` nanoseconds from now (delay >= 0) on the
  /// current LP. `label` (a string literal) names the event in the
  /// determinism digest. The capture must fit sim::kInlineFnCapacity.
  void schedule(Duration delay, InlineFn fn, const char* label = "event");

  /// Schedules `fn` at absolute time `t` (t >= now()) on the current LP.
  void schedule_at(Time t, InlineFn fn, const char* label = "event");

  /// Schedules `fn` onto LP `target` after `delay`. Same-LP calls collapse
  /// to schedule(); cross-LP calls go through the target's mailbox, drained
  /// deterministically at the next window boundary. During a window the
  /// delay must be >= lookahead() (the wire-propagation guarantee); a
  /// violation is detected at drain time and reported as a logic error.
  void schedule_to(LpId target, Duration delay, InlineFn fn,
                   const char* label = "xlp");

  /// Schedules resumption of a suspended coroutine at the current time on
  /// the current LP. All synchronization primitives wake waiters through
  /// here, never inline — coroutines migrate to the LP of whoever wakes
  /// them, which keeps wakeup order deterministic and stacks flat.
  void post(std::coroutine_handle<> h);

  /// Runs until the event queue(s) — and, when partitioned, the cross-LP
  /// mailboxes — are empty.
  void run();

  /// Runs all events with timestamp <= t, then sets now() = t.
  /// Returns true if events remain in the queue.
  bool run_until(Time t);

  /// Runs a single event if one is pending (in global (when, lp, seq) order
  /// when partitioned). Returns false when idle.
  bool step();

  /// Number of queued events (including undelivered cross-LP messages).
  [[nodiscard]] std::size_t pending() const noexcept;

  /// Deepest any shard's queue has been over this engine's lifetime.
  [[nodiscard]] std::size_t queue_depth_hwm() const noexcept;

  /// Total events executed so far (useful for complexity assertions in tests).
  [[nodiscard]] std::uint64_t executed() const noexcept;

  /// Determinism digest: when enabled, every dispatched event folds
  /// (when, seq, label) into its LP's running FNV-1a hash; digest() merges
  /// the per-LP hashes in LP-id order (for a single shard it *is* the
  /// shard's hash, byte-identical to the sequential engine). Two runs of
  /// the same program must produce identical digests at any thread count
  /// (chk::run_twice_and_compare).
  void enable_digest(bool on) noexcept { digest_on_ = on; }
  [[nodiscard]] bool digest_enabled() const noexcept { return digest_on_; }
  [[nodiscard]] std::uint64_t digest() const noexcept;

 private:
  friend class WorkerTeam;

  /// One cross-LP mailbox item. (src, emit_seq) is the per-source emission
  /// number — together with `when` it is a total order no host interleaving
  /// can change, and the drain sorts by exactly that key.
  struct XlpItem {
    Time when = 0;
    LpId src = 0;
    std::uint64_t emit_seq = 0;
    const char* label = nullptr;
    InlineFn fn;
  };

  /// One logical process: an independent event queue with its own clock,
  /// sequence numbering and digest. `mu` is never contended in practice
  /// (one owner per window, coordinator between windows) but keeps the
  /// structure honest under TSan; `inbox_mu` really is cross-thread (any
  /// LP may emit into any other LP's mailbox mid-window).
  struct Shard {
    mutable chk::SimLock mu;
    std::uint64_t next_seq MESHMP_GUARDED_BY(mu) = 0;
    EventArena arena MESHMP_GUARDED_BY(mu);
    LadderQueue queue MESHMP_GUARDED_BY(mu);
    Time lnow = 0;                  ///< LP-local clock (owner-private mid-window)
    std::uint64_t executed = 0;
    std::uint64_t digest = 0;
    std::uint64_t xlp_emitted = 0;  ///< per-source emission counter
    mutable chk::SimLock inbox_mu;
    std::vector<XlpItem> inbox MESHMP_GUARDED_BY(inbox_mu);
    /// Set (under inbox_mu) whenever a message lands, cleared at drain: the
    /// per-window drain sweep reads one flag per shard instead of taking
    /// every inbox lock — cross-LP traffic is sparse next to window count.
    std::atomic<bool> inbox_nonempty{false};
    /// Set when a running engine schedules directly onto this shard from a
    /// *different* dispatching shard (an LpScope from a control-LP event,
    /// e.g. a restart respawning a crashed node's loops). The shard may be
    /// inactive this window with its cached head stale; the coordinator
    /// sweeps these flags each window and re-reads the queue head, else the
    /// new event would never be discovered.
    std::atomic<bool> head_dirty{false};
  };

  [[nodiscard]] Shard& current_shard() noexcept {
    return *shards_[current_lp()];
  }

  /// Scheduling base time for shard `s`: its clock, floored by the
  /// dispatching event's time when called from inside an event body.
  [[nodiscard]] Time causal_now(const Shard& s) const noexcept {
    const detail::LpCtx& c = detail::lp_ctx();
    return c.eng == this && c.tnow > s.lnow ? c.tnow : s.lnow;
  }

  void schedule_on(Shard& s, Time t, InlineFn fn, const char* label);
  void dispatch(Shard& s, EventNode* n);
  /// Destroys the event's callable outside the shard lock (captures may
  /// release pooled buffers, which takes the buf::Pool lock), then recycles.
  void release_node(Shard& s, EventNode* n) noexcept;

  // --- windowed (partitioned) execution ---
  bool run_windowed(Time limit, bool bounded);
  void drain_inboxes();
  /// Recomputes shard lp's head and (re)inserts it into the lazy head heap.
  void refresh_head(LpId lp);
  void rebuild_heads();
  /// Re-reads the head of every shard flagged head_dirty (scoped scheduling
  /// onto a possibly-inactive shard mid-run); one atomic load per shard.
  void sweep_dirty_heads();
  /// Executes every active-shard event with when < wend on the calling
  /// worker's share of the active set (lp % stride == worker).
  void run_window_shards(unsigned worker, unsigned stride, Time wend);
  void run_shard_window(Shard& s, LpId lp, Time wend);
  /// Coordinator-only: merged execution of the window across all active
  /// shards in global (when, lp, seq) order.
  void run_window_merged(Time wend);
  bool step_windowed();

  /// Quiesce validator body (a named method so the thread-safety analysis
  /// sees the lock acquisition; lambdas are analyzed without lock context).
  void audit_queue_drained();

  // Shard list: resized once by partition() before any event exists; the
  // vector itself is immutable afterwards and shard interiors carry their
  // own locks.
  // meshmp-lint: unshared(fixed after partition; interiors self-locked)
  std::vector<std::unique_ptr<Shard>> shards_;
  Duration lookahead_ = 0;
  unsigned nthreads_ = 1;
  Time now_ = 0;  ///< coordinator clock: high-water mark across shards
  bool digest_on_ = false;
  bool running_ = false;      ///< inside run/run_until/step (coordinator-set)
  bool heads_stale_ = true;   ///< host scheduled outside the run loop
  std::uint64_t windows_ = 0;
  std::uint64_t parallel_windows_ = 0;

  // Lazy min-heap of shard heads, validated against head_cache_ on pop
  // (coordinator-private; see run_windowed).
  // meshmp-lint: unshared(coordinator-private scratch)
  std::vector<std::pair<Time, LpId>> heads_;
  // meshmp-lint: unshared(coordinator-private scratch)
  std::vector<Time> head_cache_;
  /// LPs active in the current window; workers read it during the window
  /// (published by the team barrier), only the coordinator writes.
  // meshmp-lint: unshared(written between windows only; published by barrier)
  std::vector<LpId> active_;
  // meshmp-lint: unshared(coordinator-private scratch)
  std::vector<XlpItem> drain_scratch_;
  // meshmp-lint: unshared(coordinator-private scratch)
  std::vector<std::pair<Time, LpId>> merge_heap_;

  std::unique_ptr<WorkerTeam> team_;
  chk::Audit::Registration audit_reg_;
};

}  // namespace meshmp::sim
