#pragma once

// Discrete-event simulation engine.
//
// A single-threaded, deterministic event loop: events fire in (time, sequence)
// order, where sequence is the order of scheduling. All coroutine resumptions
// are funnelled through the queue, so two runs of the same program produce
// identical event orders and identical results.
//
// Hot-path shape: events are pooled EventNodes (sim/event_queue.hpp) holding
// a fixed-capacity sim::InlineFn instead of a heap-allocating std::function,
// ordered by a calendar/ladder queue instead of a binary heap. Steady-state
// scheduling performs zero heap allocations and amortized O(1) queue work,
// while dispatch order (and the determinism digest) is byte-identical to the
// former std::priority_queue.
//
// Concurrency readiness: the event queue is the one structure a future
// multicore PDES engine shares between producer threads (schedulers) and the
// dispatch loop, so it is already written in the locked shape — pushes and
// pops happen under queue_mu_ (a zero-cost chk::SimLock today) and event
// bodies run outside it. now_/executed_/digest_ stay dispatch-loop-private.

#include <coroutine>
#include <cstdint>

#include "chk/audit.hpp"
#include "chk/thread_annotations.hpp"
#include "sim/event_queue.hpp"
#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace meshmp::sim {

/// Process-wide host-side engine telemetry, accumulated as engines are
/// destroyed (relaxed atomics; safe under TSan). Deliberately outside the
/// deterministic state: bench reports publish these under the host.* metric
/// group, which tools/bench_diff.py treats as informational only.
struct EngineHostStats {
  std::uint64_t events_dispatched = 0;
  std::uint64_t queue_depth_hwm = 0;  ///< max over all engines' high-water marks
};
[[nodiscard]] EngineHostStats engine_host_stats() noexcept;
void reset_engine_host_stats() noexcept;

// meshmp-lint: shared-state
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` nanoseconds from now (delay >= 0).
  /// `label` (a string literal) names the event in the determinism digest.
  /// The capture must fit sim::kInlineFnCapacity — enforced at compile time.
  void schedule(Duration delay, InlineFn fn, const char* label = "event");

  /// Schedules `fn` at absolute time `t` (t >= now()).
  void schedule_at(Time t, InlineFn fn, const char* label = "event");

  /// Schedules resumption of a suspended coroutine at the current time.
  /// All synchronization primitives wake waiters through here, never inline,
  /// which keeps wakeup order deterministic and stacks flat.
  void post(std::coroutine_handle<> h);

  /// Runs until the event queue is empty.
  void run();

  /// Runs all events with timestamp <= t, then sets now() = t.
  /// Returns true if events remain in the queue.
  bool run_until(Time t);

  /// Runs a single event if one is pending. Returns false when idle.
  bool step();

  /// Number of queued events.
  [[nodiscard]] std::size_t pending() const noexcept {
    chk::SimLockGuard g(queue_mu_);
    return queue_.size();
  }

  /// Deepest the queue has been over this engine's lifetime.
  [[nodiscard]] std::size_t queue_depth_hwm() const noexcept {
    chk::SimLockGuard g(queue_mu_);
    return queue_.depth_hwm();
  }

  /// Total events executed so far (useful for complexity assertions in tests).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Determinism digest: when enabled, every dispatched event folds
  /// (when, seq, label) into a running FNV-1a hash. Two runs of the same
  /// program must produce identical digests (chk::run_twice_and_compare).
  void enable_digest(bool on) noexcept { digest_on_ = on; }
  [[nodiscard]] bool digest_enabled() const noexcept { return digest_on_; }
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

 private:
  void dispatch(EventNode* n);
  /// Destroys the event's callable outside queue_mu_ (captures may release
  /// pooled buffers, which takes the buf::Pool lock), then recycles the node.
  void release_node(EventNode* n) noexcept;
  /// Quiesce validator body (a named method so the thread-safety analysis
  /// sees the lock acquisition; lambdas are analyzed without lock context).
  /// Non-const: peeking the ladder queue may drain a bucket.
  void audit_queue_drained();

  Time now_ = 0;
  std::uint64_t executed_ = 0;
  bool digest_on_ = false;
  std::uint64_t digest_ = 0;
  mutable chk::SimLock queue_mu_;
  std::uint64_t next_seq_ MESHMP_GUARDED_BY(queue_mu_) = 0;
  EventArena arena_ MESHMP_GUARDED_BY(queue_mu_);
  LadderQueue queue_ MESHMP_GUARDED_BY(queue_mu_);
  chk::Audit::Registration audit_reg_;
};

}  // namespace meshmp::sim
