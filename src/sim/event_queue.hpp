#pragma once

// Pooled event nodes and the ladder queue behind sim::Engine.
//
// The engine's former std::priority_queue cost O(log n) comparisons per
// push/pop on a heap of by-value events. This file replaces it with:
//
//  - EventArena: a freelist of fixed-size EventNodes carved from chunked
//    slabs (the buf::Pool capacity-class idiom, specialized to one size).
//    Nodes never move once allocated and are recycled instead of freed, so
//    steady-state scheduling performs zero heap allocations.
//
//  - LadderQueue: a calendar/ladder queue over the same strict (when, seq)
//    order as the old heap. Near-future events live in a small binary heap
//    ("bottom"); mid-range events are spread across kRungs buckets of equal
//    width; far-future events sit on an unsorted overflow list that is
//    re-spread (reseeded) across fresh buckets when the current rung ladder
//    drains. Push and pop are amortized O(1) because the bottom heap only
//    ever holds one bucket's worth of events plus stragglers.
//
// Ordering invariants (what makes dispatch order — and therefore the FNV
// determinism digest — byte-identical to the old heap):
//  1. bottom holds exactly the events with when <  bottom_end_;
//     rungs/overflow hold events with       when >= bottom_end_.
//     So whenever bottom is nonempty its heap minimum is the global minimum.
//  2. (when, seq) is a total order (seq is unique), so the pop sequence is
//     fully determined by the comparator — independent of bucket layout,
//     overflow list order, or heap internals.
//  3. All bucket geometry (rung_start_, width_, horizon_) is derived from
//     simulated timestamps only, never from host state, so two runs of the
//     same program make identical structural decisions.
//
// Thread-safety: neither class locks; both are owned by sim::Engine and
// guarded by its queue_mu_ (see MESHMP_GUARDED_BY annotations there).

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace meshmp::sim {

/// One scheduled event. Arena-owned; never moves once allocated. `next`
/// links nodes while they sit in a rung bucket, the overflow list, or the
/// arena freelist; the bottom heap stores raw pointers instead.
struct EventNode {
  Time when = 0;
  std::uint64_t seq = 0;
  const char* label = nullptr;
  EventNode* next = nullptr;
  InlineFn fn;
};

// Two cache lines per event: 32 bytes of ordering/bookkeeping header plus
// the 96-byte inline callable. Pinned so capture-budget growth is a
// deliberate decision, not an accident.
static_assert(sizeof(EventNode) == 128);
static_assert(alignof(EventNode) == alignof(void*));

/// Strict-weak order "fires later than": min-heap comparator over (when,
/// seq), byte-identical to the tie-break of the engine's former
/// std::priority_queue.
struct FiresLater {
  bool operator()(const EventNode* a, const EventNode* b) const noexcept {
    if (a->when != b->when) return a->when > b->when;
    return a->seq > b->seq;
  }
};

/// Freelist arena of EventNodes. get() reuses a recycled node or carves a
/// fresh chunk; put() recycles. Chunks are only ever grown, so the arena's
/// high-water mark bounds its footprint and steady state never allocates.
class EventArena {
 public:
  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  [[nodiscard]] EventNode* get();
  /// Recycles a node. The caller must have reset() the callable already
  /// (capture destruction runs outside the engine's queue lock).
  void put(EventNode* n) noexcept;

  /// Nodes carved so far (warmup growth metric for tests).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return chunks_.size() * kChunkNodes;
  }

 private:
  static constexpr std::size_t kChunkNodes = 256;
  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  EventNode* free_ = nullptr;
};

/// Calendar/ladder queue; see the file comment for structure and invariants.
class LadderQueue {
 public:
  // Pre-sizing the bottom heap keeps the steady state allocation-free: a
  // vector doubling can otherwise land arbitrarily late (first time the
  // bottom's high-water mark is reached), which the engine microbench's
  // zero-allocation assertion would catch as a spurious failure.
  LadderQueue() { bottom_.reserve(1024); }
  LadderQueue(const LadderQueue&) = delete;
  LadderQueue& operator=(const LadderQueue&) = delete;

  void push(EventNode* n);
  /// Minimum-(when, seq) node, or nullptr when empty. May restructure
  /// internally (drain a bucket into the bottom heap) but never reorders.
  [[nodiscard]] EventNode* peek();
  /// Removes and returns the minimum node, or nullptr when empty.
  EventNode* pop();

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Deepest the queue has ever been (host-side telemetry; deterministic,
  /// since depth evolution is a function of the simulated program alone).
  [[nodiscard]] std::size_t depth_hwm() const noexcept { return hwm_; }

  /// Structural snapshot for white-box tests.
  struct Layout {
    std::size_t bottom = 0;    ///< nodes in the bottom heap
    std::size_t rungs = 0;     ///< nodes across all rung buckets
    std::size_t overflow = 0;  ///< nodes on the overflow list
    std::size_t reseeds = 0;   ///< overflow re-spreads performed
    Time bottom_end = 0;       ///< bottom holds when < bottom_end
    Time rung_start = 0;       ///< first bucket's start time
    Time width = 1;            ///< bucket width (ns)
    Time horizon = 0;          ///< rung coverage end (saturating)
  };
  [[nodiscard]] Layout layout() const noexcept;

 private:
  static constexpr std::size_t kRungs = 256;
  static constexpr std::size_t kWords = kRungs / 64;

  struct Bucket {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };

  void append(Bucket& b, EventNode* n) noexcept;
  /// Refills the empty bottom heap from the next nonempty bucket, reseeding
  /// from overflow as needed. False when the queue is truly empty.
  bool advance();
  /// Re-spreads the overflow list across fresh buckets sized to its span.
  void reseed();
  [[nodiscard]] std::size_t next_occupied(std::size_t from) const noexcept;

  std::vector<EventNode*> bottom_;  // binary min-heap under FiresLater
  std::array<Bucket, kRungs> rungs_{};
  std::array<std::uint64_t, kWords> occ_{};  // nonempty-bucket bitmap
  std::size_t cur_ = kRungs;                 // next bucket to drain
  std::size_t rung_count_ = 0;               // events across all buckets
  Time rung_start_ = 0;
  Time width_ = 1;
  Time bottom_end_ = 0;
  Time horizon_ = 0;
  EventNode* overflow_ = nullptr;
  std::size_t overflow_count_ = 0;
  std::size_t reseeds_ = 0;
  std::size_t size_ = 0;
  std::size_t hwm_ = 0;
};

}  // namespace meshmp::sim
