#pragma once

// Deterministic random number generation (xoshiro256++, seeded by splitmix64).
//
// Each stochastic component (lossy link, jittered timer, workload generator)
// owns its own Rng forked from a master seed, so adding a component never
// perturbs the random streams of the others.

#include <cstdint>

namespace meshmp::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free-enough reduction; bias is
    // negligible for simulation purposes.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Derives an independent generator (for per-component streams).
  Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace meshmp::sim
