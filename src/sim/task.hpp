#pragma once

// Coroutine task type for simulated node programs.
//
// A Task<T> is an eagerly-started coroutine: the body begins executing at the
// call site and runs until it first suspends on a simulator awaitable (a
// delay, a trigger, a queue pop, ...). Composition is by `co_await subtask`;
// fire-and-forget is by Engine-independent `detach()` (usually via
// `spawn(...)` on a cluster/node).
//
// Lifetime rules:
//  * An awaited task is owned by the awaiting frame (a temporary in the
//    co_await full-expression is kept alive across the suspension).
//  * A detached task self-destroys when it completes.
//  * Destroying a Task that is still suspended cancels it; this is only safe
//    when the task is not registered with any synchronization primitive.
//
// WARNING: never write a coroutine as a *capturing* lambda. The captures live
// in the lambda object, not in the coroutine frame; once the (usually
// temporary) lambda object is destroyed every capture dangles. Use free
// functions, member functions, or captureless lambdas taking parameters —
// parameters are copied/bound into the frame and are safe.

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace meshmp::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};
  bool detached = false;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& p = h.promise();
      if (p.continuation) return p.continuation;
      if (p.detached) {
        // Nobody owns the frame any more; free it. Returning noop after
        // destroy is the standard self-destroying-coroutine pattern.
        h.destroy();
      }
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_never initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(handle_type h) noexcept : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(h_); }
  [[nodiscard]] bool done() const noexcept { return !h_ || h_.done(); }

  /// Releases ownership; the frame frees itself on completion. If the task
  /// already completed, reaps it now (rethrowing any stored exception).
  void detach() {
    if (!h_) return;
    if (h_.done()) {
      auto exc = h_.promise().exception;
      h_.destroy();
      h_ = {};
      if (exc) std::rethrow_exception(exc);
      return;
    }
    h_.promise().detached = true;
    h_ = {};
  }

  auto operator co_await() noexcept {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return h.done(); }
      void await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
      }
      T await_resume() {
        if (h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
        assert(h.promise().value && "task completed without a value");
        return std::move(*h.promise().value);
      }
    };
    assert(h_ && "awaiting an empty task");
    return Awaiter{h_};
  }

 private:
  void reset() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  handle_type h_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() const noexcept {}
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(handle_type h) noexcept : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(h_); }
  [[nodiscard]] bool done() const noexcept { return !h_ || h_.done(); }

  void detach() {
    if (!h_) return;
    if (h_.done()) {
      auto exc = h_.promise().exception;
      h_.destroy();
      h_ = {};
      if (exc) std::rethrow_exception(exc);
      return;
    }
    h_.promise().detached = true;
    h_ = {};
  }

  auto operator co_await() noexcept {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return h.done(); }
      void await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
      }
      void await_resume() {
        if (h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
      }
    };
    assert(h_ && "awaiting an empty task");
    return Awaiter{h_};
  }

 private:
  void reset() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  handle_type h_{};
};

}  // namespace meshmp::sim
